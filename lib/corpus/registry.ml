(** The incident corpus as a first-class value.

    A registry is a *value*, not a module: cases, systems, whole-system
    version assembly, and study metadata bundled into {!t}, assembled
    from per-system providers.  The hand-written 16-case / 34-bug §2.1
    study population lives on as {!builtin}, and the pre-refactor flat
    module API survives as thin shims over it, so legacy callers and
    synthetic-registry consumers share one code path.

    Whole-system versions are assembled by concatenating each feature
    module at the stage that system version maps to; version [v] puts every
    case at stage [min v latest_stage], so version 0 is the original buggy
    release, version 2 is the all-regressed release, and the last version
    is the "latest" release (in [builtin], v5, in which the two unknown
    bugs E6/E7 are present). *)

type meta = {
  m_changes_per_day_gcp : int;
      (** Google-scale change rate quoted in the paper's introduction. *)
  m_avg_test_files : int;
      (** Average number of test files among the studied systems (§2.2). *)
  m_ephemeral_bug_histogram : (int * int) list;
      (** Per-year related-bug counts for the flagship recurring feature. *)
}

type provider = { p_system : string; p_cases : Case.t list }

type t = {
  name : string;  (** e.g. ["builtin"] or ["synth:seed=42:scale=10"] *)
  systems : string list;  (** provider order, duplicates collapsed *)
  cases : Case.t list;  (** provider order, concatenated *)
  max_version : int;
  scan_versions : int list;  (** versions whole-system scans sweep *)
  meta : meta;
}

let paper_meta : meta =
  {
    m_changes_per_day_gcp = 16_000;
    m_avg_test_files = 1_309;
    m_ephemeral_bug_histogram =
      [
        (2011, 6); (2012, 5); (2013, 4); (2014, 3); (2015, 4); (2016, 3);
        (2017, 3); (2018, 2); (2019, 3); (2020, 3); (2021, 2); (2022, 3);
        (2023, 2); (2024, 3);
      ];
  }

let provider ~system cases = { p_system = system; p_cases = cases }

let make ?max_version ?scan_versions ?(meta = paper_meta) ~name providers =
  let systems = List.map (fun p -> p.p_system) providers in
  let cases = List.concat_map (fun p -> p.p_cases) providers in
  let max_version =
    match max_version with
    | Some v -> v
    | None ->
        List.fold_left (fun m (c : Case.t) -> max m (c.Case.n_stages - 1)) 0 cases
  in
  let scan_versions =
    match scan_versions with
    | Some vs -> vs
    | None ->
        List.sort_uniq compare
          (List.filter (fun v -> v <= max_version) [ 1; 2; 3; max_version ])
  in
  { name; systems; cases; max_version; scan_versions; meta }

(* ------------------------------------------------------------------ *)
(* Registry-parametric accessors                                       *)
(* ------------------------------------------------------------------ *)

let cases_of (r : t) (system : string) : Case.t list =
  List.filter (fun (c : Case.t) -> c.Case.system = system) r.cases

let find (r : t) (case_id : string) : Case.t option =
  List.find_opt (fun (c : Case.t) -> c.Case.case_id = case_id) r.cases

let case_count (r : t) = List.length r.cases

let bug_count (r : t) = List.fold_left (fun n c -> n + Case.n_bugs c) 0 r.cases

let old_semantics_count (r : t) =
  List.fold_left
    (fun n (c : Case.t) -> n + c.Case.violating_old_semantics)
    0 r.cases

let old_share (r : t) : float =
  float_of_int (old_semantics_count r) /. float_of_int (bug_count r)

let stage_at_version (c : Case.t) (version : int) : int =
  min version c.Case.latest_stage

let source_of (r : t) (system : string) ~(version : int) : string =
  let cases = cases_of r system in
  String.concat "\n"
    (Fmt.str "// %s, assembled release v%d" system version
    :: List.map (fun c -> c.Case.source (stage_at_version c version)) cases)

let program_of (r : t) (system : string) ~(version : int) :
    Minilang.Ast.program =
  Minilang.Parser.program
    ~file:(Fmt.str "%s-v%d.mj" system version)
    (source_of r system ~version)

(** Human-readable commit log of a system's history. *)
let history_of (r : t) (system : string) : (int * string) list =
  List.init (r.max_version + 1) (fun v ->
      let changed =
        cases_of r system
        |> List.filter (fun c ->
               v > 0 && stage_at_version c v <> stage_at_version c (v - 1))
        |> List.map (fun (c : Case.t) ->
               let s = stage_at_version c v in
               match
                 List.find_opt (fun (fs, _, _, _) -> fs = s) c.Case.ticket_meta
               with
               | Some (_, id, title, _) -> Fmt.str "%s: %s" id title
               | None ->
                   Fmt.str "%s: evolve %s to stage %d" c.Case.case_id
                     c.Case.feature s)
      in
      let msg =
        if v = 0 then "initial release"
        else if changed = [] then "routine maintenance"
        else String.concat "; " changed
      in
      (v, msg))

let ephemeral_total (r : t) =
  List.fold_left (fun n (_, k) -> n + k) 0 r.meta.m_ephemeral_bug_histogram

(* ------------------------------------------------------------------ *)
(* The builtin registry: the hand-written §2.1 study population         *)
(* ------------------------------------------------------------------ *)

let builtin : t =
  make ~name:"builtin" ~max_version:5
    [
      provider ~system:"zookeeper" Zookeeper.cases;
      provider ~system:"hbase" Hbase.cases;
      provider ~system:"hdfs" Hdfs.cases;
      provider ~system:"cassandra" Cassandra.cases;
    ]

(* ------------------------------------------------------------------ *)
(* Legacy flat API: thin shims over [builtin]                          *)
(* ------------------------------------------------------------------ *)

let all_cases : Case.t list = builtin.cases

let systems : string list = builtin.systems

let cases_of_system (system : string) : Case.t list = cases_of builtin system

let find_case (case_id : string) : Case.t option = find builtin case_id

let n_cases = case_count builtin

let n_bugs = bug_count builtin

let n_bugs_violating_old_semantics = old_semantics_count builtin

let max_version = builtin.max_version

let system_source (system : string) ~(version : int) : string =
  source_of builtin system ~version

let system_program (system : string) ~(version : int) : Minilang.Ast.program =
  program_of builtin system ~version

let commit_history (system : string) : (int * string) list =
  history_of builtin system

let changes_per_day_gcp = builtin.meta.m_changes_per_day_gcp

let avg_test_files = builtin.meta.m_avg_test_files

let ephemeral_bug_histogram : (int * int) list =
  builtin.meta.m_ephemeral_bug_histogram

let ephemeral_bug_total = ephemeral_total builtin

let old_semantics_share () : float = old_share builtin
