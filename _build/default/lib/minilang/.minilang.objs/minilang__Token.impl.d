lib/minilang/token.ml: Fmt List Printf
