type stats = { hits : int; misses : int; size : int }

(* Sharding: the table is split into [shard_count] independent shards
   selected by the low bits of the caller's structural hash, so
   concurrent interns from the engine's worker domains only collide on
   a lock when they hash into the same shard.  Buckets inside a shard
   are immutable lists held in [Atomic.t] slots: the hot read path
   probes its bucket with two atomic loads and no lock at all, and the
   release/acquire pairing of [Atomic.set]/[Atomic.get] guarantees a
   reader that sees a freshly consed element also sees its initialized
   fields.  A lock-free probe that misses (including a stale-snapshot
   miss during a resize) falls back to the shard-locked insert path,
   which re-probes before building — so the never-evict and
   unique-id invariants hold exactly as in the single-mutex design. *)
let shard_bits = 4

let shard_count = 1 lsl shard_bits

let shard_mask = shard_count - 1

(* Lock acquisitions that found the shard mutex already held, across
   every table in the process — the telemetry signal that shard count
   (or the lock-free read path) is no longer absorbing parallelism. *)
let contention = Atomic.make 0

let contention_total () = Atomic.get contention

(* Buckets store (hkey, elt) pairs: the hash rides along so a resize can
   rehash without asking the element for it, and scans reject non-equal
   entries with one int compare before calling the user's [equal]. *)
type 'elt shard = {
  sh_lock : Mutex.t;
  sh_buckets : (int * 'elt) list Atomic.t array Atomic.t;
      (* the published snapshot; replaced wholesale on resize *)
  mutable sh_count : int;  (* entries in this shard; writers only *)
}

type ('node, 'elt) t = {
  name : string;
  equal : 'node -> 'elt -> bool;
  build : id:int -> hkey:int -> 'node -> 'elt;
  shards : 'elt shard array;
  next_id : int Atomic.t;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
}

(* Registry of all tables, for telemetry: the element types differ per
   table, so we store a stats thunk rather than the table itself.
   Newest first — cons on create (O(1) per table), reverse at read. *)
let registry_lock = Mutex.create ()

let registered : (string * (unit -> stats)) list ref = ref []

(* Counters are atomics and ids are never reused, so a stats read takes
   no lock; the triple is a monotone snapshot (size = ids handed out =
   distinct nodes, exactly as in the single-mutex design). *)
let stats t =
  {
    hits = Atomic.get t.hit_count;
    misses = Atomic.get t.miss_count;
    size = Atomic.get t.next_id;
  }

let initial_bucket_count = 64 (* per shard; doubles on resize *)

let make_shard () =
  {
    sh_lock = Mutex.create ();
    sh_buckets =
      Atomic.make (Array.init initial_bucket_count (fun _ -> Atomic.make []));
    sh_count = 0;
  }

let create ~name ~equal ~build () =
  let t =
    {
      name;
      equal;
      build;
      shards = Array.init shard_count (fun _ -> make_shard ());
      next_id = Atomic.make 0;
      hit_count = Atomic.make 0;
      miss_count = Atomic.make 0;
    }
  in
  Mutex.lock registry_lock;
  registered := (name, fun () -> stats t) :: !registered;
  Mutex.unlock registry_lock;
  t

let name t = t.name

(* Bucket index within a shard: the shard already consumed the low
   [shard_bits] of the hash, so index by the next bits ([lsr] keeps the
   result non-negative for any hkey). *)
let bucket_index arr hkey = (hkey lsr shard_bits) land (Array.length arr - 1)

let rec find_in_bucket equal hkey node = function
  | [] -> None
  | (h, e) :: rest ->
      if h = hkey && equal node e then Some e
      else find_in_bucket equal hkey node rest

(* Caller holds [sh_lock].  Grow the bucket array and republish; readers
   holding the old snapshot can only miss and fall back to the lock. *)
let resize (sh : _ shard) =
  let old = Atomic.get sh.sh_buckets in
  let fresh =
    Array.init (2 * Array.length old) (fun _ -> Atomic.make [])
  in
  Array.iter
    (fun slot ->
      List.iter
        (fun ((hkey, _) as entry) ->
          let dst = fresh.(bucket_index fresh hkey) in
          Atomic.set dst (entry :: Atomic.get dst))
        (Atomic.get slot))
    old;
  Atomic.set sh.sh_buckets fresh

let intern t ~hkey node =
  let sh = t.shards.(hkey land shard_mask) in
  (* hot path: probe the published snapshot without the lock *)
  let arr = Atomic.get sh.sh_buckets in
  match
    find_in_bucket t.equal hkey node
      (Atomic.get arr.(bucket_index arr hkey))
  with
  | Some e ->
      Atomic.incr t.hit_count;
      e
  | None ->
      (* miss (or stale snapshot): take the shard lock and re-probe *)
      if not (Mutex.try_lock sh.sh_lock) then begin
        Atomic.incr contention;
        Mutex.lock sh.sh_lock
      end;
      let arr = Atomic.get sh.sh_buckets in
      let slot = arr.(bucket_index arr hkey) in
      let bucket = Atomic.get slot in
      let elt =
        match find_in_bucket t.equal hkey node bucket with
        | Some e ->
            Atomic.incr t.hit_count;
            e
        | None ->
            let id = Atomic.fetch_and_add t.next_id 1 in
            Atomic.incr t.miss_count;
            let e = t.build ~id ~hkey node in
            Atomic.set slot ((hkey, e) :: bucket);
            sh.sh_count <- sh.sh_count + 1;
            if sh.sh_count > 2 * Array.length arr then resize sh;
            e
      in
      Mutex.unlock sh.sh_lock;
      elt

let registry () =
  Mutex.lock registry_lock;
  let tables = List.rev !registered in
  Mutex.unlock registry_lock;
  List.map (fun (n, get) -> (n, get ())) tables
