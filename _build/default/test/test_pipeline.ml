(* End-to-end pipeline tests on the corpus: learn rules from the original
   ticket of each case, then enforce them across the case's history. The
   headline property of the paper: the rule learned from incident #1 flags
   the regression (stage 2) that the incident's own regression tests miss,
   and is clean on the fixed versions (stages 1 and 3). *)

let validate_case (c : Corpus.Case.t) () =
  match Corpus.Case.validate c with Ok () -> () | Error m -> Alcotest.fail m

let learn_book (c : Corpus.Case.t) =
  let ticket = Corpus.Case.original_ticket c in
  let outcome = Lisa.Pipeline.learn ticket in
  if outcome.Lisa.Pipeline.accepted = [] then
    Alcotest.fail
      (Fmt.str "no rules accepted for %s; rejected: %s" c.Corpus.Case.case_id
         (String.concat "; "
            (List.map
               (fun (r, why) -> Semantics.Rule.to_string r ^ " (" ^ why ^ ")")
               outcome.Lisa.Pipeline.rejected)));
  Semantics.Rulebook.of_rules ~system:c.Corpus.Case.system
    outcome.Lisa.Pipeline.accepted

let enforce_stage (c : Corpus.Case.t) book stage =
  Lisa.Pipeline.enforce (Corpus.Case.program_at c stage) book

let assert_flagged c book stage =
  let reports = enforce_stage c book stage in
  if not (List.exists Lisa.Checker.has_violations reports) then
    Alcotest.fail
      (Fmt.str "%s stage %d: regression NOT flagged.\n%s" c.Corpus.Case.case_id stage
         (String.concat "\n" (List.map Lisa.Checker.report_summary reports)))

let assert_clean c book stage =
  let reports = enforce_stage c book stage in
  match List.find_opt Lisa.Checker.has_violations reports with
  | None -> ()
  | Some r ->
      Alcotest.fail
        (Fmt.str "%s stage %d: false positive: %s" c.Corpus.Case.case_id stage
           (Lisa.Checker.report_summary r))

(* the headline experiment for one case *)
let end_to_end (c : Corpus.Case.t) () =
  let book = learn_book c in
  (* the rule would have flagged the original buggy version too *)
  assert_flagged c book 0;
  (* flagged on every regression stage, clean on every fixed stage *)
  let rec go stage =
    if stage < c.Corpus.Case.n_stages then begin
      if List.mem stage c.Corpus.Case.regression_stages then assert_flagged c book stage
      else assert_clean c book stage;
      go (stage + 1)
    end
  in
  go 1

(* regression tests added for bug #1 pass on the regressed version: the
   tests-only strategy misses the recurrence (the gap of Figure 4) *)
let tests_only_misses (c : Corpus.Case.t) () =
  let ticket = Corpus.Case.original_ticket c in
  let stage2 = Corpus.Case.program_at c 2 in
  List.iter
    (fun test ->
      match Minilang.Interp.run_test stage2 test with
      | Minilang.Interp.Passed -> ()
      | Minilang.Interp.Failed m | Minilang.Interp.Errored m ->
          Alcotest.fail (Fmt.str "regression test %s unexpectedly catches stage 2: %s" test m))
    ticket.Oracle.Ticket.regression_tests

let case_tests (c : Corpus.Case.t) =
  [
    Alcotest.test_case (c.Corpus.Case.case_id ^ " stages valid") `Quick (validate_case c);
    Alcotest.test_case (c.Corpus.Case.case_id ^ " end-to-end") `Quick (end_to_end c);
    Alcotest.test_case
      (c.Corpus.Case.case_id ^ " tests-only misses regression")
      `Quick (tests_only_misses c);
  ]

(* corpus-level invariants from the §2.1 study *)
let test_corpus_counts () =
  Alcotest.(check int) "16 cases" 16 Corpus.Registry.n_cases;
  Alcotest.(check int) "34 bugs" 34 Corpus.Registry.n_bugs;
  Alcotest.(check int) "46 ephemeral bugs" 46 Corpus.Registry.ephemeral_bug_total;
  let share = Corpus.Registry.old_semantics_share () in
  Alcotest.(check bool)
    (Fmt.str "old-semantics share ~68%% (got %.1f%%)" (100. *. share))
    true
    (share > 0.60 && share < 0.75)

let test_system_versions_build () =
  List.iter
    (fun system ->
      List.iter
        (fun version ->
          let p = Corpus.Registry.system_program system ~version in
          match Minilang.Typecheck.check_program p with
          | [] -> ()
          | errs ->
              Alcotest.fail
                (Fmt.str "%s v%d: %s" system version
                   (Minilang.Typecheck.errors_to_string errs)))
        (List.init (Corpus.Registry.max_version + 1) Fun.id))
    Corpus.Registry.systems

let test_system_suites_green () =
  (* every assembled release is green in CI — the corpus bugs are latent *)
  List.iter
    (fun system ->
      let p = Corpus.Registry.system_program system ~version:Corpus.Registry.max_version in
      List.iter
        (fun name ->
          match Minilang.Interp.run_test p name with
          | Minilang.Interp.Passed -> ()
          | Minilang.Interp.Failed m | Minilang.Interp.Errored m ->
              Alcotest.fail (Fmt.str "%s latest: %s: %s" system name m))
        (Minilang.Interp.test_names p))
    Corpus.Registry.systems

let suite =
  [
    ("pipeline.zookeeper", List.concat_map case_tests Corpus.Zookeeper.cases);
    ("pipeline.hbase", List.concat_map case_tests Corpus.Hbase.cases);
    ("pipeline.hdfs", List.concat_map case_tests Corpus.Hdfs.cases);
    ("pipeline.cassandra", List.concat_map case_tests Corpus.Cassandra.cases);
    ( "pipeline.corpus",
      [
        Alcotest.test_case "study counts" `Quick test_corpus_counts;
        Alcotest.test_case "assembled releases typecheck" `Quick test_system_versions_build;
        Alcotest.test_case "assembled releases green" `Quick test_system_suites_green;
      ] );
  ]
