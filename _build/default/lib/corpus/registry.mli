(** The assembled incident corpus: 16 regression cases, 34 bugs, across
    four subject systems, plus whole-system release assembly and the
    study-metadata constants the paper quotes. *)

val all_cases : Case.t list

val systems : string list

val cases_of_system : string -> Case.t list

val find_case : string -> Case.t option

val n_cases : int

val n_bugs : int

val n_bugs_violating_old_semantics : int

(** {1 Whole-system versions}

    Version [v] puts every case at stage [min v latest_stage]: v0 is the
    original release, v2 the all-regressed release, v5 the "latest"
    release carrying the two §4 unknown bugs. *)

val max_version : int

val stage_at_version : Case.t -> int -> int

val system_source : string -> version:int -> string

val system_program : string -> version:int -> Minilang.Ast.program

(** Human-readable commit log of a system's history. *)
val commit_history : string -> (int * string) list

(** {1 Study metadata} (constants reported by the paper's survey) *)

val changes_per_day_gcp : int

val avg_test_files : int

val ephemeral_bug_histogram : (int * int) list

val ephemeral_bug_total : int

(** Share of corpus bugs violating semantics that predate the first
    stable release (the paper quotes 68%). *)
val old_semantics_share : unit -> float
