lib/minilang/typecheck.mli: Ast Format Loc
