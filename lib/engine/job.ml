(** The engine's job model.

    One job per (program-version fingerprint × rule).  Job ids are
    deterministic digests, so re-submitting the same version/rule pair
    names the same job on every run and on every machine.

    Jobs carry a cost estimate used as the scheduling priority: the
    worker pool drains jobs most-expensive-first, which minimizes the
    makespan tail when the pool is wider than one domain (classic LPT
    scheduling).  Ties break on job id, keeping the order — and with it
    the [jobs = 1] execution — fully deterministic. *)

type t = {
  job_id : string;  (** digest of (program fingerprint, rule id) *)
  rule_id : string;
  key : string;  (** report-cache key ({!Fingerprint.job_key}) *)
  priority : int;  (** estimated cost; higher schedules earlier *)
  prepared : Checker.prepared;
}

(* Estimated dynamic-phase cost.  State guards run [tests × paths]
   concolic explorations; lock rules sweep the whole suite plus a
   whole-program static scan, which in practice dominates any single
   guard, hence the large constant. *)
let estimate_cost (pr : Checker.prepared) : int =
  let n_tests = List.length pr.Checker.prep_tests in
  match pr.Checker.prep_kind with
  | Checker.Prep_guard _ ->
      n_tests * (1 + List.length (Checker.prepared_static_paths pr))
  | Checker.Prep_lock _ -> 10_000 + n_tests

let make ~(program_fp : string) ~(key : string) (pr : Checker.prepared) : t =
  let rule_id = pr.Checker.prep_rule.Semantics.Rule.rule_id in
  {
    job_id = Fingerprint.job_id ~program_fp ~rule_id;
    rule_id;
    key;
    priority = estimate_cost pr;
    prepared = pr;
  }

(* [a] schedules before [b]? — higher priority first, job id tie-break *)
let before (a : t) (b : t) : bool =
  a.priority > b.priority || (a.priority = b.priority && a.job_id < b.job_id)

(** {1 Priority queue} — array-backed binary max-heap. *)

module Heap = struct
  type job = t

  type t = { mutable items : job array; mutable size : int }

  let create () = { items = [||]; size = 0 }

  let length h = h.size

  let is_empty h = h.size = 0

  let swap h i j =
    let tmp = h.items.(i) in
    h.items.(i) <- h.items.(j);
    h.items.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before h.items.(i) h.items.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < h.size && before h.items.(l) h.items.(!best) then best := l;
    if r < h.size && before h.items.(r) h.items.(!best) then best := r;
    if !best <> i then begin
      swap h i !best;
      sift_down h !best
    end

  let push h job =
    if h.size = Array.length h.items then begin
      let grown = Array.make (max 8 (2 * h.size)) job in
      Array.blit h.items 0 grown 0 h.size;
      h.items <- grown
    end;
    h.items.(h.size) <- job;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.items.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.items.(0) <- h.items.(h.size);
        sift_down h 0
      end;
      Some top
    end

  let of_list jobs =
    let h = create () in
    List.iter (push h) jobs;
    h
end

(** Jobs in scheduling order (highest priority first, deterministic). *)
let schedule (jobs : t list) : t list =
  let h = Heap.of_list jobs in
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some j -> drain (j :: acc)
  in
  drain []
