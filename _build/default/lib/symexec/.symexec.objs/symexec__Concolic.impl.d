lib/symexec/concolic.ml: Ast Builtins Fmt Hashtbl Interp List Loc Minilang Smt String Sym Value
