lib/oracle/test_select.ml: Analysis Ast Interp List Minilang Pretty Semantics String Tfidf
