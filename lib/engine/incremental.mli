(** Incremental invalidation between consecutive program versions, via
    [lib/diffing]'s structural diff plus call-graph regions.

    Invalidation rule: a rule is re-enforced iff a method of its region
    changed, an added/removed statement matches its target spec, or it is
    a lock rule (whole-program region) and anything changed.  Unaffected
    rules reuse their previous report verbatim. *)

open Minilang

type change_summary = {
  ch_methods : string list;
      (** qualified names added, removed, or changed, sorted *)
  ch_stmt_texts : string list;
      (** printed heads of every added/removed statement, including every
          statement of added/removed methods *)
}

val no_changes : change_summary -> bool

(** Structural diff of two versions, summarized for invalidation. *)
val summarize : prev:Ast.program -> cur:Ast.program -> change_summary

(** Must [rule] be re-enforced after [changes]?  [region] is the method
    set recorded when the rule last ran. *)
val rule_affected :
  change_summary -> region:string list -> Semantics.Rule.t -> bool
