(** Line-based diffs (LCS), unified-patch rendering, and patch application.

    [split_lines] is the exact inverse of [String.concat "\n"], so
    [apply a (diff a b) = b] holds verbatim. *)

type edit =
  | Keep of string  (** line present in both versions *)
  | Del of string  (** line only in the old version *)
  | Add of string  (** line only in the new version *)

val split_lines : string -> string list

(** LCS-based edit script between two line lists. *)
val diff_lines : string list -> string list -> edit list

val diff : string -> string -> edit list

val added_lines : edit list -> string list

val deleted_lines : edit list -> string list

val is_identity : edit list -> bool

(** Apply an edit script to the old text it was computed from.
    @raise Invalid_argument when the script does not match. *)
val apply : string -> edit list -> string

type hunk = {
  old_start : int;  (** 1-based line number in the old text *)
  old_len : int;
  new_start : int;
  new_len : int;
  lines : edit list;
}

(** Group an edit script into unified-diff hunks with [context] lines of
    surrounding context (default 3). *)
val hunks : ?context:int -> edit list -> hunk list

(** Render in unified-diff format (the "code patch" input of the paper's
    Listing 1 prompt). *)
val to_unified :
  ?context:int -> ?old_label:string -> ?new_label:string -> edit list -> string

(** Added and deleted line counts. *)
val stats : edit list -> int * int
