(** Experiment drivers for the remaining figures and sections:
    E2 (Figures 2-3), E4 (Figure 5), E5 (Figure 6), E6/E7 (§4), E9 (§5). *)

(* ------------------------------------------------------------------ *)
(* E2 — the ZooKeeper ephemeral-node walkthrough (Figures 2 and 3)     *)
(* ------------------------------------------------------------------ *)

module Zk_ephemeral = struct
  type t = {
    rule : string;
    stage1_clean : bool;
    stage2_violations : (string * string) list;  (** method, counterexample *)
    stage3_clean : bool;
    zombie_demo : string;  (** the Figure 2 stale-registration scenario *)
  }

  (* the Figure 2 scenario: Kafka registers a consumer while the session is
     closing; on the buggy learner path the registration outlives the
     session and clients keep resolving the dead address *)
  let zombie_scenario () : string =
    let c =
      match Corpus.Registry.find Corpus.Registry.builtin "zk-ephemeral" with
      | Some c -> c
      | None -> invalid_arg "zk-ephemeral case missing"
    in
    let src =
      c.Corpus.Case.source 2
      ^ {|
method scenario_kafka_zombie(): str {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var lrp: LearnerRequestProcessor = new LearnerRequestProcessor(prep.tracker, prep.tree);
  var s: Session = new Session(42, "kafka-consumer-42");
  prep.tracker.addSession(s);
  // the session closes: closing is set and owned ephemerals are removed
  prep.tracker.setClosing(42);
  prep.tree.killSession(42);
  // ... but an in-flight forwarded create lands on the closing session
  // AFTER teardown already swept its ephemerals (the ZK-1208 race)
  lrp.forwardCreate(42, "/consumers/42");
  if (prep.tree.hasNode("/consumers/42")) {
    return "ZOMBIE: /consumers/42 still registered after session close";
  }
  return "clean";
}
|}
    in
    let p = Minilang.Parser.program ~file:"zombie.mj" src in
    match Minilang.Interp.run_function p "scenario_kafka_zombie" [] with
    | st, v -> Minilang.Value.to_string ~heap:st.Minilang.Interp.heap v
    | exception _ -> "scenario error"

  let run () : t =
    let c =
      match Corpus.Registry.find Corpus.Registry.builtin "zk-ephemeral" with
      | Some c -> c
      | None -> invalid_arg "zk-ephemeral case missing"
    in
    let outcome = Pipeline.learn (Corpus.Case.original_ticket c) in
    let book =
      Semantics.Rulebook.of_rules ~system:"zookeeper" outcome.Pipeline.accepted
    in
    let check stage = Pipeline.enforce (Corpus.Case.program_at c stage) book in
    let violations stage =
      List.concat_map
        (fun (r : Checker.rule_report) ->
          List.map
            (fun (t : Checker.trace_verdict) ->
              ( t.Checker.tv_method,
                match t.Checker.tv_result with
                | Smt.Solver.Violation m -> Smt.Solver.model_to_string m
                | Smt.Solver.Verified -> "verified"
                | Smt.Solver.Undecided reason -> "undecided: " ^ reason ))
            r.Checker.rep_violations)
        (check stage)
    in
    {
      rule =
        String.concat "; "
          (List.map Semantics.Rule.to_string outcome.Pipeline.accepted);
      stage1_clean = violations 1 = [];
      stage2_violations = violations 2;
      stage3_clean = violations 3 = [];
      zombie_demo = zombie_scenario ();
    }

  let print (t : t) : string =
    String.concat "\n"
      ([
         "E2 / Figures 2-3 — ZK-1208 -> ZK-1496 ephemeral-node regression";
         "----------------------------------------------------------------";
         "learned rule: " ^ t.rule;
         Fmt.str "v1' (after ZK-1208 fix): %s" (if t.stage1_clean then "clean" else "VIOLATION");
         "v2 (learner path added):";
       ]
      @ List.map
          (fun (m, cex) -> Fmt.str "  VIOLATION in %s — counterexample: %s" m cex)
          t.stage2_violations
      @ [
          Fmt.str "v2' (after ZK-1496 fix): %s" (if t.stage3_clean then "clean" else "VIOLATION");
          "";
          "Figure 2 scenario on the regressed version: " ^ t.zombie_demo;
        ])
end

(* ------------------------------------------------------------------ *)
(* E4 — the workflow walkthrough (Figure 5)                            *)
(* ------------------------------------------------------------------ *)

module Workflow = struct
  let run () : string =
    let c =
      match Corpus.Registry.find Corpus.Registry.builtin "zk-ephemeral" with
      | Some c -> c
      | None -> invalid_arg "zk-ephemeral case missing"
    in
    let ticket = Corpus.Case.original_ticket c in
    let outcome = Pipeline.learn ticket in
    let buf = Buffer.create 2048 in
    let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    pf "E4 / Figure 5 — end-to-end workflow on %s" ticket.Oracle.Ticket.ticket_id;
    pf "--------------------------------------------------------";
    List.iter
      (fun (l : Pipeline.stage_log) -> pf "[%-11s] %s" l.Pipeline.stage l.Pipeline.detail)
      outcome.Pipeline.log;
    pf "";
    pf "inference output (Listing 1 JSON schema):";
    pf "%s" (Oracle.Inference.to_json outcome.Pipeline.inference);
    pf "";
    pf "diff consumed by the prompt:";
    pf "%s" (Oracle.Ticket.diff ticket);
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* E5 — rule generalization (Figure 6)                                 *)
(* ------------------------------------------------------------------ *)

module Generalization = struct
  type row = {
    g_scope : string;
    g_catches_regression : bool;
    g_false_positives : int;  (** findings on the *fixed* version (stage 3) *)
  }

  (* count lock findings of a single rule against a stage *)
  let findings_of rule (p : Minilang.Ast.program) : int =
    let r = Checker.check_rule p rule in
    List.length r.Checker.rep_lock_findings

  let run () : row list =
    let c =
      match Corpus.Registry.find Corpus.Registry.builtin "zk-serialize-lock" with
      | Some c -> c
      | None -> invalid_arg "zk-serialize-lock case missing"
    in
    let ticket = Corpus.Case.original_ticket c in
    (* un-generalized inference output *)
    let inferred =
      (Oracle.Inference.infer ticket).Oracle.Inference.inf_rules
      |> List.filter Semantics.Rule.is_lock_rule
    in
    let specific = match inferred with r :: _ -> r | [] -> invalid_arg "no lock rule" in
    let generalized = Semantics.Rule.generalize specific in
    let naive = Semantics.Rule.broaden_naively specific in
    let regressed = Corpus.Case.program_at c 2 in
    let fixed = Corpus.Case.program_at c 3 in
    List.map
      (fun (name, rule) ->
        {
          g_scope = name;
          g_catches_regression = findings_of rule regressed > 0;
          g_false_positives = findings_of rule fixed;
        })
      [
        ("specific (method-scoped, as first learned)", specific);
        ("generalized (no blocking I/O under any lock)", generalized);
        ("naive broadening (no calls at all under locks)", naive);
      ]

  let print (rows : row list) : string =
    let buf = Buffer.create 512 in
    let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    pf "E5 / Figure 6 — generalizing the ZK-2201 rule";
    pf "----------------------------------------------";
    pf "%-48s %-20s %-16s" "rule scope" "catches ZK-3531?" "false positives";
    List.iter
      (fun r ->
        pf "%-48s %-20s %-16d" r.g_scope
          (if r.g_catches_regression then "yes" else "NO")
          r.g_false_positives)
      rows;
    pf "";
    pf "expected shape: the specific rule misses the new site; the naive broadening";
    pf "catches it but flags benign in-memory calls; the behavioural generalization";
    pf "(\"no blocking I/O within synchronized blocks\") catches it cleanly.";
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* E6/E7 — previously-unknown bugs in the latest releases (§4)         *)
(* ------------------------------------------------------------------ *)

module Unknown_bugs = struct
  type finding = {
    f_case : string;
    f_bug_id : string;  (** the ticket eventually filed *)
    f_methods : string list;  (** methods with violating paths *)
    f_counterexamples : string list;
  }

  let run_case (case_id : string) : finding =
    let c =
      match Corpus.Registry.find Corpus.Registry.builtin case_id with
      | Some c -> c
      | None -> invalid_arg (case_id ^ " missing")
    in
    (* learn from all *closed* tickets (the known history), then scan the
       latest release *)
    let known_tickets =
      List.filter_map
        (fun (stage, _, _, _) ->
          if stage <= c.Corpus.Case.latest_stage then Corpus.Case.ticket_at c stage
          else None)
        c.Corpus.Case.ticket_meta
    in
    let book, _ = Pipeline.learn_all ~system:c.Corpus.Case.system known_tickets in
    let latest = Corpus.Case.program_at c c.Corpus.Case.latest_stage in
    let reports = Pipeline.enforce latest book in
    let violations =
      List.concat_map (fun (r : Checker.rule_report) -> r.Checker.rep_violations) reports
    in
    {
      f_case = case_id;
      f_bug_id = List.nth c.Corpus.Case.bug_ids (List.length c.Corpus.Case.bug_ids - 1);
      f_methods =
        List.sort_uniq compare
          (List.map (fun (t : Checker.trace_verdict) -> t.Checker.tv_method) violations);
      f_counterexamples =
        List.filter_map
          (fun (t : Checker.trace_verdict) ->
            match t.Checker.tv_result with
            | Smt.Solver.Violation m -> Some (Smt.Solver.model_to_string m)
            | Smt.Solver.Verified | Smt.Solver.Undecided _ -> None)
          violations;
    }

  let run () : finding list =
    [ run_case "hbase-snapshot-ttl"; run_case "hdfs-observer-locations" ]

  let print (fs : finding list) : string =
    let buf = Buffer.create 512 in
    let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    pf "E6/E7 / §4 — previously-unknown bugs in the latest releases";
    pf "------------------------------------------------------------";
    List.iter
      (fun f ->
        pf "%s -> new bug %s" f.f_case f.f_bug_id;
        List.iter (fun m -> pf "  violating path in %s" m) f.f_methods;
        List.iter (fun cex -> pf "  counterexample: %s" cex) f.f_counterexamples;
        pf "")
      fs;
    (* the paper proposed the fixes and had them accepted; synthesize and
       verify them mechanically *)
    List.iter
      (fun f -> pf "%s" (Fix.print_case_fixes (Fix.fix_unknown_bug f.f_case)))
      fs;
    pf "paper: Bug #1 (HBASE-29296) missing snapshot-expiration checks;";
    pf "       Bug #2 (HDFS-17768) empty block locations in getBatchedListing;";
    pf "       both proposed fixes were accepted by the systems' developers.";
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* E9 — LLM noise and the cross-check mitigation (§5)                  *)
(* ------------------------------------------------------------------ *)

module Noise = struct
  type row = {
    n_epsilon : float;
    n_cross_check : bool;
    n_corrupted_accepted : int;  (** corrupted rules that entered the rulebook *)
    n_recall : float;  (** share of guard-case regressions still caught *)
    n_false_alarms : int;  (** findings on fixed versions (stage 3) *)
  }

  let is_corrupted (r : Semantics.Rule.t) : bool =
    let id = r.Semantics.Rule.rule_id in
    let has_suffix s =
      Diffing.Textutil.contains_sub id s
    in
    has_suffix ".weak" || has_suffix ".flip" || has_suffix ".ghost"

  let guard_cases ?(registry = Corpus.Registry.builtin) () =
    List.filter
      (fun (c : Corpus.Case.t) -> c.Corpus.Case.kind = Corpus.Case.Guard)
      registry.Corpus.Registry.cases

  let run_one ?registry ~(epsilon : float) ~(cross_check : bool) ~(seed : int)
      () : row =
    let cases = guard_cases ?registry () in
    let corrupted = ref 0 in
    let caught = ref 0 in
    let false_alarms = ref 0 in
    List.iter
      (fun (c : Corpus.Case.t) ->
        let config =
          {
            Pipeline.default_config with
            Pipeline.noise = { Oracle.Inference.epsilon; seed };
            cross_check;
          }
        in
        let outcome = Pipeline.learn ~config (Corpus.Case.original_ticket c) in
        corrupted := !corrupted + List.length (List.filter is_corrupted outcome.Pipeline.accepted);
        let book =
          Semantics.Rulebook.of_rules ~system:c.Corpus.Case.system outcome.Pipeline.accepted
        in
        let flag stage = Pipeline.findings (Pipeline.enforce (Corpus.Case.program_at c stage) book) in
        if flag 2 <> [] then incr caught;
        false_alarms := !false_alarms + List.length (flag 3))
      cases;
    {
      n_epsilon = epsilon;
      n_cross_check = cross_check;
      n_corrupted_accepted = !corrupted;
      n_recall = float_of_int !caught /. float_of_int (List.length cases);
      n_false_alarms = !false_alarms;
    }

  let run () : row list =
    List.concat_map
      (fun epsilon ->
        [
          run_one ~epsilon ~cross_check:false ~seed:7 ();
          run_one ~epsilon ~cross_check:true ~seed:7 ();
        ])
      [ 0.0; 0.2; 0.4; 0.6 ]

  let print (rows : row list) : string =
    let buf = Buffer.create 512 in
    let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
    pf "E9 / §5 — LLM noise vs. the cross-checking mitigation";
    pf "------------------------------------------------------";
    pf "%8s %12s %18s %8s %13s" "epsilon" "cross-check" "corrupted-in-book" "recall"
      "false-alarms";
    List.iter
      (fun r ->
        pf "%8.1f %12s %18d %7.0f%% %13d" r.n_epsilon
          (if r.n_cross_check then "on" else "off")
          r.n_corrupted_accepted (100. *. r.n_recall) r.n_false_alarms)
      rows;
    pf "";
    pf "expected shape: without cross-checking, hallucinated rules enter the book";
    pf "and recall degrades / false alarms appear as epsilon grows; grounding each";
    pf "rule against the patched version filters the corrupted ones out.";
    Buffer.contents buf
end
