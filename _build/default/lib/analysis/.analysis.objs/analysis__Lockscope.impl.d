lib/analysis/lockscope.ml: Ast Builtins Callgraph Fmt List Minilang
