(** Structural (AST-level) diff between two versions of a MiniJava program.

    The inference engine in [lib/oracle] does not work on raw text: it needs
    to know *which guards a patch added* and *which statements those guards
    protect*.  This module compares two parsed programs and reports, per
    modified method:

    - added/removed [if] guards (conditions present in one version only);
    - added/removed plain statements;
    - for every added guard, the statements that the guard now protects
      (either the guard's own body, or — for early-exit guards — the
      statements that follow it in the enclosing block).

    Matching is done on the canonical printed text of statements
    ({!Minilang.Pretty}), which makes the diff robust to location and sid
    changes between versions. *)

open Minilang

type guard_kind =
  | Early_exit  (** guard body throws or returns: it *rejects* executions *)
  | Wrapper  (** guard wraps the protected logic in its own body *)

type added_guard = {
  g_method : string;  (** qualified name of the enclosing method *)
  g_cond : Ast.expr;  (** the guard condition as written in the new version *)
  g_kind : guard_kind;
  g_sid : int;  (** sid of the guard in the *new* program *)
  g_protected : Ast.stmt list;
      (** statements the guard protects, in the new program *)
}

type method_change = {
  mc_qname : string;
  mc_added_stmts : string list;  (** printed heads of statements only in new *)
  mc_removed_stmts : string list;  (** printed heads of statements only in old *)
  mc_added_guards : added_guard list;
}

type t = {
  added_methods : string list;
  removed_methods : string list;
  changed_methods : method_change list;
}

let stmt_key (st : Ast.stmt) : string = Pretty.stmt_head_to_string st

let method_map (p : Ast.program) : (string * Ast.method_decl) list =
  List.map (fun (cls, m) -> (Ast.qualified_name cls m, m)) (Ast.methods_of_program p)

let body_text (m : Ast.method_decl) : string = Pretty.method_to_string m

(* multiset of statement keys in a method *)
let stmt_keys (m : Ast.method_decl) : string list =
  List.map stmt_key (Ast.stmts_of_method m)

let multiset_sub (a : string list) (b : string list) : string list =
  (* elements of [a] not matched by an occurrence in [b] *)
  let b = ref b in
  List.filter
    (fun x ->
      let rec remove acc = function
        | [] -> None
        | y :: rest -> if String.equal x y then Some (List.rev_append acc rest) else remove (y :: acc) rest
      in
      match remove [] !b with
      | Some rest ->
          b := rest;
          false
      | None -> true)
    a

(* Does a block unconditionally exit (return/throw) on every path? *)
let rec block_exits (b : Ast.block) : bool = List.exists stmt_exits b

and stmt_exits (st : Ast.stmt) : bool =
  match st.Ast.s with
  | Ast.Return _ | Ast.Throw _ -> true
  (* break/continue leave the current straight-line path, so a guard whose
     body ends in one protects the statements that follow it *)
  | Ast.Break | Ast.Continue -> true
  | Ast.If (_, b1, b2) -> block_exits b1 && b2 <> [] && block_exits b2
  | Ast.Sync (_, b) -> block_exits b
  | Ast.Try _ | Ast.While _ | Ast.Decl _ | Ast.Assign _ | Ast.Expr _ | Ast.Assert _ ->
      false

(* Interesting protected statements: calls and writes — the things a
   low-level semantic typically constrains. *)
let is_protectable (st : Ast.stmt) : bool =
  match st.Ast.s with
  | Ast.Expr _ | Ast.Assign _ | Ast.Return (Some _) | Ast.Decl (_, _, Some _) -> true
  | Ast.Return None | Ast.Decl (_, _, None) | Ast.If _ | Ast.While _ | Ast.Throw _
  | Ast.Try _ | Ast.Sync _ | Ast.Assert _ | Ast.Break | Ast.Continue ->
      false

(* Find guards in [m_new] whose condition text does not appear as a guard
   in [m_old].  For each, compute the protected statements. *)
let added_guards_of ~qname (m_old : Ast.method_decl) (m_new : Ast.method_decl) :
    added_guard list =
  let guard_conds (m : Ast.method_decl) : string list =
    List.filter_map
      (fun (st : Ast.stmt) ->
        match st.Ast.s with
        | Ast.If (c, _, _) -> Some (Pretty.expr_to_string c)
        | _ -> None)
      (Ast.stmts_of_method m)
  in
  let old_conds = guard_conds m_old in
  let result = ref [] in
  (* walk blocks of the new method so we can see what follows each guard *)
  let rec walk_block (b : Ast.block) : unit =
    match b with
    | [] -> ()
    | st :: rest ->
        (match st.Ast.s with
        | Ast.If (c, b1, b2) ->
            let cond_text = Pretty.expr_to_string c in
            (if not (List.mem cond_text old_conds) then
               let kind, protected_stmts =
                 if block_exits b1 && b2 = [] then
                   (* early-exit guard: it protects what follows *)
                   (Early_exit, List.filter is_protectable rest)
                 else (Wrapper, List.filter is_protectable b1)
               in
               result :=
                 {
                   g_method = qname;
                   g_cond = c;
                   g_kind = kind;
                   g_sid = st.Ast.sid;
                   g_protected = protected_stmts;
                 }
                 :: !result);
            walk_block b1;
            walk_block b2
        | Ast.While (_, body) -> walk_block body
        | Ast.Try (body, _, h) ->
            walk_block body;
            walk_block h
        | Ast.Sync (_, body) -> walk_block body
        | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Throw _ | Ast.Expr _
        | Ast.Assert _ | Ast.Break | Ast.Continue ->
            ());
        walk_block rest
  in
  walk_block m_new.Ast.m_body;
  List.rev !result

(* Guard conditions *extended* in place: same guard statement position but
   the condition text changed (e.g. [s == null] became
   [s == null || s.closing]).  We detect them as a removed+added guard pair
   where the old condition is a syntactic sub-expression of the new one. *)
let extended_guards_of ~qname (m_old : Ast.method_decl) (m_new : Ast.method_decl) :
    added_guard list =
  let guards (m : Ast.method_decl) =
    List.filter_map
      (fun (st : Ast.stmt) ->
        match st.Ast.s with
        | Ast.If (c, b1, b2) -> Some (st, c, b1, b2)
        | _ -> None)
      (Ast.stmts_of_method m)
  in
  let old_guard_texts = List.map (fun (_, c, _, _) -> Pretty.expr_to_string c) (guards m_old) in
  List.filter_map
    (fun (st, c, b1, b2) ->
      let text = Pretty.expr_to_string c in
      if List.mem text old_guard_texts then None
      else
        (* is some old guard a strict sub-expression of this one? *)
        let is_extension =
          List.exists
            (fun old_text ->
              (not (String.equal old_text text))
              && Textutil.contains_sub text old_text)
            old_guard_texts
        in
        if not is_extension then None
        else
          let kind = if block_exits b1 && b2 = [] then Early_exit else Wrapper in
          Some
            {
              g_method = qname;
              g_cond = c;
              g_kind = kind;
              g_sid = st.Ast.sid;
              g_protected = [];
            })
    (guards m_new)

(** Compare two program versions. *)
let compare_programs (old_p : Ast.program) (new_p : Ast.program) : t =
  let old_methods = method_map old_p and new_methods = method_map new_p in
  let old_names = List.map fst old_methods and new_names = List.map fst new_methods in
  let added_methods = List.filter (fun n -> not (List.mem n old_names)) new_names in
  let removed_methods = List.filter (fun n -> not (List.mem n new_names)) old_names in
  let changed_methods =
    List.filter_map
      (fun (qname, m_new) ->
        match List.assoc_opt qname old_methods with
        | None -> None
        | Some m_old ->
            if String.equal (body_text m_old) (body_text m_new) then None
            else
              let old_keys = stmt_keys m_old and new_keys = stmt_keys m_new in
              Some
                {
                  mc_qname = qname;
                  mc_added_stmts = multiset_sub new_keys old_keys;
                  mc_removed_stmts = multiset_sub old_keys new_keys;
                  mc_added_guards =
                    (* [added_guards_of] already covers extended guards (their
                       new text is absent from the old version); keep
                       [extended_guards_of] results only for sids it missed. *)
                    (let primary = added_guards_of ~qname m_old m_new in
                     let seen = List.map (fun g -> g.g_sid) primary in
                     primary
                     @ List.filter
                         (fun g -> not (List.mem g.g_sid seen))
                         (extended_guards_of ~qname m_old m_new));
                })
      new_methods
  in
  { added_methods; removed_methods; changed_methods }

let all_added_guards (t : t) : added_guard list =
  List.concat_map (fun mc -> mc.mc_added_guards) t.changed_methods

let pp_guard ppf (g : added_guard) =
  Fmt.pf ppf "%s: if (%s) [%s] protecting %d stmt(s)" g.g_method
    (Pretty.expr_to_string g.g_cond)
    (match g.g_kind with Early_exit -> "early-exit" | Wrapper -> "wrapper")
    (List.length g.g_protected)
