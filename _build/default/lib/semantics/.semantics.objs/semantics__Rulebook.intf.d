lib/semantics/rulebook.mli: Minilang Rule
