lib/mc/explorer.mli: Minilang
