(** Domain-based worker pool.  [jobs <= 1] is a plain serial map on the
    calling domain (bit-for-bit deterministic); [jobs > 1] spawns up to
    [jobs] domains draining a shared atomic index, with results returned
    in input order — so output is independent of the pool width whenever
    the mapped function is deterministic per item.

    The optional [init]/[finish] hooks bracket each worker domain's
    lifetime: [init] runs on the worker before its first item (warm up
    [Domain.DLS] caches), [finish] after its last (drain domain-local
    buffers that must outlive the domain).  The serial path runs both
    hooks on the calling domain. *)

(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core to
    the scheduler. *)
val default_jobs : unit -> int

(** Per-slot results: every failed item keeps its own exception in its
    own slot (no error loss), every other item still computes.  The
    fault-tolerant entry point the engine's retry/quarantine loop
    drives. *)
val map_results :
  ?init:(unit -> unit) ->
  ?finish:(unit -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn) result array

(** The indexed failures of a [map_results] run, in slot order. *)
val failures : ('b, exn) result array -> (int * exn) list

(** Raising wrapper: re-raises the first failure by input index
    (deterministically the same one at any pool width). *)
val map :
  ?init:(unit -> unit) ->
  ?finish:(unit -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array

val map_list :
  ?init:(unit -> unit) ->
  ?finish:(unit -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list

(** {1 Persistent pool}

    Long-lived workers for measurement loops: domain spawn costs
    milliseconds, which drowns sub-millisecond batches when a pool is
    rebuilt per measurement.  A persistent pool spawns its workers once
    at {!create_persistent} (cost recorded in {!persistent_spawn_s}) and
    hands each {!persistent_map} batch over with a condition-variable
    wakeup instead of a spawn.  Batch semantics match {!map}: shared
    atomic claim index, results in input slots, caller drains too, first
    failure by input index re-raised.  One batch at a time per pool. *)

type persistent

(** Spawn [jobs - 1] long-lived workers ([jobs <= 1] stays serial on
    the caller).  [init] runs once per worker domain (and on the
    caller); [finish] runs as each worker retires at {!shutdown} (and
    on the caller after the join). *)
val create_persistent :
  ?init:(unit -> unit) ->
  ?finish:(unit -> unit) ->
  jobs:int ->
  unit ->
  persistent

(** One-time domain spawn cost of this pool, in seconds — report it
    separately instead of folding it into per-batch wall times. *)
val persistent_spawn_s : persistent -> float

val persistent_map : persistent -> ('a -> 'b) -> 'a array -> 'b array

(** Join the workers (running their [finish] hooks, then the caller's).
    The pool must not be used afterwards. *)
val shutdown : persistent -> unit
