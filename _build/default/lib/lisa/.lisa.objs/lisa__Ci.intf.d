lib/lisa/ci.mli: Checker Corpus Pipeline Semantics
