lib/lisa/ablation.mli: Checker
