(** Satisfiability, validity, and the paper's trace checks.

    A small DPLL(T): boolean backtracking over canonical atoms with
    three-valued early evaluation, pruned by the theory solver on every
    partial assignment.  Complete for the checker-formula fragment. *)

type verdict = Sat of (Formula.atom * bool) list | Unsat

val verdict_is_sat : verdict -> bool

(** Number of [solve] invocations since the last {!reset_solve_count}.
    Shared (atomically) across domains; the enforcement engine uses the
    delta to report solver calls saved by caching. *)
val solve_count : unit -> int

val reset_solve_count : unit -> unit

(** Decide satisfiability.  A [Sat] model assigns a sign to each canonical
    atom of the (simplified) formula. *)
val solve : Formula.t -> verdict

val is_sat : Formula.t -> bool

val is_unsat : Formula.t -> bool

val is_valid : Formula.t -> bool

(** [entails pc c]: every state satisfying [pc] satisfies [c]. *)
val entails : Formula.t -> Formula.t -> bool

val equivalent : Formula.t -> Formula.t -> bool

(** {1 Trace checks (paper §3.2)} *)

type trace_check =
  | Verified  (** the path condition implies the checker formula *)
  | Violation of (Formula.atom * bool) list
      (** a state admitted by the path that violates the semantics *)

(** The complement check: a trace with path condition [pc] violates the
    semantic with checker formula [checker] iff [pc /\ !checker] is
    satisfiable.  Under-constrained variables ("missing checks") leave
    room for the complement, which is exactly how the paper catches the
    missing [s.ttl > 0] example. *)
val check_trace : pc:Formula.t -> checker:Formula.t -> trace_check

(** The naive direct check (ablation E8): flags a trace only when its path
    condition outright contradicts the checker formula; traces that merely
    miss a check slip through. *)
val check_trace_direct : pc:Formula.t -> checker:Formula.t -> trace_check

(** Render a model as a human-readable conjunction. *)
val model_to_string : (Formula.atom * bool) list -> string
