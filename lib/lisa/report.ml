(** Human-facing reports: render enforcement results the way a CI job
    would surface them to developers — one Markdown section per rule, a
    verdict table, counterexamples, and the uncovered-path list that asks
    for a developer verdict (§3.2's final step). *)

let h2 title = "## " ^ title

let bullet s = "- " ^ s

let code s = "`" ^ s ^ "`"

let render_trace (t : Checker.trace_verdict) : string =
  match t.Checker.tv_result with
  | Smt.Solver.Verified ->
      bullet
        (Fmt.str "VERIFIED — %s (driven by %s); path condition %s"
           (code t.Checker.tv_method) (code t.Checker.tv_entry)
           (code (Smt.Formula.to_string t.Checker.tv_pc)))
  | Smt.Solver.Violation model ->
      bullet
        (Fmt.str
           "**VIOLATION** — %s (driven by %s); the path admits %s"
           (code t.Checker.tv_method) (code t.Checker.tv_entry)
           (code (Smt.Solver.model_to_string model)))
  | Smt.Solver.Undecided reason ->
      bullet
        (Fmt.str "UNDECIDED — %s (driven by %s): %s"
           (code t.Checker.tv_method) (code t.Checker.tv_entry) reason)

let render_lock_finding (f : Checker.lock_finding) : string =
  bullet
    (Fmt.str "**LOCK VIOLATION** — %s performs %s while holding a monitor (%s, stmt %d)"
       (code f.Checker.lf_method) (code f.Checker.lf_op)
       (if f.Checker.lf_static then "static" else "dynamic")
       f.Checker.lf_sid)

(** Markdown section for one rule report. *)
let render_rule_report (r : Checker.rule_report) : string =
  let rule = r.Checker.rep_rule in
  let lines =
    [
      h2 (Fmt.str "Rule %s" rule.Semantics.Rule.rule_id);
      "";
      Fmt.str "> %s" rule.Semantics.Rule.description;
      Fmt.str "> protects: %s (learned from %s)" rule.Semantics.Rule.high_level
        rule.Semantics.Rule.origin;
      "";
      bullet (Fmt.str "contract: %s" (code (Semantics.Rule.to_string rule)));
      bullet
        (Fmt.str "targets: %d, static paths: %d, tests run: %d" r.Checker.rep_targets
           r.Checker.rep_static_paths
           (List.length r.Checker.rep_tests_run));
      bullet
        (Fmt.str "traces: %d (%d verified, %d violations); sanity %s"
           (List.length r.Checker.rep_traces)
           (List.length r.Checker.rep_verified)
           (List.length r.Checker.rep_violations)
           (if r.Checker.rep_sanity_ok then "ok" else "**failed**"));
    ]
  in
  let traces = List.map render_trace r.Checker.rep_traces in
  let locks = List.map render_lock_finding r.Checker.rep_lock_findings in
  let uncovered =
    match r.Checker.rep_uncovered_paths with
    | [] -> []
    | paths ->
        ("" :: bullet "uncovered execution paths (developer verdict needed):"
        :: List.map (fun p -> "  " ^ bullet (code p)) paths)
  in
  (* absent on a healthy run, so clean reports render byte-identically
     to the pre-resilience pipeline *)
  let degraded =
    match r.Checker.rep_degraded with
    | [] -> []
    | reasons ->
        ("" :: bullet "**DEGRADED** — evidence lost, verdict is best-effort:"
        :: List.map (fun why -> "  " ^ bullet why) reasons)
  in
  String.concat "\n" (lines @ [ "" ] @ traces @ locks @ uncovered @ degraded)

(** Full Markdown report for an enforcement run. *)
let render ?(title = "LISA enforcement report") (reports : Checker.rule_report list)
    : string =
  let violating = List.filter Checker.has_violations reports in
  let degraded = List.filter Checker.is_degraded reports in
  let verdict =
    if violating = [] && degraded <> [] then
      Fmt.str
        "**PASS (degraded)** — %d rule(s) checked, no violations, but %d \
         report(s) lost evidence."
        (List.length reports) (List.length degraded)
    else if violating = [] then
      Fmt.str "**PASS** — %d rule(s) checked, no violations." (List.length reports)
    else
      Fmt.str "**BLOCK** — %d of %d rule(s) violated: %s." (List.length violating)
        (List.length reports)
        (String.concat ", "
           (List.map
              (fun (r : Checker.rule_report) ->
                code r.Checker.rep_rule.Semantics.Rule.rule_id)
              violating))
  in
  String.concat "\n\n"
    (("# " ^ title) :: verdict :: List.map render_rule_report reports)

(* ------------------------------------------------------------------ *)
(* Triaged rendering (witness-replay tiers)                            *)
(* ------------------------------------------------------------------ *)

let render_triage_finding (f : Triage.finding) : string =
  bullet
    (Fmt.str "triage **%s** — %s (stmt %d): %s"
       (String.uppercase_ascii (Triage.tier_to_string f.Triage.f_tier))
       (code f.Triage.f_method) f.Triage.f_target_sid f.Triage.f_reason)

(** Markdown section for one triaged rule report: the plain section plus
    one tier bullet per finding. *)
let render_triaged_report (t : Triage.triaged) : string =
  let base = render_rule_report t.Triage.t_report in
  match t.Triage.t_findings with
  | [] -> base
  | fs ->
      String.concat "\n"
        (base :: "" :: List.map render_triage_finding fs)

(** Full Markdown report for a triaged enforcement run.  The verdict
    line counts only rules with findings that survived triage: a rule
    whose every finding is Likely-FP is demoted to advisory and cannot
    BLOCK on its own. *)
let render_triaged ?(title = "LISA enforcement report")
    (ts : Triage.triaged list) : string =
  let reports = List.map (fun t -> t.Triage.t_report) ts in
  let blocking = List.filter Triage.blocking ts in
  let demoted = Triage.demoted_ids ts in
  let degraded = List.filter Checker.is_degraded reports in
  let verdict =
    if blocking = [] && degraded <> [] then
      Fmt.str
        "**PASS (degraded)** — %d rule(s) checked, no blocking findings, \
         but %d report(s) lost evidence."
        (List.length reports) (List.length degraded)
    else if blocking = [] then
      Fmt.str "**PASS** — %d rule(s) checked, no blocking findings."
        (List.length reports)
    else
      Fmt.str "**BLOCK** — %d of %d rule(s) with witnessed or consistent \
               findings: %s."
        (List.length blocking) (List.length reports)
        (String.concat ", "
           (List.map
              (fun t ->
                code
                  t.Triage.t_report.Checker.rep_rule.Semantics.Rule.rule_id)
              blocking))
  in
  let demotion_note =
    if demoted = [] then []
    else
      [
        Fmt.str
          "_%d rule(s) demoted to advisory (every finding Likely-FP): %s_"
          (List.length demoted)
          (String.concat ", " (List.map code demoted));
      ]
  in
  String.concat "\n\n"
    ((("# " ^ title) :: verdict :: demotion_note)
    @ List.map render_triaged_report ts)
