(** Pipeline-backed verdict oracle for generated corpus cases.

    {!Corpus.Synth} can only check what the corpus layer sees (parse,
    typecheck, green tests); whether the *pipeline* handles a generated
    case correctly — rule learned from the original ticket, planted
    regression caught at stage 2, clean stages clean — needs the full
    learn/enforce stack, which lives up here.  The predicates below plug
    into [Synth.minimize]'s [fails] hook, making the generator a
    whole-pipeline fuzzer. *)

let sf = Printf.sprintf

(** [Some reason] unless: the original ticket yields at least one
    accepted rule, stage 1 (patched) is clean, stage 2 (the planted
    regression) has at least one finding, and stage 3 (the regression
    fix) is clean again. *)
let planted ?(config = Pipeline.default_config) (c : Corpus.Case.t) :
    string option =
  try
    let outcome = Pipeline.learn ~config (Corpus.Case.original_ticket c) in
    if outcome.Pipeline.accepted = [] then
      Some
        (sf "no rule accepted from %s (%d rejected)" c.Corpus.Case.case_id
           (List.length outcome.Pipeline.rejected))
    else
      let book =
        Semantics.Rulebook.of_rules ~system:c.Corpus.Case.system
          outcome.Pipeline.accepted
      in
      let findings_at stage =
        Pipeline.findings
          (Pipeline.enforce ~config (Corpus.Case.program_at c stage) book)
      in
      match
        List.find_map
          (fun (stage, expect_dirty) ->
            let found = findings_at stage <> [] in
            if found && not expect_dirty then
              Some (sf "stage %d: unexpected finding (clean stage)" stage)
            else if (not found) && expect_dirty then
              Some (sf "stage %d: planted violation not found" stage)
            else None)
          [ (1, false); (2, true); (3, false) ]
      with
      | Some e -> Some e
      | None -> None
  with e -> Some (sf "crash: %s" (Printexc.to_string e))

(** Validation plus {!planted}: the full fuzzer predicate. *)
let full ?config (c : Corpus.Case.t) : string option =
  match Corpus.Synth.validate_failure c with
  | Some e -> Some e
  | None -> planted ?config c
