(** Symbolic shadows for concolic execution.

    Every concrete value flowing through the concolic interpreter may carry
    a *shadow*: a canonical state path ([Session.closing]) or a constant.
    Shadows record provenance, not current value — they are what path
    conditions are written in terms of.

    Naming convention (shared with {!Semantics.Translate}): object roots
    are canonicalized to their class name, so a trace through local [s] and
    a rule learned from local [session] agree on the path ["Session"]. *)

type t =
  | S_var of string  (** canonical state path *)
  | S_int of int
  | S_bool of bool
  | S_str of string
  | S_null

let of_value (v : Minilang.Value.t) : t option =
  match v with
  | Minilang.Value.V_int n -> Some (S_int n)
  | Minilang.Value.V_bool b -> Some (S_bool b)
  | Minilang.Value.V_str s -> Some (S_str s)
  | Minilang.Value.V_null -> Some S_null
  | Minilang.Value.V_ref _ -> None

let to_term : t -> Smt.Formula.term = function
  | S_var p -> Smt.Formula.tvar p
  | S_int n -> Smt.Formula.tint n
  | S_bool b -> Smt.Formula.tbool b
  | S_str s -> Smt.Formula.tstr s
  | S_null -> Smt.Formula.tnull

let is_var = function S_var _ -> true | S_int _ | S_bool _ | S_str _ | S_null -> false

let to_string = function
  | S_var p -> p
  | S_int n -> string_of_int n
  | S_bool b -> string_of_bool b
  | S_str s -> Printf.sprintf "%S" s
  | S_null -> "null"

(** Root of a state path: ["Session.closing"] -> ["Session"]. *)
let root_of_path (p : string) : string =
  match String.index_opt p '.' with Some i -> String.sub p 0 i | None -> p

let mentions_root (roots : string list) (t : t) : bool =
  match t with
  | S_var p -> List.mem (root_of_path p) roots
  | S_int _ | S_bool _ | S_str _ | S_null -> false
