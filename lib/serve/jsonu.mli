(** Minimal JSON document type, parser, and printer for the serve
    protocol — no external dependency; complements
    [Telemetry.Json_check] (which validates without building a value).

    The printer is deterministic: fields render in the order given, with
    no whitespace, so protocol responses are stable byte-for-byte (the
    warm-vs-cold byte-identity gate depends on this). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [parse s]: the single JSON value in [s] (trailing whitespace
    allowed).  Numbers without fraction/exponent parse as [Int]. *)
val parse : string -> (t, string) result

(** Compact rendering (no spaces, object fields in given order). *)
val to_string : t -> string

(** {1 Accessors} (all total; [None] on shape mismatch) *)

(** Object field lookup. *)
val member : string -> t -> t option

val to_str : t -> string option

val to_int : t -> int option

val to_bool : t -> bool option

(** [Float] or [Int] (JSON "1" is a valid float). *)
val to_float : t -> float option

val to_list : t -> t list option

(** {1 Builders} *)

val string_list : string list -> t
