test/test_symexec.ml: Alcotest Ast Astring_contains Concolic Interp List Minilang Option Parser Smt Symexec
