(** Human-facing reports: render enforcement results the way a CI job
    would surface them to developers — one Markdown section per rule, a
    verdict table, counterexamples, and the uncovered-path list that asks
    for a developer verdict (§3.2's final step). *)

let h2 title = "## " ^ title

let bullet s = "- " ^ s

let code s = "`" ^ s ^ "`"

let render_trace (t : Checker.trace_verdict) : string =
  match t.Checker.tv_result with
  | Smt.Solver.Verified ->
      bullet
        (Fmt.str "VERIFIED — %s (driven by %s); path condition %s"
           (code t.Checker.tv_method) (code t.Checker.tv_entry)
           (code (Smt.Formula.to_string t.Checker.tv_pc)))
  | Smt.Solver.Violation model ->
      bullet
        (Fmt.str
           "**VIOLATION** — %s (driven by %s); the path admits %s"
           (code t.Checker.tv_method) (code t.Checker.tv_entry)
           (code (Smt.Solver.model_to_string model)))
  | Smt.Solver.Undecided reason ->
      bullet
        (Fmt.str "UNDECIDED — %s (driven by %s): %s"
           (code t.Checker.tv_method) (code t.Checker.tv_entry) reason)

let render_lock_finding (f : Checker.lock_finding) : string =
  bullet
    (Fmt.str "**LOCK VIOLATION** — %s performs %s while holding a monitor (%s, stmt %d)"
       (code f.Checker.lf_method) (code f.Checker.lf_op)
       (if f.Checker.lf_static then "static" else "dynamic")
       f.Checker.lf_sid)

(** Markdown section for one rule report. *)
let render_rule_report (r : Checker.rule_report) : string =
  let rule = r.Checker.rep_rule in
  let lines =
    [
      h2 (Fmt.str "Rule %s" rule.Semantics.Rule.rule_id);
      "";
      Fmt.str "> %s" rule.Semantics.Rule.description;
      Fmt.str "> protects: %s (learned from %s)" rule.Semantics.Rule.high_level
        rule.Semantics.Rule.origin;
      "";
      bullet (Fmt.str "contract: %s" (code (Semantics.Rule.to_string rule)));
      bullet
        (Fmt.str "targets: %d, static paths: %d, tests run: %d" r.Checker.rep_targets
           r.Checker.rep_static_paths
           (List.length r.Checker.rep_tests_run));
      bullet
        (Fmt.str "traces: %d (%d verified, %d violations); sanity %s"
           (List.length r.Checker.rep_traces)
           (List.length r.Checker.rep_verified)
           (List.length r.Checker.rep_violations)
           (if r.Checker.rep_sanity_ok then "ok" else "**failed**"));
    ]
  in
  let traces = List.map render_trace r.Checker.rep_traces in
  let locks = List.map render_lock_finding r.Checker.rep_lock_findings in
  let uncovered =
    match r.Checker.rep_uncovered_paths with
    | [] -> []
    | paths ->
        ("" :: bullet "uncovered execution paths (developer verdict needed):"
        :: List.map (fun p -> "  " ^ bullet (code p)) paths)
  in
  (* absent on a healthy run, so clean reports render byte-identically
     to the pre-resilience pipeline *)
  let degraded =
    match r.Checker.rep_degraded with
    | [] -> []
    | reasons ->
        ("" :: bullet "**DEGRADED** — evidence lost, verdict is best-effort:"
        :: List.map (fun why -> "  " ^ bullet why) reasons)
  in
  String.concat "\n" (lines @ [ "" ] @ traces @ locks @ uncovered @ degraded)

(** Full Markdown report for an enforcement run. *)
let render ?(title = "LISA enforcement report") (reports : Checker.rule_report list)
    : string =
  let violating = List.filter Checker.has_violations reports in
  let degraded = List.filter Checker.is_degraded reports in
  let verdict =
    if violating = [] && degraded <> [] then
      Fmt.str
        "**PASS (degraded)** — %d rule(s) checked, no violations, but %d \
         report(s) lost evidence."
        (List.length reports) (List.length degraded)
    else if violating = [] then
      Fmt.str "**PASS** — %d rule(s) checked, no violations." (List.length reports)
    else
      Fmt.str "**BLOCK** — %d of %d rule(s) violated: %s." (List.length violating)
        (List.length reports)
        (String.concat ", "
           (List.map
              (fun (r : Checker.rule_report) ->
                code r.Checker.rep_rule.Semantics.Rule.rule_id)
              violating))
  in
  String.concat "\n\n"
    (("# " ^ title) :: verdict :: List.map render_rule_report reports)
