(** Symbolic shadows for concolic execution.

    A shadow records a value's provenance as a canonical state path (or a
    constant); path conditions are written in terms of shadows.  Object
    roots are canonicalized to their class name, matching
    {!Semantics.Translate}'s normalization. *)

type t =
  | S_var of string  (** canonical state path, e.g. ["Session.closing"] *)
  | S_int of int
  | S_bool of bool
  | S_str of string
  | S_null

(** Shadow of a concrete scalar; [None] for references. *)
val of_value : Minilang.Value.t -> t option

val to_term : t -> Smt.Formula.term

val is_var : t -> bool

val to_string : t -> string

(** Root of a state path: ["Session.closing"] -> ["Session"]. *)
val root_of_path : string -> string

val mentions_root : string list -> t -> bool
