lib/minilang/ast.ml: List Loc
