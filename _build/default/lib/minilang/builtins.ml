(** Builtin functions of MiniJava.

    This module only *describes* builtins (name, arity, effect class); the
    implementations live in {!Interp}.  Keeping the description separate
    lets static analyses ({!module:Analysis} in [lib/analysis]) classify
    calls — in particular *blocking* operations, which the lock-discipline
    rules of the paper's Figure 6 case ("no blocking I/O inside a
    synchronized block") need to recognize without running the program. *)

type effect_class =
  | Pure  (** no side effect beyond its result *)
  | Mutating  (** mutates a heap container *)
  | Output  (** writes to the (simulated) console/log *)
  | Blocking  (** models blocking I/O: disk, network, fsync, sleep *)

type descr = {
  b_name : string;
  b_arity : int;  (** -1 means variadic *)
  b_effect : effect_class;
  b_doc : string;
}

let table : descr list =
  [
    (* containers *)
    { b_name = "mapNew"; b_arity = 0; b_effect = Pure; b_doc = "fresh empty map" };
    { b_name = "mapGet"; b_arity = 2; b_effect = Pure; b_doc = "lookup; null if absent" };
    { b_name = "mapPut"; b_arity = 3; b_effect = Mutating; b_doc = "insert/replace binding" };
    { b_name = "mapRemove"; b_arity = 2; b_effect = Mutating; b_doc = "remove binding if present" };
    { b_name = "mapContains"; b_arity = 2; b_effect = Pure; b_doc = "key membership" };
    { b_name = "mapSize"; b_arity = 1; b_effect = Pure; b_doc = "number of bindings" };
    { b_name = "mapKeys"; b_arity = 1; b_effect = Pure; b_doc = "list of keys (insertion order)" };
    { b_name = "listNew"; b_arity = 0; b_effect = Pure; b_doc = "fresh empty list" };
    { b_name = "listAdd"; b_arity = 2; b_effect = Mutating; b_doc = "append element" };
    { b_name = "listGet"; b_arity = 2; b_effect = Pure; b_doc = "element at index" };
    { b_name = "listSet"; b_arity = 3; b_effect = Mutating; b_doc = "replace element at index" };
    { b_name = "listSize"; b_arity = 1; b_effect = Pure; b_doc = "number of elements" };
    { b_name = "listContains"; b_arity = 2; b_effect = Pure; b_doc = "element membership" };
    { b_name = "listRemoveAt"; b_arity = 2; b_effect = Mutating; b_doc = "remove element at index" };
    (* scalars *)
    { b_name = "toStr"; b_arity = 1; b_effect = Pure; b_doc = "render any value as string" };
    { b_name = "strLen"; b_arity = 1; b_effect = Pure; b_doc = "string length" };
    { b_name = "concat"; b_arity = 2; b_effect = Pure; b_doc = "string concatenation" };
    { b_name = "startsWith"; b_arity = 2; b_effect = Pure; b_doc = "string prefix test" };
    { b_name = "abs"; b_arity = 1; b_effect = Pure; b_doc = "absolute value" };
    { b_name = "min"; b_arity = 2; b_effect = Pure; b_doc = "minimum" };
    { b_name = "max"; b_arity = 2; b_effect = Pure; b_doc = "maximum" };
    (* environment *)
    { b_name = "now"; b_arity = 0; b_effect = Pure; b_doc = "logical clock (interpreter steps)" };
    { b_name = "print"; b_arity = 1; b_effect = Output; b_doc = "append to console buffer" };
    { b_name = "log"; b_arity = 1; b_effect = Output; b_doc = "append to log buffer" };
    { b_name = "fail"; b_arity = 1; b_effect = Pure; b_doc = "throw the given value" };
    (* blocking I/O models; these make the Figure 6 regressions expressible *)
    { b_name = "writeRecord"; b_arity = 1; b_effect = Blocking; b_doc = "serialize a record to disk (blocking)" };
    { b_name = "readRecord"; b_arity = 1; b_effect = Blocking; b_doc = "read a record from disk (blocking)" };
    { b_name = "networkSend"; b_arity = 2; b_effect = Blocking; b_doc = "send a message over the network (blocking)" };
    { b_name = "networkRecv"; b_arity = 1; b_effect = Blocking; b_doc = "receive a message (blocking)" };
    { b_name = "fsync"; b_arity = 1; b_effect = Blocking; b_doc = "flush a file to stable storage (blocking)" };
    { b_name = "rpcCall"; b_arity = 2; b_effect = Blocking; b_doc = "remote procedure call (blocking)" };
    { b_name = "sleepMs"; b_arity = 1; b_effect = Blocking; b_doc = "sleep (blocking)" };
  ]

let find name = List.find_opt (fun d -> d.b_name = name) table

let is_builtin name = find name <> None

let effect_of name = match find name with Some d -> Some d.b_effect | None -> None

let is_blocking name = effect_of name = Some Blocking

let blocking_names = List.filter_map (fun d -> if d.b_effect = Blocking then Some d.b_name else None) table

let arity_of name = match find name with Some d -> Some d.b_arity | None -> None
