test/test_misc.ml: Alcotest Analysis Ast Astring_contains Corpus Lisa List Mc Minilang Option Oracle Parser Semantics
