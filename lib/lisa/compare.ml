(** Experiment E3 — Figure 4: testing vs. LISA vs. refinement verification.

    For every corpus case we replay the moment after the first incident was
    fixed and ask: does each strategy prevent the *second* incident (the
    stage-2 regression)?

    - {b testing}: re-run the regression tests added with fix #1 against
      the regressed version (what CI actually does).  Effort: the tests
      the developers already wrote.
    - {b LISA}: enforce the rulebook learned from ticket #1.  Effort:
      automatic inference + the concolic paths checked.
    - {b refinement verification}: a full forward proof would catch every
      violation by construction; its (modeled) effort is the
      specification+proof burden, which the literature puts at 5-10x the
      implementation size, re-paid on every non-trivial change.  We model
      it as [spec_factor * loc] lines of proof per version — the point of
      Figure 4 is precisely that this cost is why it isn't deployed. *)

type strategy_result = {
  s_caught : bool;
  s_effort : float;  (** strategy-specific effort proxy *)
  s_detail : string;
}

type case_row = {
  cr_case : string;
  cr_system : string;
  cr_testing : strategy_result;
  cr_lisa : strategy_result;
  cr_verification : strategy_result;
}

type t = {
  rows : case_row list;
  testing_caught : int;
  lisa_caught : int;
  verification_caught : int;
  total : int;
}

let spec_factor = 7.0 (* proof lines per implementation line (modeled) *)

let loc_of (src : string) : int = List.length (String.split_on_char '\n' src)

let testing_strategy (c : Corpus.Case.t) : strategy_result =
  let ticket = Corpus.Case.original_ticket c in
  let regressed = Corpus.Case.program_at c 2 in
  let tests = ticket.Oracle.Ticket.regression_tests in
  let caught =
    List.exists
      (fun t ->
        match Minilang.Interp.run_test regressed t with
        | Minilang.Interp.Passed -> false
        | Minilang.Interp.Failed _ | Minilang.Interp.Errored _ -> true)
      tests
  in
  {
    s_caught = caught;
    s_effort = float_of_int (List.length tests);
    s_detail =
      Fmt.str "%d regression test(s) from %s re-run" (List.length tests)
        ticket.Oracle.Ticket.ticket_id;
  }

let lisa_strategy ?(config = Pipeline.default_config) (c : Corpus.Case.t) :
    strategy_result =
  let ticket = Corpus.Case.original_ticket c in
  let outcome = Pipeline.learn ~config ticket in
  let book =
    Semantics.Rulebook.of_rules ~system:c.Corpus.Case.system outcome.Pipeline.accepted
  in
  let reports = Pipeline.enforce ~config (Corpus.Case.program_at c 2) book in
  let findings = Pipeline.findings reports in
  let paths =
    List.fold_left (fun n (r : Checker.rule_report) -> n + r.Checker.rep_static_paths) 0 reports
  in
  {
    s_caught = findings <> [];
    s_effort = float_of_int (max 1 paths);
    s_detail =
      Fmt.str "%d rule(s), %d execution paths checked"
        (Semantics.Rulebook.size book) paths;
  }

let verification_strategy (c : Corpus.Case.t) : strategy_result =
  let loc = loc_of (c.Corpus.Case.source 2) in
  {
    s_caught = true;
    s_effort = spec_factor *. float_of_int loc;
    s_detail = Fmt.str "modeled: ~%.0f proof lines for %d LoC, re-proved per change" (spec_factor *. float_of_int loc) loc;
  }

let run ?(config = Pipeline.default_config)
    ?(registry = Corpus.Registry.builtin) () : t =
  let rows =
    List.map
      (fun (c : Corpus.Case.t) ->
        {
          cr_case = c.Corpus.Case.case_id;
          cr_system = c.Corpus.Case.system;
          cr_testing = testing_strategy c;
          cr_lisa = lisa_strategy ~config c;
          cr_verification = verification_strategy c;
        })
      registry.Corpus.Registry.cases
  in
  let count f = List.length (List.filter f rows) in
  {
    rows;
    testing_caught = count (fun r -> r.cr_testing.s_caught);
    lisa_caught = count (fun r -> r.cr_lisa.s_caught);
    verification_caught = count (fun r -> r.cr_verification.s_caught);
    total = List.length rows;
  }

let print (t : t) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  pf "E3 / Figure 4 — who catches the second incident?";
  pf "--------------------------------------------------";
  pf "%-28s %-10s %-18s %-24s %-14s" "case" "system" "testing" "LISA" "verification";
  List.iter
    (fun r ->
      let cell (s : strategy_result) label =
        Fmt.str "%s (%s=%.0f)" (if s.s_caught then "caught" else "MISSED") label s.s_effort
      in
      pf "%-28s %-10s %-18s %-24s %-14s" r.cr_case r.cr_system
        (cell r.cr_testing "tests")
        (cell r.cr_lisa "paths")
        (cell r.cr_verification "proof"))
    t.rows;
  pf "";
  pf "regressions caught: testing %d/%d, LISA %d/%d, verification %d/%d (modeled)"
    t.testing_caught t.total t.lisa_caught t.total t.verification_caught t.total;
  pf "";
  pf "reading of Figure 4: testing validates single executions (sparse coverage);";
  pf "refinement proofs give full guarantees at %.0fx-implementation proof cost;"
    spec_factor;
  pf "LISA's low-level semantics sit in between: automatic, path-complete for the";
  pf "learned contracts, no proof burden.";
  Buffer.contents buf
