type sym = { str : string; sym_id : int; sym_hash : int }

(* The interner is itself a hash-cons table: nodes are raw strings,
   elements are canonical symbols.  Sharding and the lock-free read
   path come with the table — symbol lookups on warm strings take no
   lock at all. *)
let table : (string, sym) Hc.t =
  Hc.create ~name:"core.intern"
    ~equal:(fun s e -> String.equal s e.str)
    ~build:(fun ~id ~hkey s -> { str = s; sym_id = id; sym_hash = hkey })
    ()

let get (s : string) : sym = Hc.intern table ~hkey:(Hashtbl.hash s) s

let canonical s = (get s).str

let equal a b = a == b

let stats () = Hc.stats table
