lib/lisa/system_scan.mli: Pipeline Semantics
