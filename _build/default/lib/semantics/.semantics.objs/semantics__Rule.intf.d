lib/semantics/rule.mli: Format Smt
