(** The assembled incident corpus: 16 regression cases, 34 bugs, across
    four subject systems — the §2.1 study population.

    Whole-system versions are assembled by concatenating each feature
    module at the stage that system version maps to; version [v] puts every
    case at stage [min v latest_stage], so version 0 is the original buggy
    release, version 2 is the all-regressed release, and version 5 is the
    "latest" release in which the two unknown bugs (E6/E7) are present. *)

let all_cases : Case.t list =
  Zookeeper.cases @ Hbase.cases @ Hdfs.cases @ Cassandra.cases

let systems : string list = [ "zookeeper"; "hbase"; "hdfs"; "cassandra" ]

let cases_of_system (system : string) : Case.t list =
  List.filter (fun (c : Case.t) -> c.Case.system = system) all_cases

let find_case (case_id : string) : Case.t option =
  List.find_opt (fun (c : Case.t) -> c.Case.case_id = case_id) all_cases

let n_cases = List.length all_cases

let n_bugs = List.fold_left (fun n c -> n + Case.n_bugs c) 0 all_cases

let n_bugs_violating_old_semantics =
  List.fold_left (fun n (c : Case.t) -> n + c.Case.violating_old_semantics) 0 all_cases

(* ------------------------------------------------------------------ *)
(* Whole-system versions                                               *)
(* ------------------------------------------------------------------ *)

let max_version = 5

let stage_at_version (c : Case.t) (version : int) : int =
  min version c.Case.latest_stage

let system_source (system : string) ~(version : int) : string =
  let cases = cases_of_system system in
  String.concat "\n"
    (Fmt.str "// %s, assembled release v%d" system version
    :: List.map (fun c -> c.Case.source (stage_at_version c version)) cases)

let system_program (system : string) ~(version : int) : Minilang.Ast.program =
  Minilang.Parser.program
    ~file:(Fmt.str "%s-v%d.mj" system version)
    (system_source system ~version)

(** Human-readable commit log of a system's history. *)
let commit_history (system : string) : (int * string) list =
  List.init (max_version + 1) (fun v ->
      let changed =
        cases_of_system system
        |> List.filter (fun c ->
               v > 0 && stage_at_version c v <> stage_at_version c (v - 1))
        |> List.map (fun (c : Case.t) ->
               let s = stage_at_version c v in
               match List.find_opt (fun (fs, _, _, _) -> fs = s) c.Case.ticket_meta with
               | Some (_, id, title, _) -> Fmt.str "%s: %s" id title
               | None -> Fmt.str "%s: evolve %s to stage %d" c.Case.case_id c.Case.feature s)
      in
      let msg =
        if v = 0 then "initial release"
        else if changed = [] then "routine maintenance"
        else String.concat "; " changed
      in
      (v, msg))

(* ------------------------------------------------------------------ *)
(* Study metadata (constants reported by the paper's survey; reproduced *)
(* here as corpus metadata so the study driver can print Figure 1)      *)
(* ------------------------------------------------------------------ *)

(** Google-scale change rate quoted in the paper's introduction. *)
let changes_per_day_gcp = 16_000

(** Average number of test files among the studied systems (§2.2). *)
let avg_test_files = 1_309

(** The ephemeral-node feature: 46 related bugs over 14 years (§2.1).
    Synthetic per-year histogram consistent with those totals. *)
let ephemeral_bug_histogram : (int * int) list =
  [
    (2011, 6); (2012, 5); (2013, 4); (2014, 3); (2015, 4); (2016, 3); (2017, 3);
    (2018, 2); (2019, 3); (2020, 3); (2021, 2); (2022, 3); (2023, 2); (2024, 3);
  ]

let ephemeral_bug_total =
  List.fold_left (fun n (_, k) -> n + k) 0 ephemeral_bug_histogram

(** Share of studied failures violating semantics that predate the first
    stable release (the paper quotes 68% from [Lou et al., OSDI '22]). *)
let old_semantics_share () : float =
  float_of_int n_bugs_violating_old_semantics /. float_of_int n_bugs
