(** Pretty-printer for MiniJava.

    The printer produces a canonical concrete syntax: parsing its output
    yields an AST equal (up to locations and sids) to the input.  The
    single-line statement form ([stmt_head_to_string]) is the textual key
    used to match a semantic rule's *target statement* against code. *)

let typ = Ast.typ_to_string

let rec expr_prec (e : Ast.expr) : int =
  match e.e with
  | Ast.Binop (Ast.Or, _, _) -> 1
  | Ast.Binop (Ast.And, _, _) -> 2
  | Ast.Binop ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) -> 3
  | Ast.Binop ((Ast.Add | Ast.Sub), _, _) -> 4
  | Ast.Binop ((Ast.Mul | Ast.Div | Ast.Mod), _, _) -> 5
  | Ast.Unop _ -> 6
  | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.Str_lit _ | Ast.Null_lit | Ast.Var _
  | Ast.This | Ast.Field _ | Ast.Call _ | Ast.Method_call _ | Ast.New _ ->
      7

and expr_to_string (e : Ast.expr) : string = pexpr 0 e

and pexpr (ctx : int) (e : Ast.expr) : string =
  let prec = expr_prec e in
  let s =
    match e.e with
    | Ast.Int_lit n -> string_of_int n
    | Ast.Bool_lit true -> "true"
    | Ast.Bool_lit false -> "false"
    | Ast.Str_lit s -> Printf.sprintf "%S" s
    | Ast.Null_lit -> "null"
    | Ast.Var x -> x
    | Ast.This -> "this"
    | Ast.Field (o, f) -> Fmt.str "%s.%s" (pexpr 7 o) f
    | Ast.Binop (op, a, b) ->
        (* [&&]/[||] parse right-associatively; arithmetic parses
           left-associatively; comparisons are non-associative, so both of
           their operands need a strictly higher precedence context. *)
        let lp, rp =
          match op with
          | Ast.And | Ast.Or -> (prec + 1, prec)
          | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (prec, prec + 1)
          | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
              (prec + 1, prec + 1)
        in
        Fmt.str "%s %s %s" (pexpr lp a) (Ast.binop_to_string op) (pexpr rp b)
    | Ast.Unop (op, a) -> Fmt.str "%s%s" (Ast.unop_to_string op) (pexpr 6 a)
    | Ast.Call (f, args) -> Fmt.str "%s(%s)" f (args_to_string args)
    | Ast.Method_call (o, m, args) ->
        Fmt.str "%s.%s(%s)" (pexpr 7 o) m (args_to_string args)
    | Ast.New (c, args) -> Fmt.str "new %s(%s)" c (args_to_string args)
  in
  if prec < ctx then "(" ^ s ^ ")" else s

and args_to_string args = String.concat ", " (List.map expr_to_string args)

let lvalue_to_string = function
  | Ast.Lv_var x -> x
  | Ast.Lv_field (o, f) -> Fmt.str "%s.%s" (pexpr 7 o) f

(** One-line rendering of a statement head; nested blocks are elided as
    ["{ ... }"].  This is the canonical "code text" form for matching target
    statements against LLM output. *)
let stmt_head_to_string (st : Ast.stmt) : string =
  match st.s with
  | Ast.Decl (x, ty, None) -> Fmt.str "var %s: %s;" x (typ ty)
  | Ast.Decl (x, ty, Some e) -> Fmt.str "var %s: %s = %s;" x (typ ty) (expr_to_string e)
  | Ast.Assign (lv, e) -> Fmt.str "%s = %s;" (lvalue_to_string lv) (expr_to_string e)
  | Ast.If (c, _, []) -> Fmt.str "if (%s) { ... }" (expr_to_string c)
  | Ast.If (c, _, _) -> Fmt.str "if (%s) { ... } else { ... }" (expr_to_string c)
  | Ast.While (c, _) -> Fmt.str "while (%s) { ... }" (expr_to_string c)
  | Ast.Return None -> "return;"
  | Ast.Return (Some e) -> Fmt.str "return %s;" (expr_to_string e)
  | Ast.Throw e -> Fmt.str "throw %s;" (expr_to_string e)
  | Ast.Try _ -> "try { ... } catch (...) { ... }"
  | Ast.Sync (o, _) -> Fmt.str "synchronized (%s) { ... }" (expr_to_string o)
  | Ast.Expr e -> Fmt.str "%s;" (expr_to_string e)
  | Ast.Assert (c, m) -> Fmt.str "assert (%s, %S);" (expr_to_string c) m
  | Ast.Break -> "break;"
  | Ast.Continue -> "continue;"

let indent n = String.make (2 * n) ' '

let rec stmt_lines (depth : int) (st : Ast.stmt) : string list =
  let pad = indent depth in
  match st.s with
  | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Throw _ | Ast.Expr _
  | Ast.Assert _ | Ast.Break | Ast.Continue ->
      [ pad ^ stmt_head_to_string st ]
  | Ast.If (c, b1, []) ->
      (pad ^ Fmt.str "if (%s) {" (expr_to_string c))
      :: (block_lines (depth + 1) b1 @ [ pad ^ "}" ])
  | Ast.If (c, b1, b2) ->
      (pad ^ Fmt.str "if (%s) {" (expr_to_string c))
      :: (block_lines (depth + 1) b1
         @ [ pad ^ "} else {" ]
         @ block_lines (depth + 1) b2
         @ [ pad ^ "}" ])
  | Ast.While (c, b) ->
      (pad ^ Fmt.str "while (%s) {" (expr_to_string c))
      :: (block_lines (depth + 1) b @ [ pad ^ "}" ])
  | Ast.Try (b, x, h) ->
      (pad ^ "try {")
      :: (block_lines (depth + 1) b
         @ [ pad ^ Fmt.str "} catch (%s) {" x ]
         @ block_lines (depth + 1) h
         @ [ pad ^ "}" ])
  | Ast.Sync (o, b) ->
      (pad ^ Fmt.str "synchronized (%s) {" (expr_to_string o))
      :: (block_lines (depth + 1) b @ [ pad ^ "}" ])

and block_lines depth (b : Ast.block) : string list =
  List.concat_map (stmt_lines depth) b

let method_lines (depth : int) (m : Ast.method_decl) : string list =
  let pad = indent depth in
  let params =
    String.concat ", "
      (List.map (fun (x, ty) -> Fmt.str "%s: %s" x (typ ty)) m.Ast.m_params)
  in
  let ret = match m.Ast.m_ret with Ast.T_void -> "" | t -> ": " ^ typ t in
  (pad ^ Fmt.str "method %s(%s)%s {" m.Ast.m_name params ret)
  :: (block_lines (depth + 1) m.Ast.m_body @ [ pad ^ "}" ])

let field_lines depth (f : Ast.field_decl) : string list =
  let pad = indent depth in
  match f.Ast.f_init with
  | None -> [ pad ^ Fmt.str "field %s: %s;" f.Ast.f_name (typ f.Ast.f_typ) ]
  | Some e ->
      [ pad ^ Fmt.str "field %s: %s = %s;" f.Ast.f_name (typ f.Ast.f_typ) (expr_to_string e) ]

let class_lines (c : Ast.class_decl) : string list =
  (Fmt.str "class %s {" c.Ast.c_name)
  :: (List.concat_map (field_lines 1) c.Ast.c_fields
     @ List.concat_map (method_lines 1) c.Ast.c_methods
     @ [ "}" ])

(** Render a whole program back to canonical concrete syntax. *)
let program_to_string (p : Ast.program) : string =
  let lines =
    List.concat_map (fun c -> class_lines c @ [ "" ]) p.Ast.p_classes
    @ List.concat_map (fun f -> method_lines 0 f @ [ "" ]) p.Ast.p_funcs
  in
  String.concat "\n" lines

let stmt_to_string (st : Ast.stmt) : string =
  String.concat "\n" (stmt_lines 0 st)

let method_to_string (m : Ast.method_decl) : string =
  String.concat "\n" (method_lines 0 m)
