(** Seeded fault plans.

    A plan is a pure description of chaos: which injection points are
    live, which fault kinds may fire, and the per-call injection rate.
    The decision for the [n]-th call at a point is a {e pure function}
    of (seed, point, n) — the same deterministic LCG family the noise
    model in [Oracle.Inference] uses — so a chaos run is reproducible
    bit for bit from its seed, and two runs of the same plan inject the
    same faults at the same call sites. *)

type t = {
  seed : int;
  rate : float;  (** per-call injection probability, in [0, 1] *)
  points : Fault.point list;
  kinds : Fault.kind list;
}

let make ?(points = Fault.all_points) ?(kinds = Fault.all_kinds) ~seed ~rate () =
  { seed; rate = Float.max 0.0 (Float.min 1.0 rate); points; kinds }

(* deterministic LCG; numerical recipes constants (same family as the
   oracle noise model) *)
let lcg_next s = (s * 1664525) + 1013904223

(* fold (seed, point, n) into one well-mixed state *)
let mix (seed : int) (point : Fault.point) (n : int) : int =
  let s = seed + (Fault.point_index point * 7919) + (n * 104729) in
  lcg_next (lcg_next (lcg_next s))

let unit_float (s : int) : float =
  float_of_int (abs s mod 1_000_000) /. 1_000_000.0

(** [decide plan point n]: the fault (if any) injected at the [n]-th
    call of [point] under [plan].  Pure and total. *)
let decide (plan : t) (point : Fault.point) (n : int) : Fault.kind option =
  if plan.kinds = [] || not (List.mem point plan.points) then None
  else
    let s = mix plan.seed point n in
    if unit_float s >= plan.rate then None
    else
      let s' = lcg_next s in
      Some (List.nth plan.kinds (abs s' mod List.length plan.kinds))

let to_string (p : t) : string =
  Fmt.str "plan{seed=%d rate=%.2f points=[%s] kinds=[%s]}" p.seed p.rate
    (String.concat "," (List.map Fault.point_to_string p.points))
    (String.concat "," (List.map Fault.kind_to_string p.kinds))
