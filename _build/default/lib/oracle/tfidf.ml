(** TF-IDF embeddings with cosine similarity — the embedding-model
    substitute (paper §3.2 uses OpenAI text-embedding-3-large for
    similarity search over test embeddings).

    Documents are tokenized with the shared identifier-aware tokenizer
    ({!Diffing.Textutil.word_tokens}: camelCase and snake_case split), so
    a test named [testCreateEphemeralOnClosedSession] lands near a query
    about "create ephemeral closing session" without any learned model. *)

type doc = { doc_id : string; text : string }

type vector = (int * float) list  (** sparse, sorted by dimension *)

type index = {
  vocab : (string, int) Hashtbl.t;
  idf : float array;
  doc_vectors : (string * vector) list;
  n_docs : int;
}

let tokenize = Diffing.Textutil.word_tokens

let term_freqs (tokens : string list) : (string * int) list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun t -> Hashtbl.replace tbl t (1 + Option.value ~default:0 (Hashtbl.find_opt tbl t)))
    tokens;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let norm (v : vector) : float =
  sqrt (List.fold_left (fun acc (_, x) -> acc +. (x *. x)) 0.0 v)

let normalize (v : vector) : vector =
  let n = norm v in
  if n = 0.0 then v else List.map (fun (d, x) -> (d, x /. n)) v

(** Cosine similarity of two normalized sparse vectors. *)
let cosine (a : vector) (b : vector) : float =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> acc
    | (da, xa) :: ra, (db, xb) :: rb ->
        if da = db then go ra rb (acc +. (xa *. xb))
        else if da < db then go ra b acc
        else go a rb acc
  in
  go a b 0.0

(** Build an index over a document collection. *)
let build (docs : doc list) : index =
  let vocab = Hashtbl.create 256 in
  let next_dim = ref 0 in
  let dim_of t =
    match Hashtbl.find_opt vocab t with
    | Some d -> d
    | None ->
        let d = !next_dim in
        Hashtbl.replace vocab t d;
        incr next_dim;
        d
  in
  let doc_tokens = List.map (fun d -> (d.doc_id, term_freqs (tokenize d.text))) docs in
  (* document frequency *)
  List.iter (fun (_, tfs) -> List.iter (fun (t, _) -> ignore (dim_of t)) tfs) doc_tokens;
  let n_docs = List.length docs in
  let df = Array.make (max 1 !next_dim) 0 in
  List.iter
    (fun (_, tfs) -> List.iter (fun (t, _) -> df.(dim_of t) <- df.(dim_of t) + 1) tfs)
    doc_tokens;
  let idf =
    Array.map
      (fun d -> log ((1.0 +. float_of_int n_docs) /. (1.0 +. float_of_int d)) +. 1.0)
      df
  in
  let vec_of tfs =
    tfs
    |> List.map (fun (t, f) ->
           let d = dim_of t in
           (d, (1.0 +. log (float_of_int f)) *. idf.(d)))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> normalize
  in
  let doc_vectors = List.map (fun (id, tfs) -> (id, vec_of tfs)) doc_tokens in
  { vocab; idf; doc_vectors; n_docs }

(** Embed a query with the index's vocabulary (out-of-vocabulary tokens are
    dropped, as with any fixed embedding model). *)
let embed (ix : index) (text : string) : vector =
  term_freqs (tokenize text)
  |> List.filter_map (fun (t, f) ->
         match Hashtbl.find_opt ix.vocab t with
         | Some d -> Some (d, (1.0 +. log (float_of_int f)) *. ix.idf.(d))
         | None -> None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> normalize

(** Top-[k] documents by cosine similarity to [query]; ties broken by
    document id so results are stable. *)
let top_k (ix : index) ~(query : string) ~(k : int) : (string * float) list =
  let qv = embed ix query in
  ix.doc_vectors
  |> List.map (fun (id, dv) -> (id, cosine qv dv))
  |> List.sort (fun (ia, sa) (ib, sb) ->
         match compare sb sa with 0 -> compare ia ib | c -> c)
  |> List.filteri (fun i _ -> i < k)
