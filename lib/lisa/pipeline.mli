(** The end-to-end LISA workflow (Figure 5): ticket → inference →
    translation → cross-check → rulebook → enforcement.

    The cross-check stage implements the §5 mitigation for LLM
    unreliability: a mined rule is grounded against the patched version of
    its own ticket — the target must exist, no trace may violate it, and
    at least one trace must verify it — before it enters the rulebook. *)

type stage_log = { stage : string; detail : string }

type outcome = {
  ticket : Oracle.Ticket.t;
  prompt : string;  (** the Listing-1 prompt that was (notionally) sent *)
  inference : Oracle.Inference.inferred;
  accepted : Semantics.Rule.t list;
  rejected : (Semantics.Rule.t * string) list;  (** rule, reason *)
  log : stage_log list;
}

type config = {
  checker : Checker.config;
  generalize : bool;  (** apply rule generalization before cross-checking *)
  noise : Oracle.Inference.noise;  (** LLM noise model (E9) *)
  cross_check : bool;  (** validate rules against the patched version *)
}

val default_config : config

(** Learn rules from one ticket. *)
val learn : ?config:config -> Oracle.Ticket.t -> outcome

(** Learn from a ticket sequence into a fresh rulebook. *)
val learn_all :
  ?config:config ->
  system:string ->
  Oracle.Ticket.t list ->
  Semantics.Rulebook.t * outcome list

(** Enforce a rulebook against a program version. *)
val enforce :
  ?config:config ->
  Minilang.Ast.program ->
  Semantics.Rulebook.t ->
  Checker.rule_report list

(** Enforce a rulebook through a running enforcement engine (same report
    contract as {!enforce}; scheduling/caching are the engine's). *)
val enforce_with :
  Engine.Scheduler.t ->
  Minilang.Ast.program ->
  Semantics.Rulebook.t ->
  Checker.rule_report list

(** The reports that carry violations. *)
val findings : Checker.rule_report list -> Checker.rule_report list
