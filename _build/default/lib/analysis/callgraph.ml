(** Interprocedural call graph for MiniJava programs.

    The graph plays the role Soot plays in the paper (§3.2): it roots an
    *execution tree* at a semantic rule's target statement and enumerates
    the call chains from entry functions down to the method containing the
    target.  Method calls are resolved by simple name — MiniJava has no
    inheritance, so a name resolves to every class that declares it (an
    over-approximation exactly like a CHA call graph). *)

open Minilang

type node = string (* qualified method name, e.g. "DataTree.createNode" *)

type t = {
  program : Ast.program;
  nodes : node list;
  edges : (node * node) list;  (** caller, callee *)
}

(* Resolve a simple callee name to qualified method names. *)
let resolve (p : Ast.program) (simple : string) : node list =
  (match Ast.find_func p simple with Some _ -> [ simple ] | None -> [])
  @ List.filter_map
      (fun (c : Ast.class_decl) ->
        match Ast.find_method_in_class c simple with
        | Some _ -> Some (c.Ast.c_name ^ "." ^ simple)
        | None -> None)
      p.Ast.p_classes

let build (p : Ast.program) : t =
  let methods = Ast.methods_of_program p in
  let nodes = List.map (fun (cls, m) -> Ast.qualified_name cls m) methods in
  let edges =
    List.concat_map
      (fun (cls, m) ->
        let caller = Ast.qualified_name cls m in
        let callees = ref [] in
        Ast.iter_stmts
          (fun st ->
            List.iter
              (fun callee_simple ->
                if not (Builtins.is_builtin callee_simple) then
                  List.iter
                    (fun callee ->
                      if not (List.mem (caller, callee) !callees) then
                        callees := (caller, callee) :: !callees)
                    (resolve p callee_simple))
              (Ast.callees_of_stmt st))
          m.Ast.m_body;
        List.rev !callees)
      methods
  in
  { program = p; nodes; edges }

let callees (g : t) (n : node) : node list =
  List.filter_map (fun (a, b) -> if a = n then Some b else None) g.edges

let callers (g : t) (n : node) : node list =
  List.filter_map (fun (a, b) -> if b = n then Some a else None) g.edges

(** Entry points: top-level functions (tests and scenario drivers). *)
let entries (g : t) : node list =
  List.map (fun (f : Ast.method_decl) -> f.Ast.m_name) g.program.Ast.p_funcs

(** Methods reachable from [n] (inclusive). *)
let reachable_from (g : t) (n : node) : node list =
  let visited = ref [] in
  let rec go n =
    if not (List.mem n !visited) then begin
      visited := n :: !visited;
      List.iter go (callees g n)
    end
  in
  go n;
  List.rev !visited

(** All acyclic call chains from any entry function to [target] (inclusive
    at both ends, entry first).  [max_paths] caps enumeration on dense
    graphs. *)
let call_chains ?(max_paths = 1000) (g : t) ~(target : node) : node list list =
  let results = ref [] in
  let count = ref 0 in
  (* DFS backwards from the target towards entries *)
  let entry_set = entries g in
  let rec go (chain : node list) (n : node) =
    if !count < max_paths then
      if List.mem n entry_set then begin
        results := (n :: chain) :: !results;
        incr count
      end
      else
        List.iter
          (fun caller -> if not (List.mem caller chain) && caller <> n then go (n :: chain) caller)
          (callers g n)
  in
  go [] target;
  (* an entry function can itself be the target *)
  List.rev !results

(** Transitive closure of a predicate over the call graph: [may g base n]
    is true when [n] or anything reachable from [n] satisfies [base].
    Used e.g. for "may perform blocking I/O". *)
let may (g : t) (base : node -> bool) : node -> bool =
  let cache : (node, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec go visiting n =
    match Hashtbl.find_opt cache n with
    | Some r -> r
    | None ->
        if List.mem n visiting then false (* cycle: decided by other paths *)
        else begin
          let r = base n || List.exists (go (n :: visiting)) (callees g n) in
          (* only cache when not provisional *)
          if visiting = [] || r then Hashtbl.replace cache n r;
          r
        end
  in
  fun n -> go [] n

let to_dot (g : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph callgraph {\n";
  List.iter (fun n -> Buffer.add_string buf (Fmt.str "  %S;\n" n)) g.nodes;
  List.iter (fun (a, b) -> Buffer.add_string buf (Fmt.str "  %S -> %S;\n" a b)) g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
