(** In-process tracing: nested spans, instant events, and counter
    snapshots, exportable as Chrome trace format
    (chrome://tracing / Perfetto: a JSON array of events with [name],
    [cat], [ph], [ts] (µs), [dur], [pid], [tid]).

    Disabled by default — {!with_span} then costs one atomic load and a
    closure call, so healthy-run output and timing stay byte-identical
    to an untraced build.  When enabled:

    - span ids are deterministic (a global counter, allocated in
      begin order);
    - nesting is tracked per domain ([Domain.DLS]), so spans opened on
      an engine worker nest under that worker's current span and carry
      the worker's [tid];
    - timestamps come from {!Clock.now}, so a mock clock produces
      deterministic traces. *)

type arg = string * string

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_cat : string;
  sp_ts : float;  (** begin, seconds *)
  sp_dur : float;  (** seconds *)
  sp_tid : int;
  sp_args : arg list;
}

type event =
  | Span of span
  | Instant of { i_name : string; i_cat : string; i_ts : float; i_tid : int; i_args : arg list }
  | Counter of { c_name : string; c_cat : string; c_ts : float; c_tid : int; c_values : (string * float) list }

let enabled_cell = Atomic.make false

let enabled () = Atomic.get enabled_cell

let set_enabled b = Atomic.set enabled_cell b

let lock = Mutex.create ()

let events : event list ref = ref [] (* newest first *)

let next_id = Atomic.make 1

(* the per-domain stack of open span ids *)
let stack_key : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let record ev =
  Mutex.lock lock;
  events := ev :: !events;
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  events := [];
  Mutex.unlock lock;
  Atomic.set next_id 1

let tid () = (Domain.self () :> int)

(** Run [f] under a named span.  A no-op (beyond one atomic load) while
    tracing is disabled.  The span is recorded on completion, also when
    [f] raises. *)
let with_span ?(cat = "lisa") ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    stack := id :: !stack;
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Clock.now () -. t0 in
        (match !stack with _ :: rest -> stack := rest | [] -> ());
        record
          (Span
             {
               sp_id = id;
               sp_parent = parent;
               sp_name = name;
               sp_cat = cat;
               sp_ts = t0;
               sp_dur = dur;
               sp_tid = tid ();
               sp_args = args;
             }))
      f
  end

let instant ?(cat = "lisa") ?(args = []) name =
  if enabled () then
    record
      (Instant
         { i_name = name; i_cat = cat; i_ts = Clock.now (); i_tid = tid (); i_args = args })

(** A Chrome counter ("C") event: named numeric series sampled now. *)
let counter ?(cat = "metrics") name values =
  if enabled () then
    record
      (Counter
         { c_name = name; c_cat = cat; c_ts = Clock.now (); c_tid = tid (); c_values = values })

(* oldest first *)
let all_events () =
  Mutex.lock lock;
  let evs = List.rev !events in
  Mutex.unlock lock;
  evs

let event_count () =
  Mutex.lock lock;
  let n = List.length !events in
  Mutex.unlock lock;
  n

(** Completed spans, completion order (oldest first). *)
let spans () =
  List.filter_map (function Span s -> Some s | _ -> None) (all_events ())

(* ------------------------------------------------------------------ *)
(* Chrome-trace JSON export                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape_into buf s;
  Buffer.add_char buf '"'

let us t = t *. 1e6

let add_common buf ~name ~cat ~ph ~ts ~tid =
  Buffer.add_string buf "{\"name\":";
  add_str buf name;
  Buffer.add_string buf ",\"cat\":";
  add_str buf cat;
  Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d" ph (us ts) tid)

let add_string_args buf args =
  Buffer.add_string buf ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_str buf k;
      Buffer.add_char buf ':';
      add_str buf v)
    args;
  Buffer.add_char buf '}'

let add_event buf = function
  | Span s ->
      add_common buf ~name:s.sp_name ~cat:s.sp_cat ~ph:"X" ~ts:s.sp_ts ~tid:s.sp_tid;
      Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" (us s.sp_dur));
      let id_args =
        ("span_id", string_of_int s.sp_id)
        :: (match s.sp_parent with
           | Some p -> [ ("parent_id", string_of_int p) ]
           | None -> [])
      in
      add_string_args buf (id_args @ s.sp_args);
      Buffer.add_char buf '}'
  | Instant i ->
      add_common buf ~name:i.i_name ~cat:i.i_cat ~ph:"i" ~ts:i.i_ts ~tid:i.i_tid;
      Buffer.add_string buf ",\"s\":\"t\"";
      add_string_args buf i.i_args;
      Buffer.add_char buf '}'
  | Counter c ->
      add_common buf ~name:c.c_name ~cat:c.c_cat ~ph:"C" ~ts:c.c_ts ~tid:c.c_tid;
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_str buf k;
          Buffer.add_string buf (Printf.sprintf ":%g" v))
        c.c_values;
      Buffer.add_string buf "}}"

(** The whole buffer as a Chrome-trace JSON array, oldest event first. *)
let export_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_event buf ev)
    (all_events ());
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let export_to_file path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_json ()))

(* ------------------------------------------------------------------ *)
(* Per-stage summary                                                   *)
(* ------------------------------------------------------------------ *)

(** Spans aggregated by name: count, total/mean/max wall — the
    "where did this run spend its time" table. *)
let summary () =
  let tbl : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun s ->
      let n, total, mx =
        match Hashtbl.find_opt tbl s.sp_name with
        | Some row -> row
        | None ->
            let row = (ref 0, ref 0., ref 0.) in
            Hashtbl.replace tbl s.sp_name row;
            row
      in
      incr n;
      total := !total +. s.sp_dur;
      if s.sp_dur > !mx then mx := s.sp_dur)
    (spans ());
  let rows = Hashtbl.fold (fun name (n, t, m) acc -> (name, !n, !t, !m) :: acc) tbl [] in
  let rows =
    List.sort
      (fun (na, _, ta, _) (nb, _, tb, _) -> compare (tb, na) (ta, nb))
      rows
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %8s %12s %12s %12s\n" "span" "count" "total ms"
       "mean ms" "max ms");
  List.iter
    (fun (name, n, total, mx) ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %8d %12.2f %12.2f %12.2f\n" name n (1000. *. total)
           (1000. *. total /. float_of_int n)
           (1000. *. mx)))
    rows;
  Buffer.contents buf
