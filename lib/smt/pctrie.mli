(** Path-condition trie: group trace checks by shared pc prefixes.

    Children are keyed by {!Formula.id} (formulas are hash-consed, so an
    id names one formula for the process lifetime): insertion is O(1)
    per pc element, and two path conditions share trie nodes exactly
    when they share a prefix of interned facts.  The engine's checker
    inserts every hit's decision-ordered pc snapshot, then walks the
    trie once with a {!Solver.context} — each shared prefix is pushed
    exactly once and each leaf decides only its own suffix. *)

type 'a t

val create : unit -> 'a t

(** [add t ~pc payload] routes [payload] to the node reached by [pc]
    (the hit's pc snapshot, outermost decision first). *)
val add : 'a t -> pc:Formula.t list -> 'a -> unit

(** Deterministic depth-first walk: [enter f] when descending an edge,
    [leaf] for each payload at the node (insertion order, before the
    node's children), [leave f] when ascending back over the edge.
    Callers needing input-order results carry an index in the payload. *)
val walk :
  'a t ->
  enter:(Formula.t -> unit) ->
  leave:(Formula.t -> unit) ->
  leaf:('a -> unit) ->
  unit

(** Like {!walk}, but [enter] decides whether to descend.  Answering
    [false] subsumes the node's whole subtree: every payload below it is
    handed to [pruned] — own leaves first, then descendants, in the same
    deterministic order {!walk} would visit them — with no further
    [enter]/[leave] calls; the refused node's own [leave] still runs so
    a caller using an assumption context pops what [enter] pushed.  The
    checker uses this to answer every query under a prefix already
    proved Unsat without touching the solver. *)
val walk_pruned :
  'a t ->
  enter:(Formula.t -> bool) ->
  leave:(Formula.t -> unit) ->
  leaf:('a -> unit) ->
  pruned:('a -> unit) ->
  unit

(** {2 Statistics} *)

val node_count : 'a t -> int

(** Nodes traversed by at least two path conditions — the sharing the
    trie exists to exploit. *)
val shared_count : 'a t -> int

val leaf_count : 'a t -> int

(** Process-wide cumulative totals across all tries (telemetry). *)
val nodes_total : unit -> int

val shared_total : unit -> int
