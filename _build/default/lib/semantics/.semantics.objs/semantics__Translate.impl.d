lib/semantics/translate.ml: Ast Fmt Fun List Minilang Option Printf Smt String
