(** Quantifier-free formulas over implementation-local predicates.

    This is the checker-formula language of the paper (§3.1): low-level
    semantics restrict conditions to conjunctions/disjunctions of
    predicates over concrete state — state relations ([v = c]), null-ness
    ([s != null]), boolean observers ([s.closing == false]) and integer
    bounds ([s.ttl > 0]).  Variables are dotted paths such as
    ["session.closing"]; their types are implicit and enforced by the
    theory layer ({!Theory}).

    Terms and formulas are *hash-consed* ({!Core.Hc}): every smart
    constructor returns the maximally shared node, so physical equality
    coincides with structural equality and [equal]/[hash]/[compare] are
    O(1) over the per-node id and precomputed hash.  The tables are
    process-global and mutex-protected (safe under the engine's
    [--jobs N] domain pool).  Ids are interning-order-dependent and must
    never influence output ordering — [term_compare] and [canon_atom]
    stay structural for exactly that reason. *)

type rel = Req | Rneq | Rlt | Rle | Rgt | Rge

type term = { t_node : term_node; t_id : int; t_hash : int }

and term_node =
  | T_var of string  (** a state variable, e.g. ["s.ttl"] *)
  | T_int of int
  | T_bool of bool
  | T_str of string
  | T_null

type atom = { rel : rel; lhs : term; rhs : term }

type t = { f_node : f_node; f_id : int; f_hash : int }

and f_node =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t list
  | Or of t list

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Deterministic hash mixing (structural: a node's hash is computed from
   its children's stored hashes, never from ids). *)
let comb h k = (h * 0x01000193) lxor k

(* Shallow equality: children are already interned, so one pointer
   comparison per child suffices. *)
let term_node_equal (n : term_node) (e : term) : bool =
  match (n, e.t_node) with
  | T_var x, T_var y -> x == y || String.equal x y
  | T_int m, T_int n -> m = n
  | T_bool p, T_bool q -> p = q
  | T_str s, T_str t -> String.equal s t
  | T_null, T_null -> true
  | (T_var _ | T_int _ | T_bool _ | T_str _ | T_null), _ -> false

let term_tbl : (term_node, term) Core.Hc.t =
  Core.Hc.create ~name:"smt.term" ~equal:term_node_equal
    ~build:(fun ~id ~hkey n -> { t_node = n; t_id = id; t_hash = hkey })
    ()

let intern_term hkey n = Core.Hc.intern term_tbl ~hkey n

let rel_code = function Req -> 0 | Rneq -> 1 | Rlt -> 2 | Rle -> 3 | Rgt -> 4 | Rge -> 5

let atom_shallow_equal (a : atom) (b : atom) : bool =
  a.rel = b.rel && a.lhs == b.lhs && a.rhs == b.rhs

let f_node_equal (n : f_node) (e : t) : bool =
  match (n, e.f_node) with
  | True, True | False, False -> true
  | Atom a, Atom b -> atom_shallow_equal a b
  | Not f, Not g -> f == g
  | And fs, And gs | Or fs, Or gs -> (
      try List.for_all2 (fun (f : t) g -> f == g) fs gs
      with Invalid_argument _ -> false)
  | (True | False | Atom _ | Not _ | And _ | Or _), _ -> false

let f_tbl : (f_node, t) Core.Hc.t =
  Core.Hc.create ~name:"smt.formula" ~equal:f_node_equal
    ~build:(fun ~id ~hkey n -> { f_node = n; f_id = id; f_hash = hkey })
    ()

let intern_f hkey n = Core.Hc.intern f_tbl ~hkey n

let hash_list seed fs = List.fold_left (fun h (f : t) -> comb h f.f_hash) seed fs

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let tvar x =
  let s = Core.Intern.get x in
  intern_term (comb 3 s.Core.Intern.sym_hash) (T_var s.Core.Intern.str)

let tint n = intern_term (comb 5 (Hashtbl.hash n)) (T_int n)

let tbool b = intern_term (comb 7 (if b then 1 else 0)) (T_bool b)

let tstr s = intern_term (comb 11 (Hashtbl.hash s)) (T_str s)

let tnull = intern_term (comb 13 0) T_null

let tru = intern_f 17 True

let fls = intern_f 19 False

let atom rel lhs rhs =
  intern_f
    (comb (comb (comb 23 (rel_code rel)) lhs.t_hash) rhs.t_hash)
    (Atom { rel; lhs; rhs })

let eq a b = atom Req a b

let neq a b = atom Rneq a b

let lt a b = atom Rlt a b

let le a b = atom Rle a b

let gt a b = atom Rgt a b

let ge a b = atom Rge a b

(** Boolean state variable asserted true: [v == true]. *)
let bvar x = eq (tvar x) (tbool true)

(* [And]/[Or] nodes always have >= 2 children: [conj]/[disj] are the only
   list constructors, so the empty and singleton shapes are unrepresentable. *)
let conj = function [] -> tru | [ f ] -> f | fs -> intern_f (hash_list 29 fs) (And fs)

let disj = function [] -> fls | [ f ] -> f | fs -> intern_f (hash_list 31 fs) (Or fs)

let negate f = intern_f (comb 37 f.f_hash) (Not f)

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)
(* ------------------------------------------------------------------ *)

let view (f : t) : f_node = f.f_node

let term_view (t : term) : term_node = t.t_node

let id (f : t) : int = f.f_id

let term_id (t : term) : int = t.t_id

(* Maximal sharing makes physical equality sound: two formulas are
   structurally equal iff they are the same node. *)
let equal (f : t) (g : t) : bool = f == g

let hash (f : t) : int = f.f_hash

(* Id order is interning order — stable within a process, arbitrary
   across schedules.  For in-process table keying only. *)
let compare (f : t) (g : t) : int = Int.compare f.f_id g.f_id

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

(* Structural order (constructor rank, then payload) — deliberately NOT
   id order: [canon_atom] sorts operands with it, and that ordering must
   not depend on the interning schedule. *)
let term_compare (a : term) (b : term) : int =
  if a == b then 0
  else
    (* ranks reproduce the pre-interning polymorphic compare on the node
       variant: the constant constructor (T_null) sorts below every block
       constructor, then blocks by declaration order *)
    let rank = function
      | T_null -> 0
      | T_var _ -> 1
      | T_int _ -> 2
      | T_bool _ -> 3
      | T_str _ -> 4
    in
    match (a.t_node, b.t_node) with
    | T_var x, T_var y -> Stdlib.compare x y
    | T_int m, T_int n -> Stdlib.compare m n
    | T_bool p, T_bool q -> Stdlib.compare p q
    | T_str s, T_str t -> Stdlib.compare s t
    | T_null, T_null -> 0
    | x, y -> Stdlib.compare (rank x) (rank y)

let term_equal (a : term) (b : term) = a == b

let flip_rel = function
  | Req -> Req
  | Rneq -> Rneq
  | Rlt -> Rgt
  | Rle -> Rge
  | Rgt -> Rlt
  | Rge -> Rle

(** Relation satisfied exactly when [rel] is not. *)
let negate_rel = function
  | Req -> Rneq
  | Rneq -> Req
  | Rlt -> Rge
  | Rle -> Rgt
  | Rgt -> Rle
  | Rge -> Rlt

(** Canonical form of an atom: symmetric relations get sorted operands;
    [>] and [>=] are rewritten to [<] / [<=].  Canonicalisation makes atom
    identity meaningful for the DPLL abstraction. *)
let canon_atom (a : atom) : atom =
  let a =
    match a.rel with
    | Rgt -> { rel = Rlt; lhs = a.rhs; rhs = a.lhs }
    | Rge -> { rel = Rle; lhs = a.rhs; rhs = a.lhs }
    | Req | Rneq | Rlt | Rle -> a
  in
  match a.rel with
  | (Req | Rneq) when term_compare a.lhs a.rhs > 0 -> { a with lhs = a.rhs; rhs = a.lhs }
  | Req | Rneq | Rlt | Rle | Rgt | Rge -> a

let atom_equal a b = atom_shallow_equal (canon_atom a) (canon_atom b)

(* ------------------------------------------------------------------ *)
(* Node-keyed memo tables                                              *)
(* ------------------------------------------------------------------ *)

(* [atoms]/[nnf]/[simplify] are pure functions of the node, so their
   results can be memoized on the formula id.  Process-global and
   mutex-protected like the hash-cons tables; bounded by full reset
   (dropping a memo entry only costs recomputation — unlike the
   hash-cons tables themselves, eviction here is harmless). *)
let memo_cap = 1 lsl 16

let memo_lock = Mutex.create ()

let memo_find (tbl : (int, 'a) Hashtbl.t) (k : int) : 'a option =
  Mutex.lock memo_lock;
  let r = Hashtbl.find_opt tbl k in
  Mutex.unlock memo_lock;
  r

let memo_store (tbl : (int, 'a) Hashtbl.t) (k : int) (v : 'a) : unit =
  Mutex.lock memo_lock;
  if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
  Hashtbl.replace tbl k v;
  Mutex.unlock memo_lock

let memoized (tbl : (int, 'a) Hashtbl.t) (f : t) (compute : unit -> 'a) : 'a =
  match memo_find tbl f.f_id with
  | Some r -> r
  | None ->
      let r = compute () in
      memo_store tbl f.f_id r;
      r

let atoms_tbl : (int, atom list) Hashtbl.t = Hashtbl.create 1024

let nnf_tbl : (int, t) Hashtbl.t = Hashtbl.create 1024

let simplify_tbl : (int, t) Hashtbl.t = Hashtbl.create 1024

(** All distinct canonical atoms of a formula, in first-occurrence order
    (the order is structural, so it is schedule-independent; the solver's
    branch ordering depends on it).  Memoized on the interned node. *)
let atoms (f : t) : atom list =
  memoized atoms_tbl f @@ fun () ->
  let acc = ref [] in
  let add a =
    let c = canon_atom a in
    if not (List.exists (fun x -> atom_shallow_equal x c) !acc) then acc := c :: !acc
  in
  let rec go g =
    match g.f_node with
    | True | False -> ()
    | Atom a -> add a
    | Not h -> go h
    | And fs | Or fs -> List.iter go fs
  in
  go f;
  List.rev !acc

(** Free state variables of a formula. *)
let variables (f : t) : string list =
  let acc = ref [] in
  let add_term t =
    match t.t_node with
    | T_var x -> if not (List.mem x !acc) then acc := x :: !acc
    | T_int _ | T_bool _ | T_str _ | T_null -> ()
  in
  List.iter
    (fun a ->
      add_term a.lhs;
      add_term a.rhs)
    (atoms f);
  List.rev !acc

let rec size (f : t) =
  match f.f_node with
  | True | False -> 1
  | Atom _ -> 1
  | Not g -> 1 + size g
  | And fs | Or fs -> List.fold_left (fun n g -> n + size g) 1 fs

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** Concrete values for ground evaluation (used by tests to cross-check the
    solver against brute-force enumeration). *)
type value = V_int of int | V_bool of bool | V_str of string | V_null

let value_of_term (env : (string * value) list) (t : term) : value option =
  match t.t_node with
  | T_var x -> List.assoc_opt x env
  | T_int n -> Some (V_int n)
  | T_bool b -> Some (V_bool b)
  | T_str s -> Some (V_str s)
  | T_null -> Some V_null

let eval_atom (env : (string * value) list) (a : atom) : bool option =
  match (value_of_term env a.lhs, value_of_term env a.rhs) with
  | Some l, Some r -> (
      match a.rel with
      | Req -> Some (l = r)
      | Rneq -> Some (l <> r)
      | Rlt | Rle | Rgt | Rge -> (
          match (l, r) with
          | V_int x, V_int y ->
              Some
                (match a.rel with
                | Rlt -> x < y
                | Rle -> x <= y
                | Rgt -> x > y
                | Rge -> x >= y
                | Req | Rneq -> assert false)
          | _ -> None))
  | _ -> None

(** Ground evaluation; [None] when a variable is unbound or an order atom
    compares non-integers. *)
let rec eval (env : (string * value) list) (f : t) : bool option =
  match f.f_node with
  | True -> Some true
  | False -> Some false
  | Atom a -> eval_atom env a
  | Not g -> Option.map not (eval env g)
  | And fs ->
      List.fold_left
        (fun acc g ->
          match (acc, eval env g) with
          | Some false, _ -> Some false
          | _, Some false -> Some false
          | Some true, Some true -> Some true
          | _ -> None)
        (Some true) fs
  | Or fs ->
      List.fold_left
        (fun acc g ->
          match (acc, eval env g) with
          | Some true, _ -> Some true
          | _, Some true -> Some true
          | Some false, Some false -> Some false
          | _ -> None)
        (Some false) fs

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let term_to_string (t : term) =
  match t.t_node with
  | T_var x -> x
  | T_int n -> string_of_int n
  | T_bool true -> "true"
  | T_bool false -> "false"
  | T_str s -> Printf.sprintf "%S" s
  | T_null -> "null"

let rel_to_string = function
  | Req -> "=="
  | Rneq -> "!="
  | Rlt -> "<"
  | Rle -> "<="
  | Rgt -> ">"
  | Rge -> ">="

let atom_to_string (a : atom) =
  Fmt.str "%s %s %s" (term_to_string a.lhs) (rel_to_string a.rel) (term_to_string a.rhs)

let rec to_string (f : t) =
  match f.f_node with
  | True -> "true"
  | False -> "false"
  | Atom a -> atom_to_string a
  | Not g -> "!(" ^ to_string g ^ ")"
  | And fs -> "(" ^ String.concat " && " (List.map to_string fs) ^ ")"
  | Or fs -> "(" ^ String.concat " || " (List.map to_string fs) ^ ")"

let pp ppf f = Fmt.string ppf (to_string f)

(* ------------------------------------------------------------------ *)
(* Normal forms                                                        *)
(* ------------------------------------------------------------------ *)

(** Negation normal form: negations pushed onto atoms (then folded into the
    atom's relation, so the result contains no [Not] at all).  Memoized on
    the formula id. *)
let rec nnf (f : t) : t =
  memoized nnf_tbl f @@ fun () ->
  match f.f_node with
  | True | False | Atom _ -> f
  | And fs -> conj (List.map nnf fs)
  | Or fs -> disj (List.map nnf fs)
  | Not g -> (
      match g.f_node with
      | True -> fls
      | False -> tru
      | Atom a -> atom (negate_rel a.rel) a.lhs a.rhs
      | Not h -> nnf h
      | And fs -> disj (List.map (fun f -> nnf (negate f)) fs)
      | Or fs -> conj (List.map (fun f -> nnf (negate f)) fs))

(* Dedup by canonical-atom identity (physical once interned), preserving
   first occurrences. *)
let dedup fs =
  let key (g : t) =
    match g.f_node with
    | Atom a ->
        let c = canon_atom a in
        atom c.rel c.lhs c.rhs
    | True | False | Not _ | And _ | Or _ -> g
  in
  let rec go seen = function
    | [] -> []
    | g :: rest ->
        let k = key g in
        if List.memq k seen then go seen rest else g :: go (k :: seen) rest
  in
  go [] fs

let has_complementary fs =
  let lits =
    List.filter_map
      (fun (g : t) -> match g.f_node with Atom a -> Some (canon_atom a) | _ -> None)
      fs
  in
  List.exists
    (fun a ->
      let neg = canon_atom { a with rel = negate_rel a.rel } in
      List.exists (fun b -> atom_shallow_equal b neg) lits)
    lits

(** Basic simplification: constant folding, flattening of nested
    conjunctions/disjunctions, duplicate removal, and complementary-literal
    detection within one level.  Semantics-preserving.  Memoized on the
    formula id. *)
let rec simplify (f : t) : t =
  memoized simplify_tbl f @@ fun () ->
  match f.f_node with
  | True | False | Atom _ -> f
  | Not g -> (
      let g' = simplify g in
      match g'.f_node with
      | True -> fls
      | False -> tru
      | Atom a -> atom (negate_rel a.rel) a.lhs a.rhs
      | Not h -> h
      | And _ | Or _ -> negate g')
  | And fs ->
      let fs = List.map simplify fs in
      let fs =
        List.concat_map (fun (g : t) -> match g.f_node with And gs -> gs | _ -> [ g ]) fs
      in
      let fs = List.filter (fun g -> g != tru) fs in
      if List.exists (fun g -> g == fls) fs then fls
      else
        let fs = dedup fs in
        if has_complementary fs then fls else conj fs
  | Or fs ->
      let fs = List.map simplify fs in
      let fs =
        List.concat_map (fun (g : t) -> match g.f_node with Or gs -> gs | _ -> [ g ]) fs
      in
      let fs = List.filter (fun g -> g != fls) fs in
      if List.exists (fun g -> g == tru) fs then tru
      else
        let fs = dedup fs in
        if has_complementary fs then tru else disj fs

(* ------------------------------------------------------------------ *)
(* Intern-table statistics                                             *)
(* ------------------------------------------------------------------ *)

type intern_stats = {
  term_stats : Core.Hc.stats;
  formula_stats : Core.Hc.stats;
  string_stats : Core.Hc.stats;
}

let intern_stats () : intern_stats =
  {
    term_stats = Core.Hc.stats term_tbl;
    formula_stats = Core.Hc.stats f_tbl;
    string_stats = Core.Intern.stats ();
  }

let intern_hits () =
  let s = intern_stats () in
  s.term_stats.Core.Hc.hits + s.formula_stats.Core.Hc.hits + s.string_stats.Core.Hc.hits

let intern_misses () =
  let s = intern_stats () in
  s.term_stats.Core.Hc.misses + s.formula_stats.Core.Hc.misses
  + s.string_stats.Core.Hc.misses

let intern_size () =
  let s = intern_stats () in
  s.term_stats.Core.Hc.size + s.formula_stats.Core.Hc.size + s.string_stats.Core.Hc.size
