(** The serve wire protocol: JSONL request/response codecs.  Parsing is
    tolerant (unknown fields ignored, defaults filled in); rendering is
    deterministic (fixed field order, compact) so verdict payloads are
    byte-stable across cold and warm runs. *)

(* v2: enforce summaries carry a per-rule witness-replay tier ("tiers");
   absent/empty means triage did not run, and v1 payloads parse with
   [sum_tiers = []] *)
let version = 2

type op = Enforce | Ping | Stats | Save | Shutdown

type request = {
  req_id : string;
  req_tenant : string;
  req_op : op;
  req_system : string option;
  req_case : string option;
  req_ticket : int;
  req_version : int option;
}

type summary = {
  sum_verdict : string;
  sum_findings : string list;
  sum_degraded : string list;
  sum_traces : int;
  sum_rules : int;
  sum_tiers : (string * string) list;
}

type run_stats = {
  rs_queue_ms : float;
  rs_run_ms : float;
  rs_jobs_run : int;
  rs_report_hits : int;
  rs_smt_hits : int;
  rs_solver_calls : int;
}

type response =
  | Ok_enforce of {
      id : string;
      tenant : string;
      summary : summary;
      cached : bool;
      stats : run_stats;
    }
  | Ok_ping of { id : string; tenant : string }
  | Ok_stats of { id : string; tenant : string; fields : (string * int) list }
  | Ok_saved of { id : string; tenant : string; entries : int }
  | Ok_shutdown of { id : string; tenant : string }
  | Overloaded of { id : string; tenant : string; depth : int }
  | Rejected of { id : string; tenant : string; reason : string }
  | Error_resp of { id : string; tenant : string; message : string }

let op_of_string = function
  | "enforce" -> Ok Enforce
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "save" -> Ok Save
  | "shutdown" -> Ok Shutdown
  | s -> Error (Printf.sprintf "unknown op %S" s)

let parse_request (line : string) : (request, string) result =
  match Jsonu.parse line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok (Jsonu.Obj _ as obj) -> (
      let str_field name = Option.bind (Jsonu.member name obj) Jsonu.to_str in
      let int_field name = Option.bind (Jsonu.member name obj) Jsonu.to_int in
      let op_result =
        match str_field "op" with
        | None -> Ok Enforce
        | Some s -> op_of_string s
      in
      match op_result with
      | Error e -> Error e
      | Ok op ->
          Ok
            {
              req_id = Option.value ~default:"" (str_field "id");
              req_tenant = Option.value ~default:"default" (str_field "tenant");
              req_op = op;
              req_system = str_field "system";
              req_case = str_field "case";
              req_ticket = Option.value ~default:0 (int_field "ticket");
              req_version = int_field "version";
            })
  | Ok _ -> Error "request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Response parsing                                                    *)
(* ------------------------------------------------------------------ *)

(* tolerant: missing fields default (in particular a v1 payload with no
   "tiers" yields [sum_tiers = []]); extra fields are ignored *)
let summary_of_json (obj : Jsonu.t) : summary =
  let str name d = Option.value ~default:d (Option.bind (Jsonu.member name obj) Jsonu.to_str) in
  let int name = Option.value ~default:0 (Option.bind (Jsonu.member name obj) Jsonu.to_int) in
  let strs name =
    match Option.bind (Jsonu.member name obj) Jsonu.to_list with
    | None -> []
    | Some vs -> List.filter_map Jsonu.to_str vs
  in
  let tiers =
    match Jsonu.member "tiers" obj with
    | Some (Jsonu.Obj kvs) ->
        List.filter_map
          (fun (id, v) -> Option.map (fun t -> (id, t)) (Jsonu.to_str v))
          kvs
    | _ -> []
  in
  {
    sum_verdict = str "verdict" "clean";
    sum_findings = strs "findings";
    sum_degraded = strs "degraded";
    sum_traces = int "traces";
    sum_rules = int "rules";
    sum_tiers = tiers;
  }

let stats_of_json (obj : Jsonu.t) : run_stats =
  let flt name = Option.value ~default:0. (Option.bind (Jsonu.member name obj) Jsonu.to_float) in
  let int name = Option.value ~default:0 (Option.bind (Jsonu.member name obj) Jsonu.to_int) in
  {
    rs_queue_ms = flt "queue_ms";
    rs_run_ms = flt "run_ms";
    rs_jobs_run = int "jobs_run";
    rs_report_hits = int "report_hits";
    rs_smt_hits = int "smt_hits";
    rs_solver_calls = int "solver_calls";
  }

let parse_response (line : string) : (response, string) result =
  match Jsonu.parse line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok (Jsonu.Obj _ as obj) -> (
      let str name d =
        Option.value ~default:d (Option.bind (Jsonu.member name obj) Jsonu.to_str)
      in
      let id = str "id" "" and tenant = str "tenant" "default" in
      match str "status" "" with
      | "ok" -> (
          match Jsonu.member "verdict" obj with
          | Some _ ->
              Ok
                (Ok_enforce
                   {
                     id;
                     tenant;
                     summary = summary_of_json obj;
                     cached =
                       Option.value ~default:false
                         (Option.bind (Jsonu.member "cached" obj) Jsonu.to_bool);
                     stats =
                       (match Jsonu.member "stats" obj with
                       | Some st -> stats_of_json st
                       | None -> stats_of_json (Jsonu.Obj []));
                   })
          | None -> (
              match
                ( Jsonu.member "pong" obj,
                  Jsonu.member "counters" obj,
                  Jsonu.member "saved_entries" obj,
                  Jsonu.member "shutdown" obj )
              with
              | Some _, _, _, _ -> Ok (Ok_ping { id; tenant })
              | _, Some (Jsonu.Obj kvs), _, _ ->
                  Ok
                    (Ok_stats
                       {
                         id;
                         tenant;
                         fields =
                           List.filter_map
                             (fun (k, v) ->
                               Option.map (fun i -> (k, i)) (Jsonu.to_int v))
                             kvs;
                       })
              | _, _, Some n, _ ->
                  Ok
                    (Ok_saved
                       {
                         id;
                         tenant;
                         entries = Option.value ~default:0 (Jsonu.to_int n);
                       })
              | _, _, _, Some _ -> Ok (Ok_shutdown { id; tenant })
              | _ -> Error "ok response with no recognizable payload"))
      | "overloaded" ->
          Ok
            (Overloaded
               {
                 id;
                 tenant;
                 depth =
                   Option.value ~default:0
                     (Option.bind (Jsonu.member "queue_depth" obj) Jsonu.to_int);
               })
      | "rejected" -> Ok (Rejected { id; tenant; reason = str "reason" "" })
      | "error" -> Ok (Error_resp { id; tenant; message = str "message" "" })
      | s -> Error (Printf.sprintf "unknown status %S" s))
  | Ok _ -> Error "response must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let head ~id ~tenant ~status rest =
  Jsonu.Obj
    ([
       ("id", Jsonu.Str id);
       ("tenant", Jsonu.Str tenant);
       ("status", Jsonu.Str status);
     ]
    @ rest)

let summary_fields (s : summary) =
  [
    ("verdict", Jsonu.Str s.sum_verdict);
    ("findings", Jsonu.string_list s.sum_findings);
    ("degraded", Jsonu.string_list s.sum_degraded);
    ("traces", Jsonu.Int s.sum_traces);
    ("rules", Jsonu.Int s.sum_rules);
  ]
  (* "tiers" renders only when triage ran: tier-less verdicts stay
     byte-identical to the v1 wire form *)
  @
  match s.sum_tiers with
  | [] -> []
  | tiers ->
      [ ("tiers", Jsonu.Obj (List.map (fun (id, t) -> (id, Jsonu.Str t)) tiers)) ]

let stats_fields (st : run_stats) =
  Jsonu.Obj
    [
      ("queue_ms", Jsonu.Float (Float.round (st.rs_queue_ms *. 1000.) /. 1000.));
      ("run_ms", Jsonu.Float (Float.round (st.rs_run_ms *. 1000.) /. 1000.));
      ("jobs_run", Jsonu.Int st.rs_jobs_run);
      ("report_hits", Jsonu.Int st.rs_report_hits);
      ("smt_hits", Jsonu.Int st.rs_smt_hits);
      ("solver_calls", Jsonu.Int st.rs_solver_calls);
    ]

let render_response (r : response) : string =
  Jsonu.to_string
    (match r with
    | Ok_enforce { id; tenant; summary; cached; stats } ->
        head ~id ~tenant ~status:"ok"
          (summary_fields summary
          @ [ ("cached", Jsonu.Bool cached); ("stats", stats_fields stats) ])
    | Ok_ping { id; tenant } ->
        head ~id ~tenant ~status:"ok" [ ("pong", Jsonu.Bool true) ]
    | Ok_stats { id; tenant; fields } ->
        head ~id ~tenant ~status:"ok"
          [
            ( "counters",
              Jsonu.Obj (List.map (fun (k, v) -> (k, Jsonu.Int v)) fields) );
          ]
    | Ok_saved { id; tenant; entries } ->
        head ~id ~tenant ~status:"ok" [ ("saved_entries", Jsonu.Int entries) ]
    | Ok_shutdown { id; tenant } ->
        head ~id ~tenant ~status:"ok" [ ("shutdown", Jsonu.Bool true) ]
    | Overloaded { id; tenant; depth } ->
        head ~id ~tenant ~status:"overloaded" [ ("queue_depth", Jsonu.Int depth) ]
    | Rejected { id; tenant; reason } ->
        head ~id ~tenant ~status:"rejected" [ ("reason", Jsonu.Str reason) ]
    | Error_resp { id; tenant; message } ->
        head ~id ~tenant ~status:"error" [ ("message", Jsonu.Str message) ])

let response_id = function
  | Ok_enforce { id; _ }
  | Ok_ping { id; _ }
  | Ok_stats { id; _ }
  | Ok_saved { id; _ }
  | Ok_shutdown { id; _ }
  | Overloaded { id; _ }
  | Rejected { id; _ }
  | Error_resp { id; _ } ->
      id

(** Stable verdict key: everything except timings and cache provenance. *)
let verdict_signature (r : response) : string =
  match r with
  | Ok_enforce { id; summary = s; _ } ->
      Printf.sprintf "%s ok %s findings=[%s] degraded=[%s] traces=%d rules=%d%s"
        id s.sum_verdict
        (String.concat "," s.sum_findings)
        (String.concat "," s.sum_degraded)
        s.sum_traces s.sum_rules
        (match s.sum_tiers with
        | [] -> ""
        | tiers ->
            Printf.sprintf " tiers=[%s]"
              (String.concat ","
                 (List.map (fun (i, t) -> i ^ "=" ^ t) tiers)))
  | Ok_ping { id; _ } -> Printf.sprintf "%s pong" id
  | Ok_stats { id; _ } -> Printf.sprintf "%s stats" id
  | Ok_saved { id; _ } -> Printf.sprintf "%s saved" id
  | Ok_shutdown { id; _ } -> Printf.sprintf "%s shutdown" id
  | Overloaded { id; _ } -> Printf.sprintf "%s overloaded" id
  | Rejected { id; reason; _ } -> Printf.sprintf "%s rejected %s" id reason
  | Error_resp { id; message; _ } -> Printf.sprintf "%s error %s" id message
