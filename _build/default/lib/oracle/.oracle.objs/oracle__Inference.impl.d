lib/oracle/inference.ml: Analysis Ast Buffer Builtins Char Diffing Fmt List Minilang Pretty Semantics Smt String Ticket
