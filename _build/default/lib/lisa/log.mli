(** Logging source for the LISA pipeline ("lisa").  Consumers install a
    {!Logs} reporter and set the level; the library only emits. *)

val src : Logs.src

val info : ('a, Format.formatter, unit, unit) format4 -> 'a

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a

val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
