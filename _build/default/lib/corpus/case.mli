(** Regression-case model for the incident corpus (§2.1 study population).

    A case is one clustered regression: an original bug, its fix, and at
    least one later regression re-violating the same low-level semantic on
    a different path.  A case's history is a sequence of *stages*:
    stage 0 the original buggy version, stage 1 after the first fix
    (patch + regression test), stage 2 the evolved/regressed version,
    stage 3 after the regression fix; three-bug cases continue to
    stages 4 (the "latest release" carrying the §4 unknown bug) and 5.
    Tickets are derived from adjacent stages, so diffs are real. *)

type kind = Guard | Lock

type t = {
  case_id : string;
  system : string;  (** "zookeeper" | "hbase" | "hdfs" | "cassandra" *)
  feature : string;
  kind : kind;
  bug_ids : string list;  (** ordered: original bug first *)
  n_stages : int;
  source : int -> string;  (** feature-module source at a stage *)
  ticket_meta : (int * string * string * string) list;
      (** (fix stage, ticket id, title, discussion) *)
  regression_stages : int list;  (** stages containing an unfixed regression *)
  latest_stage : int;
  latest_has_unknown_bug : bool;
  violating_old_semantics : int;  (** bugs violating old semantics (study) *)
  first_year : int;
  last_year : int;
}

val program_at : t -> int -> Minilang.Ast.program

(** [test_*] functions present at [stage] but not at [stage - 1]. *)
val tests_added_at : t -> int -> string list

(** Ticket for the fix landing at [stage] (diff of stage-1 → stage). *)
val ticket_at : t -> int -> Oracle.Ticket.t option

(** All tickets, oldest first. *)
val tickets : t -> Oracle.Ticket.t list

(** The ticket for the original incident — what LISA learns from. *)
val original_ticket : t -> Oracle.Ticket.t

val n_bugs : t -> int

(** All stages parse, typecheck, and have green test suites (corpus bugs
    are latent, like the real ones). *)
val validate : t -> (unit, string) result
