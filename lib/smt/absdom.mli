(** Sound abstract pre-solver: interval + constant + null/not-null
    evaluation over interned formulas.

    The first rung of the solver's fast-path ladder (see
    [lib/smt/README.md]).  Facts are derived from a formula's top-level
    literal conjuncts only — every derivation and refutation rule
    mirrors a check the DPLL(T) theory layer enforces, so a definite
    answer always agrees with {!Solver.solve}:

    - {!refute} [f = true] implies the solver answers [Unsat] (or would
      answer it with an unlimited node budget);
    - {!eval} [f = A_sat] implies the solver answers [Sat _]: Sat is
      only claimed from a concrete witness environment confirmed by
      {!Formula.eval}.

    [Unknown] is always allowed; the fast path is a filter, never an
    oracle.  Results for {!refute} are memoized on the simplified
    formula's hash-cons id in a bounded table shared across domains. *)

type verdict = A_sat | A_unsat | A_unknown

(** Decide the formula abstractly: [A_unsat] and [A_sat] are definite
    (sound both ways), [A_unknown] means the domain cannot tell.  Used
    by the qcheck agreement suite; the solver hot path uses {!refute}. *)
val eval : Formula.t -> verdict

(** [true] iff the abstract domain proves the formula unsatisfiable.
    Memoized; this is what the solver's fast path calls. *)
val refute : Formula.t -> bool

(** Entries in the refutation memo (diagnostics). *)
val memo_size : unit -> int

val reset_memo : unit -> unit
