lib/lisa/pipeline.mli: Checker Minilang Oracle Semantics
