lib/analysis/lockscope.mli: Callgraph Minilang
