(** Deterministic fingerprints for programs, methods, and enforcement
    jobs — all over canonical printed text, never statement ids, so they
    survive the global sid renumbering an unrelated edit causes.

    A rule's {e region} is the method set whose text can influence its
    verdict (caller-closure of the target methods, closed under
    reachability, plus everything reachable from the selected tests; the
    whole program for lock rules).  Cache keys digest the region text, so
    versions differing only outside a rule's region share a report. *)

open Minilang

(** Digest of the canonical printed program. *)
val program : Ast.program -> string

(** [qname -> canonical text] for every method and top-level function. *)
val methods : Ast.program -> (string * string) list

(** Every node from which any seed is reachable (inclusive). *)
val ancestors : Analysis.Callgraph.t -> string list -> string list

(** The region of a prepared rule, sorted. *)
val region : Analysis.Callgraph.t -> Checker.prepared -> string list

(** Deterministic job id for one (program version, rule) pair. *)
val job_id : program_fp:string -> rule_id:string -> string

(** Report-cache key: digests rule identity/body, checker knobs, resolved
    targets, selected tests, and all region method texts.  Equal keys
    imply textually identical dynamic-phase inputs. *)
val job_key :
  config:Checker.config ->
  graph:Analysis.Callgraph.t ->
  methods:(string * string) list ->
  Checker.prepared ->
  string
