(** Mini-ZooKeeper: five regression families transliterated from the
    tickets the paper cites (ZK-1208/1496, ZK-2201/3531) plus three more
    clustered regressions of the kinds the §2.1 study describes (watch
    leaks, quota enforcement, election epoch checks).

    Every feature is a self-contained MiniJava module (own classes, own
    tests) so that tickets stay focused and whole-system versions can be
    assembled by concatenation. *)

(* ================================================================== *)
(* Case 1: ephemeral nodes — ZK-1208 then ZK-1496 (Figures 2 and 3)    *)
(* ================================================================== *)

module Ephemeral = struct
  (* stage flags: prep guard (fix 1), learner path exists (evolution),
     learner guard (fix 2) *)
  let source stage =
    let prep_guard = stage >= 1 in
    let learner = stage >= 2 in
    let learner_guard = stage >= 3 in
    String.concat "\n"
      ([
         {|// ZooKeeper: ephemeral node lifecycle
class Session {
  field id: int;
  field owner: str;
  field closing: bool = false;
  field expired: bool = false;
  method init(id: int, owner: str) {
    this.id = id;
    this.owner = owner;
  }
  method isClosing(): bool {
    return this.closing;
  }
}

class SessionTrackerImpl {
  field sessionsById: map;
  method addSession(s: Session) {
    mapPut(this.sessionsById, s.id, s);
  }
  method getSession(sessionId: int): Session {
    var s: Session = mapGet(this.sessionsById, sessionId);
    return s;
  }
  method setClosing(sessionId: int) {
    var s: Session = mapGet(this.sessionsById, sessionId);
    if (s == null) {
      return;
    }
    s.closing = true;
  }
}

class DataTree {
  field nodes: map;
  field ephemerals: map;
  method createEphemeralNode(path: str, sessionId: int) {
    mapPut(this.nodes, path, sessionId);
    mapPut(this.ephemerals, path, sessionId);
  }
  method deleteNode(path: str) {
    mapRemove(this.nodes, path);
    mapRemove(this.ephemerals, path);
  }
  method hasNode(path: str): bool {
    return mapContains(this.nodes, path);
  }
  method getOwner(path: str): int {
    if (!mapContains(this.nodes, path)) {
      throw "NoNodeException";
    }
    var owner: int = mapGet(this.nodes, path);
    return owner;
  }
  method nodeCount(): int {
    return mapSize(this.nodes);
  }
  method ephemeralCount(sessionId: int): int {
    var paths: list = mapKeys(this.ephemerals);
    var n: int = 0;
    var i: int = 0;
    while (i < listSize(paths)) {
      var owner: int = mapGet(this.ephemerals, listGet(paths, i));
      if (owner == sessionId) {
        n = n + 1;
      }
      i = i + 1;
    }
    return n;
  }
  method killSession(sessionId: int) {
    var paths: list = mapKeys(this.ephemerals);
    var i: int = 0;
    while (i < listSize(paths)) {
      var p: str = listGet(paths, i);
      var owner: int = mapGet(this.ephemerals, p);
      if (owner == sessionId) {
        this.deleteNode(p);
      }
      i = i + 1;
    }
  }
}

class PrepRequestProcessor {
  field tracker: SessionTrackerImpl;
  field tree: DataTree;
  method init(tracker: SessionTrackerImpl, tree: DataTree) {
    this.tracker = tracker;
    this.tree = tree;
  }
  method pRequest2TxnCreate(sessionId: int, path: str) {
    var s: Session = this.tracker.getSession(sessionId);
|};
       ]
      @ (if prep_guard then
           [
             {|    if (s == null || s.isClosing()) {
      throw "SessionExpiredException";
    }|};
           ]
         else
           [ {|    if (s == null) {
      throw "SessionExpiredException";
    }|} ])
      @ [
          {|    this.tree.createEphemeralNode(path, sessionId);
  }
  method closeSession(sessionId: int) {
    this.tracker.setClosing(sessionId);
    this.tree.killSession(sessionId);
  }
}
|};
        ]
      @ (if learner then
           [
             {|// forwarded create requests from learners (added later)
class LearnerRequestProcessor {
  field tracker: SessionTrackerImpl;
  field tree: DataTree;
  method init(tracker: SessionTrackerImpl, tree: DataTree) {
    this.tracker = tracker;
    this.tree = tree;
  }
  method forwardCreate(sessionId: int, path: str) {
    var s: Session = this.tracker.getSession(sessionId);
|};
           ]
           @ (if learner_guard then
                [
                  {|    if (s == null || s.isClosing()) {
      throw "SessionExpiredException";
    }|};
                ]
              else
                [ {|    if (s == null) {
      throw "SessionExpiredException";
    }|} ])
           @ [ {|    this.tree.createEphemeralNode(path, sessionId);
  }
}
|} ]
         else [])
      @ [
          {|method makeEphemeralStack(): PrepRequestProcessor {
  var tracker: SessionTrackerImpl = new SessionTrackerImpl();
  var tree: DataTree = new DataTree();
  var prep: PrepRequestProcessor = new PrepRequestProcessor(tracker, tree);
  return prep;
}

method test_eph_create_on_live_session() {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var s: Session = new Session(1, "kafka-consumer-1");
  prep.tracker.addSession(s);
  prep.pRequest2TxnCreate(1, "/consumers/c1");
  assert (prep.tree.hasNode("/consumers/c1"), "ephemeral registered");
}

method test_eph_close_removes_nodes() {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var s: Session = new Session(1, "kafka-consumer-1");
  prep.tracker.addSession(s);
  prep.pRequest2TxnCreate(1, "/consumers/c1");
  prep.closeSession(1);
  assert (!prep.tree.hasNode("/consumers/c1"), "ephemeral cleaned on close");
}

method test_eph_create_unknown_session_rejected() {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var rejected: bool = false;
  try { prep.pRequest2TxnCreate(99, "/consumers/ghost"); }
  catch (e) { rejected = true; }
  assert (rejected, "unknown session rejected");
}

method test_eph_owner_lookup() {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var s: Session = new Session(3, "kafka-consumer-3");
  prep.tracker.addSession(s);
  prep.pRequest2TxnCreate(3, "/consumers/c3");
  assert (prep.tree.getOwner("/consumers/c3") == 3, "owner recorded");
}

method test_eph_missing_owner_rejected() {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var rejected: bool = false;
  try { var o: int = prep.tree.getOwner("/absent"); } catch (e) { rejected = true; }
  assert (rejected, "missing node lookup rejected");
}

method test_eph_counts_per_session() {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var s: Session = new Session(4, "kafka-consumer-4");
  prep.tracker.addSession(s);
  prep.pRequest2TxnCreate(4, "/consumers/a");
  prep.pRequest2TxnCreate(4, "/consumers/b");
  assert (prep.tree.ephemeralCount(4) == 2, "two ephemerals for session");
  assert (prep.tree.nodeCount() == 2, "two nodes total");
  prep.closeSession(4);
  assert (prep.tree.ephemeralCount(4) == 0, "counts drop after close");
}
|};
        ]
      @ (if prep_guard then
           [
             {|// regression test added with the ZK-1208 fix
method test_zk1208_create_on_closing_session_rejected() {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var s: Session = new Session(7, "kafka-consumer-7");
  prep.tracker.addSession(s);
  prep.tracker.setClosing(7);
  var rejected: bool = false;
  try { prep.pRequest2TxnCreate(7, "/consumers/c7"); }
  catch (e) { rejected = true; }
  assert (rejected, "create on closing session rejected");
  assert (!prep.tree.hasNode("/consumers/c7"), "no stale node");
}
|};
           ]
         else [])
      @ (if learner then
           [
             {|method test_eph_learner_forward_create() {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var lrp: LearnerRequestProcessor = new LearnerRequestProcessor(prep.tracker, prep.tree);
  var s: Session = new Session(2, "kafka-consumer-2");
  prep.tracker.addSession(s);
  lrp.forwardCreate(2, "/consumers/c2");
  assert (prep.tree.hasNode("/consumers/c2"), "learner create lands");
}
|};
           ]
         else [])
      @
      if learner_guard then
        [
          {|// regression test added with the ZK-1496 fix
method test_zk1496_learner_closing_rejected() {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var lrp: LearnerRequestProcessor = new LearnerRequestProcessor(prep.tracker, prep.tree);
  var s: Session = new Session(8, "kafka-consumer-8");
  prep.tracker.addSession(s);
  prep.tracker.setClosing(8);
  var rejected: bool = false;
  try { lrp.forwardCreate(8, "/consumers/c8"); }
  catch (e) { rejected = true; }
  assert (rejected, "learner create on closing session rejected");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "zk-ephemeral";
      system = "zookeeper";
      feature = "ephemeral nodes";
      kind = Case.Guard;
      bug_ids = [ "ZK-1208"; "ZK-1496" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "ZK-1208",
            "Ephemeral node not removed after the client session is long gone",
            "No client may create an ephemeral node while its session is in the \
             CLOSING state. A Kafka deployment registered consumer addresses as \
             ephemeral nodes; a race in PrepRequestProcessor allowed a create on a \
             closing session, so a stale registration survived session teardown and \
             clients kept querying a dead address. The fix rejects create requests \
             when the session is closing." );
          ( 3,
            "ZK-1496",
            "Ephemeral node not getting cleared even after client has exited",
            "No client may create an ephemeral node while its session is in the \
             CLOSING state. One year after ZK-1208, the learner request path reached \
             the same node-creation logic without the closing-session guard, and the \
             whole Kafka cluster got stuck in zombie mode again. The fix adds the \
             same check to the learner path." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 2;
      first_year = 2011;
      last_year = 2012;
    }
end

(* ================================================================== *)
(* Case 2: serialization inside synchronized blocks — ZK-2201 / ZK-3531 *)
(* ================================================================== *)

module Serialize = struct
  let source stage =
    let sync_fixed = stage >= 1 in
    let acl = stage >= 2 in
    let acl_fixed = stage >= 3 in
    String.concat "\n"
      ([
         {|// ZooKeeper: snapshot serialization and locks
class DataNode {
  field path: str;
  field data: int;
  field children: list;
  method init(path: str, data: int) {
    this.path = path;
    this.data = data;
  }
  method getChildren(): list {
    return this.children;
  }
}

class SyncRequestProcessor {
  field scount: int = 0;
  field root: DataNode;
  method init(root: DataNode) {
    this.root = root;
  }
  method snapshotCount(): int {
    return this.scount;
  }
  method childCount(node: DataNode): int {
    var kids: list = null;
    synchronized (node) {
      kids = node.getChildren();
    }
    return listSize(kids);
  }
|};
       ]
      @ (if sync_fixed then
           [
             {|  method serializeNode(node: DataNode) {
    var snapshot: int = 0;
    var kids: list = null;
    synchronized (node) {
      this.scount = this.scount + 1;
      snapshot = node.data;
      kids = node.getChildren();
    }
    // blocking write moved outside the monitor (ZK-2201 fix)
    writeRecord(snapshot);
    var i: int = 0;
    while (i < listSize(kids)) {
      writeRecord(listGet(kids, i));
      i = i + 1;
    }
  }|};
           ]
         else
           [
             {|  method serializeNode(node: DataNode) {
    var kids: list = null;
    synchronized (node) {
      this.scount = this.scount + 1;
      // blocking write while holding the node monitor: writers stall
      writeRecord(node.data);
      kids = node.getChildren();
      var i: int = 0;
      while (i < listSize(kids)) {
        writeRecord(listGet(kids, i));
        i = i + 1;
      }
    }
  }|};
           ])
      @ [ {|}
|} ]
      @ (if acl then
           if acl_fixed then
             [
               {|class ReferenceCountedACLCache {
  field longKeyMap: map;
  field serialized: int = 0;
  method serialize() {
    var keys: list = null;
    var count: int = 0;
    synchronized (this) {
      keys = mapKeys(this.longKeyMap);
      count = mapSize(this.longKeyMap);
      this.serialized = this.serialized + 1;
    }
    // blocking writes moved outside the monitor (ZK-3531 fix)
    writeRecord(count);
    var i: int = 0;
    while (i < listSize(keys)) {
      writeRecord(listGet(keys, i));
      i = i + 1;
    }
  }
}
|};
             ]
           else
             [
               {|class ReferenceCountedACLCache {
  field longKeyMap: map;
  field serialized: int = 0;
  method serialize() {
    synchronized (this) {
      writeRecord(mapSize(this.longKeyMap));
      var keys: list = mapKeys(this.longKeyMap);
      var i: int = 0;
      while (i < listSize(keys)) {
        writeRecord(listGet(keys, i));
        i = i + 1;
      }
      this.serialized = this.serialized + 1;
    }
  }
}
|};
             ]
         else [])
      @ [
          {|method makeSerializerRoot(): DataNode {
  var root: DataNode = new DataNode("/", 1);
  listAdd(root.children, 2);
  listAdd(root.children, 3);
  return root;
}

method test_ser_snapshot_counts() {
  var root: DataNode = makeSerializerRoot();
  var sync: SyncRequestProcessor = new SyncRequestProcessor(root);
  sync.serializeNode(root);
  sync.serializeNode(root);
  assert (sync.snapshotCount() == 2, "two serializations recorded");
}

method test_ser_child_count_under_lock_only() {
  // reading children holds the monitor briefly but performs no I/O
  var root: DataNode = makeSerializerRoot();
  var sync: SyncRequestProcessor = new SyncRequestProcessor(root);
  assert (sync.childCount(root) == 2, "two children");
}
|};
        ]
      @ (if sync_fixed then
           [
             {|// regression test added with the ZK-2201 fix
method test_zk2201_serialize_completes() {
  var root: DataNode = makeSerializerRoot();
  var sync: SyncRequestProcessor = new SyncRequestProcessor(root);
  sync.serializeNode(root);
  assert (sync.scount == 1, "serialization completed");
}
|};
           ]
         else [])
      @ (if acl then
           [
             {|method test_ser_acl_cache_serialize() {
  var cache: ReferenceCountedACLCache = new ReferenceCountedACLCache();
  mapPut(cache.longKeyMap, 1, 100);
  mapPut(cache.longKeyMap, 2, 200);
  cache.serialize();
  assert (cache.serialized == 1, "acl cache serialized");
}
|};
           ]
         else [])
      @
      if acl_fixed then
        [
          {|// regression test added with the ZK-3531 fix
method test_zk3531_acl_serialize_completes() {
  var cache: ReferenceCountedACLCache = new ReferenceCountedACLCache();
  mapPut(cache.longKeyMap, 5, 500);
  cache.serialize();
  assert (cache.serialized == 1, "acl serialization completed");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "zk-serialize-lock";
      system = "zookeeper";
      feature = "snapshot serialization under locks";
      kind = Case.Lock;
      bug_ids = [ "ZK-2201"; "ZK-3531" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "ZK-2201",
            "Network issues can cause cluster to hang due to near-deadlock",
            "No blocking I/O may be performed while holding a data-node monitor. \
             serializeNode wrote records to a stalled stream inside a synchronized \
             block, so every writer blocked behind the monitor and the cluster \
             turned into a zombie: write operations were silently blocked. The fix \
             copies state under the lock and performs the blocking writes outside." );
          ( 3,
            "ZK-3531",
            "Synchronized serialization in ACL cache blocks the cluster",
            "No blocking I/O may be performed while holding a data-node monitor. \
             One year after ZK-2201, ReferenceCountedACLCache.serialize repeated the \
             same pattern: blocking writes inside a synchronized block. The fix \
             snapshots the map under the lock and writes outside." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 2;
      first_year = 2015;
      last_year = 2019;
    }
end

(* ================================================================== *)
(* Case 3: watches on closed connections (synthetic cluster)           *)
(* ================================================================== *)

module Watches = struct
  let source stage =
    let guard1 = stage >= 1 in
    let bulk = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// ZooKeeper: data watches
class ClientCnxn {
  field id: int;
  field closed: bool = false;
  method init(id: int) {
    this.id = id;
  }
  method isClosed(): bool {
    return this.closed;
  }
}

class WatchManager {
  field watches: map;
  field registered: int = 0;
  // common registration bookkeeping: every watch path ends here
  method record(cnxn: ClientCnxn, path: str) {
    mapPut(this.watches, path, cnxn.id);
    this.registered = this.registered + 1;
  }
  method registerWatch(cnxn: ClientCnxn, path: str) {
|};
       ]
      @ (if guard1 then
           [
             {|    if (cnxn == null || cnxn.isClosed()) {
      throw "ConnectionLossException";
    }|};
           ]
         else [ {|    if (cnxn == null) {
      throw "ConnectionLossException";
    }|} ])
      @ [
          {|    this.record(cnxn, path);
  }
  method hasWatch(path: str): bool {
    return mapContains(this.watches, path);
  }
  method watchCount(): int {
    return mapSize(this.watches);
  }
  method triggerWatch(path: str): int {
    // firing a data watch removes it (one-shot semantics)
    if (!mapContains(this.watches, path)) {
      return 0;
    }
    var owner: int = mapGet(this.watches, path);
    mapRemove(this.watches, path);
    return owner;
  }
  method clearConnection(cnxn: ClientCnxn) {
    cnxn.closed = true;
    var paths: list = mapKeys(this.watches);
    var i: int = 0;
    while (i < listSize(paths)) {
      var p: str = listGet(paths, i);
      var owner: int = mapGet(this.watches, p);
      if (owner == cnxn.id) {
        mapRemove(this.watches, p);
      }
      i = i + 1;
    }
  }
|};
        ]
      @ (if bulk then
           [
             (if guard2 then
                {|  method addWatchesBulk(cnxn: ClientCnxn, paths: list) {
    if (cnxn == null || cnxn.isClosed()) {
      throw "ConnectionLossException";
    }
    var i: int = 0;
    while (i < listSize(paths)) {
      this.record(cnxn, listGet(paths, i));
      i = i + 1;
    }
  }|}
              else
                {|  method addWatchesBulk(cnxn: ClientCnxn, paths: list) {
    if (cnxn == null) {
      throw "ConnectionLossException";
    }
    var i: int = 0;
    while (i < listSize(paths)) {
      this.record(cnxn, listGet(paths, i));
      i = i + 1;
    }
  }|});
           ]
         else [])
      @ [
          {|}

method test_watch_register_live() {
  var wm: WatchManager = new WatchManager();
  var c: ClientCnxn = new ClientCnxn(1);
  wm.registerWatch(c, "/app/config");
  assert (wm.hasWatch("/app/config"), "watch registered");
}

method test_watch_cleared_on_close() {
  var wm: WatchManager = new WatchManager();
  var c: ClientCnxn = new ClientCnxn(1);
  wm.registerWatch(c, "/app/config");
  wm.clearConnection(c);
  assert (!wm.hasWatch("/app/config"), "watch cleared");
}

method test_watch_trigger_is_one_shot() {
  var wm: WatchManager = new WatchManager();
  var c: ClientCnxn = new ClientCnxn(5);
  wm.registerWatch(c, "/app/leader");
  assert (wm.triggerWatch("/app/leader") == 5, "owner notified");
  assert (wm.triggerWatch("/app/leader") == 0, "second trigger is a no-op");
  assert (wm.watchCount() == 0, "watch consumed");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the ZK-2471 fix
method test_zk2471_register_on_closed_rejected() {
  var wm: WatchManager = new WatchManager();
  var c: ClientCnxn = new ClientCnxn(2);
  c.closed = true;
  var rejected: bool = false;
  try { wm.registerWatch(c, "/app/leak"); } catch (e) { rejected = true; }
  assert (rejected, "closed connection rejected");
  assert (!wm.hasWatch("/app/leak"), "no leaked watch");
}
|};
           ]
         else [])
      @ (if bulk then
           [
             {|method test_watch_bulk_live() {
  var wm: WatchManager = new WatchManager();
  var c: ClientCnxn = new ClientCnxn(3);
  var ps: list = listNew();
  listAdd(ps, "/a");
  listAdd(ps, "/b");
  wm.addWatchesBulk(c, ps);
  assert (wm.registered == 2, "bulk watches registered");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the ZK-3652 fix
method test_zk3652_bulk_on_closed_rejected() {
  var wm: WatchManager = new WatchManager();
  var c: ClientCnxn = new ClientCnxn(4);
  c.closed = true;
  var ps: list = listNew();
  listAdd(ps, "/leak");
  var rejected: bool = false;
  try { wm.addWatchesBulk(c, ps); } catch (e) { rejected = true; }
  assert (rejected, "bulk on closed connection rejected");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "zk-watch-leak";
      system = "zookeeper";
      feature = "data watches";
      kind = Case.Guard;
      bug_ids = [ "ZK-2471"; "ZK-3652" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "ZK-2471",
            "Watches registered on closed connections are never cleaned up",
            "No watch may be registered for a connection that is already closed. \
             Registration raced with connection teardown, leaving watches owned by \
             dead connections; notification fan-out kept touching them and leaked \
             memory. The fix rejects registration on closed connections." );
          ( 3,
            "ZK-3652",
            "Bulk watch registration leaks watches for closed connections",
            "No watch may be registered for a connection that is already closed. \
             The bulk registration path added for multi-watch clients skipped the \
             closed-connection check, recreating the leak. The fix adds the same \
             guard to the bulk path." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2016;
      last_year = 2020;
    }
end

(* ================================================================== *)
(* Case 4: quota enforcement (synthetic cluster)                       *)
(* ================================================================== *)

module Quota = struct
  let source stage =
    let guard1 = stage >= 1 in
    let create_path = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// ZooKeeper: znode quota enforcement
class QuotaTree {
  field bytes: map;
  field remaining: int = 100;
  // common accounting: every write path ends here
  method charge(path: str, sz: int) {
    mapPut(this.bytes, path, sz);
    this.remaining = this.remaining - sz;
  }
  method setData(path: str, sz: int) {
|};
       ]
      @ (if guard1 then
           [
             {|    if (sz > this.remaining) {
      throw "QuotaExceededException";
    }|};
           ]
         else [])
      @ [
          {|    this.charge(path, sz);
  }
|};
        ]
      @ (if create_path then
           [
             (if guard2 then
                {|  method createWithData(path: str, sz: int) {
    if (sz > this.remaining) {
      throw "QuotaExceededException";
    }
    this.charge(path, sz);
  }|}
              else
                {|  method createWithData(path: str, sz: int) {
    this.charge(path, sz);
  }|});
           ]
         else [])
      @ [
          {|  method usage(path: str): int {
    var u: int = mapGet(this.bytes, path);
    return u;
  }
  method totalUsage(): int {
    var paths: list = mapKeys(this.bytes);
    var total: int = 0;
    var i: int = 0;
    while (i < listSize(paths)) {
      var u: int = mapGet(this.bytes, listGet(paths, i));
      total = total + u;
      i = i + 1;
    }
    return total;
  }
  method deleteData(path: str) {
    if (!mapContains(this.bytes, path)) {
      return;
    }
    var u: int = mapGet(this.bytes, path);
    this.remaining = this.remaining + u;
    mapRemove(this.bytes, path);
  }
}

method test_quota_set_small() {
  var qt: QuotaTree = new QuotaTree();
  qt.setData("/app/a", 10);
  assert (qt.usage("/app/a") == 10, "data stored");
  assert (qt.remaining == 90, "quota accounted");
}

method test_quota_delete_returns_budget() {
  var qt: QuotaTree = new QuotaTree();
  qt.setData("/app/a", 10);
  qt.setData("/app/b", 20);
  assert (qt.totalUsage() == 30, "usage summed");
  qt.deleteData("/app/a");
  assert (qt.remaining == 80, "budget returned on delete");
  qt.deleteData("/app/missing");
  assert (qt.remaining == 80, "deleting a missing path is a no-op");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the ZK-2593 fix
method test_zk2593_set_over_quota_rejected() {
  var qt: QuotaTree = new QuotaTree();
  var rejected: bool = false;
  try { qt.setData("/app/huge", 1000); } catch (e) { rejected = true; }
  assert (rejected, "oversized write rejected");
  assert (qt.remaining == 100, "quota unchanged");
}
|};
           ]
         else [])
      @ (if create_path then
           [
             {|method test_quota_create_small() {
  var qt: QuotaTree = new QuotaTree();
  qt.createWithData("/app/b", 5);
  assert (qt.usage("/app/b") == 5, "created with data");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the ZK-4011 fix
method test_zk4011_create_over_quota_rejected() {
  var qt: QuotaTree = new QuotaTree();
  var rejected: bool = false;
  try { qt.createWithData("/app/huge", 1000); } catch (e) { rejected = true; }
  assert (rejected, "oversized create rejected");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "zk-quota";
      system = "zookeeper";
      feature = "znode quotas";
      kind = Case.Guard;
      bug_ids = [ "ZK-2593"; "ZK-4011" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "ZK-2593",
            "Writes can exceed the configured znode quota",
            "No write may be applied when its size exceeds the remaining quota. \
             setData skipped the quota check, so tenants blew past their limits and \
             exhausted ensemble disk. The fix rejects writes larger than the \
             remaining quota." );
          ( 3,
            "ZK-4011",
            "create2 with data bypasses quota enforcement",
            "No write may be applied when its size exceeds the remaining quota. \
             The create-with-data path added for create2 requests skipped the quota \
             check that setData performs. The fix adds the same check." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2017;
      last_year = 2021;
    }
end

(* ================================================================== *)
(* Case 5: election epoch checks (synthetic cluster)                   *)
(* ================================================================== *)

module Election = struct
  let source stage =
    let guard1 = stage >= 1 in
    let ack_path = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// ZooKeeper: leader election epoch handling
class Notification {
  field sender: int;
  field epoch: int;
  field leader: int;
  method init(sender: int, epoch: int, leader: int) {
    this.sender = sender;
    this.epoch = epoch;
    this.leader = leader;
  }
}

class FastLeaderElection {
  field logicalclock: int = 5;
  field proposedLeader: int = 0;
  field votes: map;
  // common tally: every vote-counting path ends here
  method countVote(n: Notification) {
    mapPut(this.votes, n.sender, n.leader);
  }
  method processNotification(n: Notification) {
|};
       ]
      @ (if guard1 then
           [
             {|    if (n.epoch < this.logicalclock) {
      // stale round: ignore
      return;
    }|};
           ]
         else [])
      @ [
          {|    if (n.epoch > this.logicalclock) {
      this.logicalclock = n.epoch;
    }
    this.countVote(n);
    this.proposedLeader = n.leader;
  }
|};
        ]
      @ (if ack_path then
           [
             (if guard2 then
                {|  method processAck(n: Notification) {
    if (n.epoch < this.logicalclock) {
      return;
    }
    this.countVote(n);
  }|}
              else
                {|  method processAck(n: Notification) {
    this.countVote(n);
  }|});
           ]
         else [])
      @ [
          {|  method voteCount(): int {
    return mapSize(this.votes);
  }
  method hasQuorum(ensembleSize: int): bool {
    return mapSize(this.votes) * 2 > ensembleSize;
  }
  method electedLeader(ensembleSize: int): int {
    if (!this.hasQuorum(ensembleSize)) {
      throw "NoQuorumException";
    }
    return this.proposedLeader;
  }
}

method test_elec_current_round_counted() {
  var fle: FastLeaderElection = new FastLeaderElection();
  var n: Notification = new Notification(1, 5, 42);
  fle.processNotification(n);
  assert (fle.voteCount() == 1, "vote recorded");
  assert (fle.proposedLeader == 42, "leader proposed");
}

method test_elec_newer_round_bumps_clock() {
  var fle: FastLeaderElection = new FastLeaderElection();
  var n: Notification = new Notification(2, 9, 7);
  fle.processNotification(n);
  assert (fle.logicalclock == 9, "clock bumped");
}

method test_elec_quorum_and_leader() {
  var fle: FastLeaderElection = new FastLeaderElection();
  fle.processNotification(new Notification(1, 5, 42));
  fle.processNotification(new Notification(2, 5, 42));
  assert (fle.hasQuorum(3), "2 of 3 is a quorum");
  assert (fle.electedLeader(3) == 42, "leader elected");
  var rejected: bool = false;
  try { var l: int = fle.electedLeader(5); } catch (e) { rejected = true; }
  assert (rejected, "no quorum of 5 yet");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the ZK-2722 fix
method test_zk2722_stale_round_ignored() {
  var fle: FastLeaderElection = new FastLeaderElection();
  var stale: Notification = new Notification(3, 2, 13);
  fle.processNotification(stale);
  assert (fle.voteCount() == 0, "stale vote ignored");
  assert (fle.proposedLeader == 0, "no stale leader");
}
|};
           ]
         else [])
      @ (if ack_path then
           [
             {|method test_elec_ack_current_round() {
  var fle: FastLeaderElection = new FastLeaderElection();
  var n: Notification = new Notification(4, 6, 11);
  fle.processAck(n);
  assert (fle.voteCount() == 1, "ack counted");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the ZK-3890 fix
method test_zk3890_stale_ack_ignored() {
  var fle: FastLeaderElection = new FastLeaderElection();
  var stale: Notification = new Notification(5, 1, 13);
  fle.processAck(stale);
  assert (fle.voteCount() == 0, "stale ack ignored");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "zk-election-epoch";
      system = "zookeeper";
      feature = "leader election epochs";
      kind = Case.Guard;
      bug_ids = [ "ZK-2722"; "ZK-3890" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "ZK-2722",
            "Stale election notifications from previous rounds corrupt the vote set",
            "No notification from an earlier epoch than the current logical clock \
             may be counted. Delayed UDP notifications from a previous election \
             round were tallied into the current round, electing a node that had \
             already lost. The fix drops notifications with a stale epoch." );
          ( 3,
            "ZK-3890",
            "Stale acks are counted during leader election",
            "No notification from an earlier epoch than the current logical clock \
             may be counted. The ack-processing path added for observer handoff \
             skipped the epoch check performed by processNotification. The fix adds \
             the same check." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2017;
      last_year = 2021;
    }
end

let cases : Case.t list =
  [ Ephemeral.case; Serialize.case; Watches.case; Quota.case; Election.case ]
