(** Translation of MiniJava boolean expressions into checker formulas, and
    the *normalization* that aligns rule variables with the names the
    concolic engine reports (paper §3.2, last paragraph).

    Normalization convention: object-valued roots are canonicalized to
    their **class name** — a guard over a local [session : Session] and a
    trace through a differently-named local [s : Session] both speak about
    the path ["Session"], so formulas from both sides meet in the same
    vocabulary.  Scalar locals are copy-propagated one level so that a
    guard on a local that merely caches a field compares against the
    field's path.  Observer methods (single [return <boolean expr>;])
    are inlined so that [s.isClosing()] and a direct read of [s.closing]
    produce the same atom. *)

open Minilang

type env = {
  program : Ast.program;
  cls : Ast.class_decl option;  (** enclosing class of the guard, for [this] *)
  var_types : (string * Ast.typ) list;  (** declared types of locals/params *)
  var_inits : (string * Ast.expr) list;  (** one-level copy propagation *)
}

(** Collect declared types and initialisers of all locals and params of a
    method (flow-insensitive; first declaration wins). *)
let env_of_method (program : Ast.program) (cls : Ast.class_decl option)
    (m : Ast.method_decl) : env =
  let types = ref m.Ast.m_params in
  let inits = ref [] in
  Ast.iter_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Decl (x, ty, init) ->
          if not (List.mem_assoc x !types) then types := (x, ty) :: !types;
          (match init with
          | Some e when not (List.mem_assoc x !inits) -> inits := (x, e) :: !inits
          | Some _ | None -> ())
      | Ast.Assign _ | Ast.If _ | Ast.While _ | Ast.Return _ | Ast.Throw _
      | Ast.Try _ | Ast.Sync _ | Ast.Expr _ | Ast.Assert _ | Ast.Break
      | Ast.Continue ->
          ())
    m.Ast.m_body;
  { program; cls; var_types = !types; var_inits = !inits }

let class_name_of_typ (env : env) (ty : Ast.typ) : string option =
  match ty with
  | Ast.T_ref c when c <> "" && Ast.find_class env.program c <> None -> Some c
  | _ -> None

(* Canonical path of an expression, if it denotes state. *)
let rec path_of (env : env) (e : Ast.expr) : string option =
  match e.Ast.e with
  | Ast.This -> (
      match env.cls with Some c -> Some c.Ast.c_name | None -> Some "this")
  | Ast.Var x -> (
      match List.assoc_opt x env.var_types with
      | Some ty -> (
          match class_name_of_typ env ty with
          | Some cname -> Some cname (* canonicalize object roots by class *)
          | None -> (
              (* scalar local: copy-propagate its initialiser if it is a path *)
              match List.assoc_opt x env.var_inits with
              | Some init -> ( match path_of env init with Some p -> Some p | None -> Some x)
              | None -> Some x))
      | None -> Some x)
  | Ast.Field (o, f) -> (
      (* class-canonical naming also for intermediate objects: [x.f] with
         [x : C] is ["C.f"], matching the concolic engine's runtime-class
         naming for receivers *)
      match receiver_class env o with
      | Some c -> Some (c.Ast.c_name ^ "." ^ f)
      | None -> (
          match path_of env o with Some p -> Some (p ^ "." ^ f) | None -> None))
  | Ast.Method_call (o, m, []) -> (
      (* observer inlining: resolve o's class, look at m's body *)
      match receiver_class env o with
      | Some cls -> (
          match Ast.find_method_in_class cls m with
          | Some md -> (
              match md.Ast.m_body with
              | [ { s = Ast.Return (Some ret); _ } ] ->
                  (* substitute [this] by the receiver's path *)
                  path_of { env with cls = Some cls } ret
              | _ -> Option.map (fun p -> p ^ "." ^ m ^ "()") (path_of env o))
          | None -> Option.map (fun p -> p ^ "." ^ m ^ "()") (path_of env o))
      | None -> Option.map (fun p -> p ^ "." ^ m ^ "()") (path_of env o))
  | Ast.Method_call _ | Ast.Call _ | Ast.New _ | Ast.Int_lit _ | Ast.Bool_lit _
  | Ast.Str_lit _ | Ast.Null_lit | Ast.Binop _ | Ast.Unop _ ->
      None

and receiver_class (env : env) (o : Ast.expr) : Ast.class_decl option =
  match o.Ast.e with
  | Ast.This -> env.cls
  | Ast.Var x -> (
      match List.assoc_opt x env.var_types with
      | Some (Ast.T_ref c) -> Ast.find_class env.program c
      | Some _ -> None
      | None -> (
          (* maybe the variable is initialised from a typed expression *)
          match List.assoc_opt x env.var_inits with
          | Some init -> receiver_class env init
          | None -> None))
  | Ast.Field (o', f) -> (
      match receiver_class env o' with
      | Some c -> (
          match
            List.find_opt (fun (fd : Ast.field_decl) -> fd.Ast.f_name = f) c.Ast.c_fields
          with
          | Some fd -> (
              match fd.Ast.f_typ with
              | Ast.T_ref cname -> Ast.find_class env.program cname
              | _ -> None)
          | None -> None)
      | None -> None)
  | Ast.New (c, _) -> Ast.find_class env.program c
  | Ast.Method_call _ | Ast.Call _ | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.Str_lit _
  | Ast.Null_lit | Ast.Binop _ | Ast.Unop _ ->
      None

(* Translate an expression in *term* position. *)
let term_of (env : env) (e : Ast.expr) : Smt.Formula.term option =
  match e.Ast.e with
  | Ast.Int_lit n -> Some (Smt.Formula.tint n)
  | Ast.Bool_lit b -> Some (Smt.Formula.tbool b)
  | Ast.Str_lit s -> Some (Smt.Formula.tstr s)
  | Ast.Null_lit -> Some Smt.Formula.tnull
  | Ast.Var _ | Ast.This | Ast.Field _ | Ast.Method_call _ ->
      Option.map Smt.Formula.tvar (path_of env e)
  | Ast.Call _ | Ast.New _ | Ast.Binop _ | Ast.Unop _ -> None

let rel_of_binop : Ast.binop -> Smt.Formula.rel option = function
  | Ast.Eq -> Some Smt.Formula.Req
  | Ast.Neq -> Some Smt.Formula.Rneq
  | Ast.Lt -> Some Smt.Formula.Rlt
  | Ast.Le -> Some Smt.Formula.Rle
  | Ast.Gt -> Some Smt.Formula.Rgt
  | Ast.Ge -> Some Smt.Formula.Rge
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or -> None

(** Translate a boolean MiniJava expression to a checker formula.
    Sub-expressions outside the supported predicate fragment become opaque
    boolean variables named by their canonical path (when they have one),
    so translation is total on guard conditions; [None] is returned only
    when no reasonable reading exists. *)
let rec formula_of (env : env) (e : Ast.expr) : Smt.Formula.t option =
  match e.Ast.e with
  | Ast.Bool_lit true -> Some Smt.Formula.tru
  | Ast.Bool_lit false -> Some Smt.Formula.fls
  | Ast.Unop (Ast.Not, a) -> Option.map Smt.Formula.negate (formula_of env a)
  | Ast.Binop (Ast.And, a, b) -> (
      match (formula_of env a, formula_of env b) with
      | Some fa, Some fb -> Some (Smt.Formula.conj [ fa; fb ])
      | _ -> None)
  | Ast.Binop (Ast.Or, a, b) -> (
      match (formula_of env a, formula_of env b) with
      | Some fa, Some fb -> Some (Smt.Formula.disj [ fa; fb ])
      | _ -> None)
  | Ast.Binop (op, a, b) -> (
      match rel_of_binop op with
      | Some rel -> (
          match (term_of env a, term_of env b) with
          | Some ta, Some tb -> Some (Smt.Formula.atom rel ta tb)
          | _ -> None)
      | None -> None)
  | Ast.Var _ | Ast.This | Ast.Field _ -> (
      match path_of env e with
      | Some p -> Some (Smt.Formula.bvar p)
      | None -> None)
  | Ast.Method_call (o, m, []) -> (
      (* observer inlining in boolean position *)
      match receiver_class env o with
      | Some cls -> (
          match Ast.find_method_in_class cls m with
          | Some md -> (
              match md.Ast.m_body with
              | [ { s = Ast.Return (Some ret); _ } ] -> (
                  let inner_env =
                    { env with cls = Some cls; var_types = md.Ast.m_params; var_inits = [] }
                  in
                  (* [this] inside the observer is the receiver; the
                     receiver's canonical path is the class name, which is
                     exactly what [path_of] yields for [this] there. *)
                  match formula_of inner_env ret with
                  | Some f -> Some f
                  | None -> Option.map Smt.Formula.bvar (path_of env e))
              | _ -> Option.map Smt.Formula.bvar (path_of env e))
          | None -> Option.map Smt.Formula.bvar (path_of env e))
      | None -> Option.map Smt.Formula.bvar (path_of env e))
  | Ast.Method_call _ | Ast.Call _ -> (
      (* opaque boolean call, e.g. mapContains(...): name it canonically *)
      match opaque_name env e with Some p -> Some (Smt.Formula.bvar p) | None -> None)
  | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Null_lit | Ast.New _
  | Ast.Unop (Ast.Neg, _) ->
      None

and opaque_name (env : env) (e : Ast.expr) : string option =
  match e.Ast.e with
  | Ast.Call (f, args) ->
      let parts = List.map (opaque_arg env) args in
      if List.for_all (fun p -> p <> None) parts then
        Some (Fmt.str "%s(%s)" f (String.concat ", " (List.filter_map Fun.id parts)))
      else None
  | Ast.Method_call (o, m, args) -> (
      match path_of env o with
      | Some p ->
          let parts = List.map (opaque_arg env) args in
          if List.for_all (fun x -> x <> None) parts then
            Some (Fmt.str "%s.%s(%s)" p m (String.concat ", " (List.filter_map Fun.id parts)))
          else None
      | None -> None)
  | Ast.Var _ | Ast.This | Ast.Field _ | Ast.Int_lit _ | Ast.Bool_lit _
  | Ast.Str_lit _ | Ast.Null_lit | Ast.New _ | Ast.Binop _ | Ast.Unop _ ->
      None

and opaque_arg (env : env) (e : Ast.expr) : string option =
  match e.Ast.e with
  | Ast.Int_lit n -> Some (string_of_int n)
  | Ast.Bool_lit b -> Some (string_of_bool b)
  | Ast.Str_lit s -> Some (Printf.sprintf "%S" s)
  | Ast.Null_lit -> Some "null"
  | Ast.Var _ | Ast.This | Ast.Field _ | Ast.Method_call _ -> path_of env e
  | Ast.Call _ -> opaque_name env e
  | Ast.New _ | Ast.Binop _ | Ast.Unop _ -> None

(** Translate a *guard* into the safety condition of a contract:
    for an early-exit guard [if (G) { throw/return; }] the safe condition
    is [!G]; for a wrapper guard [if (G) { protected }] it is [G]. *)
let guard_condition (env : env) ~(early_exit : bool) (g : Ast.expr) :
    Smt.Formula.t option =
  match formula_of env g with
  | None -> None
  | Some f ->
      let f = if early_exit then Smt.Formula.negate f else f in
      Some (Smt.Formula.simplify (Smt.Formula.nnf f))
