(** Line-based diff between two texts.

    Implements the classic longest-common-subsequence dynamic program (the
    corpus sources are a few hundred lines each, so the O(n*m) table is
    more than fast enough and much simpler than Myers' bit-vector
    algorithm).  The edit script is the ground truth from which ticket
    patches in [lib/corpus] are rendered. *)

type edit =
  | Keep of string  (** line present in both versions *)
  | Del of string  (** line only in the old version *)
  | Add of string  (** line only in the new version *)

let split_lines (s : string) : string list =
  (* Exactly [String.split_on_char '\n'], so that [String.concat "\n"] is
     its two-sided inverse and [apply (diff a b) a = b] holds verbatim.
     A text ending in a newline therefore has a final empty line — the
     diff of "x" vs "x\n" is [Keep "x"; Add ""], which is also what a
     reviewer sees in a real patch ("no newline at end of file"). *)
  if s = "" then [] else String.split_on_char '\n' s

(** LCS-based edit script between [old_lines] and [new_lines]. *)
let diff_lines (old_lines : string list) (new_lines : string list) : edit list =
  let a = Array.of_list old_lines and b = Array.of_list new_lines in
  let n = Array.length a and m = Array.length b in
  (* lcs.(i).(j) = length of the LCS of a[i..] and b[j..] *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i < n && j < m && String.equal a.(i) b.(j) then
      walk (i + 1) (j + 1) (Keep a.(i) :: acc)
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then
      walk i (j + 1) (Add b.(j) :: acc)
    else if i < n then walk (i + 1) j (Del a.(i) :: acc)
    else List.rev acc
  in
  walk 0 0 []

let diff (old_text : string) (new_text : string) : edit list =
  diff_lines (split_lines old_text) (split_lines new_text)

let added_lines (edits : edit list) : string list =
  List.filter_map (function Add l -> Some l | Keep _ | Del _ -> None) edits

let deleted_lines (edits : edit list) : string list =
  List.filter_map (function Del l -> Some l | Keep _ | Add _ -> None) edits

let is_identity (edits : edit list) : bool =
  List.for_all (function Keep _ -> true | Add _ | Del _ -> false) edits

(** Apply an edit script to the old text it was computed from.
    Raises [Invalid_argument] if the script does not match. *)
let apply (old_text : string) (edits : edit list) : string =
  let rec go old_lines edits acc =
    match (edits, old_lines) with
    | [], [] -> List.rev acc
    | [], _ :: _ -> invalid_arg "Line_diff.apply: leftover old lines"
    | Keep l :: rest, o :: os ->
        if not (String.equal l o) then invalid_arg "Line_diff.apply: Keep mismatch";
        go os rest (l :: acc)
    | Keep _ :: _, [] -> invalid_arg "Line_diff.apply: Keep past end"
    | Del l :: rest, o :: os ->
        if not (String.equal l o) then invalid_arg "Line_diff.apply: Del mismatch";
        go os rest acc
    | Del _ :: _, [] -> invalid_arg "Line_diff.apply: Del past end"
    | Add l :: rest, os -> go os rest (l :: acc)
  in
  String.concat "\n" (go (split_lines old_text) edits [])

(* ------------------------------------------------------------------ *)
(* Unified rendering                                                   *)
(* ------------------------------------------------------------------ *)

type hunk = {
  old_start : int;  (** 1-based line number in the old text *)
  old_len : int;
  new_start : int;
  new_len : int;
  lines : edit list;
}

(** Group an edit script into unified-diff hunks with [context] lines of
    surrounding [Keep] context (git's default is 3). *)
let hunks ?(context = 3) (edits : edit list) : hunk list =
  (* annotate each edit with old/new line numbers *)
  let annotated =
    let rec go o n = function
      | [] -> []
      | (Keep _ as e) :: rest -> (e, o, n) :: go (o + 1) (n + 1) rest
      | (Del _ as e) :: rest -> (e, o, n) :: go (o + 1) n rest
      | (Add _ as e) :: rest -> (e, o, n) :: go o (n + 1) rest
    in
    go 1 1 edits
  in
  let arr = Array.of_list annotated in
  let len = Array.length arr in
  let is_change i = match arr.(i) with (Keep _, _, _) -> false | _ -> true in
  (* indices that belong in some hunk *)
  let in_hunk = Array.make len false in
  for i = 0 to len - 1 do
    if is_change i then
      for j = max 0 (i - context) to min (len - 1) (i + context) do
        in_hunk.(j) <- true
      done
  done;
  (* collect contiguous runs *)
  let result = ref [] in
  let i = ref 0 in
  while !i < len do
    if in_hunk.(!i) then (
      let start = !i in
      while !i < len && in_hunk.(!i) do
        incr i
      done;
      let slice = Array.sub arr start (!i - start) |> Array.to_list in
      let _, o0, n0 = List.hd slice in
      let old_len =
        List.length (List.filter (fun (e, _, _) -> match e with Add _ -> false | Keep _ | Del _ -> true) slice)
      in
      let new_len =
        List.length (List.filter (fun (e, _, _) -> match e with Del _ -> false | Keep _ | Add _ -> true) slice)
      in
      result :=
        {
          old_start = o0;
          old_len;
          new_start = n0;
          new_len;
          lines = List.map (fun (e, _, _) -> e) slice;
        }
        :: !result)
    else incr i
  done;
  List.rev !result

(** Render an edit script in unified-diff format (the format embedded in
    ticket bundles, mirroring the "code patch (the diff)" input of the
    paper's Listing 1 prompt). *)
let to_unified ?(context = 3) ?(old_label = "a") ?(new_label = "b") (edits : edit list)
    : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Fmt.str "--- %s\n+++ %s\n" old_label new_label);
  List.iter
    (fun h ->
      (* Printf, not Fmt: '@' is a formatting directive to Fmt *)
      Buffer.add_string buf
        (Printf.sprintf "@@ -%d,%d +%d,%d @@\n" h.old_start h.old_len h.new_start
           h.new_len);
      List.iter
        (fun e ->
          let prefix, line =
            match e with Keep l -> (" ", l) | Del l -> ("-", l) | Add l -> ("+", l)
          in
          Buffer.add_string buf prefix;
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        h.lines)
    (hunks ~context edits);
  Buffer.contents buf

(** Summary statistics for an edit script. *)
let stats (edits : edit list) : int * int =
  List.fold_left
    (fun (adds, dels) e ->
      match e with Add _ -> (adds + 1, dels) | Del _ -> (adds, dels + 1) | Keep _ -> (adds, dels))
    (0, 0) edits
