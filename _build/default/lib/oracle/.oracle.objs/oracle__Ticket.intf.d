lib/oracle/ticket.mli: Minilang
