(** Automatic fix proposal — the last mile of §4.

    The paper doesn't just report the two unknown bugs, it *proposes the
    fixes* ("we propose to add timestamp checks to other paths, and the
    solution has been accepted by HBase developers").  This module closes
    that loop mechanically for state-guard violations:

    1. take a violating trace (rule + method containing the target);
    2. de-normalize the rule condition back into the method's own
       vocabulary (class-canonical roots become the local/parameter of
       that class; scalar paths stay as written);
    3. synthesize the guard [if (!(condition)) { throw ...; }] and insert
       it immediately before the target statement, at the AST level;
    4. pretty-print the patched program, and *verify* the proposal: the
       rule must now hold (with the fixed path verifying, not just not
       violating) and the program's own test suite must stay green.

    The result carries the unified diff a maintainer would review. *)

open Minilang

type proposal = {
  fp_rule : string;  (** rule id *)
  fp_method : string;  (** qualified method that was patched *)
  fp_guard : string;  (** the inserted guard, printed *)
  fp_patched_source : string;
  fp_diff : string;  (** unified diff original -> patched *)
}

type verification = {
  fv_rule_clean : bool;  (** no violations remain, sanity still holds *)
  fv_tests_green : bool;
  fv_detail : string;
}

(* ------------------------------------------------------------------ *)
(* De-normalization: canonical roots -> method-local names             *)
(* ------------------------------------------------------------------ *)

(* find the local/param of [m] whose declared class is [cls_name] *)
let local_of_class (env : Semantics.Translate.env) (cls_name : string) :
    string option =
  List.find_map
    (fun (x, ty) ->
      match ty with
      | Ast.T_ref c when c = cls_name -> Some x
      | _ -> None)
    env.Semantics.Translate.var_types

(* render a canonical path in the method's vocabulary *)
let denormalize_path (env : Semantics.Translate.env) (cls : Ast.class_decl option)
    (path : string) : string option =
  match String.index_opt path '.' with
  | None -> (
      (* a root: a scalar parameter/local (same name), or an object root *)
      if List.mem_assoc path env.Semantics.Translate.var_types then Some path
      else
        match local_of_class env path with
        | Some x -> Some x
        | None -> (
            (* the enclosing class itself: [this] *)
            match cls with
            | Some c when c.Ast.c_name = path -> Some "this"
            | _ -> None))
  | Some i -> (
      let root = String.sub path 0 i in
      let rest = String.sub path (i + 1) (String.length path - i - 1) in
      match local_of_class env root with
      | Some x -> Some (x ^ "." ^ rest)
      | None -> (
          match cls with
          | Some c when c.Ast.c_name = root -> Some ("this." ^ rest)
          | _ ->
              (* fields of another class reachable via a typed field of the
                 enclosing class are out of scope for synthesis *)
              None))

let term_text env cls (t : Smt.Formula.term) : string option =
  match Smt.Formula.term_view t with
  | Smt.Formula.T_var p -> denormalize_path env cls p
  | Smt.Formula.T_int n -> Some (string_of_int n)
  | Smt.Formula.T_bool b -> Some (string_of_bool b)
  | Smt.Formula.T_str s -> Some (Printf.sprintf "%S" s)
  | Smt.Formula.T_null -> Some "null"

let rec condition_text env cls (f : Smt.Formula.t) : string option =
  match Smt.Formula.view f with
  | Smt.Formula.True -> Some "true"
  | Smt.Formula.False -> Some "false"
  | Smt.Formula.Atom a -> (
      match (term_text env cls a.Smt.Formula.lhs, term_text env cls a.Smt.Formula.rhs) with
      | Some l, Some r ->
          Some (Fmt.str "%s %s %s" l (Smt.Formula.rel_to_string a.Smt.Formula.rel) r)
      | _ -> None)
  | Smt.Formula.Not g ->
      Option.map (fun s -> "!(" ^ s ^ ")") (condition_text env cls g)
  | Smt.Formula.And fs ->
      let parts = List.map (condition_text env cls) fs in
      if List.for_all Option.is_some parts then
        Some ("(" ^ String.concat " && " (List.filter_map Fun.id parts) ^ ")")
      else None
  | Smt.Formula.Or fs ->
      let parts = List.map (condition_text env cls) fs in
      if List.for_all Option.is_some parts then
        Some ("(" ^ String.concat " || " (List.filter_map Fun.id parts) ^ ")")
      else None

(* ------------------------------------------------------------------ *)
(* AST insertion                                                       *)
(* ------------------------------------------------------------------ *)

let rec insert_before (b : Ast.block) (target_sid : int) (guard : Ast.stmt) :
    Ast.block =
  List.concat_map
    (fun (st : Ast.stmt) ->
      if st.Ast.sid = target_sid then [ guard; st ]
      else
        [
          (match st.Ast.s with
          | Ast.If (c, b1, b2) ->
              { st with Ast.s = Ast.If (c, insert_before b1 target_sid guard, insert_before b2 target_sid guard) }
          | Ast.While (c, body) ->
              { st with Ast.s = Ast.While (c, insert_before body target_sid guard) }
          | Ast.Try (body, x, h) ->
              { st with Ast.s = Ast.Try (insert_before body target_sid guard, x, insert_before h target_sid guard) }
          | Ast.Sync (o, body) ->
              { st with Ast.s = Ast.Sync (o, insert_before body target_sid guard) }
          | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Throw _ | Ast.Expr _
          | Ast.Assert _ | Ast.Break | Ast.Continue ->
              st);
        ])
    b

let patch_method (p : Ast.program) (qname : string) (target_sid : int)
    (guard : Ast.stmt) : Ast.program =
  let patch (cls : string option) (m : Ast.method_decl) =
    if Ast.qualified_name cls m = qname then
      { m with Ast.m_body = insert_before m.Ast.m_body target_sid guard }
    else m
  in
  {
    Ast.p_classes =
      List.map
        (fun c ->
          { c with Ast.c_methods = List.map (patch (Some c.Ast.c_name)) c.Ast.c_methods })
        p.Ast.p_classes;
    p_funcs = List.map (patch None) p.Ast.p_funcs;
  }

(* ------------------------------------------------------------------ *)
(* Proposal                                                            *)
(* ------------------------------------------------------------------ *)

(** Synthesize a guard patch for one violating target of a state-guard
    rule.  [None] when the condition cannot be expressed in the method's
    vocabulary (e.g. no local of the required class is in scope). *)
let propose (p : Ast.program) (rule : Semantics.Rule.t) ~(method_ : string) :
    proposal option =
  match rule.Semantics.Rule.body with
  | Semantics.Rule.Lock_discipline _ -> None
  | Semantics.Rule.State_guard { target; condition } -> (
      (* the target statement inside the violating method *)
      let targets =
        Semantics.Rulebook.resolve_targets p target
        |> List.filter (fun (qname, _) -> qname = method_)
      in
      match targets with
      | [] -> None
      | (_, target_stmt) :: _ -> (
          match Ast.enclosing_method p target_stmt.Ast.sid with
          | None -> None
          | Some (cls_name, m) -> (
              let cls =
                match cls_name with Some c -> Ast.find_class p c | None -> None
              in
              let env = Semantics.Translate.env_of_method p cls m in
              match condition_text env cls condition with
              | None -> None
              | Some cond -> (
                  let guard_src =
                    Fmt.str
                      "method synthesized() { if (!%s) { throw \"SemanticViolationException\"; } }"
                      (if String.length cond > 0 && cond.[0] = '(' then cond
                       else "(" ^ cond ^ ")")
                  in
                  match Minilang.Parser.program ~first_sid:1_000_000 guard_src with
                  | exception _ -> None
                  | wrapper -> (
                      match wrapper.Ast.p_funcs with
                      | [ { m_body = [ guard ]; _ } ] ->
                          let patched = patch_method p method_ target_stmt.Ast.sid guard in
                          let original_src = Pretty.program_to_string p in
                          let patched_src = Pretty.program_to_string patched in
                          Some
                            {
                              fp_rule = rule.Semantics.Rule.rule_id;
                              fp_method = method_;
                              fp_guard = Pretty.stmt_to_string guard;
                              fp_patched_source = patched_src;
                              fp_diff =
                                Diffing.Line_diff.to_unified ~old_label:"a/latest"
                                  ~new_label:"b/proposed"
                                  (Diffing.Line_diff.diff original_src patched_src);
                            }
                      | _ -> None)))))

(** Verify a proposal: re-enforce the rule on the patched program and run
    its whole test suite. *)
let verify (proposal : proposal) (rule : Semantics.Rule.t) : verification =
  match Minilang.Parser.program ~file:"proposed.mj" proposal.fp_patched_source with
  | exception Minilang.Parser.Error (m, _) ->
      { fv_rule_clean = false; fv_tests_green = false; fv_detail = "patched source does not parse: " ^ m }
  | patched ->
      let report = Checker.check_rule patched rule in
      let failures =
        List.filter_map
          (fun name ->
            match Interp.run_test patched name with
            | Interp.Passed -> None
            | Interp.Failed m | Interp.Errored m -> Some (name ^ ": " ^ m))
          (Interp.test_names patched)
      in
      {
        fv_rule_clean =
          report.Checker.rep_violations = [] && report.Checker.rep_sanity_ok;
        fv_tests_green = failures = [];
        fv_detail =
          Fmt.str "%s; tests: %s"
            (Checker.report_summary report)
            (if failures = [] then "green" else String.concat "; " failures);
      }

(** End-to-end for a §4 unknown-bug case: scan the latest release, propose
    a fix for every violating method, verify each. *)
type case_fixes = {
  cf_case : string;
  cf_proposals : (proposal * verification) list;
}

let fix_unknown_bug (case_id : string) : case_fixes =
  let c =
    match Corpus.Registry.find_case case_id with
    | Some c -> c
    | None -> invalid_arg (case_id ^ " missing")
  in
  let known_tickets =
    List.filter_map
      (fun (stage, _, _, _) ->
        if stage <= c.Corpus.Case.latest_stage then Corpus.Case.ticket_at c stage
        else None)
      c.Corpus.Case.ticket_meta
  in
  let book, _ = Pipeline.learn_all ~system:c.Corpus.Case.system known_tickets in
  let latest = Corpus.Case.program_at c c.Corpus.Case.latest_stage in
  let reports = Pipeline.enforce latest book in
  let proposals =
    List.concat_map
      (fun (r : Checker.rule_report) ->
        r.Checker.rep_violations
        |> List.map (fun (t : Checker.trace_verdict) -> t.Checker.tv_method)
        |> List.sort_uniq compare
        |> List.filter_map (fun method_ ->
               match propose latest r.Checker.rep_rule ~method_ with
               | Some prop -> Some (prop, verify prop r.Checker.rep_rule)
               | None -> None))
      reports
  in
  (* several rules of the book may teach the same semantic; a proposal is
     identified by what it changes, not which rule asked for it *)
  let rec dedup seen = function
    | [] -> []
    | ((p, _) as x) :: rest ->
        let key = (p.fp_method, p.fp_guard) in
        if List.mem key seen then dedup seen rest else x :: dedup (key :: seen) rest
  in
  { cf_case = case_id; cf_proposals = dedup [] proposals }

let print_case_fixes (cf : case_fixes) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  pf "proposed fixes for %s:" cf.cf_case;
  List.iter
    (fun ((p : proposal), (v : verification)) ->
      pf "  rule %s, method %s:" p.fp_rule p.fp_method;
      pf "    inserted guard: %s"
        (String.concat " " (String.split_on_char '\n' p.fp_guard));
      pf "    verification: rule %s, tests %s"
        (if v.fv_rule_clean then "clean" else "STILL VIOLATED")
        (if v.fv_tests_green then "green" else "BROKEN"))
    cf.cf_proposals;
  Buffer.contents buf
