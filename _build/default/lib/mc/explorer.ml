(** Bounded scenario model checker over MiniJava systems.

    The substrate behind the paper's §5 open question (iii): *"can we
    verify high-level system properties by composing multiple validated
    low-level semantics?"*  A scenario declares, in MiniJava:

    - an init function [init(): S] that builds the system state;
    - a set of zero-argument-beyond-state operations [op(st: S)] — the
      public API calls clients may issue, with arguments baked in;
    - an invariant [inv(st: S): bool] — the *high-level* property.

    The explorer enumerates every operation sequence up to a depth bound
    and checks the invariant after each step.  Operations that throw are
    legitimate rejections (that is how guards protect the system) and are
    recorded as such; a run is a violation only when the invariant
    evaluates to [false].

    Determinism of the interpreter makes replay-from-scratch sound: each
    sequence is executed in a fresh heap, so no snapshotting is needed. *)

type config = {
  depth : int;  (** maximum operations per sequence *)
  fuel_per_run : int;  (** interpreter fuel for one full sequence *)
  max_sequences : int;  (** exploration budget *)
}

let default_config = { depth = 4; fuel_per_run = 100_000; max_sequences = 200_000 }

type step = { op : string; rejected : bool (* the op threw (guard rejection) *) }

type violation = {
  v_trace : step list;  (** operations in execution order *)
  v_detail : string;
}

type stats = {
  sequences : int;  (** complete sequences explored *)
  transitions : int;  (** operation applications *)
  rejections : int;  (** operations rejected by guards *)
}

type outcome = Safe of stats | Unsafe of violation * stats | Engine_error of string

type scenario = {
  program : Minilang.Ast.program;
  init : string;  (** name of the init function *)
  ops : string list;  (** names of the operation functions *)
  invariant : string;  (** name of the invariant function *)
}

exception Found of violation

(* run one sequence from scratch; returns steps and whether inv failed *)
let run_sequence (config : config) (sc : scenario) (seq : string list)
    (stats_transitions : int ref) (stats_rejections : int ref) : violation option =
  let iconfig = { Minilang.Interp.default_config with Minilang.Interp.fuel = config.fuel_per_run } in
  let st = Minilang.Interp.create ~config:iconfig sc.program in
  let state_value = Minilang.Interp.call st sc.init [] in
  let check_inv (trace : step list) : violation option =
    match Minilang.Interp.call st sc.invariant [ state_value ] with
    | Minilang.Value.V_bool true -> None
    | Minilang.Value.V_bool false ->
        Some { v_trace = List.rev trace; v_detail = "invariant evaluated to false" }
    | v ->
        Some
          {
            v_trace = List.rev trace;
            v_detail =
              Fmt.str "invariant returned %s, expected bool" (Minilang.Value.type_name v);
          }
  in
  let rec go trace = function
    | [] -> None
    | op :: rest -> (
        incr stats_transitions;
        let rejected =
          match Minilang.Interp.call st op [ state_value ] with
          | _ -> false
          | exception Minilang.Interp.Mini_throw _ ->
              incr stats_rejections;
              true
        in
        let trace = { op; rejected } :: trace in
        match check_inv trace with
        | Some v -> Some v
        | None -> go trace rest)
  in
  match check_inv [] with Some v -> Some v | None -> go [] seq

(** Explore all operation sequences up to [config.depth]. *)
let explore ?(config = default_config) (sc : scenario) : outcome =
  let sequences = ref 0 in
  let transitions = ref 0 in
  let rejections = ref 0 in
  let stats () =
    { sequences = !sequences; transitions = !transitions; rejections = !rejections }
  in
  (* enumerate sequences in BFS-by-depth order so the shortest violating
     trace is found first *)
  let rec enumerate depth (prefixes : string list list) : unit =
    if depth > config.depth then ()
    else begin
      let next =
        List.concat_map
          (fun prefix -> List.map (fun op -> prefix @ [ op ]) sc.ops)
          prefixes
      in
      List.iter
        (fun seq ->
          if !sequences >= config.max_sequences then ()
          else begin
            incr sequences;
            match run_sequence config sc seq transitions rejections with
            | Some v -> raise (Found v)
            | None -> ()
          end)
        next;
      enumerate (depth + 1) next
    end
  in
  match enumerate 1 [ [] ] with
  | () -> Safe (stats ())
  | exception Found v -> Unsafe (v, stats ())
  | exception Minilang.Interp.Runtime_error (m, loc) ->
      Engine_error (Fmt.str "runtime error: %s at %a" m Minilang.Loc.pp loc)
  | exception Minilang.Interp.Out_of_fuel -> Engine_error "out of fuel"
  | exception Minilang.Interp.Assertion_failure (m, sid) ->
      Engine_error (Fmt.str "assertion failure in scenario code: %s (stmt %d)" m sid)

let step_to_string (s : step) =
  if s.rejected then s.op ^ " (rejected)" else s.op

let violation_to_string (v : violation) =
  Fmt.str "high-level property violated after [%s]: %s"
    (String.concat "; " (List.map step_to_string v.v_trace))
    v.v_detail

let outcome_to_string = function
  | Safe s ->
      Fmt.str "SAFE up to bound (%d sequences, %d transitions, %d guard rejections)"
        s.sequences s.transitions s.rejections
  | Unsafe (v, s) ->
      Fmt.str "UNSAFE (%d sequences explored): %s" s.sequences (violation_to_string v)
  | Engine_error m -> "engine error: " ^ m
