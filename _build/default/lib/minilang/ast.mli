(** Abstract syntax of MiniJava.

    Every statement carries a unique statement id ([sid]) assigned by the
    parser in pre-order; sids anchor diffs, semantic-rule targets, and the
    concolic engine's path-condition snapshots. *)

type typ =
  | T_int
  | T_bool
  | T_str
  | T_ref of string  (** reference to an instance of the named class *)
  | T_map
  | T_list
  | T_void
  | T_any  (** dynamically-typed slot *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Not | Neg

type expr = { e : expr_kind; eloc : Loc.t }

and expr_kind =
  | Int_lit of int
  | Bool_lit of bool
  | Str_lit of string
  | Null_lit
  | Var of string
  | This
  | Field of expr * string  (** [obj.field] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (** free function or builtin call *)
  | Method_call of expr * string * expr list  (** [obj.m(args)] *)
  | New of string * expr list  (** [new C(args)]; runs [init] if defined *)

type lvalue = Lv_var of string | Lv_field of expr * string

type stmt = { s : stmt_kind; sid : int; sloc : Loc.t }

and stmt_kind =
  | Decl of string * typ * expr option
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | Return of expr option
  | Throw of expr
  | Try of block * string * block  (** [try b catch (x) handler] *)
  | Sync of expr * block  (** [synchronized (obj) { ... }] *)
  | Expr of expr
  | Assert of expr * string
  | Break
  | Continue

and block = stmt list

type method_decl = {
  m_name : string;
  m_params : (string * typ) list;
  m_ret : typ;
  m_body : block;
  m_loc : Loc.t;
}

type field_decl = {
  f_name : string;
  f_typ : typ;
  f_init : expr option;
  f_loc : Loc.t;
}

type class_decl = {
  c_name : string;
  c_fields : field_decl list;
  c_methods : method_decl list;
  c_loc : Loc.t;
}

type program = {
  p_classes : class_decl list;
  p_funcs : method_decl list;  (** top-level functions, incl. [test_*] *)
}

(** {1 Constructors} *)

val mk_expr : ?loc:Loc.t -> expr_kind -> expr

val mk_stmt : sid:int -> ?loc:Loc.t -> stmt_kind -> stmt

val typ_to_string : typ -> string

val binop_to_string : binop -> string

val unop_to_string : unop -> string

(** {1 Traversals} *)

(** Apply to every statement (nested blocks included), in source order. *)
val iter_stmts : (stmt -> unit) -> block -> unit

val iter_stmt : (stmt -> unit) -> stmt -> unit

(** All statements of a method body, nested included, in source order. *)
val stmts_of_method : method_decl -> stmt list

(** All methods of a program with their enclosing class (if any). *)
val methods_of_program : program -> (string option * method_decl) list

(** Fully-qualified method name: ["Class.meth"] or just ["fn"]. *)
val qualified_name : string option -> method_decl -> string

val iter_exprs : (expr -> unit) -> expr -> unit

(** Expressions in a statement head (not nested blocks). *)
val exprs_of_stmt : stmt -> expr list

(** Names of functions/methods called anywhere in an expression;
    [new C(...)] contributes ["C.init"]. *)
val callees_of_expr : expr -> string list

val callees_of_stmt : stmt -> string list

(** {1 Lookup} *)

val find_stmt : program -> int -> stmt option

(** The method (and enclosing class) containing statement [sid]. *)
val enclosing_method : program -> int -> (string option * method_decl) option

val find_class : program -> string -> class_decl option

val find_func : program -> string -> method_decl option

val find_method_in_class : class_decl -> string -> method_decl option

(** All methods with the given simple name. *)
val methods_named : program -> string -> (string option * method_decl) list
