lib/smt/theory.mli: Formula
