lib/symexec/sym.mli: Minilang Smt
