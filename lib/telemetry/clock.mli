(** Injectable wall clock: {!real} ([Unix.gettimeofday] — the only call
    site in the repository) or a deterministic per-domain {!mock}.
    Everything that measures time reads {!now}, which makes
    timing-dependent behaviour testable bit-for-bit. *)

type t

(** The process clock. *)
val real : t

(** A fresh deterministic clock: every {!now} advances the calling
    domain's tick counter by [step] seconds (default 2⁻¹⁰ s, ~1ms — a
    power of two, so tick differences are exact in floating point and
    durations depend only on the number of reads between endpoints). *)
val mock : ?step:float -> unit -> t

(** Current time in seconds via the installed clock. *)
val now : unit -> float

val set : t -> unit

val get : unit -> t

val is_mock : unit -> bool

(** Run [f] with the given clock installed, restoring the previous
    clock afterwards (also on exceptions). *)
val with_clock : t -> (unit -> 'a) -> 'a
