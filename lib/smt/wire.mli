(** Process-neutral wire forms for formulas and verdicts.

    Hash-consed values must never be marshalled directly: interned ids
    are process-local (they depend on interning order), so a formula
    read back from disk would carry ids that collide with — or dodge —
    the live tables, silently breaking O(1) equality and every id-keyed
    cache.  The wire forms below are plain trees; {!to_formula} and
    {!to_verdict} rebuild values {e through the smart constructors}, so
    everything loaded is properly re-interned in the loading process.

    Round-trip guarantee: [to_formula (of_formula f) == f] (physical
    equality, by hash-consing) and verdicts survive byte-identically —
    see the qcheck property in [test/test_serve.ml]. *)

type wterm =
  | W_var of string
  | W_int of int
  | W_bool of bool
  | W_str of string
  | W_null

type wrel = Weq | Wneq | Wlt | Wle | Wgt | Wge

type watom = { wrel : wrel; wlhs : wterm; wrhs : wterm }

type wformula =
  | W_true
  | W_false
  | W_atom of watom
  | W_not of wformula
  | W_and of wformula list
  | W_or of wformula list

(** A decided verdict; [Solver.Unknown] is transient and has no wire
    form (it is never cached, so never persisted). *)
type wverdict = W_sat of (watom * bool) list | W_unsat

val of_term : Formula.term -> wterm

val to_term : wterm -> Formula.term

val of_formula : Formula.t -> wformula

val to_formula : wformula -> Formula.t

val of_atom : Formula.atom -> watom

val to_atom : watom -> Formula.atom

(** [None] on [Unknown]. *)
val of_verdict : Solver.verdict -> wverdict option

val to_verdict : wverdict -> Solver.verdict
