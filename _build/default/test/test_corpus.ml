(* Corpus-level tests: ticket integrity for all 16 cases, version assembly,
   commit histories, and random-workload fuzzing of the fixed releases. *)

let all = Corpus.Registry.all_cases

(* ------------------------------------------------------------------ *)
(* Ticket integrity                                                    *)
(* ------------------------------------------------------------------ *)

let test_every_case_has_tickets () =
  List.iter
    (fun (c : Corpus.Case.t) ->
      let tickets = Corpus.Case.tickets c in
      Alcotest.(check bool)
        (c.Corpus.Case.case_id ^ " has >= 2 tickets")
        true
        (List.length tickets >= 2);
      List.iter
        (fun (t : Oracle.Ticket.t) ->
          (* sources parse *)
          ignore (Oracle.Ticket.buggy_program t);
          ignore (Oracle.Ticket.patched_program t);
          (* the diff is non-trivial *)
          let d = Oracle.Ticket.diff t in
          Alcotest.(check bool)
            (t.Oracle.Ticket.ticket_id ^ " diff non-trivial")
            true
            (Astring_contains.contains d "+");
          (* every fix ships at least one regression test, and it exists in
             the patched program *)
          Alcotest.(check bool)
            (t.Oracle.Ticket.ticket_id ^ " ships a regression test")
            true
            (t.Oracle.Ticket.regression_tests <> []);
          let patched_tests = Minilang.Interp.test_names (Oracle.Ticket.patched_program t) in
          List.iter
            (fun test ->
              Alcotest.(check bool) (test ^ " exists in patched") true
                (List.mem test patched_tests))
            t.Oracle.Ticket.regression_tests)
        tickets)
    all

let test_regression_tests_catch_their_own_bug () =
  (* each fix's regression test fails on the version just before the fix *)
  List.iter
    (fun (c : Corpus.Case.t) ->
      List.iter
        (fun (stage, ticket_id, _, _) ->
          match Corpus.Case.ticket_at c stage with
          | None -> ()
          | Some t ->
              let before = Corpus.Case.program_at c (stage - 1) in
              let patched_only =
                List.filter
                  (fun name ->
                    Minilang.Ast.find_func before name <> None)
                  t.Oracle.Ticket.regression_tests
              in
              (* tests added with the fix usually do not even exist before;
                 when they do, they must fail there *)
              List.iter
                (fun name ->
                  match Minilang.Interp.run_test before name with
                  | Minilang.Interp.Passed ->
                      Alcotest.fail
                        (Fmt.str "%s: %s passes on the pre-fix version" ticket_id name)
                  | Minilang.Interp.Failed _ | Minilang.Interp.Errored _ -> ())
                patched_only)
        c.Corpus.Case.ticket_meta)
    all

let test_bug_ids_unique () =
  let ids = List.concat_map (fun (c : Corpus.Case.t) -> c.Corpus.Case.bug_ids) all in
  Alcotest.(check int) "bug ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_unknown_bug_cases () =
  let unknowns =
    List.filter (fun (c : Corpus.Case.t) -> c.Corpus.Case.latest_has_unknown_bug) all
  in
  Alcotest.(check (list string)) "exactly the two paper cases"
    [ "hbase-snapshot-ttl"; "hdfs-observer-locations" ]
    (List.map (fun (c : Corpus.Case.t) -> c.Corpus.Case.case_id) unknowns);
  List.iter
    (fun (c : Corpus.Case.t) ->
      Alcotest.(check int) (c.Corpus.Case.case_id ^ " latest is stage 4") 4
        c.Corpus.Case.latest_stage;
      Alcotest.(check int) (c.Corpus.Case.case_id ^ " has 3 bugs") 3 (Corpus.Case.n_bugs c))
    unknowns

let test_commit_history_mentions_tickets () =
  List.iter
    (fun system ->
      let history = Corpus.Registry.commit_history system in
      Alcotest.(check int) (system ^ " history length") (Corpus.Registry.max_version + 1)
        (List.length history);
      (* v1 commits mention the first fix of some case of the system *)
      let _, msg = List.nth history 1 in
      Alcotest.(check bool) (system ^ " v1 mentions a ticket: " ^ msg) true
        (List.exists
           (fun (c : Corpus.Case.t) ->
             Astring_contains.contains msg (List.hd c.Corpus.Case.bug_ids))
           (Corpus.Registry.cases_of_system system)))
    Corpus.Registry.systems

let test_system_source_deterministic () =
  List.iter
    (fun system ->
      let a = Corpus.Registry.system_source system ~version:2 in
      let b = Corpus.Registry.system_source system ~version:2 in
      Alcotest.(check bool) (system ^ " deterministic assembly") true (String.equal a b))
    Corpus.Registry.systems

(* ------------------------------------------------------------------ *)
(* Random-workload fuzzing of the fixed releases                       *)
(* ------------------------------------------------------------------ *)

(* Drive the composition scenarios with random operation sequences (longer
   than the exhaustive bound) on the *fixed* stage: the high-level
   invariants must survive arbitrary client behaviour. *)
let fuzz_scenario (sd : Lisa.Composition.scenario_def) =
  let c = Option.get (Corpus.Registry.find_case sd.Lisa.Composition.sd_case) in
  QCheck.Test.make ~count:60
    ~name:(sd.Lisa.Composition.sd_case ^ " fixed release survives random workloads")
    QCheck.(make Gen.(list_size (int_range 1 10) (int_bound 1000)))
    (fun choices ->
      let stage = 3 in
      let ops = sd.Lisa.Composition.sd_ops stage in
      let seq = List.map (fun i -> List.nth ops (i mod List.length ops)) choices in
      let src = c.Corpus.Case.source stage ^ Lisa.Composition.stage_harness sd stage in
      let program = Minilang.Parser.program src in
      let st = Minilang.Interp.create program in
      let state_value = Minilang.Interp.call st "mcInit" [] in
      List.iter
        (fun op ->
          match Minilang.Interp.call st op [ state_value ] with
          | _ -> ()
          | exception Minilang.Interp.Mini_throw _ -> () (* guard rejection *))
        seq;
      match Minilang.Interp.call st "mcInv" [ state_value ] with
      | Minilang.Value.V_bool ok -> ok
      | _ -> false)

let fuzz_tests = List.map fuzz_scenario Lisa.Composition.scenarios

let suite =
  [
    ( "corpus.tickets",
      [
        Alcotest.test_case "every case has tickets" `Quick test_every_case_has_tickets;
        Alcotest.test_case "regression tests catch their bug" `Quick
          test_regression_tests_catch_their_own_bug;
        Alcotest.test_case "bug ids unique" `Quick test_bug_ids_unique;
        Alcotest.test_case "unknown-bug cases" `Quick test_unknown_bug_cases;
        Alcotest.test_case "commit history" `Quick test_commit_history_mentions_tickets;
        Alcotest.test_case "deterministic assembly" `Quick test_system_source_deterministic;
      ] );
    ("corpus.fuzz", List.map QCheck_alcotest.to_alcotest fuzz_tests);
  ]
