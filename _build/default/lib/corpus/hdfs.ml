(** Mini-HDFS: four regression families.  The observer-locations case is
    the paper's §4 Bug #2 (HDFS-13924 → HDFS-16732 → HDFS-17768): after two
    rounds of location checks, the batched-listing path of the latest
    release still returns blocks without locations when the observer
    namenode's block report is delayed. *)

(* ================================================================== *)
(* Case 10: observer block locations — 3 bugs, E7                      *)
(* ================================================================== *)

module Observer_locations = struct
  let loc_guard =
    {|    if (b.locationCount == 0) {
      // observer not caught up: retry on the active namenode
      throw "ObserverRetryOnActiveException";
    }|}

  let source stage =
    let read_guard = stage >= 1 in
    let listing = stage >= 2 in
    let listing_guard = stage >= 3 in
    let batched = stage >= 4 in
    let batched_guard = stage >= 5 in
    String.concat "\n"
      ([
         {|// HDFS: observer namenode reads
class LocatedBlock {
  field blockId: int;
  field locationCount: int;
  method init(blockId: int, locationCount: int) {
    this.blockId = blockId;
    this.locationCount = locationCount;
  }
}

class ObserverNameNode {
  field blocks: map;
  field servedReads: int = 0;
  field servedListings: int = 0;
  field servedBatches: int = 0;
  method reportBlock(b: LocatedBlock) {
    mapPut(this.blocks, b.blockId, b);
  }
  method reportedCount(): int {
    return mapSize(this.blocks);
  }
  method locatedCount(): int {
    var ids: list = mapKeys(this.blocks);
    var n: int = 0;
    var i: int = 0;
    while (i < listSize(ids)) {
      var b: LocatedBlock = mapGet(this.blocks, listGet(ids, i));
      if (b.locationCount > 0) {
        n = n + 1;
      }
      i = i + 1;
    }
    return n;
  }
  method catchUp(blockId: int, locations: int) {
    // a late block report arrives: the observer learns the locations
    var b: LocatedBlock = mapGet(this.blocks, blockId);
    if (b == null) {
      return;
    }
    b.locationCount = locations;
  }
  // common result assembly: every read path ends here
  method buildResult(b: LocatedBlock): int {
    return b.blockId;
  }
  method getBlockLocations(blockId: int): int {
    var b: LocatedBlock = mapGet(this.blocks, blockId);
    if (b == null) {
      throw "BlockMissingException";
    }
|};
       ]
      @ (if read_guard then [ loc_guard ] else [])
      @ [
          {|    this.servedReads = this.servedReads + 1;
    return this.buildResult(b);
  }
|};
        ]
      @ (if listing then
           [
             {|  method getListing(blockId: int): int {
    var b: LocatedBlock = mapGet(this.blocks, blockId);
    if (b == null) {
      throw "BlockMissingException";
    }
|};
           ]
           @ (if listing_guard then [ loc_guard ] else [])
           @ [
               {|    this.servedListings = this.servedListings + 1;
    return this.buildResult(b);
  }
|};
             ]
         else [])
      @ (if batched then
           [
             {|  // batched listing added for directory-heavy workloads
  method getBatchedListing(blockId: int): int {
    var b: LocatedBlock = mapGet(this.blocks, blockId);
    if (b == null) {
      throw "BlockMissingException";
    }
|};
           ]
           @ (if batched_guard then [ loc_guard ] else [])
           @ [
               {|    this.servedBatches = this.servedBatches + 1;
    return this.buildResult(b);
  }
|};
             ]
         else [])
      @ [
          {|}

method makeObserver(): ObserverNameNode {
  var nn: ObserverNameNode = new ObserverNameNode();
  nn.reportBlock(new LocatedBlock(1, 3));
  // block 2's report is delayed: zero locations known to the observer
  nn.reportBlock(new LocatedBlock(2, 0));
  return nn;
}

method test_hdfs_read_located_block() {
  var nn: ObserverNameNode = makeObserver();
  var r: int = nn.getBlockLocations(1);
  assert (r == 1, "located block served");
  assert (nn.servedReads == 1, "read counted");
}

method test_hdfs_read_missing_block_rejected() {
  var nn: ObserverNameNode = makeObserver();
  var rejected: bool = false;
  try { var r: int = nn.getBlockLocations(99); } catch (e) { rejected = true; }
  assert (rejected, "missing block rejected");
}

method test_hdfs_late_report_catches_up() {
  var nn: ObserverNameNode = makeObserver();
  assert (nn.reportedCount() == 2, "two blocks known");
  assert (nn.locatedCount() == 1, "one block located");
  nn.catchUp(2, 3);
  assert (nn.locatedCount() == 2, "late report fills locations");
  var r: int = nn.getBlockLocations(2);
  assert (r == 2, "block served after catch-up");
}
|};
        ]
      @ (if read_guard then
           [
             {|// regression test added with the HDFS-13924 fix
method test_hdfs13924_empty_locations_redirected() {
  var nn: ObserverNameNode = makeObserver();
  var redirected: bool = false;
  try { var r: int = nn.getBlockLocations(2); } catch (e) { redirected = true; }
  assert (redirected, "empty-location block retried on active");
}
|};
           ]
         else [])
      @ (if listing then
           [
             {|method test_hdfs_listing_located_block() {
  var nn: ObserverNameNode = makeObserver();
  var r: int = nn.getListing(1);
  assert (r == 1, "listing served");
}
|};
           ]
         else [])
      @ (if listing_guard then
           [
             {|// regression test added with the HDFS-16732 fix
method test_hdfs16732_listing_empty_locations_redirected() {
  var nn: ObserverNameNode = makeObserver();
  var redirected: bool = false;
  try { var r: int = nn.getListing(2); } catch (e) { redirected = true; }
  assert (redirected, "listing with empty locations redirected");
}
|};
           ]
         else [])
      @ (if batched then
           [
             {|method test_hdfs_batched_listing_located() {
  var nn: ObserverNameNode = makeObserver();
  var r: int = nn.getBatchedListing(1);
  assert (r == 1, "batched listing served");
}
|};
           ]
         else [])
      @
      if batched_guard then
        [
          {|// regression test added with the HDFS-17768 fix
method test_hdfs17768_batched_empty_locations_redirected() {
  var nn: ObserverNameNode = makeObserver();
  var redirected: bool = false;
  try { var r: int = nn.getBatchedListing(2); } catch (e) { redirected = true; }
  assert (redirected, "batched listing with empty locations redirected");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "hdfs-observer-locations";
      system = "hdfs";
      feature = "observer namenode block locations";
      kind = Case.Guard;
      bug_ids = [ "HDFS-13924"; "HDFS-16732"; "HDFS-17768" ];
      n_stages = 6;
      source;
      ticket_meta =
        [
          ( 1,
            "HDFS-13924",
            "Handle BlockMissingException when reading from observer",
            "No read served by the observer namenode may return a block without \
             any location. When the observer's block report lagged the active \
             namenode, reads returned location-less blocks and clients failed with \
             BlockMissingException. The fix detects empty locations and retries the \
             read on the active namenode." );
          ( 3,
            "HDFS-16732",
            "Avoid getting location from observer when the block report is delayed",
            "No read served by the observer namenode may return a block without \
             any location. The directory listing path skipped the location check \
             that getBlockLocations performs, so listings embedded location-less \
             blocks. The fix adds the same check to the listing path." );
          ( 5,
            "HDFS-17768",
            "Observer namenode network delay causing empty block location for getBatchedListing",
            "No read served by the observer namenode may return a block without \
             any location. In the latest release, the batched listing path added \
             for directory-heavy workloads still returns blocks without any \
             location when the observer's block report is delayed. We propose to \
             complete the coverage of location checks; HDFS developers have \
             approved the fix." );
        ];
      regression_stages = [ 2; 4 ];
      latest_stage = 4;
      latest_has_unknown_bug = true;
      violating_old_semantics = 3;
      first_year = 2018;
      last_year = 2025;
    }
end

(* ================================================================== *)
(* Case 11: double lease release (synthetic cluster)                   *)
(* ================================================================== *)

module Lease_recovery = struct
  let source stage =
    let guard1 = stage >= 1 in
    let batch = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// HDFS: lease management
class Lease {
  field holder: str;
  field path: str;
  field released: bool = false;
  method init(holder: str, path: str) {
    this.holder = holder;
    this.path = path;
  }
  method isReleased(): bool {
    return this.released;
  }
}

class LeaseManager {
  field leases: map;
  field releases: int = 0;
  method grant(l: Lease) {
    mapPut(this.leases, l.path, l);
  }
  // common release bookkeeping: every release path ends here
  method finalizeRelease(l: Lease) {
    l.released = true;
    this.releases = this.releases + 1;
  }
  method activeForHolder(holder: str): int {
    var paths: list = mapKeys(this.leases);
    var n: int = 0;
    var i: int = 0;
    while (i < listSize(paths)) {
      var l: Lease = mapGet(this.leases, listGet(paths, i));
      if (l.holder == holder && !l.isReleased()) {
        n = n + 1;
      }
      i = i + 1;
    }
    return n;
  }
  method renew(path: str) {
    var l: Lease = mapGet(this.leases, path);
    if (l == null) {
      throw "LeaseNotFoundException";
    }
    if (l.isReleased()) {
      throw "LeaseExpiredException";
    }
  }
  method releaseLease(path: str) {
    var l: Lease = mapGet(this.leases, path);
    if (l == null) {
      throw "LeaseNotFoundException";
    }
|};
       ]
      @ (if guard1 then
           [
             {|    if (l.isReleased()) {
      // idempotent: already released by recovery
      return;
    }|};
           ]
         else [])
      @ [ {|    this.finalizeRelease(l);
  }
|} ]
      @ (if batch then
           [
             (if guard2 then
                {|  method releaseAllForHolder(holder: str) {
    var paths: list = mapKeys(this.leases);
    var i: int = 0;
    while (i < listSize(paths)) {
      var l: Lease = mapGet(this.leases, listGet(paths, i));
      if (l.holder == holder) {
        if (l.isReleased()) {
          i = i + 1;
          continue;
        }
        this.finalizeRelease(l);
      }
      i = i + 1;
    }
  }|}
              else
                {|  method releaseAllForHolder(holder: str) {
    var paths: list = mapKeys(this.leases);
    var i: int = 0;
    while (i < listSize(paths)) {
      var l: Lease = mapGet(this.leases, listGet(paths, i));
      if (l.holder == holder) {
        this.finalizeRelease(l);
      }
      i = i + 1;
    }
  }|});
           ]
         else [])
      @ [
          {|}

method makeLeases(): LeaseManager {
  var lm: LeaseManager = new LeaseManager();
  lm.grant(new Lease("client-1", "/data/a"));
  lm.grant(new Lease("client-1", "/data/b"));
  return lm;
}

method test_hdfs_release_once() {
  var lm: LeaseManager = makeLeases();
  lm.releaseLease("/data/a");
  assert (lm.releases == 1, "released once");
}

method test_hdfs_lease_renew_and_counts() {
  var lm: LeaseManager = makeLeases();
  assert (lm.activeForHolder("client-1") == 2, "two active leases");
  lm.renew("/data/a");
  lm.releaseLease("/data/a");
  assert (lm.activeForHolder("client-1") == 1, "one active after release");
  var rejected: bool = false;
  try { lm.renew("/data/a"); } catch (e) { rejected = true; }
  assert (rejected, "renewing a released lease rejected");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the HDFS-14402 fix
method test_hdfs14402_double_release_idempotent() {
  var lm: LeaseManager = makeLeases();
  lm.releaseLease("/data/a");
  lm.releaseLease("/data/a");
  assert (lm.releases == 1, "double release counted once");
}
|};
           ]
         else [])
      @ (if batch then
           [
             {|method test_hdfs_release_all_for_holder() {
  var lm: LeaseManager = makeLeases();
  lm.releaseAllForHolder("client-1");
  assert (lm.releases == 2, "all holder leases released");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the HDFS-16314 fix
method test_hdfs16314_batch_release_idempotent() {
  var lm: LeaseManager = makeLeases();
  lm.releaseLease("/data/a");
  lm.releaseAllForHolder("client-1");
  assert (lm.releases == 2, "already-released lease skipped in batch");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "hdfs-lease-recovery";
      system = "hdfs";
      feature = "lease release idempotence";
      kind = Case.Guard;
      bug_ids = [ "HDFS-14402"; "HDFS-16314" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "HDFS-14402",
            "Lease released twice during recovery corrupts accounting",
            "No lease may be finalized if it has already been released. Lease \
             recovery raced with client close and released the same lease twice, \
             corrupting the quota accounting derived from release counts. The fix \
             makes release idempotent by checking the released flag." );
          ( 3,
            "HDFS-16314",
            "Bulk lease release double-counts recovered leases",
            "No lease may be finalized if it has already been released. The bulk \
             release path added for holder expiry skipped the released check, \
             double-counting leases already recovered. The fix skips released \
             leases in the batch loop." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2019;
      last_year = 2021;
    }
end

(* ================================================================== *)
(* Case 12: decommission vs replication (synthetic cluster)            *)
(* ================================================================== *)

module Decommission = struct
  let source stage =
    let guard1 = stage >= 1 in
    let maint = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// HDFS: datanode decommissioning
class BlockInfo {
  field blockId: int;
  field liveReplicas: int;
  field minReplicas: int = 2;
  method init(blockId: int, liveReplicas: int) {
    this.blockId = blockId;
    this.liveReplicas = liveReplicas;
  }
}

class DatanodeAdmin {
  field blocks: map;
  field decommissioned: int = 0;
  method track(b: BlockInfo) {
    mapPut(this.blocks, b.blockId, b);
  }
  // common state change: decommission and maintenance both end here
  method markOffline(b: BlockInfo) {
    b.liveReplicas = b.liveReplicas - 1;
    this.decommissioned = this.decommissioned + 1;
  }
  method reReplicate(blockId: int) {
    var b: BlockInfo = mapGet(this.blocks, blockId);
    if (b == null) {
      throw "BlockNotFoundException";
    }
    b.liveReplicas = b.liveReplicas + 1;
  }
  method underReplicatedCount(): int {
    var ids: list = mapKeys(this.blocks);
    var n: int = 0;
    var i: int = 0;
    while (i < listSize(ids)) {
      var b: BlockInfo = mapGet(this.blocks, listGet(ids, i));
      if (b.liveReplicas < b.minReplicas) {
        n = n + 1;
      }
      i = i + 1;
    }
    return n;
  }
  method decommissionReplica(blockId: int) {
    var b: BlockInfo = mapGet(this.blocks, blockId);
    if (b == null) {
      throw "BlockNotFoundException";
    }
|};
       ]
      @ (if guard1 then
           [
             {|    if (b.liveReplicas <= b.minReplicas) {
      throw "InsufficientReplicasException";
    }|};
           ]
         else [])
      @ [ {|    this.markOffline(b);
  }
|} ]
      @ (if maint then
           [
             (if guard2 then
                {|  method enterMaintenance(blockId: int) {
    var b: BlockInfo = mapGet(this.blocks, blockId);
    if (b == null) {
      throw "BlockNotFoundException";
    }
    if (b.liveReplicas <= b.minReplicas) {
      throw "InsufficientReplicasException";
    }
    this.markOffline(b);
  }|}
              else
                {|  method enterMaintenance(blockId: int) {
    var b: BlockInfo = mapGet(this.blocks, blockId);
    if (b == null) {
      throw "BlockNotFoundException";
    }
    this.markOffline(b);
  }|});
           ]
         else [])
      @ [
          {|}

method makeAdmin(): DatanodeAdmin {
  var da: DatanodeAdmin = new DatanodeAdmin();
  da.track(new BlockInfo(1, 5));
  da.track(new BlockInfo(2, 2));
  return da;
}

method test_hdfs_decommission_well_replicated() {
  var da: DatanodeAdmin = makeAdmin();
  da.decommissionReplica(1);
  assert (da.decommissioned == 1, "replica decommissioned");
}

method test_hdfs_rereplication_restores_margin() {
  var da: DatanodeAdmin = makeAdmin();
  assert (da.underReplicatedCount() == 0, "all blocks healthy");
  da.reReplicate(2);
  da.decommissionReplica(2);
  assert (da.decommissioned == 1, "decommission after re-replication");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the HDFS-15182 fix
method test_hdfs15182_under_replicated_rejected() {
  var da: DatanodeAdmin = makeAdmin();
  var rejected: bool = false;
  try { da.decommissionReplica(2); } catch (e) { rejected = true; }
  assert (rejected, "under-replicated block protected");
}
|};
           ]
         else [])
      @ (if maint then
           [
             {|method test_hdfs_maintenance_well_replicated() {
  var da: DatanodeAdmin = makeAdmin();
  da.enterMaintenance(1);
  assert (da.decommissioned == 1, "maintenance transition performed");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the HDFS-16851 fix
method test_hdfs16851_maintenance_under_replicated_rejected() {
  var da: DatanodeAdmin = makeAdmin();
  var rejected: bool = false;
  try { da.enterMaintenance(2); } catch (e) { rejected = true; }
  assert (rejected, "maintenance on under-replicated block rejected");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "hdfs-decommission";
      system = "hdfs";
      feature = "decommission replication safety";
      kind = Case.Guard;
      bug_ids = [ "HDFS-15182"; "HDFS-16851" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "HDFS-15182",
            "Decommissioning can drop the last replicas of a block",
            "No replica may be taken offline when live replicas would fall below \
             the configured minimum. Decommissioning proceeded regardless of \
             replication state and dropped the last replicas of cold blocks, \
             causing data loss alerts. The fix rejects decommission when live \
             replicas are at or below the minimum." );
          ( 3,
            "HDFS-16851",
            "Maintenance mode ignores minimum replication",
            "No replica may be taken offline when live replicas would fall below \
             the configured minimum. The maintenance-mode path added for rolling \
             upgrades skipped the replication check that decommission performs. \
             The fix adds the same check." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2020;
      last_year = 2022;
    }
end

(* ================================================================== *)
(* Case 13: safe-mode write protection (synthetic cluster)             *)
(* ================================================================== *)

module Safemode = struct
  let source stage =
    let guard1 = stage >= 1 in
    let concat_op = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// HDFS: namenode safe mode
class FSNamesystem {
  field safeMode: bool = false;
  field files: map;
  field mutations: int = 0;
  method isInSafeMode(): bool {
    return this.safeMode;
  }
  // common mutation application: every write path ends here
  method applyMutation(path: str, v: int) {
    mapPut(this.files, path, v);
    this.mutations = this.mutations + 1;
  }
  method enterSafeMode() {
    this.safeMode = true;
  }
  method leaveSafeMode() {
    this.safeMode = false;
  }
  method fileCount(): int {
    return mapSize(this.files);
  }
  method getFile(path: str): int {
    if (!mapContains(this.files, path)) {
      throw "FileNotFoundException";
    }
    var v: int = mapGet(this.files, path);
    return v;
  }
  method mkdir(path: str) {
|};
       ]
      @ (if guard1 then
           [
             {|    if (this.isInSafeMode()) {
      throw "SafeModeException";
    }|};
           ]
         else [])
      @ [ {|    this.applyMutation(path, 1);
  }
|} ]
      @ (if concat_op then
           [
             (if guard2 then
                {|  method concatFiles(target: str, src: str) {
    if (this.isInSafeMode()) {
      throw "SafeModeException";
    }
    var a: int = mapGet(this.files, target);
    var b2: int = mapGet(this.files, src);
    this.applyMutation(target, a + b2);
    mapRemove(this.files, src);
  }|}
              else
                {|  method concatFiles(target: str, src: str) {
    var a: int = mapGet(this.files, target);
    var b2: int = mapGet(this.files, src);
    this.applyMutation(target, a + b2);
    mapRemove(this.files, src);
  }|});
           ]
         else [])
      @ [
          {|}

method test_hdfs_mkdir_normal_mode() {
  var fs: FSNamesystem = new FSNamesystem();
  fs.mkdir("/tmp");
  assert (fs.mutations == 1, "mkdir applied");
}

method test_hdfs_safe_mode_toggle_and_reads() {
  var fs: FSNamesystem = new FSNamesystem();
  fs.mkdir("/data");
  fs.enterSafeMode();
  // reads keep working in safe mode
  assert (fs.getFile("/data") == 1, "read in safe mode");
  assert (fs.fileCount() == 1, "count in safe mode");
  fs.leaveSafeMode();
  fs.mkdir("/more");
  assert (fs.fileCount() == 2, "writes resume after leaving");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the HDFS-14273 fix
method test_hdfs14273_mkdir_safe_mode_rejected() {
  var fs: FSNamesystem = new FSNamesystem();
  fs.safeMode = true;
  var rejected: bool = false;
  try { fs.mkdir("/tmp"); } catch (e) { rejected = true; }
  assert (rejected, "mkdir rejected in safe mode");
  assert (fs.mutations == 0, "no mutation in safe mode");
}
|};
           ]
         else [])
      @ (if concat_op then
           [
             {|method test_hdfs_concat_normal_mode() {
  var fs: FSNamesystem = new FSNamesystem();
  fs.mkdir("/a");
  fs.mkdir("/b");
  fs.concatFiles("/a", "/b");
  assert (fs.mutations == 3, "concat applied");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the HDFS-16633 fix
method test_hdfs16633_concat_safe_mode_rejected() {
  var fs: FSNamesystem = new FSNamesystem();
  fs.mkdir("/a");
  fs.mkdir("/b");
  fs.safeMode = true;
  var rejected: bool = false;
  try { fs.concatFiles("/a", "/b"); } catch (e) { rejected = true; }
  assert (rejected, "concat rejected in safe mode");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "hdfs-safemode";
      system = "hdfs";
      feature = "safe-mode write protection";
      kind = Case.Guard;
      bug_ids = [ "HDFS-14273"; "HDFS-16633" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "HDFS-14273",
            "Namespace mutations allowed while the namenode is in safe mode",
            "No namespace mutation may be applied while the namenode is in safe \
             mode. During startup replay, mkdir requests mutated the namespace \
             before the block map was consistent, producing an image that failed \
             the next checkpoint. The fix rejects mutations in safe mode." );
          ( 3,
            "HDFS-16633",
            "concat bypasses safe mode checks",
            "No namespace mutation may be applied while the namenode is in safe \
             mode. The concat operation added for small-file compaction skipped \
             the safe-mode check every other write performs. The fix adds the \
             same check." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2019;
      last_year = 2022;
    }
end

let cases : Case.t list =
  [ Observer_locations.case; Lease_recovery.case; Decommission.case; Safemode.case ]
