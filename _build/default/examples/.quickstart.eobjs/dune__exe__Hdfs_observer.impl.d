examples/hdfs_observer.ml: Corpus Fmt Lisa List Minilang Oracle Semantics Smt
