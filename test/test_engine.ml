(* The enforcement engine (lib/engine): pool determinism, heap
   scheduling, fingerprint stability, incremental invalidation, the
   generic cache, the SMT verdict cache, and whole-engine equivalence
   across pool widths and caching layers. *)

open Smt

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_serial () =
  let xs = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int))
    "jobs=4 equals serial map"
    (Array.map f xs)
    (Engine.Pool.map ~jobs:4 f xs)

let test_pool_preserves_order () =
  let xs = [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] in
  Alcotest.(check (list string))
    "input order" xs
    (Engine.Pool.map_list ~jobs:3 (fun s -> s) xs)

let test_pool_reraises () =
  match
    Engine.Pool.map ~jobs:4
      (fun x -> if x = 5 then failwith "boom" else x)
      (Array.init 10 (fun i -> i))
  with
  | exception Failure m -> Alcotest.(check string) "worker error" "boom" m
  | _ -> Alcotest.fail "expected the worker exception on the caller"

let test_default_jobs_at_least_one () =
  Alcotest.(check bool) "default jobs >= 1" true (Engine.Pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Job heap                                                            *)
(* ------------------------------------------------------------------ *)

(* One real prepared rule to stuff into hand-made jobs. *)
let zk_case = List.hd Corpus.Zookeeper.cases

let a_prepared =
  lazy
    (let ticket = Corpus.Case.original_ticket zk_case in
     let outcome = Lisa.Pipeline.learn ticket in
     let p = Corpus.Case.program_at zk_case 1 in
     Engine.Checker.prepare p (List.hd outcome.Lisa.Pipeline.accepted))

let job ~id ~priority =
  {
    Engine.Job.job_id = id;
    rule_id = id;
    key = id;
    priority;
    prepared = Lazy.force a_prepared;
  }

let test_schedule_priority_order () =
  let jobs =
    [ job ~id:"a" ~priority:1; job ~id:"b" ~priority:9; job ~id:"c" ~priority:4 ]
  in
  Alcotest.(check (list string))
    "most expensive first" [ "b"; "c"; "a" ]
    (List.map (fun (j : Engine.Job.t) -> j.Engine.Job.job_id)
       (Engine.Job.schedule jobs))

let test_schedule_tie_break () =
  let jobs =
    [ job ~id:"z" ~priority:3; job ~id:"a" ~priority:3; job ~id:"m" ~priority:3 ]
  in
  Alcotest.(check (list string))
    "job-id tie break" [ "a"; "m"; "z" ]
    (List.map (fun (j : Engine.Job.t) -> j.Engine.Job.job_id)
       (Engine.Job.schedule jobs))

let test_heap_push_pop () =
  let h = Engine.Job.Heap.create () in
  Alcotest.(check bool) "fresh heap empty" true (Engine.Job.Heap.is_empty h);
  List.iter (Engine.Job.Heap.push h)
    [ job ~id:"x" ~priority:2; job ~id:"y" ~priority:7 ];
  Alcotest.(check int) "two jobs" 2 (Engine.Job.Heap.length h);
  (match Engine.Job.Heap.pop h with
  | Some j -> Alcotest.(check string) "max first" "y" j.Engine.Job.job_id
  | None -> Alcotest.fail "expected a job");
  ignore (Engine.Job.Heap.pop h);
  Alcotest.(check (option string)) "drained" None
    (Option.map (fun (j : Engine.Job.t) -> j.Engine.Job.job_id)
       (Engine.Job.Heap.pop h))

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_stable_across_reparse () =
  let src = zk_case.Corpus.Case.source 1 in
  Alcotest.(check string)
    "same source, same fingerprint"
    (Engine.Fingerprint.program (Minilang.Parser.program src))
    (Engine.Fingerprint.program (Minilang.Parser.program src))

let test_fingerprint_distinguishes_versions () =
  let fp v = Engine.Fingerprint.program (Corpus.Case.program_at zk_case v) in
  Alcotest.(check bool) "v1 differs from v2" false (fp 1 = fp 2)

let test_job_id_deterministic () =
  let id () = Engine.Fingerprint.job_id ~program_fp:"abc" ~rule_id:"r.g1" in
  Alcotest.(check string) "pure function of its inputs" (id ()) (id ())

let test_region_covers_targets () =
  let p = Corpus.Case.program_at zk_case 1 in
  let graph = Analysis.Callgraph.build p in
  let pr = Lazy.force a_prepared in
  let region = Engine.Fingerprint.region graph pr in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "region contains target %s" m)
        true (List.mem m region))
    (Engine.Checker.prepared_target_methods pr)

(* ------------------------------------------------------------------ *)
(* Incremental invalidation                                            *)
(* ------------------------------------------------------------------ *)

let test_identical_versions_no_changes () =
  let p = Corpus.Case.program_at zk_case 1 in
  Alcotest.(check bool)
    "self-diff is empty" true
    (Engine.Incremental.no_changes (Engine.Incremental.summarize ~prev:p ~cur:p))

let test_version_bump_changes () =
  let prev = Corpus.Case.program_at zk_case 1 in
  let cur = Corpus.Case.program_at zk_case 2 in
  let ch = Engine.Incremental.summarize ~prev ~cur in
  Alcotest.(check bool) "regression edits methods" false (Engine.Incremental.no_changes ch)

let test_lock_rule_always_affected () =
  let prev = Corpus.Case.program_at zk_case 1 in
  let cur = Corpus.Case.program_at zk_case 2 in
  let ch = Engine.Incremental.summarize ~prev ~cur in
  let lock_rule =
    Semantics.Rule.make ~rule_id:"t.l0"
      ~description:"no blocking I/O under a monitor"
      ~high_level:"lock discipline" ~origin:"test"
      (Semantics.Rule.Lock_discipline { scope = Semantics.Rule.Lock_blocking })
  in
  Alcotest.(check bool)
    "lock rules re-run on any change" true
    (Engine.Incremental.rule_affected ch ~region:[] lock_rule);
  Alcotest.(check bool)
    "but not when nothing changed" false
    (Engine.Incremental.rule_affected
       (Engine.Incremental.summarize ~prev ~cur:prev)
       ~region:[] lock_rule)

let test_disjoint_region_unaffected () =
  let prev = Corpus.Case.program_at zk_case 1 in
  let cur = Corpus.Case.program_at zk_case 2 in
  let ch = Engine.Incremental.summarize ~prev ~cur in
  let rule = (Lazy.force a_prepared).Engine.Checker.prep_rule in
  Alcotest.(check bool)
    "region miss + target miss => reuse" false
    (Engine.Incremental.rule_affected ch ~region:[ "SomeOther.method" ]
       {
         rule with
         Semantics.Rule.body =
           Semantics.Rule.State_guard
             {
               target = Semantics.Rule.Stmt_text "no_such_statement_text_xyz";
               condition = Formula.tru;
             };
       })

(* ------------------------------------------------------------------ *)
(* Generic cache                                                       *)
(* ------------------------------------------------------------------ *)

let test_cache_counts_and_bounds () =
  let c = Engine.Cache.create ~capacity:4 ~name:"t" () in
  Alcotest.(check (option int)) "miss on empty" None (Engine.Cache.find c "a");
  Engine.Cache.add c "a" 1;
  Alcotest.(check (option int)) "hit after add" (Some 1) (Engine.Cache.find c "a");
  Alcotest.(check int) "one hit" 1 (Engine.Cache.hits c);
  Alcotest.(check int) "one miss" 1 (Engine.Cache.misses c);
  Alcotest.(check int) "find_or_add computes once" 7
    (Engine.Cache.find_or_add c "b" (fun () -> 7));
  Alcotest.(check int) "then serves the memo" 7
    (Engine.Cache.find_or_add c "b" (fun () -> 99));
  List.iteri (fun i k -> Engine.Cache.add c k i) [ "c"; "d"; "e"; "f"; "g" ];
  Alcotest.(check bool) "bounded by capacity" true (Engine.Cache.size c <= 4)

(* ------------------------------------------------------------------ *)
(* SMT verdict cache: cached == uncached (qcheck)                      *)
(* ------------------------------------------------------------------ *)

(* Same generator as test_smt.ml's solver properties: random formulas
   over three int variables and one bool variable. *)
let gen_formula : Formula.t QCheck.arbitrary =
  let open QCheck in
  let var = Gen.oneofl [ "x"; "y"; "z" ] in
  let term =
    Gen.oneof
      [ Gen.map Formula.tvar var; Gen.map (fun n -> Formula.tint (abs n mod 4)) Gen.small_int ]
  in
  let rel = Gen.oneofl Formula.[ Req; Rneq; Rlt; Rle; Rgt; Rge ] in
  let atom_gen =
    Gen.map3 (fun r l rh -> Formula.atom r l rh) rel term term
  in
  let bool_atom = Gen.oneofl [ Formula.bvar "p"; Formula.eq (Formula.tvar "p") (Formula.tbool false) ] in
  let leaf = Gen.oneof [ atom_gen; bool_atom; Gen.return Formula.tru; Gen.return Formula.fls ] in
  let rec go n =
    if n <= 0 then leaf
    else
      Gen.oneof
        [
          leaf;
          Gen.map (fun f -> Formula.negate f) (go (n - 1));
          Gen.map2 (fun a b2 -> Formula.conj [ a; b2 ]) (go (n / 2)) (go (n / 2));
          Gen.map2 (fun a b2 -> Formula.disj [ a; b2 ]) (go (n / 2)) (go (n / 2));
        ]
  in
  make ~print:Formula.to_string (Gen.sized (fun n -> go (min n 6)))

let with_memo f =
  let was = Memo.enabled () in
  Memo.set_enabled true;
  Fun.protect ~finally:(fun () -> Memo.set_enabled was) f

let prop_memo_agrees_with_solver =
  QCheck.Test.make ~count:300 ~name:"cached and uncached verdicts agree"
    gen_formula (fun f ->
      with_memo (fun () ->
          let direct = Solver.verdict_is_sat (Solver.solve f) in
          let cold = Solver.verdict_is_sat (Memo.solve f) in
          let warm = Solver.verdict_is_sat (Memo.solve f) in
          direct = cold && cold = warm))

let prop_memo_check_trace_agrees =
  QCheck.Test.make ~count:200 ~name:"cached complement check agrees"
    (QCheck.pair gen_formula gen_formula) (fun (pc, checker) ->
      with_memo (fun () ->
          let same a b =
            match (a, b) with
            | Solver.Verified, Solver.Verified -> true
            | Solver.Violation _, Solver.Violation _ -> true
            | _ -> false
          in
          same (Solver.check_trace ~pc ~checker) (Memo.check_trace ~pc ~checker)))

let test_memo_disabled_passthrough () =
  Memo.reset ();
  Alcotest.(check bool) "cache off by default" false (Memo.enabled ());
  ignore (Memo.solve Formula.tru);
  ignore (Memo.solve Formula.tru);
  Alcotest.(check int) "no entries when disabled" 0 (Memo.size ());
  Alcotest.(check int) "no hits when disabled" 0 (Memo.hits ())

(* id-keyed hit regression: a structurally equal formula built from
   scratch must land on the same cache entry — interning collapses the
   two constructions to one node, so the memo probes one int key and
   renders nothing on the hit path *)
let test_memo_id_keyed_hit_on_fresh_construction () =
  with_memo (fun () ->
      Memo.reset ();
      let mk () =
        Formula.conj
          [
            Formula.gt (Formula.tvar "memo_id_x") (Formula.tint 1);
            Formula.bvar "memo_id_p";
          ]
      in
      let f = mk () and g = mk () in
      Alcotest.(check bool) "separate constructions share the node" true (f == g);
      ignore (Memo.solve f);
      ignore (Memo.solve g);
      Alcotest.(check int) "second construction hits" 1 (Memo.hits ());
      Alcotest.(check int) "one entry" 1 (Memo.size ());
      Memo.reset ())

let test_memo_hit_counting () =
  with_memo (fun () ->
      Memo.reset ();
      let f = Formula.gt (Formula.tvar "x") (Formula.tint 0) in
      ignore (Memo.solve f);
      ignore (Memo.solve f);
      Alcotest.(check int) "one miss" 1 (Memo.misses ());
      Alcotest.(check int) "one hit" 1 (Memo.hits ());
      Memo.reset ())

(* the two-level store: a repeat query on the same domain is answered by
   the zero-lock front cache; a fresh domain misses locally, hits the
   shared global store, and both kinds still sum into [hits] *)
let test_memo_local_front_cache () =
  with_memo (fun () ->
      Memo.reset ();
      let f = Formula.gt (Formula.tvar "memo_local_x") (Formula.tint 3) in
      ignore (Memo.solve f);
      ignore (Memo.solve f);
      Alcotest.(check int) "repeat on the same domain hits locally" 1
        (Memo.local_hits ());
      Alcotest.(check int) "local hits count into hits" 1 (Memo.hits ());
      Domain.join (Domain.spawn (fun () -> ignore (Memo.solve f)));
      Alcotest.(check int) "a fresh domain hits the global store" 2
        (Memo.hits ());
      Alcotest.(check int) "without touching the local counter" 1
        (Memo.local_hits ());
      Alcotest.(check int) "and without a miss" 1 (Memo.misses ());
      Memo.reset ())

(* restore seeds the global store in one lock hold per shard: entries
   round-trip, duplicates are skipped, counters stay untouched *)
let test_memo_restore_batch () =
  with_memo (fun () ->
      Memo.reset ();
      let mk i = Formula.gt (Formula.tvar "memo_restore_x") (Formula.tint i) in
      for i = 0 to 19 do
        ignore (Memo.solve (mk i))
      done;
      let entries = Memo.entries () in
      Alcotest.(check int) "20 entries captured" 20 (List.length entries);
      Memo.reset ();
      Alcotest.(check int) "reset emptied the store" 0 (Memo.size ());
      Alcotest.(check int) "all 20 restored" 20 (Memo.restore entries);
      Alcotest.(check int) "restore adds no duplicates" 0 (Memo.restore entries);
      Alcotest.(check int) "size matches" 20 (Memo.size ());
      Alcotest.(check int) "restore records no hits" 0 (Memo.hits ());
      Alcotest.(check int) "restore records no misses" 0 (Memo.misses ());
      ignore (Memo.solve (mk 7));
      Alcotest.(check int) "a warm query hits" 1 (Memo.hits ());
      Memo.reset ())

(* ------------------------------------------------------------------ *)
(* The scheduler: equivalence across pool widths and caching layers    *)
(* ------------------------------------------------------------------ *)

let zk_book = lazy (Lisa.System_scan.learn_system_book "zookeeper")

(* The zookeeper slice of E11 through one engine; per-version report
   summaries are the strongest stable output to compare across modes. *)
let scan config =
  Memo.reset ();
  let engine = Engine.Scheduler.create ~config () in
  let book = Lazy.force zk_book in
  let summaries =
    List.concat_map
      (fun v ->
        let p = Corpus.Registry.system_program "zookeeper" ~version:v in
        List.map
          (fun r -> Printf.sprintf "v%d %s" v (Engine.Checker.report_summary r))
          (Engine.Scheduler.enforce engine p book))
      [ 1; 2; 3; 5 ]
  in
  Memo.reset ();
  (summaries, Engine.Scheduler.stats engine)

let test_jobs1_equals_jobs4 () =
  let serial, _ = scan Engine.Scheduler.cold_config in
  let parallel, _ =
    scan { Engine.Scheduler.cold_config with Engine.Scheduler.jobs = 4 }
  in
  Alcotest.(check (list string)) "identical reports, jobs=1 vs jobs=4" serial parallel

(* the byte-identity pin at the width the sharded stores target *)
let test_jobs1_equals_jobs8 () =
  let serial, _ = scan Engine.Scheduler.cold_config in
  let parallel, _ =
    scan { Engine.Scheduler.cold_config with Engine.Scheduler.jobs = 8 }
  in
  Alcotest.(check (list string)) "identical reports, jobs=1 vs jobs=8" serial
    parallel;
  let warm, _ =
    scan { Engine.Scheduler.default_config with Engine.Scheduler.jobs = 8 }
  in
  Alcotest.(check (list string)) "identical reports with every cache on"
    serial warm

let test_caches_preserve_reports () =
  let cold, cold_stats = scan Engine.Scheduler.cold_config in
  let cached, cached_stats = scan Engine.Scheduler.default_config in
  Alcotest.(check (list string)) "identical reports, cold vs cached" cold cached;
  Alcotest.(check bool)
    (Printf.sprintf "fewer solver calls cached (%d < %d)"
       cached_stats.Engine.Stats.solver_calls cold_stats.Engine.Stats.solver_calls)
    true
    (cached_stats.Engine.Stats.solver_calls < cold_stats.Engine.Stats.solver_calls);
  Alcotest.(check bool) "incremental layer reused work" true
    (cached_stats.Engine.Stats.incremental_reuses > 0)

let test_parallel_cached_equals_serial_cold () =
  let cold, _ = scan Engine.Scheduler.cold_config in
  let full, _ =
    scan { Engine.Scheduler.default_config with Engine.Scheduler.jobs = 4 }
  in
  Alcotest.(check (list string)) "every layer on, jobs=4" cold full

let test_same_version_twice_all_reused () =
  Memo.reset ();
  let engine = Engine.Scheduler.create ~config:Engine.Scheduler.default_config () in
  let book = Lazy.force zk_book in
  let p = Corpus.Registry.system_program "zookeeper" ~version:2 in
  let first = List.map Engine.Checker.report_summary (Engine.Scheduler.enforce engine p book) in
  let ran_once = (Engine.Scheduler.stats engine).Engine.Stats.jobs_run in
  let second = List.map Engine.Checker.report_summary (Engine.Scheduler.enforce engine p book) in
  Memo.reset ();
  Alcotest.(check (list string)) "same reports" first second;
  Alcotest.(check int) "no job re-ran" ran_once
    (Engine.Scheduler.stats engine).Engine.Stats.jobs_run;
  Alcotest.(check int) "all rules reused"
    (Semantics.Rulebook.size book)
    (Engine.Scheduler.stats engine).Engine.Stats.incremental_reuses

let test_report_cache_without_incremental () =
  Memo.reset ();
  let config =
    { Engine.Scheduler.default_config with Engine.Scheduler.incremental = false }
  in
  let engine = Engine.Scheduler.create ~config () in
  let book = Lazy.force zk_book in
  let p = Corpus.Registry.system_program "zookeeper" ~version:3 in
  let first = List.map Engine.Checker.report_summary (Engine.Scheduler.enforce engine p book) in
  let second = List.map Engine.Checker.report_summary (Engine.Scheduler.enforce engine p book) in
  Memo.reset ();
  Alcotest.(check (list string)) "same reports via the report cache" first second;
  Alcotest.(check int) "every rule hit the report cache"
    (Semantics.Rulebook.size book)
    (Engine.Scheduler.stats engine).Engine.Stats.report_hits

let test_invalidate_forgets () =
  Memo.reset ();
  let engine = Engine.Scheduler.create ~config:Engine.Scheduler.default_config () in
  let book = Lazy.force zk_book in
  let p = Corpus.Registry.system_program "zookeeper" ~version:1 in
  ignore (Engine.Scheduler.enforce engine p book);
  Engine.Scheduler.invalidate engine;
  Alcotest.(check int) "report cache dropped" 0 (Engine.Scheduler.report_cache_size engine);
  let ran = (Engine.Scheduler.stats engine).Engine.Stats.jobs_run in
  ignore (Engine.Scheduler.enforce engine p book);
  Memo.reset ();
  Alcotest.(check bool) "everything re-ran" true
    ((Engine.Scheduler.stats engine).Engine.Stats.jobs_run > ran)

(* ------------------------------------------------------------------ *)
(* Path-condition trie: byte-identical reports, per-trace vs trie      *)
(* ------------------------------------------------------------------ *)

let no_trie config =
  {
    config with
    Engine.Scheduler.checker =
      { config.Engine.Scheduler.checker with Engine.Checker.trie = false };
  }

let test_trie_equals_per_trace_jobs1 () =
  let per_trace, _ = scan (no_trie Engine.Scheduler.default_config) in
  let trie, stats = scan Engine.Scheduler.default_config in
  Alcotest.(check (list string))
    "identical reports, trie vs per-trace, jobs=1" per_trace trie;
  Alcotest.(check bool) "trie actually shared prefixes" true
    (stats.Engine.Stats.trie_shared > 0)

let test_trie_equals_per_trace_jobs4 () =
  let jobs4 = { Engine.Scheduler.default_config with Engine.Scheduler.jobs = 4 } in
  let per_trace, _ = scan (no_trie jobs4) in
  let trie, _ = scan jobs4 in
  Alcotest.(check (list string))
    "identical reports, trie vs per-trace, jobs=4" per_trace trie

(* ------------------------------------------------------------------ *)
(* Pre-solver fast path: byte-identical reports, on vs off             *)
(* ------------------------------------------------------------------ *)

let with_fastpath enabled f =
  let was = Smt.Solver.fastpath_enabled () in
  Smt.Solver.set_fastpath_enabled enabled;
  Fun.protect ~finally:(fun () -> Smt.Solver.set_fastpath_enabled was) f

(* The fast-path ladder (abstract domain, root BCP, trie subsumption)
   may only change cost, never answers: whole-scan reports must be
   byte-identical with it pinned off, at both pool widths. *)
let test_fastpath_equals_full_jobs1 () =
  let off =
    with_fastpath false (fun () -> fst (scan Engine.Scheduler.default_config))
  in
  let on_ =
    with_fastpath true (fun () -> fst (scan Engine.Scheduler.default_config))
  in
  Alcotest.(check (list string))
    "identical reports, fast path on vs off, jobs=1" off on_

let test_fastpath_equals_full_jobs4 () =
  let jobs4 =
    { Engine.Scheduler.default_config with Engine.Scheduler.jobs = 4 }
  in
  let off = with_fastpath false (fun () -> fst (scan jobs4)) in
  let on_ = with_fastpath true (fun () -> fst (scan jobs4)) in
  Alcotest.(check (list string))
    "identical reports, fast path on vs off, jobs=4" off on_

(* The fault-tolerance contract must survive the trie checker (on by
   default): one-seed zookeeper chaos smoke, all invariants green. *)
let test_chaos_smoke_with_trie () =
  let result = Lisa.Chaos.run ~seeds:[ 1 ] ~smoke:true () in
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    (Lisa.Chaos.invariants result)

let suite =
  [
    ( "engine.pool",
      [
        Alcotest.test_case "matches serial map" `Quick test_pool_matches_serial;
        Alcotest.test_case "preserves order" `Quick test_pool_preserves_order;
        Alcotest.test_case "re-raises worker errors" `Quick test_pool_reraises;
        Alcotest.test_case "default jobs >= 1" `Quick test_default_jobs_at_least_one;
      ] );
    ( "engine.jobs",
      [
        Alcotest.test_case "priority order" `Quick test_schedule_priority_order;
        Alcotest.test_case "deterministic tie break" `Quick test_schedule_tie_break;
        Alcotest.test_case "heap push/pop" `Quick test_heap_push_pop;
      ] );
    ( "engine.fingerprint",
      [
        Alcotest.test_case "stable across reparse" `Quick test_fingerprint_stable_across_reparse;
        Alcotest.test_case "distinguishes versions" `Quick test_fingerprint_distinguishes_versions;
        Alcotest.test_case "job id deterministic" `Quick test_job_id_deterministic;
        Alcotest.test_case "region covers targets" `Quick test_region_covers_targets;
      ] );
    ( "engine.incremental",
      [
        Alcotest.test_case "self-diff empty" `Quick test_identical_versions_no_changes;
        Alcotest.test_case "version bump changes" `Quick test_version_bump_changes;
        Alcotest.test_case "lock rules always affected" `Quick test_lock_rule_always_affected;
        Alcotest.test_case "disjoint region reused" `Quick test_disjoint_region_unaffected;
      ] );
    ( "engine.cache",
      [ Alcotest.test_case "counters and bounds" `Quick test_cache_counts_and_bounds ] );
    ( "engine.memo",
      [
        QCheck_alcotest.to_alcotest prop_memo_agrees_with_solver;
        QCheck_alcotest.to_alcotest prop_memo_check_trace_agrees;
        Alcotest.test_case "disabled passthrough" `Quick test_memo_disabled_passthrough;
        Alcotest.test_case "hit counting" `Quick test_memo_hit_counting;
        Alcotest.test_case "domain-local front cache" `Quick
          test_memo_local_front_cache;
        Alcotest.test_case "restore batches per shard" `Quick
          test_memo_restore_batch;
        Alcotest.test_case "id-keyed hit on fresh construction" `Quick
          test_memo_id_keyed_hit_on_fresh_construction;
      ] );
    ( "engine.scheduler",
      [
        Alcotest.test_case "jobs=1 == jobs=4" `Quick test_jobs1_equals_jobs4;
        Alcotest.test_case "jobs=1 == jobs=8" `Quick test_jobs1_equals_jobs8;
        Alcotest.test_case "caches preserve reports" `Quick test_caches_preserve_reports;
        Alcotest.test_case "parallel+cached == serial cold" `Quick test_parallel_cached_equals_serial_cold;
        Alcotest.test_case "same version twice reused" `Quick test_same_version_twice_all_reused;
        Alcotest.test_case "report cache without incremental" `Quick test_report_cache_without_incremental;
        Alcotest.test_case "invalidate forgets" `Quick test_invalidate_forgets;
      ] );
    ( "engine.trie",
      [
        Alcotest.test_case "trie == per-trace, jobs=1" `Quick
          test_trie_equals_per_trace_jobs1;
        Alcotest.test_case "trie == per-trace, jobs=4" `Quick
          test_trie_equals_per_trace_jobs4;
        Alcotest.test_case "chaos smoke with trie on" `Slow
          test_chaos_smoke_with_trie;
      ] );
    ( "engine.fastpath",
      [
        Alcotest.test_case "fast path == full search, jobs=1" `Quick
          test_fastpath_equals_full_jobs1;
        Alcotest.test_case "fast path == full search, jobs=4" `Quick
          test_fastpath_equals_full_jobs4;
      ] );
  ]
