(** Intraprocedural path enumeration and execution trees (paper §3.2).

    Loops are approximated by their first-iteration decisions; [try] by
    its non-throwing body.  Combined with {!Callgraph.call_chains} this
    yields the execution tree rooted at a target statement whose leaves
    are entry functions. *)

type decision = {
  d_sid : int;  (** sid of the branching statement *)
  d_cond : Minilang.Ast.expr;  (** its guard *)
  d_taken : bool;  (** decision required to continue toward the target *)
}

type path = decision list

val decision_to_string : decision -> string

val path_to_string : path -> string

(** Decision vectors under which a method's body reaches statement
    [target]; empty = statically unreachable in this method. *)
val paths_to_stmt : Minilang.Ast.method_decl -> int -> path list

(** Decision vectors reaching each call to [callee] (by simple name);
    one entry per call site, paired with the site's sid. *)
val paths_to_call : Minilang.Ast.method_decl -> string -> (int * path) list

(** Statements of the method calling [callee]. *)
val call_sites : Minilang.Ast.method_decl -> string -> Minilang.Ast.stmt list

type exec_path = {
  ep_entry : string;  (** entry function (a leaf of the execution tree) *)
  ep_chain : string list;  (** call chain, entry first *)
  ep_decisions : path;  (** decisions in the target's method *)
}

type exec_tree = {
  et_target_sid : int;
  et_target_method : string;
  et_paths : exec_path list;
}

(** The execution tree rooted at [target_sid]. *)
val exec_tree : Minilang.Ast.program -> Callgraph.t -> int -> exec_tree

val exec_path_to_string : exec_path -> string
