(** Drivers for the remaining paper artifacts: E2 (Figures 2–3), E4
    (Figure 5), E5 (Figure 6), E6/E7 (§4) and E9 (§5 noise). *)

(** E2 — the ZooKeeper ephemeral-node walkthrough. *)
module Zk_ephemeral : sig
  type t = {
    rule : string;  (** the learned contract, printed *)
    stage1_clean : bool;
    stage2_violations : (string * string) list;  (** method, counterexample *)
    stage3_clean : bool;
    zombie_demo : string;  (** outcome of the Figure 2 scenario *)
  }

  (** Run the Figure 2 stale-registration scenario on the regressed
      version and report what production would have seen. *)
  val zombie_scenario : unit -> string

  val run : unit -> t

  val print : t -> string
end

(** E4 — stage-by-stage workflow dump for ZK-1208 (Figure 5). *)
module Workflow : sig
  val run : unit -> string
end

(** E5 — generalizing the ZK-2201 lock rule (Figure 6). *)
module Generalization : sig
  type row = {
    g_scope : string;
    g_catches_regression : bool;
    g_false_positives : int;  (** findings on the fixed version *)
  }

  val run : unit -> row list

  val print : row list -> string
end

(** E6/E7 — the two previously-unknown bugs of §4, plus their synthesized
    and verified fixes. *)
module Unknown_bugs : sig
  type finding = {
    f_case : string;
    f_bug_id : string;  (** the ticket eventually filed *)
    f_methods : string list;  (** methods with violating paths *)
    f_counterexamples : string list;
  }

  val run_case : string -> finding

  val run : unit -> finding list

  val print : finding list -> string
end

(** E9 — LLM noise vs. the cross-checking mitigation (§5). *)
module Noise : sig
  type row = {
    n_epsilon : float;
    n_cross_check : bool;
    n_corrupted_accepted : int;
    n_recall : float;
    n_false_alarms : int;
  }

  val run_one :
    ?registry:Corpus.Registry.t ->
    epsilon:float -> cross_check:bool -> seed:int -> unit -> row

  val run : unit -> row list

  val print : row list -> string
end
