(** Per-component circuit breakers: after [threshold] consecutive
    failures a point is skipped for [cooldown] calls, then probed
    half-open.  Deterministic (cooldown is counted in calls, not wall
    time); global and mutex-protected. *)

(** Set the global thresholds (clamped to >= 1). *)
val configure : ?threshold:int -> ?cooldown:int -> unit -> unit

(** May the component run?  [false] = breaker open, answer degraded. *)
val proceed : Fault.point -> bool

val success : Fault.point -> unit

val failure : Fault.point -> unit

val is_open : Fault.point -> bool

(** Times this point's breaker has opened. *)
val trips : Fault.point -> int

val total_trips : unit -> int

(** Close every breaker and zero its counters (chaos-run hygiene). *)
val reset_all : unit -> unit
