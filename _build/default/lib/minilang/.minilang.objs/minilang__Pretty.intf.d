lib/minilang/pretty.mli: Ast
