(** Keyed circuit breakers: the {!Breaker} discipline (open after
    [threshold] consecutive failures, skip [cooldown] calls, half-open
    probe) generalized from the fixed {!Fault.point} set to arbitrary
    string keys — one breaker per tenant, shard, or upstream.

    Unlike {!Breaker} the state is instance-based, not global: each
    consumer creates its own table so tenants of one daemon never
    interfere with the process-wide component breakers.  Deterministic
    (cooldown counted in calls, not wall time) and mutex-protected. *)

type t

(** [create ~threshold ~cooldown ()] — both clamped to >= 1. *)
val create : ?threshold:int -> ?cooldown:int -> unit -> t

(** May the caller keyed [key] run?  [false] = breaker open, the call
    must be answered degraded/rejected.  Counts against the cooldown. *)
val proceed : t -> string -> bool

val success : t -> string -> unit

(** Record a failure.  Returns [true] when this failure opened (or
    re-opened) the breaker, so the caller can emit an event. *)
val failure : t -> string -> bool

val is_open : t -> string -> bool

(** Times this key's breaker has opened. *)
val trips : t -> string -> int

val total_trips : t -> int

(** Keys ever seen, sorted. *)
val keys : t -> string list

(** Close every breaker and zero its counters. *)
val reset : t -> unit
