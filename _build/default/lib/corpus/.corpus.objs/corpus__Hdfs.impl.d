lib/corpus/hdfs.ml: Case String
