lib/oracle/tfidf.ml: Array Diffing Hashtbl List Option
