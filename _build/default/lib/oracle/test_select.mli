(** RAG-style test selection (§3.2): pick, for each execution path, the
    existing tests most likely to drive it, by similarity search over test
    embeddings. *)

type selection = {
  sel_path : Analysis.Paths.exec_path;
  sel_tests : (string * float) list;  (** test name, similarity score *)
}

(** TF-IDF index over a program's [test_*] functions. *)
val index_of_tests : Minilang.Ast.program -> Tfidf.index

(** The query text describing one execution path: its call chain, guard
    conditions, and the rule's description. *)
val query_of_path : Semantics.Rule.t -> Analysis.Paths.exec_path -> string

(** Top-[k] tests per path of an execution tree. *)
val select :
  Minilang.Ast.program ->
  Semantics.Rule.t ->
  Analysis.Paths.exec_tree ->
  k:int ->
  selection list

(** Union of selected test names, deduplicated, best score first. *)
val selected_tests : selection list -> string list

(** Seeded pseudo-random baseline for the E8 ablation. *)
val select_random : Minilang.Ast.program -> seed:int -> k:int -> string list
