lib/oracle/prompt.mli: Ticket
