examples/zookeeper_ephemeral.mli:
