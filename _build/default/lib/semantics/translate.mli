(** Translation of MiniJava boolean expressions into checker formulas —
    the paper's *normalization* between symbolic output and inferred
    semantics (§3.2).

    Conventions shared with the concolic engine:
    - object roots are canonicalized to their class name;
    - [x.f] with [x : C] is the path ["C.f"] (also through chains);
    - observer methods (single [return <bool expr>;]) are inlined, so
      [s.isClosing()] and a direct read of [s.closing] coincide;
    - scalar locals are copy-propagated one level, so a guard on a local
      that caches a field compares against the field's path. *)

type env = {
  program : Minilang.Ast.program;
  cls : Minilang.Ast.class_decl option;  (** enclosing class, for [this] *)
  var_types : (string * Minilang.Ast.typ) list;
  var_inits : (string * Minilang.Ast.expr) list;
}

(** Environment of a method: declared types and first initialisers of its
    parameters and locals (flow-insensitive). *)
val env_of_method :
  Minilang.Ast.program ->
  Minilang.Ast.class_decl option ->
  Minilang.Ast.method_decl ->
  env

(** Canonical state path of an expression, when it denotes state. *)
val path_of : env -> Minilang.Ast.expr -> string option

(** The static class of a receiver expression, when known. *)
val receiver_class : env -> Minilang.Ast.expr -> Minilang.Ast.class_decl option

(** Translate an expression in term position. *)
val term_of : env -> Minilang.Ast.expr -> Smt.Formula.term option

(** Translate a boolean expression to a checker formula; opaque boolean
    sub-expressions become variables named by their canonical printed
    form. *)
val formula_of : env -> Minilang.Ast.expr -> Smt.Formula.t option

(** The safety condition of a guard: for an early-exit guard
    [if (G) { throw/return; }] it is [!G] (normalized); for a wrapper
    guard it is [G]. *)
val guard_condition :
  env -> early_exit:bool -> Minilang.Ast.expr -> Smt.Formula.t option
