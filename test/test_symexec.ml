(* Tests for the concolic engine: shadow naming, path-condition recording,
   short-circuit precision, pruning, target hits, and the end-to-end
   ZooKeeper-shaped scenario from the paper. *)

open Minilang
open Symexec

(* A miniature ZooKeeper: the patched path checks both null and closing;
   the regressed path (touchAndCreate) checks only null — exactly the
   ZK-1208 / ZK-1496 shape from Figure 3. *)
let zk_like_source =
  {|
class Session {
  field id: int;
  field closing: bool = false;
  field ttl: int = 30;
  method init(id: int) {
    this.id = id;
  }
  method isClosing(): bool {
    return this.closing;
  }
}

class DataTree {
  field nodes: map;
  method createEphemeralNode(path: str, owner: int) {
    mapPut(this.nodes, path, owner);
  }
}

class Processor {
  field sessions: map;
  field tree: DataTree;
  method init() {
    this.tree = new DataTree();
  }
  method addSession(s: Session) {
    mapPut(this.sessions, s.id, s);
  }
  // patched path: full guard
  method createRequest(sessionId: int, path: str) {
    var s: Session = mapGet(this.sessions, sessionId);
    if (s == null || s.isClosing()) {
      throw "SessionExpiredException";
    }
    this.tree.createEphemeralNode(path, sessionId);
  }
  // regressed path: missing the closing check
  method touchAndCreate(sessionId: int, path: str) {
    var s: Session = mapGet(this.sessions, sessionId);
    if (s == null) {
      return;
    }
    this.tree.createEphemeralNode(path, sessionId);
  }
}

method test_create_on_live_session() {
  var p: Processor = new Processor();
  var s: Session = new Session(1);
  p.addSession(s);
  p.createRequest(1, "/services/a");
}

method test_create_on_closing_session_rejected() {
  var p: Processor = new Processor();
  var s: Session = new Session(1);
  p.addSession(s);
  s.closing = true;
  try { p.createRequest(1, "/services/a"); } catch (e) { }
}

method test_touch_path_live() {
  var p: Processor = new Processor();
  var s: Session = new Session(1);
  p.addSession(s);
  p.touchAndCreate(1, "/services/b");
}

method test_touch_path_closing() {
  var p: Processor = new Processor();
  var s: Session = new Session(1);
  p.addSession(s);
  s.closing = true;
  p.touchAndCreate(1, "/services/b");
}
|}

let program () = Parser.program ~file:"zk_like.mj" zk_like_source

(* find the sids of statements calling createEphemeralNode *)
let target_sids p =
  List.concat_map
    (fun (_, m) ->
      List.filter_map
        (fun (st : Ast.stmt) ->
          if List.mem "createEphemeralNode" (Ast.callees_of_stmt st) then Some st.Ast.sid
          else None)
        (Ast.stmts_of_method m))
    (Ast.methods_of_program p)

let config p =
  {
    Concolic.default_config with
    Concolic.targets = target_sids p;
    relevant_roots = [ "Session" ];
  }

let run_test_name p name = Concolic.run ~config:(config p) p name

let test_hit_on_guarded_path () =
  let p = program () in
  let r = run_test_name p "test_create_on_live_session" in
  (match r.Concolic.r_outcome with
  | Interp.Passed -> ()
  | Interp.Failed m | Interp.Errored m -> Alcotest.fail m);
  Alcotest.(check int) "one target hit" 1 (List.length r.Concolic.r_hits);
  let h = List.hd r.Concolic.r_hits in
  let pc = Smt.Formula.to_string (Concolic.hit_pc_formula h) in
  (* the guarded path must record both the null check and the closing check *)
  Alcotest.(check bool) ("pc mentions Session != null: " ^ pc) true
    (Astring_contains.contains pc "Session != null");
  Alcotest.(check bool) ("pc mentions closing: " ^ pc) true
    (Astring_contains.contains pc "Session.closing == false")

let test_no_hit_when_rejected () =
  let p = program () in
  let r = run_test_name p "test_create_on_closing_session_rejected" in
  Alcotest.(check int) "no target hit" 0 (List.length r.Concolic.r_hits)

let test_hit_on_missing_check_path () =
  let p = program () in
  let r = run_test_name p "test_touch_path_live" in
  Alcotest.(check int) "one hit" 1 (List.length r.Concolic.r_hits);
  let h = List.hd r.Concolic.r_hits in
  let pc = Smt.Formula.to_string (Concolic.hit_pc_formula h) in
  Alcotest.(check bool) ("pc mentions null check: " ^ pc) true
    (Astring_contains.contains pc "Session != null");
  Alcotest.(check bool) ("pc must NOT mention closing: " ^ pc) false
    (Astring_contains.contains pc "closing")

let test_buggy_path_executes_on_closing_session () =
  (* the regression actually fires: ephemeral node created on closing session *)
  let p = program () in
  let r = run_test_name p "test_touch_path_closing" in
  Alcotest.(check int) "hit happens even though session closing" 1
    (List.length r.Concolic.r_hits)

let test_complement_check_flags_missing_path () =
  let p = program () in
  let checker =
    Smt.Formula.conj
      [
        Smt.Formula.neq (Smt.Formula.tvar "Session") Smt.Formula.tnull;
        Smt.Formula.eq (Smt.Formula.tvar "Session.closing") (Smt.Formula.tbool false);
      ]
  in
  let good = run_test_name p "test_create_on_live_session" in
  let bad = run_test_name p "test_touch_path_live" in
  let verdict r =
    Smt.Solver.check_trace
      ~pc:(Concolic.hit_pc_formula (List.hd r.Concolic.r_hits))
      ~checker
  in
  (match verdict good with
  | Smt.Solver.Verified -> ()
  | Smt.Solver.Violation m ->
      Alcotest.fail ("guarded path flagged: " ^ Smt.Solver.model_to_string m)
      | Smt.Solver.Undecided reason -> Alcotest.fail ("unexpected undecided: " ^ reason));
  match verdict bad with
  | Smt.Solver.Violation _ -> ()
  | Smt.Solver.Verified -> Alcotest.fail "missing-check path not flagged"
  | Smt.Solver.Undecided reason -> Alcotest.fail ("unexpected undecided: " ^ reason)

let test_pruning_reduces_recorded_branches () =
  let p = program () in
  let pruned = Concolic.run ~config:(config p) p "test_create_on_live_session" in
  let unpruned =
    Concolic.run
      ~config:{ (config p) with Concolic.prune = false }
      p "test_create_on_live_session"
  in
  Alcotest.(check bool) "recorded <= total" true
    (pruned.Concolic.r_branches_recorded <= pruned.Concolic.r_branches_total);
  Alcotest.(check bool) "pruning records no more than unpruned" true
    (pruned.Concolic.r_branches_recorded <= unpruned.Concolic.r_branches_recorded)

let test_short_circuit_precision () =
  (* when s == null short-circuits the || guard, the closing atom must not
     appear in the recorded fact *)
  let src =
    {|
class Session {
  field closing: bool = false;
  method isClosing(): bool { return this.closing; }
}
class P {
  method check(s: Session): bool {
    if (s == null || s.isClosing()) {
      return false;
    }
    return true;
  }
}
method test_null() {
  var p: P = new P();
  var n: Session = null;
  var r: bool = p.check(n);
  assert (!r, "null rejected");
}
|}
  in
  let p = Parser.program src in
  (* target: the 'return true;' statement *)
  let target =
    let found = ref None in
    List.iter
      (fun (_, m) ->
        List.iter
          (fun (st : Ast.stmt) ->
            match st.Ast.s with
            | Ast.Return (Some { e = Ast.Bool_lit true; _ }) -> found := Some st.Ast.sid
            | _ -> ())
          (Ast.stmts_of_method m))
      (Ast.methods_of_program p);
    Option.get !found
  in
  let config =
    { Concolic.default_config with Concolic.targets = [ target ]; relevant_roots = [ "Session" ] }
  in
  let r = Concolic.run ~config p "test_null" in
  (* target never reached on the null path; and the recorded facts must not
     mention closing *)
  Alcotest.(check int) "no hits" 0 (List.length r.Concolic.r_hits);
  Alcotest.(check Alcotest.pass) "ran" () ()

let test_decisions_recorded_per_frame () =
  let p = program () in
  let r = run_test_name p "test_create_on_live_session" in
  let h = List.hd r.Concolic.r_hits in
  (* the enclosing frame is createRequest: exactly one if-decision, taken=false *)
  Alcotest.(check int) "one decision" 1 (List.length h.Concolic.h_decisions);
  let _, taken = List.hd h.Concolic.h_decisions in
  Alcotest.(check bool) "guard not taken" false taken

let test_blocking_events () =
  let src =
    {|
class Store {
  field data: map;
  method save() {
    synchronized (this) {
      writeRecord(1);
    }
  }
  method load() {
    readRecord(2);
  }
}
method test_io() {
  var s: Store = new Store();
  s.save();
  s.load();
}
|}
  in
  let p = Parser.program src in
  let r = Concolic.run p "test_io" in
  let events =
    List.map (fun (b : Concolic.blocking_event) -> (b.Concolic.be_op, b.Concolic.be_locks)) r.Concolic.r_blocking
  in
  Alcotest.(check (list (pair string int)))
    "blocking events with lock depth"
    [ ("writeRecord", 1); ("readRecord", 0) ]
    events

let test_concolic_agrees_with_interp () =
  (* both engines classify all tests of the sample identically *)
  let p = program () in
  List.iter
    (fun name ->
      let concrete = Interp.run_test p name in
      let concolic = (Concolic.run p name).Concolic.r_outcome in
      let to_s = function
        | Interp.Passed -> "passed"
        | Interp.Failed _ -> "failed"
        | Interp.Errored _ -> "errored"
      in
      Alcotest.(check string) name (to_s concrete) (to_s concolic))
    (Interp.test_names p)

(* shadows ARE interned terms now: no mirror type, no conversion, and
   equality is physical *)
let test_sym_is_interned_term () =
  let a = Sym.var "Session.closing" in
  let b = Smt.Formula.tvar "Session.closing" in
  Alcotest.(check bool) "Sym.var = Formula.tvar, physically" true (a == b);
  Alcotest.(check string) "same rendering" (Smt.Formula.term_to_string b)
    (Sym.to_string a);
  Alcotest.(check bool) "as_var round-trips" true
    (Sym.as_var a = Some "Session.closing")

let suite =
  [
    ( "symexec.concolic",
      [
        Alcotest.test_case "shadow is the interned term" `Quick
          test_sym_is_interned_term;
        Alcotest.test_case "hit on guarded path" `Quick test_hit_on_guarded_path;
        Alcotest.test_case "no hit when rejected" `Quick test_no_hit_when_rejected;
        Alcotest.test_case "hit on missing-check path" `Quick test_hit_on_missing_check_path;
        Alcotest.test_case "regression fires" `Quick test_buggy_path_executes_on_closing_session;
        Alcotest.test_case "complement check flags missing path" `Quick
          test_complement_check_flags_missing_path;
        Alcotest.test_case "pruning reduces recording" `Quick
          test_pruning_reduces_recorded_branches;
        Alcotest.test_case "short-circuit precision" `Quick test_short_circuit_precision;
        Alcotest.test_case "frame decisions" `Quick test_decisions_recorded_per_frame;
        Alcotest.test_case "blocking events" `Quick test_blocking_events;
        Alcotest.test_case "agrees with concrete interpreter" `Quick
          test_concolic_agrees_with_interp;
      ] );
  ]
