examples/quickstart.ml: Fmt Lisa List Minilang Semantics Smt
