test/test_analysis.ml: Alcotest Analysis Ast Callgraph List Lockscope Minilang Parser Paths Pretty
