(** Minimal JSON parser/printer for the serve protocol.  Recursive
    descent, one value per document; integers stay exact ([Int]), other
    numbers become [Float].  Rendering is compact and deterministic so
    responses are byte-stable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string * int

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let error st msg = raise (Bad (msg, st.pos))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected '%c', got '%c'" c c')
  | None -> error st (Printf.sprintf "expected '%c', got end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected literal %s" word)

(* UTF-8 encode one code point (enough for \uXXXX; surrogate pairs are
   stored as two 3-byte sequences, which round-trips our own output) *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  error st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let cp =
                  try int_of_string ("0x" ^ hex)
                  with _ -> error st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                add_utf8 buf cp
            | _ -> error st (Printf.sprintf "bad escape '\\%c'" c));
            go ())
    | Some c when Char.code c < 0x20 -> error st "control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List (List.rev (v :: acc))
          | _ -> error st "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev (kv :: acc))
          | _ -> error st "expected ',' or '}'"
        in
        fields []
  | Some c -> error st (Printf.sprintf "unexpected '%c'" c)

let parse (s : string) : (t, string) result =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v -> (
      skip_ws st;
      match peek st with
      | None -> Ok v
      | Some c -> Error (Printf.sprintf "trailing garbage '%c' at %d" c st.pos))
  | exception Bad (msg, pos) -> Error (Printf.sprintf "%s at %d" msg pos)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_string (v : t) : string =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (Printf.sprintf "%g" f)
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | List vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let member (key : string) : t -> t option = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_list = function List vs -> Some vs | _ -> None

let string_list (ss : string list) : t = List (List.map (fun s -> Str s) ss)
