(** Concrete interpreter for MiniJava — the "JVM" subject systems run on.

    Maintains a heap, a logical clock, the set of monitors held by
    enclosing [synchronized] blocks, and an event stream delivered through
    an optional hook.  Execution is deterministic and total given finite
    fuel. *)

type event =
  | Ev_stmt of int  (** statement [sid] about to execute *)
  | Ev_call of { qname : string; depth : int }
  | Ev_return of { qname : string; depth : int }
  | Ev_branch of { sid : int; taken : bool; cond_text : string }
  | Ev_lock of { sid : int; addr : int }
  | Ev_unlock of { sid : int; addr : int }
  | Ev_blocking of { sid : int; op : string; locks_held : int list }
  | Ev_throw of { sid : int; payload : string }
  | Ev_output of string

exception Mini_throw of Value.t
(** a MiniJava [throw] that escaped to the host *)

exception Runtime_error of string * Loc.t

exception Out_of_fuel

exception Assertion_failure of string * int
(** message, sid of the failing [assert] *)

type config = {
  fuel : int;  (** maximum number of statements to execute *)
  on_event : (event -> unit) option;
  max_call_depth : int;
}

val default_config : config

type state = {
  program : Ast.program;
  heap : Value.heap;
  mutable clock : int;
  mutable fuel_left : int;
  mutable locks : int list;  (** held monitors, innermost first *)
  mutable depth : int;
  console : Buffer.t;
  logbuf : Buffer.t;
  config : config;
}

val create : ?config:config -> Ast.program -> state

(** Call a top-level function against an existing state (heap and clock
    persist across calls); used by the bounded scenario model checker. *)
val call : state -> string -> Value.t list -> Value.t

(** Run a top-level function in a fresh state; returns the final state and
    the function's value. *)
val run_function :
  ?config:config -> Ast.program -> string -> Value.t list -> state * Value.t

type test_outcome =
  | Passed
  | Failed of string  (** assertion failure *)
  | Errored of string  (** uncaught throw, runtime error, or fuel *)

(** Run a [test_*] function and classify the outcome like a CI job. *)
val run_test : ?config:config -> Ast.program -> string -> test_outcome

(** Names of the program's [test_*] top-level functions. *)
val test_names : Ast.program -> string list
