lib/lisa/compare.mli: Pipeline
