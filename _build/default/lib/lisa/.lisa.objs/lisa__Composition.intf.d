lib/lisa/composition.mli: Mc
