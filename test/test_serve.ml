(* lib/serve: the enforcement daemon.  Wire protocol codecs, the
   bounded fair admission queue, per-tenant circuit breakers, snapshot
   persistence (qcheck round-trip + every corruption shape falling back
   to a clean cold start), and daemon end-to-end properties: warm and
   restart verdicts byte-identical to cold, overload shedding, breaker
   rejection. *)

let isolated f () =
  Lisa.Chaos.reset_shared_state ();
  Fun.protect ~finally:Lisa.Chaos.reset_shared_state f

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lisa-test-serve-%d-%d" (Unix.getpid ()) !n)
    in
    if Sys.file_exists d then
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
    else Unix.mkdir d 0o755;
    d

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_parse_defaults () =
  match Serve.Protocol.parse_request "{\"system\":\"zookeeper\",\"version\":3}" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok r ->
      Alcotest.(check string) "default tenant" "default" r.Serve.Protocol.req_tenant;
      Alcotest.(check string) "default id" "" r.Serve.Protocol.req_id;
      Alcotest.(check bool) "default op is enforce" true
        (r.Serve.Protocol.req_op = Serve.Protocol.Enforce);
      Alcotest.(check int) "default ticket" 0 r.Serve.Protocol.req_ticket;
      Alcotest.(check (option int)) "version" (Some 3) r.Serve.Protocol.req_version

let test_parse_rejects () =
  let bad l =
    match Serve.Protocol.parse_request l with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" l
  in
  bad "not json";
  bad "[1,2]";
  bad "{\"op\":\"launch-missiles\"}";
  bad "{\"id\":\"x\"} trailing"

let test_render_deterministic () =
  let resp =
    Serve.Protocol.Ok_enforce
      {
        id = "r1";
        tenant = "a";
        summary =
          {
            Serve.Protocol.sum_verdict = "violations";
            sum_findings = [ "zk-r1"; "zk-r2" ];
            sum_degraded = [];
            sum_traces = 7;
            sum_rules = 5;
            sum_tiers = [];
          };
        cached = false;
        stats =
          {
            Serve.Protocol.rs_queue_ms = 1.5;
            rs_run_ms = 20.25;
            rs_jobs_run = 5;
            rs_report_hits = 0;
            rs_smt_hits = 3;
            rs_solver_calls = 2;
          };
      }
  in
  Alcotest.(check string)
    "fixed field order, compact"
    "{\"id\":\"r1\",\"tenant\":\"a\",\"status\":\"ok\",\"verdict\":\"violations\",\"findings\":[\"zk-r1\",\"zk-r2\"],\"degraded\":[],\"traces\":7,\"rules\":5,\"cached\":false,\"stats\":{\"queue_ms\":1.5,\"run_ms\":20.25,\"jobs_run\":5,\"report_hits\":0,\"smt_hits\":3,\"solver_calls\":2}}"
    (Serve.Protocol.render_response resp);
  (* round-trip: the rendered response is itself valid Jsonu *)
  match Serve.Jsonu.parse (Serve.Protocol.render_response resp) with
  | Error e -> Alcotest.failf "rendered response is not JSON: %s" e
  | Ok _ -> ()

let test_signature_ignores_timings () =
  let mk ~cached ~queue_ms =
    Serve.Protocol.Ok_enforce
      {
        id = "r1";
        tenant = "a";
        summary =
          {
            Serve.Protocol.sum_verdict = "clean";
            sum_findings = [];
            sum_degraded = [];
            sum_traces = 4;
            sum_rules = 2;
            sum_tiers = [];
          };
        cached;
        stats =
          {
            Serve.Protocol.rs_queue_ms = queue_ms;
            rs_run_ms = 0.;
            rs_jobs_run = 0;
            rs_report_hits = 0;
            rs_smt_hits = 0;
            rs_solver_calls = 0;
          };
      }
  in
  Alcotest.(check string)
    "cached flag and timings excluded from the verdict signature"
    (Serve.Protocol.verdict_signature (mk ~cached:false ~queue_ms:0.))
    (Serve.Protocol.verdict_signature (mk ~cached:true ~queue_ms:99.))

let mk_enforce ?(tiers = []) ~findings () =
  Serve.Protocol.Ok_enforce
    {
      id = "t1";
      tenant = "a";
      summary =
        {
          Serve.Protocol.sum_verdict =
            (if findings = [] then "clean" else "violations");
          sum_findings = findings;
          sum_degraded = [];
          sum_traces = 3;
          sum_rules = 4;
          sum_tiers = tiers;
        };
      cached = false;
      stats =
        {
          Serve.Protocol.rs_queue_ms = 0.5;
          rs_run_ms = 12.;
          rs_jobs_run = 2;
          rs_report_hits = 1;
          rs_smt_hits = 0;
          rs_solver_calls = 1;
        };
    }

(* v2 codec: a tiered enforce response survives render → parse with the
   tiers (and the verdict signature) intact *)
let test_tier_round_trip () =
  let resp =
    mk_enforce
      ~tiers:[ ("zk-r1", "witnessed"); ("zk-r2", "likely-fp") ]
      ~findings:[ "zk-r1"; "zk-r2" ] ()
  in
  let line = Serve.Protocol.render_response resp in
  match Serve.Protocol.parse_response line with
  | Error e -> Alcotest.failf "parse_response failed: %s" e
  | Ok (Serve.Protocol.Ok_enforce { summary = s; _ } as got) ->
      Alcotest.(check (list (pair string string)))
        "tiers round-trip"
        [ ("zk-r1", "witnessed"); ("zk-r2", "likely-fp") ]
        s.Serve.Protocol.sum_tiers;
      Alcotest.(check string) "signature round-trips"
        (Serve.Protocol.verdict_signature resp)
        (Serve.Protocol.verdict_signature got);
      Alcotest.(check string) "re-render is byte-identical" line
        (Serve.Protocol.render_response got)
  | Ok _ -> Alcotest.fail "parsed to the wrong response shape"

(* backward compatibility: a v1 payload (no "tiers") parses with
   [sum_tiers = []], and a tier-less summary renders the v1 byte form *)
let test_tierless_response_parses () =
  let v1_line =
    "{\"id\":\"r1\",\"tenant\":\"a\",\"status\":\"ok\",\"verdict\":\"violations\",\"findings\":[\"zk-r1\"],\"degraded\":[],\"traces\":7,\"rules\":5,\"cached\":true,\"stats\":{\"queue_ms\":1.5,\"run_ms\":0,\"jobs_run\":0,\"report_hits\":0,\"smt_hits\":0,\"solver_calls\":0}}"
  in
  (match Serve.Protocol.parse_response v1_line with
  | Error e -> Alcotest.failf "v1 payload rejected: %s" e
  | Ok (Serve.Protocol.Ok_enforce { summary = s; cached; _ }) ->
      Alcotest.(check (list (pair string string)))
        "tier-less parses with no tiers" [] s.Serve.Protocol.sum_tiers;
      Alcotest.(check (list string))
        "findings intact" [ "zk-r1" ] s.Serve.Protocol.sum_findings;
      Alcotest.(check bool) "cached flag intact" true cached
  | Ok _ -> Alcotest.fail "parsed to the wrong response shape");
  (* and non-enforce responses still parse *)
  List.iter
    (fun r ->
      let line = Serve.Protocol.render_response r in
      match Serve.Protocol.parse_response line with
      | Ok got ->
          Alcotest.(check string)
            ("round-trip " ^ line)
            (Serve.Protocol.verdict_signature r)
            (Serve.Protocol.verdict_signature got)
      | Error e -> Alcotest.failf "%s: %s" line e)
    [
      Serve.Protocol.Ok_ping { id = "p"; tenant = "a" };
      Serve.Protocol.Ok_stats
        { id = "s"; tenant = "a"; fields = [ ("served", 3) ] };
      Serve.Protocol.Ok_saved { id = "v"; tenant = "a"; entries = 2 };
      Serve.Protocol.Ok_shutdown { id = "d"; tenant = "a" };
      Serve.Protocol.Overloaded { id = "o"; tenant = "a"; depth = 9 };
      Serve.Protocol.Rejected
        { id = "j"; tenant = "a"; reason = "breaker_open" };
      Serve.Protocol.Error_resp { id = "e"; tenant = "a"; message = "boom" };
    ]

(* ------------------------------------------------------------------ *)
(* Admission queue                                                     *)
(* ------------------------------------------------------------------ *)

let admit = Alcotest.testable (fun ppf -> function
    | Serve.Queue.Admitted -> Fmt.pf ppf "Admitted"
    | Serve.Queue.Shed d -> Fmt.pf ppf "Shed %d" d)
    ( = )

let test_queue_round_robin () =
  let q = Serve.Queue.create ~depth:16 () in
  List.iter
    (fun (t, x) ->
      Alcotest.(check admit) x Serve.Queue.Admitted (Serve.Queue.push q ~tenant:t x))
    [ ("a", "a1"); ("a", "a2"); ("a", "a3"); ("b", "b1"); ("c", "c1") ];
  let order = List.init 5 (fun _ -> Option.get (Serve.Queue.try_pop q)) in
  Alcotest.(check (list (pair string string)))
    "round-robin across tenants, FIFO within"
    [ ("a", "a1"); ("b", "b1"); ("c", "c1"); ("a", "a2"); ("a", "a3") ]
    order;
  Alcotest.(check (option (pair string string))) "drained" None (Serve.Queue.try_pop q)

let test_queue_sheds_at_depth () =
  let q = Serve.Queue.create ~depth:2 () in
  Alcotest.(check admit) "1 in" Serve.Queue.Admitted (Serve.Queue.push q ~tenant:"a" 1);
  Alcotest.(check admit) "2 in" Serve.Queue.Admitted (Serve.Queue.push q ~tenant:"b" 2);
  Alcotest.(check admit) "3 shed" (Serve.Queue.Shed 2) (Serve.Queue.push q ~tenant:"c" 3);
  Alcotest.(check int) "shed counted" 1 (Serve.Queue.shed_count q);
  ignore (Serve.Queue.try_pop q);
  Alcotest.(check admit) "slot freed" Serve.Queue.Admitted
    (Serve.Queue.push q ~tenant:"c" 4)

let test_queue_close_sheds_and_drains () =
  let q = Serve.Queue.create ~depth:8 () in
  ignore (Serve.Queue.push q ~tenant:"a" 1);
  Serve.Queue.close q;
  Alcotest.(check admit) "push after close sheds" (Serve.Queue.Shed 8)
    (Serve.Queue.push q ~tenant:"a" 2);
  Alcotest.(check (option (pair string int)))
    "closed queue still drains" (Some ("a", 1)) (Serve.Queue.pop q);
  Alcotest.(check (option (pair string int)))
    "then pop returns None, no block" None (Serve.Queue.pop q)

(* ------------------------------------------------------------------ *)
(* Keyed circuit breaker                                               *)
(* ------------------------------------------------------------------ *)

let test_kbreaker_opens_per_key () =
  let b = Resilience.Kbreaker.create ~threshold:2 ~cooldown:2 () in
  Alcotest.(check bool) "closed at start" true (Resilience.Kbreaker.proceed b "a");
  Alcotest.(check bool) "first failure keeps closed" false
    (Resilience.Kbreaker.failure b "a");
  Alcotest.(check bool) "second failure opens" true
    (Resilience.Kbreaker.failure b "a");
  Alcotest.(check bool) "open rejects" false (Resilience.Kbreaker.proceed b "a");
  Alcotest.(check bool) "other tenant unaffected" true
    (Resilience.Kbreaker.proceed b "b");
  Alcotest.(check int) "one trip for a" 1 (Resilience.Kbreaker.trips b "a");
  (* cooldown 2: one more rejected call, then a half-open probe *)
  Alcotest.(check bool) "still open" false (Resilience.Kbreaker.proceed b "a");
  Alcotest.(check bool) "half-open probe allowed" true
    (Resilience.Kbreaker.proceed b "a");
  Resilience.Kbreaker.success b "a";
  Alcotest.(check bool) "probe success closes" true
    (Resilience.Kbreaker.proceed b "a");
  Alcotest.(check (list string)) "keys" [ "a"; "b" ] (Resilience.Kbreaker.keys b)

let test_kbreaker_reopen_on_probe_failure () =
  let b = Resilience.Kbreaker.create ~threshold:1 ~cooldown:1 () in
  Alcotest.(check bool) "opens" true (Resilience.Kbreaker.failure b "t");
  Alcotest.(check bool) "cooldown rejects" false (Resilience.Kbreaker.proceed b "t");
  Alcotest.(check bool) "probe" true (Resilience.Kbreaker.proceed b "t");
  Alcotest.(check bool) "probe failure re-opens" true
    (Resilience.Kbreaker.failure b "t");
  Alcotest.(check bool) "rejected again" false (Resilience.Kbreaker.proceed b "t");
  Alcotest.(check int) "two trips total" 2 (Resilience.Kbreaker.total_trips b)

(* ------------------------------------------------------------------ *)
(* Snapshots: round-trip + corruption tolerance                        *)
(* ------------------------------------------------------------------ *)

let snap_path () = Filename.concat (temp_dir ()) "t.snap"

let prop_snapshot_round_trip =
  QCheck.Test.make ~count:100 ~name:"snapshot save/load round-trips"
    QCheck.(list (pair small_string (list small_int)))
    (fun payload ->
      let path = snap_path () in
      match Serve.Snapshot.save ~path ~kind:"test" payload with
      | Error e -> QCheck.Test.fail_reportf "save failed: %s" e
      | Ok () -> (
          match Serve.Snapshot.load ~path ~kind:"test" with
          | Error e -> QCheck.Test.fail_reportf "load failed: %s" e
          | Ok (got : (string * int list) list) -> got = payload))

(* random formulas through the full persistence pipe: formula → wire →
   marshal → disk → load → wire → formula must land on the *same
   interned node* (physical equality), so restored SMT memo entries are
   indistinguishable from natively-built ones *)
let gen_wire_formula : Smt.Formula.t QCheck.arbitrary =
  let open QCheck in
  let module F = Smt.Formula in
  let term =
    Gen.oneof
      [
        Gen.map F.tvar (Gen.oneofl [ "x"; "y"; "z" ]);
        Gen.map (fun n -> F.tint (n mod 8)) Gen.small_int;
        Gen.map F.tbool Gen.bool;
        Gen.map F.tstr (Gen.oneofl [ "a"; "b" ]);
        Gen.return F.tnull;
      ]
  in
  let rel = Gen.oneofl F.[ Req; Rneq; Rlt; Rle; Rgt; Rge ] in
  let leaf = Gen.map3 (fun r l rh -> F.atom r l rh) rel term term in
  let rec go n =
    if n <= 0 then leaf
    else
      Gen.oneof
        [
          leaf;
          Gen.return F.tru;
          Gen.return F.fls;
          Gen.map F.negate (go (n - 1));
          Gen.map2 (fun a b -> F.conj [ a; b ]) (go (n / 2)) (go (n / 2));
          Gen.map2 (fun a b -> F.disj [ a; b ]) (go (n / 2)) (go (n / 2));
        ]
  in
  make ~print:F.to_string (Gen.sized (fun n -> go (min n 6)))

let prop_wire_snapshot_reinterns =
  QCheck.Test.make ~count:200
    ~name:"formula -> wire -> disk -> formula is physical identity"
    gen_wire_formula
    (fun f ->
      let path = snap_path () in
      let w = Smt.Wire.of_formula f in
      match Serve.Snapshot.save ~path ~kind:"wire" w with
      | Error e -> QCheck.Test.fail_reportf "save failed: %s" e
      | Ok () -> (
          match Serve.Snapshot.load ~path ~kind:"wire" with
          | Error e -> QCheck.Test.fail_reportf "load failed: %s" e
          | Ok (w' : Smt.Wire.wformula) -> Smt.Wire.to_formula w' == f))

let expect_cold what r =
  match r with
  | Ok _ -> Alcotest.failf "%s: loaded instead of cold fallback" what
  | Error (_ : string) -> ()

let test_snapshot_corruption_shapes () =
  let dir = temp_dir () in
  let path = Filename.concat dir "c.snap" in
  let payload = List.init 50 (fun i -> (string_of_int i, i * i)) in
  let save () =
    match Serve.Snapshot.save ~path ~kind:"test" payload with
    | Ok () -> ()
    | Error e -> Alcotest.failf "save failed: %s" e
  in
  let write bytes =
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc
  in
  let load () : ((string * int) list, string) result =
    Serve.Snapshot.load ~path ~kind:"test"
  in
  let reason what expected =
    match load () with
    | Ok _ -> Alcotest.failf "%s: loaded" what
    | Error e -> Alcotest.(check string) what expected e
  in
  expect_cold "missing file"
    (Serve.Snapshot.load ~path:(Filename.concat dir "nope.snap") ~kind:"test"
      : ((string * int) list, string) result);
  (* truncated: keep the header plus half the payload *)
  save ();
  let full = In_channel.with_open_bin path In_channel.input_all in
  let header_end = String.index full '\n' + 1 in
  write (String.sub full 0 (header_end + ((String.length full - header_end) / 2)));
  reason "truncated payload" "truncated payload";
  (* random bytes, no structure at all *)
  write (String.init 200 (fun i -> Char.chr (i * 37 mod 256)));
  expect_cold "random bytes" (load ());
  (* stale format version in an otherwise well-formed header *)
  save ();
  let full = In_channel.with_open_bin path In_channel.input_all in
  let nl = String.index full '\n' in
  (match String.split_on_char ' ' (String.sub full 0 nl) with
  | [ magic; _v; kind; digest; len ] ->
      write
        (Printf.sprintf "%s %d %s %s %s%s" magic
           (Serve.Snapshot.format_version + 1)
           kind digest len
           (String.sub full nl (String.length full - nl)))
  | _ -> Alcotest.fail "unexpected header shape");
  reason "stale version" "version mismatch";
  (* payload bit-flip caught by the digest before Marshal runs *)
  save ();
  let full = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string full in
  let mid = String.index full '\n' + 1 + ((Bytes.length b - header_end) / 2) in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
  write (Bytes.to_string b);
  reason "flipped payload byte" "digest mismatch";
  (* wrong kind *)
  save ();
  expect_cold "kind mismatch"
    (Serve.Snapshot.load ~path ~kind:"other"
      : ((string * int) list, string) result);
  (* and the happy path still works after all that *)
  save ();
  match load () with
  | Ok got -> Alcotest.(check bool) "intact file loads" true (got = payload)
  | Error e -> Alcotest.failf "intact file failed: %s" e

(* ------------------------------------------------------------------ *)
(* Daemon end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let req_line ?(tenant = "t") ?(id = "r") ?(system = "zookeeper") version =
  Printf.sprintf
    "{\"id\":%S,\"tenant\":%S,\"op\":\"enforce\",\"system\":%S,\"version\":%d}"
    id tenant system version

let signature d line =
  Serve.Protocol.verdict_signature (Serve.Daemon.handle_line d line)

let test_daemon_warm_restart_byte_identical () =
  let dir = temp_dir () in
  let config =
    { Serve.Daemon.default_config with Serve.Daemon.cache_dir = Some dir }
  in
  let lines = [ req_line ~id:"v1" 1; req_line ~id:"v5" 5 ] in
  let d1 = Serve.Daemon.create ~config () in
  let cold = List.map (signature d1) lines in
  let warm = List.map (signature d1) lines in
  Alcotest.(check (list string)) "warm verdicts byte-identical" cold warm;
  Alcotest.(check bool) "warm pass hit the response cache" true
    (List.assoc "cache_hits" (Serve.Daemon.counters d1) >= 2);
  Alcotest.(check bool) "snapshots written" true (Serve.Daemon.save d1 > 0);
  let d2 = Serve.Daemon.create ~config () in
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s warm-started (%s)" k v)
        true
        (String.length v >= 4 && String.sub v 0 4 = "warm"))
    (Serve.Daemon.warm_report d2);
  let restart = List.map (signature d2) lines in
  Alcotest.(check (list string)) "restart verdicts byte-identical" cold restart;
  Alcotest.(check bool) "restart served from persisted cache" true
    (List.assoc "cache_hits" (Serve.Daemon.counters d2) >= 2)

let test_daemon_corrupt_snapshot_cold_start () =
  let dir = temp_dir () in
  let config =
    { Serve.Daemon.default_config with Serve.Daemon.cache_dir = Some dir }
  in
  let line = req_line ~id:"v1" 1 in
  let d1 = Serve.Daemon.create ~config () in
  let cold = signature d1 line in
  ignore (Serve.Daemon.save d1);
  (* stomp both snapshots with garbage *)
  List.iter
    (fun f ->
      let oc = open_out_bin (Filename.concat dir f) in
      output_string oc "LISA-SNAP but then garbage\nxxxx";
      close_out oc)
    [ "responses.snap"; "smt.snap" ];
  let d2 = Serve.Daemon.create ~config () in
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s fell back cold (%s)" k v)
        true
        (String.length v >= 4 && String.sub v 0 4 = "cold"))
    (Serve.Daemon.warm_report d2);
  Alcotest.(check string) "cold fallback still serves, same verdict" cold
    (signature d2 line);
  Alcotest.(check int) "nothing pre-cached after corruption" 0
    (List.assoc "cache_hits" (Serve.Daemon.counters d2))

(* a violating release gets a tier per violating rule; a triage-off
   daemon answers the same request with the v1 tier-less summary *)
let test_daemon_tiers_on_findings () =
  let line = req_line ~id:"v2" 2 in
  let d = Serve.Daemon.create () in
  (match Serve.Daemon.handle_line d line with
  | Serve.Protocol.Ok_enforce { summary = s; _ } ->
      Alcotest.(check string) "violations" "violations" s.Serve.Protocol.sum_verdict;
      Alcotest.(check int) "one tier per violating rule"
        (List.length s.Serve.Protocol.sum_findings)
        (List.length s.Serve.Protocol.sum_tiers);
      List.iter
        (fun (id, t) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s=%s is a known tier" id t)
            true
            (List.mem t [ "witnessed"; "consistent"; "likely-fp" ]))
        s.Serve.Protocol.sum_tiers
  | _ -> Alcotest.fail "expected an enforce response");
  let off =
    Serve.Daemon.create
      ~config:{ Serve.Daemon.default_config with Serve.Daemon.triage = None }
      ()
  in
  match Serve.Daemon.handle_line off line with
  | Serve.Protocol.Ok_enforce { summary = s; _ } ->
      Alcotest.(check (list (pair string string)))
        "triage off: no tiers" [] s.Serve.Protocol.sum_tiers
  | _ -> Alcotest.fail "expected an enforce response"

let test_daemon_breaker_rejects_failing_tenant () =
  let config =
    {
      Serve.Daemon.default_config with
      Serve.Daemon.breaker_threshold = 2;
      breaker_cooldown = 3;
    }
  in
  let d = Serve.Daemon.create ~config () in
  let bad = req_line ~tenant:"bad" ~system:"no-such-system" 1 in
  let status l =
    match Serve.Daemon.handle_line d l with
    | Serve.Protocol.Error_resp _ -> "error"
    | Serve.Protocol.Rejected { reason; _ } -> "rejected:" ^ reason
    | Serve.Protocol.Ok_enforce _ -> "ok"
    | _ -> "other"
  in
  Alcotest.(check string) "failure 1" "error" (status bad);
  Alcotest.(check string) "failure 2 opens the breaker" "error" (status bad);
  Alcotest.(check string) "open breaker rejects before running"
    "rejected:breaker_open" (status bad);
  Alcotest.(check string) "other tenant unaffected" "ok"
    (status (req_line ~tenant:"good" 1))

let test_daemon_channels_overload_and_drain () =
  (* depth 1, three requests, drain-after-eof: request 1 admitted,
     2 and 3 deterministically shed, everything answered, clean exit *)
  let dir = temp_dir () in
  let input = Filename.concat dir "in.jsonl" in
  let output = Filename.concat dir "out.jsonl" in
  Out_channel.with_open_bin input (fun oc ->
      List.iter
        (fun l -> output_string oc (l ^ "\n"))
        [ req_line ~id:"q1" 1; req_line ~id:"q2" 5; req_line ~id:"q3" 3 ]);
  let config =
    {
      Serve.Daemon.default_config with
      Serve.Daemon.queue_depth = 1;
      drain_after_eof = true;
    }
  in
  let d = Serve.Daemon.create ~config () in
  In_channel.with_open_bin input (fun ic ->
      Out_channel.with_open_bin output (fun oc ->
          Serve.Daemon.serve_channels d ic oc));
  let lines = In_channel.with_open_bin output In_channel.input_lines in
  let statuses =
    List.map
      (fun l ->
        match Serve.Jsonu.parse l with
        | Ok obj ->
            ( Option.get
                (Option.bind (Serve.Jsonu.member "id" obj) Serve.Jsonu.to_str),
              Option.get
                (Option.bind (Serve.Jsonu.member "status" obj)
                   Serve.Jsonu.to_str) )
        | Error e -> Alcotest.failf "bad response line %S: %s" l e)
      lines
  in
  let status_of id = List.assoc id statuses in
  Alcotest.(check int) "every request answered" 3 (List.length statuses);
  Alcotest.(check string) "q1 served" "ok" (status_of "q1");
  Alcotest.(check string) "q2 shed" "overloaded" (status_of "q2");
  Alcotest.(check string) "q3 shed" "overloaded" (status_of "q3");
  Alcotest.(check int) "daemon counted the sheds" 2
    (List.assoc "shed" (Serve.Daemon.counters d))

let suite =
  [
    ( "serve.protocol",
      [
        Alcotest.test_case "parse fills defaults" `Quick test_parse_defaults;
        Alcotest.test_case "parse rejects malformed requests" `Quick
          test_parse_rejects;
        Alcotest.test_case "render is deterministic" `Quick
          test_render_deterministic;
        Alcotest.test_case "verdict signature ignores timings" `Quick
          test_signature_ignores_timings;
        Alcotest.test_case "tiered summary round-trips (v2)" `Quick
          test_tier_round_trip;
        Alcotest.test_case "tier-less (v1) payloads still parse" `Quick
          test_tierless_response_parses;
      ] );
    ( "serve.queue",
      [
        Alcotest.test_case "round-robin fairness" `Quick test_queue_round_robin;
        Alcotest.test_case "sheds at depth, never blocks" `Quick
          test_queue_sheds_at_depth;
        Alcotest.test_case "close sheds pushes, drains pops" `Quick
          test_queue_close_sheds_and_drains;
      ] );
    ( "serve.kbreaker",
      [
        Alcotest.test_case "opens per key, half-open probe" `Quick
          test_kbreaker_opens_per_key;
        Alcotest.test_case "probe failure re-opens" `Quick
          test_kbreaker_reopen_on_probe_failure;
      ] );
    ( "serve.snapshot",
      [
        QCheck_alcotest.to_alcotest prop_snapshot_round_trip;
        QCheck_alcotest.to_alcotest prop_wire_snapshot_reinterns;
        Alcotest.test_case "every corruption shape starts cold" `Quick
          test_snapshot_corruption_shapes;
      ] );
    ( "serve.daemon",
      [
        Alcotest.test_case "warm and restart verdicts byte-identical" `Slow
          (isolated test_daemon_warm_restart_byte_identical);
        Alcotest.test_case "corrupt snapshots fall back to cold start" `Slow
          (isolated test_daemon_corrupt_snapshot_cold_start);
        Alcotest.test_case "findings carry triage tiers; off renders v1" `Slow
          (isolated test_daemon_tiers_on_findings);
        Alcotest.test_case "breaker rejects a failing tenant" `Slow
          (isolated test_daemon_breaker_rejects_failing_tenant);
        Alcotest.test_case "channel server sheds deterministically" `Slow
          (isolated test_daemon_channels_overload_and_drain);
      ] );
  ]
