(** The enforcement engine: job-scheduled, parallel, incremental, cached
    rulebook enforcement.  See [lib/engine/README.md] for the
    architecture (job model, cache keys, invalidation rule).

    Layers, cheapest first, each independently switchable: (1) the
    diff-based incremental pre-pass, (2) the fingerprint-keyed report
    cache, (3) the domain worker pool, (4) the {!Smt.Memo} verdict
    cache.  [jobs = 1] with all layers off reproduces the historic
    serial [Checker.check_book] behaviour exactly. *)

open Minilang

type config = {
  jobs : int;  (** worker domains; 1 = serial on the calling domain *)
  report_cache : bool;
  smt_cache : bool;
  incremental : bool;
  checker : Checker.config;
  max_retries : int;
      (** failed jobs are re-run up to this many times before quarantine *)
  retry_backoff_ms : int;
      (** base backoff before a retry round, doubled per attempt and
          capped at 8x; 0 = retry immediately *)
  job_times_cap : int;
      (** ring capacity for per-job wall times kept in {!Stats} *)
}

(** jobs = 1, all layers on. *)
val default_config : config

(** jobs = 1, all layers off: the historic serial checker; the
    benchmark baseline. *)
val cold_config : config

type t

val create : ?config:config -> unit -> t

val config : t -> config

(** A point-in-time snapshot of the engine's telemetry counters. *)
val stats : t -> Stats.t

val report_cache_size : t -> int

(** Drop all cached state (reports and version memory). *)
val invalidate : t -> unit

(** Enforce a rulebook against a program version.  Reports return in
    rulebook order, identical for every pool width. *)
val enforce :
  t -> Ast.program -> Semantics.Rulebook.t -> Checker.rule_report list

(** The reports that carry violations. *)
val findings : Checker.rule_report list -> Checker.rule_report list

(** Violating rule ids in rulebook order — the stable summary compared
    across engine configurations. *)
val finding_ids : Checker.rule_report list -> string list

(** Rule ids whose reports are degraded (lost evidence), in rulebook
    order.  A clean run returns []. *)
val degraded_ids : Checker.rule_report list -> string list
