(** Bounded multi-tenant fair admission queue.  Per-tenant FIFOs plus a
    rotation of tenants with pending work: [pop] serves the rotation
    head and re-appends it while its FIFO stays non-empty — classic
    round-robin, deterministic for a fixed push sequence. *)

type 'a t = {
  depth : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  fifos : (string, 'a Stdlib.Queue.t) Hashtbl.t;
  rotation : string Stdlib.Queue.t;  (** tenants with pending work, each once *)
  mutable admitted : int;
  mutable shed : int;
  mutable closed : bool;
}

type admit = Admitted | Shed of int

let create ~depth () : 'a t =
  {
    depth = max 1 depth;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    fifos = Hashtbl.create 8;
    rotation = Stdlib.Queue.create ();
    admitted = 0;
    shed = 0;
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | r ->
      Mutex.unlock t.lock;
      r
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let push (t : 'a t) ~(tenant : string) (item : 'a) : admit =
  with_lock t (fun () ->
      if t.closed || t.admitted >= t.depth then begin
        t.shed <- t.shed + 1;
        Shed t.depth
      end
      else begin
        let fifo =
          match Hashtbl.find_opt t.fifos tenant with
          | Some q -> q
          | None ->
              let q = Stdlib.Queue.create () in
              Hashtbl.replace t.fifos tenant q;
              q
        in
        if Stdlib.Queue.is_empty fifo then Stdlib.Queue.push tenant t.rotation;
        Stdlib.Queue.push item fifo;
        t.admitted <- t.admitted + 1;
        Condition.signal t.nonempty;
        Admitted
      end)

let take_locked (t : 'a t) : (string * 'a) option =
  if Stdlib.Queue.is_empty t.rotation then None
  else begin
    let tenant = Stdlib.Queue.pop t.rotation in
    let fifo = Hashtbl.find t.fifos tenant in
    let item = Stdlib.Queue.pop fifo in
    if not (Stdlib.Queue.is_empty fifo) then Stdlib.Queue.push tenant t.rotation;
    t.admitted <- t.admitted - 1;
    Some (tenant, item)
  end

let pop (t : 'a t) : (string * 'a) option =
  with_lock t (fun () ->
      let rec wait () =
        match take_locked t with
        | Some x -> Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.nonempty t.lock;
              wait ()
            end
      in
      wait ())

let try_pop (t : 'a t) : (string * 'a) option =
  with_lock t (fun () -> take_locked t)

let length (t : 'a t) : int = with_lock t (fun () -> t.admitted)

let shed_count (t : 'a t) : int = with_lock t (fun () -> t.shed)

let close (t : 'a t) : unit =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_closed (t : 'a t) : bool = with_lock t (fun () -> t.closed)
