lib/lisa/ablation.ml: Buffer Checker Corpus Fmt List Pipeline Semantics
