(** Rule enforcement — re-exported from the enforcement engine.

    The checker moved to [lib/engine] (see {!Engine.Checker}) when
    enforcement became job-scheduled: the engine needs to prepare,
    fingerprint, and execute checks itself, and it sits below this
    library.  This alias keeps [Lisa.Checker] — and every existing
    caller — working unchanged; the types are the engine's own. *)

include Engine.Checker
