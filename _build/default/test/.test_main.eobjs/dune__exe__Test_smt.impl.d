test/test_smt.ml: Alcotest Astring_contains Formula Gen List QCheck QCheck_alcotest Smt Solver Theory
