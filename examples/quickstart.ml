(* Quickstart: the public API in one file.

   1. write a small "cloud system" in MiniJava;
   2. express a low-level semantic as a contract <P> s <>;
   3. assert it over every path with the concolic checker;
   4. read the verdicts.

   Run with: dune exec examples/quickstart.exe *)

let system =
  {|
class Account {
  field id: int;
  field frozen: bool = false;
  method init(id: int) {
    this.id = id;
  }
  method isFrozen(): bool {
    return this.frozen;
  }
}

class Bank {
  field accounts: map;
  field postings: int = 0;
  method open(a: Account) {
    mapPut(this.accounts, a.id, a);
  }
  method post(a: Account, amount: int) {
    this.postings = this.postings + 1;
  }
  // the guarded path: withdrawals check the frozen flag
  method withdraw(id: int, amount: int) {
    var a: Account = mapGet(this.accounts, id);
    if (a == null || a.isFrozen()) {
      throw "AccountUnavailableException";
    }
    this.post(a, amount);
  }
  // the regressed path: instant transfers skip the check
  method instantTransfer(id: int, amount: int) {
    var a: Account = mapGet(this.accounts, id);
    if (a == null) {
      throw "AccountUnavailableException";
    }
    this.post(a, amount);
  }
}

method test_withdraw_active_account() {
  var b: Bank = new Bank();
  b.open(new Account(1));
  b.withdraw(1, 100);
  assert (b.postings == 1, "withdrawal posted");
}

method test_transfer_active_account() {
  var b: Bank = new Bank();
  b.open(new Account(2));
  b.instantTransfer(2, 50);
  assert (b.postings == 1, "transfer posted");
}
|}

let () =
  (* 1. parse and sanity-check the system *)
  let program = Minilang.Parser.program ~file:"bank.mj" system in
  (match Minilang.Typecheck.check_program program with
  | [] -> ()
  | errs -> failwith (Minilang.Typecheck.errors_to_string errs));

  (* 2. the low-level semantic: nothing may be posted on a frozen (or
        missing) account.  Conditions speak about class-canonical state
        paths: the [Account] root is any account object on the path. *)
  let condition =
    Smt.Formula.conj
      [
        Smt.Formula.neq (Smt.Formula.tvar "Account") Smt.Formula.tnull;
        Smt.Formula.eq (Smt.Formula.tvar "Account.frozen") (Smt.Formula.tbool false);
      ]
  in
  let rule =
    Semantics.Rule.make ~rule_id:"bank.frozen"
      ~description:"no posting may reach a frozen or missing account"
      ~high_level:"frozen accounts reject all money movement"
      ~origin:"quickstart"
      (Semantics.Rule.State_guard
         {
           target = Semantics.Rule.Call_to { callee = "post"; in_method = None };
           condition;
         })
  in
  print_endline ("rule: " ^ Semantics.Rule.to_string rule);

  (* 3. assert it across all paths, driven by the system's own tests *)
  let report = Lisa.Checker.check_rule program rule in
  print_endline ("summary: " ^ Lisa.Checker.report_summary report);

  (* 4. verdicts *)
  List.iter
    (fun (t : Lisa.Checker.trace_verdict) ->
      match t.Lisa.Checker.tv_result with
      | Smt.Solver.Verified ->
          Fmt.pr "VERIFIED  %s (path condition: %s)@." t.Lisa.Checker.tv_method
            (Smt.Formula.to_string t.Lisa.Checker.tv_pc)
      | Smt.Solver.Violation model ->
          Fmt.pr "VIOLATION %s — a reachable state slips past the checks: %s@."
            t.Lisa.Checker.tv_method
            (Smt.Solver.model_to_string model)
      | Smt.Solver.Undecided reason ->
          Fmt.pr "UNDECIDED %s — %s@." t.Lisa.Checker.tv_method reason)
    report.Lisa.Checker.rep_traces;

  (* the withdraw path verifies; instantTransfer misses the frozen check *)
  if report.Lisa.Checker.rep_violations <> [] then
    print_endline "\nquickstart: LISA found the missing check before production did.";

  (* 5. and it can propose the fix: synthesize the guard, verify it *)
  match Lisa.Fix.propose program rule ~method_:"Bank.instantTransfer" with
  | None -> print_endline "no fix synthesized"
  | Some prop ->
      let v = Lisa.Fix.verify prop rule in
      Fmt.pr "@.proposed fix (%s):@.%s@."
        (if v.Lisa.Fix.fv_rule_clean && v.Lisa.Fix.fv_tests_green then
           "verified: rule clean, tests green"
         else "NOT verified")
        prop.Lisa.Fix.fp_diff
