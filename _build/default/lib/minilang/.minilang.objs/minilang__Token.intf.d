lib/minilang/token.mli: Format
