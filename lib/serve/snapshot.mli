(** Versioned, digest-checked cache snapshots on disk.

    File layout: one ASCII header line
    ["LISA-SNAP <format-version> <kind> <md5-hex> <payload-bytes>\n"]
    followed by the marshalled payload.  The loader is corruption
    tolerant by construction: a missing file, truncated payload, bad
    magic, stale format version, wrong kind, or digest mismatch all
    yield [Error reason] — the daemon logs the reason and starts cold;
    nothing ever raises out of {!load}.

    Payloads must be process-neutral data (strings, ints, the
    {!Smt.Wire} forms) — never hash-consed values; see [Smt.Wire].
    Writes go through a temp file + rename, so a crash mid-save leaves
    the previous snapshot intact. *)

(** Bumped on any payload-format change; older files load as cold. *)
val format_version : int

(** [save ~path ~kind payload]: [Error msg] on I/O failure. *)
val save : path:string -> kind:string -> 'a -> (unit, string) result

(** [load ~path ~kind]: the payload, or the cold-start reason
    ("missing", "truncated payload", "version mismatch", ...). *)
val load : path:string -> kind:string -> ('a, string) result
