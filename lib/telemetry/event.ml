(** Structured telemetry events: the single funnel behind [Lisa.Log]
    and [Resilience.Events].  An event is (severity, scope, message);
    scopes are cached per name and own a [Logs] source, so existing
    [Logs] level control ("-v", [Logs.Src.set_level]) keeps working.

    Emission is lazy: the message thunk is only forced when somebody
    wants the event — the scope's [Logs] level admits the severity, the
    tracer is recording, or a test sink is installed. *)

type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let logs_level = function
  | Debug -> Logs.Debug
  | Info -> Logs.Info
  | Warn -> Logs.Warning
  | Error -> Logs.Error

(* higher = chattier *)
let rank = function
  | Logs.App -> 0
  | Logs.Error -> 1
  | Logs.Warning -> 2
  | Logs.Info -> 3
  | Logs.Debug -> 4

type t = { ev_severity : severity; ev_scope : string; ev_message : string }

type scope = {
  sc_name : string;
  sc_src : Logs.src;
  sc_log : (module Logs.LOG);
}

let scopes_lock = Mutex.create ()

let scopes : (string, scope) Hashtbl.t = Hashtbl.create 8

let scope name =
  Mutex.lock scopes_lock;
  let sc =
    match Hashtbl.find_opt scopes name with
    | Some sc -> sc
    | None ->
        let src = Logs.Src.create name ~doc:(name ^ " telemetry scope") in
        let sc = { sc_name = name; sc_src = src; sc_log = Logs.src_log src } in
        Hashtbl.replace scopes name sc;
        sc
  in
  Mutex.unlock scopes_lock;
  sc

let name sc = sc.sc_name

let logs_src sc = sc.sc_src

let sink : (t -> unit) option Atomic.t = Atomic.make None

let set_sink f = Atomic.set sink (Some f)

let reset_sink () = Atomic.set sink None

(** Would an event at [sev] on [sc] go anywhere right now?  Used to
    skip message formatting entirely on the fast path. *)
let wants sc sev =
  Atomic.get sink <> None
  || Trace.enabled ()
  || (match Logs.Src.level sc.sc_src with
     | None -> false
     | Some l -> rank l >= rank (logs_level sev))

let emit sc sev (thunk : unit -> string) =
  if wants sc sev then begin
    let msg = thunk () in
    if Trace.enabled () then
      Trace.instant ~cat:"event"
        ~args:
          [ ("severity", severity_to_string sev); ("message", msg) ]
        sc.sc_name;
    match Atomic.get sink with
    | Some f -> f { ev_severity = sev; ev_scope = sc.sc_name; ev_message = msg }
    | None ->
        let (module L : Logs.LOG) = sc.sc_log in
        (match sev with
        | Debug -> L.debug (fun m -> m "%s" msg)
        | Info -> L.info (fun m -> m "%s" msg)
        | Warn -> L.warn (fun m -> m "%s" msg)
        | Error -> L.err (fun m -> m "%s" msg))
  end
