lib/lisa/checker.mli: Minilang Semantics Smt
