lib/lisa/fix.ml: Ast Buffer Checker Corpus Diffing Fmt Fun Interp List Minilang Option Pipeline Pretty Printf Semantics Smt String
