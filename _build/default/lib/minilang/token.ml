(** Lexical tokens of MiniJava.

    The token set is deliberately Java-flavoured: the subject systems in
    [lib/corpus] are transliterations of real ZooKeeper / HBase / HDFS /
    Cassandra code, and keeping the surface syntax close to Java keeps the
    corpus readable next to the original tickets. *)

type t =
  | INT of int
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_CLASS
  | KW_FIELD
  | KW_METHOD
  | KW_VAR
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_THROW
  | KW_TRY
  | KW_CATCH
  | KW_SYNCHRONIZED
  | KW_ASSERT
  | KW_BREAK
  | KW_CONTINUE
  | KW_NEW
  | KW_THIS
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  (* type keywords *)
  | KW_INT
  | KW_BOOL
  | KW_STR
  | KW_MAP
  | KW_LIST
  | KW_VOID
  | KW_ANY
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOT
  | ASSIGN (* = *)
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ (* == *)
  | NEQ (* != *)
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

let keyword_table : (string * t) list =
  [
    ("class", KW_CLASS);
    ("field", KW_FIELD);
    ("method", KW_METHOD);
    ("var", KW_VAR);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("return", KW_RETURN);
    ("throw", KW_THROW);
    ("try", KW_TRY);
    ("catch", KW_CATCH);
    ("synchronized", KW_SYNCHRONIZED);
    ("assert", KW_ASSERT);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("new", KW_NEW);
    ("this", KW_THIS);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
    ("null", KW_NULL);
    ("int", KW_INT);
    ("bool", KW_BOOL);
    ("str", KW_STR);
    ("map", KW_MAP);
    ("list", KW_LIST);
    ("void", KW_VOID);
    ("any", KW_ANY);
  ]

let of_ident s =
  match List.assoc_opt s keyword_table with Some kw -> kw | None -> IDENT s

let to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_CLASS -> "class"
  | KW_FIELD -> "field"
  | KW_METHOD -> "method"
  | KW_VAR -> "var"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | KW_THROW -> "throw"
  | KW_TRY -> "try"
  | KW_CATCH -> "catch"
  | KW_SYNCHRONIZED -> "synchronized"
  | KW_ASSERT -> "assert"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_NEW -> "new"
  | KW_THIS -> "this"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NULL -> "null"
  | KW_INT -> "int"
  | KW_BOOL -> "bool"
  | KW_STR -> "str"
  | KW_MAP -> "map"
  | KW_LIST -> "list"
  | KW_VOID -> "void"
  | KW_ANY -> "any"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | DOT -> "."
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"

let equal (a : t) (b : t) = a = b

let pp ppf t = Fmt.string ppf (to_string t)
