(** Descriptions of MiniJava builtin functions.

    Only metadata lives here (implementations are in {!Interp}), so static
    analyses can classify calls — in particular {e blocking} operations,
    which lock-discipline rules must recognize without running code. *)

type effect_class =
  | Pure  (** no side effect beyond its result *)
  | Mutating  (** mutates a heap container *)
  | Output  (** writes to the simulated console/log *)
  | Blocking  (** models blocking I/O: disk, network, fsync, sleep *)

type descr = {
  b_name : string;
  b_arity : int;  (** -1 means variadic *)
  b_effect : effect_class;
  b_doc : string;
}

val table : descr list

val find : string -> descr option

val is_builtin : string -> bool

val effect_of : string -> effect_class option

val is_blocking : string -> bool

val blocking_names : string list

val arity_of : string -> int option
