(** Logging façade for the LISA pipeline: a severity layer over the
    [Telemetry.Event] scope "lisa".  Formatting is lazy — suppressed
    messages are never rendered.  Consumers install a {!Logs} reporter
    and set the level; the library only emits.  Loading this module
    reroutes {!Resilience.Events} into this scope (faults and retries as
    warnings, quarantine and opened breakers as errors). *)

val src : Logs.src

(** The underlying telemetry scope, for direct [Telemetry.Event.emit]. *)
val scope : Telemetry.Event.scope

val info : ('a, Format.formatter, unit, unit) format4 -> 'a

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a

val warn : ('a, Format.formatter, unit, unit) format4 -> 'a

val err : ('a, Format.formatter, unit, unit) format4 -> 'a

(** Route resilience events through this log source (done once at module
    load; exposed so a consumer can re-install after swapping sinks). *)
val install_resilience_sink : unit -> unit
