(** Logging façade for the LISA pipeline.

    A thin severity layer over the [Telemetry.Event] scope "lisa":
    formatting is deferred into the event thunk ([Format.kdprintf]), so
    a suppressed message costs a closure, not a render.  Consumers (the
    CLI's [-v], tests, or a host application) install a {!Logs} reporter
    and set the level as before; the source is the scope's.

    Loading this module also reroutes the resilience event bus
    ({!Resilience.Events}) into this scope, so retry, quarantine, and
    circuit-breaker events land in the same stream as the pipeline's own
    logs: warnings for recoverable faults, errors for quarantine and
    opened breakers. *)

let scope = Telemetry.Event.scope "lisa"

let src = Telemetry.Event.logs_src scope

let emitk sev fmt =
  Format.kdprintf
    (fun pp ->
      Telemetry.Event.emit scope sev (fun () -> Format.asprintf "%t" pp))
    fmt

let info fmt = emitk Telemetry.Event.Info fmt

let debug fmt = emitk Telemetry.Event.Debug fmt

let warn fmt = emitk Telemetry.Event.Warn fmt

let err fmt = emitk Telemetry.Event.Error fmt

(* The engine layers cannot depend on lisa, so they publish resilience
   events through a swappable sink; we claim it here. *)
let install_resilience_sink () =
  Resilience.Events.set_sink (fun ev ->
      let sev =
        match Resilience.Events.severity ev with
        | Resilience.Events.Error -> Telemetry.Event.Error
        | Resilience.Events.Warn -> Telemetry.Event.Warn
      in
      Telemetry.Event.emit scope sev (fun () ->
          Resilience.Events.to_string ev))

let () = install_resilience_sink ()
