(** Generic mutex-protected memo cache with hit/miss counters and
    bounded epoch eviction (clear-on-overflow).  Safe to share across the
    engine's worker domains. *)

type ('k, 'v) t

val create : ?capacity:int -> name:string -> unit -> ('k, 'v) t

val name : ('k, 'v) t -> string

(** Counted lookup: bumps the hit or miss counter. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Uncounted lookup. *)
val peek : ('k, 'v) t -> 'k -> 'v option

val add : ('k, 'v) t -> 'k -> 'v -> unit

(** Counted lookup, computing and storing on a miss ([compute] runs
    outside the lock). *)
val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val size : ('k, 'v) t -> int

(** Clear entries and counters. *)
val reset : ('k, 'v) t -> unit
