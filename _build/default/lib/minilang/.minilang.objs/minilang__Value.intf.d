lib/minilang/value.mli: Format Hashtbl
