(* Fault tolerance (lib/resilience + engine wiring): per-slot pool error
   collection, solver node budgets, non-caching of Unknown verdicts,
   deterministic fault plans, circuit breakers, checker degradation,
   engine quarantine determinism, and the bit-for-bit no-fault pin
   against the pre-resilience pipeline. *)

open Smt

(* every test starts and ends on clean global state: injector disarmed
   and rewound, breakers closed, SMT verdict cache empty *)
let isolated f () =
  Lisa.Chaos.reset_shared_state ();
  Fun.protect ~finally:Lisa.Chaos.reset_shared_state f

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Pool: per-slot error collection                                     *)
(* ------------------------------------------------------------------ *)

(* comparable projection of a result slot *)
let slot = function
  | Ok v -> "ok:" ^ string_of_int v
  | Error (Failure m) -> "err:" ^ m
  | Error e -> "err:" ^ Printexc.to_string e

let test_pool_collects_every_error () =
  let f x = if x mod 2 = 0 then failwith (Fmt.str "boom%d" x) else x * 10 in
  let items = Array.init 10 (fun i -> i) in
  let serial = Array.map slot (Engine.Pool.map_results ~jobs:1 f items) in
  let parallel = Array.map slot (Engine.Pool.map_results ~jobs:4 f items) in
  Alcotest.(check (array string))
    "every failed slot keeps its own error, at any pool width" serial parallel;
  Alcotest.(check string) "slot 4 error" "err:boom4" serial.(4);
  Alcotest.(check string) "slot 7 value" "ok:70" serial.(7);
  Alcotest.(check int) "five failures collected" 5
    (List.length (Engine.Pool.failures (Engine.Pool.map_results ~jobs:4 f items)))

let test_pool_crash_mid_drain () =
  (* one worker dies mid-drain: the other slots still all compute *)
  let f x = if x = 25 then failwith "crash" else x in
  let results =
    Engine.Pool.map_results ~jobs:4 f (Array.init 50 (fun i -> i))
  in
  let oks = Array.to_list results |> List.filter Result.is_ok in
  Alcotest.(check int) "49 slots survive the crash" 49 (List.length oks);
  (match Engine.Pool.failures results with
  | [ (25, Failure m) ] -> Alcotest.(check string) "error text" "crash" m
  | fs -> Alcotest.fail (Fmt.str "expected slot 25 only, got %d" (List.length fs)))

let test_pool_map_raises_first_by_index () =
  (* the raising wrapper stays deterministic: first error by input slot,
     not by completion order *)
  let f x = if x = 3 || x = 7 then failwith (Fmt.str "err%d" x) else x in
  List.iter
    (fun jobs ->
      match Engine.Pool.map ~jobs f (Array.init 10 (fun i -> i)) with
      | exception Failure m ->
          Alcotest.(check string) (Fmt.str "jobs=%d" jobs) "err3" m
      | _ -> Alcotest.fail "expected the first error")
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Solver: node budget and Unknown                                     *)
(* ------------------------------------------------------------------ *)

(* two independent atoms: satisfiable, but the search needs several
   nodes, so a tiny budget must answer Unknown instead *)
let two_atom_f =
  Formula.conj
    [
      Formula.eq (Formula.tvar "bx") (Formula.tint 1);
      Formula.eq (Formula.tvar "by") (Formula.tint 2);
    ]

let test_solver_budget_unknown () =
  (match Solver.solve ~node_budget:1 two_atom_f with
  | Solver.Unknown reason ->
      Alcotest.(check bool) "reason names the budget" true
        (contains reason "budget")
  | Solver.Sat _ | Solver.Unsat -> Alcotest.fail "budget 1 must not decide");
  match Solver.solve two_atom_f with
  | Solver.Sat _ -> ()
  | Solver.Unsat | Solver.Unknown _ ->
      Alcotest.fail "default budget must decide Sat"

let test_solver_budget_boundary () =
  (* probe the minimal deciding budget k: k-1 must answer Unknown *)
  let decided b =
    match Solver.solve ~node_budget:b two_atom_f with
    | Solver.Sat _ | Solver.Unsat -> true
    | Solver.Unknown _ -> false
  in
  let rec minimal b =
    if b > 10_000 then Alcotest.fail "no deciding budget under 10k nodes"
    else if decided b then b
    else minimal (b + 1)
  in
  let k = minimal 1 in
  Alcotest.(check bool) "search needs more than one node" true (k > 1);
  Alcotest.(check bool) "k-1 is Unknown" false (decided (k - 1));
  Alcotest.(check bool) "k decides" true (decided k)

let test_unknown_is_not_unsat () =
  (* Unknown must be conservative: neither sat nor unsat *)
  Lisa.Chaos.reset_shared_state ();
  Resilience.Injector.arm
    (Resilience.Plan.make ~points:[ Resilience.Fault.Solver ]
       ~kinds:[ Resilience.Fault.Budget ] ~seed:7 ~rate:1.0 ());
  Alcotest.(check bool) "not unsat under injection" false
    (Solver.is_unsat Formula.fls);
  Alcotest.(check bool) "not sat under injection" false (Solver.is_sat Formula.tru)

let test_memo_never_caches_unknown () =
  let was = Memo.enabled () in
  Fun.protect ~finally:(fun () -> Memo.set_enabled was) @@ fun () ->
  Memo.set_enabled true;
  Memo.reset ();
  Resilience.Injector.arm
    (Resilience.Plan.make ~points:[ Resilience.Fault.Solver ]
       ~kinds:[ Resilience.Fault.Budget ] ~seed:7 ~rate:1.0 ());
  (match Memo.solve two_atom_f with
  | Solver.Unknown _ -> ()
  | _ -> Alcotest.fail "rate-1.0 budget plan must yield Unknown");
  Alcotest.(check int) "Unknown not stored" 0 (Memo.size ());
  Resilience.Injector.disarm ();
  (match Memo.solve two_atom_f with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "healthy solver decides Sat");
  Alcotest.(check int) "real verdict stored" 1 (Memo.size ())

let test_theory_memo_halving () =
  let size0 = Solver.theory_memo_size () in
  Solver.set_theory_memo_max 8;
  Fun.protect ~finally:(fun () -> Solver.set_theory_memo_max (1 lsl 16))
  @@ fun () ->
  (* distinct variable pairs populate distinct theory-memo entries *)
  for i = 0 to 63 do
    ignore
      (Solver.solve
         (Formula.conj
            [
              Formula.eq (Formula.tvar (Fmt.str "tm_a%d" i)) (Formula.tint 1);
              Formula.eq (Formula.tvar (Fmt.str "tm_b%d" i)) (Formula.tint 2);
            ]))
  done;
  let size = Solver.theory_memo_size () in
  Alcotest.(check bool)
    (Fmt.str "size %d stays bounded by the max" size)
    true (size <= 8);
  (* halving keeps half the entries instead of clearing wholesale *)
  Alcotest.(check bool)
    (Fmt.str "size %d retains at least half the bound (started at %d)" size size0)
    true
    (size >= 4)

(* ------------------------------------------------------------------ *)
(* Plans, injector, breaker                                            *)
(* ------------------------------------------------------------------ *)

let draw_sequence plan point n =
  List.init n (fun i -> Resilience.Plan.decide plan point i)

let test_plan_deterministic () =
  let mk () = Resilience.Plan.make ~seed:42 ~rate:0.3 () in
  List.iter
    (fun point ->
      Alcotest.(check bool)
        "same seed, same fault sequence" true
        (draw_sequence (mk ()) point 100 = draw_sequence (mk ()) point 100))
    Resilience.Fault.all_points;
  let other = Resilience.Plan.make ~seed:43 ~rate:0.3 () in
  Alcotest.(check bool)
    "different seed, different sequence" false
    (List.for_all
       (fun point ->
         draw_sequence (mk ()) point 100 = draw_sequence other point 100)
       Resilience.Fault.all_points)

let test_injector_replays_after_reset () =
  let plan = Resilience.Plan.make ~seed:11 ~rate:0.5 () in
  Resilience.Injector.arm plan;
  let seq () =
    List.init 20 (fun _ -> Resilience.Injector.draw Resilience.Fault.Solver)
  in
  let first = seq () in
  Resilience.Injector.reset ();
  let second = seq () in
  Alcotest.(check bool) "reset rewinds the counters" true (first = second);
  Alcotest.(check bool) "rate 0.5 fires something in 20 draws" true
    (List.exists Option.is_some first)

let test_breaker_opens_and_recovers () =
  let point = Resilience.Fault.Oracle in
  Resilience.Breaker.configure ~threshold:3 ~cooldown:2 ();
  Fun.protect
    ~finally:(fun () -> Resilience.Breaker.configure ~threshold:5 ~cooldown:20 ())
  @@ fun () ->
  Alcotest.(check bool) "starts closed" true (Resilience.Breaker.proceed point);
  for _ = 1 to 3 do
    Resilience.Breaker.failure point
  done;
  Alcotest.(check bool) "open after threshold" true (Resilience.Breaker.is_open point);
  Alcotest.(check bool) "cooldown call 1 skipped" false (Resilience.Breaker.proceed point);
  Alcotest.(check bool) "cooldown call 2 skipped" false (Resilience.Breaker.proceed point);
  Alcotest.(check bool) "half-open probe allowed" true (Resilience.Breaker.proceed point);
  Resilience.Breaker.success point;
  Alcotest.(check bool) "probe success closes" false (Resilience.Breaker.is_open point);
  Alcotest.(check int) "one trip recorded" 1 (Resilience.Breaker.trips point)

(* ------------------------------------------------------------------ *)
(* Checker degradation and engine quarantine                           *)
(* ------------------------------------------------------------------ *)

let zk_case () =
  match Corpus.Registry.find_case "zk-ephemeral" with
  | Some c -> c
  | None -> Alcotest.fail "zk-ephemeral case missing"

let learn_zk () =
  let outcome = Lisa.Pipeline.learn (Corpus.Case.original_ticket (zk_case ())) in
  match outcome.Lisa.Pipeline.accepted with
  | [] -> Alcotest.fail "learning must accept a rule"
  | rules -> rules

let test_checker_degrades_under_solver_budget () =
  let rules = learn_zk () in
  let p = Corpus.Case.program_at (zk_case ()) 2 in
  let prepared = List.map (Engine.Checker.prepare p) rules in
  Lisa.Chaos.reset_shared_state ();
  Resilience.Injector.arm
    (Resilience.Plan.make ~points:[ Resilience.Fault.Solver ]
       ~kinds:[ Resilience.Fault.Budget ] ~seed:3 ~rate:1.0 ());
  let reports = List.map (Engine.Checker.execute p) prepared in
  List.iter
    (fun (r : Engine.Checker.rule_report) ->
      Alcotest.(check bool) "report is degraded" true (Engine.Checker.is_degraded r);
      Alcotest.(check bool) "undecided traces recorded" true
        (r.Engine.Checker.rep_undecided <> []);
      Alcotest.(check int) "no violations invented" 0
        (List.length r.Engine.Checker.rep_violations);
      Alcotest.(check bool) "summary surfaces the degradation" true
        (contains (Engine.Checker.report_summary r) "degraded="))
    reports

let quarantine_run rules =
  Lisa.Chaos.reset_shared_state ();
  Resilience.Injector.arm
    (Resilience.Plan.make ~points:[ Resilience.Fault.Concolic ]
       ~kinds:[ Resilience.Fault.Crash ] ~seed:5 ~rate:1.0 ());
  let engine =
    Engine.Scheduler.create
      ~config:
        { Engine.Scheduler.default_config with jobs = 1; retry_backoff_ms = 0 }
      ()
  in
  let book = Semantics.Rulebook.of_rules ~system:"zookeeper" rules in
  let reports =
    Engine.Scheduler.enforce engine (Corpus.Case.program_at (zk_case ()) 2) book
  in
  let stats = Engine.Scheduler.stats engine in
  ( List.sort compare stats.Engine.Stats.quarantined,
    stats.Engine.Stats.retries,
    List.map Engine.Checker.report_summary reports )

let test_engine_quarantine_deterministic () =
  let rules = learn_zk () in
  let q1, r1, s1 = quarantine_run rules in
  let q2, r2, s2 = quarantine_run rules in
  Alcotest.(check bool) "a rate-1.0 crash plan quarantines" true (q1 <> []);
  Alcotest.(check (list string)) "quarantine set replays" q1 q2;
  Alcotest.(check int) "retry count replays" r1 r2;
  Alcotest.(check (list string)) "summaries replay" s1 s2;
  List.iter
    (fun s ->
      Alcotest.(check bool) "quarantined summary is degraded" true
        (contains s "degraded="))
    s1

let test_quarantined_report_shape () =
  let rule = List.hd (learn_zk ()) in
  let r = Engine.Checker.quarantined_report rule ~reason:"worker crashed" in
  Alcotest.(check bool) "degraded" true (Engine.Checker.is_degraded r);
  Alcotest.(check bool) "never reads verified" false r.Engine.Checker.rep_sanity_ok;
  Alcotest.(check bool) "carries no violations" false (Engine.Checker.has_violations r)

(* ------------------------------------------------------------------ *)
(* No-fault bit-for-bit pin                                            *)
(* ------------------------------------------------------------------ *)

(* Captured from the pre-resilience pipeline (PR base commit):
   `lisa report zk-ephemeral --stage 2` and the corresponding
   report_summary line.  With no plan armed, today's pipeline must
   reproduce both byte for byte. *)
let pinned_summary =
  "ZK-1208.g41.gen: targets=2 static_paths=7 tests=8 traces=6 verified=5 \
   violations=1 uncovered=0 lock_findings=0 sanity=true"

let pinned_report =
  String.concat "\n"
    [
      "# zk-ephemeral stage 2";
      "";
      "**BLOCK** — 1 of 1 rule(s) violated: `ZK-1208.g41.gen`.";
      "";
      "## Rule ZK-1208.g41.gen";
      "";
      "> no execution may reach [calls createEphemeralNode (any method)] \
       unless (Session != null && Session.closing != true)";
      "> protects: No client may create an ephemeral node while its session \
       is in the CLOSING state. (learned from ZK-1208)";
      "";
      "- contract: `[ZK-1208.g41.gen] <(Session != null && Session.closing \
       != true)> calls createEphemeralNode (any method) <>`";
      "- targets: 2, static paths: 7, tests run: 8";
      "- traces: 6 (5 verified, 1 violations); sanity ok";
      "";
      "- **VIOLATION** — `LearnerRequestProcessor.forwardCreate` (driven by \
       `test_eph_learner_forward_create`); the path admits `Session.closing \
       == true && null != Session`";
      "- VERIFIED — `PrepRequestProcessor.pRequest2TxnCreate` (driven by \
       `test_eph_close_removes_nodes`); path condition `(Session != null && \
       Session.closing == false)`";
      "- VERIFIED — `PrepRequestProcessor.pRequest2TxnCreate` (driven by \
       `test_eph_create_on_live_session`); path condition `(Session != null \
       && Session.closing == false)`";
      "- VERIFIED — `PrepRequestProcessor.pRequest2TxnCreate` (driven by \
       `test_eph_owner_lookup`); path condition `(Session != null && \
       Session.closing == false)`";
      "- VERIFIED — `PrepRequestProcessor.pRequest2TxnCreate` (driven by \
       `test_eph_counts_per_session`); path condition `(Session != null && \
       Session.closing == false)`";
      "- VERIFIED — `PrepRequestProcessor.pRequest2TxnCreate` (driven by \
       `test_eph_counts_per_session`); path condition `(Session != null && \
       Session.closing == false)`";
    ]

let test_no_fault_bit_for_bit () =
  let rules = learn_zk () in
  let book = Semantics.Rulebook.of_rules ~system:"zookeeper" rules in
  let reports = Lisa.Pipeline.enforce (Corpus.Case.program_at (zk_case ()) 2) book in
  Alcotest.(check string)
    "report_summary pinned" pinned_summary
    (Engine.Checker.report_summary (List.hd reports));
  Alcotest.(check string)
    "rendered Markdown pinned" pinned_report
    (Lisa.Report.render ~title:"zk-ephemeral stage 2" reports)

(* ------------------------------------------------------------------ *)
(* Events / logging                                                    *)
(* ------------------------------------------------------------------ *)

let test_event_sink_capture () =
  let seen = ref [] in
  Resilience.Events.set_sink (fun e -> seen := e :: !seen);
  Fun.protect ~finally:Lisa.Log.install_resilience_sink @@ fun () ->
  Resilience.Events.emit
    (Resilience.Events.Job_quarantined
       { job = "r1"; attempts = 3; reason = "boom" });
  match !seen with
  | [ (Resilience.Events.Job_quarantined _ as e) ] ->
      Alcotest.(check bool) "quarantine is an error" true
        (Resilience.Events.severity e = Resilience.Events.Error);
      Alcotest.(check bool) "rendering names the job" true
        (contains (Resilience.Events.to_string e) "r1")
  | _ -> Alcotest.fail "sink did not capture the event"

let test_log_err_smoke () =
  (* Log.err must format and not raise, reporter or not *)
  Lisa.Log.err "resilience smoke %d %s" 42 "ok";
  Alcotest.(check pass) "err emits" () ()

(* [set_sink] is an Atomic swap: a domain emitting full-tilt while the
   main domain keeps swapping sinks must never crash, and every event
   must reach exactly one of the installed sinks. *)
let test_set_sink_two_domain_smoke () =
  let delivered = Atomic.make 0 in
  let sink _ = Atomic.incr delivered in
  Resilience.Events.set_sink sink;
  Fun.protect ~finally:Lisa.Log.install_resilience_sink @@ fun () ->
  let n = 1000 in
  let emitter =
    Domain.spawn (fun () ->
        for _ = 1 to n do
          Resilience.Events.emit
            (Resilience.Events.Component_degraded
               { component = "smoke"; reason = "two-domain sink test" })
        done)
  in
  (* churn the sink from the main domain while the emitter runs; every
     candidate sink counts into the same atomic *)
  for _ = 1 to 100 do
    Resilience.Events.set_sink sink
  done;
  Domain.join emitter;
  Alcotest.(check int) "every event hit a sink" n (Atomic.get delivered)

let suite =
  [
    ( "resilience.pool",
      [
        Alcotest.test_case "collects every error per slot" `Quick
          (isolated test_pool_collects_every_error);
        Alcotest.test_case "worker crash mid-drain" `Quick
          (isolated test_pool_crash_mid_drain);
        Alcotest.test_case "map raises first by index" `Quick
          (isolated test_pool_map_raises_first_by_index);
      ] );
    ( "resilience.solver",
      [
        Alcotest.test_case "tiny budget answers Unknown" `Quick
          (isolated test_solver_budget_unknown);
        Alcotest.test_case "budget boundary" `Quick
          (isolated test_solver_budget_boundary);
        Alcotest.test_case "Unknown is conservative" `Quick
          (isolated test_unknown_is_not_unsat);
        Alcotest.test_case "memo never caches Unknown" `Quick
          (isolated test_memo_never_caches_unknown);
        Alcotest.test_case "theory memo halves, not clears" `Quick
          (isolated test_theory_memo_halving);
      ] );
    ( "resilience.injection",
      [
        Alcotest.test_case "plan deterministic per seed" `Quick
          (isolated test_plan_deterministic);
        Alcotest.test_case "injector replays after reset" `Quick
          (isolated test_injector_replays_after_reset);
        Alcotest.test_case "breaker opens and recovers" `Quick
          (isolated test_breaker_opens_and_recovers);
      ] );
    ( "resilience.engine",
      [
        Alcotest.test_case "checker degrades under solver faults" `Quick
          (isolated test_checker_degrades_under_solver_budget);
        Alcotest.test_case "quarantine deterministic" `Quick
          (isolated test_engine_quarantine_deterministic);
        Alcotest.test_case "quarantined report shape" `Quick
          (isolated test_quarantined_report_shape);
        Alcotest.test_case "no-fault run bit-for-bit pinned" `Quick
          (isolated test_no_fault_bit_for_bit);
      ] );
    ( "resilience.events",
      [
        Alcotest.test_case "sink capture and severity" `Quick
          (isolated test_event_sink_capture);
        Alcotest.test_case "Log.err smoke" `Quick (isolated test_log_err_smoke);
        Alcotest.test_case "set_sink two-domain smoke" `Quick
          (isolated test_set_sink_two_domain_smoke);
      ] );
  ]
