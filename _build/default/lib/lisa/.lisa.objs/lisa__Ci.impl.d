lib/lisa/ci.ml: Checker Corpus Fmt List Minilang Oracle Pipeline Semantics String
