lib/minilang/lexer.mli: Loc Token
