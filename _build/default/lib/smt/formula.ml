(** Quantifier-free formulas over implementation-local predicates.

    This is the checker-formula language of the paper (§3.1): low-level
    semantics restrict conditions to conjunctions/disjunctions of
    predicates over concrete state — state relations ([v = c]), null-ness
    ([s != null]), boolean observers ([s.closing == false]) and integer
    bounds ([s.ttl > 0]).  Variables are dotted paths such as
    ["session.closing"]; their types are implicit and enforced by the
    theory layer ({!Theory}). *)

type term =
  | T_var of string  (** a state variable, e.g. ["s.ttl"] *)
  | T_int of int
  | T_bool of bool
  | T_str of string
  | T_null

type rel = Req | Rneq | Rlt | Rle | Rgt | Rge

type atom = { rel : rel; lhs : term; rhs : term }

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t list
  | Or of t list

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let tvar x = T_var x

let tint n = T_int n

let tbool b = T_bool b

let tstr s = T_str s

let tnull = T_null

let atom rel lhs rhs = Atom { rel; lhs; rhs }

let eq a b = atom Req a b

let neq a b = atom Rneq a b

let lt a b = atom Rlt a b

let le a b = atom Rle a b

let gt a b = atom Rgt a b

let ge a b = atom Rge a b

(** Boolean state variable asserted true: [v == true]. *)
let bvar x = eq (tvar x) (tbool true)

let conj = function [] -> True | [ f ] -> f | fs -> And fs

let disj = function [] -> False | [ f ] -> f | fs -> Or fs

let negate f = Not f

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let term_compare (a : term) (b : term) : int = compare a b

let term_equal a b = term_compare a b = 0

let flip_rel = function
  | Req -> Req
  | Rneq -> Rneq
  | Rlt -> Rgt
  | Rle -> Rge
  | Rgt -> Rlt
  | Rge -> Rle

(** Relation satisfied exactly when [rel] is not. *)
let negate_rel = function
  | Req -> Rneq
  | Rneq -> Req
  | Rlt -> Rge
  | Rle -> Rgt
  | Rgt -> Rle
  | Rge -> Rlt

(** Canonical form of an atom: symmetric relations get sorted operands;
    [>] and [>=] are rewritten to [<] / [<=].  Canonicalisation makes atom
    identity meaningful for the DPLL abstraction. *)
let canon_atom (a : atom) : atom =
  let a =
    match a.rel with
    | Rgt -> { rel = Rlt; lhs = a.rhs; rhs = a.lhs }
    | Rge -> { rel = Rle; lhs = a.rhs; rhs = a.lhs }
    | Req | Rneq | Rlt | Rle -> a
  in
  match a.rel with
  | (Req | Rneq) when term_compare a.lhs a.rhs > 0 -> { a with lhs = a.rhs; rhs = a.lhs }
  | Req | Rneq | Rlt | Rle | Rgt | Rge -> a

let atom_equal a b = canon_atom a = canon_atom b

(** All distinct canonical atoms of a formula, in first-occurrence order. *)
let atoms (f : t) : atom list =
  let acc = ref [] in
  let add a =
    let c = canon_atom a in
    if not (List.exists (fun x -> x = c) !acc) then acc := c :: !acc
  in
  let rec go = function
    | True | False -> ()
    | Atom a -> add a
    | Not f -> go f
    | And fs | Or fs -> List.iter go fs
  in
  go f;
  List.rev !acc

(** Free state variables of a formula. *)
let variables (f : t) : string list =
  let acc = ref [] in
  let add_term = function
    | T_var x -> if not (List.mem x !acc) then acc := x :: !acc
    | T_int _ | T_bool _ | T_str _ | T_null -> ()
  in
  List.iter
    (fun a ->
      add_term a.lhs;
      add_term a.rhs)
    (atoms f);
  List.rev !acc

let rec size = function
  | True | False -> 1
  | Atom _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> List.fold_left (fun n f -> n + size f) 1 fs

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** Concrete values for ground evaluation (used by tests to cross-check the
    solver against brute-force enumeration). *)
type value = V_int of int | V_bool of bool | V_str of string | V_null

let value_of_term (env : (string * value) list) : term -> value option = function
  | T_var x -> List.assoc_opt x env
  | T_int n -> Some (V_int n)
  | T_bool b -> Some (V_bool b)
  | T_str s -> Some (V_str s)
  | T_null -> Some V_null

let eval_atom (env : (string * value) list) (a : atom) : bool option =
  match (value_of_term env a.lhs, value_of_term env a.rhs) with
  | Some l, Some r -> (
      match a.rel with
      | Req -> Some (l = r)
      | Rneq -> Some (l <> r)
      | Rlt | Rle | Rgt | Rge -> (
          match (l, r) with
          | V_int x, V_int y ->
              Some
                (match a.rel with
                | Rlt -> x < y
                | Rle -> x <= y
                | Rgt -> x > y
                | Rge -> x >= y
                | Req | Rneq -> assert false)
          | _ -> None))
  | _ -> None

(** Ground evaluation; [None] when a variable is unbound or an order atom
    compares non-integers. *)
let rec eval (env : (string * value) list) (f : t) : bool option =
  match f with
  | True -> Some true
  | False -> Some false
  | Atom a -> eval_atom env a
  | Not f -> Option.map not (eval env f)
  | And fs ->
      List.fold_left
        (fun acc f ->
          match (acc, eval env f) with
          | Some false, _ -> Some false
          | _, Some false -> Some false
          | Some true, Some true -> Some true
          | _ -> None)
        (Some true) fs
  | Or fs ->
      List.fold_left
        (fun acc f ->
          match (acc, eval env f) with
          | Some true, _ -> Some true
          | _, Some true -> Some true
          | Some false, Some false -> Some false
          | _ -> None)
        (Some false) fs

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let term_to_string = function
  | T_var x -> x
  | T_int n -> string_of_int n
  | T_bool true -> "true"
  | T_bool false -> "false"
  | T_str s -> Printf.sprintf "%S" s
  | T_null -> "null"

let rel_to_string = function
  | Req -> "=="
  | Rneq -> "!="
  | Rlt -> "<"
  | Rle -> "<="
  | Rgt -> ">"
  | Rge -> ">="

let atom_to_string (a : atom) =
  Fmt.str "%s %s %s" (term_to_string a.lhs) (rel_to_string a.rel) (term_to_string a.rhs)

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Atom a -> atom_to_string a
  | Not f -> "!(" ^ to_string f ^ ")"
  | And fs -> "(" ^ String.concat " && " (List.map to_string fs) ^ ")"
  | Or fs -> "(" ^ String.concat " || " (List.map to_string fs) ^ ")"

let pp ppf f = Fmt.string ppf (to_string f)

(* ------------------------------------------------------------------ *)
(* Normal forms                                                        *)
(* ------------------------------------------------------------------ *)

(** Negation normal form: negations pushed onto atoms (then folded into the
    atom's relation, so the result contains no [Not] at all). *)
let rec nnf (f : t) : t =
  match f with
  | True | False | Atom _ -> f
  | And fs -> And (List.map nnf fs)
  | Or fs -> Or (List.map nnf fs)
  | Not g -> (
      match g with
      | True -> False
      | False -> True
      | Atom a -> Atom { a with rel = negate_rel a.rel }
      | Not h -> nnf h
      | And fs -> Or (List.map (fun f -> nnf (Not f)) fs)
      | Or fs -> And (List.map (fun f -> nnf (Not f)) fs))

(** Basic simplification: constant folding, flattening of nested
    conjunctions/disjunctions, duplicate removal, and complementary-literal
    detection within one level.  Semantics-preserving. *)
let rec simplify (f : t) : t =
  match f with
  | True | False | Atom _ -> f
  | Not g -> (
      match simplify g with
      | True -> False
      | False -> True
      | Atom a -> Atom { a with rel = negate_rel a.rel }
      | Not h -> h
      | g' -> Not g')
  | And fs ->
      let fs = List.map simplify fs in
      let fs = List.concat_map (function And gs -> gs | g -> [ g ]) fs in
      let fs = List.filter (fun g -> g <> True) fs in
      if List.exists (fun g -> g = False) fs then False
      else
        let fs = dedup fs in
        if has_complementary fs then False else conj fs
  | Or fs ->
      let fs = List.map simplify fs in
      let fs = List.concat_map (function Or gs -> gs | g -> [ g ]) fs in
      let fs = List.filter (fun g -> g <> False) fs in
      if List.exists (fun g -> g = True) fs then True
      else
        let fs = dedup fs in
        if has_complementary fs then True else disj fs

and dedup fs =
  let key = function Atom a -> Atom (canon_atom a) | g -> g in
  let rec go seen = function
    | [] -> []
    | g :: rest ->
        let k = key g in
        if List.mem k seen then go seen rest else g :: go (k :: seen) rest
  in
  go [] fs

and has_complementary fs =
  let lits =
    List.filter_map (function Atom a -> Some (canon_atom a) | _ -> None) fs
  in
  List.exists
    (fun a -> List.exists (fun b -> b = canon_atom { a with rel = negate_rel a.rel }) lits)
    lits
