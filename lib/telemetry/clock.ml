(** The pipeline's one source of wall-clock time.

    Every layer that measures time ({!Trace} spans, the engine's per-job
    wall times, the benchmark harness) reads this clock instead of
    calling [Unix.gettimeofday] directly, so the clock can be swapped:

    - {!real} — the process clock ([Unix.gettimeofday]; the only call
      site in the repository);
    - {!mock} — a deterministic logical clock: every read advances a
      per-domain tick counter by one [step].  Two runs of the same
      deterministic code make the same number of reads in the same
      per-domain order, so durations are bit-for-bit reproducible —
      including across pool widths, because each worker domain counts
      its own reads.

    The installed clock lives in an [Atomic.t]: worker domains may read
    it while the main domain swaps it. *)

type t =
  | Real
  | Mock of { step : float; ticks : int ref Domain.DLS.key }

let real = Real

(** A fresh mock clock.  [step] is the simulated duration of one read,
    in seconds.  The default is 2⁻¹⁰ s (~1ms): a power-of-two step keeps
    every tick value and every tick difference exact in floating point,
    so a duration depends only on the {e number} of reads between its
    endpoints, never on how far the counter had already advanced.  Tick
    state is per-domain ([Domain.DLS]) and per-[mock] instance, so a new
    mock always starts at zero. *)
let mock ?(step = 0x1p-10) () =
  Mock { step; ticks = Domain.DLS.new_key (fun () -> ref 0) }

let current : t Atomic.t = Atomic.make Real

let set c = Atomic.set current c

let get () = Atomic.get current

let is_mock () = match Atomic.get current with Real -> false | Mock _ -> true

(** Current time in seconds.  Under {!real} this is wall-clock time;
    under a {!mock} every call advances the calling domain's tick. *)
let now () =
  match Atomic.get current with
  | Real -> Unix.gettimeofday ()
  | Mock { step; ticks } ->
      let r = Domain.DLS.get ticks in
      incr r;
      float_of_int !r *. step

(** Run [f] with [c] installed, restoring the previous clock after. *)
let with_clock c f =
  let prev = Atomic.get current in
  Atomic.set current c;
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f
