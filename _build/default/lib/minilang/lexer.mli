(** Hand-written lexer for MiniJava.

    Supports [// line] and [/* block */] comments and the usual string
    escapes (backslash-n, backslash-t, escaped quote, escaped backslash). *)

exception Error of string * Loc.t

type located = { tok : Token.t; loc : Loc.t }

(** Tokenize a whole source buffer; the result always ends with a single
    [EOF] token carrying the end-of-input location.
    @raise Error on unterminated comments/strings or stray characters. *)
val tokenize : ?file:string -> string -> located list
