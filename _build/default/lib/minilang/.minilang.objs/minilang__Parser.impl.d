lib/minilang/parser.ml: Array Ast Fmt Lexer List Loc Token
