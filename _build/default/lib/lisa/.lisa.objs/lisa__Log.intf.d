lib/lisa/log.mli: Format Logs
