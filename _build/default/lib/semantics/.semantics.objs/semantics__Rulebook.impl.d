lib/semantics/rulebook.ml: Ast Fmt List Minilang Pretty Rule String
