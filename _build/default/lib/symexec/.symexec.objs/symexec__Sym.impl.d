lib/symexec/sym.ml: List Minilang Printf Smt String
