(** Rule enforcement: assert a low-level semantic over a program version.

    For a state-guard rule [<P> s <>] the checker follows §3.2 end to end:

    1. resolve the target spec to concrete statements of this version;
    2. build the call graph and the execution tree rooted at each target;
    3. select concrete inputs: the RAG test selection over the program's
       own test suite (or all tests / a seeded pseudo-random subset, for
       the ablation);
    4. run the concolic engine with relevant-variable pruning and snapshot
       the path condition at every target arrival;
    5. judge each snapshot with the SMT complement check;
    6. report uncovered static paths ("the test suite does not have enough
       coverage, or the LLM misses the related tests — developers should
       provide the final verdict").

    Lock-discipline rules are checked both statically (lock-scope
    analysis) and dynamically (blocking events under held monitors).

    The check is split into two phases so the enforcement engine
    ({!Scheduler}) can treat them differently: {!prepare} runs the cheap
    static analyses (steps 1–3) whose outputs also determine the job's
    cache key, and {!execute} runs the expensive dynamic part (steps 4–6)
    — the unit of work the engine parallelizes and memoizes.
    [check_rule] composes the two and behaves exactly like the historic
    single-shot checker. *)

open Minilang

type test_selection =
  | Rag of int  (** top-k similarity selection (the paper's approach) *)
  | All_tests
  | Pseudo_random of { seed : int; k : int }

type check_method = Complement | Direct

type config = {
  selection : test_selection;
  prune : bool;
  method_ : check_method;
  fuel : int;
  trie : bool;
      (** judge traces through the path-condition trie and an incremental
          solver context instead of solving each trace independently.
          Result-preserving — reports are byte-identical either way — so
          it is deliberately {e not} part of {!config_tag}: both modes
          share cache entries. *)
}

let default_config =
  {
    selection = Rag 4;
    prune = true;
    method_ = Complement;
    fuel = 200_000;
    trie = true;
  }

(* A stable rendering of the knobs that influence enforcement results;
   part of the engine's cache key.  [trie] is excluded on purpose: it
   cannot change a report, only its cost. *)
let config_tag (c : config) : string =
  let sel =
    match c.selection with
    | Rag k -> Fmt.str "rag%d" k
    | All_tests -> "all"
    | Pseudo_random { seed; k } -> Fmt.str "rnd%d.%d" seed k
  in
  Fmt.str "%s|%b|%s|%d" sel c.prune
    (match c.method_ with Complement -> "comp" | Direct -> "direct")
    c.fuel

(** One judged trace (a target arrival). *)
type trace_verdict = {
  tv_target_sid : int;
  tv_method : string;
  tv_entry : string;  (** driving test *)
  tv_pc : Smt.Formula.t;
  tv_result : Smt.Solver.trace_check;
  tv_state : (string * Smt.Formula.value) list;
      (** concrete valuation of the checker condition's variables observed
          at the target arrival (witness-replay triage evidence) *)
}

type lock_finding = {
  lf_method : string;
  lf_op : string;
  lf_static : bool;  (** found statically (vs. observed dynamically) *)
  lf_sid : int;
}

type rule_report = {
  rep_rule : Semantics.Rule.t;
  rep_targets : int;  (** resolved target statements *)
  rep_static_paths : int;  (** paths in the execution trees *)
  rep_tests_run : string list;
  rep_traces : trace_verdict list;
  rep_violations : trace_verdict list;  (** subset of traces *)
  rep_verified : trace_verdict list;
  rep_uncovered_paths : string list;  (** rendered exec paths never observed *)
  rep_lock_findings : lock_finding list;
  rep_sanity_ok : bool;
      (** at least one verified trace exists — the "fixed paths act as our
          sanity check" requirement of §3.2 (state-guard rules only) *)
  rep_branches_total : int;
  rep_branches_recorded : int;
  rep_undecided : trace_verdict list;
      (** subset of traces the solver could not judge (node budget hit,
          circuit open, injected budget fault) *)
  rep_degraded : string list;
      (** degradation reasons: why this report may under-approximate the
          truth — skipped/out-of-fuel concolic runs, undecided solver
          verdicts, quarantined jobs.  Empty on a healthy run. *)
}

let has_violations (r : rule_report) =
  r.rep_violations <> [] || r.rep_lock_findings <> []

(** A report that may under-approximate the truth: some of its evidence
    was lost to budget exhaustion, open breakers, or quarantine.  A
    degraded report without violations is "pass with an asterisk", never
    a clean pass. *)
let is_degraded (r : rule_report) = r.rep_degraded <> []

(* runs whose outcome means "evidence lost", not "program misbehaved" *)
let degraded_run_reasons (runs : Symexec.Concolic.run_result list) :
    string list =
  List.filter_map
    (fun (r : Symexec.Concolic.run_result) ->
      match r.Symexec.Concolic.r_outcome with
      | Interp.Errored
          (( "out of fuel" | "out of fuel (injected)"
           | "circuit open: concolic run skipped" ) as msg) ->
          Some (Fmt.str "concolic %s: %s" r.Symexec.Concolic.r_entry msg)
      | _ -> None)
    runs

(** Placeholder report for a rule whose job exhausted its retries: no
    evidence either way, the reason on record.  [rep_sanity_ok] is false
    — a quarantined rule must never read as a verified one. *)
let quarantined_report (rule : Semantics.Rule.t) ~(reason : string) :
    rule_report =
  {
    rep_rule = rule;
    rep_targets = 0;
    rep_static_paths = 0;
    rep_tests_run = [];
    rep_traces = [];
    rep_violations = [];
    rep_verified = [];
    rep_uncovered_paths = [];
    rep_lock_findings = [];
    rep_sanity_ok = false;
    rep_branches_total = 0;
    rep_branches_recorded = 0;
    rep_undecided = [];
    rep_degraded = [ Fmt.str "quarantined: %s" reason ];
  }

(* ------------------------------------------------------------------ *)
(* Prepared jobs (static phase)                                        *)
(* ------------------------------------------------------------------ *)

(** Output of the static phase: everything the dynamic phase needs, and
    everything the engine's cache key must cover. *)
type prepared = {
  prep_rule : Semantics.Rule.t;
  prep_tests : string list;  (** concrete inputs the dynamic phase runs *)
  prep_kind : prep_kind;
}

and prep_kind =
  | Prep_guard of {
      pg_condition : Smt.Formula.t;
      pg_targets : (string * Ast.stmt) list;
          (** enclosing qualified method, resolved target statement *)
      pg_trees : Analysis.Paths.exec_tree list;
    }
  | Prep_lock of { pl_scope : Semantics.Rule.lock_scope }

let prepared_static_paths (pr : prepared) : Analysis.Paths.exec_path list =
  match pr.prep_kind with
  | Prep_guard { pg_trees; _ } ->
      List.concat_map (fun t -> t.Analysis.Paths.et_paths) pg_trees
  | Prep_lock _ -> []

(** Qualified names of the methods holding a resolved target statement. *)
let prepared_target_methods (pr : prepared) : string list =
  match pr.prep_kind with
  | Prep_guard { pg_targets; _ } ->
      List.sort_uniq compare (List.map fst pg_targets)
  | Prep_lock _ -> []

(* ------------------------------------------------------------------ *)
(* State-guard rules                                                   *)
(* ------------------------------------------------------------------ *)

let roots_of_condition (c : Smt.Formula.t) : string list =
  Smt.Formula.variables c |> List.map Symexec.Sym.root_of_path |> List.sort_uniq compare

let select_tests (config : config) (p : Ast.program) (rule : Semantics.Rule.t)
    (trees : Analysis.Paths.exec_tree list) : string list =
  match config.selection with
  | All_tests -> Interp.test_names p
  | Pseudo_random { seed; k } -> Oracle.Test_select.select_random p ~seed ~k
  | Rag k ->
      let sels =
        List.concat_map (fun tree -> Oracle.Test_select.select p rule tree ~k) trees
      in
      let names = Oracle.Test_select.selected_tests sels in
      (* keep only scores within the top-k union; fall back to all tests if
         the suite has no tests at all *)
      if names = [] then Interp.test_names p else names

(* does a hit's decision vector cover a static path? *)
let covers (h : Symexec.Concolic.hit) (ep : Analysis.Paths.exec_path) : bool =
  List.for_all
    (fun (d : Analysis.Paths.decision) ->
      match List.assoc_opt d.Analysis.Paths.d_sid h.Symexec.Concolic.h_decisions with
      | Some taken -> taken = d.Analysis.Paths.d_taken
      | None -> false)
    ep.Analysis.Paths.ep_decisions

(* the dynamic phase's concolic exploration for a state-guard rule *)
let guard_runs (config : config) (p : Ast.program) (pr : prepared)
    ~(condition : Smt.Formula.t) ~(targets : (string * Ast.stmt) list) :
    Symexec.Concolic.run_result list =
  let target_sids = List.map (fun (_, st) -> st.Ast.sid) targets in
  let cc =
    {
      Symexec.Concolic.default_config with
      Symexec.Concolic.targets = target_sids;
      relevant_roots = roots_of_condition condition;
      prune = config.prune;
      fuel = config.fuel;
      capture_vars = Smt.Formula.variables condition;
    }
  in
  Symexec.Concolic.run_all ~config:cc p pr.prep_tests

(** Judge every hit against the checker condition, in input order.  With
    [config.trie] the hits are grouped by their decision-ordered pc
    snapshots in a {!Smt.Pctrie} and the walk shares one incremental
    {!Smt.Solver.context} — each common prefix is asserted once.  Both
    modes produce byte-identical verdicts (and models): the incremental
    path reuses result-preserving caches, never a different algorithm. *)
let judge_hits (config : config) ~(condition : Smt.Formula.t)
    (hits : Symexec.Concolic.hit list) : trace_verdict list =
  let mk (h : Symexec.Concolic.hit) pc result =
    {
      tv_target_sid = h.Symexec.Concolic.h_target_sid;
      tv_method = h.Symexec.Concolic.h_method;
      tv_entry = h.Symexec.Concolic.h_entry;
      tv_pc = pc;
      tv_result = result;
      tv_state = h.Symexec.Concolic.h_state;
    }
  in
  if not config.trie then
    List.map
      (fun (h : Symexec.Concolic.hit) ->
        let pc = Symexec.Concolic.hit_pc_formula h in
        let result =
          match config.method_ with
          | Complement -> Smt.Memo.check_trace ~pc ~checker:condition
          | Direct -> Smt.Memo.check_trace_direct ~pc ~checker:condition
        in
        mk h pc result)
      hits
  else begin
    let trie = Smt.Pctrie.create () in
    List.iteri
      (fun i (h : Symexec.Concolic.hit) ->
        Smt.Pctrie.add trie ~pc:(Symexec.Concolic.hit_pc_snapshot h) (i, h))
      hits;
    let results = Array.make (List.length hits) None in
    let ctx = Smt.Solver.create_context () in
    (* Fast-path rung 3: once a prefix's literal set is theory-
       inconsistent, every query below it entails that prefix and is
       Unsat — answer the whole subtree without touching the solver.
       This is exactly the verdict the per-leaf solve would reach (an
       assumption context with an inconsistent prefix short-circuits to
       Unsat), so verdicts stay byte-identical with pruning off. *)
    let fastpath = Smt.Solver.fastpath_enabled () in
    Smt.Pctrie.walk_pruned trie
      ~enter:(fun f ->
        Smt.Solver.push ctx f;
        not (fastpath && not (Smt.Solver.assumptions_consistent ctx)))
      ~leave:(fun _ -> Smt.Solver.pop ctx)
      ~leaf:(fun (i, (h : Symexec.Concolic.hit)) ->
        let pc = Symexec.Concolic.hit_pc_formula h in
        let result =
          match config.method_ with
          | Complement -> Smt.Memo.check_trace_in ctx ~pc ~checker:condition
          | Direct -> Smt.Memo.check_trace_direct_in ctx ~pc ~checker:condition
        in
        results.(i) <- Some (mk h pc result))
      ~pruned:(fun (i, (h : Symexec.Concolic.hit)) ->
        Smt.Solver.note_trie_subsumed ();
        let pc = Symexec.Concolic.hit_pc_formula h in
        let result =
          match config.method_ with
          | Complement -> Smt.Solver.Verified (* pc ∧ ¬condition unsat *)
          | Direct -> Smt.Solver.Violation [] (* pc ∧ condition unsat *)
        in
        results.(i) <- Some (mk h pc result));
    Array.to_list results |> List.map Option.get
  end

let execute_state_guard (config : config) (p : Ast.program) (pr : prepared)
    ~(condition : Smt.Formula.t) ~(targets : (string * Ast.stmt) list)
    ~(trees : Analysis.Paths.exec_tree list) : rule_report =
  let static_paths = List.concat_map (fun t -> t.Analysis.Paths.et_paths) trees in
  let tests = pr.prep_tests in
  let runs = guard_runs config p pr ~condition ~targets in
  let hits = List.concat_map (fun r -> r.Symexec.Concolic.r_hits) runs in
  let traces = judge_hits config ~condition hits in
  let violations =
    List.filter
      (fun t -> match t.tv_result with Smt.Solver.Violation _ -> true | _ -> false)
      traces
  in
  let verified =
    List.filter
      (fun t -> match t.tv_result with Smt.Solver.Verified -> true | _ -> false)
      traces
  in
  let undecided =
    List.filter
      (fun t ->
        match t.tv_result with Smt.Solver.Undecided _ -> true | _ -> false)
      traces
  in
  let uncovered =
    List.filter (fun ep -> not (List.exists (fun h -> covers h ep) hits)) static_paths
    |> List.map Analysis.Paths.exec_path_to_string
  in
  let degraded =
    degraded_run_reasons runs
    @ List.map
        (fun t ->
          let why =
            match t.tv_result with
            | Smt.Solver.Undecided reason -> reason
            | _ -> assert false
          in
          Fmt.str "solver undecided on %s (driven by %s): %s" t.tv_method
            t.tv_entry why)
        undecided
  in
  {
    rep_rule = pr.prep_rule;
    rep_targets = List.length targets;
    rep_static_paths = List.length static_paths;
    rep_tests_run = tests;
    rep_traces = traces;
    rep_violations = violations;
    rep_verified = verified;
    rep_uncovered_paths = uncovered;
    rep_lock_findings = [];
    rep_sanity_ok = verified <> [];
    rep_branches_total =
      List.fold_left (fun n r -> n + r.Symexec.Concolic.r_branches_total) 0 runs;
    rep_branches_recorded =
      List.fold_left (fun n r -> n + r.Symexec.Concolic.r_branches_recorded) 0 runs;
    rep_undecided = undecided;
    rep_degraded = degraded;
  }

(* ------------------------------------------------------------------ *)
(* Lock-discipline rules                                               *)
(* ------------------------------------------------------------------ *)

(* statements with any callee at all under a lock (the naive broadening) *)
let any_call_under_lock (p : Ast.program) : lock_finding list =
  List.concat_map
    (fun (cls, m) ->
      let qname = Ast.qualified_name cls m in
      let scoped = ref [] in
      let rec walk (b : Ast.block) (under : bool) =
        List.iter
          (fun (st : Ast.stmt) ->
            (if under then
               match Ast.callees_of_stmt st with
               | c :: _ -> scoped := (st.Ast.sid, c) :: !scoped
               | [] -> ());
            match st.Ast.s with
            | Ast.Sync (_, body) -> walk body true
            | Ast.If (_, b1, b2) ->
                walk b1 under;
                walk b2 under
            | Ast.While (_, body) -> walk body under
            | Ast.Try (body, _, h) ->
                walk body under;
                walk h under
            | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Throw _ | Ast.Expr _
            | Ast.Assert _ | Ast.Break | Ast.Continue ->
                ())
          b
      in
      walk m.Ast.m_body false;
      List.rev_map
        (fun (sid, op) -> { lf_method = qname; lf_op = op; lf_static = true; lf_sid = sid })
        !scoped)
    (Ast.methods_of_program p)

let execute_lock_rule (config : config) (p : Ast.program) (pr : prepared)
    ~(scope : Semantics.Rule.lock_scope) : rule_report =
  let static_findings =
    match scope with
    | Semantics.Rule.Lock_all_calls -> any_call_under_lock p
    | Semantics.Rule.Lock_blocking | Semantics.Rule.Lock_specific _ ->
        Analysis.Lockscope.analyze p
        |> List.filter (fun (v : Analysis.Lockscope.violation) ->
               match scope with
               | Semantics.Rule.Lock_specific m -> v.Analysis.Lockscope.v_method = m
               | Semantics.Rule.Lock_blocking | Semantics.Rule.Lock_all_calls -> true)
        |> List.filter (fun (v : Analysis.Lockscope.violation) ->
               v.Analysis.Lockscope.v_direct)
        |> List.map (fun (v : Analysis.Lockscope.violation) ->
               {
                 lf_method = v.Analysis.Lockscope.v_method;
                 lf_op = v.Analysis.Lockscope.v_op;
                 lf_static = true;
                 lf_sid = v.Analysis.Lockscope.v_sid;
               })
  in
  (* dynamic confirmation: run the whole test suite and look for blocking
     events while holding a monitor *)
  let tests = pr.prep_tests in
  let cc = { Symexec.Concolic.default_config with Symexec.Concolic.fuel = config.fuel } in
  let runs = Symexec.Concolic.run_all ~config:cc p tests in
  let dynamic_findings =
    List.concat_map (fun r -> r.Symexec.Concolic.r_blocking) runs
    |> List.filter (fun (b : Symexec.Concolic.blocking_event) ->
           b.Symexec.Concolic.be_locks > 0)
    |> List.filter (fun (b : Symexec.Concolic.blocking_event) ->
           match scope with
           | Semantics.Rule.Lock_specific m -> b.Symexec.Concolic.be_method = m
           | Semantics.Rule.Lock_blocking | Semantics.Rule.Lock_all_calls -> true)
    |> List.map (fun (b : Symexec.Concolic.blocking_event) ->
           {
             lf_method = b.Symexec.Concolic.be_method;
             lf_op = b.Symexec.Concolic.be_op;
             lf_static = false;
             lf_sid = b.Symexec.Concolic.be_sid;
           })
  in
  let findings =
    (* dedupe by (method, op, sid), static first *)
    let key f = (f.lf_method, f.lf_op, f.lf_sid) in
    let rec dedup seen = function
      | [] -> []
      | f :: rest ->
          if List.mem (key f) seen then dedup seen rest
          else f :: dedup (key f :: seen) rest
    in
    dedup [] (static_findings @ dynamic_findings)
  in
  {
    rep_rule = pr.prep_rule;
    rep_targets = 0;
    rep_static_paths = 0;
    rep_tests_run = tests;
    rep_traces = [];
    rep_violations = [];
    rep_verified = [];
    rep_uncovered_paths = [];
    rep_lock_findings = findings;
    rep_sanity_ok = true;
    rep_branches_total = 0;
    rep_branches_recorded = 0;
    rep_undecided = [];
    rep_degraded = degraded_run_reasons runs;
  }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Static phase: resolve targets, build execution trees, select tests.
    [?graph] lets the engine share one call graph across all rules of a
    program version instead of rebuilding it per rule. *)
let prepare ?(config = default_config) ?graph (p : Ast.program)
    (rule : Semantics.Rule.t) : prepared =
  Telemetry.Trace.with_span ~cat:"checker"
    ~args:[ ("rule", rule.Semantics.Rule.rule_id) ]
    "checker.prepare"
  @@ fun () ->
  match rule.Semantics.Rule.body with
  | Semantics.Rule.State_guard { target; condition } ->
      let targets = Semantics.Rulebook.resolve_targets p target in
      let target_sids = List.map (fun (_, st) -> st.Ast.sid) targets in
      let g =
        match graph with Some g -> g | None -> Analysis.Callgraph.build p
      in
      let trees = List.map (Analysis.Paths.exec_tree p g) target_sids in
      let tests = select_tests config p rule trees in
      {
        prep_rule = rule;
        prep_tests = tests;
        prep_kind =
          Prep_guard { pg_condition = condition; pg_targets = targets; pg_trees = trees };
      }
  | Semantics.Rule.Lock_discipline { scope } ->
      {
        prep_rule = rule;
        prep_tests = Interp.test_names p;
        prep_kind = Prep_lock { pl_scope = scope };
      }

(** Dynamic phase: concolic exploration and SMT judging of a prepared
    rule.  This is the unit of work the engine schedules on its worker
    pool and memoizes in the report cache. *)
let execute ?(config = default_config) (p : Ast.program) (pr : prepared) :
    rule_report =
  Telemetry.Trace.with_span ~cat:"checker"
    ~args:[ ("rule", pr.prep_rule.Semantics.Rule.rule_id) ]
    "checker.execute"
  @@ fun () ->
  match pr.prep_kind with
  | Prep_guard { pg_condition; pg_targets; pg_trees } ->
      execute_state_guard config p pr ~condition:pg_condition ~targets:pg_targets
        ~trees:pg_trees
  | Prep_lock { pl_scope } -> execute_lock_rule config p pr ~scope:pl_scope

(** Check one rule against a program version (prepare + execute). *)
let check_rule ?(config = default_config) (p : Ast.program)
    (rule : Semantics.Rule.t) : rule_report =
  execute ~config p (prepare ~config p rule)

(** The dynamic phase's concolic evidence for a state-guard rule: its
    checker condition and every target hit, in execution order ([None]
    for lock rules).  Benchmarks use this to time trace judging in
    isolation from concolic exploration. *)
let guard_evidence ?(config = default_config) (p : Ast.program) (pr : prepared)
    : (Smt.Formula.t * Symexec.Concolic.hit list) option =
  match pr.prep_kind with
  | Prep_lock _ -> None
  | Prep_guard { pg_condition; pg_targets; _ } ->
      let runs =
        guard_runs config p pr ~condition:pg_condition ~targets:pg_targets
      in
      Some
        ( pg_condition,
          List.concat_map (fun r -> r.Symexec.Concolic.r_hits) runs )

(** Check a whole rulebook. *)
let check_book ?(config = default_config) (p : Ast.program)
    (book : Semantics.Rulebook.t) : rule_report list =
  let g = Analysis.Callgraph.build p in
  List.map
    (fun rule -> execute ~config p (prepare ~config ~graph:g p rule))
    (Semantics.Rulebook.rules book)

let report_summary (r : rule_report) : string =
  let base =
    Fmt.str
      "%s: targets=%d static_paths=%d tests=%d traces=%d verified=%d \
       violations=%d uncovered=%d lock_findings=%d sanity=%b"
      r.rep_rule.Semantics.Rule.rule_id r.rep_targets r.rep_static_paths
      (List.length r.rep_tests_run)
      (List.length r.rep_traces)
      (List.length r.rep_verified)
      (List.length r.rep_violations)
      (List.length r.rep_uncovered_paths)
      (List.length r.rep_lock_findings)
      r.rep_sanity_ok
  in
  (* degraded counters only appear on degraded reports: the healthy-run
     summary stays byte-identical to the pre-resilience checker *)
  if r.rep_undecided = [] && r.rep_degraded = [] then base
  else
    Fmt.str "%s undecided=%d degraded=%d" base
      (List.length r.rep_undecided)
      (List.length r.rep_degraded)
