(** Intraprocedural path enumeration to a target statement.

    For a target statement inside a method, enumerate the branch-decision
    vectors under which control reaches it.  Loops are approximated by the
    two first-iteration decisions (enter once / skip), which is the usual
    bounded unrolling for reachability queries; [try] is approximated by
    its non-throwing body.  Combined with {!Callgraph.call_chains} this
    yields the paper's *execution tree*: leaves are entry functions, and
    each intraprocedural segment carries the guard decisions that the
    concolic engine must observe dynamically. *)

open Minilang

type decision = {
  d_sid : int;  (** sid of the branching statement *)
  d_cond : Ast.expr;  (** its guard *)
  d_taken : bool;  (** decision required to continue toward the target *)
}

type path = decision list

let decision_to_string (d : decision) =
  Fmt.str "%s@%d=%b" (Pretty.expr_to_string d.d_cond) d.d_sid d.d_taken

let path_to_string (p : path) = String.concat " ; " (List.map decision_to_string p)

(* Enumerate decision vectors under which executing [block] *reaches* the
   statement with sid [target].  Result: list of paths (decisions in
   execution order).  A path that merely passes through the block without
   containing the target contributes via [continues]: decision vectors
   under which the block finishes normally (no return/throw). *)

type outcome = {
  reaches : path list;  (** vectors that hit the target inside this block *)
  continues : path list;  (** vectors that exit the block normally *)
}

let cross (a : path list) (b : path list) : path list =
  List.concat_map (fun p -> List.map (fun q -> p @ q) b) a

let rec block_outcome (b : Ast.block) (target : int) : outcome =
  match b with
  | [] -> { reaches = []; continues = [ [] ] }
  | st :: rest ->
      let o = stmt_outcome st target in
      let rest_o = block_outcome rest target in
      {
        reaches = o.reaches @ cross o.continues rest_o.reaches;
        continues = cross o.continues rest_o.continues;
      }

and stmt_outcome (st : Ast.stmt) (target : int) : outcome =
  let here = st.Ast.sid = target in
  match st.Ast.s with
  | Ast.Decl _ | Ast.Assign _ | Ast.Expr _ | Ast.Assert _ ->
      { reaches = (if here then [ [] ] else []); continues = [ [] ] }
  | Ast.Return _ | Ast.Throw _ ->
      (* reaching the statement itself; nothing continues past it *)
      { reaches = (if here then [ [] ] else []); continues = [] }
  | Ast.Break | Ast.Continue ->
      (* approximation: treat like an exit from the enclosing block *)
      { reaches = (if here then [ [] ] else []); continues = [] }
  | Ast.If (cond, b1, b2) ->
      let t = { d_sid = st.Ast.sid; d_cond = cond; d_taken = true } in
      let f = { d_sid = st.Ast.sid; d_cond = cond; d_taken = false } in
      let o1 = block_outcome b1 target and o2 = block_outcome b2 target in
      let self = if here then [ [] ] else [] in
      {
        reaches =
          self
          @ List.map (fun p -> t :: p) o1.reaches
          @ List.map (fun p -> f :: p) o2.reaches;
        continues =
          List.map (fun p -> t :: p) o1.continues
          @ List.map (fun p -> f :: p) o2.continues;
      }
  | Ast.While (cond, body) ->
      let t = { d_sid = st.Ast.sid; d_cond = cond; d_taken = true } in
      let f = { d_sid = st.Ast.sid; d_cond = cond; d_taken = false } in
      let o = block_outcome body target in
      let self = if here then [ [] ] else [] in
      {
        reaches = self @ List.map (fun p -> t :: p) o.reaches;
        continues =
          (* skip the loop, or run the body once and leave *)
          [ [ f ] ] @ List.map (fun p -> (t :: p) @ [ f ]) o.continues;
      }
  | Ast.Try (body, _, handler) ->
      let ob = block_outcome body target and oh = block_outcome handler target in
      let self = if here then [ [] ] else [] in
      {
        (* the handler is reachable (after a throw in the body, decisions
           unknown), so its reaches count with no extra decisions *)
        reaches = self @ ob.reaches @ oh.reaches;
        continues = ob.continues @ oh.continues;
      }
  | Ast.Sync (_, body) ->
      let o = block_outcome body target in
      let self = if here then [ [] ] else [] in
      { reaches = self @ o.reaches; continues = o.continues }

(** Decision vectors under which [m]'s body reaches statement [target].
    Empty result = statically unreachable within this method. *)
let paths_to_stmt (m : Ast.method_decl) (target : int) : path list =
  (block_outcome m.Ast.m_body target).reaches

(** Decision vectors under which [m]'s body reaches a *call* to
    [callee_simple] (matched on simple name anywhere in the statement). *)
let paths_to_call (m : Ast.method_decl) (callee_simple : string) : (int * path) list
    =
  let sids = ref [] in
  Ast.iter_stmts
    (fun st -> if List.mem callee_simple (Ast.callees_of_stmt st) then sids := st.Ast.sid :: !sids)
    m.Ast.m_body;
  List.concat_map
    (fun sid -> List.map (fun p -> (sid, p)) (paths_to_stmt m sid))
    (List.rev !sids)

(** Statements in [m] calling [callee_simple]. *)
let call_sites (m : Ast.method_decl) (callee_simple : string) : Ast.stmt list =
  let acc = ref [] in
  Ast.iter_stmts
    (fun st -> if List.mem callee_simple (Ast.callees_of_stmt st) then acc := st :: !acc)
    m.Ast.m_body;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Execution trees (paper §3.2)                                        *)
(* ------------------------------------------------------------------ *)

type exec_path = {
  ep_entry : string;  (** entry function (a leaf of the execution tree) *)
  ep_chain : string list;  (** full call chain entry -> ... -> method *)
  ep_decisions : path;  (** intraprocedural decisions in the target's method *)
}

type exec_tree = {
  et_target_sid : int;
  et_target_method : string;
  et_paths : exec_path list;
}

(** Build the execution tree rooted at [target_sid]: all call chains from
    entry functions to the enclosing method, crossed with the
    intraprocedural decision vectors that reach the target. *)
let exec_tree (p : Ast.program) (g : Callgraph.t) (target_sid : int) : exec_tree =
  match Ast.enclosing_method p target_sid with
  | None ->
      { et_target_sid = target_sid; et_target_method = "<unknown>"; et_paths = [] }
  | Some (cls, m) ->
      let qname = Ast.qualified_name cls m in
      let chains = Callgraph.call_chains g ~target:qname in
      let chains = if chains = [] then [ [ qname ] ] else chains in
      let decisions = paths_to_stmt m target_sid in
      let decisions = if decisions = [] then [ [] ] else decisions in
      let paths =
        List.concat_map
          (fun chain ->
            List.map
              (fun d ->
                { ep_entry = List.hd chain; ep_chain = chain; ep_decisions = d })
              decisions)
          chains
      in
      { et_target_sid = target_sid; et_target_method = qname; et_paths = paths }

let exec_path_to_string (ep : exec_path) =
  Fmt.str "%s [%s]" (String.concat " -> " ep.ep_chain) (path_to_string ep.ep_decisions)
