lib/corpus/cassandra.mli: Case
