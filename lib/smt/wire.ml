(** Process-neutral wire forms for formulas and verdicts: plain trees
    safe to [Marshal], rebuilt through the smart constructors on load so
    every value re-enters the hash-cons tables of the loading process.
    See the .mli for why interned values must never hit the disk raw. *)

type wterm =
  | W_var of string
  | W_int of int
  | W_bool of bool
  | W_str of string
  | W_null

type wrel = Weq | Wneq | Wlt | Wle | Wgt | Wge

type watom = { wrel : wrel; wlhs : wterm; wrhs : wterm }

type wformula =
  | W_true
  | W_false
  | W_atom of watom
  | W_not of wformula
  | W_and of wformula list
  | W_or of wformula list

type wverdict = W_sat of (watom * bool) list | W_unsat

let of_term (t : Formula.term) : wterm =
  match Formula.term_view t with
  | Formula.T_var v -> W_var v
  | Formula.T_int i -> W_int i
  | Formula.T_bool b -> W_bool b
  | Formula.T_str s -> W_str s
  | Formula.T_null -> W_null

let to_term : wterm -> Formula.term = function
  | W_var v -> Formula.tvar v
  | W_int i -> Formula.tint i
  | W_bool b -> Formula.tbool b
  | W_str s -> Formula.tstr s
  | W_null -> Formula.tnull

let of_rel : Formula.rel -> wrel = function
  | Formula.Req -> Weq
  | Formula.Rneq -> Wneq
  | Formula.Rlt -> Wlt
  | Formula.Rle -> Wle
  | Formula.Rgt -> Wgt
  | Formula.Rge -> Wge

let to_rel : wrel -> Formula.rel = function
  | Weq -> Formula.Req
  | Wneq -> Formula.Rneq
  | Wlt -> Formula.Rlt
  | Wle -> Formula.Rle
  | Wgt -> Formula.Rgt
  | Wge -> Formula.Rge

let of_atom (a : Formula.atom) : watom =
  { wrel = of_rel a.Formula.rel; wlhs = of_term a.Formula.lhs; wrhs = of_term a.Formula.rhs }

let to_atom (a : watom) : Formula.atom =
  { Formula.rel = to_rel a.wrel; Formula.lhs = to_term a.wlhs; Formula.rhs = to_term a.wrhs }

let rec of_formula (f : Formula.t) : wformula =
  match Formula.view f with
  | Formula.True -> W_true
  | Formula.False -> W_false
  | Formula.Atom a -> W_atom (of_atom a)
  | Formula.Not g -> W_not (of_formula g)
  | Formula.And gs -> W_and (List.map of_formula gs)
  | Formula.Or gs -> W_or (List.map of_formula gs)

let rec to_formula : wformula -> Formula.t = function
  | W_true -> Formula.tru
  | W_false -> Formula.fls
  | W_atom a ->
      let a = to_atom a in
      Formula.atom a.Formula.rel a.Formula.lhs a.Formula.rhs
  | W_not g -> Formula.negate (to_formula g)
  | W_and gs -> Formula.conj (List.map to_formula gs)
  | W_or gs -> Formula.disj (List.map to_formula gs)

let of_verdict : Solver.verdict -> wverdict option = function
  | Solver.Sat model ->
      Some (W_sat (List.map (fun (a, b) -> (of_atom a, b)) model))
  | Solver.Unsat -> Some W_unsat
  | Solver.Unknown _ -> None

let to_verdict : wverdict -> Solver.verdict = function
  | W_sat model -> Solver.Sat (List.map (fun (a, b) -> (to_atom a, b)) model)
  | W_unsat -> Solver.Unsat
