lib/corpus/hbase.ml: Case String
