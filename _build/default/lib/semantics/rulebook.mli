(** Rulebooks: the accumulated low-level semantics of a system — the
    "executable contracts" the paper's vision leaves behind after every
    fixed failure.  The CI gate re-asserts the whole book per commit. *)

type t = { system : string; mutable rules : Rule.t list }

val create : system:string -> t

(** Add a rule; duplicates (by [rule_id]) are ignored. *)
val add : t -> Rule.t -> unit

val add_all : t -> Rule.t list -> unit

val rules : t -> Rule.t list

val size : t -> int

val find : t -> string -> Rule.t option

val state_guards : t -> Rule.t list

val lock_rules : t -> Rule.t list

val of_rules : system:string -> Rule.t list -> t

val to_string : t -> string

(** The statements of a program that a target spec denotes, with the
    qualified name of each statement's enclosing method. *)
val resolve_targets :
  Minilang.Ast.program -> Rule.target_spec -> (string * Minilang.Ast.stmt) list
