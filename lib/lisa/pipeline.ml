(** The end-to-end LISA workflow (Figure 5).

    {v
      failure ticket --> LLM inference --> translation --> cross-check
           |                                                  |
           v                                                  v
      rulebook  <---------------------- grounded rules  (discard hallucinated)
           |
           v
      enforcement on new versions (concolic + SMT)  --> findings
    v}

    The *cross-check* stage implements the mitigation sketched in §5 for
    LLM unreliability: a mined rule is validated against the patched
    version itself — if enforcing it there yields violations, or the rule
    never verifies any trace (no grounding in actual behaviour), it is
    rejected before entering the rulebook. *)

type stage_log = { stage : string; detail : string }

type outcome = {
  ticket : Oracle.Ticket.t;
  prompt : string;
  inference : Oracle.Inference.inferred;
  accepted : Semantics.Rule.t list;
  rejected : (Semantics.Rule.t * string) list;  (** rule, reason *)
  log : stage_log list;
}

type config = {
  checker : Checker.config;
  generalize : bool;  (** apply rule generalization before cross-checking *)
  noise : Oracle.Inference.noise;  (** LLM noise model (E9) *)
  cross_check : bool;  (** validate rules against the patched version *)
}

let default_config =
  {
    checker = Checker.default_config;
    generalize = true;
    noise = Oracle.Inference.no_noise;
    cross_check = true;
  }

(* Ground a rule against the patched version of its origin ticket. *)
let cross_check_rule (config : config) (patched : Minilang.Ast.program)
    (rule : Semantics.Rule.t) : (Semantics.Rule.t, string) result =
  match rule.Semantics.Rule.body with
  | Semantics.Rule.Lock_discipline _ ->
      (* a lock rule is grounded iff the patched version is clean under it *)
      let r = Checker.check_rule ~config:config.checker patched rule in
      if r.Checker.rep_lock_findings = [] then Ok rule
      else Error "patched version still violates the lock rule"
  | Semantics.Rule.State_guard _ ->
      let r = Checker.check_rule ~config:config.checker patched rule in
      if r.Checker.rep_targets = 0 then
        Error "target statement does not exist in the patched version"
      else if r.Checker.rep_violations <> [] then
        Error "patched version violates the rule: inference is not grounded"
      else if not r.Checker.rep_sanity_ok then
        Error "no trace verifies the rule: the fixed path must act as sanity check"
      else Ok rule

(** Learn rules from one ticket: inference, optional generalization, and
    cross-checking against the ticket's own patched version. *)
let learn ?(config = default_config) (ticket : Oracle.Ticket.t) : outcome =
  Log.info "learning from ticket %s" ticket.Oracle.Ticket.ticket_id;
  let log = ref [] in
  let push stage detail =
    Log.debug "[%s] %s" stage detail;
    log := { stage; detail } :: !log
  in
  let prompt = Oracle.Prompt.build ticket in
  push "collect"
    (Fmt.str "ticket %s: %d-token bundle (description + diff + patched source)"
       ticket.Oracle.Ticket.ticket_id
       (Oracle.Prompt.token_estimate prompt));
  (* the oracle is an outage-prone external service: retry crashes and
     transients a couple of times, then settle for a degraded (empty)
     inference so learning continues with the remaining tickets *)
  let inference =
    let rec attempt n =
      match Oracle.Inference.infer ~noise:config.noise ticket with
      | inf -> inf
      | exception Resilience.Fault.Injected (point, kind) ->
          if n >= 2 then
            Oracle.Inference.degraded_inference ticket
              (Fmt.str "oracle unavailable after %d attempt(s)" (n + 1))
          else begin
            Resilience.Events.emit
              (Resilience.Events.Job_retry
                 {
                   job = "infer:" ^ ticket.Oracle.Ticket.ticket_id;
                   attempt = n + 1;
                   backoff_ms = 0;
                   reason =
                     Fmt.str "injected %s fault at %s"
                       (Resilience.Fault.kind_to_string kind)
                       (Resilience.Fault.point_to_string point);
                 });
            attempt (n + 1)
          end
    in
    attempt 0
  in
  push "infer"
    (Fmt.str "high-level: %s; %d candidate low-level semantics"
       inference.Oracle.Inference.inf_high_level
       (List.length inference.Oracle.Inference.inf_rules));
  let rules =
    if config.generalize then
      List.map Semantics.Rule.generalize inference.Oracle.Inference.inf_rules
    else inference.Oracle.Inference.inf_rules
  in
  push "translate"
    (String.concat "; " (List.map Semantics.Rule.to_string rules));
  let accepted, rejected =
    if not config.cross_check then (rules, [])
    else begin
      let patched = Oracle.Ticket.patched_program ticket in
      (* cross-checking runs the concolic checker directly (no engine
         pool underneath to retry for us): retry injected faults a
         couple of times, then reject the rule as unverifiable rather
         than let the fault escape learning *)
      let cross_check_with_retries rule =
        let rec attempt n =
          match cross_check_rule config patched rule with
          | outcome -> outcome
          | exception Resilience.Fault.Injected (point, kind) ->
              let job =
                "cross-check:" ^ rule.Semantics.Rule.rule_id
              in
              if n >= 2 then begin
                Resilience.Events.emit
                  (Resilience.Events.Component_degraded
                     {
                       component = job;
                       reason = "cross-check unavailable, rule rejected";
                     });
                Error
                  (Fmt.str
                     "cross-check unavailable after %d attempt(s) (injected \
                      %s fault at %s): rule cannot be verified"
                     (n + 1)
                     (Resilience.Fault.kind_to_string kind)
                     (Resilience.Fault.point_to_string point))
              end
              else begin
                Resilience.Events.emit
                  (Resilience.Events.Job_retry
                     {
                       job;
                       attempt = n + 1;
                       backoff_ms = 0;
                       reason =
                         Fmt.str "injected %s fault at %s"
                           (Resilience.Fault.kind_to_string kind)
                           (Resilience.Fault.point_to_string point);
                     });
                attempt (n + 1)
              end
        in
        attempt 0
      in
      List.fold_left
        (fun (acc, rej) rule ->
          match cross_check_with_retries rule with
          | Ok r -> (acc @ [ r ], rej)
          | Error reason -> (acc, rej @ [ (rule, reason) ]))
        ([], []) rules
    end
  in
  push "cross-check"
    (Fmt.str "%d accepted, %d rejected" (List.length accepted) (List.length rejected));
  { ticket; prompt; inference; accepted; rejected; log = List.rev !log }

(** Learn from a sequence of tickets into a rulebook. *)
let learn_all ?(config = default_config) ~(system : string)
    (tickets : Oracle.Ticket.t list) : Semantics.Rulebook.t * outcome list =
  let book = Semantics.Rulebook.create ~system in
  let outcomes =
    List.map
      (fun t ->
        let o = learn ~config t in
        Semantics.Rulebook.add_all book o.accepted;
        o)
      tickets
  in
  (book, outcomes)

(** Enforce a rulebook against a program version; the central entry point
    for CI and for the experiments. *)
let enforce ?(config = default_config) (p : Minilang.Ast.program)
    (book : Semantics.Rulebook.t) : Checker.rule_report list =
  Log.info "enforcing %d rule(s) of the %s rulebook" (Semantics.Rulebook.size book)
    book.Semantics.Rulebook.system;
  let reports = Checker.check_book ~config:config.checker p book in
  List.iter
    (fun (r : Checker.rule_report) ->
      if Checker.has_violations r then Log.warn "%s" (Checker.report_summary r)
      else Log.debug "%s" (Checker.report_summary r))
    reports;
  reports

(** Enforce a rulebook through a running enforcement engine: same report
    contract and logging as {!enforce}, but scheduling, parallelism, and
    caching are the engine's ({!Engine.Scheduler.enforce}). *)
let enforce_with (engine : Engine.Scheduler.t) (p : Minilang.Ast.program)
    (book : Semantics.Rulebook.t) : Checker.rule_report list =
  Log.info "engine-enforcing %d rule(s) of the %s rulebook"
    (Semantics.Rulebook.size book) book.Semantics.Rulebook.system;
  let reports = Engine.Scheduler.enforce engine p book in
  List.iter
    (fun (r : Checker.rule_report) ->
      if Checker.has_violations r then Log.warn "%s" (Checker.report_summary r)
      else Log.debug "%s" (Checker.report_summary r))
    reports;
  reports

let findings (reports : Checker.rule_report list) : Checker.rule_report list =
  List.filter Checker.has_violations reports
