(* lisa — command-line interface to the LISA reproduction.

   Subcommands:
     corpus            list the incident corpus (cases, bugs, tickets)
     corpus synth      generate a seeded synthetic corpus (list, dump
                       sources, or re-check one case — the fuzzer repro)
     show-ticket       print one ticket bundle (description, diff, tests)
     prompt            print the Listing-1 prompt for a ticket
     infer             run inference on a ticket, print rules + JSON
     check             learn from a case's first ticket and enforce the
                       rulebook against a chosen stage
     ci                replay a case's gated version history
     engine            whole-system scan through the enforcement engine
     serve             enforcement-as-a-service daemon (JSONL over stdin
                       or a Unix socket, warm persistent caches)
     run-tests         run a corpus program's test suite (any case/stage)
     parse             parse and typecheck a MiniJava file from disk *)

open Cmdliner

(* -v / -vv: install a Logs reporter (info / debug) before the command runs *)
let logs_t : unit Term.t =
  let setup flags =
    let level =
      match List.length flags with
      | 0 -> None
      | 1 -> Some Logs.Info
      | _ -> Some Logs.Debug
    in
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level level
  in
  Term.(
    const setup
    $ Arg.(
        value & flag_all
        & info [ "v"; "verbose" ] ~doc:"Increase verbosity (repeat for debug)."))

let find_case_exn case_id =
  match Corpus.Registry.find_case case_id with
  | Some c -> c
  | None ->
      Fmt.epr "unknown case %S. Known cases:@.%a@." case_id
        (Fmt.list ~sep:Fmt.cut Fmt.string)
        (List.map (fun (c : Corpus.Case.t) -> c.Corpus.Case.case_id)
           Corpus.Registry.all_cases);
      exit 1

let case_arg =
  let doc = "Corpus case id (e.g. zk-ephemeral). Use `lisa corpus` to list." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CASE" ~doc)

let stage_arg =
  let doc = "Stage of the case's history (0 = original buggy version)." in
  Arg.(value & opt int 2 & info [ "stage" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the enforcement engine.  Defaults to the machine's \
     recommended domain count minus one (never below 1); $(b,--jobs 1) runs \
     on the calling domain and is bit-for-bit deterministic."
  in
  Arg.(
    value
    & opt int (Engine.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)

let corpus_list () =
  Fmt.pr "%-28s %-10s %-6s %-40s@." "case" "system" "bugs" "feature";
  List.iter
    (fun (c : Corpus.Case.t) ->
      Fmt.pr "%-28s %-10s %-6d %-40s@." c.Corpus.Case.case_id c.Corpus.Case.system
        (Corpus.Case.n_bugs c) c.Corpus.Case.feature)
    Corpus.Registry.all_cases;
  Fmt.pr "@.%d cases, %d bugs; %d/%d bugs violate old semantics (%.0f%%)@."
    Corpus.Registry.n_cases Corpus.Registry.n_bugs
    Corpus.Registry.n_bugs_violating_old_semantics Corpus.Registry.n_bugs
    (100. *. Corpus.Registry.old_semantics_share ())

let corpus_synth_cmd =
  let seed_arg =
    let doc = "Generator seed: the whole corpus is a pure function of it." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let size_arg =
    let doc =
      "Scale factor: the registry holds $(docv) x 4 systems of 4 cases each."
    in
    Arg.(value & opt int 1 & info [ "size" ] ~docv:"S" ~doc)
  in
  let case_arg =
    let doc =
      "Focus on generated case $(docv) (the global index used by the \
       minimizer's repro command): print its tickets, run the validator \
       and the planted-bug check, and on failure shrink to a minimal \
       reproduction."
    in
    Arg.(value & opt (some int) None & info [ "case" ] ~docv:"K" ~doc)
  in
  let system_arg =
    let doc = "Print the assembled source of this generated system." in
    Arg.(value & opt (some string) None & info [ "system" ] ~docv:"NAME" ~doc)
  in
  let release_arg =
    let doc = "Release version for $(b,--system) source assembly." in
    Arg.(value & opt int 3 & info [ "release" ] ~docv:"V" ~doc)
  in
  let show_case ~seed k =
    let c = Corpus.Synth.case_at ~seed k in
    Fmt.pr "case %d: %s (system %s, %d stage(s))@." k c.Corpus.Case.case_id
      c.Corpus.Case.system c.Corpus.Case.n_stages;
    List.iter
      (fun (t : Oracle.Ticket.t) -> Fmt.pr "  ticket %s@." (Oracle.Ticket.summary t))
      (Corpus.Case.tickets c);
    match Lisa.Synth_check.full c with
    | None -> Fmt.pr "check: ok (validates, planted bug found at stage 2 only)@."
    | Some failure -> (
        Fmt.pr "check: FAIL — %s@." failure;
        match Corpus.Synth.minimize ~fails:Lisa.Synth_check.full ~seed k with
        | None -> exit 1
        | Some r ->
            Fmt.pr
              "minimized: aux_tests=%d fixture_extra=%d helper=%b@.failure: \
               %s@.repro: %s@."
              r.Corpus.Synth.rp_knobs.Corpus.Synth.k_aux_tests
              r.Corpus.Synth.rp_knobs.Corpus.Synth.k_fixture_extra
              r.Corpus.Synth.rp_knobs.Corpus.Synth.k_helper
              r.Corpus.Synth.rp_failure
              (Corpus.Synth.repro_command r);
            exit 1)
  in
  let run seed size case system version =
    match (case, system) with
    | Some k, _ -> show_case ~seed k
    | None, Some sys ->
        let reg = Corpus.Synth.registry ~seed ~scale:size () in
        if not (List.mem sys reg.Corpus.Registry.systems) then begin
          Fmt.epr "unknown synthetic system %S (have: %s)@." sys
            (String.concat ", " reg.Corpus.Registry.systems);
          exit 1
        end;
        print_string (Corpus.Registry.source_of reg sys ~version)
    | None, None ->
        let reg = Corpus.Synth.registry ~seed ~scale:size () in
        Fmt.pr "%s: %d system(s), %d case(s), scan versions %s@.@."
          reg.Corpus.Registry.name
          (List.length reg.Corpus.Registry.systems)
          (Corpus.Registry.case_count reg)
          (String.concat ","
             (List.map string_of_int reg.Corpus.Registry.scan_versions));
        List.iter
          (fun sys ->
            Fmt.pr "%s@." sys;
            List.iter
              (fun (v, msg) -> Fmt.pr "  v%d %s@." v msg)
              (Corpus.Registry.history_of reg sys);
            List.iter
              (fun (c : Corpus.Case.t) ->
                Fmt.pr "  %-24s %s@." c.Corpus.Case.case_id
                  c.Corpus.Case.feature)
              (Corpus.Registry.cases_of reg sys))
          reg.Corpus.Registry.systems
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Generate a seeded synthetic corpus: list its systems, cases and \
          commit histories, dump assembled sources, or re-check one case \
          (the fuzzer/minimizer repro path)")
    Term.(const run $ seed_arg $ size_arg $ case_arg $ system_arg $ release_arg)

let corpus_cmd =
  let default = Term.(const corpus_list $ const ()) in
  Cmd.group ~default
    (Cmd.info "corpus"
       ~doc:
         "List the incident corpus (default) or work with generated \
          synthetic corpora ($(b,lisa corpus synth))")
    [ corpus_synth_cmd ]

let ticket_of ~which c =
  let tickets = Corpus.Case.tickets c in
  match (which, tickets) with
  | 0, t :: _ -> t
  | n, ts when n < List.length ts -> List.nth ts n
  | _ ->
      Fmt.epr "case has only %d ticket(s)@." (List.length tickets);
      exit 1

let which_arg =
  let doc = "Which ticket of the case (0 = original incident)." in
  Arg.(value & opt int 0 & info [ "ticket" ] ~docv:"N" ~doc)

let show_ticket_cmd =
  let run case_id which =
    let t = ticket_of ~which (find_case_exn case_id) in
    Fmt.pr "%s@.@.description: %s@.@.discussion: %s@.@.regression tests: %s@.@.%s@."
      (Oracle.Ticket.summary t) t.Oracle.Ticket.description
      t.Oracle.Ticket.discussion
      (String.concat ", " t.Oracle.Ticket.regression_tests)
      (Oracle.Ticket.diff t)
  in
  Cmd.v (Cmd.info "show-ticket" ~doc:"Print one ticket bundle")
    Term.(const run $ case_arg $ which_arg)

let prompt_cmd =
  let run case_id which =
    print_endline (Oracle.Prompt.build (ticket_of ~which (find_case_exn case_id)))
  in
  Cmd.v (Cmd.info "prompt" ~doc:"Print the Listing-1 prompt for a ticket")
    Term.(const run $ case_arg $ which_arg)

let infer_cmd =
  let run case_id which =
    let t = ticket_of ~which (find_case_exn case_id) in
    let inf = Oracle.Inference.infer t in
    Fmt.pr "high-level semantics: %s@.@." inf.Oracle.Inference.inf_high_level;
    List.iter (fun r -> Fmt.pr "rule: %s@." (Semantics.Rule.to_string r)) inf.Oracle.Inference.inf_rules;
    Fmt.pr "@.JSON (Listing 1 output format):@.%s@." (Oracle.Inference.to_json inf)
  in
  Cmd.v (Cmd.info "infer" ~doc:"Run low-level-semantics inference on a ticket")
    Term.(const run $ case_arg $ which_arg)

let check_cmd =
  let run case_id stage =
    let c = find_case_exn case_id in
    let outcome = Lisa.Pipeline.learn (Corpus.Case.original_ticket c) in
    Fmt.pr "learned %d rule(s) from %s:@." (List.length outcome.Lisa.Pipeline.accepted)
      (Corpus.Case.original_ticket c).Oracle.Ticket.ticket_id;
    List.iter (fun r -> Fmt.pr "  %s@." (Semantics.Rule.to_string r)) outcome.Lisa.Pipeline.accepted;
    let book = Semantics.Rulebook.of_rules ~system:c.Corpus.Case.system outcome.Lisa.Pipeline.accepted in
    let reports = Lisa.Pipeline.enforce (Corpus.Case.program_at c stage) book in
    Fmt.pr "@.enforcement against stage %d:@." stage;
    List.iter (fun r -> Fmt.pr "  %s@." (Lisa.Checker.report_summary r)) reports;
    List.iter
      (fun (r : Lisa.Checker.rule_report) ->
        List.iter
          (fun (t : Lisa.Checker.trace_verdict) ->
            match t.Lisa.Checker.tv_result with
            | Smt.Solver.Violation m ->
                Fmt.pr "  VIOLATION in %s (driven by %s)@.    path condition: %s@.    counterexample: %s@."
                  t.Lisa.Checker.tv_method t.Lisa.Checker.tv_entry
                  (Smt.Formula.to_string t.Lisa.Checker.tv_pc)
                  (Smt.Solver.model_to_string m)
            | Smt.Solver.Verified | Smt.Solver.Undecided _ -> ())
          r.Lisa.Checker.rep_violations;
        List.iter
          (fun (f : Lisa.Checker.lock_finding) ->
            Fmt.pr "  LOCK VIOLATION: %s performs %s under a monitor (stmt %d)@."
              f.Lisa.Checker.lf_method f.Lisa.Checker.lf_op f.Lisa.Checker.lf_sid)
          r.Lisa.Checker.rep_lock_findings)
      reports;
    if not (List.exists Lisa.Checker.has_violations reports) then Fmt.pr "  clean@."
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Learn rules from a case's first incident and enforce them on a stage")
    Term.(const (fun () c s -> run c s) $ logs_t $ case_arg $ stage_arg)

let report_cmd =
  let run case_id stage =
    let c = find_case_exn case_id in
    let outcome = Lisa.Pipeline.learn (Corpus.Case.original_ticket c) in
    let book =
      Semantics.Rulebook.of_rules ~system:c.Corpus.Case.system
        outcome.Lisa.Pipeline.accepted
    in
    let reports = Lisa.Pipeline.enforce (Corpus.Case.program_at c stage) book in
    print_endline
      (Lisa.Report.render
         ~title:(Fmt.str "%s stage %d" case_id stage)
         reports)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Markdown enforcement report for a case stage")
    Term.(const (fun () c s -> run c s) $ logs_t $ case_arg $ stage_arg)

let ci_cmd =
  let triage_arg =
    let doc =
      "Gate stages through witness-replay triage: only findings that \
       survive it (witnessed / consistent) block; all-Likely-FP rules \
       are demoted to advisory events."
    in
    Arg.(value & flag & info [ "triage" ] ~doc)
  in
  let run case_id jobs triage =
    let triage_config =
      if triage then Some Triage.default_config else None
    in
    let r = Lisa.Ci.replay ~jobs ?triage:triage_config (find_case_exn case_id) in
    print_endline (Lisa.Ci.run_to_string r);
    (* exit 2: the history replayed, but some stage's verdict is
       best-effort (lost evidence) — distinct from eval errors (1) *)
    if Lisa.Ci.degraded_stages r <> [] then exit 2
  in
  Cmd.v (Cmd.info "ci" ~doc:"Replay a case's gated version history")
    Term.(
      const (fun () c j t -> run c j t)
      $ logs_t $ case_arg $ jobs_arg $ triage_arg)

let engine_cmd =
  let fault_seed_arg =
    let doc =
      "Arm the deterministic fault injector with this seed before the scan \
       (chaos mode: solver, concolic, oracle, and cache calls may fail)."
    in
    Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)
  in
  let fault_rate_arg =
    let doc = "Per-call fault probability when $(b,--fault-seed) is set." in
    Arg.(value & opt float 0.05 & info [ "fault-rate" ] ~docv:"P" ~doc)
  in
  let trace_arg =
    let doc =
      "Record every pipeline stage through the telemetry tracer and write \
       Chrome-trace JSON (chrome://tracing, Perfetto) to $(docv), plus a \
       per-span summary table on stdout."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let noise_rate_arg =
    let doc =
      "Perturb the oracle with this corruption probability per rule \
       (hallucinated-semantics noise model: weakened, flipped, or \
       ghost-target conditions).  0.0 leaves inference untouched."
    in
    Arg.(value & opt float 0.0 & info [ "noise-rate" ] ~docv:"P" ~doc)
  in
  let noise_seed_arg =
    let doc = "Deterministic seed for the oracle noise model." in
    Arg.(value & opt int 0 & info [ "noise-seed" ] ~docv:"SEED" ~doc)
  in
  let no_cross_check_arg =
    let doc =
      "Skip the learning-time cross-check (accept rules without validating \
       them against the patched version) — lets noisy rules through so \
       enforcement-time triage can be demonstrated."
    in
    Arg.(value & flag & info [ "no-cross-check" ] ~doc)
  in
  let triage_arg =
    let doc =
      "Run witness-replay triage over every finding and print its tier \
       (witnessed / consistent / likely-fp) next to the rule id."
    in
    Arg.(value & flag & info [ "triage" ] ~doc)
  in
  let run jobs fault_seed fault_rate trace noise_rate noise_seed no_cross_check
      triage =
    (match fault_seed with
    | Some seed ->
        Resilience.Injector.arm (Resilience.Plan.make ~seed ~rate:fault_rate ())
    | None -> ());
    if trace <> None then Telemetry.Trace.set_enabled true;
    Fun.protect ~finally:Resilience.Injector.disarm @@ fun () ->
    let engine_config =
      { Engine.Scheduler.default_config with Engine.Scheduler.jobs }
    in
    let config =
      {
        Lisa.Pipeline.default_config with
        Lisa.Pipeline.noise =
          (if noise_rate > 0.0 then
             { Oracle.Inference.epsilon = noise_rate; seed = noise_seed }
           else Oracle.Inference.no_noise);
        cross_check = not no_cross_check;
      }
    in
    let triage_config =
      if triage then Some Triage.default_config else None
    in
    let results, stats =
      Lisa.System_scan.run_engine ~config ~engine_config ?triage:triage_config
        ()
    in
    print_string (Lisa.System_scan.print_with_stats (results, stats));
    (match trace with
    | None -> ()
    | Some path ->
        Telemetry.Trace.export_to_file path;
        Fmt.pr "@.trace: %d event(s) written to %s@.@.%s"
          (Telemetry.Trace.event_count ())
          path
          (Telemetry.Trace.summary ()));
    (* exit 3: some rules were quarantined — their verdicts are missing,
       so the scan must not read as a clean pass *)
    if stats.Engine.Stats.quarantined <> [] then exit 3
  in
  Cmd.v
    (Cmd.info "engine"
       ~doc:
         "Run the whole-system scan (every rulebook against releases \
          v1/v2/v3/v5) through the parallel, incremental, cached enforcement \
          engine and print its statistics")
    Term.(
      const (fun () j s r t nr ns ncc tr -> run j s r t nr ns ncc tr)
      $ logs_t $ jobs_arg $ fault_seed_arg $ fault_rate_arg $ trace_arg
      $ noise_rate_arg $ noise_seed_arg $ no_cross_check_arg $ triage_arg)

let run_tests_cmd =
  let run case_id stage =
    let c = find_case_exn case_id in
    let p = Corpus.Case.program_at c stage in
    let failed = ref 0 in
    List.iter
      (fun name ->
        match Minilang.Interp.run_test p name with
        | Minilang.Interp.Passed -> Fmt.pr "PASS %s@." name
        | Minilang.Interp.Failed m ->
            incr failed;
            Fmt.pr "FAIL %s: %s@." name m
        | Minilang.Interp.Errored m ->
            incr failed;
            Fmt.pr "ERROR %s: %s@." name m)
      (Minilang.Interp.test_names p);
    if !failed > 0 then exit 1
  in
  Cmd.v (Cmd.info "run-tests" ~doc:"Run a corpus stage's test suite")
    Term.(const run $ case_arg $ stage_arg)

let parse_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniJava source file")
  in
  let run file =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    match Minilang.Parser.program ~file src with
    | exception Minilang.Parser.Error (m, loc) ->
        Fmt.epr "parse error: %s at %a@." m Minilang.Loc.pp loc;
        exit 1
    | exception Minilang.Lexer.Error (m, loc) ->
        Fmt.epr "lex error: %s at %a@." m Minilang.Loc.pp loc;
        exit 1
    | p -> (
        match Minilang.Typecheck.check_program p with
        | [] ->
            Fmt.pr "%d class(es), %d function(s); typechecks@."
              (List.length p.Minilang.Ast.p_classes)
              (List.length p.Minilang.Ast.p_funcs)
        | errs ->
            Fmt.epr "%s@." (Minilang.Typecheck.errors_to_string errs);
            exit 1)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and typecheck a MiniJava file")
    Term.(const run $ file_arg)

let serve_cmd =
  let socket_arg =
    let doc =
      "Listen on a Unix domain socket at $(docv) (created, stale files \
       replaced, removed on exit) instead of stdin/stdout JSONL."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Persist the response cache and SMT verdict memo as snapshots in \
       $(docv) and warm-start from them; corrupt or stale snapshots fall \
       back to a cold start."
    in
    Arg.(
      value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let queue_depth_arg =
    let doc =
      "Admission-queue bound; requests beyond it are shed with an \
       $(b,overloaded) response (the accept loop never blocks)."
    in
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N" ~doc)
  in
  let breaker_threshold_arg =
    let doc = "Consecutive failures that open a tenant's circuit breaker." in
    Arg.(value & opt int 3 & info [ "breaker-threshold" ] ~docv:"N" ~doc)
  in
  let breaker_cooldown_arg =
    let doc = "Tenant requests rejected while its breaker cools down." in
    Arg.(value & opt int 8 & info [ "breaker-cooldown" ] ~docv:"N" ~doc)
  in
  let drain_after_eof_arg =
    let doc =
      "Testing mode (stdin only): admit the whole input stream before \
       serving, so admission order — and which request sheds — is \
       deterministic."
    in
    Arg.(value & flag & info [ "drain-after-eof" ] ~doc)
  in
  let trace_arg =
    let doc =
      "Record serve.* spans and counters through the telemetry tracer and \
       write Chrome-trace JSON to $(docv) on shutdown."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let no_triage_arg =
    let doc =
      "Disable witness-replay triage: enforce summaries omit the per-rule \
       $(b,tiers) field (the v1 wire form)."
    in
    Arg.(value & flag & info [ "no-triage" ] ~doc)
  in
  let run jobs socket cache_dir queue_depth breaker_threshold breaker_cooldown
      drain_after_eof no_triage trace =
    if trace <> None then Telemetry.Trace.set_enabled true;
    let config =
      {
        Serve.Daemon.jobs;
        queue_depth;
        breaker_threshold;
        breaker_cooldown;
        cache_dir;
        drain_after_eof;
        triage = (if no_triage then None else Some Triage.default_config);
        registry = Corpus.Registry.builtin;
      }
    in
    let d = Serve.Daemon.create ~config () in
    (match socket with
    | Some path -> Serve.Daemon.serve_socket d ~path
    | None -> Serve.Daemon.serve_channels d stdin stdout);
    match trace with
    | None -> ()
    | Some path ->
        Telemetry.Trace.export_to_file path;
        Fmt.epr "trace: %d event(s) written to %s@."
          (Telemetry.Trace.event_count ())
          path
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the enforcement engine as a long-running daemon: JSONL \
          requests over stdin or a Unix socket, bounded fair multi-tenant \
          admission, per-tenant circuit breakers, and warm caches \
          (optionally persisted across restarts)")
    Term.(
      const (fun () j s c q bt bc de nt t -> run j s c q bt bc de nt t)
      $ logs_t $ jobs_arg $ socket_arg $ cache_dir_arg $ queue_depth_arg
      $ breaker_threshold_arg $ breaker_cooldown_arg $ drain_after_eof_arg
      $ no_triage_arg $ trace_arg)

let () =
  let info =
    Cmd.info "lisa" ~version:"1.0.0"
      ~doc:"Prevent cloud-system regression failures with low-level semantics"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            corpus_cmd;
            show_ticket_cmd;
            prompt_cmd;
            infer_cmd;
            check_cmd;
            report_cmd;
            ci_cmd;
            engine_cmd;
            serve_cmd;
            run_tests_cmd;
            parse_cmd;
          ]))
