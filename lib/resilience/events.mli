(** Resilience event bus: injected faults, retries, quarantines, and
    circuit-breaker transitions flow through one sink so recovery is
    logged, not silent.  The default sink is a {!Logs} source named
    "resilience"; hosts may install their own. *)

type severity = Warn | Error

type t =
  | Fault_injected of { point : Fault.point; kind : Fault.kind; seq : int }
  | Job_retry of { job : string; attempt : int; backoff_ms : int; reason : string }
  | Job_quarantined of { job : string; attempts : int; reason : string }
  | Component_degraded of { component : string; reason : string }
  | Breaker_opened of { point : Fault.point; consecutive : int }
  | Breaker_closed of { point : Fault.point }

val severity : t -> severity

val to_string : t -> string

val src : Logs.src

(** Replace the sink (e.g. to route through a host's log source). *)
val set_sink : (t -> unit) -> unit

(** Restore the default Logs-based sink. *)
val reset_sink : unit -> unit

val emit : t -> unit

(** Total events emitted since process start (monotonic). *)
val emitted_count : unit -> int
