(** A rulebook is the accumulated set of enforced low-level semantics of a
    system — the "executable contracts" the vision section of the paper
    wants every fixed failure to leave behind.  The CI gate re-asserts the
    whole book on every commit. *)

type t = { system : string; mutable rules : Rule.t list }

let create ~system = { system; rules = [] }

let add (book : t) (r : Rule.t) : unit =
  if not (List.exists (fun r' -> r'.Rule.rule_id = r.Rule.rule_id) book.rules) then
    book.rules <- book.rules @ [ r ]

let add_all (book : t) rs = List.iter (add book) rs

let rules (book : t) = book.rules

let size (book : t) = List.length book.rules

let find (book : t) rule_id =
  List.find_opt (fun r -> r.Rule.rule_id = rule_id) book.rules

let state_guards (book : t) = List.filter Rule.is_state_guard book.rules

let lock_rules (book : t) = List.filter Rule.is_lock_rule book.rules

let of_rules ~system rs =
  let book = create ~system in
  add_all book rs;
  book

let to_string (book : t) =
  Fmt.str "rulebook for %s (%d rules):\n%s" book.system (size book)
    (String.concat "\n" (List.map (fun r -> "  " ^ Rule.to_string r) book.rules))

(** Find the statements of [p] that a target spec denotes. *)
let resolve_targets (p : Minilang.Ast.program) (spec : Rule.target_spec) :
    (string * Minilang.Ast.stmt) list =
  let open Minilang in
  let methods = Ast.methods_of_program p in
  match spec with
  | Rule.Call_to { callee; in_method } ->
      List.concat_map
        (fun (cls, m) ->
          let qname = Ast.qualified_name cls m in
          if in_method <> None && in_method <> Some qname then []
          else
            let acc = ref [] in
            Ast.iter_stmts
              (fun st ->
                if List.mem callee (Ast.callees_of_stmt st) then acc := (qname, st) :: !acc)
              m.Ast.m_body;
            List.rev !acc)
        methods
  | Rule.Stmt_text text ->
      List.concat_map
        (fun (cls, m) ->
          let qname = Ast.qualified_name cls m in
          let acc = ref [] in
          Ast.iter_stmts
            (fun st ->
              if String.equal (Pretty.stmt_head_to_string st) text then
                acc := (qname, st) :: !acc)
            m.Ast.m_body;
          List.rev !acc)
        methods
