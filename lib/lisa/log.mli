(** Logging source for the LISA pipeline ("lisa").  Consumers install a
    {!Logs} reporter and set the level; the library only emits.  Loading
    this module reroutes {!Resilience.Events} into this source (faults
    and retries as warnings, quarantine and opened breakers as errors). *)

val src : Logs.src

val info : ('a, Format.formatter, unit, unit) format4 -> 'a

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a

val warn : ('a, Format.formatter, unit, unit) format4 -> 'a

val err : ('a, Format.formatter, unit, unit) format4 -> 'a

(** Route resilience events through this log source (done once at module
    load; exposed so a consumer can re-install after swapping sinks). *)
val install_resilience_sink : unit -> unit
