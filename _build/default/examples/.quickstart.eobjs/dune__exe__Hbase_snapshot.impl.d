examples/hbase_snapshot.ml: Corpus Fmt Lisa List Oracle Semantics Smt
