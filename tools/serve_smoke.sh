#!/bin/sh
# Serve-daemon smoke for `make check`.
#
# Four legs, all against the real `lisa serve` binary over stdin JSONL:
#   1. cold start at queue depth 2 with three requests in deterministic
#      admission order (--drain-after-eof): the first two must be
#      served, the third must shed with an `overloaded` response, and
#      the process must exit cleanly after saving snapshots
#   2. warm restart from those snapshots: the same verdict payloads
#      byte-for-byte (timings and the cached flag stripped), served
#      from the persisted response cache
#   3. a corrupted snapshot: the daemon must report a cold fallback and
#      still serve — never crash
#   4. the recorded trace must validate and carry the serve.request
#      span and the serve.queue counter series
set -eu

LISA=${LISA:-_build/default/bin/lisa_cli.exe}
TRACE_CHECK=${TRACE_CHECK:-_build/default/tools/trace_check.exe}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "serve_smoke: FAIL: $1" >&2
  exit 1
}

REQS='{"id":"s1","tenant":"a","op":"enforce","system":"zookeeper","version":1}
{"id":"s2","tenant":"b","op":"enforce","system":"zookeeper","version":5}
{"id":"s3","tenant":"a","op":"enforce","system":"zookeeper","version":3}'

# verdict payload only: drop the fields that legitimately differ
# between cold and warm (cache provenance and timings)
strip() {
  sed -e 's/,"cached":[a-z]*//' -e 's/,"stats":{[^}]*}//' "$1"
}

# --- 1: cold start, deterministic overload shed ---------------------
printf '%s\n' "$REQS" | "$LISA" serve --drain-after-eof --queue-depth 2 \
  --cache-dir "$DIR/cache" --trace "$DIR/trace.json" > "$DIR/cold.jsonl" \
  || fail "cold daemon did not exit cleanly"
[ "$(grep -c '"status":"ok"' "$DIR/cold.jsonl")" = 2 ] \
  || fail "expected exactly 2 served responses cold"
grep -q '"id":"s3","tenant":"a","status":"overloaded"' "$DIR/cold.jsonl" \
  || fail "request s3 was not shed with an overloaded response"

# --- 2: warm restart, byte-identical verdicts -----------------------
printf '%s\n' "$REQS" | "$LISA" serve --drain-after-eof \
  --cache-dir "$DIR/cache" > "$DIR/warm.jsonl" \
  || fail "warm daemon did not exit cleanly"
[ "$(grep -c '"status":"ok"' "$DIR/warm.jsonl")" = 3 ] \
  || fail "expected all 3 served warm (queue depth is default)"
[ "$(grep -c '"cached":true' "$DIR/warm.jsonl")" = 2 ] \
  || fail "warm restart did not serve s1/s2 from the persisted cache"
for id in s1 s2; do
  cold=$(strip "$DIR/cold.jsonl" | grep "\"id\":\"$id\"")
  warm=$(strip "$DIR/warm.jsonl" | grep "\"id\":\"$id\"")
  [ "$cold" = "$warm" ] || fail "warm verdict for $id differs from cold"
done

# --- 3: corrupted snapshot falls back to a clean cold start ---------
printf 'garbage, not a snapshot' > "$DIR/cache/responses.snap"
printf '%s\n' '{"id":"c1","op":"enforce","system":"zookeeper","version":1}' \
  | "$LISA" serve -v --cache-dir "$DIR/cache" \
    > "$DIR/corrupt.jsonl" 2> "$DIR/corrupt.log" \
  || fail "daemon crashed on a corrupted snapshot"
grep -q 'cache responses: cold' "$DIR/corrupt.log" \
  || fail "corrupted snapshot was not reported as a cold fallback"
c1=$(strip "$DIR/corrupt.jsonl" | grep '"id":"c1"') || fail "c1 unanswered"
case "$c1" in
*'"status":"ok"'*) ;;
*) fail "daemon did not serve after the corrupted-snapshot fallback" ;;
esac
grep -q '"cached":false' "$DIR/corrupt.jsonl" \
  || fail "cold-fallback response claimed a cache hit"

# --- 4: serve.* telemetry names in the trace ------------------------
"$TRACE_CHECK" "$DIR/trace.json" serve.request counter:serve.queue \
  || fail "trace is missing serve.request span or serve.queue counter"

echo "serve_smoke: OK (overload shed, warm byte-identity, corrupt-snapshot cold fallback, serve.* trace)"
