lib/diffing/textutil.mli:
