(** Domain-local cache lifecycle for the engine's worker domains.

    The hot-path caches keep per-domain state in [Domain.DLS]: the SMT
    verdict memo's front cache and the solver's pending learned-clause
    buffer.  The scheduler passes these hooks to {!Pool.map_results} so
    every worker domain enters with warm state and retires without
    stranding unpublished clauses.  Both hooks are idempotent and safe
    on the calling domain (the serial [jobs <= 1] path runs them
    too). *)

(** Run at worker-domain start: eagerly create the domain's SMT memo
    front cache ({!Smt.Memo.init_local}). *)
val enter : unit -> unit

(** Run as a worker domain retires: publish its pending learned
    clauses ({!Smt.Solver.flush_learned}). *)
val leave : unit -> unit
