(** Chaos suite: the E11 whole-system workload under seeded fault plans
    ({!Resilience}), checking the engine's fault-tolerance contract —
    no fault escapes [enforce], same-seed runs replay identically, chaos
    findings are a subset of the no-fault baseline, and a post-chaos
    no-fault run renders byte-identical to it. *)

type observation = {
  ob_findings : (string * int * string list) list;
      (** (system, version, violating rule ids) in scan order *)
  ob_degraded : (string * int * string list) list;
      (** (system, version, degraded rule ids) in scan order *)
  ob_quarantined : string list;  (** sorted rule ids *)
  ob_retries : int;
  ob_faults : int;  (** faults injected during this run *)
  ob_crash : string option;  (** an exception escaped [enforce] *)
}

type seed_result = {
  sr_seed : int;
  sr_first : observation;
  sr_second : observation;  (** same seed, fresh state: must equal first *)
}

type result = {
  res_systems : string list;
  res_rate : float;
  res_baseline : observation;
  res_baseline_render : string;  (** full Markdown of the no-fault scan *)
  res_seeds : seed_result list;
  res_parallel : observation;  (** jobs = 4 leg under the first seed *)
  res_post_render : string;  (** no-fault re-run after all the chaos *)
  res_oracle_outage_ok : bool;
}

(** Reset the process-global shared state every chaos run starts from:
    injector disarmed and rewound, breakers closed, SMT cache empty. *)
val reset_shared_state : unit -> unit

(** Run the suite.  [smoke] restricts to zookeeper (the CI gate);
    default seeds [1; 2; 3], default per-call fault rate 0.05. *)
val run : ?seeds:int list -> ?rate:float -> ?smoke:bool -> unit -> result

(** Named invariant checks, in report order. *)
val invariants : result -> (string * bool) list

val invariants_ok : result -> bool

val print : result -> string
