(** Keyed circuit breakers: {!Breaker} semantics over arbitrary string
    keys, instance-based.  One pathological key (a tenant flooding a
    daemon with failing requests) is quarantined behind its own breaker
    without touching any other key's state. *)

type state = Closed | Open_remaining of int  (** calls still to skip *)

type cell = {
  mutable st : state;
  mutable consecutive : int;  (** consecutive failures while closed *)
  mutable trips : int;  (** total times this breaker opened *)
}

type t = {
  threshold : int;
  cooldown : int;
  lock : Mutex.t;
  cells : (string, cell) Hashtbl.t;
}

let create ?(threshold = 5) ?(cooldown = 20) () : t =
  {
    threshold = max 1 threshold;
    cooldown = max 1 cooldown;
    lock = Mutex.create ();
    cells = Hashtbl.create 16;
  }

let with_lock t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

let cell t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c = { st = Closed; consecutive = 0; trips = 0 } in
      Hashtbl.replace t.cells key c;
      c

let proceed (t : t) (key : string) : bool =
  with_lock t (fun () ->
      let c = cell t key in
      match c.st with
      | Closed -> true
      | Open_remaining n when n > 0 ->
          c.st <- Open_remaining (n - 1);
          false
      | Open_remaining _ -> true (* half-open probe *))

let success (t : t) (key : string) : unit =
  with_lock t (fun () ->
      let c = cell t key in
      c.st <- Closed;
      c.consecutive <- 0)

let failure (t : t) (key : string) : bool =
  with_lock t (fun () ->
      let c = cell t key in
      c.consecutive <- c.consecutive + 1;
      match c.st with
      | Open_remaining _ ->
          (* failed half-open probe: re-open for a full cooldown *)
          c.st <- Open_remaining t.cooldown;
          c.trips <- c.trips + 1;
          true
      | Closed when c.consecutive >= t.threshold ->
          c.st <- Open_remaining t.cooldown;
          c.trips <- c.trips + 1;
          true
      | Closed -> false)

let is_open (t : t) (key : string) : bool =
  with_lock t (fun () ->
      match (cell t key).st with Closed -> false | Open_remaining _ -> true)

let trips (t : t) (key : string) : int = with_lock t (fun () -> (cell t key).trips)

let total_trips (t : t) : int =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ c n -> n + c.trips) t.cells 0)

let keys (t : t) : string list =
  with_lock t (fun () ->
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.cells []))

let reset (t : t) : unit = with_lock t (fun () -> Hashtbl.reset t.cells)
