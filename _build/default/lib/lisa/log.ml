(** Logging source for the LISA pipeline.

    Consumers (the CLI's [-v], tests, or a host application) install a
    {!Logs} reporter and set the level; the library only emits. *)

let src = Logs.Src.create "lisa" ~doc:"LISA pipeline events"

module L = (val Logs.src_log src : Logs.LOG)

let info fmt = Format.kasprintf (fun s -> L.info (fun m -> m "%s" s)) fmt

let debug fmt = Format.kasprintf (fun s -> L.debug (fun m -> m "%s" s)) fmt

let warn fmt = Format.kasprintf (fun s -> L.warn (fun m -> m "%s" s)) fmt
