(** Engine run statistics.

    The engine owns a {!recorder} per {!Scheduler.t}; every count lands
    in the process-global [Telemetry.Metrics] registry under a
    per-recorder namespace ("engine.<id>.<field>"), so an engine run is
    observable through telemetry snapshots and traces with no second
    bookkeeping path.  {!snapshot} materialises the namespace back into
    the plain record consumers have always read.

    "Solver calls saved" counts SMT verdict cache hits — each one is a
    {!Smt.Solver.solve} invocation that did not happen — plus nothing
    else: report reuse savings show up indirectly as the drop in
    [solver_calls] itself. *)

type job_time = {
  jt_job_id : string;
  jt_rule_id : string;
  jt_wall_s : float;  (** dynamic-phase wall time of this job *)
}

type t = {
  enforcements : int;  (** [enforce] calls served *)
  jobs_run : int;  (** dynamic phases actually executed *)
  report_hits : int;  (** jobs answered from the report cache *)
  report_misses : int;
  incremental_reuses : int;
      (** jobs skipped by the diff-based incremental pre-pass (no
          fingerprinting, no prepare: the previous report was reused) *)
  smt_hits : int;  (** verdict-cache hits during our runs *)
  smt_misses : int;
  intern_hits : int;  (** hash-cons table hits during our runs *)
  intern_misses : int;  (** fresh nodes interned during our runs *)
  intern_size : int;
      (** live interned nodes (terms + formulas + strings) at snapshot
          time — process-global, monotone: hashcons tables never evict *)
  solver_calls : int;  (** {!Smt.Solver.solve} calls during our runs *)
  assume_pushes : int;  (** incremental-context assertions during our runs *)
  assume_pops : int;
  propagations : int;  (** literals implied by unit propagation *)
  learned_conflicts : int;  (** theory conflict sets learned *)
  shard_contention : int;
      (** hash-cons shard-lock acquisitions that had to wait, during
          our runs (0 at [jobs <= 1]) *)
  memo_local_hits : int;
      (** SMT verdict-cache hits answered by a domain-local front
          cache (zero-lock hits; a subset of [smt_hits]) *)
  learned_batched : int;
      (** learned clauses published through batch flushes during our
          runs *)
  trie_nodes : int;  (** path-condition trie nodes built during our runs *)
  trie_shared : int;  (** trie nodes shared by >= 2 path conditions *)
  fastpath_interval : int;
      (** solver queries retired by the abstract-domain pre-solver *)
  fastpath_bcp : int;  (** queries retired by the root-BCP-only check *)
  fastpath_subsumed : int;
      (** trie leaf queries answered by prefix-Unsat subtree pruning *)
  fastpath_saved : int;
      (** full DPLL(T) searches avoided (sum of the fast-path rungs) *)
  memo_local_evict : int;
      (** domain-local SMT front-cache resets forced by the cap *)
  memo_fill_ratio : float;
      (** global SMT memo store occupancy at snapshot time, 0..1 *)
  wall_s : float;  (** total [enforce] wall time *)
  job_times : job_time list;  (** newest first, bounded by the ring *)
  retries : int;  (** failed jobs re-run after backoff *)
  degraded_jobs : int;
      (** jobs whose report carries a degradation reason (out-of-fuel
          runs, undecided verdicts, quarantine placeholders) *)
  quarantined : string list;
      (** rule ids whose jobs exhausted their retries, newest first *)
}

type counter =
  | Enforcements
  | Jobs_run
  | Report_hits
  | Report_misses
  | Incremental_reuses
  | Smt_hits
  | Smt_misses
  | Intern_hits
  | Intern_misses
  | Solver_calls
  | Assume_pushes
  | Assume_pops
  | Propagations
  | Learned_conflicts
  | Shard_contention
  | Memo_local_hits
  | Learned_batched
  | Trie_nodes
  | Trie_shared
  | Fastpath_interval
  | Fastpath_bcp
  | Fastpath_subsumed
  | Fastpath_saved
  | Memo_local_evict
  | Retries
  | Degraded_jobs

let counter_name = function
  | Enforcements -> "enforcements"
  | Jobs_run -> "jobs_run"
  | Report_hits -> "report_hits"
  | Report_misses -> "report_misses"
  | Incremental_reuses -> "incremental_reuses"
  | Smt_hits -> "smt_hits"
  | Smt_misses -> "smt_misses"
  | Intern_hits -> "intern_hits"
  | Intern_misses -> "intern_misses"
  | Solver_calls -> "solver_calls"
  | Assume_pushes -> "assume_pushes"
  | Assume_pops -> "assume_pops"
  | Propagations -> "propagations"
  | Learned_conflicts -> "learned_conflicts"
  | Shard_contention -> "shard_contention"
  | Memo_local_hits -> "memo_local_hits"
  | Learned_batched -> "learned_batched"
  | Trie_nodes -> "trie_nodes"
  | Trie_shared -> "trie_shared"
  | Fastpath_interval -> "fastpath_interval"
  | Fastpath_bcp -> "fastpath_bcp"
  | Fastpath_subsumed -> "fastpath_subsumed"
  | Fastpath_saved -> "fastpath_saved"
  | Memo_local_evict -> "memo_local_evict"
  | Retries -> "retries"
  | Degraded_jobs -> "degraded_jobs"

type recorder = {
  ns : string;  (** metric namespace, "engine.<id>" *)
  cap : int;  (** ring capacity for job times *)
  lock : Mutex.t;
  ring : job_time option array;
  mutable head : int;  (** next write slot *)
  mutable total : int;  (** job times ever recorded *)
  mutable quarantined_ids : string list;  (** newest first *)
}

let next_recorder_id = Atomic.make 0

let default_job_times_cap = 1024

let recorder ?(job_times_cap = default_job_times_cap) () =
  let cap = max 1 job_times_cap in
  {
    ns = Printf.sprintf "engine.%d" (Atomic.fetch_and_add next_recorder_id 1);
    cap;
    lock = Mutex.create ();
    ring = Array.make cap None;
    head = 0;
    total = 0;
    quarantined_ids = [];
  }

let namespace r = r.ns

let key r c = r.ns ^ "." ^ counter_name c

let bump ?(by = 1) r c = Telemetry.Metrics.incr ~by (key r c)

let read r c = Telemetry.Metrics.get (key r c)

let add_wall r dt = Telemetry.Metrics.addf (r.ns ^ ".wall_s") dt

let add_job_time r jt =
  Mutex.lock r.lock;
  r.ring.(r.head) <- Some jt;
  r.head <- (r.head + 1) mod r.cap;
  r.total <- r.total + 1;
  Mutex.unlock r.lock

let quarantine r rule_id =
  Mutex.lock r.lock;
  r.quarantined_ids <- rule_id :: r.quarantined_ids;
  Mutex.unlock r.lock

let reset r =
  Telemetry.Metrics.reset_prefix (r.ns ^ ".");
  Mutex.lock r.lock;
  Array.fill r.ring 0 r.cap None;
  r.head <- 0;
  r.total <- 0;
  r.quarantined_ids <- [];
  Mutex.unlock r.lock

(* newest first, at most [cap] entries *)
let job_times_of r =
  let n = min r.total r.cap in
  let rec collect i acc =
    if i >= n then List.rev acc
    else
      let slot = (r.head - 1 - i + (2 * r.cap)) mod r.cap in
      match r.ring.(slot) with
      | Some jt -> collect (i + 1) (jt :: acc)
      | None -> List.rev acc
  in
  collect 0 []

let snapshot r : t =
  Mutex.lock r.lock;
  let job_times = job_times_of r in
  let quarantined = r.quarantined_ids in
  Mutex.unlock r.lock;
  {
    enforcements = read r Enforcements;
    jobs_run = read r Jobs_run;
    report_hits = read r Report_hits;
    report_misses = read r Report_misses;
    incremental_reuses = read r Incremental_reuses;
    smt_hits = read r Smt_hits;
    smt_misses = read r Smt_misses;
    intern_hits = read r Intern_hits;
    intern_misses = read r Intern_misses;
    intern_size = Smt.Formula.intern_size ();
    solver_calls = read r Solver_calls;
    assume_pushes = read r Assume_pushes;
    assume_pops = read r Assume_pops;
    propagations = read r Propagations;
    learned_conflicts = read r Learned_conflicts;
    shard_contention = read r Shard_contention;
    memo_local_hits = read r Memo_local_hits;
    learned_batched = read r Learned_batched;
    trie_nodes = read r Trie_nodes;
    trie_shared = read r Trie_shared;
    fastpath_interval = read r Fastpath_interval;
    fastpath_bcp = read r Fastpath_bcp;
    fastpath_subsumed = read r Fastpath_subsumed;
    fastpath_saved = read r Fastpath_saved;
    memo_local_evict = read r Memo_local_evict;
    memo_fill_ratio = Smt.Memo.fill_ratio ();
    wall_s = Telemetry.Metrics.getf (r.ns ^ ".wall_s");
    job_times;
    retries = read r Retries;
    degraded_jobs = read r Degraded_jobs;
    quarantined;
  }

(** SMT verdict-cache hits: solver invocations that never happened. *)
let solver_calls_saved (s : t) : int = s.smt_hits

(* Memo-pressure reporting is opt-in so the default [to_string] stays
   byte-identical across configurations and PRs. *)
let memo_pressure_flag = Atomic.make false

let set_memo_pressure b = Atomic.set memo_pressure_flag b

let memo_pressure_enabled () = Atomic.get memo_pressure_flag

let to_string (s : t) : string =
  let base =
    Fmt.str
      "engine: %d enforcement(s), %d job(s) run, report cache %d/%d hit/miss, \
       %d incremental reuse(s), smt cache %d/%d hit/miss, %d solver call(s) \
       (%d saved), %.3fs wall"
      s.enforcements s.jobs_run s.report_hits s.report_misses
      s.incremental_reuses s.smt_hits s.smt_misses s.solver_calls
      (solver_calls_saved s) s.wall_s
  in
  let base =
    if not (memo_pressure_enabled ()) then base
    else
      Fmt.str "%s, memo pressure %d local evict(s) %.3f fill" base
        s.memo_local_evict s.memo_fill_ratio
  in
  (* Resilience counters only appear once something went wrong, so the
     healthy-run string is byte-identical to the pre-resilience engine. *)
  if s.retries = 0 && s.degraded_jobs = 0 && s.quarantined = [] then base
  else
    Fmt.str "%s, %d retrie(s), %d degraded job(s), %d quarantined" base
      s.retries s.degraded_jobs
      (List.length s.quarantined)

(* Bounded selection of the [n] largest by [jt_wall_s] — O(len × n)
   instead of sorting the whole list, with exactly the tie order a
   stable descending sort would give: a later element never displaces
   an equal earlier one. *)
let top_n n jts =
  let insert acc jt =
    let rec go = function
      | [] -> [ jt ]
      | x :: rest when x.jt_wall_s >= jt.jt_wall_s -> x :: go rest
      | rest -> jt :: rest
    in
    let acc = go acc in
    if List.length acc > n then List.filteri (fun i _ -> i < n) acc else acc
  in
  List.fold_left insert [] jts

(** The [n] slowest jobs, one per line. *)
let slowest_jobs ?(n = 5) (s : t) : string =
  top_n n s.job_times
  |> List.map (fun jt ->
         Fmt.str "  %-24s %8.1f ms" jt.jt_rule_id (1000. *. jt.jt_wall_s))
  |> String.concat "\n"
