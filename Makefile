.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate plus the engine acceptance smoke: build, full test
# suite, and the serial/parallel/incremental equivalence checks on the
# zookeeper slice of the E11 workload.
check:
	dune build && dune runtest && dune exec bench/main.exe -- --experiment engine --smoke

bench:
	dune exec bench/main.exe

clean:
	dune clean
