lib/minilang/pretty.ml: Ast Fmt List Printf String
