(** Markdown rendering of enforcement results, the way a CI job surfaces
    them: a PASS/BLOCK verdict, one section per rule, verified/violating
    traces with counterexamples, lock findings, and the uncovered-path
    list that asks for a developer verdict. *)

val render_rule_report : Checker.rule_report -> string

val render : ?title:string -> Checker.rule_report list -> string

(** Triaged variant of {!render_rule_report}: the plain section plus one
    witness-replay tier bullet per finding. *)
val render_triaged_report : Triage.triaged -> string

(** Triaged variant of {!render}: the BLOCK verdict counts only rules
    with findings that survived triage (Witnessed or Consistent);
    all-Likely-FP rules are listed as demoted to advisory. *)
val render_triaged : ?title:string -> Triage.triaged list -> string
