(* Tests for the fix synthesizer: proposals for the two §4 unknown bugs
   must verify (rule clean + tests green), and a synthesized guard must be
   semantically equivalent to the hand-written one. *)

let test_fixes_verify case_id () =
  let cf = Lisa.Fix.fix_unknown_bug case_id in
  Alcotest.(check bool) "at least one proposal" true (cf.Lisa.Fix.cf_proposals <> []);
  List.iter
    (fun ((p : Lisa.Fix.proposal), (v : Lisa.Fix.verification)) ->
      if not v.Lisa.Fix.fv_rule_clean then
        Alcotest.fail
          (Fmt.str "%s: rule not clean after fix: %s" p.Lisa.Fix.fp_method
             v.Lisa.Fix.fv_detail);
      if not v.Lisa.Fix.fv_tests_green then
        Alcotest.fail
          (Fmt.str "%s: tests broken by fix: %s" p.Lisa.Fix.fp_method
             v.Lisa.Fix.fv_detail))
    cf.Lisa.Fix.cf_proposals

let test_fix_targets_right_method () =
  let cf = Lisa.Fix.fix_unknown_bug "hdfs-observer-locations" in
  List.iter
    (fun ((p : Lisa.Fix.proposal), _) ->
      Alcotest.(check string) "patched method" "ObserverNameNode.getBatchedListing"
        p.Lisa.Fix.fp_method)
    cf.Lisa.Fix.cf_proposals

let test_fix_diff_is_reviewable () =
  let cf = Lisa.Fix.fix_unknown_bug "hdfs-observer-locations" in
  match cf.Lisa.Fix.cf_proposals with
  | ((p : Lisa.Fix.proposal), _) :: _ ->
      Alcotest.(check bool) "diff adds the guard" true
        (Astring_contains.contains p.Lisa.Fix.fp_diff "+    if (!(b.locationCount != 0)) {");
      Alcotest.(check bool) "diff contains hunk header" true
        (Astring_contains.contains p.Lisa.Fix.fp_diff "@@ -")
  | [] -> Alcotest.fail "no proposals"

(* the synthesized fix is equivalent to the hand-written one: the patched
   program behaves like stage 5 (the real fix) on the regression test *)
let test_fix_matches_handwritten_behaviour () =
  let c = Option.get (Corpus.Registry.find_case "hbase-snapshot-ttl") in
  let cf = Lisa.Fix.fix_unknown_bug "hbase-snapshot-ttl" in
  match cf.Lisa.Fix.cf_proposals with
  | ((p : Lisa.Fix.proposal), _) :: _ ->
      (* run the stage-5 regression test against the synthesized patch *)
      let handwritten_stage = c.Corpus.Case.n_stages - 1 in
      let handwritten = Corpus.Case.program_at c handwritten_stage in
      let regression_test = "test_hbase29296_copy_expired_rejected" in
      (* the test exists in the handwritten fix... *)
      Alcotest.(check bool) "test exists in stage 5" true
        (Minilang.Ast.find_func handwritten regression_test <> None);
      (* ...and passes against the synthesized patch once appended *)
      let test_src =
        {|
method test_synthesized_copy_expired_rejected() {
  var sm: SnapshotManager = makeSnapshotManager();
  var rejected: bool = false;
  try { var t: str = sm.copyTableFromSnapshot("snap-live", 2000); } catch (e) { rejected = true; }
  assert (rejected, "expired snapshot not copyable after synthesized fix");
}
|}
      in
      let patched =
        Minilang.Parser.program (p.Lisa.Fix.fp_patched_source ^ test_src)
      in
      (match Minilang.Interp.run_test patched "test_synthesized_copy_expired_rejected" with
      | Minilang.Interp.Passed -> ()
      | Minilang.Interp.Failed m | Minilang.Interp.Errored m -> Alcotest.fail m)
  | [] -> Alcotest.fail "no proposals"

let test_no_proposal_for_lock_rules () =
  let rule =
    Semantics.Rule.make ~rule_id:"l" ~description:"d" ~high_level:"h" ~origin:"o"
      (Semantics.Rule.Lock_discipline { scope = Semantics.Rule.Lock_blocking })
  in
  let p = Corpus.Case.program_at (List.hd Corpus.Zookeeper.cases) 2 in
  Alcotest.(check bool) "lock rules are not guard-patchable" true
    (Lisa.Fix.propose p rule ~method_:"whatever" = None)

let suite =
  [
    ( "lisa.fix",
      [
        Alcotest.test_case "hbase fix verifies" `Quick
          (test_fixes_verify "hbase-snapshot-ttl");
        Alcotest.test_case "hdfs fix verifies" `Quick
          (test_fixes_verify "hdfs-observer-locations");
        Alcotest.test_case "targets the right method" `Quick test_fix_targets_right_method;
        Alcotest.test_case "diff is reviewable" `Quick test_fix_diff_is_reviewable;
        Alcotest.test_case "matches hand-written behaviour" `Quick
          test_fix_matches_handwritten_behaviour;
        Alcotest.test_case "no proposal for lock rules" `Quick test_no_proposal_for_lock_rules;
      ] );
  ]
