(** Hand-written lexer for MiniJava.

    Supports line comments ([// ...]) and block comments ([/* ... */]).
    Produces a list of located tokens; errors carry precise locations. *)

exception Error of string * Loc.t

type located = { tok : Token.t; loc : Loc.t }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make_state ~file src = { src; file; pos = 0; line = 1; col = 1 }

let current_loc st = Loc.make ~file:st.file ~line:st.line ~col:st.col

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' -> (
      match peek2 st with
      | Some '/' ->
          let rec to_eol () =
            match peek st with
            | Some '\n' | None -> ()
            | Some _ ->
                advance st;
                to_eol ()
          in
          to_eol ();
          skip_trivia st
      | Some '*' ->
          let start = current_loc st in
          advance st;
          advance st;
          let rec to_close () =
            match (peek st, peek2 st) with
            | Some '*', Some '/' ->
                advance st;
                advance st
            | Some _, _ ->
                advance st;
                to_close ()
            | None, _ -> raise (Error ("unterminated block comment", start))
          in
          to_close ();
          skip_trivia st
      | _ -> ())
  | _ -> ()

let lex_string st =
  let start = current_loc st in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> raise (Error ("unterminated string literal", start))
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            go ()
        | Some '"' ->
            Buffer.add_char buf '"';
            advance st;
            go ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            advance st;
            go ()
        | Some c -> raise (Error (Fmt.str "bad escape '\\%c'" c, current_loc st))
        | None -> raise (Error ("unterminated escape", start)))
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  (Token.STRING (Buffer.contents buf), start)

let lex_number st =
  let start = current_loc st in
  let buf = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Some c when is_digit c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  (Token.INT (int_of_string (Buffer.contents buf)), start)

let lex_ident st =
  let start = current_loc st in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some c when is_ident_char c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  (Token.of_ident (Buffer.contents buf), start)

let next_token st : located =
  skip_trivia st;
  let loc = current_loc st in
  let simple tok =
    advance st;
    { tok; loc }
  in
  let two tok =
    advance st;
    advance st;
    { tok; loc }
  in
  match peek st with
  | None -> { tok = Token.EOF; loc }
  | Some '"' ->
      let tok, loc = lex_string st in
      { tok; loc }
  | Some c when is_digit c ->
      let tok, loc = lex_number st in
      { tok; loc }
  | Some c when is_ident_start c ->
      let tok, loc = lex_ident st in
      { tok; loc }
  | Some '(' -> simple Token.LPAREN
  | Some ')' -> simple Token.RPAREN
  | Some '{' -> simple Token.LBRACE
  | Some '}' -> simple Token.RBRACE
  | Some '[' -> simple Token.LBRACKET
  | Some ']' -> simple Token.RBRACKET
  | Some ',' -> simple Token.COMMA
  | Some ';' -> simple Token.SEMI
  | Some ':' -> simple Token.COLON
  | Some '.' -> simple Token.DOT
  | Some '+' -> simple Token.PLUS
  | Some '-' -> simple Token.MINUS
  | Some '*' -> simple Token.STAR
  | Some '/' -> simple Token.SLASH
  | Some '%' -> simple Token.PERCENT
  | Some '=' -> ( match peek2 st with Some '=' -> two Token.EQ | _ -> simple Token.ASSIGN)
  | Some '!' -> ( match peek2 st with Some '=' -> two Token.NEQ | _ -> simple Token.BANG)
  | Some '<' -> ( match peek2 st with Some '=' -> two Token.LE | _ -> simple Token.LT)
  | Some '>' -> ( match peek2 st with Some '=' -> two Token.GE | _ -> simple Token.GT)
  | Some '&' -> (
      match peek2 st with
      | Some '&' -> two Token.ANDAND
      | _ -> raise (Error ("expected '&&'", loc)))
  | Some '|' -> (
      match peek2 st with
      | Some '|' -> two Token.OROR
      | _ -> raise (Error ("expected '||'", loc)))
  | Some c -> raise (Error (Fmt.str "unexpected character %C" c, loc))

(** Tokenize a whole source buffer.  The returned list always ends with a
    single [EOF] token carrying the end-of-input location. *)
let tokenize ?(file = "<string>") src : located list =
  let st = make_state ~file src in
  let rec go acc =
    let lt = next_token st in
    match lt.tok with Token.EOF -> List.rev (lt :: acc) | _ -> go (lt :: acc)
  in
  go []
