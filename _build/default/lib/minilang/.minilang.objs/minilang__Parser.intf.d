lib/minilang/parser.mli: Ast Loc
