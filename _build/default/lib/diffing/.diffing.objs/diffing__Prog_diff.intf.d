lib/diffing/prog_diff.mli: Format Minilang
