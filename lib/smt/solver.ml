(** Satisfiability and validity for checker formulas.

    A small DPLL(T): the boolean structure is decided by backtracking over
    the formula's canonical atoms with three-valued early evaluation, and
    every partial assignment is checked against the theory
    ({!Theory.consistent}) so that theory-inconsistent branches are pruned
    immediately.  Complete for the supported fragment; formulas in this
    project have at most a few dozen atoms.

    The search core works on a *compiled* form of the (simplified)
    formula: canonical atoms get dense indices, the partial assignment is
    an id-indexed value array instead of an association list, and a
    clausal view of the NNF feeds a two-watched-literal unit-propagation
    engine that prunes unsatisfiable branches before they are entered.
    Theory conflicts are minimized ({!Theory.conflict_core}) and learned
    into a process-global store, so an inconsistent literal set discovered
    in one query prunes sibling branches of every later query.  All of
    these are result-preserving accelerations: verdicts *and* models are
    byte-identical to the plain backtracking search.

    On top of the one-shot {!solve}, an assumption {!context} supports
    {!push}/{!pop} of literal assertions and {!solve_under_assumptions}
    for incremental solving over shared path-condition prefixes (driven
    by {!Pctrie} from the engine's checker).

    The module also implements the paper's *complement check* (§3.2): a
    trace with path condition [pc] **violates** a semantic with checker
    formula [c] iff [pc /\ !c] is satisfiable — under-constrained
    variables (the "missing checks") leave room for the complement, which
    is exactly the behaviour the paper motivates with the missing
    [s.ttl > 0] example. *)

type verdict = Sat of (Formula.atom * bool) list | Unsat | Unknown of string

let verdict_is_sat = function Sat _ -> true | Unsat | Unknown _ -> false

(* Calls to [solve] since the last reset.  Atomic so the engine's worker
   domains can share the counter; the enforcement engine reads it to
   report how many solver invocations a cached run saved. *)
let solve_calls = Atomic.make 0

let solve_count () = Atomic.get solve_calls

let reset_solve_count () = Atomic.set solve_calls 0

(* Incremental-core counters, read by the engine's stats and emitted as
   telemetry counter events. *)
let assume_pushes = Atomic.make 0

let assume_pops = Atomic.make 0

let propagations = Atomic.make 0

let learned_conflicts = Atomic.make 0

let assume_push_count () = Atomic.get assume_pushes

let assume_pop_count () = Atomic.get assume_pops

let propagation_count () = Atomic.get propagations

let learned_count () = Atomic.get learned_conflicts

(* ------------------------------------------------------------------ *)
(* Pre-solver fast path (Absdom / BCP / trie subsumption)              *)
(* ------------------------------------------------------------------ *)

(* The fast path is result-preserving (an Unsat short-circuit carries no
   payload), so the flag deliberately does not participate in any cache
   key: it can change the cost of a verdict, never the verdict.  On by
   default; the bench flips it to measure saved full solves. *)
let fastpath_flag = Atomic.make true

let set_fastpath_enabled b = Atomic.set fastpath_flag b

let fastpath_enabled () = Atomic.get fastpath_flag

(* Queries retired per rung of the ladder, plus the total of full
   DPLL(T) searches actually run ([full_solves]) — the bench's
   reduction metric is full_solves(on) vs full_solves(off). *)
let fastpath_interval = Atomic.make 0

let fastpath_bcp = Atomic.make 0

let fastpath_subsumed = Atomic.make 0

let fastpath_saved = Atomic.make 0

let full_solves = Atomic.make 0

let fastpath_interval_count () = Atomic.get fastpath_interval

let fastpath_bcp_count () = Atomic.get fastpath_bcp

let fastpath_subsumed_count () = Atomic.get fastpath_subsumed

let fastpath_saved_count () = Atomic.get fastpath_saved

let full_solve_count () = Atomic.get full_solves

(* The checker reports trie-subtree prunes here so all fast-path
   counters live in one place. *)
let note_trie_subsumed () =
  Atomic.incr fastpath_subsumed;
  Atomic.incr fastpath_saved

let lits_of_assign (assign : (Formula.atom * bool) list) : Theory.lit list =
  List.map (fun (a, sign) -> Theory.lit sign a) assign

(* ------------------------------------------------------------------ *)
(* Theory-consistency memo and learned conflicts                       *)
(* ------------------------------------------------------------------ *)

(* [Theory.consistent] is called on every node of the DPLL search tree,
   and under engine traffic the same partial assignments recur across
   thousands of structurally similar path conditions.  Memoize verdicts
   globally, keyed by the order-insensitive set of literal ids — a sorted
   list of (sign, rel, lhs id, rhs id) quadruples over the canonical
   atoms' interned terms, so building a key allocates no strings.
   Mutex-protected (worker domains share the table); bounded by epoch
   clearing so it cannot grow without bound. *)
type lit_id = int * int * int * int

let theory_memo : (lit_id list, bool) Hashtbl.t = Hashtbl.create 4096

let theory_memo_lock = Mutex.create ()

let theory_memo_max = ref (1 lsl 16)

let set_theory_memo_max n =
  Mutex.lock theory_memo_lock;
  theory_memo_max := max 2 n;
  Mutex.unlock theory_memo_lock

let theory_memo_size () =
  Mutex.lock theory_memo_lock;
  let n = Hashtbl.length theory_memo in
  Mutex.unlock theory_memo_lock;
  n

let reset_theory_memo () =
  Mutex.lock theory_memo_lock;
  Hashtbl.reset theory_memo;
  Mutex.unlock theory_memo_lock

(* Epoch halving: drop every other entry instead of resetting the whole
   table, so a full memo sheds weight without cold-starting every
   in-flight domain at once.  Caller holds [theory_memo_lock]. *)
let halve_theory_memo () =
  let keep = ref false in
  let victims =
    Hashtbl.fold
      (fun k _ acc ->
        keep := not !keep;
        if !keep then k :: acc else acc)
      theory_memo []
  in
  List.iter (Hashtbl.remove theory_memo) victims

let rel_code = function
  | Formula.Req -> 0
  | Formula.Rneq -> 1
  | Formula.Rlt -> 2
  | Formula.Rle -> 3
  | Formula.Rgt -> 4
  | Formula.Rge -> 5

let lit_key (a, sign) : lit_id =
  let c = Formula.canon_atom a in
  ( (if sign then 1 else 0),
    rel_code c.Formula.rel,
    Formula.term_id c.Formula.lhs,
    Formula.term_id c.Formula.rhs )

(* Learned conflicts: sorted literal-id sets that [Theory.consistent]
   refuted (minimized by {!Theory.conflict_core}).  A conjunction of
   literals is inconsistent whenever any learned set is a subset of it —
   supersets of an inconsistent set are inconsistent — so a conflict
   learned under one path condition prunes sibling branches of every
   later query, across the whole trie.  Indexed by the set's largest
   literal id: if [S] is a subset of the sorted key [K] then
   [max S] is a member of [K], so probing every bucket keyed by a member
   of [K] finds every subset candidate.  Only *definite* theory verdicts
   are learned: [Unknown]/degraded results never reach this store, and
   [set_learning_enabled false] turns the whole mechanism off (the test
   suite pins that learning never changes a verdict).  Shares
   [theory_memo_lock]; bounded by full reset. *)
let learned_table : (lit_id, lit_id list list) Hashtbl.t = Hashtbl.create 256

let learned_size = ref 0

let learned_max = 4096

let learning_flag = Atomic.make true

let set_learning_enabled b = Atomic.set learning_flag b

let learning_enabled () = Atomic.get learning_flag

(* Learned clauses are not published one mutex acquisition at a time:
   each domain accumulates fresh conflicts in a [Domain.DLS] pending
   buffer and flushes them to the global store in a batch — at the end
   of a solve, at a context pop, when the buffer reaches
   [flush_threshold], or explicitly ({!flush_learned}, called by the
   engine's pool when a worker domain retires).  Unpublished clauses
   still prune: {!consistent_with} probes the domain's own pending
   buffer right after the global store, so under a serial schedule the
   set of clauses visible to the search (global ∪ pending) is
   step-by-step identical to the historic publish-immediately design —
   same search trees, same learned counts, same verdicts. *)
let flush_threshold = 64

let learned_batched = Atomic.make 0

let learned_batch_count () = Atomic.get learned_batched

(* Bumped by [reset_learned] so every domain lazily discards clauses it
   learned against the pre-reset store. *)
let learned_epoch = Atomic.make 0

type pending = {
  mutable p_epoch : int;
  mutable p_clauses : lit_id list list;  (* newest first *)
  mutable p_count : int;
}

let pending_key : pending Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { p_epoch = Atomic.get learned_epoch; p_clauses = []; p_count = 0 })

let pending () =
  let p = Domain.DLS.get pending_key in
  let e = Atomic.get learned_epoch in
  if p.p_epoch <> e then begin
    p.p_clauses <- [];
    p.p_count <- 0;
    p.p_epoch <- e
  end;
  p

let reset_learned () =
  (* discard every domain's pending buffer before clearing the store *)
  Atomic.incr learned_epoch;
  Mutex.lock theory_memo_lock;
  Hashtbl.reset learned_table;
  learned_size := 0;
  Mutex.unlock theory_memo_lock

(* [subset s k]: is the sorted list [s] a subset of the sorted list [k]? *)
let rec subset (s : lit_id list) (k : lit_id list) : bool =
  match (s, k) with
  | [], _ -> true
  | _, [] -> false
  | a :: s', b :: k' ->
      let c = compare a b in
      if c = 0 then subset s' k'
      else if c > 0 then subset s k'
      else false

(* caller holds [theory_memo_lock]; [keys] is sorted *)
let learned_subsumes_locked (keys : lit_id list) : bool =
  List.exists
    (fun k ->
      match Hashtbl.find_opt learned_table k with
      | None -> false
      | Some sets -> List.exists (fun s -> subset s keys) sets)
    keys

(* [keys] is sorted; the pending buffer is domain-local, so no lock *)
let pending_subsumes (keys : lit_id list) : bool =
  let p = pending () in
  p.p_clauses <> [] && List.exists (fun s -> subset s keys) p.p_clauses

(* Publish the calling domain's pending clauses under one lock hold. *)
let flush_learned () =
  let p = pending () in
  match p.p_clauses with
  | [] -> ()
  | newest_first ->
      let clauses = List.rev newest_first (* publish in learn order *) in
      let n = p.p_count in
      p.p_clauses <- [];
      p.p_count <- 0;
      Mutex.lock theory_memo_lock;
      List.iter
        (fun ckeys ->
          match List.rev ckeys with
          | [] -> ()
          | max_key :: _ ->
              if !learned_size >= learned_max then begin
                Hashtbl.reset learned_table;
                learned_size := 0
              end;
              let bucket =
                Option.value ~default:[]
                  (Hashtbl.find_opt learned_table max_key)
              in
              (* another domain may have published it meanwhile *)
              if not (List.mem ckeys bucket) then begin
                Hashtbl.replace learned_table max_key (ckeys :: bucket);
                incr learned_size
              end)
        clauses;
      Mutex.unlock theory_memo_lock;
      ignore (Atomic.fetch_and_add learned_batched n)

(* Minimize and record a theory conflict.  The [Theory.conflict_core]
   calls run lock-free (they are theory solves), and so does the store
   append: the clause goes into the domain's pending buffer and is only
   published (one lock hold per batch) when the buffer fills or the
   search reaches a flush point.  No dedup check against pending is
   needed: a conflict reaches this function only after
   {!consistent_with} missed both the global store and the pending
   buffer, and the minimized core is a subset of the refuted assignment,
   so the core cannot already be pending. *)
let learn_conflict (assign : (Formula.atom * bool) list) : unit =
  if learning_enabled () then begin
    let core = Theory.conflict_core (lits_of_assign assign) in
    let ckeys =
      List.sort_uniq compare
        (List.map (fun (l : Theory.lit) -> lit_key (l.Theory.atom, l.Theory.sign)) core)
    in
    match ckeys with
    | [] -> ()
    | _ ->
        let p = pending () in
        p.p_clauses <- ckeys :: p.p_clauses;
        p.p_count <- p.p_count + 1;
        Atomic.incr learned_conflicts;
        if p.p_count >= flush_threshold then flush_learned ()
  end

(* Theory consistency of a partial assignment, through the memo and the
   learned-conflict store.  [keys] is the sorted literal-id key of
   [assign], maintained incrementally by the search.  All three sources
   agree by construction (learned sets and memo entries both record
   definite [Theory.consistent] verdicts), so caching never changes a
   result — only its cost. *)
let consistent_with ~(keys : lit_id list) (assign : (Formula.atom * bool) list) :
    bool =
  match assign with
  | [] -> true
  | _ -> (
      let cached =
        Mutex.lock theory_memo_lock;
        let r =
          match Hashtbl.find_opt theory_memo keys with
          | Some _ as r -> r
          | None ->
              if learned_subsumes_locked keys then begin
                (* promote the subset hit to a memo entry for next time *)
                if Hashtbl.length theory_memo >= !theory_memo_max then
                  halve_theory_memo ();
                Hashtbl.replace theory_memo keys false;
                Some false
              end
              else None
        in
        Mutex.unlock theory_memo_lock;
        r
      in
      let cached =
        match cached with
        | Some _ -> cached
        | None ->
            (* clauses this domain learned but has not yet published
               prune exactly as published ones do, so batching never
               loses a refutation the immediate-publish design had *)
            if pending_subsumes keys then begin
              Mutex.lock theory_memo_lock;
              if Hashtbl.length theory_memo >= !theory_memo_max then
                halve_theory_memo ();
              Hashtbl.replace theory_memo keys false;
              Mutex.unlock theory_memo_lock;
              Some false
            end
            else None
      in
      match cached with
      | Some b -> b
      | None ->
          let b = Theory.consistent (lits_of_assign assign) in
          if not b then learn_conflict assign;
          Mutex.lock theory_memo_lock;
          if Hashtbl.length theory_memo >= !theory_memo_max then
            halve_theory_memo ();
          Hashtbl.replace theory_memo keys b;
          Mutex.unlock theory_memo_lock;
          b)

(* sorted insert; trail literals are distinct so no dedup is needed *)
let rec insert_key (k : lit_id) = function
  | [] -> [ k ]
  | k' :: rest as keys ->
      if compare k k' <= 0 then k :: keys else k' :: insert_key k rest

(* ------------------------------------------------------------------ *)
(* Compiled formulas                                                   *)
(* ------------------------------------------------------------------ *)

(* The search core never walks the hash-consed formula with atom
   association lists: it compiles the simplified formula once per solve.
   Canonical atoms get dense indices (the formula's first-occurrence
   atom order, as {!Formula.atoms} returns it), the three-valued
   evaluation reads an int array (0 unassigned / 1 true / 2 false), and
   the decision order is the same DLIS-style most-occurrences-first
   static heuristic as before — tallied during compilation, stable over
   first-occurrence order, so the search is deterministic and visits
   exactly the nodes the list-based search visited. *)
type cform =
  | C_true
  | C_false
  | C_atom of int
  | C_not of cform
  | C_and of cform array
  | C_or of cform array

type compiled = {
  cp_form : cform;
  cp_atoms : Formula.atom array;  (* index -> canonical atom *)
  cp_order : int list;  (* DLIS decision order over indices *)
  cp_key_t : lit_id array;  (* memo key of atom i asserted true *)
  cp_key_f : lit_id array;  (* ... asserted false *)
  cp_clauses : int array array;
      (* clausal view of the NNF; literal code = 2*idx + (0 pos / 1 neg);
         watched literals live at slots 0 and 1 *)
  cp_units : int array;  (* literal codes of unit clauses *)
}

let compile (f : Formula.t) : compiled =
  let atoms = Formula.atoms f in
  let cp_atoms = Array.of_list atoms in
  let n = Array.length cp_atoms in
  let index : (int * int * int, int) Hashtbl.t = Hashtbl.create (2 * (n + 1)) in
  Array.iteri
    (fun i (a : Formula.atom) ->
      Hashtbl.replace index
        (rel_code a.Formula.rel, Formula.term_id a.Formula.lhs, Formula.term_id a.Formula.rhs)
        i)
    cp_atoms;
  let idx_of (a : Formula.atom) : int =
    let c = Formula.canon_atom a in
    Hashtbl.find index
      (rel_code c.Formula.rel, Formula.term_id c.Formula.lhs, Formula.term_id c.Formula.rhs)
  in
  let counts = Array.make (max 1 n) 0 in
  let rec go g =
    match Formula.view g with
    | Formula.True -> C_true
    | Formula.False -> C_false
    | Formula.Atom a ->
        let i = idx_of a in
        counts.(i) <- counts.(i) + 1;
        C_atom i
    | Formula.Not h -> C_not (go h)
    | Formula.And fs -> C_and (Array.of_list (List.map go fs))
    | Formula.Or fs -> C_or (Array.of_list (List.map go fs))
  in
  let cp_form = go f in
  (* most-occurring atoms first, ties in first-occurrence order *)
  let cp_order =
    List.stable_sort
      (fun i j -> compare counts.(j) counts.(i))
      (List.init n (fun i -> i))
  in
  (* Clausal view of the NNF, extracted by a polarity-aware walk (no
     NNF node is materialized): positive And / negative Or nodes are
     conjunctions; positive Or / negative And nodes whose children are
     all literals become clauses.  Non-clausal conjuncts are skipped —
     the clause set under-approximates the formula's constraints, which
     is sound for propagation (missing a clause only misses a prune). *)
  let clauses = ref [] in
  let lit_code i pol = (2 * i) + if pol then 0 else 1 in
  let rec lits_of g pol acc =
    match acc with
    | None -> None
    | Some ls -> (
        match (Formula.view g, pol) with
        | Formula.Atom a, _ -> Some (lit_code (idx_of a) pol :: ls)
        | Formula.Not h, _ -> lits_of h (not pol) acc
        | Formula.Or gs, true | Formula.And gs, false ->
            List.fold_left (fun acc g -> lits_of g pol acc) acc gs
        | _ -> None)
  in
  let add_clause lits =
    let lits = List.sort_uniq compare lits in
    let tautology = List.exists (fun l -> List.mem (l lxor 1) lits) lits in
    if not tautology && lits <> [] then clauses := Array.of_list lits :: !clauses
  in
  let rec conjuncts g pol =
    match (Formula.view g, pol) with
    | Formula.True, true | Formula.False, false -> ()
    | Formula.And gs, true | Formula.Or gs, false ->
        List.iter (fun h -> conjuncts h pol) gs
    | Formula.Not h, _ -> conjuncts h (not pol)
    | _ -> (
        match lits_of g pol (Some []) with
        | Some ls -> add_clause ls
        | None -> ())
  in
  conjuncts f true;
  let all = List.rev !clauses in
  let cp_clauses =
    Array.of_list (List.filter (fun c -> Array.length c >= 2) all)
  in
  let cp_units =
    Array.of_list
      (List.filter_map
         (fun c -> if Array.length c = 1 then Some c.(0) else None)
         all)
  in
  let cp_key_t = Array.map (fun a -> lit_key (a, true)) cp_atoms in
  let cp_key_f = Array.map (fun a -> lit_key (a, false)) cp_atoms in
  { cp_form; cp_atoms; cp_order; cp_key_t; cp_key_f; cp_clauses; cp_units }

(* three-valued evaluation over the compiled form; [tval] holds only
   *decided* atoms (the trail), never propagated implications, so the
   evaluation — and with it verdicts and models — is identical to the
   historic association-list walk *)
let rec ceval (tval : int array) = function
  | C_true -> 1
  | C_false -> 2
  | C_atom i -> tval.(i)
  | C_not g -> ( match ceval tval g with 0 -> 0 | 1 -> 2 | _ -> 1)
  | C_and gs ->
      let len = Array.length gs in
      let rec go i unknown =
        if i = len then if unknown then 0 else 1
        else
          match ceval tval gs.(i) with
          | 2 -> 2
          | 1 -> go (i + 1) unknown
          | _ -> go (i + 1) true
      in
      go 0 false
  | C_or gs ->
      let len = Array.length gs in
      let rec go i unknown =
        if i = len then if unknown then 0 else 2
        else
          match ceval tval gs.(i) with
          | 1 -> 1
          | 2 -> go (i + 1) unknown
          | _ -> go (i + 1) true
      in
      go 0 false

(* ------------------------------------------------------------------ *)
(* Unit propagation (two watched literals)                             *)
(* ------------------------------------------------------------------ *)

(* Propagation is a *conflict-only lookahead*: implied literals live in a
   separate value array ([pr_pval], trail + implications) that never
   feeds [ceval], so it can only prune branches whose subtree the plain
   search would exhaust as unsatisfiable — never change a verdict or a
   model.  Each clause watches two literals; a clause is revisited only
   when a watched literal is falsified, and watch moves need no undo on
   backtracking (the classic invariant: a moved watch is never on a
   literal falsified below the current level, because levels are undone
   in stack order). *)
type prop = {
  pr_pval : int array;  (* 0 / 1 / 2 over atom indices: trail + implied *)
  pr_trail : int array;  (* assigned atom indices, a stack *)
  mutable pr_len : int;
  pr_watch : int list array;  (* literal code -> indices of watching clauses *)
  pr_clauses : int array array;
  mutable pr_enabled : bool;
}

(* 1 = literal true, 2 = false, 0 = unassigned under [pr_pval] *)
let lit_value (pr : prop) (l : int) : int =
  let v = pr.pr_pval.(l lsr 1) in
  if v = 0 then 0 else if v = 1 = (l land 1 = 0) then 1 else 2

let assign_lit (pr : prop) (l : int) : unit =
  let idx = l lsr 1 in
  pr.pr_pval.(idx) <- (if l land 1 = 0 then 1 else 2);
  pr.pr_trail.(pr.pr_len) <- idx;
  pr.pr_len <- pr.pr_len + 1

let undo_to (pr : prop) (mark : int) : unit =
  while pr.pr_len > mark do
    pr.pr_len <- pr.pr_len - 1;
    pr.pr_pval.(pr.pr_trail.(pr.pr_len)) <- 0
  done

(* Propagate the consequences of the queued newly-true literal codes.
   Returns false on a boolean conflict (the caller undoes to its mark). *)
let rec propagate (pr : prop) (queue : int list) : bool =
  match queue with
  | [] -> true
  | l :: queue ->
      let fl = l lxor 1 in
      let watchers = pr.pr_watch.(fl) in
      pr.pr_watch.(fl) <- [];
      let rec visit ws queue =
        match ws with
        | [] -> propagate pr queue
        | ci :: ws -> (
            let c = pr.pr_clauses.(ci) in
            if c.(0) = fl then begin
              c.(0) <- c.(1);
              c.(1) <- fl
            end;
            if lit_value pr c.(0) = 1 then begin
              (* clause already satisfied: keep watching [fl] *)
              pr.pr_watch.(fl) <- ci :: pr.pr_watch.(fl);
              visit ws queue
            end
            else begin
              let len = Array.length c in
              let rec find k =
                if k >= len then -1
                else if lit_value pr c.(k) <> 2 then k
                else find (k + 1)
              in
              let k = find 2 in
              if k >= 0 then begin
                (* move the watch to a non-false literal *)
                c.(1) <- c.(k);
                c.(k) <- fl;
                pr.pr_watch.(c.(1)) <- ci :: pr.pr_watch.(c.(1));
                visit ws queue
              end
              else begin
                pr.pr_watch.(fl) <- ci :: pr.pr_watch.(fl);
                match lit_value pr c.(0) with
                | 2 ->
                    (* conflict: restore the unvisited watchers and fail *)
                    pr.pr_watch.(fl) <- List.rev_append ws pr.pr_watch.(fl);
                    false
                | 0 ->
                    assign_lit pr c.(0);
                    Atomic.incr propagations;
                    visit ws (c.(0) :: queue)
                | _ -> visit ws queue
              end
            end)
      in
      visit watchers queue

(* Build the propagation state for a compiled formula and run the root
   unit implications.  If the roots alone conflict, propagation is
   disabled for this solve and the plain search runs unassisted — that
   keeps node counts (and thus budget edges) of unsatisfiable formulas
   identical to the historic search. *)
let prop_create (cp : compiled) : prop =
  let n = Array.length cp.cp_atoms in
  let pr =
    {
      pr_pval = Array.make (max 1 n) 0;
      pr_trail = Array.make (max 1 n) 0;
      pr_len = 0;
      pr_watch = Array.make (max 1 (2 * n)) [];
      pr_clauses = Array.map Array.copy cp.cp_clauses;
      pr_enabled = true;
    }
  in
  Array.iteri
    (fun ci c ->
      pr.pr_watch.(c.(0)) <- ci :: pr.pr_watch.(c.(0));
      pr.pr_watch.(c.(1)) <- ci :: pr.pr_watch.(c.(1)))
    pr.pr_clauses;
  let ok =
    Array.for_all
      (fun u ->
        match lit_value pr u with
        | 1 -> true
        | 2 -> false
        | _ ->
            assign_lit pr u;
            propagate pr [ u ])
      cp.cp_units
  in
  if not ok then begin
    undo_to pr 0;
    pr.pr_enabled <- false
  end;
  pr

(* ------------------------------------------------------------------ *)
(* Node budget                                                         *)
(* ------------------------------------------------------------------ *)

(* DPLL search-node budget: an adversarial formula (many independent
   atoms the theory cannot prune) can force an exponential search, so
   every [solve] is bounded and answers [Unknown] instead of diverging.
   The default is far above anything the checker-formula fragment
   produces (a few dozen atoms, heavily theory-pruned), so no-fault
   behaviour is unchanged. *)
let default_node_budget_cell = Atomic.make 200_000

let default_node_budget () = Atomic.get default_node_budget_cell

let set_default_node_budget n = Atomic.set default_node_budget_cell (max 1 n)

exception Budget_hit

(* ------------------------------------------------------------------ *)
(* The search core                                                     *)
(* ------------------------------------------------------------------ *)

(* Decide satisfiability of an already-simplified, non-trivial formula.
   [pr] is the root propagation state built by [prop_create cp] (shared
   with the fast path's BCP check so the root propagation runs once).
   [Some model] / [None] / raises [Budget_hit]. *)
let search_compiled ~(budget : int) (pr : prop) (cp : compiled) :
    (Formula.atom * bool) list option =
  let n = Array.length cp.cp_atoms in
  let tval = Array.make (max 1 n) 0 in
  let nodes = ref 0 in
  let rec search assign keys remaining =
    incr nodes;
    if !nodes > budget then raise Budget_hit;
    if not (consistent_with ~keys assign) then None
    else
      match ceval tval cp.cp_form with
      | 2 -> None
      | 1 -> Some assign
      | _ -> (
          match remaining with
          | [] -> None (* unreachable: all atoms assigned means no unknown *)
          | idx :: rest -> (
              let a = cp.cp_atoms.(idx) in
              let branch sign key =
                tval.(idx) <- (if sign then 1 else 2);
                let entered =
                  if not pr.pr_enabled then Some pr.pr_len
                  else
                    let want = if sign then 1 else 2 in
                    let v = pr.pr_pval.(idx) in
                    if v = want then Some pr.pr_len
                    else if v <> 0 then None (* implied opposite: unsat branch *)
                    else begin
                      let mark = pr.pr_len in
                      let code = (2 * idx) + if sign then 0 else 1 in
                      assign_lit pr code;
                      if propagate pr [ code ] then Some mark
                      else begin
                        undo_to pr mark;
                        None
                      end
                    end
                in
                let r =
                  match entered with
                  | None -> None
                  | Some mark ->
                      let r =
                        search ((a, sign) :: assign) (insert_key key keys) rest
                      in
                      undo_to pr mark;
                      r
                in
                tval.(idx) <- 0;
                r
              in
              match branch true cp.cp_key_t.(idx) with
              | Some _ as model -> model
              | None -> branch false cp.cp_key_f.(idx)))
  in
  search [] [] cp.cp_order

(* [prefix_unsat]: an assumption context already proved its literal
   prefix inconsistent, so any formula entailing the prefix is unsat —
   the search is skipped entirely.  Everything else (counters, breaker,
   injector, simplification) behaves exactly like a full solve. *)
let solve_untraced ?node_budget ?(prefix_unsat = false) (f : Formula.t) :
    verdict =
  Atomic.incr solve_calls;
  if not (Resilience.Breaker.proceed Resilience.Fault.Solver) then
    Unknown "solver circuit open"
  else
    match Resilience.Injector.draw Resilience.Fault.Solver with
    | Some Resilience.Fault.Budget ->
        Resilience.Breaker.failure Resilience.Fault.Solver;
        Unknown "injected budget exhaustion"
    | Some (Resilience.Fault.Crash | Resilience.Fault.Transient) as k ->
        Resilience.Injector.raise_fault Resilience.Fault.Solver (Option.get k)
    | None -> (
        let budget =
          match node_budget with Some b -> max 1 b | None -> default_node_budget ()
        in
        let f = Formula.simplify f in
        match Formula.view f with
        | Formula.True ->
            Resilience.Breaker.success Resilience.Fault.Solver;
            Sat []
        | Formula.False ->
            Resilience.Breaker.success Resilience.Fault.Solver;
            Unsat
        | _ when prefix_unsat ->
            Resilience.Breaker.success Resilience.Fault.Solver;
            Unsat
        | _ when Atomic.get fastpath_flag && Absdom.refute f ->
            (* rung 1: the abstract domain proved the conjunct facts
               refute the formula — Unsat carries no payload, so the
               short-circuit is byte-identical to the search's answer *)
            Atomic.incr fastpath_interval;
            Atomic.incr fastpath_saved;
            Resilience.Breaker.success Resilience.Fault.Solver;
            Unsat
        | _ ->
            let cp = compile f in
            let pr = prop_create cp in
            if Atomic.get fastpath_flag && not pr.pr_enabled then begin
              (* rung 2: root BCP over the clausal NNF view hit a
                 conflict; the clause set is entailed by [f], so a root
                 conflict proves Unsat without searching *)
              Atomic.incr fastpath_bcp;
              Atomic.incr fastpath_saved;
              Resilience.Breaker.success Resilience.Fault.Solver;
              Unsat
            end
            else begin
              Atomic.incr full_solves;
              let v =
                match search_compiled ~budget pr cp with
                | Some model ->
                    Resilience.Breaker.success Resilience.Fault.Solver;
                    Sat model
                | None ->
                    Resilience.Breaker.success Resilience.Fault.Solver;
                    Unsat
                | exception Budget_hit ->
                    Resilience.Breaker.failure Resilience.Fault.Solver;
                    Unknown (Fmt.str "node budget %d exhausted" budget)
              in
              (* end-of-solve flush: publish this search's conflicts so
                 sibling domains (and later solves) prune on them *)
              flush_learned ();
              v
            end)

(* The traced wrapper only pays for the span and the latency histogram
   while tracing is on; the healthy fast path is one atomic load. *)
let solve_traced ?node_budget ?prefix_unsat (f : Formula.t) : verdict =
  if not (Telemetry.Trace.enabled ()) then
    solve_untraced ?node_budget ?prefix_unsat f
  else
    Telemetry.Trace.with_span ~cat:"smt" "smt.solve" @@ fun () ->
    let t0 = Telemetry.Clock.now () in
    let v = solve_untraced ?node_budget ?prefix_unsat f in
    Telemetry.Metrics.observe "smt.solve_s" (Telemetry.Clock.now () -. t0);
    v

let solve ?node_budget (f : Formula.t) : verdict = solve_traced ?node_budget f

(* Test hook for the qcheck soundness suite: does root BCP alone (rung 2
   of the fast path) refute the formula? *)
let bcp_refutes (f : Formula.t) : bool =
  let f = Formula.simplify f in
  match Formula.view f with
  | Formula.False -> true
  | Formula.True -> false
  | _ -> not (prop_create (compile f)).pr_enabled

(* ------------------------------------------------------------------ *)
(* Assumption contexts                                                 *)
(* ------------------------------------------------------------------ *)

(* A persistent stack of asserted formulas for incremental solving over
   shared path-condition prefixes.  [push] decomposes the formula's
   literal conjuncts, extends the context's sorted literal-id key, and
   checks theory consistency of the whole prefix *once* — seeding the
   global memo and the learned-conflict store, which is where the
   sharing pays off: every query under the same prefix hits those caches
   instead of re-deriving the prefix's consequences.  The caches are
   result-preserving, so verdicts and models are byte-identical to
   solving each full conjunction from scratch. *)
type frame = {
  fr_form : Formula.t;
  fr_saved_lits : (Formula.atom * bool) list;
  fr_saved_keys : lit_id list;
  fr_consistent : bool;
      (* the stack up to and including this frame has no known
         inconsistency (boolean or theory) *)
}

type context = {
  mutable ctx_frames : frame list;  (* innermost first *)
  mutable ctx_lits : (Formula.atom * bool) list;
  mutable ctx_keys : lit_id list;  (* sorted, deduped *)
}

let create_context () : context =
  { ctx_frames = []; ctx_lits = []; ctx_keys = [] }

let assumption_depth (ctx : context) = List.length ctx.ctx_frames

let assumptions (ctx : context) : Formula.t list =
  List.rev_map (fun fr -> fr.fr_form) ctx.ctx_frames

let assumptions_consistent (ctx : context) : bool =
  match ctx.ctx_frames with [] -> true | fr :: _ -> fr.fr_consistent

(* the literal conjuncts of a formula: atoms (and negated atoms) reachable
   through And under positive polarity / Or under negative polarity.
   [bool_false] is set when a conjunct is the constant false. *)
let literal_conjuncts (f : Formula.t) :
    (Formula.atom * bool) list * bool (* bool_false *) =
  let falsified = ref false in
  let rec go pol g acc =
    match (Formula.view g, pol) with
    | Formula.Atom a, _ -> (Formula.canon_atom a, pol) :: acc
    | Formula.Not h, _ -> go (not pol) h acc
    | Formula.And gs, true | Formula.Or gs, false ->
        List.fold_left (fun acc h -> go pol h acc) acc gs
    | Formula.False, true | Formula.True, false ->
        falsified := true;
        acc
    | _ -> acc (* disjunctive conjuncts carry no asserted literal *)
  in
  let lits = go true f [] in
  (lits, !falsified)

let rec insert_key_dedup (k : lit_id) = function
  | [] -> [ k ]
  | k' :: rest as keys ->
      let c = compare k k' in
      if c = 0 then keys
      else if c < 0 then k :: keys
      else k' :: insert_key_dedup k rest

let push (ctx : context) (f : Formula.t) : unit =
  Atomic.incr assume_pushes;
  let parent_ok = assumptions_consistent ctx in
  let saved_lits = ctx.ctx_lits and saved_keys = ctx.ctx_keys in
  let new_lits, bool_false = literal_conjuncts f in
  let lits = new_lits @ ctx.ctx_lits in
  let keys =
    List.fold_left
      (fun keys l -> insert_key_dedup (lit_key l) keys)
      ctx.ctx_keys new_lits
  in
  let consistent =
    parent_ok && (not bool_false)
    && (new_lits = [] || consistent_with ~keys lits)
  in
  ctx.ctx_frames <-
    { fr_form = f; fr_saved_lits = saved_lits; fr_saved_keys = saved_keys;
      fr_consistent = consistent }
    :: ctx.ctx_frames;
  ctx.ctx_lits <- lits;
  ctx.ctx_keys <- keys

let pop (ctx : context) : unit =
  Atomic.incr assume_pops;
  (* context-pop epoch: the trie walk is leaving a prefix, so publish
     the conflicts its subtree learned before a sibling re-explores *)
  flush_learned ();
  match ctx.ctx_frames with
  | [] -> invalid_arg "Solver.pop: empty assumption stack"
  | fr :: rest ->
      ctx.ctx_frames <- rest;
      ctx.ctx_lits <- fr.fr_saved_lits;
      ctx.ctx_keys <- fr.fr_saved_keys

(* [solve_in_context ctx f] is sound only when [f] entails the context's
   assumptions — the caller passes the *full* conjunction (assumptions
   included), and the context contributes its warm caches plus the
   known-inconsistent-prefix shortcut.  The trie walk maintains that
   contract by construction. *)
let solve_in_context ?node_budget (ctx : context) (f : Formula.t) : verdict =
  solve_traced ?node_budget
    ~prefix_unsat:(not (assumptions_consistent ctx))
    f

let solve_under_assumptions ?node_budget (ctx : context) (f : Formula.t) :
    verdict =
  solve_in_context ?node_budget ctx (Formula.conj (assumptions ctx @ [ f ]))

let is_sat f = verdict_is_sat (solve f)

(** [Unknown] is conservatively {e not} unsat: an undecided formula
    neither proves nor refutes anything downstream. *)
let is_unsat f = match solve f with Unsat -> true | Sat _ | Unknown _ -> false

(** [is_valid f] iff [!f] has no model. *)
let is_valid f = is_unsat (Formula.negate f)

(** [entails pc c]: every state satisfying [pc] satisfies [c]. *)
let entails pc c = is_unsat (Formula.conj [ pc; Formula.negate c ])

(** [equivalent a b] iff they have the same models. *)
let equivalent a b = entails a b && entails b a

(* ------------------------------------------------------------------ *)
(* The paper's trace checks                                            *)
(* ------------------------------------------------------------------ *)

type trace_check =
  | Verified  (** the path condition implies the checker formula *)
  | Violation of (Formula.atom * bool) list
      (** satisfiable overlap with the complement; the model is the
          counterexample the developer sees in the report *)
  | Undecided of string
      (** the solver could not decide (budget, fault, open breaker);
          the reason is recorded and the rule's report degrades to an
          [unknown] verdict instead of killing the run *)

(** Complement check (the paper's method): the trace's [pc] violates
    checker formula [c] iff [pc /\ !c] is satisfiable.  Missing conditions
    in [pc] are unconstrained atoms, which is precisely what lets the
    complement be satisfied ("missing checks treated as true"). *)
let check_trace ~(pc : Formula.t) ~(checker : Formula.t) : trace_check =
  match solve (Formula.conj [ pc; Formula.negate checker ]) with
  | Unsat -> Verified
  | Sat model -> Violation model
  | Unknown reason -> Undecided reason

(** The naive *direct* check used as an ablation (experiment E8): flag a
    trace only if its path condition outright contradicts the checker
    formula.  Traces that merely *miss* a required check satisfy
    [sat (pc /\ c)] and slip through — the false-negative mode the paper
    argues against. *)
let check_trace_direct ~(pc : Formula.t) ~(checker : Formula.t) : trace_check =
  match solve (Formula.conj [ pc; checker ]) with
  | Unsat -> Violation []
  | Sat _ -> Verified
  | Unknown reason -> Undecided reason

let model_to_string (model : (Formula.atom * bool) list) : string =
  model
  |> List.map (fun (a, sign) ->
         if sign then Formula.atom_to_string a
         else Formula.atom_to_string { a with Formula.rel = Formula.negate_rel a.Formula.rel })
  |> String.concat " && "
  |> function
  | "" -> "(trivial)"
  | s -> s
