(* §5 open question (iii): "can we verify high-level system properties by
   composing multiple validated low-level semantics?"

   For three corpus cases, the high-level property named by the two-phase
   inference (e.g. "every ephemeral node's owner session exists and is not
   closing") is stated as an executable invariant and bounded-model-checked
   over all client operation sequences, at every stage of the case's
   history.  Whenever the learned low-level contracts hold, the explorer
   finds no violating sequence; on the regression stage it synthesizes the
   incident's exact trace (e.g. [close session; learner create]).

   Run with: dune exec examples/composition.exe *)

let () = print_string (Lisa.Composition.print (Lisa.Composition.run ()))
