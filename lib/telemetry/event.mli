(** Structured telemetry events: the single funnel behind [Lisa.Log]
    and [Resilience.Events].  Scopes own a [Logs] source (so existing
    level control keeps working); message thunks are forced only when
    an event is actually wanted. *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string

type t = { ev_severity : severity; ev_scope : string; ev_message : string }

type scope

(** Get-or-create the named scope (cached; thread-safe). *)
val scope : string -> scope

val name : scope -> string

(** The scope's [Logs] source, for level control / reporters. *)
val logs_src : scope -> Logs.src

(** Would an event at this severity go anywhere right now?  (A sink is
    installed, the tracer is recording, or the [Logs] level admits it.) *)
val wants : scope -> severity -> bool

(** Emit an event; the message thunk is forced only if {!wants}. *)
val emit : scope -> severity -> (unit -> string) -> unit

(** Install a capture sink (tests); replaces [Logs] routing. *)
val set_sink : (t -> unit) -> unit

val reset_sink : unit -> unit
