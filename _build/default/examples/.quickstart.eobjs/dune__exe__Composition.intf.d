examples/composition.mli:
