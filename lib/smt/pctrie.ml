(** Path-condition trie: group trace checks by shared pc prefixes.

    Concolic hits from one execution tree overwhelmingly share path-
    condition prefixes (they diverge only at the last few branches), and
    PR 4's hash-consing makes those prefixes *physically* shared: a pc
    snapshot is a list of interned formulas, outermost decision first.
    This trie keys children by {!Formula.id}, so insertion is O(1) per
    pc element and two hits share a node exactly when they share a
    prefix of interned facts.

    The checker walks the trie depth-first, pushing each edge's formula
    onto a {!Solver.context} on entry and popping on exit — every shared
    prefix is asserted exactly once, and each leaf solves only its own
    suffix plus the complement.  Child order is insertion order and
    leaves at a node precede its children, so the walk is deterministic;
    payloads carry the caller's original index so results can be
    re-emitted in input order regardless of walk order. *)

type 'a node = {
  nd_form : Formula.t option;  (* [None] only at the root *)
  nd_index : (int, 'a node) Hashtbl.t;  (* formula id -> child *)
  mutable nd_children : 'a node list;  (* reverse insertion order *)
  mutable nd_leaves : 'a list;  (* reverse insertion order *)
  mutable nd_passes : int;  (* pcs routed through this node *)
}

type 'a t = {
  root : 'a node;
  mutable t_nodes : int;
  mutable t_shared : int;  (* nodes traversed by >= 2 pcs *)
  mutable t_leaves : int;
}

(* Process-wide totals, read by the engine's stats and emitted as
   telemetry counter events. *)
let nodes_ctr = Atomic.make 0

let shared_ctr = Atomic.make 0

let nodes_total () = Atomic.get nodes_ctr

let shared_total () = Atomic.get shared_ctr

let fresh_node form =
  {
    nd_form = form;
    nd_index = Hashtbl.create 4;
    nd_children = [];
    nd_leaves = [];
    nd_passes = 0;
  }

let create () : 'a t =
  { root = fresh_node None; t_nodes = 0; t_shared = 0; t_leaves = 0 }

let node_count (t : 'a t) = t.t_nodes

let shared_count (t : 'a t) = t.t_shared

let leaf_count (t : 'a t) = t.t_leaves

(** [add t ~pc payload] routes [payload] to the node reached by the pc
    snapshot (outermost decision first). *)
let add (t : 'a t) ~(pc : Formula.t list) (payload : 'a) : unit =
  t.t_leaves <- t.t_leaves + 1;
  let rec go node = function
    | [] -> node.nd_leaves <- payload :: node.nd_leaves
    | f :: rest ->
        let child =
          match Hashtbl.find_opt node.nd_index (Formula.id f) with
          | Some c -> c
          | None ->
              let c = fresh_node (Some f) in
              Hashtbl.replace node.nd_index (Formula.id f) c;
              node.nd_children <- c :: node.nd_children;
              t.t_nodes <- t.t_nodes + 1;
              Atomic.incr nodes_ctr;
              c
        in
        child.nd_passes <- child.nd_passes + 1;
        if child.nd_passes = 2 then begin
          t.t_shared <- t.t_shared + 1;
          Atomic.incr shared_ctr
        end;
        go child rest
  in
  go t.root pc

(** Pruned depth-first walk: [enter f] returns whether to descend.  When
    it answers [false] the node's entire subtree is subsumed — every
    payload below it (own leaves first, then descendants, in the same
    deterministic insertion order the plain walk would use) goes to
    [pruned] without any further [enter]/[leave], and only the pruned
    node's own [leave f] still runs so the caller can pop what it
    pushed. *)
let walk_pruned (t : 'a t) ~(enter : Formula.t -> bool)
    ~(leave : Formula.t -> unit) ~(leaf : 'a -> unit) ~(pruned : 'a -> unit) :
    unit =
  let rec drop node =
    List.iter pruned (List.rev node.nd_leaves);
    List.iter drop (List.rev node.nd_children)
  in
  let rec visit node =
    let descend = match node.nd_form with Some f -> enter f | None -> true in
    if descend then begin
      List.iter leaf (List.rev node.nd_leaves);
      List.iter visit (List.rev node.nd_children)
    end
    else drop node;
    match node.nd_form with Some f -> leave f | None -> ()
  in
  visit t.root

(** Depth-first walk: [enter f] when descending an edge, every leaf
    payload at the node (insertion order), children (insertion order),
    then [leave f] when ascending. *)
let walk (t : 'a t) ~(enter : Formula.t -> unit) ~(leave : Formula.t -> unit)
    ~(leaf : 'a -> unit) : unit =
  walk_pruned t
    ~enter:(fun f ->
      enter f;
      true)
    ~leave ~leaf
    ~pruned:(fun _ -> ())
