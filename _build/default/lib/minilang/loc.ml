(** Source locations for MiniJava programs.

    A location is a [line, column] pair (both 1-based) plus the file label
    the source was parsed under.  Locations are attached to every token,
    expression and statement so that diagnostics, diffs and experiment
    reports can point back into subject-system source. *)

type t = {
  file : string;  (** label of the compilation unit, e.g. ["zookeeper.mj"] *)
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

let make ~file ~line ~col = { file; line; col }

let dummy = { file = "<none>"; line = 0; col = 0 }

let is_dummy l = l.line = 0

let pp ppf l =
  if is_dummy l then Fmt.string ppf "<none>"
  else Fmt.pf ppf "%s:%d:%d" l.file l.line l.col

let to_string l = Fmt.str "%a" pp l

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0
