(* Tests for lib/core: the hash-consing kernel, the string interner, and
   the cross-domain determinism the engine's [--jobs N] pool relies on. *)

open Core

(* ------------------------------------------------------------------ *)
(* String interner                                                     *)
(* ------------------------------------------------------------------ *)

let test_intern_canonical () =
  let a = Intern.get "alpha-core-test" in
  let b = Intern.get (String.concat "-" [ "alpha"; "core"; "test" ]) in
  Alcotest.(check bool) "same sym for equal strings" true (a == b);
  Alcotest.(check bool) "sym equality is physical" true (Intern.equal a b);
  Alcotest.(check string) "canonical copy round-trips" "alpha-core-test"
    a.Intern.str;
  Alcotest.(check bool) "canonical is shared" true
    (Intern.canonical "alpha-core-test" == a.Intern.str);
  let c = Intern.get "beta-core-test" in
  Alcotest.(check bool) "distinct strings, distinct syms" false (c == a);
  Alcotest.(check bool) "distinct strings, distinct ids" true
    (c.Intern.sym_id <> a.Intern.sym_id)

(* ------------------------------------------------------------------ *)
(* Generic hash-cons table                                             *)
(* ------------------------------------------------------------------ *)

type pair_elt = { p_fst : int; p_snd : int; p_id : int; p_hash : int }

let pair_tbl : (int * int, pair_elt) Hc.t =
  Hc.create ~name:"test.pair"
    ~equal:(fun (a, b) e -> e.p_fst = a && e.p_snd = b)
    ~build:(fun ~id ~hkey (a, b) ->
      { p_fst = a; p_snd = b; p_id = id; p_hash = hkey })
    ()

let intern_pair a b = Hc.intern pair_tbl ~hkey:(Hashtbl.hash (a, b)) (a, b)

let test_hc_unique_ids () =
  let x = intern_pair 1 2 in
  let y = intern_pair 1 2 in
  let z = intern_pair 2 1 in
  Alcotest.(check bool) "re-intern returns the same element" true (x == y);
  Alcotest.(check int) "and the same id" x.p_id y.p_id;
  Alcotest.(check bool) "distinct nodes are distinct elements" true (x != z);
  Alcotest.(check bool) "with distinct ids" true (x.p_id <> z.p_id);
  Alcotest.(check int) "hkey is stored verbatim" (Hashtbl.hash (1, 2)) x.p_hash

let test_hc_stats_and_registry () =
  let s0 = Hc.stats pair_tbl in
  ignore (intern_pair 7 7);
  (* miss *)
  ignore (intern_pair 7 7);
  (* hit *)
  let s1 = Hc.stats pair_tbl in
  Alcotest.(check int) "one miss recorded" (s0.Hc.misses + 1) s1.Hc.misses;
  Alcotest.(check int) "one hit recorded" (s0.Hc.hits + 1) s1.Hc.hits;
  Alcotest.(check int) "size = distinct nodes = next id" (s0.Hc.size + 1)
    s1.Hc.size;
  Alcotest.(check string) "table is named" "test.pair" (Hc.name pair_tbl);
  let names = List.map fst (Hc.registry ()) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "core.intern"; "smt.term"; "smt.formula"; "test.pair" ]

(* the registry lists tables in creation order (the satellite fix turned
   the O(n²) append into cons + reverse; order must not flip) *)
let test_registry_creation_order () =
  let mk name =
    ignore
      (Hc.create ~name
         ~equal:(fun (i : int) (e : int * int) -> i = fst e)
         ~build:(fun ~id ~hkey:_ i -> (i, id))
         ())
  in
  mk "test.order-a";
  mk "test.order-b";
  let names = List.map fst (Hc.registry ()) in
  let rec position n i = function
    | [] -> Alcotest.failf "%s missing from registry" n
    | x :: rest -> if String.equal x n then i else position n (i + 1) rest
  in
  Alcotest.(check bool) "earlier creation listed earlier" true
    (position "test.order-a" 0 names < position "test.order-b" 0 names);
  Alcotest.(check bool) "seed tables precede test tables" true
    (position "core.intern" 0 names < position "test.order-a" 0 names)

(* ------------------------------------------------------------------ *)
(* Sharded-table hammer: 8 domains, one table                          *)
(* ------------------------------------------------------------------ *)

(* 8 domains hammer one fresh sharded table over an overlapping key
   range.  The shards must preserve the single-mutex invariants under
   real contention: one physically shared element per distinct node,
   unique never-reused ids, and counter-sum consistency — every intern
   call records exactly one hit or one miss, and misses count exactly
   the distinct nodes. *)
let test_hc_hammer_8_domains () =
  let tbl : (int * int, pair_elt) Hc.t =
    Hc.create ~name:"test.hammer"
      ~equal:(fun (a, b) e -> e.p_fst = a && e.p_snd = b)
      ~build:(fun ~id ~hkey (a, b) ->
        { p_fst = a; p_snd = b; p_id = id; p_hash = hkey })
      ()
  in
  let domains_n = 8 and per_domain = 2_000 and distinct = 257 in
  let intern_j j =
    let a = j mod distinct in
    Hc.intern tbl ~hkey:(Hashtbl.hash (a, a)) (a, a)
  in
  let worker () =
    for j = 0 to per_domain - 1 do
      ignore (intern_j j)
    done;
    Array.init distinct intern_j
  in
  let ds = List.init domains_n (fun _ -> Domain.spawn worker) in
  let results = List.map Domain.join ds in
  let s = Hc.stats tbl in
  Alcotest.(check int) "misses = distinct nodes" distinct s.Hc.misses;
  Alcotest.(check int) "size = distinct nodes = ids handed out" distinct
    s.Hc.size;
  Alcotest.(check int) "every call recorded exactly one hit or miss"
    (domains_n * (per_domain + distinct))
    (s.Hc.hits + s.Hc.misses);
  let reference = Array.init distinct intern_j in
  List.iteri
    (fun d arr ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d saw the shared elements" d)
        true
        (Array.for_all2 (fun a b -> a == b) reference arr))
    results;
  let ids =
    List.sort compare (Array.to_list (Array.map (fun e -> e.p_id) reference))
  in
  Alcotest.(check (list int)) "ids are exactly 0..distinct-1, none reused"
    (List.init distinct Fun.id) ids

(* same hammer against the global string interner *)
let test_intern_hammer_8_domains () =
  let n = 64 in
  let name j = Printf.sprintf "hammer-sym-%d" (j mod n) in
  let worker () = Array.init (4 * n) (fun j -> Intern.get (name j)) in
  let ds = List.init 8 (fun _ -> Domain.spawn worker) in
  let results = List.map Domain.join ds in
  let reference = Array.init (4 * n) (fun j -> Intern.get (name j)) in
  List.iteri
    (fun d arr ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d shares every sym" d)
        true
        (Array.for_all2 (fun a b -> a == b) reference arr))
    results;
  let distinct_ids =
    List.sort_uniq compare
      (List.init n (fun j -> (Intern.get (name j)).Intern.sym_id))
  in
  Alcotest.(check int) "distinct strings keep distinct ids" n
    (List.length distinct_ids)

(* ------------------------------------------------------------------ *)
(* Determinism across domains (the --jobs 1 vs --jobs 4 invariant)     *)
(* ------------------------------------------------------------------ *)

(* the checker-shaped formulas the engine interns from its worker pool *)
let mk_formula seed k =
  let v s = Smt.Formula.tvar (Printf.sprintf "dom%d_%s" ((seed + k) mod 16) s) in
  Smt.Formula.conj
    [
      Smt.Formula.neq (v "Session") Smt.Formula.tnull;
      Smt.Formula.eq (v "Session.closing") (Smt.Formula.tbool false);
      Smt.Formula.gt (v "Session.ttl") (Smt.Formula.tint ((seed + k) mod 8));
    ]

(* Interning the same structures from 4 concurrent domains must collapse
   to the very nodes a serial (--jobs 1) run produces: same pointers,
   hence same renderings, hence byte-identical reports either way. *)
let prop_interning_deterministic_across_domains =
  QCheck.Test.make ~count:10 ~name:"interning agrees, jobs=1 vs jobs=4"
    QCheck.(int_bound 1000)
    (fun seed ->
      let serial = List.init 8 (mk_formula seed) in
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () -> List.init 8 (mk_formula seed)))
      in
      let parallel = List.map Domain.join domains in
      List.for_all
        (fun dom_fs ->
          List.for_all2
            (fun a b ->
              a == b
              && Smt.Formula.id a = Smt.Formula.id b
              && String.equal (Smt.Formula.to_string a) (Smt.Formula.to_string b))
            serial dom_fs)
        parallel)

(* the 8-domain variant also hammers the string interner alongside the
   formula tables — all three sharded stores at once *)
let prop_interning_deterministic_8_domains =
  QCheck.Test.make ~count:10 ~name:"interning agrees, jobs=1 vs jobs=8"
    QCheck.(int_bound 1000)
    (fun seed ->
      let sym k = Intern.get (Printf.sprintf "p8-%d-%d" (seed mod 32) k) in
      let serial_f = List.init 8 (mk_formula seed) in
      let serial_s = List.init 8 sym in
      let domains =
        List.init 8 (fun _ ->
            Domain.spawn (fun () ->
                (List.init 8 (mk_formula seed), List.init 8 sym)))
      in
      let parallel = List.map Domain.join domains in
      List.for_all
        (fun (fs, ss) ->
          List.for_all2 (fun a b -> a == b) serial_f fs
          && List.for_all2 (fun a b -> a == b) serial_s ss)
        parallel)

let suite =
  [
    ( "core.hc",
      [
        Alcotest.test_case "string interner canonicalizes" `Quick
          test_intern_canonical;
        Alcotest.test_case "unique ids, physical hits" `Quick
          test_hc_unique_ids;
        Alcotest.test_case "stats and registry" `Quick
          test_hc_stats_and_registry;
        Alcotest.test_case "registry preserves creation order" `Quick
          test_registry_creation_order;
        Alcotest.test_case "8-domain hammer: identity, ids, counters" `Quick
          test_hc_hammer_8_domains;
        Alcotest.test_case "8-domain hammer: string interner" `Quick
          test_intern_hammer_8_domains;
        QCheck_alcotest.to_alcotest prop_interning_deterministic_across_domains;
        QCheck_alcotest.to_alcotest prop_interning_deterministic_8_domains;
      ] );
  ]
