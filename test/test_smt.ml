(* Tests for the SMT layer: formulas, theory solver, DPLL(T), and the
   paper's complement-based trace check. *)

open Smt

let v = Formula.tvar

let i = Formula.tint

let b = Formula.tbool

(* ------------------------------------------------------------------ *)
(* Simplifier                                                          *)
(* ------------------------------------------------------------------ *)

let test_simplify_constants () =
  let f = Formula.(conj [ tru; disj [ fls; atom Req (v "x") (i 1) ] ]) in
  Alcotest.(check string)
    "collapses constants" "x == 1"
    (Formula.to_string (Formula.simplify f))

let test_simplify_complementary () =
  let f = Formula.(conj [ eq (v "x") (i 1); neq (v "x") (i 1) ]) in
  Alcotest.(check string) "x==1 && x!=1 is false" "false"
    (Formula.to_string (Formula.simplify f))

let test_simplify_dedup () =
  let f = Formula.(conj [ eq (v "x") (i 1); eq (v "x") (i 1) ]) in
  Alcotest.(check string) "duplicates removed" "x == 1"
    (Formula.to_string (Formula.simplify f))

let test_nnf_no_not () =
  let f = Formula.(negate (conj [ eq (v "x") (i 1); negate (lt (v "y") (i 2)) ])) in
  let rec has_not f =
    match Formula.view f with
    | Formula.Not _ -> true
    | Formula.And fs | Formula.Or fs -> List.exists has_not fs
    | Formula.True | Formula.False | Formula.Atom _ -> false
  in
  Alcotest.(check bool) "nnf eliminates Not" false (has_not (Formula.nnf f))

let test_canon_atom () =
  let a = Formula.{ rel = Rgt; lhs = v "x"; rhs = i 3 } in
  let c = Formula.canon_atom a in
  Alcotest.(check string) "x > 3 becomes 3 < x" "3 < x" (Formula.atom_to_string c)

(* ------------------------------------------------------------------ *)
(* Theory                                                              *)
(* ------------------------------------------------------------------ *)

let lit sign rel lhs rhs = Theory.lit sign Formula.{ rel; lhs; rhs }

let test_theory_eq_chain_conflict () =
  (* x = y, y = 1, x = 2 is inconsistent *)
  let lits =
    [
      lit true Formula.Req (v "x") (v "y");
      lit true Formula.Req (v "y") (i 1);
      lit true Formula.Req (v "x") (i 2);
    ]
  in
  Alcotest.(check bool) "conflict" false (Theory.consistent lits)

let test_theory_eq_chain_ok () =
  let lits =
    [
      lit true Formula.Req (v "x") (v "y");
      lit true Formula.Req (v "y") (i 1);
      lit true Formula.Req (v "x") (i 1);
    ]
  in
  Alcotest.(check bool) "consistent" true (Theory.consistent lits)

let test_theory_neq_conflict () =
  let lits =
    [ lit true Formula.Req (v "x") (v "y"); lit true Formula.Rneq (v "x") (v "y") ]
  in
  Alcotest.(check bool) "x=y && x!=y" false (Theory.consistent lits)

let test_theory_null_vs_const () =
  let lits = [ lit true Formula.Req (v "s") Formula.tnull; lit true Formula.Req (v "s") (b true) ] in
  Alcotest.(check bool) "null /= true" false (Theory.consistent lits)

let test_theory_bounds_conflict () =
  (* x < y, y < x *)
  let lits =
    [ lit true Formula.Rlt (v "x") (v "y"); lit true Formula.Rlt (v "y") (v "x") ]
  in
  Alcotest.(check bool) "cycle" false (Theory.consistent lits)

let test_theory_bounds_tight () =
  (* 0 <= x, x <= 0, x != 0 — bounds force x = 0 *)
  let lits =
    [
      lit true Formula.Rle (i 0) (v "x");
      lit true Formula.Rle (v "x") (i 0);
      lit true Formula.Rneq (v "x") (i 0);
    ]
  in
  Alcotest.(check bool) "forced equal" false (Theory.consistent lits)

let test_theory_bounds_transitive () =
  (* x < y, y < z, z < x+2 is satisfiable? x<y<z and z <= x+1 -> y-x>=1, z-y>=1 -> z-x>=2 but z-x<=1: unsat *)
  let lits =
    [
      lit true Formula.Rlt (v "x") (v "y");
      lit true Formula.Rlt (v "y") (v "z");
      lit true Formula.Rle (v "z") (v "x");
    ]
  in
  Alcotest.(check bool) "transitive unsat" false (Theory.consistent lits);
  let ok =
    [ lit true Formula.Rlt (v "x") (v "y"); lit true Formula.Rlt (v "y") (v "z") ]
  in
  Alcotest.(check bool) "chain sat" true (Theory.consistent ok)

let test_theory_eq_propagates_bounds () =
  (* x = y, x <= 3, y >= 5 unsat *)
  let lits =
    [
      lit true Formula.Req (v "x") (v "y");
      lit true Formula.Rle (v "x") (i 3);
      lit true Formula.Rge (v "y") (i 5);
    ]
  in
  Alcotest.(check bool) "eq + bounds" false (Theory.consistent lits)

let test_theory_negated_literal () =
  (* !(x < 3) means x >= 3; with x <= 2 unsat *)
  let lits =
    [ lit false Formula.Rlt (v "x") (i 3); lit true Formula.Rle (v "x") (i 2) ]
  in
  Alcotest.(check bool) "negated order" false (Theory.consistent lits)

let test_theory_sort_conflict () =
  (* ordering a string is ill-sorted -> inconsistent *)
  let lits = [ lit true Formula.Rlt (Formula.tstr "a") (i 3) ] in
  Alcotest.(check bool) "ill-sorted" false (Theory.consistent lits)

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)
(* ------------------------------------------------------------------ *)

let closing = Formula.bvar "s.closing"

let not_closing = Formula.eq (v "s.closing") (b false)

let snull = Formula.eq (v "s") Formula.tnull

let snotnull = Formula.neq (v "s") Formula.tnull

let ttl_pos = Formula.gt (v "s.ttl") (i 0)

let test_solver_sat_simple () =
  Alcotest.(check bool) "x == 1 sat" true (Solver.is_sat (Formula.eq (v "x") (i 1)))

let test_solver_unsat_simple () =
  Alcotest.(check bool) "x==1 && x==2 unsat" true
    (Solver.is_unsat Formula.(conj [ eq (v "x") (i 1); eq (v "x") (i 2) ]))

let test_solver_disjunction () =
  Alcotest.(check bool) "(x==1 || x==2) && x!=1 sat" true
    (Solver.is_sat
       Formula.(conj [ disj [ eq (v "x") (i 1); eq (v "x") (i 2) ]; neq (v "x") (i 1) ]))

let test_solver_validity () =
  Alcotest.(check bool) "x==1 -> x<=1 valid" true
    (Solver.is_valid Formula.(disj [ negate (eq (v "x") (i 1)); le (v "x") (i 1) ]))

let test_solver_entails () =
  Alcotest.(check bool) "x==1 entails x<2" true
    (Solver.entails (Formula.eq (v "x") (i 1)) (Formula.lt (v "x") (i 2)));
  Alcotest.(check bool) "x<2 does not entail x==1" false
    (Solver.entails (Formula.lt (v "x") (i 2)) (Formula.eq (v "x") (i 1)))

let test_solver_equivalence () =
  Alcotest.(check bool) "De Morgan" true
    (Solver.equivalent
       Formula.(negate (conj [ closing; snull ]))
       Formula.(disj [ negate closing; negate snull ]))

(* The ephemeral-node example from the paper, verbatim (§3.2):
   checker  C = s != null && s.closing == false && s.ttl > 0 *)
let checker = Formula.conj [ snotnull; not_closing; ttl_pos ]

let test_paper_example_null_trace () =
  (* trace condition (s == null) fulfills the complement -> violation *)
  match Solver.check_trace ~pc:snull ~checker with
  | Solver.Violation _ -> ()
  | Solver.Verified | Solver.Undecided _ -> Alcotest.fail "expected violation/verdict"

let test_paper_example_missing_ttl () =
  (* (s != null && !closing) misses the ttl check -> violation *)
  let pc = Formula.conj [ snotnull; not_closing ] in
  match Solver.check_trace ~pc ~checker with
  | Solver.Violation model ->
      (* the counterexample must involve the missing ttl constraint *)
      let s = Solver.model_to_string model in
      Alcotest.(check bool) "model mentions ttl" true
        (Astring_contains.contains s "ttl")
  | Solver.Verified | Solver.Undecided _ -> Alcotest.fail "expected violation/verdict"

let test_paper_example_full_guard () =
  let pc = Formula.conj [ snotnull; not_closing; ttl_pos ] in
  match Solver.check_trace ~pc ~checker with
  | Solver.Verified -> ()
  | Solver.Violation m ->
      Alcotest.fail ("unexpected violation: " ^ Solver.model_to_string m)
      | Solver.Undecided reason -> Alcotest.fail ("unexpected undecided: " ^ reason)

let test_paper_example_stronger_guard () =
  (* a trace with an even stronger condition still verifies *)
  let pc = Formula.conj [ snotnull; not_closing; Formula.gt (v "s.ttl") (i 10) ] in
  match Solver.check_trace ~pc ~checker with
  | Solver.Verified -> ()
  | Solver.Violation m ->
      Alcotest.fail ("unexpected violation: " ^ Solver.model_to_string m)
      | Solver.Undecided reason -> Alcotest.fail ("unexpected undecided: " ^ reason)

let test_direct_check_misses_missing_ttl () =
  (* ablation: the direct check fails to flag the missing-ttl trace *)
  let pc = Formula.conj [ snotnull; not_closing ] in
  match Solver.check_trace_direct ~pc ~checker with
  | Solver.Verified -> () (* the false negative the paper warns about *)
  | Solver.Violation _ -> Alcotest.fail "direct check should miss this"
  | Solver.Undecided reason -> Alcotest.fail ("unexpected undecided: " ^ reason)

(* ------------------------------------------------------------------ *)
(* Properties: solver soundness vs brute-force on a finite domain       *)
(* ------------------------------------------------------------------ *)

(* Random formulas over 3 int variables with constants in 0..3, plus one
   bool variable.  Brute-force all assignments with ints in -4..8: a
   difference-logic chain over 3 variables needs at most 3 slots beyond
   the constant range on either side (e.g. x < y < z < 0 forces x = -3),
   so this domain witnesses satisfiability for every formula the
   generator can produce. *)
let gen_formula : Formula.t QCheck.arbitrary =
  let open QCheck in
  let var = Gen.oneofl [ "x"; "y"; "z" ] in
  let term =
    Gen.oneof
      [ Gen.map Formula.tvar var; Gen.map (fun n -> Formula.tint (abs n mod 4)) Gen.small_int ]
  in
  let rel = Gen.oneofl Formula.[ Req; Rneq; Rlt; Rle; Rgt; Rge ] in
  let atom_gen =
    Gen.map3 (fun r l rh -> Formula.atom r l rh) rel term term
  in
  let bool_atom = Gen.oneofl [ Formula.bvar "p"; Formula.eq (Formula.tvar "p") (Formula.tbool false) ] in
  let leaf = Gen.oneof [ atom_gen; bool_atom; Gen.return Formula.tru; Gen.return Formula.fls ] in
  let rec go n =
    if n <= 0 then leaf
    else
      Gen.oneof
        [
          leaf;
          Gen.map (fun f -> Formula.negate f) (go (n - 1));
          Gen.map2 (fun a b2 -> Formula.conj [ a; b2 ]) (go (n / 2)) (go (n / 2));
          Gen.map2 (fun a b2 -> Formula.disj [ a; b2 ]) (go (n / 2)) (go (n / 2));
        ]
  in
  make ~print:Formula.to_string (Gen.sized (fun n -> go (min n 6)))

let brute_force_sat (f : Formula.t) : bool =
  let domain = [ -4; -3; -2; -1; 0; 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let envs =
    List.concat_map
      (fun x ->
        List.concat_map
          (fun y ->
            List.concat_map
              (fun z ->
                List.map
                  (fun p ->
                    [
                      ("x", Formula.V_int x);
                      ("y", Formula.V_int y);
                      ("z", Formula.V_int z);
                      ("p", Formula.V_bool p);
                    ])
                  [ true; false ])
              domain)
          domain)
      domain
  in
  List.exists (fun env -> Formula.eval env f = Some true) envs

let prop_solver_agrees_with_brute_force =
  QCheck.Test.make ~count:300 ~name:"solver agrees with brute force" gen_formula
    (fun f -> Solver.is_sat f = brute_force_sat f)

let prop_simplify_preserves_models =
  QCheck.Test.make ~count:300 ~name:"simplify preserves satisfiability" gen_formula
    (fun f -> Solver.is_sat f = Solver.is_sat (Formula.simplify f))

let prop_nnf_preserves_models =
  QCheck.Test.make ~count:300 ~name:"nnf preserves satisfiability" gen_formula
    (fun f -> Solver.is_sat f = Solver.is_sat (Formula.nnf f))

let prop_negation_flips_validity =
  QCheck.Test.make ~count:200 ~name:"f valid iff !f unsat" gen_formula (fun f ->
      Solver.is_valid f = Solver.is_unsat (Formula.negate f))

(* ------------------------------------------------------------------ *)
(* Hash-consed core: interning invariants                              *)
(* ------------------------------------------------------------------ *)

(* rebuild a formula bottom-up through the smart constructors; interning
   must hand back the very same nodes *)
let rec rebuild_term t =
  match Formula.term_view t with
  | Formula.T_var x -> Formula.tvar x
  | Formula.T_int n -> Formula.tint n
  | Formula.T_bool b2 -> Formula.tbool b2
  | Formula.T_str s -> Formula.tstr s
  | Formula.T_null -> Formula.tnull

and rebuild f =
  match Formula.view f with
  | Formula.True -> Formula.tru
  | Formula.False -> Formula.fls
  | Formula.Atom a ->
      Formula.atom a.Formula.rel (rebuild_term a.Formula.lhs)
        (rebuild_term a.Formula.rhs)
  | Formula.Not g -> Formula.negate (rebuild g)
  | Formula.And fs -> Formula.conj (List.map rebuild fs)
  | Formula.Or fs -> Formula.disj (List.map rebuild fs)

let prop_equal_iff_physical =
  QCheck.Test.make ~count:300 ~name:"structural equality = physical equality"
    gen_formula (fun f ->
      let g = rebuild f in
      g == f && Formula.equal f g && Formula.hash f = Formula.hash g
      && Formula.compare f g = 0 && Formula.id f = Formula.id g)

let prop_equal_agrees_with_compare =
  QCheck.Test.make ~count:300 ~name:"equal f g iff compare f g = 0"
    (QCheck.pair gen_formula gen_formula) (fun (f, g) ->
      Formula.equal f g = (Formula.compare f g = 0)
      && Formula.equal f g = (f == g))

let test_atoms_first_occurrence_order () =
  let a1 = Formula.eq (v "ao_x") (i 1) in
  let a2 = Formula.lt (v "ao_y") (i 2) in
  let a3 = Formula.bvar "ao_p" in
  (* a2 appears first (inside the disjunction), then a1, then a3; the
     duplicate a1 must not appear twice *)
  let f = Formula.(conj [ disj [ a2; a1 ]; negate a3; a1 ]) in
  Alcotest.(check (list string))
    "canon atoms in first-occurrence order, deduped"
    [ "ao_y < 2"; "ao_x == 1"; "ao_p == true" ]
    (List.map Formula.atom_to_string (Formula.atoms f));
  (* memoized on the interned node: same list, physically *)
  Alcotest.(check bool) "atoms memoized per node" true
    (Formula.atoms f == Formula.atoms f)

(* ------------------------------------------------------------------ *)
(* Incremental contexts: assumption solving vs one-shot                *)
(* ------------------------------------------------------------------ *)

let render_verdict = function
  | Solver.Sat m -> "sat " ^ Solver.model_to_string m
  | Solver.Unsat -> "unsat"
  | Solver.Unknown reason -> "unknown " ^ reason

(* A model is valid for [f] when it makes the simplified formula true
   under three-valued evaluation (atoms looked up canonically) and its
   literal set is theory-consistent. *)
let model_valid (model : (Formula.atom * bool) list) (f : Formula.t) : bool =
  let signs = List.map (fun (a, s) -> (Formula.atom_to_string a, s)) model in
  let rec ev g =
    match Formula.view g with
    | Formula.True -> Some true
    | Formula.False -> Some false
    | Formula.Atom a ->
        List.assoc_opt (Formula.atom_to_string (Formula.canon_atom a)) signs
    | Formula.Not g' -> Option.map not (ev g')
    | Formula.And gs ->
        let vs = List.map ev gs in
        if List.exists (fun x -> x = Some false) vs then Some false
        else if List.for_all (fun x -> x = Some true) vs then Some true
        else None
    | Formula.Or gs ->
        let vs = List.map ev gs in
        if List.exists (fun x -> x = Some true) vs then Some true
        else if List.for_all (fun x -> x = Some false) vs then Some false
        else None
  in
  ev (Formula.simplify f) = Some true
  && Theory.consistent (List.map (fun (a, s) -> Theory.lit s a) model)

(* Any split of a conjunction into pushed prefix and queried suffix
   must agree with one-shot solving of the whole conjunction — same
   verdict, byte-identical model — and Sat models must actually be
   models. *)
let prop_assumptions_agree_with_one_shot =
  QCheck.Test.make ~count:300
    ~name:"solve_under_assumptions agrees with one-shot solve"
    QCheck.(pair (list_of_size Gen.(int_range 0 3) gen_formula) gen_formula)
    (fun (prefix, suffix) ->
      let all = Formula.conj (prefix @ [ suffix ]) in
      let one_shot = Solver.solve all in
      let ctx = Solver.create_context () in
      List.iter (Solver.push ctx) prefix;
      let incr = Solver.solve_under_assumptions ctx suffix in
      List.iter (fun _ -> Solver.pop ctx) prefix;
      Solver.assumption_depth ctx = 0
      && render_verdict one_shot = render_verdict incr
      && match one_shot with Solver.Sat m -> model_valid m all | _ -> true)

(* Learned conflict sets prune theory calls, never answers: verdicts and
   models are byte-identical with learning off, whatever is already in
   the store from earlier solves. *)
let prop_learning_never_changes_verdicts =
  QCheck.Test.make ~count:300 ~name:"learned conflicts never change a verdict"
    gen_formula (fun f ->
      let with_learning = Solver.solve f in
      Solver.set_learning_enabled false;
      let without_learning =
        Fun.protect
          ~finally:(fun () -> Solver.set_learning_enabled true)
          (fun () -> Solver.solve f)
      in
      render_verdict with_learning = render_verdict without_learning)

(* ------------------------------------------------------------------ *)
(* Pre-solver fast path: abstract domain + BCP soundness                *)
(* ------------------------------------------------------------------ *)

(* Run [f] with the fast path pinned off, so a property checks against
   the genuine DPLL(T) search rather than Absdom agreeing with itself. *)
let with_fastpath_off f =
  Solver.set_fastpath_enabled false;
  Fun.protect ~finally:(fun () -> Solver.set_fastpath_enabled true) f

(* The abstract evaluator may say Unknown, never wrong: A_unsat only on
   formulas the full search also refutes, A_sat only on formulas it also
   satisfies. *)
let prop_absdom_never_wrong =
  QCheck.Test.make ~count:500 ~name:"Absdom.eval sound vs the full search"
    gen_formula (fun f ->
      let full = with_fastpath_off (fun () -> Solver.solve f) in
      match Absdom.eval f with
      | Absdom.A_unsat -> (
          match full with Solver.Sat _ -> false | _ -> true)
      | Absdom.A_sat -> ( match full with Solver.Unsat -> false | _ -> true)
      | Absdom.A_unknown -> true)

(* Absdom.refute is the Unsat-only entry the solver drives: a refuted
   formula is also unsat by brute force over the generator's domain. *)
let prop_absdom_refute_sound =
  QCheck.Test.make ~count:500 ~name:"Absdom.refute only refutes unsat formulas"
    gen_formula (fun f ->
      (not (Absdom.refute f)) || not (brute_force_sat f))

(* The root-BCP rung: if unit propagation alone closes the root, the
   formula really is unsat. *)
let prop_bcp_refutes_sound =
  QCheck.Test.make ~count:500 ~name:"root BCP only refutes unsat formulas"
    gen_formula (fun f ->
      (not (Solver.bcp_refutes f)) || not (brute_force_sat f))

(* The whole ladder is invisible in answers: verdict and model rendered
   byte-identical with the fast path on vs off. *)
let prop_fastpath_verdicts_identical =
  QCheck.Test.make ~count:500
    ~name:"fast path on vs off: byte-identical verdicts" gen_formula (fun f ->
      let off = with_fastpath_off (fun () -> Solver.solve f) in
      Solver.set_fastpath_enabled true;
      let on_ = Solver.solve f in
      render_verdict off = render_verdict on_)

let test_absdom_interval_conflict () =
  (* x > 5 && x < 3: empty interval, refuted without any search *)
  let f = Formula.(conj [ gt (v "x") (i 5); lt (v "x") (i 3) ]) in
  Alcotest.(check bool) "empty interval refuted" true (Absdom.refute f);
  Alcotest.(check bool) "eval agrees" true (Absdom.eval f = Absdom.A_unsat)

let test_absdom_witness_sat () =
  (* x == 2 && y > 1: the abstract domain can build and confirm a
     concrete witness *)
  let f = Formula.(conj [ eq (v "x") (i 2); gt (v "y") (i 1) ]) in
  Alcotest.(check bool) "witness confirmed" true (Absdom.eval f = Absdom.A_sat)

let test_absdom_var_var_unknown () =
  (* x < y constrains two unbounded variables: out of the domain's
     reach, must stay Unknown rather than guess *)
  let f = Formula.(lt (v "x") (v "y")) in
  Alcotest.(check bool) "var-var order unknown" true
    (Absdom.eval f = Absdom.A_unknown)

(* Learned clauses flow through the domain-local pending buffer and are
   published by the end-of-solve flush: a solve that learns conflicts
   advances both the learned count and the batched-publication count,
   and an explicit flush on a drained buffer is a no-op. *)
let test_learned_batched_publication () =
  Solver.reset_learned ();
  (* the abstract-domain fast path would retire this query before the
     search learns anything; pin it off — learning is what's under test *)
  Solver.set_fastpath_enabled false;
  Fun.protect ~finally:(fun () -> Solver.set_fastpath_enabled true)
  @@ fun () ->
  let batched0 = Solver.learned_batch_count () in
  let learned0 = Solver.learned_count () in
  (* x > 5 && x < 3 is boolean-satisfiable but theory-inconsistent:
     the search must call the theory, conflict, and learn *)
  let f =
    Formula.conj
      [
        Formula.gt (v "batch_x") (i 5);
        Formula.lt (v "batch_x") (i 3);
      ]
  in
  (match Solver.solve f with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat");
  let learned = Solver.learned_count () - learned0 in
  Alcotest.(check bool) "the solve learned at least one conflict" true
    (learned > 0);
  Alcotest.(check int) "every learned clause was published in a batch"
    learned
    (Solver.learned_batch_count () - batched0);
  let batched1 = Solver.learned_batch_count () in
  Solver.flush_learned ();
  Alcotest.(check int) "flushing a drained buffer publishes nothing"
    batched1 (Solver.learned_batch_count ());
  Solver.reset_learned ()

let test_context_push_pop_depth () =
  let ctx = Solver.create_context () in
  let pushes0 = Solver.assume_push_count () in
  let pops0 = Solver.assume_pop_count () in
  Alcotest.(check int) "fresh context is empty" 0 (Solver.assumption_depth ctx);
  Solver.push ctx (Formula.eq (v "cx") (i 1));
  Solver.push ctx (Formula.gt (v "cy") (i 0));
  Alcotest.(check int) "two frames" 2 (Solver.assumption_depth ctx);
  Alcotest.(check int) "assumptions outermost first" 2
    (List.length (Solver.assumptions ctx));
  Alcotest.(check bool) "consistent prefix" true
    (Solver.assumptions_consistent ctx);
  Solver.pop ctx;
  Alcotest.(check int) "pop removes a frame" 1 (Solver.assumption_depth ctx);
  Solver.pop ctx;
  Alcotest.(check int) "push counter advanced" 2
    (Solver.assume_push_count () - pushes0);
  Alcotest.(check int) "pop counter advanced" 2
    (Solver.assume_pop_count () - pops0);
  Alcotest.check_raises "pop on empty stack rejected"
    (Invalid_argument "Solver.pop: empty assumption stack") (fun () ->
      Solver.pop ctx)

let test_context_inconsistent_prefix () =
  let ctx = Solver.create_context () in
  Solver.push ctx (Formula.eq (v "ip_x") (i 1));
  Solver.push ctx (Formula.eq (v "ip_x") (i 2));
  Alcotest.(check bool) "conflicting prefix detected" false
    (Solver.assumptions_consistent ctx);
  (match Solver.solve_under_assumptions ctx Formula.tru with
  | Solver.Unsat -> ()
  | v2 -> Alcotest.fail ("expected unsat, got " ^ render_verdict v2));
  (* popping back to the consistent frame revives the context *)
  Solver.pop ctx;
  Alcotest.(check bool) "consistency restored by pop" true
    (Solver.assumptions_consistent ctx);
  match Solver.solve_under_assumptions ctx (Formula.gt (v "ip_x") (i 0)) with
  | Solver.Sat _ -> ()
  | v2 -> Alcotest.fail ("expected sat, got " ^ render_verdict v2)

let suite =
  [
    ( "smt.formula",
      [
        Alcotest.test_case "simplify constants" `Quick test_simplify_constants;
        Alcotest.test_case "simplify complementary" `Quick test_simplify_complementary;
        Alcotest.test_case "simplify dedup" `Quick test_simplify_dedup;
        Alcotest.test_case "nnf removes Not" `Quick test_nnf_no_not;
        Alcotest.test_case "canonical atoms" `Quick test_canon_atom;
        Alcotest.test_case "atoms: first-occurrence order, memoized" `Quick
          test_atoms_first_occurrence_order;
      ] );
    ( "smt.theory",
      [
        Alcotest.test_case "equality chain conflict" `Quick test_theory_eq_chain_conflict;
        Alcotest.test_case "equality chain ok" `Quick test_theory_eq_chain_ok;
        Alcotest.test_case "disequality conflict" `Quick test_theory_neq_conflict;
        Alcotest.test_case "null vs const" `Quick test_theory_null_vs_const;
        Alcotest.test_case "bound cycle" `Quick test_theory_bounds_conflict;
        Alcotest.test_case "tight bounds force equality" `Quick test_theory_bounds_tight;
        Alcotest.test_case "transitive bounds" `Quick test_theory_bounds_transitive;
        Alcotest.test_case "equality propagates bounds" `Quick test_theory_eq_propagates_bounds;
        Alcotest.test_case "negated literal" `Quick test_theory_negated_literal;
        Alcotest.test_case "ill-sorted ordering" `Quick test_theory_sort_conflict;
      ] );
    ( "smt.solver",
      [
        Alcotest.test_case "sat" `Quick test_solver_sat_simple;
        Alcotest.test_case "unsat" `Quick test_solver_unsat_simple;
        Alcotest.test_case "disjunction" `Quick test_solver_disjunction;
        Alcotest.test_case "validity" `Quick test_solver_validity;
        Alcotest.test_case "entailment" `Quick test_solver_entails;
        Alcotest.test_case "equivalence" `Quick test_solver_equivalence;
      ] );
    ( "smt.fastpath",
      [
        Alcotest.test_case "interval conflict refuted" `Quick
          test_absdom_interval_conflict;
        Alcotest.test_case "witness-confirmed sat" `Quick
          test_absdom_witness_sat;
        Alcotest.test_case "var-var order stays unknown" `Quick
          test_absdom_var_var_unknown;
        QCheck_alcotest.to_alcotest prop_absdom_never_wrong;
        QCheck_alcotest.to_alcotest prop_absdom_refute_sound;
        QCheck_alcotest.to_alcotest prop_bcp_refutes_sound;
        QCheck_alcotest.to_alcotest prop_fastpath_verdicts_identical;
      ] );
    ( "smt.context",
      [
        Alcotest.test_case "learned clauses publish in batches" `Quick
          test_learned_batched_publication;
        Alcotest.test_case "push/pop depth and counters" `Quick
          test_context_push_pop_depth;
        Alcotest.test_case "inconsistent prefix short-circuits" `Quick
          test_context_inconsistent_prefix;
      ] );
    ( "smt.paper_example",
      [
        Alcotest.test_case "null session trace violates" `Quick test_paper_example_null_trace;
        Alcotest.test_case "missing ttl check violates" `Quick test_paper_example_missing_ttl;
        Alcotest.test_case "full guard verifies" `Quick test_paper_example_full_guard;
        Alcotest.test_case "stronger guard verifies" `Quick test_paper_example_stronger_guard;
        Alcotest.test_case "direct check misses" `Quick test_direct_check_misses_missing_ttl;
      ] );
    ( "smt.properties",
      [
        QCheck_alcotest.to_alcotest prop_solver_agrees_with_brute_force;
        QCheck_alcotest.to_alcotest prop_simplify_preserves_models;
        QCheck_alcotest.to_alcotest prop_nnf_preserves_models;
        QCheck_alcotest.to_alcotest prop_negation_flips_validity;
        QCheck_alcotest.to_alcotest prop_assumptions_agree_with_one_shot;
        QCheck_alcotest.to_alcotest prop_learning_never_changes_verdicts;
        QCheck_alcotest.to_alcotest prop_equal_iff_physical;
        QCheck_alcotest.to_alcotest prop_equal_agrees_with_compare;
      ] );
  ]
