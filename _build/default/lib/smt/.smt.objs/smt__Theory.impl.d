lib/smt/theory.ml: Array Formula Hashtbl List
