lib/lisa/compare.ml: Buffer Checker Corpus Fmt List Minilang Oracle Pipeline Semantics String
