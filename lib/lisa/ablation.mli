(** Experiment E8 — mechanism ablations over the guard cases: branch
    pruning on/off, RAG vs. all vs. pseudo-random test selection, and the
    complement vs. direct check. *)

type variant = { v_name : string; v_config : Checker.config }

val variants : variant list

val guard_cases : ?registry:Corpus.Registry.t -> unit -> Corpus.Case.t list

type row = {
  r_variant : string;
  r_regressions_caught : int;
  r_total_guard_cases : int;
  r_tests_run : int;
  r_branches_recorded : int;
  r_branches_total : int;
  r_uncovered_paths : int;
}

val run_variant : ?registry:Corpus.Registry.t -> variant -> row

val run : ?registry:Corpus.Registry.t -> unit -> row list

val print : row list -> string
