test/test_corpus.ml: Alcotest Astring_contains Corpus Fmt Gen Lisa List Minilang Option Oracle QCheck QCheck_alcotest String
