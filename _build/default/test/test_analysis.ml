(* Tests for call graphs, execution trees, path enumeration, and the
   lock-scope analysis. *)

open Minilang
open Analysis

let src =
  {|
class Store {
  field data: map;
  method save(x: int) {
    synchronized (this) {
      this.persist(x);
    }
  }
  method persist(x: int) {
    writeRecord(x);
  }
  method get(k: int): any {
    return mapGet(this.data, k);
  }
}
class Api {
  field store: Store;
  method init() {
    this.store = new Store();
  }
  method handlePut(x: int) {
    if (x > 0) {
      this.store.save(x);
    }
  }
  method handleGet(k: int): any {
    return this.store.get(k);
  }
}
method test_put_positive() {
  var api: Api = new Api();
  api.handlePut(5);
}
method test_get_missing() {
  var api: Api = new Api();
  var v: any = api.handleGet(1);
}
|}

let program () = Parser.program ~file:"api.mj" src

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)
(* ------------------------------------------------------------------ *)

let test_callgraph_edges () =
  let g = Callgraph.build (program ()) in
  Alcotest.(check (list string)) "handlePut calls save" [ "Store.save" ]
    (Callgraph.callees g "Api.handlePut");
  Alcotest.(check (list string)) "save calls persist" [ "Store.persist" ]
    (Callgraph.callees g "Store.save");
  Alcotest.(check bool) "persist has no callees" true
    (Callgraph.callees g "Store.persist" = []);
  Alcotest.(check (list string)) "persist called by save" [ "Store.save" ]
    (Callgraph.callers g "Store.persist")

let test_callgraph_entries () =
  let g = Callgraph.build (program ()) in
  Alcotest.(check (list string)) "entries are top-level functions"
    [ "test_put_positive"; "test_get_missing" ]
    (Callgraph.entries g)

let test_callgraph_reachable () =
  let g = Callgraph.build (program ()) in
  let r = Callgraph.reachable_from g "test_put_positive" in
  Alcotest.(check bool) "reaches persist" true (List.mem "Store.persist" r);
  Alcotest.(check bool) "does not reach get" false (List.mem "Store.get" r)

let test_call_chains () =
  let g = Callgraph.build (program ()) in
  let chains = Callgraph.call_chains g ~target:"Store.persist" in
  Alcotest.(check (list (list string)))
    "one chain from the test entry"
    [ [ "test_put_positive"; "Api.handlePut"; "Store.save"; "Store.persist" ] ]
    chains

let test_may_predicate () =
  let p = program () in
  let g = Callgraph.build p in
  let may_block = Lockscope.method_may_block p g in
  Alcotest.(check bool) "persist may block" true (may_block "Store.persist");
  Alcotest.(check bool) "save may block (transitively)" true (may_block "Store.save");
  Alcotest.(check bool) "get may not block" false (may_block "Store.get")

let test_callgraph_recursion_no_loop () =
  let p = Parser.program "method f(n: int) { if (n > 0) { f(n - 1); } }" in
  let g = Callgraph.build p in
  let chains = Callgraph.call_chains g ~target:"f" in
  Alcotest.(check bool) "recursion terminates enumeration" true (List.length chains >= 1)

(* ------------------------------------------------------------------ *)
(* Path enumeration                                                    *)
(* ------------------------------------------------------------------ *)

let find_call_sid p meth callee =
  match Ast.methods_named p meth with
  | (_, m) :: _ -> (
      match Paths.call_sites m callee with
      | st :: _ -> (m, st.Ast.sid)
      | [] -> Alcotest.fail ("no call to " ^ callee))
  | [] -> Alcotest.fail ("no method " ^ meth)

let test_paths_through_if () =
  let p = program () in
  let m, sid = find_call_sid p "handlePut" "save" in
  let paths = Paths.paths_to_stmt m sid in
  Alcotest.(check int) "one path" 1 (List.length paths);
  match paths with
  | [ [ d ] ] ->
      Alcotest.(check bool) "guard taken" true d.Paths.d_taken;
      Alcotest.(check string) "guard text" "x > 0"
        (Pretty.expr_to_string d.Paths.d_cond)
  | _ -> Alcotest.fail "expected a single single-decision path"

let test_paths_if_else_counts () =
  let p =
    Parser.program
      "method f(x: int): int { if (x > 0) { return g(); } else { return g(); } } method g(): int { return 1; }"
  in
  let m = match Ast.find_func p "f" with Some m -> m | None -> assert false in
  let sites = Paths.paths_to_call m "g" in
  Alcotest.(check int) "two call sites, one path each" 2 (List.length sites)

let test_paths_early_return () =
  let p =
    Parser.program
      "method f(x: int) { if (x == 0) { return; } g(); } method g() { }"
  in
  let m = match Ast.find_func p "f" with Some m -> m | None -> assert false in
  let sites = Paths.paths_to_call m "g" in
  match sites with
  | [ (_, [ d ]) ] ->
      Alcotest.(check bool) "must not take the early return" false d.Paths.d_taken
  | _ -> Alcotest.fail "expected one path with one decision"

let test_paths_loop_bounded () =
  let p =
    Parser.program
      "method f(n: int) { var i: int = 0; while (i < n) { g(); i = i + 1; } } method g() { }"
  in
  let m = match Ast.find_func p "f" with Some m -> m | None -> assert false in
  let sites = Paths.paths_to_call m "g" in
  Alcotest.(check int) "call inside loop reachable" 1 (List.length sites);
  match sites with
  | [ (_, [ d ]) ] -> Alcotest.(check bool) "loop entered once" true d.Paths.d_taken
  | _ -> Alcotest.fail "expected one single-decision path"

let test_exec_tree () =
  let p = program () in
  let g = Callgraph.build p in
  let _, sid = find_call_sid p "persist" "writeRecord" in
  let tree = Paths.exec_tree p g sid in
  Alcotest.(check string) "target method" "Store.persist" tree.Paths.et_target_method;
  Alcotest.(check int) "one execution path" 1 (List.length tree.Paths.et_paths);
  let ep = List.hd tree.Paths.et_paths in
  Alcotest.(check string) "leaf is the entry" "test_put_positive" ep.Paths.ep_entry

(* ------------------------------------------------------------------ *)
(* Lock scope                                                          *)
(* ------------------------------------------------------------------ *)

let test_lockscope_direct_and_indirect () =
  let p = program () in
  let vs = Lockscope.analyze p in
  (* save's sync block contains a call to persist, which blocks *)
  let indirect =
    List.filter (fun (v : Lockscope.violation) -> not v.Lockscope.v_direct) vs
  in
  Alcotest.(check bool) "indirect violation found" true
    (List.exists
       (fun (v : Lockscope.violation) ->
         v.Lockscope.v_method = "Store.save" && v.Lockscope.v_op = "persist")
       indirect)

let test_lockscope_direct () =
  let p =
    Parser.program
      "class C { method f() { synchronized (this) { fsync(1); } } }"
  in
  let vs = Lockscope.analyze p in
  Alcotest.(check int) "one violation" 1 (List.length vs);
  let v = List.hd vs in
  Alcotest.(check bool) "direct" true v.Lockscope.v_direct;
  Alcotest.(check string) "op" "fsync" v.Lockscope.v_op

let test_lockscope_clean_after_hoist () =
  let p =
    Parser.program
      "class C { field x: int; method f() { var v: int = 0; synchronized (this) { v = this.x; } fsync(v); } }"
  in
  Alcotest.(check int) "no violations" 0 (List.length (Lockscope.analyze p))

let test_lockscope_nested_sync () =
  let p =
    Parser.program
      "class C { method f() { synchronized (this) { if (true) { writeRecord(1); } } } }"
  in
  let vs = Lockscope.analyze p in
  Alcotest.(check int) "violation found through nesting" 1 (List.length vs)

let suite =
  [
    ( "analysis.callgraph",
      [
        Alcotest.test_case "edges" `Quick test_callgraph_edges;
        Alcotest.test_case "entries" `Quick test_callgraph_entries;
        Alcotest.test_case "reachability" `Quick test_callgraph_reachable;
        Alcotest.test_case "call chains" `Quick test_call_chains;
        Alcotest.test_case "may predicate" `Quick test_may_predicate;
        Alcotest.test_case "recursion" `Quick test_callgraph_recursion_no_loop;
      ] );
    ( "analysis.paths",
      [
        Alcotest.test_case "path through if" `Quick test_paths_through_if;
        Alcotest.test_case "if/else call sites" `Quick test_paths_if_else_counts;
        Alcotest.test_case "early return" `Quick test_paths_early_return;
        Alcotest.test_case "loop bounded" `Quick test_paths_loop_bounded;
        Alcotest.test_case "execution tree" `Quick test_exec_tree;
      ] );
    ( "analysis.lockscope",
      [
        Alcotest.test_case "direct and indirect" `Quick test_lockscope_direct_and_indirect;
        Alcotest.test_case "direct" `Quick test_lockscope_direct;
        Alcotest.test_case "clean after hoist" `Quick test_lockscope_clean_after_hoist;
        Alcotest.test_case "nested sync" `Quick test_lockscope_nested_sync;
      ] );
  ]
