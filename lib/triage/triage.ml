(** Witness-replay triage: self-validating verdicts over checker findings.

    The checker reports every violating path, but the oracle that wrote
    the rule may have hallucinated its semantics (the noise model of
    {!Oracle.Inference} makes this concrete).  Following the
    Hitchhiker's-Guide recipe, each finding is put through a second,
    self-validation pass built on {e concrete witness generation}:

    1. the SMT [Sat] model of [pc /\ !checker] seeds a bounded
       case-split over the finding's state variables ({!synthesize});
    2. each synthesized valuation is replayed through the real MiniJava
       interpreter under a fuel budget — receiver and subject objects are
       materialized, fields set from the valuation, and the checker
       condition is re-evaluated on the {e runtime} state at every target
       arrival;
    3. the replay outcome is fused with two cheap consistency signals —
       whether the concretely-observed trace state already contradicts
       the checker (a rule that condemns states the system's own passing
       tests routinely produce) and whether the rule has any verified
       trace at all (the paper's §3.2 sanity requirement).

    The fusion yields a tier per finding: {!Witnessed} (a concrete
    execution reproduces the violation and the rule is consistent with
    observed behaviour), {!Consistent} (a model exists but replay was
    inconclusive or the budget ran out), {!Likely_fp} (replay refutes
    the finding, or the rule contradicts concretely-observed passing
    behaviour with no verified trace to its name).  Tiers only ever
    {e rank} findings — triage never deletes a report — so a disabled
    triage pass leaves every downstream byte identical. *)

open Minilang

type tier = Witnessed | Consistent | Likely_fp

let tier_to_string = function
  | Witnessed -> "witnessed"
  | Consistent -> "consistent"
  | Likely_fp -> "likely-fp"

let tier_of_string = function
  | "witnessed" -> Some Witnessed
  | "consistent" -> Some Consistent
  | "likely-fp" -> Some Likely_fp
  | _ -> None

(* counter-friendly spelling (dots and dashes don't mix in metric names) *)
let tier_metric = function
  | Witnessed -> "witnessed"
  | Consistent -> "consistent"
  | Likely_fp -> "likely_fp"

type config = {
  enabled : bool;
  replay_fuel : int;  (** interpreter fuel per replay attempt *)
  max_attempts : int;  (** witness valuations replayed per finding *)
  max_nodes : int;  (** case-split search nodes per finding *)
}

let default_config =
  { enabled = true; replay_fuel = 50_000; max_attempts = 8; max_nodes = 20_000 }

type finding = {
  f_rule_id : string;
  f_method : string;
  f_entry : string;  (** driving test; [""] for static lock findings *)
  f_target_sid : int;
  f_tier : tier;
  f_reason : string;  (** deterministic evidence summary *)
}

type triaged = {
  t_report : Engine.Checker.rule_report;
  t_findings : finding list;
      (** one per violation trace and lock finding; [] when triage is
          disabled or the report is clean *)
}

(* ------------------------------------------------------------------ *)
(* Bounded witness synthesis                                           *)
(* ------------------------------------------------------------------ *)

let wire_key = "w0"

module Smap = Map.Make (String)

(* What the formula's atoms say about a variable: used to build a typed,
   finite candidate domain per variable. *)
type var_facts = {
  mutable vf_ord : bool;  (** appears in an order atom *)
  mutable vf_ints : int list;  (** int constants compared against it *)
  mutable vf_bools : bool;  (** compared against a bool constant *)
  mutable vf_strs : string list;
  mutable vf_null : bool;  (** compared against null *)
  mutable vf_peers : string list;  (** variables compared against it *)
}

let fresh_facts () =
  {
    vf_ord = false;
    vf_ints = [];
    vf_bools = false;
    vf_strs = [];
    vf_null = false;
    vf_peers = [];
  }

let collect_facts (f : Smt.Formula.t) : var_facts Smap.t =
  let tbl = ref Smap.empty in
  let facts v =
    match Smap.find_opt v !tbl with
    | Some r -> r
    | None ->
        let r = fresh_facts () in
        tbl := Smap.add v r !tbl;
        r
  in
  let is_ord = function
    | Smt.Formula.Rlt | Smt.Formula.Rle | Smt.Formula.Rgt | Smt.Formula.Rge ->
        true
    | Smt.Formula.Req | Smt.Formula.Rneq -> false
  in
  List.iter
    (fun (a : Smt.Formula.atom) ->
      let note v (other : Smt.Formula.term) =
        let r = facts v in
        (* an order atom marks the variable int-like only when the other
           side could be an int: ordering against null/bool/str is a
           type error the enumeration should not let poison the domain *)
        (if is_ord a.Smt.Formula.rel then
           match Smt.Formula.term_view other with
           | Smt.Formula.T_int _ | Smt.Formula.T_var _ -> r.vf_ord <- true
           | _ -> ());
        match Smt.Formula.term_view other with
        | Smt.Formula.T_int n -> r.vf_ints <- n :: r.vf_ints
        | Smt.Formula.T_bool _ -> r.vf_bools <- true
        | Smt.Formula.T_str s -> r.vf_strs <- s :: r.vf_strs
        | Smt.Formula.T_null -> r.vf_null <- true
        | Smt.Formula.T_var p -> r.vf_peers <- p :: r.vf_peers
      in
      match
        (Smt.Formula.term_view a.Smt.Formula.lhs,
         Smt.Formula.term_view a.Smt.Formula.rhs)
      with
      | Smt.Formula.T_var v, _ ->
          note v a.Smt.Formula.rhs;
          (match Smt.Formula.term_view a.Smt.Formula.rhs with
          | Smt.Formula.T_var w -> note w a.Smt.Formula.lhs
          | _ -> ())
      | _, Smt.Formula.T_var w -> note w a.Smt.Formula.lhs
      | _ -> ())
    (Smt.Formula.atoms f);
  !tbl

(** External type hints (e.g. from program declarations) for variables the
    formula itself leaves untyped. *)
type hint = H_int | H_bool | H_str | H_obj

(* Candidate values per variable, most-promising first.  Int domains pool
   every int constant of the whole formula (plus the off-by-one
   neighbours and 0/1), so var-vs-var order chains still find relative
   orderings within the pool. *)
let domains_of ?(hints = fun _ -> None) (f : Smt.Formula.t) :
    (string * Smt.Formula.value list) list =
  let facts = collect_facts f in
  let int_pool =
    let consts =
      Smap.fold (fun _ r acc -> r.vf_ints @ acc) facts []
      |> List.concat_map (fun c -> [ c - 1; c; c + 1 ])
    in
    List.sort_uniq compare (0 :: 1 :: consts)
  in
  let is_int v =
    match Smap.find_opt v facts with
    | Some r ->
        r.vf_ord || r.vf_ints <> []
        || List.exists
             (fun p ->
               match Smap.find_opt p facts with
               | Some q -> q.vf_ord || q.vf_ints <> []
               | None -> false)
             r.vf_peers
    | None -> false
  in
  List.map
    (fun v ->
      let r =
        match Smap.find_opt v facts with Some r -> r | None -> fresh_facts ()
      in
      (* a variable compared against several types (common in fuzzed or
         corrupted conditions) gets every applicable candidate set: a
         wrong guess three-values to None downstream, never to a false
         witness, so over-approximating the domain is always safe *)
      let dom =
        (if is_int v then List.map (fun n -> Smt.Formula.V_int n) int_pool
         else [])
        @ (if r.vf_bools then
             [ Smt.Formula.V_bool true; Smt.Formula.V_bool false ]
           else [])
        @ (if r.vf_strs <> [] then
             List.map
               (fun s -> Smt.Formula.V_str s)
               (List.sort_uniq compare r.vf_strs @ [ wire_key ])
           else [])
        @
        if r.vf_null then [ Smt.Formula.V_str "<obj>"; Smt.Formula.V_null ]
        else []
      in
      let dom =
        if dom <> [] then dom
        else
          match hints v with
          | Some H_int -> List.map (fun n -> Smt.Formula.V_int n) int_pool
          | Some H_bool -> [ Smt.Formula.V_bool false; Smt.Formula.V_bool true ]
          | Some H_str -> [ Smt.Formula.V_str wire_key ]
          | Some H_obj -> [ Smt.Formula.V_str "<obj>"; Smt.Formula.V_null ]
          | None ->
              (* untyped and unconstrained: a small mixed domain; wrong
                 guesses three-value to None downstream, never to a
                 false witness *)
              [
                Smt.Formula.V_int 0;
                Smt.Formula.V_int 1;
                Smt.Formula.V_str "<obj>";
                Smt.Formula.V_null;
              ]
      in
      (v, dom))
    (Smt.Formula.variables f)

(* Reorder a variable's candidates so values the SMT model pins come
   first: positive [v == k] (or refuted [v != k]) literals name the
   model's own witness. *)
let seed_from_model (model : (Smt.Formula.atom * bool) list)
    (v : string) (dom : Smt.Formula.value list) : Smt.Formula.value list =
  let pinned =
    List.filter_map
      (fun ((a : Smt.Formula.atom), sign) ->
        let eq_like =
          match (a.Smt.Formula.rel, sign) with
          | Smt.Formula.Req, true | Smt.Formula.Rneq, false -> true
          | _ -> false
        in
        if not eq_like then None
        else
          let const t =
            match Smt.Formula.term_view t with
            | Smt.Formula.T_int n -> Some (Smt.Formula.V_int n)
            | Smt.Formula.T_bool b -> Some (Smt.Formula.V_bool b)
            | Smt.Formula.T_str s -> Some (Smt.Formula.V_str s)
            | Smt.Formula.T_null -> Some Smt.Formula.V_null
            | Smt.Formula.T_var _ -> None
          in
          match
            (Smt.Formula.term_view a.Smt.Formula.lhs,
             Smt.Formula.term_view a.Smt.Formula.rhs)
          with
          | Smt.Formula.T_var x, _ when x = v -> const a.Smt.Formula.rhs
          | _, Smt.Formula.T_var x when x = v -> const a.Smt.Formula.lhs
          | _ -> None)
      model
  in
  let first = List.filter (fun c -> List.mem c pinned) dom in
  first @ List.filter (fun c -> not (List.mem c first)) dom

(** Bounded enumeration of concrete valuations satisfying [f], pruned by
    three-valued partial evaluation.  Returns the witnesses found (each
    satisfies [eval _ f = Some true]) and a completeness flag: [true] iff
    the whole candidate space was explored without hitting the node or
    attempt budget — only then may a caller conclude anything from an
    empty or violation-free replay sweep. *)
let synthesize ?(model = []) ?(hints = fun _ -> None) ~max_nodes ~max_attempts
    (f : Smt.Formula.t) : (string * Smt.Formula.value) list list * bool =
  let f = Smt.Formula.simplify f in
  let domains =
    List.map
      (fun (v, dom) -> (v, seed_from_model model v dom))
      (domains_of ~hints f)
  in
  let nodes = ref 0 in
  let budget_hit = ref false in
  let found = ref [] in
  let nfound = ref 0 in
  let rec dfs assigned = function
    | [] -> (
        match Smt.Formula.eval assigned f with
        | Some true ->
            if !nfound < max_attempts then begin
              found := assigned :: !found;
              incr nfound
            end
            else budget_hit := true
        | Some false | None -> ())
    | (v, cands) :: rest ->
        List.iter
          (fun c ->
            if (not !budget_hit) || !nfound < max_attempts then begin
              incr nodes;
              if !nodes > max_nodes then budget_hit := true
              else
                let assigned' = assigned @ [ (v, c) ] in
                match Smt.Formula.eval assigned' f with
                | Some false -> ()
                | Some true | None -> dfs assigned' rest
            end)
          cands
  in
  (match Smt.Formula.view f with
  | Smt.Formula.False -> ()
  | _ -> dfs [] domains);
  (List.rev !found, not !budget_hit)

(* ------------------------------------------------------------------ *)
(* Concrete replay                                                     *)
(* ------------------------------------------------------------------ *)

type attempt =
  | A_reproduced of (string * Smt.Formula.value) list
      (** the runtime env observed at the violating arrival *)
  | A_refuted  (** run completed; every target arrival satisfied checker *)
  | A_no_arrival  (** run completed without reaching the target *)
  | A_inconclusive of string

exception Stop_replay

let split_method (qname : string) : string option * string =
  match String.index_opt qname '.' with
  | Some i ->
      ( Some (String.sub qname 0 i),
        String.sub qname (i + 1) (String.length qname - i - 1) )
  | None -> (None, qname)

let split_var (v : string) : (string * string) option =
  match String.index_opt v '.' with
  | Some i ->
      Some (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))
  | None -> None

let to_concrete (v : Value.t) : Smt.Formula.value =
  match v with
  | Value.V_int n -> Smt.Formula.V_int n
  | Value.V_bool b -> Smt.Formula.V_bool b
  | Value.V_str s -> Smt.Formula.V_str s
  | Value.V_null -> Smt.Formula.V_null
  | Value.V_ref _ -> Smt.Formula.V_str "<ref>"

let obj_of (st : Interp.state) (v : Value.t) : Value.obj option =
  match v with
  | Value.V_ref addr -> (
      match Value.heap_get st.Interp.heap addr with
      | Some (Value.C_obj o) -> Some o
      | Some _ | None -> None)
  | _ -> None

(* Declared-type hints for the bounded case-split: dotted variables read
   their class's field declaration, bare variables the target method's
   parameter list. *)
let program_hints (p : Ast.program) (md : Ast.method_decl option) (v : string)
    : hint option =
  let of_typ = function
    | Ast.T_int -> Some H_int
    | Ast.T_bool -> Some H_bool
    | Ast.T_str -> Some H_str
    | Ast.T_ref _ -> Some H_obj
    | Ast.T_map | Ast.T_list | Ast.T_void | Ast.T_any -> None
  in
  match split_var v with
  | Some (cls, fld) -> (
      match Ast.find_class p cls with
      | None -> None
      | Some c -> (
          match
            List.find_opt (fun (f : Ast.field_decl) -> f.Ast.f_name = fld)
              c.Ast.c_fields
          with
          | Some f -> of_typ f.Ast.f_typ
          | None -> None))
  | None -> (
      match Ast.find_class p v with
      | Some _ -> Some H_obj
      | None -> (
          match md with
          | None -> None
          | Some m -> (
              match List.assoc_opt v m.Ast.m_params with
              | Some ty -> of_typ ty
              | None -> None)))

(* One replay attempt: materialize receiver and subjects on a fresh
   interpreter state, install the valuation, and drive the finding's
   method; the statement hook re-evaluates the checker condition on live
   runtime state at every target arrival. *)
let replay_attempt (config : config) (p : Ast.program) ~(qname : string)
    ~(target_sid : int) ~(condition : Smt.Formula.t)
    (valuation : (string * Smt.Formula.value) list) : attempt =
  let cls_opt, meth = split_method qname in
  let cond_vars = Smt.Formula.variables condition in
  let val_vars = List.map fst valuation in
  (* classes whose state the witness constrains *)
  let subject_classes =
    List.filter_map
      (fun v ->
        match split_var v with
        | Some (cls, _) when Ast.find_class p cls <> None -> Some cls
        | _ -> (
            match Ast.find_class p v with Some _ -> Some v | None -> None))
      (List.sort_uniq compare (cond_vars @ val_vars))
    |> List.sort_uniq compare
  in
  let arrivals = ref [] in
  let witness_env = ref [] in
  let subjects = ref [] in
  let lookup_subject cls = List.assoc_opt cls !subjects in
  let interp_config = ref Interp.default_config in
  let st_ref = ref None in
  let runtime_env (st : Interp.state) : (string * Smt.Formula.value) list =
    List.filter_map
      (fun v ->
        match split_var v with
        | Some (cls, fld) -> (
            match lookup_subject cls with
            | Some sv -> (
                match obj_of st sv with
                | Some o -> (
                    match Value.obj_get o fld with
                    | Some fv -> Some (v, to_concrete fv)
                    | None -> None)
                | None -> None)
            | None -> None)
        | None -> (
            match lookup_subject v with
            | Some _ -> Some (v, Smt.Formula.V_str "<obj>")
            | None -> (
                match List.assoc_opt v valuation with
                | Some fv -> Some (v, fv)
                | None -> None)))
      cond_vars
  in
  let on_event = function
    | Interp.Ev_stmt sid when sid = target_sid -> (
        match !st_ref with
        | None -> ()
        | Some st -> (
            let env = runtime_env st in
            match Smt.Formula.eval env condition with
            | Some false ->
                witness_env := env;
                raise Stop_replay
            | r -> arrivals := r :: !arrivals))
    | _ -> ()
  in
  interp_config :=
    { !interp_config with Interp.fuel = config.replay_fuel; on_event = Some on_event };
  let st = Interp.create ~config:!interp_config p in
  st_ref := Some st;
  (* materialize subjects and install valuation fields *)
  subjects :=
    List.map (fun cls -> (cls, Interp.alloc_object st cls)) subject_classes;
  let concrete_of (fv : Smt.Formula.value) (ty : Ast.typ option) : Value.t =
    match fv with
    | Smt.Formula.V_int n -> Value.V_int n
    | Smt.Formula.V_bool b -> Value.V_bool b
    | Smt.Formula.V_null -> Value.V_null
    | Smt.Formula.V_str s -> (
        match ty with
        | Some (Ast.T_ref c) ->
            (* an object-ish marker for a reference slot: reuse the
               subject of that class, else allocate a fresh one *)
            if s = "<obj>" || s = "<ref>" then
              match lookup_subject c with
              | Some sv -> sv
              | None -> Interp.alloc_object st c
            else Value.V_str s
        | _ -> Value.V_str s)
  in
  List.iter
    (fun (v, fv) ->
      match split_var v with
      | Some (cls, fld) -> (
          match (lookup_subject cls, Ast.find_class p cls) with
          | Some sv, Some c -> (
              match
                List.find_opt (fun (f : Ast.field_decl) -> f.Ast.f_name = fld)
                  c.Ast.c_fields
              with
              | Some f -> (
                  match obj_of st sv with
                  | Some o ->
                      Value.obj_set o fld (concrete_of fv (Some f.Ast.f_typ))
                  | None -> ())
              | None -> ())
          | _ -> ())
      | None -> ())
    valuation;
  (* a bare variable whose witness value is null means "the subject is
     absent": drop that subject so null checks see null *)
  List.iter
    (fun (v, fv) ->
      if split_var v = None && fv = Smt.Formula.V_null then
        subjects := List.remove_assoc v !subjects)
    valuation;
  (* receiver: the subject of the enclosing class when constrained, a
     plain allocation otherwise *)
  let recv_info =
    match cls_opt with
    | None -> None
    | Some cls -> (
        match Ast.find_class p cls with
        | None -> None
        | Some c ->
            let recv =
              match lookup_subject cls with
              | Some sv -> sv
              | None ->
                  let r = Interp.alloc_object st cls in
                  subjects := (cls, r) :: !subjects;
                  r
            in
            Some (c, recv))
  in
  (* wire other subjects into the receiver: reference fields of a
     matching class, and container fields under the witness's string
     keys, so receiver-side lookups can find the constrained object *)
  let str_keys =
    List.filter_map
      (fun (_, fv) ->
        match fv with
        | Smt.Formula.V_str s when s <> "<obj>" && s <> "<ref>" -> Some s
        | _ -> None)
      valuation
    @ [ wire_key ]
    |> List.sort_uniq compare
  in
  (match recv_info with
  | None -> ()
  | Some (c, recv) -> (
      match obj_of st recv with
      | None -> ()
      | Some robj ->
          List.iter
            (fun (fd : Ast.field_decl) ->
              match fd.Ast.f_typ with
              | Ast.T_ref fc -> (
                  match lookup_subject fc with
                  | Some sv when not (Value.equal sv recv) ->
                      if
                        not
                          (List.exists
                             (fun (v, _) ->
                               v = c.Ast.c_name ^ "." ^ fd.Ast.f_name)
                             valuation)
                      then Value.obj_set robj fd.Ast.f_name sv
                  | _ -> ())
              | Ast.T_map -> (
                  match Value.obj_get robj fd.Ast.f_name with
                  | Some (Value.V_ref addr) -> (
                      match Value.heap_get st.Interp.heap addr with
                      | Some (Value.C_map cell) ->
                          List.iter
                            (fun (_, sv) ->
                              if not (Value.equal sv recv) then
                                List.iter
                                  (fun k ->
                                    Value.map_put cell (Value.V_str k) sv)
                                  str_keys)
                            (List.sort compare !subjects)
                      | _ -> ())
                  | _ -> ())
              | Ast.T_list -> (
                  match Value.obj_get robj fd.Ast.f_name with
                  | Some (Value.V_ref addr) -> (
                      match Value.heap_get st.Interp.heap addr with
                      | Some (Value.C_list cell) ->
                          List.iter
                            (fun (_, sv) ->
                              if not (Value.equal sv recv) then
                                cell := !cell @ [ sv ])
                            (List.sort compare !subjects)
                      | _ -> ())
                  | _ -> ())
              | Ast.T_int | Ast.T_bool | Ast.T_str | Ast.T_void | Ast.T_any ->
                  ())
            c.Ast.c_fields))
  ;
  (* arguments for the driven method, by parameter name *)
  let method_decl =
    match recv_info with
    | Some (c, _) -> Ast.find_method_in_class c meth
    | None -> Ast.find_func p meth
  in
  match method_decl with
  | None -> A_inconclusive (Fmt.str "method %s not found" qname)
  | Some md ->
      let args =
        List.map
          (fun (pname, ty) ->
            match List.assoc_opt pname valuation with
            | Some fv -> concrete_of fv (Some ty)
            | None -> (
                match ty with
                | Ast.T_int -> Value.V_int 0
                | Ast.T_bool -> Value.V_bool false
                | Ast.T_str -> Value.V_str wire_key
                | Ast.T_ref c -> (
                    match lookup_subject c with
                    | Some sv -> sv
                    | None -> Interp.alloc_object st c)
                | Ast.T_map ->
                    Value.V_ref
                      (Value.heap_alloc st.Interp.heap (Value.C_map (ref [])))
                | Ast.T_list ->
                    Value.V_ref
                      (Value.heap_alloc st.Interp.heap (Value.C_list (ref [])))
                | Ast.T_void | Ast.T_any -> Value.V_null))
          md.Ast.m_params
      in
      let outcome =
        match recv_info with
        | Some (_, recv) -> (
            try Interp.method_call_bounded ~fuel:config.replay_fuel st ~recv ~meth args
            with Stop_replay -> Interp.Call_returned Value.V_null)
        | None -> (
            try Interp.call_bounded ~fuel:config.replay_fuel st meth args
            with Stop_replay -> Interp.Call_returned Value.V_null)
      in
      if !witness_env <> [] then A_reproduced !witness_env
      else (
        match outcome with
        | Interp.Call_returned _ | Interp.Call_threw _ ->
            if List.exists (fun r -> r = None) !arrivals then
              A_inconclusive "checker unevaluable at a target arrival"
            else if !arrivals <> [] then A_refuted
            else A_no_arrival
        | Interp.Call_error m -> A_inconclusive (Fmt.str "replay error: %s" m)
        | Interp.Call_exhausted -> A_inconclusive "replay budget exhausted")

type replay_outcome =
  | Reproduced of (string * Smt.Formula.value) list
  | Refuted
  | Inconclusive of string

let replay_finding (config : config) (p : Ast.program) ~(qname : string)
    ~(target_sid : int) ~(condition : Smt.Formula.t)
    ~(model : (Smt.Formula.atom * bool) list) ~(pc : Smt.Formula.t) :
    replay_outcome =
  let md =
    let cls_opt, meth = split_method qname in
    match cls_opt with
    | Some cls -> (
        match Ast.find_class p cls with
        | Some c -> Ast.find_method_in_class c meth
        | None -> None)
    | None -> Ast.find_func p meth
  in
  let witness_formula =
    Smt.Formula.conj [ pc; Smt.Formula.negate condition ]
  in
  let valuations, complete =
    synthesize ~model ~hints:(program_hints p md)
      ~max_nodes:config.max_nodes ~max_attempts:config.max_attempts
      witness_formula
  in
  if valuations = [] then
    Inconclusive
      (if complete then "no concrete witness within the bounded case-split"
       else "case-split budget exhausted before a witness was found")
  else
    let attempts =
      List.map (replay_attempt config p ~qname ~target_sid ~condition)
        valuations
    in
    match
      List.find_opt (function A_reproduced _ -> true | _ -> false) attempts
    with
    | Some (A_reproduced env) -> Reproduced env
    | _ ->
        let refuted = function A_refuted -> true | _ -> false in
        let benign = function
          | A_refuted | A_no_arrival -> true
          | A_reproduced _ | A_inconclusive _ -> false
        in
        if complete && List.exists refuted attempts
           && List.for_all benign attempts
        then Refuted
        else
          let why =
            match
              List.find_opt
                (function A_inconclusive _ -> true | _ -> false)
                attempts
            with
            | Some (A_inconclusive m) -> m
            | _ ->
                if List.for_all (function A_no_arrival -> true | _ -> false) attempts
                then "replay never reached the target statement"
                else "replay incomplete"
          in
          Inconclusive why

(* ------------------------------------------------------------------ *)
(* Tier fusion                                                         *)
(* ------------------------------------------------------------------ *)

let env_to_string (env : (string * Smt.Formula.value) list) : string =
  String.concat ", "
    (List.map
       (fun (v, fv) ->
         Fmt.str "%s=%s"
           v
           (match fv with
           | Smt.Formula.V_int n -> string_of_int n
           | Smt.Formula.V_bool b -> string_of_bool b
           | Smt.Formula.V_str s -> s
           | Smt.Formula.V_null -> "null"))
       env)

(* The rule condemns a state the system's own green tests concretely
   produced: the strongest hallucination signal short of a refuting
   replay.  Decided on the captured trace state first (pure evaluation);
   the SMT entailment is the fallback when capture came up empty. *)
let contradicts_observed (condition : Smt.Formula.t)
    (tv : Engine.Checker.trace_verdict) : bool =
  match Smt.Formula.eval tv.Engine.Checker.tv_state condition with
  | Some false -> true
  | Some true -> false
  | None ->
      Smt.Solver.entails tv.Engine.Checker.tv_pc
        (Smt.Formula.negate condition)

let triage_trace (config : config) (p : Ast.program)
    (report : Engine.Checker.rule_report)
    (tv : Engine.Checker.trace_verdict) : finding =
  let rule_id = report.Engine.Checker.rep_rule.Semantics.Rule.rule_id in
  Telemetry.Trace.with_span ~cat:"triage"
    ~args:[ ("rule", rule_id); ("method", tv.Engine.Checker.tv_method) ]
    "triage.witness"
  @@ fun () ->
  let condition =
    match Semantics.Rule.condition report.Engine.Checker.rep_rule with
    | Some c -> c
    | None -> Smt.Formula.tru
  in
  let model =
    match tv.Engine.Checker.tv_result with
    | Smt.Solver.Violation m -> m
    | Smt.Solver.Verified | Smt.Solver.Undecided _ -> []
  in
  let outcome =
    replay_finding config p ~qname:tv.Engine.Checker.tv_method
      ~target_sid:tv.Engine.Checker.tv_target_sid ~condition ~model
      ~pc:tv.Engine.Checker.tv_pc
  in
  let contradiction = contradicts_observed condition tv in
  let sanity = report.Engine.Checker.rep_sanity_ok in
  let hallucinated = contradiction && not sanity in
  let tier, reason =
    match outcome with
    | Reproduced env ->
        if hallucinated then
          ( Likely_fp,
            Fmt.str
              "replay reproduces, but the rule contradicts observed \
               passing state and has no verified trace (%s)"
              (env_to_string env) )
        else (Witnessed, Fmt.str "replay reproduces: %s" (env_to_string env))
    | Refuted ->
        ( Likely_fp,
          "replay refutes: every synthesized witness reached the target \
           with the checker holding" )
    | Inconclusive why ->
        if hallucinated then
          ( Likely_fp,
            Fmt.str
              "rule contradicts observed passing state and has no \
               verified trace (replay: %s)"
              why )
        else (Consistent, Fmt.str "model exists; replay inconclusive: %s" why)
  in
  {
    f_rule_id = rule_id;
    f_method = tv.Engine.Checker.tv_method;
    f_entry = tv.Engine.Checker.tv_entry;
    f_target_sid = tv.Engine.Checker.tv_target_sid;
    f_tier = tier;
    f_reason = reason;
  }

let triage_lock (report : Engine.Checker.rule_report)
    (lf : Engine.Checker.lock_finding) : finding =
  let rule_id = report.Engine.Checker.rep_rule.Semantics.Rule.rule_id in
  Telemetry.Trace.with_span ~cat:"triage"
    ~args:[ ("rule", rule_id); ("method", lf.Engine.Checker.lf_method) ]
    "triage.witness"
  @@ fun () ->
  let tier, reason =
    if lf.Engine.Checker.lf_static then
      (Consistent, "static lock-scope finding; not dynamically observed")
    else
      ( Witnessed,
        Fmt.str "blocking op %s observed under a held monitor"
          lf.Engine.Checker.lf_op )
  in
  {
    f_rule_id = rule_id;
    f_method = lf.Engine.Checker.lf_method;
    f_entry = "";
    f_target_sid = lf.Engine.Checker.lf_sid;
    f_tier = tier;
    f_reason = reason;
  }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let triage_report ?(config = default_config) (p : Ast.program)
    (r : Engine.Checker.rule_report) : triaged =
  if not config.enabled then { t_report = r; t_findings = [] }
  else
    let fs =
      List.map (triage_trace config p r) r.Engine.Checker.rep_violations
      @ List.map (triage_lock r) r.Engine.Checker.rep_lock_findings
    in
    List.iter
      (fun f ->
        Telemetry.Metrics.incr ("triage.tier." ^ tier_metric f.f_tier))
      fs;
    { t_report = r; t_findings = fs }

let tier_counts (ts : triaged list) : int * int * int =
  List.fold_left
    (fun (w, c, l) t ->
      List.fold_left
        (fun (w, c, l) f ->
          match f.f_tier with
          | Witnessed -> (w + 1, c, l)
          | Consistent -> (w, c + 1, l)
          | Likely_fp -> (w, c, l + 1))
        (w, c, l) t.t_findings)
    (0, 0, 0) ts

let triage_reports ?(config = default_config) (p : Ast.program)
    (rs : Engine.Checker.rule_report list) : triaged list =
  let ts = List.map (triage_report ~config p) rs in
  if config.enabled then begin
    let w, c, l = tier_counts ts in
    Telemetry.Trace.counter ~cat:"triage" "triage.tier.witnessed"
      [ ("count", float_of_int w) ];
    Telemetry.Trace.counter ~cat:"triage" "triage.tier.consistent"
      [ ("count", float_of_int c) ];
    Telemetry.Trace.counter ~cat:"triage" "triage.tier.likely_fp"
      [ ("count", float_of_int l) ]
  end;
  ts

(** The report-level tier: the best tier among the rule's findings (a
    single witnessed finding makes the rule actionable), [None] for a
    clean report. *)
let rule_tier (t : triaged) : tier option =
  if t.t_findings = [] then None
  else if List.exists (fun f -> f.f_tier = Witnessed) t.t_findings then
    Some Witnessed
  else if List.exists (fun f -> f.f_tier = Consistent) t.t_findings then
    Some Consistent
  else Some Likely_fp

(** A rule blocks the gate iff it has at least one finding that survived
    triage (Witnessed or Consistent); all-Likely-FP rules are demoted to
    advisory. *)
let blocking (t : triaged) : bool =
  List.exists (fun f -> f.f_tier <> Likely_fp) t.t_findings

let has_blocking_findings (ts : triaged list) : bool =
  List.exists blocking ts

(** Rule ids with findings, all of which triage ranked Likely-FP. *)
let demoted_ids (ts : triaged list) : string list =
  List.filter_map
    (fun t ->
      if t.t_findings <> [] && not (blocking t) then
        Some t.t_report.Engine.Checker.rep_rule.Semantics.Rule.rule_id
      else None)
    ts

let finding_to_string (f : finding) : string =
  Fmt.str "[%s] %s in %s%s: %s"
    (tier_to_string f.f_tier)
    f.f_rule_id f.f_method
    (if f.f_entry = "" then "" else Fmt.str " (driven by %s)" f.f_entry)
    f.f_reason
