(** In-process tracing: nested spans (deterministic ids, per-domain
    nesting, {!Clock}-driven timestamps), instant events, and counter
    snapshots, exportable as Chrome trace format.  Disabled by default;
    a disabled {!with_span} costs one atomic load. *)

type arg = string * string

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_cat : string;
  sp_ts : float;  (** begin, seconds *)
  sp_dur : float;  (** seconds *)
  sp_tid : int;
  sp_args : arg list;
}

val enabled : unit -> bool

val set_enabled : bool -> unit

(** Drop every recorded event and restart span ids from 1. *)
val reset : unit -> unit

(** Run [f] under a named span, recorded on completion (also when [f]
    raises).  No-op while tracing is disabled. *)
val with_span : ?cat:string -> ?args:arg list -> string -> (unit -> 'a) -> 'a

(** A point-in-time event (telemetry events use this). *)
val instant : ?cat:string -> ?args:arg list -> string -> unit

(** A Chrome counter ("C") event: named numeric series sampled now. *)
val counter : ?cat:string -> string -> (string * float) list -> unit

(** Completed spans, oldest first. *)
val spans : unit -> span list

val event_count : unit -> int

(** The whole buffer as a Chrome-trace JSON array, oldest first. *)
val export_json : unit -> string

val export_to_file : string -> unit

(** Spans aggregated by name: count, total/mean/max wall, one row per
    span name, largest total first. *)
val summary : unit -> string
