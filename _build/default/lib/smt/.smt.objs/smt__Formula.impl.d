lib/smt/formula.ml: Fmt List Option Printf String
