lib/minilang/typecheck.ml: Ast Builtins Fmt List Loc String
