(** Theory solver: consistency of a conjunction of literals.

    Sound and complete for the checker-formula fragment: flat-term
    equalities/disequalities over all sorts (union-find), integer order
    constraints (difference bounds with a Floyd–Warshall closure), and
    boolean finite-domain reasoning.  Ill-sorted order constraints (e.g.
    ordering strings) make the set inconsistent. *)

type lit = { atom : Formula.atom; sign : bool }

(** [lit sign atom]: the literal [atom] ([sign = true]) or its negation. *)
val lit : bool -> Formula.atom -> lit

(** [consistent lits] decides whether the conjunction of [lits] has a
    model. *)
val consistent : lit list -> bool

(** [conflict_core lits] shrinks an inconsistent literal set to a locally
    minimal inconsistent core by greedy deletion (every literal of the
    result is necessary for the inconsistency).  Sets larger than an
    internal bound — or sets that are in fact consistent — are returned
    unchanged, so the result is inconsistent whenever the input is. *)
val conflict_core : lit list -> lit list
