(** Engine run statistics.

    One record per {!Scheduler.t}, accumulated across every [enforce]
    call the engine serves.  "Solver calls saved" counts SMT verdict
    cache hits — each one is a {!Smt.Solver.solve} invocation that did
    not happen — plus nothing else: report reuse savings show up
    indirectly as the drop in [solver_calls] itself. *)

type job_time = {
  jt_job_id : string;
  jt_rule_id : string;
  jt_wall_s : float;  (** dynamic-phase wall time of this job *)
}

type t = {
  mutable enforcements : int;  (** [enforce] calls served *)
  mutable jobs_run : int;  (** dynamic phases actually executed *)
  mutable report_hits : int;  (** jobs answered from the report cache *)
  mutable report_misses : int;
  mutable incremental_reuses : int;
      (** jobs skipped by the diff-based incremental pre-pass (no
          fingerprinting, no prepare: the previous report was reused) *)
  mutable smt_hits : int;  (** verdict-cache hits during our runs *)
  mutable smt_misses : int;
  mutable solver_calls : int;  (** {!Smt.Solver.solve} calls during our runs *)
  mutable wall_s : float;  (** total [enforce] wall time *)
  mutable job_times : job_time list;  (** newest first *)
  mutable retries : int;  (** failed jobs re-run after backoff *)
  mutable degraded_jobs : int;
      (** jobs whose report carries a degradation reason (out-of-fuel
          runs, undecided verdicts, quarantine placeholders) *)
  mutable quarantined : string list;
      (** rule ids whose jobs exhausted their retries, newest first *)
}

let create () =
  {
    enforcements = 0;
    jobs_run = 0;
    report_hits = 0;
    report_misses = 0;
    incremental_reuses = 0;
    smt_hits = 0;
    smt_misses = 0;
    solver_calls = 0;
    wall_s = 0.;
    job_times = [];
    retries = 0;
    degraded_jobs = 0;
    quarantined = [];
  }

let reset (s : t) =
  s.enforcements <- 0;
  s.jobs_run <- 0;
  s.report_hits <- 0;
  s.report_misses <- 0;
  s.incremental_reuses <- 0;
  s.smt_hits <- 0;
  s.smt_misses <- 0;
  s.solver_calls <- 0;
  s.wall_s <- 0.;
  s.job_times <- [];
  s.retries <- 0;
  s.degraded_jobs <- 0;
  s.quarantined <- []

(** SMT verdict-cache hits: solver invocations that never happened. *)
let solver_calls_saved (s : t) : int = s.smt_hits

let to_string (s : t) : string =
  let base =
    Fmt.str
      "engine: %d enforcement(s), %d job(s) run, report cache %d/%d hit/miss, \
       %d incremental reuse(s), smt cache %d/%d hit/miss, %d solver call(s) \
       (%d saved), %.3fs wall"
      s.enforcements s.jobs_run s.report_hits s.report_misses
      s.incremental_reuses s.smt_hits s.smt_misses s.solver_calls
      (solver_calls_saved s) s.wall_s
  in
  (* Resilience counters only appear once something went wrong, so the
     healthy-run string is byte-identical to the pre-resilience engine. *)
  if s.retries = 0 && s.degraded_jobs = 0 && s.quarantined = [] then base
  else
    Fmt.str "%s, %d retrie(s), %d degraded job(s), %d quarantined" base
      s.retries s.degraded_jobs
      (List.length s.quarantined)

(** The [n] slowest jobs, one per line. *)
let slowest_jobs ?(n = 5) (s : t) : string =
  s.job_times
  |> List.sort (fun a b -> compare b.jt_wall_s a.jt_wall_s)
  |> List.filteri (fun i _ -> i < n)
  |> List.map (fun jt -> Fmt.str "  %-24s %8.1f ms" jt.jt_rule_id (1000. *. jt.jt_wall_s))
  |> String.concat "\n"
