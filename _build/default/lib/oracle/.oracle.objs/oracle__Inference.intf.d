lib/oracle/inference.mli: Semantics Ticket
