(** Symbolic shadows for concolic execution.

    Every concrete value flowing through the concolic interpreter may carry
    a *shadow*: a canonical state path ([Session.closing]) or a constant.
    Shadows record provenance, not current value — they are what path
    conditions are written in terms of.

    A shadow {e is} an interned checker-formula term ({!Smt.Formula.term}):
    the old [S_var]/[T_var] mirror and its [to_term] conversion are gone,
    so a shadow flows into a path-condition atom with no translation and
    shadow equality is physical (terms are hash-consed).

    Naming convention (shared with {!Semantics.Translate}): object roots
    are canonicalized to their class name, so a trace through local [s] and
    a rule learned from local [session] agree on the path ["Session"]. *)

type t = Smt.Formula.term

let var (p : string) : t = Smt.Formula.tvar p

let of_value (v : Minilang.Value.t) : t option =
  match v with
  | Minilang.Value.V_int n -> Some (Smt.Formula.tint n)
  | Minilang.Value.V_bool b -> Some (Smt.Formula.tbool b)
  | Minilang.Value.V_str s -> Some (Smt.Formula.tstr s)
  | Minilang.Value.V_null -> Some Smt.Formula.tnull
  | Minilang.Value.V_ref _ -> None

let as_var (t : t) : string option =
  match Smt.Formula.term_view t with
  | Smt.Formula.T_var p -> Some p
  | Smt.Formula.T_int _ | Smt.Formula.T_bool _ | Smt.Formula.T_str _
  | Smt.Formula.T_null ->
      None

let is_var (t : t) =
  match Smt.Formula.term_view t with
  | Smt.Formula.T_var _ -> true
  | Smt.Formula.T_int _ | Smt.Formula.T_bool _ | Smt.Formula.T_str _
  | Smt.Formula.T_null ->
      false

let to_string = Smt.Formula.term_to_string

(** Root of a state path: ["Session.closing"] -> ["Session"]. *)
let root_of_path (p : string) : string =
  match String.index_opt p '.' with Some i -> String.sub p 0 i | None -> p

let mentions_root (roots : string list) (t : t) : bool =
  match as_var t with Some p -> List.mem (root_of_path p) roots | None -> false
