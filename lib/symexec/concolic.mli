(** Concolic execution engine over MiniJava (the WeBridge role, §3.2).

    Execution is driven by concrete inputs — the subject system's own
    tests — while a shadow symbolic state tracks provenance.  At each
    branch the engine records the {e fact} the (short-circuited) guard
    evaluation established, restricted to the semantic's relevant
    variables; at each target statement it snapshots the path condition
    accumulated along the live call stack (the execution-tree path from
    the entry function to the target). *)

type tagged = { v : Minilang.Value.t; sym : Sym.t option }

type hit = {
  h_target_sid : int;
  h_method : string;  (** qualified method containing the target *)
  h_entry : string;  (** test / entry function driving this execution *)
  h_pc : Smt.Formula.t list;  (** pruned path condition (a conjunction) *)
  h_full_pc : Smt.Formula.t list;  (** unpruned path condition *)
  h_decisions : (int * bool) list;
      (** first-occurrence branch decisions of the enclosing frame *)
  h_locks_held : int;
  h_state : (string * Smt.Formula.value) list;
      (** concrete valuation of [config.capture_vars] at the hit, in rule
          vocabulary (references appear as opaque ["<obj>"]/["<ref>"]
          markers, never heap addresses); empty unless capture was
          requested *)
}

type blocking_event = {
  be_sid : int;
  be_op : string;
  be_locks : int;  (** number of monitors held *)
  be_method : string;
  be_entry : string;
}

type config = {
  targets : int list;  (** sids at which to snapshot the path condition *)
  relevant_roots : string list;  (** roots of the semantic's variables *)
  prune : bool;  (** record only relevant facts (paper default) *)
  fuel : int;
  max_call_depth : int;
  capture_vars : string list;
      (** rule-vocabulary variables whose concrete values are snapshotted
          into [h_state] at each hit (used by witness-replay triage) *)
}

val default_config : config

type run_result = {
  r_entry : string;
  r_outcome : Minilang.Interp.test_outcome;
  r_hits : hit list;  (** in execution order *)
  r_blocking : blocking_event list;  (** in execution order *)
  r_branches_total : int;
  r_branches_recorded : int;
}

(** Run one entry function (usually a test) under the engine. *)
val run : ?config:config -> Minilang.Ast.program -> string -> run_result

val run_all : ?config:config -> Minilang.Ast.program -> string list -> run_result list

(** The hit's path condition as one conjunction. *)
val hit_pc_formula : hit -> Smt.Formula.t

(** The hit's path condition as the decision-ordered list of interned
    facts (outermost decision first) — the form {!Smt.Pctrie} groups by:
    two hits share a snapshot prefix iff their executions took the same
    first decisions.  [hit_pc_formula h = Smt.Formula.conj
    (hit_pc_snapshot h)]. *)
val hit_pc_snapshot : hit -> Smt.Formula.t list

val hit_full_pc_formula : hit -> Smt.Formula.t

val hit_to_string : hit -> string
