examples/composition.ml: Lisa
