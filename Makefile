.PHONY: all build test check bench chaos clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate plus the engine acceptance smokes: build, full test
# suite, the serial/parallel/incremental equivalence checks, and the
# chaos fault-injection invariants, both on the zookeeper slice of the
# E11 workload.
check:
	dune build && dune runtest && dune exec bench/main.exe -- --experiment engine --smoke && dune exec bench/main.exe -- --experiment chaos --smoke

bench:
	dune exec bench/main.exe

# Full chaos suite: all four systems, seeds 1-3, plus the jobs=4 leg
# and the post-chaos byte-identical re-run check.
chaos:
	dune exec bench/main.exe -- --experiment chaos

clean:
	dune clean
