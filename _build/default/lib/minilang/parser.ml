(** Recursive-descent parser for MiniJava.

    Grammar sketch (EBNF; braces = repetition, brackets = optional):
    {v
      program   ::= { class | method }
      class     ::= "class" IDENT "{" { field | method } "}"
      field     ::= "field" IDENT ":" typ [ "=" expr ] ";"
      method    ::= "method" IDENT "(" params ")" [ ":" typ ] block
      params    ::= [ IDENT ":" typ { "," IDENT ":" typ } ]
      block     ::= "{" { stmt } "}"
      stmt      ::= "var" IDENT ":" typ [ "=" expr ] ";"
                  | "if" "(" expr ")" block [ "else" ( block | ifstmt ) ]
                  | "while" "(" expr ")" block
                  | "return" [ expr ] ";"
                  | "throw" expr ";"
                  | "try" block "catch" "(" IDENT ")" block
                  | "synchronized" "(" expr ")" block
                  | "assert" "(" expr [ "," STRING ] ")" ";"
                  | "break" ";" | "continue" ";"
                  | lvalue "=" expr ";"
                  | expr ";"
      expr      ::= or-expr; usual precedence: || < && < cmp < add < mul < unary
      primary   ::= literal | IDENT | "this" | "(" expr ")" | call
                  | "new" IDENT "(" args ")" | primary "." IDENT [ "(" args ")" ]
    v}

    Statement ids are assigned left-to-right from a caller-suppliable base,
    so parsing the same source twice yields identical sids — a property the
    diff-to-sid mapping in [lib/diffing] relies on. *)

exception Error of string * Loc.t

type state = {
  toks : Lexer.located array;
  mutable idx : int;
  mutable next_sid : int;
}

let make_state ?(first_sid = 1) toks =
  { toks = Array.of_list toks; idx = 0; next_sid = first_sid }

let peek st = st.toks.(st.idx)

let peek_tok st = (peek st).tok


let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let fresh_sid st =
  let sid = st.next_sid in
  st.next_sid <- sid + 1;
  sid

let error st msg = raise (Error (msg, (peek st).loc))

let expect st tok =
  if Token.equal (peek_tok st) tok then advance st
  else
    error st
      (Fmt.str "expected '%s' but found '%s'" (Token.to_string tok)
         (Token.to_string (peek_tok st)))

let expect_ident st =
  match peek_tok st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> error st (Fmt.str "expected identifier, found '%s'" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let parse_typ st : Ast.typ =
  match peek_tok st with
  | Token.KW_INT ->
      advance st;
      Ast.T_int
  | Token.KW_BOOL ->
      advance st;
      Ast.T_bool
  | Token.KW_STR ->
      advance st;
      Ast.T_str
  | Token.KW_MAP ->
      advance st;
      Ast.T_map
  | Token.KW_LIST ->
      advance st;
      Ast.T_list
  | Token.KW_VOID ->
      advance st;
      Ast.T_void
  | Token.KW_ANY ->
      advance st;
      Ast.T_any
  | Token.IDENT c ->
      advance st;
      Ast.T_ref c
  | t -> error st (Fmt.str "expected a type, found '%s'" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if Token.equal (peek_tok st) Token.OROR then (
    let loc = (peek st).loc in
    advance st;
    let rhs = parse_or st in
    Ast.mk_expr ~loc (Ast.Binop (Ast.Or, lhs, rhs)))
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if Token.equal (peek_tok st) Token.ANDAND then (
    let loc = (peek st).loc in
    advance st;
    let rhs = parse_and st in
    Ast.mk_expr ~loc (Ast.Binop (Ast.And, lhs, rhs)))
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek_tok st with
    | Token.EQ -> Some Ast.Eq
    | Token.NEQ -> Some Ast.Neq
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      let loc = (peek st).loc in
      advance st;
      let rhs = parse_add st in
      Ast.mk_expr ~loc (Ast.Binop (op, lhs, rhs))

and parse_add st =
  let rec go lhs =
    match peek_tok st with
    | Token.PLUS ->
        let loc = (peek st).loc in
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Add, lhs, parse_mul st)))
    | Token.MINUS ->
        let loc = (peek st).loc in
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Sub, lhs, parse_mul st)))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek_tok st with
    | Token.STAR ->
        let loc = (peek st).loc in
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Mul, lhs, parse_unary st)))
    | Token.SLASH ->
        let loc = (peek st).loc in
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Div, lhs, parse_unary st)))
    | Token.PERCENT ->
        let loc = (peek st).loc in
        advance st;
        go (Ast.mk_expr ~loc (Ast.Binop (Ast.Mod, lhs, parse_unary st)))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek_tok st with
  | Token.BANG ->
      let loc = (peek st).loc in
      advance st;
      Ast.mk_expr ~loc (Ast.Unop (Ast.Not, parse_unary st))
  | Token.MINUS ->
      let loc = (peek st).loc in
      advance st;
      Ast.mk_expr ~loc (Ast.Unop (Ast.Neg, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go recv =
    match peek_tok st with
    | Token.DOT -> (
        advance st;
        let loc = (peek st).loc in
        let name = expect_ident st in
        match peek_tok st with
        | Token.LPAREN ->
            let args = parse_args st in
            go (Ast.mk_expr ~loc (Ast.Method_call (recv, name, args)))
        | _ -> go (Ast.mk_expr ~loc (Ast.Field (recv, name))))
    | _ -> recv
  in
  go (parse_primary st)

and parse_args st : Ast.expr list =
  expect st Token.LPAREN;
  if Token.equal (peek_tok st) Token.RPAREN then (
    advance st;
    [])
  else
    let rec go acc =
      let e = parse_expr st in
      match peek_tok st with
      | Token.COMMA ->
          advance st;
          go (e :: acc)
      | Token.RPAREN ->
          advance st;
          List.rev (e :: acc)
      | t -> error st (Fmt.str "expected ',' or ')', found '%s'" (Token.to_string t))
    in
    go []

and parse_primary st =
  let loc = (peek st).loc in
  match peek_tok st with
  | Token.INT n ->
      advance st;
      Ast.mk_expr ~loc (Ast.Int_lit n)
  | Token.STRING s ->
      advance st;
      Ast.mk_expr ~loc (Ast.Str_lit s)
  | Token.KW_TRUE ->
      advance st;
      Ast.mk_expr ~loc (Ast.Bool_lit true)
  | Token.KW_FALSE ->
      advance st;
      Ast.mk_expr ~loc (Ast.Bool_lit false)
  | Token.KW_NULL ->
      advance st;
      Ast.mk_expr ~loc Ast.Null_lit
  | Token.KW_THIS ->
      advance st;
      Ast.mk_expr ~loc Ast.This
  | Token.KW_NEW ->
      advance st;
      let cls = expect_ident st in
      let args = parse_args st in
      Ast.mk_expr ~loc (Ast.New (cls, args))
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.IDENT name -> (
      advance st;
      match peek_tok st with
      | Token.LPAREN ->
          let args = parse_args st in
          Ast.mk_expr ~loc (Ast.Call (name, args))
      | _ -> Ast.mk_expr ~loc (Ast.Var name))
  | t -> error st (Fmt.str "expected expression, found '%s'" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_block st : Ast.block =
  expect st Token.LBRACE;
  let rec go acc =
    match peek_tok st with
    | Token.RBRACE ->
        advance st;
        List.rev acc
    | Token.EOF -> error st "unexpected end of input in block"
    | _ -> go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st : Ast.stmt =
  let loc = (peek st).loc in
  (* Reserve the statement id before parsing children so that statement ids
     are assigned in source (pre-order) order. *)
  let sid = fresh_sid st in
  let mk s = Ast.mk_stmt ~sid ~loc s in
  match peek_tok st with
  | Token.KW_VAR ->
      advance st;
      let name = expect_ident st in
      expect st Token.COLON;
      let ty = parse_typ st in
      let init =
        if Token.equal (peek_tok st) Token.ASSIGN then (
          advance st;
          Some (parse_expr st))
        else None
      in
      expect st Token.SEMI;
      mk (Ast.Decl (name, ty, init))
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_b = parse_block st in
      let else_b =
        if Token.equal (peek_tok st) Token.KW_ELSE then (
          advance st;
          if Token.equal (peek_tok st) Token.KW_IF then [ parse_stmt st ]
          else parse_block st)
        else []
      in
      mk (Ast.If (cond, then_b, else_b))
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let body = parse_block st in
      mk (Ast.While (cond, body))
  | Token.KW_RETURN ->
      advance st;
      if Token.equal (peek_tok st) Token.SEMI then (
        advance st;
        mk (Ast.Return None))
      else
        let e = parse_expr st in
        expect st Token.SEMI;
        mk (Ast.Return (Some e))
  | Token.KW_THROW ->
      advance st;
      let e = parse_expr st in
      expect st Token.SEMI;
      mk (Ast.Throw e)
  | Token.KW_TRY ->
      advance st;
      let body = parse_block st in
      expect st Token.KW_CATCH;
      expect st Token.LPAREN;
      let exn_var = expect_ident st in
      expect st Token.RPAREN;
      let handler = parse_block st in
      mk (Ast.Try (body, exn_var, handler))
  | Token.KW_SYNCHRONIZED ->
      advance st;
      expect st Token.LPAREN;
      let obj = parse_expr st in
      expect st Token.RPAREN;
      let body = parse_block st in
      mk (Ast.Sync (obj, body))
  | Token.KW_ASSERT ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      let msg =
        if Token.equal (peek_tok st) Token.COMMA then (
          advance st;
          match peek_tok st with
          | Token.STRING s ->
              advance st;
              s
          | t -> error st (Fmt.str "expected string message, found '%s'" (Token.to_string t)))
        else "assertion failed"
      in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      mk (Ast.Assert (cond, msg))
  | Token.KW_BREAK ->
      advance st;
      expect st Token.SEMI;
      mk Ast.Break
  | Token.KW_CONTINUE ->
      advance st;
      expect st Token.SEMI;
      mk Ast.Continue
  | _ ->
      (* assignment or expression statement *)
      let e = parse_expr st in
      if Token.equal (peek_tok st) Token.ASSIGN then (
        advance st;
        let rhs = parse_expr st in
        expect st Token.SEMI;
        let lv =
          match e.Ast.e with
          | Ast.Var x -> Ast.Lv_var x
          | Ast.Field (o, f) -> Ast.Lv_field (o, f)
          | _ -> error st "invalid assignment target"
        in
        mk (Ast.Assign (lv, rhs)))
      else (
        expect st Token.SEMI;
        mk (Ast.Expr e))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_params st : (string * Ast.typ) list =
  expect st Token.LPAREN;
  if Token.equal (peek_tok st) Token.RPAREN then (
    advance st;
    [])
  else
    let rec go acc =
      let name = expect_ident st in
      expect st Token.COLON;
      let ty = parse_typ st in
      match peek_tok st with
      | Token.COMMA ->
          advance st;
          go ((name, ty) :: acc)
      | Token.RPAREN ->
          advance st;
          List.rev ((name, ty) :: acc)
      | t -> error st (Fmt.str "expected ',' or ')', found '%s'" (Token.to_string t))
    in
    go []

let parse_method st : Ast.method_decl =
  let loc = (peek st).loc in
  expect st Token.KW_METHOD;
  let name = expect_ident st in
  let params = parse_params st in
  let ret =
    if Token.equal (peek_tok st) Token.COLON then (
      advance st;
      parse_typ st)
    else Ast.T_void
  in
  let body = parse_block st in
  { Ast.m_name = name; m_params = params; m_ret = ret; m_body = body; m_loc = loc }

let parse_field st : Ast.field_decl =
  let loc = (peek st).loc in
  expect st Token.KW_FIELD;
  let name = expect_ident st in
  expect st Token.COLON;
  let ty = parse_typ st in
  let init =
    if Token.equal (peek_tok st) Token.ASSIGN then (
      advance st;
      Some (parse_expr st))
    else None
  in
  expect st Token.SEMI;
  { Ast.f_name = name; f_typ = ty; f_init = init; f_loc = loc }

let parse_class st : Ast.class_decl =
  let loc = (peek st).loc in
  expect st Token.KW_CLASS;
  let name = expect_ident st in
  expect st Token.LBRACE;
  let rec go fields methods =
    match peek_tok st with
    | Token.RBRACE ->
        advance st;
        (List.rev fields, List.rev methods)
    | Token.KW_FIELD -> go (parse_field st :: fields) methods
    | Token.KW_METHOD ->
        let m = parse_method st in
        go fields (m :: methods)
    | t ->
        error st
          (Fmt.str "expected 'field', 'method' or '}' in class body, found '%s'"
             (Token.to_string t))
  in
  let fields, methods = go [] [] in
  { Ast.c_name = name; c_fields = fields; c_methods = methods; c_loc = loc }

let parse_program st : Ast.program =
  let rec go classes funcs =
    match peek_tok st with
    | Token.EOF ->
        { Ast.p_classes = List.rev classes; p_funcs = List.rev funcs }
    | Token.KW_CLASS -> go (parse_class st :: classes) funcs
    | Token.KW_METHOD -> go classes (parse_method st :: funcs)
    | t ->
        error st
          (Fmt.str "expected 'class' or 'method' at top level, found '%s'"
             (Token.to_string t))
  in
  go [] []

(** Parse a full program from source text.

    @param file label used in locations.
    @param first_sid base for statement-id assignment (default 1). *)
let program ?(file = "<string>") ?(first_sid = 1) (src : string) : Ast.program =
  let toks = Lexer.tokenize ~file src in
  let st = make_state ~first_sid toks in
  parse_program st

(** Parse a single expression, e.g. a semantic condition written in MiniJava
    concrete syntax (["s != null && s.closing == false"]). *)
let expression ?(file = "<expr>") (src : string) : Ast.expr =
  let toks = Lexer.tokenize ~file src in
  let st = make_state toks in
  let e = parse_expr st in
  (match peek_tok st with
  | Token.EOF -> ()
  | t -> error st (Fmt.str "trailing tokens after expression: '%s'" (Token.to_string t)));
  e
