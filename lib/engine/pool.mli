(** Domain-based worker pool.  [jobs <= 1] is a plain serial map on the
    calling domain (bit-for-bit deterministic); [jobs > 1] spawns up to
    [jobs] domains draining a shared atomic index, with results returned
    in input order — so output is independent of the pool width whenever
    the mapped function is deterministic per item.  Worker exceptions are
    re-raised on the caller (first by input index). *)

(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core to
    the scheduler. *)
val default_jobs : unit -> int

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
