lib/semantics/dsl.ml: Fmt List Minilang Option Rule Smt String
