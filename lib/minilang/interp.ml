(** Concrete interpreter for MiniJava.

    The interpreter is the "JVM" of the reproduction: subject-system code
    and its tests run on it.  It maintains:

    - a growable heap of objects / maps / lists ({!Value});
    - a logical clock (one tick per statement) used by [now()];
    - a *lock set* tracking the objects held by enclosing [synchronized]
      blocks, so that blocking builtins can report the locks they block
      under (the signal behind the paper's Figure 6 rules);
    - an event trace, fed through an optional hook so callers (tests, the
      lock-discipline checker, the study driver) can observe execution.

    Errors are reported as exceptions: user [throw] surfaces as
    {!Mini_throw}, runtime type errors as {!Runtime_error}, exhausted fuel
    as {!Out_of_fuel} (the interpreter is deliberately total given finite
    fuel — subject systems contain intentional livelocks). *)

type event =
  | Ev_stmt of int  (** statement [sid] about to execute *)
  | Ev_call of { qname : string; depth : int }
  | Ev_return of { qname : string; depth : int }
  | Ev_branch of { sid : int; taken : bool; cond_text : string }
  | Ev_lock of { sid : int; addr : int }
  | Ev_unlock of { sid : int; addr : int }
  | Ev_blocking of { sid : int; op : string; locks_held : int list }
  | Ev_throw of { sid : int; payload : string }
  | Ev_output of string

exception Mini_throw of Value.t

exception Runtime_error of string * Loc.t

exception Out_of_fuel

exception Assertion_failure of string * int  (** message, sid *)

type config = {
  fuel : int;  (** maximum number of statements to execute *)
  on_event : (event -> unit) option;
  max_call_depth : int;
}

let default_config = { fuel = 200_000; on_event = None; max_call_depth = 400 }

type state = {
  program : Ast.program;
  heap : Value.heap;
  mutable clock : int;
  mutable fuel_left : int;
  mutable locks : int list;  (** addresses of currently-held locks, innermost first *)
  mutable depth : int;
  console : Buffer.t;
  logbuf : Buffer.t;
  config : config;
}

type frame = { vars : (string, Value.t) Hashtbl.t; self : Value.t }

let create ?(config = default_config) (program : Ast.program) : state =
  {
    program;
    heap = Value.heap_create ();
    clock = 0;
    fuel_left = config.fuel;
    locks = [];
    depth = 0;
    console = Buffer.create 256;
    logbuf = Buffer.create 256;
    config;
  }

let emit st ev = match st.config.on_event with None -> () | Some f -> f ev

let tick st =
  st.clock <- st.clock + 1;
  st.fuel_left <- st.fuel_left - 1;
  if st.fuel_left <= 0 then raise Out_of_fuel

let runtime_error loc fmt = Fmt.kstr (fun m -> raise (Runtime_error (m, loc))) fmt

(* ------------------------------------------------------------------ *)
(* Flow control result of executing a block                            *)
(* ------------------------------------------------------------------ *)

type flow = F_normal | F_return of Value.t | F_break | F_continue

(* ------------------------------------------------------------------ *)
(* Builtin implementations                                             *)
(* ------------------------------------------------------------------ *)

let as_int loc = function
  | Value.V_int n -> n
  | v -> runtime_error loc "expected int, got %s" (Value.type_name v)

let as_str loc = function
  | Value.V_str s -> s
  | v -> runtime_error loc "expected str, got %s" (Value.type_name v)

let as_map st loc = function
  | Value.V_ref addr -> (
      match Value.heap_get st.heap addr with
      | Some (Value.C_map m) -> m
      | _ -> runtime_error loc "expected map reference")
  | Value.V_null -> runtime_error loc "null map dereference"
  | v -> runtime_error loc "expected map, got %s" (Value.type_name v)

let as_list st loc = function
  | Value.V_ref addr -> (
      match Value.heap_get st.heap addr with
      | Some (Value.C_list l) -> l
      | _ -> runtime_error loc "expected list reference")
  | Value.V_null -> runtime_error loc "null list dereference"
  | v -> runtime_error loc "expected list, got %s" (Value.type_name v)

let call_builtin st ~sid ~loc name (args : Value.t list) : Value.t =
  let blocking op =
    emit st (Ev_blocking { sid; op; locks_held = st.locks });
    (* blocking ops consume extra logical time *)
    st.clock <- st.clock + 10
  in
  match (name, args) with
  | "mapNew", [] -> Value.V_ref (Value.heap_alloc st.heap (Value.C_map (ref [])))
  | "mapGet", [ m; k ] -> (
      match Value.map_get (as_map st loc m) k with Some v -> v | None -> Value.V_null)
  | "mapPut", [ m; k; v ] ->
      Value.map_put (as_map st loc m) k v;
      Value.V_null
  | "mapRemove", [ m; k ] ->
      Value.map_remove (as_map st loc m) k;
      Value.V_null
  | "mapContains", [ m; k ] -> Value.V_bool (Value.map_contains (as_map st loc m) k)
  | "mapSize", [ m ] -> Value.V_int (List.length !(as_map st loc m))
  | "mapKeys", [ m ] ->
      let keys = List.map fst !(as_map st loc m) in
      Value.V_ref (Value.heap_alloc st.heap (Value.C_list (ref keys)))
  | "listNew", [] -> Value.V_ref (Value.heap_alloc st.heap (Value.C_list (ref [])))
  | "listAdd", [ l; v ] ->
      let cell = as_list st loc l in
      cell := !cell @ [ v ];
      Value.V_null
  | "listGet", [ l; i ] -> (
      let cell = as_list st loc l in
      let i = as_int loc i in
      match List.nth_opt !cell i with
      | Some v -> v
      | None -> runtime_error loc "list index %d out of bounds (size %d)" i (List.length !cell))
  | "listSet", [ l; i; v ] ->
      let cell = as_list st loc l in
      let i = as_int loc i in
      if i < 0 || i >= List.length !cell then
        runtime_error loc "list index %d out of bounds (size %d)" i (List.length !cell);
      cell := List.mapi (fun j x -> if j = i then v else x) !cell;
      Value.V_null
  | "listSize", [ l ] -> Value.V_int (List.length !(as_list st loc l))
  | "listContains", [ l; v ] ->
      Value.V_bool (List.exists (Value.equal v) !(as_list st loc l))
  | "listRemoveAt", [ l; i ] ->
      let cell = as_list st loc l in
      let i = as_int loc i in
      cell := List.filteri (fun j _ -> j <> i) !cell;
      Value.V_null
  | "toStr", [ v ] -> Value.V_str (Value.to_string ~heap:st.heap v)
  | "strLen", [ s ] -> Value.V_int (String.length (as_str loc s))
  | "concat", [ a; b ] -> Value.V_str (as_str loc a ^ as_str loc b)
  | "startsWith", [ s; p ] ->
      let s = as_str loc s and p = as_str loc p in
      Value.V_bool (String.length p <= String.length s && String.sub s 0 (String.length p) = p)
  | "abs", [ n ] -> Value.V_int (abs (as_int loc n))
  | "min", [ a; b ] -> Value.V_int (min (as_int loc a) (as_int loc b))
  | "max", [ a; b ] -> Value.V_int (max (as_int loc a) (as_int loc b))
  | "now", [] -> Value.V_int st.clock
  | "print", [ v ] ->
      let line = Value.to_string ~heap:st.heap v in
      Buffer.add_string st.console line;
      Buffer.add_char st.console '\n';
      emit st (Ev_output line);
      Value.V_null
  | "log", [ v ] ->
      Buffer.add_string st.logbuf (Value.to_string ~heap:st.heap v);
      Buffer.add_char st.logbuf '\n';
      Value.V_null
  | "fail", [ v ] -> raise (Mini_throw v)
  | "writeRecord", [ _ ] ->
      blocking "writeRecord";
      Value.V_null
  | "readRecord", [ v ] ->
      blocking "readRecord";
      v
  | "networkSend", [ _; _ ] ->
      blocking "networkSend";
      Value.V_null
  | "networkRecv", [ v ] ->
      blocking "networkRecv";
      v
  | "fsync", [ _ ] ->
      blocking "fsync";
      Value.V_null
  | "rpcCall", [ _; v ] ->
      blocking "rpcCall";
      v
  | "sleepMs", [ n ] ->
      blocking "sleepMs";
      st.clock <- st.clock + as_int loc n;
      Value.V_null
  | _ ->
      runtime_error loc "builtin %s: bad arity (%d args)" name (List.length args)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let rec eval st (frame : frame) (e : Ast.expr) : Value.t =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Int_lit n -> Value.V_int n
  | Ast.Bool_lit b -> Value.V_bool b
  | Ast.Str_lit s -> Value.V_str s
  | Ast.Null_lit -> Value.V_null
  | Ast.This -> frame.self
  | Ast.Var x -> (
      match Hashtbl.find_opt frame.vars x with
      | Some v -> v
      | None -> runtime_error loc "unbound variable %s" x)
  | Ast.Field (o, f) -> (
      let ov = eval st frame o in
      match ov with
      | Value.V_ref addr -> (
          match Value.heap_get st.heap addr with
          | Some (Value.C_obj obj) -> (
              match Value.obj_get obj f with
              | Some v -> v
              | None -> runtime_error loc "object %s has no field %s" obj.Value.o_class f)
          | Some _ -> runtime_error loc "field access %s on non-object" f
          | None -> runtime_error loc "dangling reference")
      | Value.V_null -> runtime_error loc "null dereference reading field %s" f
      | v -> runtime_error loc "field access %s on %s" f (Value.type_name v))
  | Ast.Binop (op, a, b) -> eval_binop st frame loc op a b
  | Ast.Unop (Ast.Not, a) -> (
      match eval st frame a with
      | Value.V_bool b -> Value.V_bool (not b)
      | v -> runtime_error loc "'!' applied to %s" (Value.type_name v))
  | Ast.Unop (Ast.Neg, a) -> (
      match eval st frame a with
      | Value.V_int n -> Value.V_int (-n)
      | v -> runtime_error loc "unary '-' applied to %s" (Value.type_name v))
  | Ast.Call (name, args) ->
      let argv = List.map (eval st frame) args in
      if Builtins.is_builtin name then call_builtin st ~sid:(-1) ~loc name argv
      else (
        match Ast.find_func st.program name with
        | Some f -> invoke st ~qname:name f Value.V_null argv loc
        | None -> runtime_error loc "unknown function %s" name)
  | Ast.Method_call (o, m, args) -> (
      let ov = eval st frame o in
      let argv = List.map (eval st frame) args in
      match ov with
      | Value.V_ref addr -> (
          match Value.heap_get st.heap addr with
          | Some (Value.C_obj obj) -> (
              match Ast.find_class st.program obj.Value.o_class with
              | None -> runtime_error loc "object of unknown class %s" obj.Value.o_class
              | Some cls -> (
                  match Ast.find_method_in_class cls m with
                  | Some md ->
                      invoke st ~qname:(cls.Ast.c_name ^ "." ^ m) md ov argv loc
                  | None ->
                      runtime_error loc "class %s has no method %s" cls.Ast.c_name m))
          | Some _ -> runtime_error loc "method call %s on non-object" m
          | None -> runtime_error loc "dangling reference")
      | Value.V_null -> runtime_error loc "null dereference calling method %s" m
      | v -> runtime_error loc "method call %s on %s" m (Value.type_name v))
  | Ast.New (cls_name, args) -> (
      match Ast.find_class st.program cls_name with
      | None -> runtime_error loc "unknown class %s" cls_name
      | Some cls ->
          let obj = Value.new_obj ~cls:cls_name in
          let addr = Value.heap_alloc st.heap (Value.C_obj obj) in
          let self = Value.V_ref addr in
          (* default field initialisation *)
          List.iter
            (fun (fd : Ast.field_decl) ->
              let v =
                match fd.Ast.f_init with
                | Some e -> eval st frame e
                | None -> (
                    match fd.Ast.f_typ with
                    | Ast.T_int -> Value.V_int 0
                    | Ast.T_bool -> Value.V_bool false
                    | Ast.T_str -> Value.V_str ""
                    | Ast.T_map ->
                        Value.V_ref (Value.heap_alloc st.heap (Value.C_map (ref [])))
                    | Ast.T_list ->
                        Value.V_ref (Value.heap_alloc st.heap (Value.C_list (ref [])))
                    | Ast.T_ref _ | Ast.T_void | Ast.T_any -> Value.V_null)
              in
              Value.obj_set obj fd.Ast.f_name v)
            cls.Ast.c_fields;
          let argv = List.map (eval st frame) args in
          (match Ast.find_method_in_class cls "init" with
          | Some md -> ignore (invoke st ~qname:(cls_name ^ ".init") md self argv loc)
          | None ->
              if argv <> [] then
                runtime_error loc "class %s has no init method but got %d args"
                  cls_name (List.length argv));
          self)

and eval_binop st frame loc op a b : Value.t =
  match op with
  | Ast.And -> (
      match eval st frame a with
      | Value.V_bool false -> Value.V_bool false
      | Value.V_bool true -> (
          match eval st frame b with
          | Value.V_bool _ as v -> v
          | v -> runtime_error loc "'&&' applied to %s" (Value.type_name v))
      | v -> runtime_error loc "'&&' applied to %s" (Value.type_name v))
  | Ast.Or -> (
      match eval st frame a with
      | Value.V_bool true -> Value.V_bool true
      | Value.V_bool false -> (
          match eval st frame b with
          | Value.V_bool _ as v -> v
          | v -> runtime_error loc "'||' applied to %s" (Value.type_name v))
      | v -> runtime_error loc "'||' applied to %s" (Value.type_name v))
  | Ast.Eq -> Value.V_bool (Value.equal (eval st frame a) (eval st frame b))
  | Ast.Neq -> Value.V_bool (not (Value.equal (eval st frame a) (eval st frame b)))
  | Ast.Add -> (
      match (eval st frame a, eval st frame b) with
      | Value.V_int x, Value.V_int y -> Value.V_int (x + y)
      | Value.V_str x, Value.V_str y -> Value.V_str (x ^ y)
      | Value.V_str x, y -> Value.V_str (x ^ Value.to_string ~heap:st.heap y)
      | x, y ->
          runtime_error loc "'+' applied to %s and %s" (Value.type_name x)
            (Value.type_name y))
  | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
      match (eval st frame a, eval st frame b) with
      | Value.V_int x, Value.V_int y -> (
          match op with
          | Ast.Sub -> Value.V_int (x - y)
          | Ast.Mul -> Value.V_int (x * y)
          | Ast.Div ->
              if y = 0 then runtime_error loc "division by zero" else Value.V_int (x / y)
          | Ast.Mod ->
              if y = 0 then runtime_error loc "modulo by zero" else Value.V_int (x mod y)
          | Ast.Lt -> Value.V_bool (x < y)
          | Ast.Le -> Value.V_bool (x <= y)
          | Ast.Gt -> Value.V_bool (x > y)
          | Ast.Ge -> Value.V_bool (x >= y)
          | Ast.Add | Ast.Eq | Ast.Neq | Ast.And | Ast.Or -> assert false)
      | Value.V_str x, Value.V_str y when op = Ast.Lt -> Value.V_bool (x < y)
      | Value.V_str x, Value.V_str y when op = Ast.Gt -> Value.V_bool (x > y)
      | x, y ->
          runtime_error loc "'%s' applied to %s and %s" (Ast.binop_to_string op)
            (Value.type_name x) (Value.type_name y))

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

and exec_block st frame (b : Ast.block) : flow =
  match b with
  | [] -> F_normal
  | stmt :: rest -> (
      match exec_stmt st frame stmt with
      | F_normal -> exec_block st frame rest
      | (F_return _ | F_break | F_continue) as f -> f)

and exec_stmt st frame (stmt : Ast.stmt) : flow =
  tick st;
  emit st (Ev_stmt stmt.Ast.sid);
  let loc = stmt.Ast.sloc in
  match stmt.Ast.s with
  | Ast.Decl (x, _, init) ->
      let v = match init with Some e -> eval st frame e | None -> Value.V_null in
      Hashtbl.replace frame.vars x v;
      F_normal
  | Ast.Assign (Ast.Lv_var x, e) ->
      Hashtbl.replace frame.vars x (eval st frame e);
      F_normal
  | Ast.Assign (Ast.Lv_field (o, f), e) -> (
      let ov = eval st frame o in
      let v = eval st frame e in
      match ov with
      | Value.V_ref addr -> (
          match Value.heap_get st.heap addr with
          | Some (Value.C_obj obj) ->
              Value.obj_set obj f v;
              F_normal
          | Some _ -> runtime_error loc "field write %s on non-object" f
          | None -> runtime_error loc "dangling reference")
      | Value.V_null -> runtime_error loc "null dereference writing field %s" f
      | v' -> runtime_error loc "field write %s on %s" f (Value.type_name v'))
  | Ast.If (cond, b1, b2) -> (
      match eval st frame cond with
      | Value.V_bool taken ->
          emit st
            (Ev_branch
               { sid = stmt.Ast.sid; taken; cond_text = Pretty.expr_to_string cond });
          if taken then exec_block st frame b1 else exec_block st frame b2
      | v -> runtime_error loc "if condition is %s, not bool" (Value.type_name v))
  | Ast.While (cond, body) ->
      let rec loop () =
        match eval st frame cond with
        | Value.V_bool false ->
            emit st
              (Ev_branch
                 {
                   sid = stmt.Ast.sid;
                   taken = false;
                   cond_text = Pretty.expr_to_string cond;
                 });
            F_normal
        | Value.V_bool true -> (
            tick st;
            emit st
              (Ev_branch
                 {
                   sid = stmt.Ast.sid;
                   taken = true;
                   cond_text = Pretty.expr_to_string cond;
                 });
            match exec_block st frame body with
            | F_normal | F_continue -> loop ()
            | F_break -> F_normal
            | F_return _ as f -> f)
        | v -> runtime_error loc "while condition is %s, not bool" (Value.type_name v)
      in
      loop ()
  | Ast.Return None -> F_return Value.V_null
  | Ast.Return (Some e) -> F_return (eval st frame e)
  | Ast.Throw e ->
      let v = eval st frame e in
      emit st
        (Ev_throw { sid = stmt.Ast.sid; payload = Value.to_string ~heap:st.heap v });
      raise (Mini_throw v)
  | Ast.Try (body, exn_var, handler) -> (
      try exec_block st frame body
      with Mini_throw v ->
        Hashtbl.replace frame.vars exn_var v;
        exec_block st frame handler)
  | Ast.Sync (obj_e, body) -> (
      let ov = eval st frame obj_e in
      let addr =
        match ov with
        | Value.V_ref a -> a
        | v -> runtime_error loc "synchronized on %s, not an object" (Value.type_name v)
      in
      emit st (Ev_lock { sid = stmt.Ast.sid; addr });
      st.locks <- addr :: st.locks;
      let release () =
        (match st.locks with
        | a :: rest when a = addr -> st.locks <- rest
        | _ -> st.locks <- List.filter (fun a -> a <> addr) st.locks);
        emit st (Ev_unlock { sid = stmt.Ast.sid; addr })
      in
      match exec_block st frame body with
      | f ->
          release ();
          f
      | exception e ->
          release ();
          raise e)
  | Ast.Expr e ->
      (* expression statements get the statement's sid for blocking events *)
      ignore (eval_stmt_expr st frame stmt.Ast.sid e);
      F_normal
  | Ast.Assert (cond, msg) -> (
      match eval st frame cond with
      | Value.V_bool true -> F_normal
      | Value.V_bool false -> raise (Assertion_failure (msg, stmt.Ast.sid))
      | v -> runtime_error loc "assert condition is %s, not bool" (Value.type_name v))
  | Ast.Break -> F_break
  | Ast.Continue -> F_continue

(* Evaluate an expression in statement position: builtin calls at the top
   level are attributed to the statement's sid so that blocking events can
   be located precisely. *)
and eval_stmt_expr st frame sid (e : Ast.expr) : Value.t =
  match e.Ast.e with
  | Ast.Call (name, args) when Builtins.is_builtin name ->
      let argv = List.map (eval st frame) args in
      call_builtin st ~sid ~loc:e.Ast.eloc name argv
  | _ -> eval st frame e

and invoke st ~qname (m : Ast.method_decl) (self : Value.t) (args : Value.t list)
    (loc : Loc.t) : Value.t =
  if st.depth >= st.config.max_call_depth then
    runtime_error loc "call depth limit exceeded calling %s" qname;
  if List.length args <> List.length m.Ast.m_params then
    runtime_error loc "%s expects %d args, got %d" qname
      (List.length m.Ast.m_params) (List.length args);
  let vars = Hashtbl.create 16 in
  List.iter2 (fun (p, _) v -> Hashtbl.replace vars p v) m.Ast.m_params args;
  let frame = { vars; self } in
  st.depth <- st.depth + 1;
  emit st (Ev_call { qname; depth = st.depth });
  let finish () =
    emit st (Ev_return { qname; depth = st.depth });
    st.depth <- st.depth - 1
  in
  match exec_block st frame m.Ast.m_body with
  | F_normal ->
      finish ();
      Value.V_null
  | F_return v ->
      finish ();
      v
  | F_break | F_continue ->
      finish ();
      runtime_error loc "break/continue outside loop in %s" qname
  | exception e ->
      finish ();
      raise e

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Call a top-level function by name against an existing interpreter
    state (heap and clock persist across calls).  This is the API the
    bounded scenario model checker uses to apply operations one by one. *)
let call (st : state) (name : string) (args : Value.t list) : Value.t =
  match Ast.find_func st.program name with
  | None -> runtime_error Loc.dummy "no top-level function named %s" name
  | Some f -> invoke st ~qname:name f Value.V_null args Loc.dummy

(** Run a top-level function by name.  Returns its value. *)
let run_function ?(config = default_config) (program : Ast.program) (name : string)
    (args : Value.t list) : state * Value.t =
  let st = create ~config program in
  match Ast.find_func program name with
  | None -> runtime_error Loc.dummy "no top-level function named %s" name
  | Some f ->
      let v = invoke st ~qname:name f Value.V_null args Loc.dummy in
      (st, v)

(* ------------------------------------------------------------------ *)
(* Bounded replay entry points                                         *)
(* ------------------------------------------------------------------ *)

type call_outcome =
  | Call_returned of Value.t
  | Call_threw of string  (** a MiniJava [throw] escaped the call *)
  | Call_error of string  (** runtime error or assertion failure *)
  | Call_exhausted  (** fuel or call-depth budget spent: inconclusive *)

let call_outcome_to_string = function
  | Call_returned v -> Fmt.str "returned %s" (Value.to_string v)
  | Call_threw m -> Fmt.str "threw %s" m
  | Call_error m -> Fmt.str "error: %s" m
  | Call_exhausted -> "budget exhausted"

(* The depth limiter raises through [runtime_error]; recognize it so the
   structured outcome reads "budget", not "program bug". *)
let depth_limit_prefix = "call depth limit"

let starts_with ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

let bounded (st : state) ?fuel (run : unit -> Value.t) : call_outcome =
  (match fuel with Some n -> st.fuel_left <- n | None -> ());
  match run () with
  | v -> Call_returned v
  | exception Out_of_fuel -> Call_exhausted
  | exception Mini_throw v -> Call_threw (Value.to_string ~heap:st.heap v)
  | exception Assertion_failure (msg, sid) ->
      Call_error (Fmt.str "assertion: %s (stmt %d)" msg sid)
  | exception Runtime_error (msg, _) ->
      if starts_with ~prefix:depth_limit_prefix msg then Call_exhausted
      else Call_error msg

(** Allocate a default-initialized object of a class without running its
    [init] method: field initializers are evaluated in an empty frame
    (falling back to the type default if they need context), so witness
    replay can build receivers and subjects field by field. *)
let alloc_object (st : state) (cls_name : string) : Value.t =
  match Ast.find_class st.program cls_name with
  | None -> runtime_error Loc.dummy "unknown class %s" cls_name
  | Some cls ->
      let obj = Value.new_obj ~cls:cls_name in
      let addr = Value.heap_alloc st.heap (Value.C_obj obj) in
      let scratch = { vars = Hashtbl.create 4; self = Value.V_null } in
      List.iter
        (fun (fd : Ast.field_decl) ->
          let default () =
            match fd.Ast.f_typ with
            | Ast.T_int -> Value.V_int 0
            | Ast.T_bool -> Value.V_bool false
            | Ast.T_str -> Value.V_str ""
            | Ast.T_map -> Value.V_ref (Value.heap_alloc st.heap (Value.C_map (ref [])))
            | Ast.T_list ->
                Value.V_ref (Value.heap_alloc st.heap (Value.C_list (ref [])))
            | Ast.T_ref _ | Ast.T_void | Ast.T_any -> Value.V_null
          in
          let v =
            match fd.Ast.f_init with
            | None -> default ()
            | Some e -> ( try eval st scratch e with _ -> default ())
          in
          Value.obj_set obj fd.Ast.f_name v)
        cls.Ast.c_fields;
      Value.V_ref addr

(** Call a top-level function under a structured budget: exhaustion (fuel
    or depth) is an outcome, never a hang; exceptions are outcomes, not
    host-level raises. *)
let call_bounded ?fuel (st : state) (name : string) (args : Value.t list) :
    call_outcome =
  bounded st ?fuel (fun () ->
      match Ast.find_func st.program name with
      | None -> runtime_error Loc.dummy "no top-level function named %s" name
      | Some f -> invoke st ~qname:name f Value.V_null args Loc.dummy)

(** Call a method on a receiver under the same structured budget; the
    class is resolved from the receiver's runtime object. *)
let method_call_bounded ?fuel (st : state) ~(recv : Value.t) ~(meth : string)
    (args : Value.t list) : call_outcome =
  bounded st ?fuel (fun () ->
      match recv with
      | Value.V_ref addr -> (
          match Value.heap_get st.heap addr with
          | Some (Value.C_obj obj) -> (
              match Ast.find_class st.program obj.Value.o_class with
              | None ->
                  runtime_error Loc.dummy "object of unknown class %s"
                    obj.Value.o_class
              | Some cls -> (
                  match Ast.find_method_in_class cls meth with
                  | Some md ->
                      invoke st
                        ~qname:(cls.Ast.c_name ^ "." ^ meth)
                        md recv args Loc.dummy
                  | None ->
                      runtime_error Loc.dummy "class %s has no method %s"
                        cls.Ast.c_name meth))
          | Some _ -> runtime_error Loc.dummy "method call %s on non-object" meth
          | None -> runtime_error Loc.dummy "dangling reference")
      | v ->
          runtime_error Loc.dummy "method call %s on %s" meth (Value.type_name v))

type test_outcome =
  | Passed
  | Failed of string  (** assertion failure *)
  | Errored of string  (** uncaught throw or runtime error *)

(** Run a [test_*] function and classify the outcome the way a CI job
    would: assertion failures are test failures; uncaught exceptions and
    runtime errors are errors; anything else passes. *)
let run_test ?(config = default_config) (program : Ast.program) (name : string) :
    test_outcome =
  match run_function ~config program name [] with
  | _ -> Passed
  | exception Assertion_failure (msg, sid) ->
      Failed (Fmt.str "%s (at statement %d)" msg sid)
  | exception Mini_throw v -> Errored (Fmt.str "uncaught throw: %s" (Value.to_string v))
  | exception Runtime_error (msg, loc) ->
      Errored (Fmt.str "runtime error: %s at %a" msg Loc.pp loc)
  | exception Out_of_fuel -> Errored "out of fuel (possible livelock)"

(** Names of all [test_*] top-level functions of a program. *)
let test_names (program : Ast.program) : string list =
  List.filter_map
    (fun (f : Ast.method_decl) ->
      if String.length f.Ast.m_name >= 5 && String.sub f.Ast.m_name 0 5 = "test_" then
        Some f.Ast.m_name
      else None)
    program.Ast.p_funcs
