test/test_edgecases.ml: Alcotest Ast Astring_contains Buffer Fmt Interp List Minilang Parser Smt String Value
