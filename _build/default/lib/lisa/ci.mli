(** CI/CD enforcement: replay a case's version history through a gated
    pipeline (tests + accumulated rulebook); fixes feed the learning
    pipeline, so later regressions are blocked at commit time. *)

type event =
  | Shipped of { stage : int; tests : int }
  | Blocked of { stage : int; findings : Checker.rule_report list }
  | Learned of { stage : int; ticket_id : string; accepted : int; rejected : int }
  | Test_failure of { stage : int; failures : string list }

type run = { case_id : string; events : event list; book : Semantics.Rulebook.t }

(** Replay one case's history through the gate. *)
val replay : ?config:Pipeline.config -> Corpus.Case.t -> run

val blocked_stages : run -> int list

val event_to_string : event -> string

val run_to_string : run -> string
