(** Chaos suite — the E11 workload under seeded fault plans.

    The whole-system scan ({!System_scan}) is re-run with the
    {!Resilience} injector armed: every solver call, concolic run,
    oracle inference, and cache lookup may crash, exhaust its budget, or
    fail transiently, according to a plan that is a pure function of
    (seed, injection point, call index).  The suite then checks the
    engine's fault-tolerance contract:

    - the engine {e never} lets an injected fault escape [enforce]
      (failed jobs retry, then quarantine behind placeholder reports);
    - two runs of the same seed produce identical findings, degraded
      sets, quarantine sets, retry counts, and fault counts;
    - chaos findings are a subset of the no-fault baseline (faults can
      only lose evidence, never invent violations);
    - after the chaos runs, a no-fault re-run renders byte-for-byte the
      same Markdown as the baseline (no state poisoning: degraded
      reports stay out of the report cache and incremental memory);
    - a total oracle outage degrades learning to zero accepted rules
      instead of raising;
    - a [jobs = 4] leg survives the same plan (worker domains included).

    Everything is deterministic: backoff is set to zero, the breaker
    cooldown counts calls, and the shared caches are reset between
    runs. *)

type observation = {
  ob_findings : (string * int * string list) list;
      (** (system, version, violating rule ids) in scan order *)
  ob_degraded : (string * int * string list) list;
      (** (system, version, degraded rule ids) in scan order *)
  ob_quarantined : string list;  (** sorted rule ids *)
  ob_retries : int;
  ob_faults : int;  (** faults injected during this run *)
  ob_crash : string option;  (** an exception escaped [enforce] *)
}

type seed_result = {
  sr_seed : int;
  sr_first : observation;
  sr_second : observation;  (** same seed, fresh state: must equal first *)
}

type result = {
  res_systems : string list;
  res_rate : float;
  res_baseline : observation;
  res_baseline_render : string;  (** full Markdown of the no-fault scan *)
  res_seeds : seed_result list;
  res_parallel : observation;  (** jobs = 4 leg under the first seed *)
  res_post_render : string;  (** no-fault re-run after all the chaos *)
  res_oracle_outage_ok : bool;
}

let versions = [ 1; 2; 3; 5 ]

(* every run starts from the same shared-state origin: empty SMT verdict
   cache, closed breakers, rewound injection counters *)
let reset_shared_state () =
  Resilience.Injector.disarm ();
  Resilience.Injector.reset ();
  Resilience.Breaker.reset_all ();
  Smt.Memo.reset ()

(* one full pass of the E11 workload through a fresh engine *)
let run_once ?plan ?(jobs = 1) (books : (string * Semantics.Rulebook.t) list) :
    observation * string =
  reset_shared_state ();
  (match plan with Some pl -> Resilience.Injector.arm pl | None -> ());
  Fun.protect ~finally:Resilience.Injector.disarm @@ fun () ->
  let faults0 = Resilience.Injector.injected_count () in
  let engine =
    Engine.Scheduler.create
      ~config:
        {
          Engine.Scheduler.default_config with
          Engine.Scheduler.jobs;
          retry_backoff_ms = 0;
        }
      ()
  in
  let findings = ref [] and degraded = ref [] and renders = ref [] in
  let crash = ref None in
  (try
     List.iter
       (fun (system, book) ->
         List.iter
           (fun version ->
             let p = Corpus.Registry.system_program system ~version in
             let reports = Pipeline.enforce_with engine p book in
             findings :=
               (system, version, Engine.Scheduler.finding_ids reports)
               :: !findings;
             degraded :=
               (system, version, Engine.Scheduler.degraded_ids reports)
               :: !degraded;
             renders :=
               Report.render ~title:(Fmt.str "%s v%d" system version) reports
               :: !renders)
           versions)
       books
   with e -> crash := Some (Printexc.to_string e));
  let stats = Engine.Scheduler.stats engine in
  ( {
      ob_findings = List.rev !findings;
      ob_degraded = List.rev !degraded;
      ob_quarantined = List.sort compare stats.Engine.Stats.quarantined;
      ob_retries = stats.Engine.Stats.retries;
      ob_faults = Resilience.Injector.injected_count () - faults0;
      ob_crash = !crash;
    },
    String.concat "\n\n" (List.rev !renders) )

(* a dead oracle must cost us the rules, not the pipeline *)
let oracle_outage_ok (system : string) : bool =
  reset_shared_state ();
  Resilience.Injector.arm
    (Resilience.Plan.make
       ~points:[ Resilience.Fault.Oracle ]
       ~kinds:[ Resilience.Fault.Crash ] ~seed:1 ~rate:1.0 ());
  Fun.protect ~finally:reset_shared_state @@ fun () ->
  match Corpus.Registry.cases_of_system system with
  | [] -> false
  | case :: _ -> (
      let ticket = Corpus.Case.original_ticket case in
      match Pipeline.learn ticket with
      | outcome -> outcome.Pipeline.accepted = []
      | exception _ -> false)

let run ?(seeds = [ 1; 2; 3 ]) ?(rate = 0.05) ?(smoke = false) () : result =
  let systems = if smoke then [ "zookeeper" ] else Corpus.Registry.systems in
  (* learning happens fault-free: the chaos target is enforcement *)
  reset_shared_state ();
  let books =
    List.map (fun s -> (s, System_scan.learn_system_book s)) systems
  in
  let plan_for seed = Resilience.Plan.make ~seed ~rate () in
  let baseline, baseline_render = run_once books in
  let seed_results =
    List.map
      (fun seed ->
        let first, _ = run_once ~plan:(plan_for seed) books in
        let second, _ = run_once ~plan:(plan_for seed) books in
        { sr_seed = seed; sr_first = first; sr_second = second })
      seeds
  in
  let parallel_seed = match seeds with s :: _ -> s | [] -> 1 in
  let parallel, _ = run_once ~plan:(plan_for parallel_seed) ~jobs:4 books in
  let _, post_render = run_once books in
  let outage_ok = oracle_outage_ok (List.hd systems) in
  {
    res_systems = systems;
    res_rate = rate;
    res_baseline = baseline;
    res_baseline_render = baseline_render;
    res_seeds = seed_results;
    res_parallel = parallel;
    res_post_render = post_render;
    res_oracle_outage_ok = outage_ok;
  }

(* chaos can suppress findings (lost evidence), never create them *)
let findings_subset ~(baseline : observation) (ob : observation) : bool =
  List.for_all
    (fun (system, version, ids) ->
      match
        List.find_opt
          (fun (s, v, _) -> s = system && v = version)
          baseline.ob_findings
      with
      | Some (_, _, base_ids) ->
          List.for_all (fun id -> List.mem id base_ids) ids
      | None -> ids = [])
    ob.ob_findings

let invariants (r : result) : (string * bool) list =
  let chaos_obs =
    List.concat_map (fun s -> [ s.sr_first; s.sr_second ]) r.res_seeds
    @ [ r.res_parallel ]
  in
  [
    ( "baseline runs fault-free",
      r.res_baseline.ob_crash = None
      && r.res_baseline.ob_faults = 0
      && r.res_baseline.ob_retries = 0
      && r.res_baseline.ob_quarantined = [] );
    ( "no injected fault escapes the engine",
      List.for_all (fun ob -> ob.ob_crash = None) chaos_obs );
    ( "faults actually fired under every plan",
      List.for_all (fun ob -> ob.ob_faults > 0) chaos_obs );
    ( "same seed replays identically (findings, degraded, quarantine, \
       retries, faults)",
      List.for_all (fun s -> s.sr_first = s.sr_second) r.res_seeds );
    ( "chaos findings are a subset of the baseline",
      List.for_all (findings_subset ~baseline:r.res_baseline) chaos_obs );
    ( "post-chaos no-fault run renders byte-identical to the baseline",
      r.res_post_render = r.res_baseline_render );
    ("oracle outage degrades learning instead of raising", r.res_oracle_outage_ok);
  ]

let invariants_ok (r : result) : bool =
  List.for_all snd (invariants r)

let print (r : result) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  pf "chaos — E11 workload under seeded fault plans (rate %.2f, systems: %s)"
    r.res_rate
    (String.concat ", " r.res_systems);
  pf "--------------------------------------------------------------------";
  List.iter
    (fun s ->
      let ob = s.sr_first in
      pf "  seed %d: %d fault(s), %d retrie(s), %d quarantined, %d degraded \
          report set(s)%s"
        s.sr_seed ob.ob_faults ob.ob_retries
        (List.length ob.ob_quarantined)
        (List.length (List.filter (fun (_, _, ids) -> ids <> []) ob.ob_degraded))
        (match ob.ob_crash with
        | None -> ""
        | Some e -> Fmt.str " CRASH: %s" e))
    r.res_seeds;
  pf "  jobs=4 leg (seed %d): %d fault(s), %d quarantined%s"
    (match r.res_seeds with s :: _ -> s.sr_seed | [] -> 1)
    r.res_parallel.ob_faults
    (List.length r.res_parallel.ob_quarantined)
    (match r.res_parallel.ob_crash with
    | None -> ""
    | Some e -> Fmt.str " CRASH: %s" e);
  pf "";
  List.iter
    (fun (name, ok) -> pf "  [%s] %s" (if ok then "ok" else "FAIL") name)
    (invariants r);
  Buffer.contents buf
