lib/minilang/ast.mli: Loc
