lib/corpus/hdfs.mli: Case
