lib/smt/solver.mli: Formula
