(** The armed fault plan and the per-point call counters.

    Components call {!draw} at their injection point; with no plan
    armed the call is a single atomic load, so production and tier-1
    paths pay (and change) nothing.  With a plan armed, the draw for
    the [n]-th call at a point is {!Plan.decide} — deterministic per
    (seed, point, n) — and every injected fault is emitted on the
    event bus.

    {!reset} rewinds the call counters so the same plan replays the
    same fault sequence; chaos runs call it (plus
    {!Breaker.reset_all}) before each run to make two runs of one seed
    bit-for-bit comparable. *)

let armed : Plan.t option Atomic.t = Atomic.make None

let counters : int Atomic.t array =
  Array.init Fault.n_points (fun _ -> Atomic.make 0)

let injected = Atomic.make 0

let arm (p : Plan.t) : unit = Atomic.set armed (Some p)

let disarm () : unit = Atomic.set armed None

let active () : Plan.t option = Atomic.get armed

(** Rewind call counters and the injected-fault count (not the plan). *)
let reset () =
  Array.iter (fun c -> Atomic.set c 0) counters;
  Atomic.set injected 0

let injected_count () = Atomic.get injected

(** [draw point]: the fault (if any) to inject at this call.  Advances
    the point's call counter only while a plan is armed. *)
let draw (point : Fault.point) : Fault.kind option =
  match Atomic.get armed with
  | None -> None
  | Some plan -> (
      let n = Atomic.fetch_and_add counters.(Fault.point_index point) 1 in
      match Plan.decide plan point n with
      | None -> None
      | Some kind ->
          Atomic.incr injected;
          Events.emit (Events.Fault_injected { point; kind; seq = n });
          Some kind)

(** [raise_fault point kind]: record the breaker trip and raise the
    injected exception — the shared [Crash]/[Transient] path of every
    injection point. *)
let raise_fault (point : Fault.point) (kind : Fault.kind) : 'a =
  Breaker.failure point;
  raise (Fault.Injected (point, kind))
