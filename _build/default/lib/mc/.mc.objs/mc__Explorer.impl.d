lib/mc/explorer.ml: Fmt List Minilang String
