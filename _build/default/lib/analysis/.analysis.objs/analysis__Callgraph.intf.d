lib/analysis/callgraph.mli: Minilang
