(** Runtime values and the heap for MiniJava execution.

    Scalars are immutable; objects, maps and lists live in a heap indexed
    by integer addresses.  The representation is shared by the concrete
    interpreter and the concolic engine. *)

type t =
  | V_int of int
  | V_bool of bool
  | V_str of string
  | V_null
  | V_ref of int  (** heap address of an object, map or list *)

type cell =
  | C_obj of obj
  | C_map of (t * t) list ref  (** association list, insertion order kept *)
  | C_list of t list ref

and obj = { o_class : string; o_fields : (string, t) Hashtbl.t }

type heap = { mutable next : int; cells : (int, cell) Hashtbl.t }

val heap_create : unit -> heap

val heap_alloc : heap -> cell -> int

val heap_get : heap -> int -> cell option

val heap_size : heap -> int

(** Structural equality on scalars; reference equality on heap values. *)
val equal : t -> t -> bool

val is_truthy : t -> bool

val type_name : t -> string

(** Render a value; with [heap], containers and objects are expanded. *)
val to_string : ?heap:heap -> t -> string

val pp : Format.formatter -> t -> unit

val new_obj : cls:string -> obj

val obj_get : obj -> string -> t option

val obj_set : obj -> string -> t -> unit

val map_get : (t * t) list ref -> t -> t option

val map_put : (t * t) list ref -> t -> t -> unit

val map_remove : (t * t) list ref -> t -> unit

val map_contains : (t * t) list ref -> t -> bool
