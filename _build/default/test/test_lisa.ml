(* Tests for the checker configurations, the pipeline's cross-check, the
   CI gate, the model checker, and the composition experiment. *)

let zk = List.hd Corpus.Zookeeper.cases

(* ------------------------------------------------------------------ *)
(* Checker configurations                                              *)
(* ------------------------------------------------------------------ *)

let learned_rule () =
  let inf = Oracle.Inference.infer (Corpus.Case.original_ticket zk) in
  Semantics.Rule.generalize (List.hd inf.Oracle.Inference.inf_rules)

let test_checker_direct_misses () =
  let rule = learned_rule () in
  let p = Corpus.Case.program_at zk 2 in
  let complement = Lisa.Checker.check_rule p rule in
  let direct =
    Lisa.Checker.check_rule
      ~config:{ Lisa.Checker.default_config with Lisa.Checker.method_ = Lisa.Checker.Direct }
      p rule
  in
  Alcotest.(check bool) "complement catches" true
    (complement.Lisa.Checker.rep_violations <> []);
  Alcotest.(check bool) "direct misses" true (direct.Lisa.Checker.rep_violations = [])

let test_checker_pruning_equivalent_verdicts () =
  let rule = learned_rule () in
  let p = Corpus.Case.program_at zk 2 in
  let with_p = Lisa.Checker.check_rule p rule in
  let without =
    Lisa.Checker.check_rule
      ~config:{ Lisa.Checker.default_config with Lisa.Checker.prune = false }
      p rule
  in
  Alcotest.(check int) "same number of violations"
    (List.length with_p.Lisa.Checker.rep_violations)
    (List.length without.Lisa.Checker.rep_violations);
  Alcotest.(check bool) "pruned records no more branches" true
    (with_p.Lisa.Checker.rep_branches_recorded
    <= without.Lisa.Checker.rep_branches_recorded)

let test_checker_counts_consistent () =
  let rule = learned_rule () in
  let r = Lisa.Checker.check_rule (Corpus.Case.program_at zk 2) rule in
  Alcotest.(check int) "verified + violations = traces"
    (List.length r.Lisa.Checker.rep_traces)
    (List.length r.Lisa.Checker.rep_verified + List.length r.Lisa.Checker.rep_violations);
  Alcotest.(check bool) "targets resolved" true (r.Lisa.Checker.rep_targets > 0);
  Alcotest.(check bool) "static paths enumerated" true (r.Lisa.Checker.rep_static_paths > 0)

let test_checker_no_tests_selected_falls_back () =
  (* a program with no test functions: the checker degrades gracefully *)
  let p =
    Minilang.Parser.program
      "class C { method f() { work(); } } method work() { }"
  in
  let rule =
    Semantics.Rule.make ~rule_id:"r" ~description:"d" ~high_level:"h" ~origin:"o"
      (Semantics.Rule.State_guard
         {
           target = Semantics.Rule.Call_to { callee = "work"; in_method = None };
           condition = Smt.Formula.bvar "C.flag";
         })
  in
  let r = Lisa.Checker.check_rule p rule in
  Alcotest.(check int) "no traces without tests" 0 (List.length r.Lisa.Checker.rep_traces);
  Alcotest.(check bool) "paths reported uncovered" true
    (r.Lisa.Checker.rep_uncovered_paths <> [])

(* ------------------------------------------------------------------ *)
(* Pipeline cross-check                                                *)
(* ------------------------------------------------------------------ *)

let test_cross_check_rejects_flipped_rule () =
  (* force the hallucination path: a flipped rule contradicts the patched
     version, so grounding must reject it *)
  let ticket = Corpus.Case.original_ticket zk in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let flipped_rejected =
    List.exists
      (fun seed ->
        let config =
          {
            Lisa.Pipeline.default_config with
            Lisa.Pipeline.noise = { Oracle.Inference.epsilon = 1.0; seed };
          }
        in
        let o = Lisa.Pipeline.learn ~config ticket in
        List.exists
          (fun (r, _) ->
            Astring_contains.contains r.Semantics.Rule.rule_id ".flip"
            || Astring_contains.contains r.Semantics.Rule.rule_id ".ghost")
          o.Lisa.Pipeline.rejected)
      seeds
  in
  Alcotest.(check bool) "flipped/ghost rule rejected for some seed" true flipped_rejected

let test_cross_check_accepts_clean_rule () =
  let o = Lisa.Pipeline.learn (Corpus.Case.original_ticket zk) in
  Alcotest.(check int) "accepted" 1 (List.length o.Lisa.Pipeline.accepted);
  Alcotest.(check int) "nothing rejected" 0 (List.length o.Lisa.Pipeline.rejected)

let test_pipeline_log_stages () =
  let o = Lisa.Pipeline.learn (Corpus.Case.original_ticket zk) in
  let stages = List.map (fun (l : Lisa.Pipeline.stage_log) -> l.Lisa.Pipeline.stage) o.Lisa.Pipeline.log in
  Alcotest.(check (list string)) "figure 5 stages"
    [ "collect"; "infer"; "translate"; "cross-check" ]
    stages

(* ------------------------------------------------------------------ *)
(* CI gate                                                             *)
(* ------------------------------------------------------------------ *)

let test_ci_blocks_regression_stage () =
  let r = Lisa.Ci.replay zk in
  Alcotest.(check (list int)) "stage 2 blocked" [ 2 ] (Lisa.Ci.blocked_stages r);
  (* rules were learned at stages 1 and 3 *)
  let learned =
    List.filter_map
      (function Lisa.Ci.Learned { stage; _ } -> Some stage | _ -> None)
      r.Lisa.Ci.events
  in
  Alcotest.(check (list int)) "learned at fix stages" [ 1; 3 ] learned

let test_ci_all_cases_block_regressions () =
  List.iter
    (fun (c : Corpus.Case.t) ->
      let r = Lisa.Ci.replay c in
      List.iter
        (fun stage ->
          if not (List.mem stage (Lisa.Ci.blocked_stages r)) then
            Alcotest.fail
              (Fmt.str "%s: regression stage %d not blocked" c.Corpus.Case.case_id stage))
        c.Corpus.Case.regression_stages)
    Corpus.Registry.all_cases

let test_ci_no_test_failures () =
  let r = Lisa.Ci.replay zk in
  let failures =
    List.filter (function Lisa.Ci.Test_failure _ -> true | _ -> false) r.Lisa.Ci.events
  in
  Alcotest.(check int) "suites stay green" 0 (List.length failures)

(* ------------------------------------------------------------------ *)
(* Model checker                                                       *)
(* ------------------------------------------------------------------ *)

let counter_scenario inv_body =
  let src =
    Fmt.str
      {|
class Counter {
  field n: int = 0;
}
method mcInit(): Counter {
  return new Counter();
}
method mcOpInc(c: Counter) {
  c.n = c.n + 1;
}
method mcOpReset(c: Counter) {
  c.n = 0;
}
method mcInv(c: Counter): bool {
  %s
}
|}
      inv_body
  in
  {
    Mc.Explorer.program = Minilang.Parser.program src;
    init = "mcInit";
    ops = [ "mcOpInc"; "mcOpReset" ];
    invariant = "mcInv";
  }

let test_mc_safe () =
  match Mc.Explorer.explore (counter_scenario "return c.n >= 0;") with
  | Mc.Explorer.Safe s ->
      Alcotest.(check bool) "explored sequences" true (s.Mc.Explorer.sequences > 0)
  | o -> Alcotest.fail (Mc.Explorer.outcome_to_string o)

let test_mc_finds_shortest_violation () =
  match Mc.Explorer.explore (counter_scenario "return c.n < 2;") with
  | Mc.Explorer.Unsafe (v, _) ->
      Alcotest.(check (list string)) "shortest trace" [ "mcOpInc"; "mcOpInc" ]
        (List.map (fun (s : Mc.Explorer.step) -> s.Mc.Explorer.op) v.Mc.Explorer.v_trace)
  | o -> Alcotest.fail (Mc.Explorer.outcome_to_string o)

let test_mc_rejections_counted () =
  let src =
    {|
class Door {
  field open_: bool = false;
}
method mcInit(): Door {
  return new Door();
}
method mcOpOpen(d: Door) {
  if (d.open_) {
    throw "already open";
  }
  d.open_ = true;
}
method mcInv(d: Door): bool {
  return true;
}
|}
  in
  let sc =
    {
      Mc.Explorer.program = Minilang.Parser.program src;
      init = "mcInit";
      ops = [ "mcOpOpen" ];
      invariant = "mcInv";
    }
  in
  match Mc.Explorer.explore ~config:{ Mc.Explorer.default_config with Mc.Explorer.depth = 2 } sc with
  | Mc.Explorer.Safe s ->
      (* sequence [open; open]: the second is rejected *)
      Alcotest.(check int) "one rejection" 1 s.Mc.Explorer.rejections
  | o -> Alcotest.fail (Mc.Explorer.outcome_to_string o)

let test_mc_engine_error_reported () =
  let src =
    {|
method mcInit(): any { return null; }
method mcOpBoom(x: any) { var l: list = null; listAdd(l, 1); }
method mcInv(x: any): bool { return true; }
|}
  in
  let sc =
    {
      Mc.Explorer.program = Minilang.Parser.program src;
      init = "mcInit";
      ops = [ "mcOpBoom" ];
      invariant = "mcInv";
    }
  in
  match Mc.Explorer.explore sc with
  | Mc.Explorer.Engine_error m ->
      Alcotest.(check bool) "mentions null" true (Astring_contains.contains m "null")
  | o -> Alcotest.fail (Mc.Explorer.outcome_to_string o)

(* ------------------------------------------------------------------ *)
(* Composition                                                         *)
(* ------------------------------------------------------------------ *)

let test_composition_all_supported () =
  List.iter
    (fun (r : Lisa.Composition.result) ->
      if not r.Lisa.Composition.res_composition_holds then
        Alcotest.fail (r.Lisa.Composition.res_case ^ ": composition claim not supported"))
    (Lisa.Composition.run ())

let test_composition_regression_trace_is_the_incident () =
  let results = Lisa.Composition.run () in
  let zk_result =
    List.find
      (fun (r : Lisa.Composition.result) -> r.Lisa.Composition.res_case = "zk-ephemeral")
      results
  in
  let stage2 =
    List.find
      (fun (s : Lisa.Composition.stage_result) -> s.Lisa.Composition.sr_stage = 2)
      zk_result.Lisa.Composition.res_stages
  in
  match stage2.Lisa.Composition.sr_bounded with
  | Mc.Explorer.Unsafe (v, _) ->
      let ops = List.map (fun (s : Mc.Explorer.step) -> s.Mc.Explorer.op) v.Mc.Explorer.v_trace in
      (* the synthesized trace is the ZK-1208/1496 incident: a close
         followed by a learner-path create *)
      Alcotest.(check (list string)) "incident trace"
        [ "mcOpClose"; "mcOpCreateLearner" ] ops
  | o -> Alcotest.fail ("expected unsafe, got " ^ Mc.Explorer.outcome_to_string o)

(* ------------------------------------------------------------------ *)
(* Experiments sanity                                                  *)
(* ------------------------------------------------------------------ *)

let test_compare_headline () =
  let t = Lisa.Compare.run () in
  Alcotest.(check int) "testing misses all" 0 t.Lisa.Compare.testing_caught;
  Alcotest.(check int) "lisa catches all" t.Lisa.Compare.total t.Lisa.Compare.lisa_caught

let test_unknown_bugs_found () =
  let fs = Lisa.Experiments.Unknown_bugs.run () in
  Alcotest.(check (list string)) "both paper bugs"
    [ "HBASE-29296"; "HDFS-17768" ]
    (List.map (fun (f : Lisa.Experiments.Unknown_bugs.finding) -> f.Lisa.Experiments.Unknown_bugs.f_bug_id) fs);
  List.iter
    (fun (f : Lisa.Experiments.Unknown_bugs.finding) ->
      Alcotest.(check bool) "violating methods found" true
        (f.Lisa.Experiments.Unknown_bugs.f_methods <> []))
    fs;
  let hb = List.hd fs in
  Alcotest.(check (list string)) "hbase method"
    [ "SnapshotManager.copyTableFromSnapshot" ]
    hb.Lisa.Experiments.Unknown_bugs.f_methods

let test_generalization_rows () =
  match Lisa.Experiments.Generalization.run () with
  | [ specific; generalized; naive ] ->
      Alcotest.(check bool) "specific misses" false
        specific.Lisa.Experiments.Generalization.g_catches_regression;
      Alcotest.(check bool) "generalized catches" true
        generalized.Lisa.Experiments.Generalization.g_catches_regression;
      Alcotest.(check int) "generalized clean on fixed" 0
        generalized.Lisa.Experiments.Generalization.g_false_positives;
      Alcotest.(check bool) "naive has false positives" true
        (naive.Lisa.Experiments.Generalization.g_false_positives > 0)
  | _ -> Alcotest.fail "expected three rows"

let test_system_scan_shape () =
  let results = Lisa.System_scan.run () in
  List.iter
    (fun (r : Lisa.System_scan.system_result) ->
      let row v =
        List.find
          (fun (x : Lisa.System_scan.version_row) -> x.Lisa.System_scan.vr_version = v)
          r.Lisa.System_scan.sys_rows
      in
      let findings v = (row v).Lisa.System_scan.vr_violating_rules in
      Alcotest.(check (list string)) (r.Lisa.System_scan.sys_name ^ " v1 clean") [] (findings 1);
      Alcotest.(check (list string)) (r.Lisa.System_scan.sys_name ^ " v3 clean") [] (findings 3);
      (* every case of the system is flagged at v2 (lock cases may
         contribute several rules, so compare case coverage not counts) *)
      let cases = Corpus.Registry.cases_of_system r.Lisa.System_scan.sys_name in
      List.iter
        (fun (c : Corpus.Case.t) ->
          let origin = List.hd c.Corpus.Case.bug_ids in
          if not (List.exists (fun id -> Astring_contains.contains id origin) (findings 2))
          then
            Alcotest.fail
              (Fmt.str "%s not flagged at v2 (findings: %s)" origin
                 (String.concat ", " (findings 2))))
        cases;
      (* v5 carries only the two unknown bugs (rule ids embed statement
         numbers, so compare by originating ticket) *)
      let expected_v5 =
        match r.Lisa.System_scan.sys_name with
        | "hbase" -> [ "HBASE-27671" ]
        | "hdfs" -> [ "HDFS-13924" ]
        | _ -> []
      in
      let origins =
        List.map
          (fun id ->
            match String.index_opt id '.' with
            | Some i -> String.sub id 0 i
            | None -> id)
          (findings 5)
      in
      Alcotest.(check (list string))
        (r.Lisa.System_scan.sys_name ^ " v5 findings")
        expected_v5 origins)
    results

let test_study_totals () =
  let s = Lisa.Study.run () in
  Alcotest.(check int) "16 cases" 16 s.Lisa.Study.total_cases;
  Alcotest.(check int) "34 bugs" 34 s.Lisa.Study.total_bugs;
  Alcotest.(check int) "4 systems" 4 (List.length s.Lisa.Study.rows)

let suite =
  [
    ( "lisa.checker",
      [
        Alcotest.test_case "direct check misses" `Quick test_checker_direct_misses;
        Alcotest.test_case "pruning preserves verdicts" `Quick
          test_checker_pruning_equivalent_verdicts;
        Alcotest.test_case "report counts consistent" `Quick test_checker_counts_consistent;
        Alcotest.test_case "no tests: uncovered paths" `Quick
          test_checker_no_tests_selected_falls_back;
      ] );
    ( "lisa.pipeline",
      [
        Alcotest.test_case "cross-check rejects corrupted" `Quick
          test_cross_check_rejects_flipped_rule;
        Alcotest.test_case "cross-check accepts clean" `Quick test_cross_check_accepts_clean_rule;
        Alcotest.test_case "log stages" `Quick test_pipeline_log_stages;
      ] );
    ( "lisa.ci",
      [
        Alcotest.test_case "blocks regression stage" `Quick test_ci_blocks_regression_stage;
        Alcotest.test_case "all cases block regressions" `Slow test_ci_all_cases_block_regressions;
        Alcotest.test_case "suites stay green" `Quick test_ci_no_test_failures;
      ] );
    ( "lisa.mc",
      [
        Alcotest.test_case "safe scenario" `Quick test_mc_safe;
        Alcotest.test_case "shortest violation" `Quick test_mc_finds_shortest_violation;
        Alcotest.test_case "guard rejections counted" `Quick test_mc_rejections_counted;
        Alcotest.test_case "engine errors reported" `Quick test_mc_engine_error_reported;
      ] );
    ( "lisa.composition",
      [
        Alcotest.test_case "composition supported on all scenarios" `Slow
          test_composition_all_supported;
        Alcotest.test_case "synthesized trace is the incident" `Quick
          test_composition_regression_trace_is_the_incident;
      ] );
    ( "lisa.experiments",
      [
        Alcotest.test_case "comparison headline" `Slow test_compare_headline;
        Alcotest.test_case "unknown bugs found" `Quick test_unknown_bugs_found;
        Alcotest.test_case "generalization rows" `Quick test_generalization_rows;
        Alcotest.test_case "whole-system scan shape" `Slow test_system_scan_shape;
        Alcotest.test_case "study totals" `Quick test_study_totals;
      ] );
  ]
