lib/minilang/lexer.ml: Buffer Fmt List Loc String Token
