(** Domain-based worker pool.  [jobs <= 1] is a plain serial map on the
    calling domain (bit-for-bit deterministic); [jobs > 1] spawns up to
    [jobs] domains draining a shared atomic index, with results returned
    in input order — so output is independent of the pool width whenever
    the mapped function is deterministic per item.

    The optional [init]/[finish] hooks bracket each worker domain's
    lifetime: [init] runs on the worker before its first item (warm up
    [Domain.DLS] caches), [finish] after its last (drain domain-local
    buffers that must outlive the domain).  The serial path runs both
    hooks on the calling domain. *)

(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core to
    the scheduler. *)
val default_jobs : unit -> int

(** Per-slot results: every failed item keeps its own exception in its
    own slot (no error loss), every other item still computes.  The
    fault-tolerant entry point the engine's retry/quarantine loop
    drives. *)
val map_results :
  ?init:(unit -> unit) ->
  ?finish:(unit -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn) result array

(** The indexed failures of a [map_results] run, in slot order. *)
val failures : ('b, exn) result array -> (int * exn) list

(** Raising wrapper: re-raises the first failure by input index
    (deterministically the same one at any pool width). *)
val map :
  ?init:(unit -> unit) ->
  ?finish:(unit -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a array ->
  'b array

val map_list :
  ?init:(unit -> unit) ->
  ?finish:(unit -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  'b list
