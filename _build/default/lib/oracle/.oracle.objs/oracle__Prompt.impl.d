lib/oracle/prompt.ml: Fmt List String Ticket
