examples/zookeeper_ephemeral.ml: Corpus Fmt Lisa List Minilang Oracle Semantics Smt
