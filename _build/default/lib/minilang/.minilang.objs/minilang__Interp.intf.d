lib/minilang/interp.mli: Ast Buffer Loc Value
