test/test_report.ml: Alcotest Astring_contains Corpus Gen Lisa List Minilang QCheck QCheck_alcotest Semantics Smt
