examples/rule_dsl.mli:
