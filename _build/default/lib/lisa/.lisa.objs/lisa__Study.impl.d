lib/lisa/study.ml: Buffer Corpus Fmt List Minilang String
