lib/smt/formula.mli: Format
