(** Experiment E11 (ours) — whole-system enforcement at scale.

    Per-case enforcement (E2/E3) checks a rule against the feature module
    it came from.  Production CI runs the *accumulated* rulebook against
    the *whole* code base; this experiment does exactly that on the
    assembled releases: one rulebook per system, learned from every
    original incident, enforced against releases v1 (all first fixes in),
    v2 (everything regressed), v3 (regressions fixed) and v5 ("latest",
    carrying the two §4 unknown bugs).

    The 4-system × 4-version sweep is one engine run: a single
    {!Engine.Scheduler} serves all sixteen enforcements, so versions
    that leave a rule's region untouched (v3 → v5 for every already-
    stable case) reuse cached reports, and repeated path conditions hit
    the SMT verdict cache across the whole scan.

    Shape to expect: v1 clean, one finding per case at v2, v3 clean again,
    and exactly the HBASE-29296 / HDFS-17768 paths at v5 — with zero
    cross-feature false positives, which is only true because rule
    generalization refuses to widen syntactic (builtin-anchored)
    targets. *)

type version_row = {
  vr_version : int;
  vr_rules : int;
  vr_violating_rules : string list;  (** rule ids with findings *)
  vr_traces : int;
  vr_branches_total : int;
  vr_branches_recorded : int;
  vr_degraded : string list;  (** rule ids with degraded (lossy) reports *)
  vr_tiers : (string * string) list;
      (** witness-replay tier per violating rule id (e.g. ["witnessed"]);
          empty unless the scan ran with triage enabled *)
}

type system_result = {
  sys_name : string;
  sys_rows : version_row list;
}

let learn_system_book ?(config = Pipeline.default_config)
    ?(registry = Corpus.Registry.builtin) (system : string) :
    Semantics.Rulebook.t =
  let tickets =
    List.map Corpus.Case.original_ticket (Corpus.Registry.cases_of registry system)
  in
  let book, _ = Pipeline.learn_all ~config ~system tickets in
  book

let row_of_reports ?(triage : Triage.config option) ?(program : Minilang.Ast.program option)
    (book : Semantics.Rulebook.t) (version : int)
    (reports : Checker.rule_report list) : version_row =
  let tiers =
    match (triage, program) with
    | Some tcfg, Some p ->
        let violating = List.filter Checker.has_violations reports in
        Triage.triage_reports ~config:tcfg p violating
        |> List.filter_map (fun t ->
               match Triage.rule_tier t with
               | Some tier ->
                   Some
                     ( t.Triage.t_report.Checker.rep_rule
                         .Semantics.Rule.rule_id,
                       Triage.tier_to_string tier )
               | None -> None)
    | _ -> []
  in
  {
    vr_version = version;
    vr_rules = Semantics.Rulebook.size book;
    vr_violating_rules =
      List.filter_map
        (fun (r : Checker.rule_report) ->
          if Checker.has_violations r then
            Some r.Checker.rep_rule.Semantics.Rule.rule_id
          else None)
        reports;
    vr_traces =
      List.fold_left (fun n (r : Checker.rule_report) -> n + List.length r.Checker.rep_traces) 0 reports;
    vr_branches_total =
      List.fold_left (fun n (r : Checker.rule_report) -> n + r.Checker.rep_branches_total) 0 reports;
    vr_branches_recorded =
      List.fold_left
        (fun n (r : Checker.rule_report) -> n + r.Checker.rep_branches_recorded)
        0 reports;
    vr_degraded = Engine.Scheduler.degraded_ids reports;
    vr_tiers = tiers;
  }

let scan_version ?(config = Pipeline.default_config)
    ?(registry = Corpus.Registry.builtin) (system : string)
    (book : Semantics.Rulebook.t) (version : int) : version_row =
  let p = Corpus.Registry.program_of registry system ~version in
  row_of_reports book version (Pipeline.enforce ~config p book)

(** The whole scan as one engine run.  Returns per-system rows plus the
    engine's accumulated statistics.  [triage] additionally runs
    witness-replay triage over each version's findings and fills
    [vr_tiers] (absent by default, so the plain scan output is
    byte-identical to the pre-triage engine). *)
let run_engine ?(config = Pipeline.default_config)
    ?(engine_config = Engine.Scheduler.default_config)
    ?(registry = Corpus.Registry.builtin) ?(triage : Triage.config option) () :
    system_result list * Engine.Stats.t =
  let engine =
    Engine.Scheduler.create
      ~config:{ engine_config with Engine.Scheduler.checker = config.Pipeline.checker }
      ()
  in
  let results =
    List.map
      (fun system ->
        let book = learn_system_book ~config ~registry system in
        {
          sys_name = system;
          sys_rows =
            List.map
              (fun version ->
                let p = Corpus.Registry.program_of registry system ~version in
                row_of_reports ?triage ~program:p book version
                  (Pipeline.enforce_with engine p book))
              registry.Corpus.Registry.scan_versions;
        })
      registry.Corpus.Registry.systems
  in
  (results, Engine.Scheduler.stats engine)

let run ?(config = Pipeline.default_config)
    ?(registry = Corpus.Registry.builtin) () : system_result list =
  fst (run_engine ~config ~registry ())

let print (results : system_result list) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  pf "E11 — whole-system enforcement on the assembled releases";
  pf "----------------------------------------------------------";
  List.iter
    (fun r ->
      pf "%s:" r.sys_name;
      List.iter
        (fun vr ->
          pf
            "  v%d: %d rules, %d traces judged, branches %d/%d recorded, findings: %s%s"
            vr.vr_version vr.vr_rules vr.vr_traces vr.vr_branches_recorded
            vr.vr_branches_total
            (match vr.vr_violating_rules with
            | [] -> "none"
            | ids -> String.concat ", " ids)
            (* only non-empty on a faulted run: the healthy scan output
               stays byte-identical to the pre-resilience engine *)
            (* only non-empty when triage ran: the plain scan stays
               byte-identical to the pre-triage engine *)
            ((match vr.vr_degraded with
             | [] -> ""
             | ids -> Fmt.str " [degraded: %s]" (String.concat ", " ids))
            ^
            match vr.vr_tiers with
            | [] -> ""
            | tiers ->
                Fmt.str " [triage: %s]"
                  (String.concat ", "
                     (List.map (fun (id, t) -> id ^ "=" ^ t) tiers))))
        r.sys_rows)
    results;
  pf "";
  pf "expected shape: v1 and v3 clean; one finding per case at v2; only the";
  pf "two Section-4 unknown bugs at v5; no cross-feature false positives.";
  Buffer.contents buf

let print_with_stats ((results, stats) : system_result list * Engine.Stats.t) :
    string =
  print results ^ "\n" ^ Engine.Stats.to_string stats ^ "\n"
