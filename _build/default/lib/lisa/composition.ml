(** Experiment E10 — §5 open question (iii): composing validated low-level
    semantics into high-level guarantees.

    For a case we state the *high-level* property the paper's two-phase
    inference names (e.g. "every ephemeral node's owner session exists and
    is not closing") as a MiniJava invariant, and bounded-model-check it
    over all client operation sequences ({!Mc.Explorer}).  Alongside, we
    enforce the case's low-level rulebook on the same version.  The
    composition claim is checked empirically at every stage:

    - when all low-level rules hold, the bounded exploration finds no
      high-level violation;
    - when a low-level rule is violated (the regression stage), the
      explorer produces a concrete operation sequence that breaks the
      high-level property — the very incident the ticket described. *)

type scenario_def = {
  sd_case : string;
  sd_high_level : string;
  sd_harness : string;  (** MiniJava appended to the feature source *)
  sd_ops : int -> string list;  (** ops available at a given stage *)
  sd_depth : int;
}

let scenarios : scenario_def list =
  [
    {
      sd_case = "zk-ephemeral";
      sd_high_level =
        "every ephemeral node's owner session exists and is not closing";
      sd_harness =
        {|
method mcInit(): PrepRequestProcessor {
  var prep: PrepRequestProcessor = makeEphemeralStack();
  var s: Session = new Session(1, "svc-registration");
  prep.tracker.addSession(s);
  return prep;
}
method mcOpCreatePrep(prep: PrepRequestProcessor) {
  prep.pRequest2TxnCreate(1, "/svc/a");
}
method mcOpClose(prep: PrepRequestProcessor) {
  prep.closeSession(1);
}
method mcInv(prep: PrepRequestProcessor): bool {
  var paths: list = mapKeys(prep.tree.ephemerals);
  var i: int = 0;
  while (i < listSize(paths)) {
    var owner: int = mapGet(prep.tree.ephemerals, listGet(paths, i));
    var s: Session = prep.tracker.getSession(owner);
    if (s == null) {
      return false;
    }
    if (s.isClosing()) {
      return false;
    }
    i = i + 1;
  }
  return true;
}
|};
      sd_ops =
        (fun stage ->
          [ "mcOpCreatePrep"; "mcOpClose" ]
          @ (if stage >= 2 then [ "mcOpCreateLearner" ] else []));
      sd_depth = 3;
    };
    {
      sd_case = "hdfs-safemode";
      sd_high_level = "the namespace does not change while the namenode is in safe mode";
      sd_harness =
        {|
class McHarness {
  field fs: FSNamesystem;
  field mutationsAtEntry: int = 0;
}
method mcInit(): McHarness {
  var h: McHarness = new McHarness();
  h.fs = new FSNamesystem();
  return h;
}
method mcOpEnterSafeMode(h: McHarness) {
  h.fs.safeMode = true;
  h.mutationsAtEntry = h.fs.mutations;
}
method mcOpLeaveSafeMode(h: McHarness) {
  h.fs.safeMode = false;
}
method mcOpMkdir(h: McHarness) {
  h.fs.mkdir("/client/dir");
}
method mcInv(h: McHarness): bool {
  if (h.fs.safeMode) {
    return h.fs.mutations == h.mutationsAtEntry;
  }
  return true;
}
|}
        ^ {|
method mcOpConcat(h: McHarness) {
  // the concat client: ensure sources exist, then issue the operation
  mapPut(h.fs.files, "/a", 1);
  mapPut(h.fs.files, "/b", 1);
  h.fs.concatFiles("/a", "/b");
}
|};
      sd_ops =
        (fun stage ->
          [ "mcOpEnterSafeMode"; "mcOpLeaveSafeMode"; "mcOpMkdir" ]
          @ (if stage >= 2 then [ "mcOpConcat" ] else []));
      sd_depth = 3;
    };
    {
      sd_case = "cassandra-gossip-generation";
      sd_high_level = "an endpoint's recorded generation never moves backwards";
      sd_harness =
        {|
method mcInit(): Gossiper {
  var g: Gossiper = makeGossiper();
  return g;
}
method mcOpSynNewer(g: Gossiper) {
  g.handleSyn(new GossipMessage("10.0.0.1", 7, 1, "NORMAL"));
}
method mcOpSynStale(g: Gossiper) {
  g.handleSyn(new GossipMessage("10.0.0.1", 2, 99, "shutdown"));
}
method mcInv(g: Gossiper): bool {
  var e: EndpointState = mapGet(g.endpoints, "10.0.0.1");
  if (e == null) {
    return true;
  }
  return e.generation >= 5;
}
|};
      sd_ops =
        (fun stage ->
          [ "mcOpSynNewer"; "mcOpSynStale" ]
          @ (if stage >= 2 then [ "mcOpAckStale" ] else []));
      sd_depth = 3;
    };
  ]

(* the learner op only exists from stage 2 on, so it lives in a separate
   harness fragment appended conditionally *)
let stage_harness (sd : scenario_def) (stage : int) : string =
  match (sd.sd_case, stage >= 2) with
  | "zk-ephemeral", true ->
      sd.sd_harness
      ^ {|
method mcOpCreateLearner(prep: PrepRequestProcessor) {
  var lrp: LearnerRequestProcessor = new LearnerRequestProcessor(prep.tracker, prep.tree);
  lrp.forwardCreate(1, "/svc/b");
}
|}
  | "cassandra-gossip-generation", true ->
      sd.sd_harness
      ^ {|
method mcOpAckStale(g: Gossiper) {
  g.handleAck(new GossipMessage("10.0.0.1", 1, 99, "shutdown"));
}
|}
  | _ -> sd.sd_harness

type stage_result = {
  sr_stage : int;
  sr_rules_hold : bool;  (** low-level rulebook clean on this version *)
  sr_bounded : Mc.Explorer.outcome;  (** bounded high-level verdict *)
}

type result = {
  res_case : string;
  res_high_level : string;
  res_stages : stage_result list;
  res_composition_holds : bool;
      (** at every stage: rules hold => bounded-safe, and the regression
          stage shows both a rule violation and a concrete high-level
          counterexample *)
}

let check_stage (sd : scenario_def) (c : Corpus.Case.t)
    (book : Semantics.Rulebook.t) (stage : int) : stage_result =
  let src = c.Corpus.Case.source stage ^ stage_harness sd stage in
  let program = Minilang.Parser.program ~file:(sd.sd_case ^ "-mc.mj") src in
  let rules_hold =
    Pipeline.findings (Pipeline.enforce (Corpus.Case.program_at c stage) book) = []
  in
  let outcome =
    Mc.Explorer.explore
      ~config:{ Mc.Explorer.default_config with Mc.Explorer.depth = sd.sd_depth }
      {
        Mc.Explorer.program;
        init = "mcInit";
        ops = sd.sd_ops stage;
        invariant = "mcInv";
      }
  in
  { sr_stage = stage; sr_rules_hold = rules_hold; sr_bounded = outcome }

let run_case (sd : scenario_def) : result =
  let c =
    match Corpus.Registry.find_case sd.sd_case with
    | Some c -> c
    | None -> invalid_arg (sd.sd_case ^ " missing")
  in
  let outcome = Pipeline.learn (Corpus.Case.original_ticket c) in
  let book =
    Semantics.Rulebook.of_rules ~system:c.Corpus.Case.system outcome.Pipeline.accepted
  in
  let stages = List.map (check_stage sd c book) [ 1; 2; 3 ] in
  let composition_holds =
    List.for_all
      (fun sr ->
        match (sr.sr_rules_hold, sr.sr_bounded) with
        | true, Mc.Explorer.Safe _ -> true
        | false, Mc.Explorer.Unsafe _ -> true
        | _, Mc.Explorer.Engine_error _ -> false
        | true, Mc.Explorer.Unsafe _ -> false
        | false, Mc.Explorer.Safe _ ->
            (* a rule violation without a high-level counterexample within
               the bound is not a refutation of composition, but we report
               it conservatively *)
            false)
      stages
  in
  {
    res_case = sd.sd_case;
    res_high_level = sd.sd_high_level;
    res_stages = stages;
    res_composition_holds = composition_holds;
  }

let run () : result list = List.map run_case scenarios

let print (results : result list) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  pf "E10 / §5 — composing low-level semantics into high-level guarantees";
  pf "--------------------------------------------------------------------";
  List.iter
    (fun r ->
      pf "%s — high-level property: %s" r.res_case r.res_high_level;
      List.iter
        (fun sr ->
          pf "  stage %d: low-level rules %s; bounded check: %s" sr.sr_stage
            (if sr.sr_rules_hold then "HOLD" else "VIOLATED")
            (Mc.Explorer.outcome_to_string sr.sr_bounded))
        r.res_stages;
      pf "  composition claim %s" (if r.res_composition_holds then "supported" else "NOT supported");
      pf "")
    results;
  pf "reading: whenever the learned low-level contracts hold, no operation";
  pf "sequence within the bound can break the high-level property; on the";
  pf "regression stage the explorer synthesizes the incident's exact trace.";
  Buffer.contents buf
