(** The enforcement daemon: warm engines behind a fair, bounded
    admission queue.

    Request lifecycle: accept loop parses a JSONL line → admission
    ({!Queue}; full queue sheds with an [overloaded] response, the
    accept loop never blocks on the worker) → worker domain pops in
    per-tenant round-robin order → per-tenant circuit breaker
    ({!Resilience.Kbreaker}; open = [rejected]/[breaker_open]) →
    fingerprint-keyed response cache → the system's long-lived
    {!Engine.Scheduler} (report cache, {!Smt.Memo}, hash-cons tables
    and learned clauses all warm from previous requests) → response.

    With a cache dir, the response cache and the SMT verdict memo are
    persisted as {!Snapshot}s ({!Smt.Wire} forms only — interned values
    never hit the disk raw) and reloaded on the next start; any
    unreadable snapshot degrades to a cold start, never a crash. *)

module Trace = Telemetry.Trace
module Clock = Telemetry.Clock
module Event = Telemetry.Event

type config = {
  jobs : int;
  queue_depth : int;
  breaker_threshold : int;
  breaker_cooldown : int;
  cache_dir : string option;
  drain_after_eof : bool;
  triage : Triage.config option;
  registry : Corpus.Registry.t;
      (** the corpus the daemon serves: case lookups, system assembly and
          learned books all resolve against this value *)
}

let default_config =
  {
    jobs = 1;
    queue_depth = 64;
    breaker_threshold = 3;
    breaker_cooldown = 8;
    cache_dir = None;
    drain_after_eof = false;
    triage = Some Triage.default_config;
    registry = Corpus.Registry.builtin;
  }

type t = {
  cfg : config;
  engines : (string, Engine.Scheduler.t) Hashtbl.t;  (** per system *)
  books : (string, Semantics.Rulebook.t) Hashtbl.t;  (** per scope key *)
  responses : (string, Protocol.summary) Hashtbl.t;  (** the verdict cache *)
  breaker : Resilience.Kbreaker.t;
  mutable warm : (string * string) list;  (** per-snapshot load outcome *)
  served : int Atomic.t;
  cache_hits : int Atomic.t;
  shed : int Atomic.t;
  rejected : int Atomic.t;
  errors : int Atomic.t;
  stop : bool Atomic.t;
}

let scope = Event.scope "serve"

(* every daemon event carries the request correlation id (or "-" for
   lifecycle events) and the tenant, so multi-tenant logs are greppable
   per request *)
let event ?(id = "-") ?(tenant = "-") sev fmt =
  Format.kasprintf
    (fun msg ->
      Event.emit scope sev (fun () ->
          Printf.sprintf "req=%s tenant=%s %s" id tenant msg))
    fmt

let snapshot_names = [ ("responses", "responses.snap"); ("smt-memo", "smt.snap") ]

let snapshot_path dir kind =
  Filename.concat dir (List.assoc kind snapshot_names)

(* the summary record is marshalled raw, so its wire kind carries the
   protocol version: a snapshot written by an older (or newer) summary
   layout fails the kind check and degrades to a cold start instead of
   unmarshalling garbage *)
let responses_kind = Printf.sprintf "responses/v%d" Protocol.version

(* ------------------------------------------------------------------ *)
(* Warm start                                                          *)
(* ------------------------------------------------------------------ *)

let load_caches (t : t) (dir : string) : unit =
  let outcome kind (r : (int, string) result) =
    let text =
      match r with
      | Ok n -> Printf.sprintf "warm (%d entries)" n
      | Error reason -> Printf.sprintf "cold: %s" reason
    in
    event Event.Info "cache %s: %s" kind text;
    t.warm <- t.warm @ [ (kind, text) ]
  in
  (let kind = "responses" in
   outcome kind
     (match
        Snapshot.load ~path:(snapshot_path dir kind) ~kind:responses_kind
      with
     | Error e -> Error e
     | Ok (entries : (string * Protocol.summary) list) ->
         List.iter (fun (k, s) -> Hashtbl.replace t.responses k s) entries;
         Ok (List.length entries)));
  let kind = "smt-memo" in
  outcome kind
    (match Snapshot.load ~path:(snapshot_path dir kind) ~kind with
    | Error e -> Error e
    | Ok (entries : (Smt.Wire.wformula * Smt.Wire.wverdict) list) ->
        (* rebuild through the smart constructors: everything re-enters
           this process's hash-cons tables before touching the memo *)
        Ok
          (Smt.Memo.restore
             (List.map
                (fun (wf, wv) ->
                  (Smt.Wire.to_formula wf, Smt.Wire.to_verdict wv))
                entries)))

let create ?(config = default_config) () : t =
  let t =
    {
      cfg = config;
      engines = Hashtbl.create 4;
      books = Hashtbl.create 8;
      responses = Hashtbl.create 64;
      breaker =
        Resilience.Kbreaker.create ~threshold:config.breaker_threshold
          ~cooldown:config.breaker_cooldown ();
      warm = [];
      served = Atomic.make 0;
      cache_hits = Atomic.make 0;
      shed = Atomic.make 0;
      rejected = Atomic.make 0;
      errors = Atomic.make 0;
      stop = Atomic.make false;
    }
  in
  Option.iter (load_caches t) config.cache_dir;
  t

let config (t : t) = t.cfg

let warm_report (t : t) = t.warm

let response_cache_size (t : t) = Hashtbl.length t.responses

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let save (t : t) : int =
  match t.cfg.cache_dir with
  | None -> 0
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let responses =
        Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.responses []
        |> List.sort compare
      in
      let memo =
        List.filter_map
          (fun (f, v) ->
            Option.map
              (fun wv -> (Smt.Wire.of_formula f, wv))
              (Smt.Wire.of_verdict v))
          (Smt.Memo.entries ())
      in
      let write name ~kind payload n =
        match Snapshot.save ~path:(snapshot_path dir name) ~kind payload with
        | Ok () ->
            event Event.Info "cache %s: saved %d entries" name n;
            n
        | Error e ->
            event Event.Warn "cache %s: save failed: %s" name e;
            0
      in
      write "responses" ~kind:responses_kind responses (List.length responses)
      + write "smt-memo" ~kind:"smt-memo" memo (List.length memo)

(* ------------------------------------------------------------------ *)
(* Request resolution                                                  *)
(* ------------------------------------------------------------------ *)

let engine_for (t : t) (system : string) : Engine.Scheduler.t =
  match Hashtbl.find_opt t.engines system with
  | Some e -> e
  | None ->
      let e =
        Engine.Scheduler.create
          ~config:
            {
              Engine.Scheduler.default_config with
              Engine.Scheduler.jobs = t.cfg.jobs;
            }
          ()
      in
      Hashtbl.replace t.engines system e;
      e

let book_for_system (t : t) (system : string) : Semantics.Rulebook.t =
  let key = "sys:" ^ system in
  match Hashtbl.find_opt t.books key with
  | Some b -> b
  | None ->
      let b =
        Lisa.System_scan.learn_system_book ~registry:t.cfg.registry system
      in
      Hashtbl.replace t.books key b;
      b

let book_for_case (t : t) (c : Corpus.Case.t) (which : int)
    (ticket : Oracle.Ticket.t) : Semantics.Rulebook.t =
  let key = Printf.sprintf "case:%s:%d" c.Corpus.Case.case_id which in
  match Hashtbl.find_opt t.books key with
  | Some b -> b
  | None ->
      let outcome = Lisa.Pipeline.learn ticket in
      let b =
        Semantics.Rulebook.of_rules ~system:c.Corpus.Case.system
          outcome.Lisa.Pipeline.accepted
      in
      Hashtbl.replace t.books key b;
      b

type resolved = {
  rv_system : string;
  rv_version : int;
  rv_program : Minilang.Ast.program;
  rv_book : Semantics.Rulebook.t;
}

let resolve (t : t) (req : Protocol.request) : (resolved, string) result =
  let reg = t.cfg.registry in
  match req.Protocol.req_version with
  | None -> Error "missing \"version\" (target release)"
  | Some version
    when version < 0 || version > reg.Corpus.Registry.max_version ->
      Error
        (Printf.sprintf "version %d out of range 0..%d" version
           reg.Corpus.Registry.max_version)
  | Some version -> (
      match (req.Protocol.req_case, req.Protocol.req_system) with
      | Some case_id, _ -> (
          match Corpus.Registry.find reg case_id with
          | None -> Error (Printf.sprintf "unknown case %S" case_id)
          | Some c ->
              let tickets = Corpus.Case.tickets c in
              let which = req.Protocol.req_ticket in
              if which < 0 || which >= List.length tickets then
                Error
                  (Printf.sprintf "case %s has only %d ticket(s)" case_id
                     (List.length tickets))
              else
                let ticket = List.nth tickets which in
                let system = c.Corpus.Case.system in
                Ok
                  {
                    rv_system = system;
                    rv_version = version;
                    rv_program =
                      Corpus.Registry.program_of reg system ~version;
                    rv_book = book_for_case t c which ticket;
                  })
      | None, Some system ->
          if not (List.mem system reg.Corpus.Registry.systems) then
            Error
              (Printf.sprintf "unknown system %S (known: %s)" system
                 (String.concat ", " reg.Corpus.Registry.systems))
          else
            Ok
              {
                rv_system = system;
                rv_version = version;
                rv_program = Corpus.Registry.program_of reg system ~version;
                rv_book = book_for_system t system;
              }
      | None, None -> Error "request needs \"system\" or \"case\"")

(* the response-cache key: stable fingerprints only — program text,
   rulebook text, checker knobs, protocol version.  Nothing process- or
   schedule-local, so a persisted hit is sound across restarts. *)
let cache_key (t : t) (rv : resolved) : string =
  let book_fp =
    Digest.to_hex
      (Digest.string
         (String.concat "\n"
            (List.map Semantics.Rule.to_string
               (Semantics.Rulebook.rules rv.rv_book))))
  in
  let checker_tag =
    Engine.Checker.config_tag
      (Engine.Scheduler.config (engine_for t rv.rv_system)).Engine.Scheduler
        .checker
  in
  (* triage knobs are part of the key: a summary with tiers must never
     answer a request from a daemon running without triage (or with
     different replay budgets), and vice versa *)
  let triage_tag =
    match t.cfg.triage with
    | None -> "triage:off"
    | Some c when not c.Triage.enabled -> "triage:off"
    | Some c ->
        Printf.sprintf "triage:%d:%d:%d"
          c.Triage.replay_fuel c.Triage.max_attempts c.Triage.max_nodes
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            string_of_int Protocol.version;
            rv.rv_system;
            string_of_int rv.rv_version;
            Engine.Fingerprint.program rv.rv_program;
            book_fp;
            checker_tag;
            triage_tag;
          ]))

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let op_name : Protocol.op -> string = function
  | Protocol.Enforce -> "enforce"
  | Protocol.Ping -> "ping"
  | Protocol.Stats -> "stats"
  | Protocol.Save -> "save"
  | Protocol.Shutdown -> "shutdown"

let counters (t : t) : (string * int) list =
  [
    ("served", Atomic.get t.served);
    ("cache_hits", Atomic.get t.cache_hits);
    ("shed", Atomic.get t.shed);
    ("breaker_rejected", Atomic.get t.rejected);
    ("errors", Atomic.get t.errors);
    ("response_cache", Hashtbl.length t.responses);
    ("tenant_trips", Resilience.Kbreaker.total_trips t.breaker);
    ("smt_memo", Smt.Memo.size ());
  ]

let fail (t : t) (req : Protocol.request) (message : string) : Protocol.response
    =
  let id = req.Protocol.req_id and tenant = req.Protocol.req_tenant in
  Atomic.incr t.errors;
  if Resilience.Kbreaker.failure t.breaker tenant then
    event ~id ~tenant Event.Error "tenant breaker opened (%d trips)"
      (Resilience.Kbreaker.trips t.breaker tenant);
  event ~id ~tenant Event.Warn "error: %s" message;
  Protocol.Error_resp { id; tenant; message }

let enforce_request (t : t) ~(queue_ms : float) (req : Protocol.request) :
    Protocol.response =
  let id = req.Protocol.req_id and tenant = req.Protocol.req_tenant in
  if not (Resilience.Kbreaker.proceed t.breaker tenant) then begin
    Atomic.incr t.rejected;
    event ~id ~tenant Event.Warn "rejected: tenant breaker open";
    Protocol.Rejected { id; tenant; reason = "breaker_open" }
  end
  else
    match resolve t req with
    | Error msg -> fail t req msg
    | Ok rv -> (
        let key = cache_key t rv in
        match Hashtbl.find_opt t.responses key with
        | Some summary ->
            Resilience.Kbreaker.success t.breaker tenant;
            Atomic.incr t.served;
            Atomic.incr t.cache_hits;
            event ~id ~tenant Event.Info
              "%s v%d: %s (warm response cache)" rv.rv_system rv.rv_version
              summary.Protocol.sum_verdict;
            Protocol.Ok_enforce
              {
                id;
                tenant;
                summary;
                cached = true;
                stats =
                  {
                    Protocol.rs_queue_ms = queue_ms;
                    rs_run_ms = 0.;
                    rs_jobs_run = 0;
                    rs_report_hits = 0;
                    rs_smt_hits = 0;
                    rs_solver_calls = 0;
                  };
              }
        | None -> (
            let engine = engine_for t rv.rv_system in
            let s0 = Engine.Scheduler.stats engine in
            let t0 = Clock.now () in
            match Engine.Scheduler.enforce engine rv.rv_program rv.rv_book with
            | exception e -> fail t req (Printexc.to_string e)
            | reports ->
                let wall_ms = (Clock.now () -. t0) *. 1000. in
                let s1 = Engine.Scheduler.stats engine in
                let findings = Engine.Scheduler.finding_ids reports in
                let degraded = Engine.Scheduler.degraded_ids reports in
                (* witness-replay triage over the violating rules only:
                   clean verdicts never pay for replay, and a triage-off
                   daemon renders the v1-identical tier-less form *)
                let tiers =
                  match t.cfg.triage with
                  | Some tcfg when findings <> [] ->
                      let violating =
                        List.filter Engine.Checker.has_violations reports
                      in
                      Triage.triage_reports ~config:tcfg rv.rv_program violating
                      |> List.filter_map (fun tr ->
                             match Triage.rule_tier tr with
                             | Some tier ->
                                 Some
                                   ( tr.Triage.t_report.Engine.Checker.rep_rule
                                       .Semantics.Rule.rule_id,
                                     Triage.tier_to_string tier )
                             | None -> None)
                  | _ -> []
                in
                let summary =
                  {
                    Protocol.sum_verdict =
                      (if findings = [] then "clean" else "violations");
                    sum_findings = findings;
                    sum_degraded = degraded;
                    sum_tiers = tiers;
                    sum_traces =
                      List.fold_left
                        (fun n (r : Engine.Checker.rule_report) ->
                          n + List.length r.Engine.Checker.rep_traces)
                        0 reports;
                    sum_rules = Semantics.Rulebook.size rv.rv_book;
                  }
                in
                (* degraded verdicts describe a bad moment, not the
                   release: they are answered but never cached (same
                   policy as the engine's own report cache) *)
                if degraded = [] then Hashtbl.replace t.responses key summary;
                Resilience.Kbreaker.success t.breaker tenant;
                Atomic.incr t.served;
                event ~id ~tenant Event.Info "%s v%d: %s (%d finding(s), %.0fms)"
                  rv.rv_system rv.rv_version summary.Protocol.sum_verdict
                  (List.length findings) wall_ms;
                Protocol.Ok_enforce
                  {
                    id;
                    tenant;
                    summary;
                    cached = false;
                    stats =
                      {
                        Protocol.rs_queue_ms = queue_ms;
                        rs_run_ms = wall_ms;
                        rs_jobs_run =
                          s1.Engine.Stats.jobs_run - s0.Engine.Stats.jobs_run;
                        rs_report_hits =
                          s1.Engine.Stats.report_hits
                          - s0.Engine.Stats.report_hits;
                        rs_smt_hits =
                          s1.Engine.Stats.smt_hits - s0.Engine.Stats.smt_hits;
                        rs_solver_calls =
                          s1.Engine.Stats.solver_calls
                          - s0.Engine.Stats.solver_calls;
                      };
                  }))

let handle_timed (t : t) ~(queue_ms : float) (req : Protocol.request) :
    Protocol.response =
  let id = req.Protocol.req_id and tenant = req.Protocol.req_tenant in
  Trace.with_span ~cat:"serve"
    ~args:[ ("id", id); ("tenant", tenant); ("op", op_name req.Protocol.req_op) ]
    "serve.request"
  @@ fun () ->
  match req.Protocol.req_op with
  | Protocol.Enforce -> enforce_request t ~queue_ms req
  | Protocol.Ping -> Protocol.Ok_ping { id; tenant }
  | Protocol.Stats -> Protocol.Ok_stats { id; tenant; fields = counters t }
  | Protocol.Save -> Protocol.Ok_saved { id; tenant; entries = save t }
  | Protocol.Shutdown ->
      Atomic.set t.stop true;
      event ~id ~tenant Event.Info "shutdown requested";
      Protocol.Ok_shutdown { id; tenant }

let handle_request (t : t) (req : Protocol.request) : Protocol.response =
  handle_timed t ~queue_ms:0. req

let handle_line (t : t) (line : string) : Protocol.response =
  match Protocol.parse_request line with
  | Ok req -> handle_request t req
  | Error message ->
      Atomic.incr t.errors;
      event Event.Warn "unparseable request: %s" message;
      Protocol.Error_resp { id = ""; tenant = "default"; message }

(* ------------------------------------------------------------------ *)
(* Queue pump (shared by the channel and socket servers)               *)
(* ------------------------------------------------------------------ *)

type job = {
  jb_req : Protocol.request;
  jb_reply : string -> unit;
  jb_enq : float;
}

let queue_counter (q : job Queue.t) =
  if Trace.enabled () then
    Trace.counter ~cat:"serve" "serve.queue"
      [
        ("depth", float_of_int (Queue.length q));
        ("shed", float_of_int (Queue.shed_count q));
      ]

let worker_loop (t : t) (q : job Queue.t) : unit =
  let rec go () =
    match Queue.pop q with
    | None -> ()
    | Some (_tenant, jb) ->
        queue_counter q;
        let queue_ms = (Clock.now () -. jb.jb_enq) *. 1000. in
        let resp = handle_timed t ~queue_ms jb.jb_req in
        jb.jb_reply (Protocol.render_response resp);
        go ()
  in
  go ()

(* parse one line and either answer immediately (parse error, shed) or
   enqueue for the worker; returns [true] when the accept loop should
   stop reading (a shutdown request was admitted) *)
let accept_line (t : t) (q : job Queue.t) ~(reply : string -> unit)
    (line : string) : bool =
  let line = String.trim line in
  if line = "" then false
  else
    match Protocol.parse_request line with
    | Error message ->
        Atomic.incr t.errors;
        event Event.Warn "unparseable request: %s" message;
        reply
          (Protocol.render_response
             (Protocol.Error_resp { id = ""; tenant = "default"; message }));
        false
    | Ok req -> (
        let id = req.Protocol.req_id and tenant = req.Protocol.req_tenant in
        let jb = { jb_req = req; jb_reply = reply; jb_enq = Clock.now () } in
        match Queue.push q ~tenant jb with
        | Queue.Admitted ->
            queue_counter q;
            req.Protocol.req_op = Protocol.Shutdown
        | Queue.Shed depth ->
            Atomic.incr t.shed;
            queue_counter q;
            event ~id ~tenant Event.Warn
              "overloaded: admission queue full (depth %d), shedding" depth;
            reply
              (Protocol.render_response
                 (Protocol.Overloaded { id; tenant; depth }));
            false)

let serve_channels (t : t) (ic : in_channel) (oc : out_channel) : unit =
  let out_lock = Mutex.create () in
  let reply line =
    Mutex.lock out_lock;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_lock
  in
  let q : job Queue.t = Queue.create ~depth:t.cfg.queue_depth () in
  event Event.Info "listening on stdin (queue depth %d, jobs %d)"
    t.cfg.queue_depth t.cfg.jobs;
  let worker =
    if t.cfg.drain_after_eof then None
    else Some (Domain.spawn (fun () -> worker_loop t q))
  in
  let rec accept () =
    if not (Atomic.get t.stop) then
      match input_line ic with
      | exception End_of_file -> ()
      | line -> if not (accept_line t q ~reply line) then accept ()
  in
  accept ();
  Queue.close q;
  (match worker with
  | Some d -> Domain.join d
  | None -> worker_loop t q (* testing mode: drain inline, after EOF *));
  ignore (save t);
  event Event.Info "shutdown clean (%d served, %d shed)" (Atomic.get t.served)
    (Atomic.get t.shed)

(* ------------------------------------------------------------------ *)
(* Unix-socket server                                                  *)
(* ------------------------------------------------------------------ *)

let serve_socket (t : t) ~(path : string) : unit =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 16;
  let out_lock = Mutex.create () in
  let reply_to fd line =
    Mutex.lock out_lock;
    (try
       let msg = line ^ "\n" in
       ignore (Unix.write_substring fd msg 0 (String.length msg))
     with Unix.Unix_error _ -> () (* client went away; drop the reply *));
    Mutex.unlock out_lock
  in
  let q : job Queue.t = Queue.create ~depth:t.cfg.queue_depth () in
  let worker = Domain.spawn (fun () -> worker_loop t q) in
  let clients : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let close_client fd =
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let on_signal = Sys.Signal_handle (fun _ -> Atomic.set t.stop true) in
  let old_int = Sys.signal Sys.sigint on_signal in
  let old_term = Sys.signal Sys.sigterm on_signal in
  event Event.Info "listening on %s (queue depth %d, jobs %d)" path
    t.cfg.queue_depth t.cfg.jobs;
  (* complete lines of a client buffer, leaving any partial tail *)
  let drain_lines fd buf =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    let rec go start =
      match String.index_from_opt s start '\n' with
      | Some nl ->
          let line = String.sub s start (nl - start) in
          if accept_line t q ~reply:(reply_to fd) line then
            Atomic.set t.stop true;
          go (nl + 1)
      | None -> Buffer.add_substring buf s start (String.length s - start)
    in
    go 0
  in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
      (match Unix.select fds [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = srv then (
                match Unix.accept srv with
                | client, _ -> Hashtbl.replace clients client (Buffer.create 256)
                | exception Unix.Unix_error _ -> ())
              else
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> close_client fd
                | n ->
                    let buf = Hashtbl.find clients fd in
                    Buffer.add_subbytes buf chunk 0 n;
                    drain_lines fd buf
                | exception Unix.Unix_error _ -> close_client fd)
            readable);
      loop ()
    end
  in
  loop ();
  Queue.close q;
  Domain.join worker;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  ignore (save t);
  event Event.Info "shutdown clean (%d served, %d shed)" (Atomic.get t.served)
    (Atomic.get t.shed)
