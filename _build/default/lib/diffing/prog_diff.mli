(** Structural (AST-level) diff between two versions of a program.

    Reports which guards a patch added and which statements those guards
    protect — the signal the inference backend turns into contracts.
    Matching is on canonical printed statement text, so the diff is robust
    to location and statement-id changes. *)

type guard_kind =
  | Early_exit  (** guard body throws/returns/breaks: it rejects executions *)
  | Wrapper  (** guard wraps the protected logic in its body *)

type added_guard = {
  g_method : string;  (** qualified name of the enclosing method *)
  g_cond : Minilang.Ast.expr;  (** the guard condition in the new version *)
  g_kind : guard_kind;
  g_sid : int;  (** sid of the guard in the new program *)
  g_protected : Minilang.Ast.stmt list;  (** statements the guard protects *)
}

type method_change = {
  mc_qname : string;
  mc_added_stmts : string list;  (** printed heads only in the new version *)
  mc_removed_stmts : string list;  (** printed heads only in the old version *)
  mc_added_guards : added_guard list;
}

type t = {
  added_methods : string list;
  removed_methods : string list;
  changed_methods : method_change list;
}

(** Compare two program versions. *)
val compare_programs : Minilang.Ast.program -> Minilang.Ast.program -> t

val all_added_guards : t -> added_guard list

val pp_guard : Format.formatter -> added_guard -> unit
