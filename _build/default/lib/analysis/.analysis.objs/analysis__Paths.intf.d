lib/analysis/paths.mli: Callgraph Minilang
