(** Versioned, digest-checked snapshots: header line + marshalled
    payload, temp-file + rename writes, and a loader that answers
    [Error reason] for every way a file can be wrong — never an
    exception, never a crash on garbage bytes (the MD5 check runs
    before [Marshal.from_string] ever sees the payload). *)

let magic = "LISA-SNAP"

let format_version = 1

let save ~(path : string) ~(kind : string) (payload : 'a) : (unit, string) result
    =
  try
    let body = Marshal.to_string payload [] in
    let digest = Digest.to_hex (Digest.string body) in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc "%s %d %s %s %d\n" magic format_version kind digest
          (String.length body);
        output_string oc body);
    Sys.rename tmp path;
    Ok ()
  with
  | Sys_error e -> Error e
  | e -> Error (Printexc.to_string e)

let load ~(path : string) ~(kind : string) : ('a, string) result =
  if not (Sys.file_exists path) then Error "missing"
  else
    match open_in_bin path with
    | exception Sys_error e -> Error e
    | ic -> (
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        match input_line ic with
        | exception End_of_file -> Error "empty file"
        | header -> (
            match String.split_on_char ' ' header with
            | [ m; v; k; digest; len ] -> (
                if m <> magic then Error "bad magic"
                else
                  match (int_of_string_opt v, int_of_string_opt len) with
                  | None, _ | _, None -> Error "unparseable header"
                  | Some v, _ when v <> format_version -> Error "version mismatch"
                  | _, Some len when len < 0 -> Error "unparseable header"
                  | _, Some len -> (
                      if k <> kind then Error "kind mismatch"
                      else
                        match really_input_string ic len with
                        | exception End_of_file -> Error "truncated payload"
                        | body ->
                            if Digest.to_hex (Digest.string body) <> digest then
                              Error "digest mismatch"
                            else (
                              (* digest-verified bytes we wrote ourselves:
                                 Marshal is safe, but belt and braces *)
                              try Ok (Marshal.from_string body 0)
                              with e -> Error (Printexc.to_string e))))
            | _ -> Error "unparseable header"))
