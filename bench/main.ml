(* Benchmark & experiment harness.

   One driver per paper artifact (see DESIGN.md experiment index):
     E1 study        — Figure 1 + §2.1 statistics
     E2 zk-ephemeral — Figures 2-3 walkthrough
     E3 comparison   — Figure 4
     E4 workflow     — Figure 5
     E5 generalize   — Figure 6
     E6/E7 unknown   — §4 Bugs #1 and #2
     E8 ablations    — §3.2 mechanism knobs
     E9 noise        — §5 open question (i)
     CI              — the vision: gated histories for all 16 cases
     engine          — serial vs parallel vs incremental enforcement engine
     chaos           — fault-injected enforcement (resilience invariants)
     micro           — Bechamel micro-benchmarks of every engine component
     formula         — hash-consed core: intern throughput + memo key cost
                       (writes BENCH_formula.json)
     serve           — daemon req/s + p50/p99 cold vs warm vs
                       restart-from-snapshot, byte-identity gates
                       (writes BENCH_serve.json)
     triage          — witness-replay tiers: zero-loss on the clean
                       corpus, >= 70% injected-FP demotion under a
                       hallucinating oracle, determinism gates
                       (writes BENCH_triage.json)

   `bench/main.exe` with no arguments runs everything;
   `--experiment <name>` selects one.  `--smoke` shrinks the engine
   experiment to one system (the `make check` fast path).
   `--trace out.json` records every stage through [Telemetry.Trace] and
   writes Chrome-trace JSON plus a per-span summary table on exit. *)

let smoke_flag = ref false

let trace_path : string option ref = ref None

let section title =
  Printf.printf "\n%s\n%s\n" (String.make 78 '=') title;
  print_endline (String.make 78 '=')

let run_study () =
  section "E1: regression study (Figure 1)";
  print_string (Lisa.Study.print (Lisa.Study.run ()))

let run_zk () =
  section "E2: ZooKeeper ephemeral nodes (Figures 2-3)";
  print_endline
    (Lisa.Experiments.Zk_ephemeral.print (Lisa.Experiments.Zk_ephemeral.run ()))

let run_comparison () =
  section "E3: testing vs LISA vs verification (Figure 4)";
  print_string (Lisa.Compare.print (Lisa.Compare.run ()))

let run_workflow () =
  section "E4: end-to-end workflow (Figure 5)";
  print_string (Lisa.Experiments.Workflow.run ())

let run_generalize () =
  section "E5: rule generalization (Figure 6)";
  print_string
    (Lisa.Experiments.Generalization.print (Lisa.Experiments.Generalization.run ()))

let run_unknown () =
  section "E6/E7: previously-unknown bugs in latest releases (Section 4)";
  print_string
    (Lisa.Experiments.Unknown_bugs.print (Lisa.Experiments.Unknown_bugs.run ()))

let run_ablations () =
  section "E8: mechanism ablations";
  print_string (Lisa.Ablation.print (Lisa.Ablation.run ()))

let run_noise () =
  section "E9: LLM noise vs cross-checking (Section 5)";
  print_string (Lisa.Experiments.Noise.print (Lisa.Experiments.Noise.run ()))

let run_system_scan () =
  section "E11: whole-system enforcement on assembled releases";
  print_string (Lisa.System_scan.print (Lisa.System_scan.run ()))

let run_composition () =
  section "E10: composing low-level semantics into high-level guarantees (Section 5)";
  print_string (Lisa.Composition.print (Lisa.Composition.run ()))

let run_ci () =
  section "CI: gated version histories (the executable-contract vision)";
  let registry = Corpus.Registry.builtin in
  let blocked = ref 0 in
  List.iter
    (fun r ->
      print_endline (Lisa.Ci.run_to_string r);
      print_newline ();
      blocked := !blocked + List.length (Lisa.Ci.blocked_stages r))
    (Lisa.Ci.replay_all ~registry ());
  Printf.printf "total commits blocked before release across %d histories: %d\n"
    (Corpus.Registry.case_count registry) !blocked

(* ------------------------------------------------------------------ *)
(* Enforcement-engine benchmark                                        *)
(* ------------------------------------------------------------------ *)

(* The E11 workload (every system's rulebook against releases v1/v2/v3/v5)
   pushed through the engine in three configurations:

     serial cold   — jobs=1, every caching layer off: the historic
                     serial checker, the baseline
     parallel cold — jobs=4, caches still off: pool determinism check
     incremental   — jobs=1, diff pre-pass + report cache + SMT verdict
                     cache on: the production configuration

   Prints wall time, Solver.solve counts and cache-hit counters per
   mode, then asserts the two acceptance properties: identical findings
   in every mode, and strictly fewer solver calls cached than cold. *)
let run_engine_bench () =
  section "ENGINE: serial vs parallel vs incremental enforcement";
  let registry = Corpus.Registry.builtin in
  let systems =
    if !smoke_flag then [ "zookeeper" ] else registry.Corpus.Registry.systems
  in
  let versions = registry.Corpus.Registry.scan_versions in
  let workload =
    List.map
      (fun system ->
        let book = Lisa.System_scan.learn_system_book ~registry system in
        ( system,
          book,
          List.map
            (fun v -> (v, Corpus.Registry.program_of registry system ~version:v))
            versions ))
      systems
  in
  Printf.printf "workload: %d system(s) x %d versions%s\n\n"
    (List.length systems) (List.length versions)
    (if !smoke_flag then " (smoke)" else "");
  let run_mode name config =
    (* the verdict cache is global: start every mode from a clean slate *)
    Smt.Memo.reset ();
    let engine = Engine.Scheduler.create ~config () in
    let t0 = Telemetry.Clock.now () in
    let ids =
      List.concat_map
        (fun (system, book, versions) ->
          List.concat_map
            (fun (v, p) ->
              let reports = Engine.Scheduler.enforce engine p book in
              List.map
                (fun id -> Printf.sprintf "%s v%d %s" system v id)
                (Engine.Scheduler.finding_ids reports))
            versions)
        workload
    in
    let wall = Telemetry.Clock.now () -. t0 in
    let stats = Engine.Scheduler.stats engine in
    Printf.printf "%-14s %6.2fs  %s\n" name wall (Engine.Stats.to_string stats);
    (ids, stats)
  in
  let cold = Engine.Scheduler.cold_config in
  let serial_ids, serial_stats = run_mode "serial-cold" cold in
  let par_ids, _ =
    run_mode "parallel-cold" { cold with Engine.Scheduler.jobs = 4 }
  in
  let inc_ids, inc_stats = run_mode "incremental" Engine.Scheduler.default_config in
  let par_inc_ids, _ =
    run_mode "par-incr"
      { Engine.Scheduler.default_config with Engine.Scheduler.jobs = 4 }
  in
  Printf.printf "\nfindings (%d):\n" (List.length serial_ids);
  List.iter (fun id -> Printf.printf "  %s\n" id) serial_ids;
  Printf.printf "\nsolver calls: serial-cold %d, incremental %d (%d saved by the verdict cache)\n"
    serial_stats.Engine.Stats.solver_calls inc_stats.Engine.Stats.solver_calls
    (Engine.Stats.solver_calls_saved inc_stats);
  Printf.printf "slowest jobs (serial-cold):\n%s\n"
    (Engine.Stats.slowest_jobs ~n:3 serial_stats);
  let check cond msg =
    if cond then Printf.printf "OK: %s\n" msg
    else begin
      Printf.printf "FAIL: %s\n" msg;
      exit 1
    end
  in
  check (serial_ids = par_ids) "findings identical, jobs=1 vs jobs=4 (cold)";
  check (serial_ids = inc_ids) "findings identical, cold vs incremental+cached";
  check (serial_ids = par_inc_ids) "findings identical, jobs=4 incremental+cached";
  check
    (inc_stats.Engine.Stats.solver_calls < serial_stats.Engine.Stats.solver_calls)
    (Printf.sprintf "cached run makes strictly fewer solver calls (%d < %d)"
       inc_stats.Engine.Stats.solver_calls serial_stats.Engine.Stats.solver_calls);
  check
    (inc_stats.Engine.Stats.report_hits + inc_stats.Engine.Stats.incremental_reuses
     > 0)
    "incremental/report layers reused work"

(* ------------------------------------------------------------------ *)
(* Chaos suite                                                         *)
(* ------------------------------------------------------------------ *)

(* E11 workload under seeded fault plans; exits non-zero if any
   resilience invariant fails (never crash, same-seed determinism,
   findings subset of baseline, post-chaos run byte-identical). *)
let run_chaos () =
  section "CHAOS: fault-injected enforcement (resilience invariants)";
  let result =
    if !smoke_flag then Lisa.Chaos.run ~seeds:[ 1; 2 ] ~smoke:true ()
    else Lisa.Chaos.run ()
  in
  print_string (Lisa.Chaos.print result);
  if not (Lisa.Chaos.invariants_ok result) then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let zk_src = (List.hd Corpus.Zookeeper.cases).Corpus.Case.source 3 in
  let zk_prog = Minilang.Parser.program zk_src in
  let checker =
    Smt.Formula.conj
      [
        Smt.Formula.neq (Smt.Formula.tvar "Session") Smt.Formula.tnull;
        Smt.Formula.eq (Smt.Formula.tvar "Session.closing") (Smt.Formula.tbool false);
        Smt.Formula.gt (Smt.Formula.tvar "Session.ttl") (Smt.Formula.tint 0);
      ]
  in
  let pc =
    Smt.Formula.conj
      [
        Smt.Formula.neq (Smt.Formula.tvar "Session") Smt.Formula.tnull;
        Smt.Formula.eq (Smt.Formula.tvar "Session.closing") (Smt.Formula.tbool false);
      ]
  in
  (* id-keyed vs string-keyed verdict-memo probes over the same entries:
     the id path probes with the interned formula's int id, the string
     path re-renders the canonical text on every lookup (the
     pre-hash-consing design) *)
  let memo_formulas =
    Array.init 64 (fun i ->
        Smt.Formula.conj
          [
            Smt.Formula.neq (Smt.Formula.tvar (Printf.sprintf "S%d" i)) Smt.Formula.tnull;
            Smt.Formula.gt (Smt.Formula.tvar (Printf.sprintf "S%d.ttl" i)) (Smt.Formula.tint i);
          ])
  in
  let id_tbl : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let str_tbl : (string, bool) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun f ->
      let s = Smt.Formula.simplify f in
      Hashtbl.replace id_tbl (Smt.Formula.id s) true;
      Hashtbl.replace str_tbl (Smt.Formula.to_string s) true)
    memo_formulas;
  let memo_i = ref 0 in
  let next_memo_formula () =
    memo_i := (!memo_i + 1) land 63;
    memo_formulas.(!memo_i)
  in
  let ticket = Corpus.Case.original_ticket (List.hd Corpus.Zookeeper.cases) in
  let tfidf_docs =
    List.map
      (fun (c : Corpus.Case.t) ->
        { Oracle.Tfidf.doc_id = c.Corpus.Case.case_id; text = c.Corpus.Case.source 1 })
      Corpus.Registry.builtin.Corpus.Registry.cases
  in
  [
    Test.make ~name:"parser: zk feature module"
      (Staged.stage (fun () -> ignore (Minilang.Parser.program zk_src)));
    Test.make ~name:"typecheck: zk feature module"
      (Staged.stage (fun () -> ignore (Minilang.Typecheck.check_program zk_prog)));
    Test.make ~name:"interp: zk test suite"
      (Staged.stage (fun () ->
           List.iter
             (fun t -> ignore (Minilang.Interp.run_test zk_prog t))
             (Minilang.Interp.test_names zk_prog)));
    Test.make ~name:"concolic: zk test suite"
      (Staged.stage (fun () ->
           ignore (Symexec.Concolic.run_all zk_prog (Minilang.Interp.test_names zk_prog))));
    Test.make ~name:"callgraph: zk feature module"
      (Staged.stage (fun () -> ignore (Analysis.Callgraph.build zk_prog)));
    Test.make ~name:"smt: complement check"
      (Staged.stage (fun () -> ignore (Smt.Solver.check_trace ~pc ~checker)));
    Test.make ~name:"formula: intern checker (hit path)"
      (Staged.stage (fun () ->
           ignore
             (Smt.Formula.conj
                [
                  Smt.Formula.neq (Smt.Formula.tvar "Session") Smt.Formula.tnull;
                  Smt.Formula.eq (Smt.Formula.tvar "Session.closing") (Smt.Formula.tbool false);
                  Smt.Formula.gt (Smt.Formula.tvar "Session.ttl") (Smt.Formula.tint 0);
                ])));
    Test.make ~name:"memo: id-keyed lookup"
      (Staged.stage (fun () ->
           let f = next_memo_formula () in
           ignore (Hashtbl.find_opt id_tbl (Smt.Formula.id (Smt.Formula.simplify f)))));
    Test.make ~name:"memo: string-keyed lookup"
      (Staged.stage (fun () ->
           let f = next_memo_formula () in
           ignore
             (Hashtbl.find_opt str_tbl (Smt.Formula.to_string (Smt.Formula.simplify f)))));
    Test.make ~name:"inference: ZK-1208 ticket"
      (Staged.stage (fun () -> ignore (Oracle.Inference.infer ticket)));
    Test.make ~name:"tfidf: build corpus index"
      (Staged.stage (fun () -> ignore (Oracle.Tfidf.build tfidf_docs)));
    Test.make ~name:"diff: stage0 vs stage1"
      (Staged.stage (fun () ->
           ignore
             (Diffing.Line_diff.diff ticket.Oracle.Ticket.buggy_source
                ticket.Oracle.Ticket.patched_source)));
    Test.make ~name:"pipeline: learn + enforce (zk-ephemeral)"
      (Staged.stage (fun () ->
           let outcome = Lisa.Pipeline.learn ticket in
           let book =
             Semantics.Rulebook.of_rules ~system:"zookeeper"
               outcome.Lisa.Pipeline.accepted
           in
           ignore (Lisa.Pipeline.enforce zk_prog book)));
  ]

let run_micro () =
  section "B0: Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let test = Test.make_grouped ~name:"lisa" (micro_tests ()) in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-52s %14.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-52s %14s\n" name "n/a")
    (List.sort compare rows)

(* Hash-consed formula core: intern throughput plus the before/after
   verdict-memo key cost, written to BENCH_formula.json.  "before" is the
   pre-interning design — the memo keyed by the canonical rendering of the
   simplified formula, re-rendered on every lookup; "after" keys the same
   table by the interned formula's int id.  Both sides pay the same
   (memoized) simplify, so the delta isolates the key computation. *)
let run_formula () =
  section "formula: hash-consed core — intern throughput, memo key cost";
  let iters = if !smoke_flag then 20_000 else 400_000 in
  let mk i =
    let v s = Smt.Formula.tvar (Printf.sprintf "%s%d" s (i land 63)) in
    Smt.Formula.conj
      [
        Smt.Formula.neq (v "Session") Smt.Formula.tnull;
        Smt.Formula.eq (v "Session.closing") (Smt.Formula.tbool false);
        Smt.Formula.gt (v "Session.ttl") (Smt.Formula.tint (i land 15));
      ]
  in
  let now () = Unix.gettimeofday () in
  (* 1. intern throughput: after warm-up every rebuild is pure hit path *)
  ignore (mk 0);
  let h0 = Smt.Formula.intern_hits () and m0 = Smt.Formula.intern_misses () in
  let t0 = now () in
  for i = 1 to iters do
    ignore (mk i)
  done;
  let intern_ns = 1e9 *. (now () -. t0) /. float_of_int iters in
  let hits = Smt.Formula.intern_hits () - h0
  and misses = Smt.Formula.intern_misses () - m0 in
  (* 2. memo probes: id key vs rendered-string key over the same entries *)
  let formulas = Array.init 64 mk in
  let id_tbl : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let str_tbl : (string, bool) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun f ->
      let s = Smt.Formula.simplify f in
      Hashtbl.replace id_tbl (Smt.Formula.id s) true;
      Hashtbl.replace str_tbl (Smt.Formula.to_string s) true)
    formulas;
  let t1 = now () in
  for i = 1 to iters do
    let f = formulas.(i land 63) in
    ignore (Hashtbl.find_opt id_tbl (Smt.Formula.id (Smt.Formula.simplify f)))
  done;
  let id_ns = 1e9 *. (now () -. t1) /. float_of_int iters in
  let t2 = now () in
  for i = 1 to iters do
    let f = formulas.(i land 63) in
    ignore
      (Hashtbl.find_opt str_tbl (Smt.Formula.to_string (Smt.Formula.simplify f)))
  done;
  let str_ns = 1e9 *. (now () -. t2) /. float_of_int iters in
  let speedup = if id_ns > 0. then str_ns /. id_ns else infinity in
  (* 3. scaling: warm hit-path interning, jobs=1 vs jobs=N over the
     shared sharded table.  Every domain rebuilds the same 64 formulas,
     so after warm-up the whole workload is the lock-free bucket probe;
     throughput should grow near-linearly with domains on multicore
     hardware (the gate below only fires when the machine has the
     cores to show it). *)
  let cores = Domain.recommended_domain_count () in
  let scale_iters = max 1 (iters / 4) in
  let jobs_levels = [ 1; 2; 4; 8 ] in
  let throughput_at jobs =
    let work () =
      for i = 1 to scale_iters do
        ignore (mk i)
      done
    in
    let t0 = now () in
    (if jobs <= 1 then work ()
     else begin
       let ds = List.init (jobs - 1) (fun _ -> Domain.spawn work) in
       work ();
       List.iter Domain.join ds
     end);
    let dt = now () -. t0 in
    if dt > 0. then float_of_int (jobs * scale_iters) /. dt else infinity
  in
  let tps = List.map (fun j -> (j, throughput_at j)) jobs_levels in
  let tp j = List.assoc j tps in
  let scale8 = if tp 1 > 0. then tp 8 /. tp 1 else infinity in
  (* identity gate: a construction on a spawned domain is physically
     the calling domain's construction *)
  let remote = Domain.join (Domain.spawn (fun () -> Array.init 64 mk)) in
  let identity_ok = Array.for_all2 (fun a b -> a == b) formulas remote in
  let scale_gate =
    if !smoke_flag then "skipped (smoke)"
    else if cores < 8 then Printf.sprintf "skipped (%d core(s) < 8)" cores
    else "enforced"
  in
  List.iter
    (fun (j, v) ->
      Printf.printf "scaling: jobs=%d %12.0f constructions/s\n" j v)
    tps;
  Printf.printf "scaling: jobs=8 speedup %.2fx over jobs=1 (%d core(s), %s)\n"
    scale8 cores scale_gate;
  let s = Smt.Formula.intern_stats () in
  Printf.printf "intern: %.0f ns/construction (%d hit(s), %d miss(es))\n"
    intern_ns hits misses;
  Printf.printf
    "tables: %d term(s), %d formula(s), %d string(s) live\n"
    s.Smt.Formula.term_stats.Core.Hc.size s.Smt.Formula.formula_stats.Core.Hc.size
    s.Smt.Formula.string_stats.Core.Hc.size;
  Printf.printf
    "memo key: string-keyed (before) %.0f ns, id-keyed (after) %.0f ns — %.1fx\n"
    str_ns id_ns speedup;
  let oc = open_out "BENCH_formula.json" in
  Printf.fprintf oc
    {|{
  "experiment": "formula",
  "smoke": %b,
  "iters": %d,
  "intern": { "ns_per_construction": %.1f, "hits": %d, "misses": %d,
              "terms": %d, "formulas": %d, "strings": %d },
  "memo_lookup": { "before_string_keyed_ns": %.1f,
                   "after_id_keyed_ns": %.1f,
                   "speedup": %.2f },
  "scaling": { "cores": %d, "per_domain_iters": %d,
               "constructions_per_s": { "jobs1": %.0f, "jobs2": %.0f,
                                        "jobs4": %.0f, "jobs8": %.0f },
               "speedup_jobs8": %.2f, "identity_ok": %b,
               "throughput_gate": "%s" }
}
|}
    !smoke_flag iters intern_ns hits misses
    s.Smt.Formula.term_stats.Core.Hc.size
    s.Smt.Formula.formula_stats.Core.Hc.size
    s.Smt.Formula.string_stats.Core.Hc.size str_ns id_ns speedup cores
    scale_iters (tp 1) (tp 2) (tp 4) (tp 8) scale8 identity_ok scale_gate;
  close_out oc;
  print_endline "wrote BENCH_formula.json";
  if id_ns >= str_ns then (
    prerr_endline "FAIL: id-keyed lookup must beat string-keyed lookup";
    exit 1);
  if not identity_ok then (
    prerr_endline
      "FAIL: cross-domain interning must return physically equal formulas";
    exit 1);
  if scale_gate = "enforced" && scale8 < 4.0 then (
    Printf.eprintf
      "FAIL: jobs=8 intern throughput %.2fx over jobs=1, need >= 4x\n" scale8;
    exit 1)

(* ------------------------------------------------------------------ *)
(* Solver benchmark                                                    *)
(* ------------------------------------------------------------------ *)

(* Incremental trie-driven trace checking vs per-trace from-scratch
   solving, on the E11 trace-check workload (every state-guard rule's
   concolic hits across versions v1/v2/v3/v5).  "from-scratch" resets
   the theory memo and the learned-conflict store before *every* trace —
   a fresh solver per query, the pre-incremental cost model — while the
   incremental leg builds one path-condition trie over all hits and
   walks it with a single assumption context and the verdict cache on —
   the exact configuration the engine's checker runs, every cache cold
   at the start of each timed run.  Verdicts (and models) must be
   byte-identical; the bench fails if they differ, if incremental is
   ever slower, or (non-smoke) if the speedup is below 3x.  Writes
   BENCH_solver.json. *)
let run_solver () =
  section "SOLVER: incremental prefix-sharing vs per-trace from-scratch";
  let registry = Corpus.Registry.builtin in
  let systems =
    if !smoke_flag then [ "zookeeper" ] else registry.Corpus.Registry.systems
  in
  (* the workload: (checker condition, hit) per trace, in engine order *)
  let cases =
    List.concat_map
      (fun system ->
        let book = Lisa.System_scan.learn_system_book ~registry system in
        List.concat_map
          (fun v ->
            let p = Corpus.Registry.program_of registry system ~version:v in
            let g = Analysis.Callgraph.build p in
            List.concat_map
              (fun rule ->
                let pr = Engine.Checker.prepare ~graph:g p rule in
                match Engine.Checker.guard_evidence p pr with
                | None -> []
                | Some (condition, hits) ->
                    List.map (fun h -> (condition, h)) hits)
              (Semantics.Rulebook.rules book))
          registry.Corpus.Registry.scan_versions)
      systems
  in
  let ntraces = List.length cases in
  Printf.printf "workload: %d system(s), %d trace check(s)%s\n\n"
    (List.length systems) ntraces
    (if !smoke_flag then " (smoke)" else "");
  let render = function
    | Smt.Solver.Verified -> "verified"
    | Smt.Solver.Violation m -> "violation " ^ Smt.Solver.model_to_string m
    | Smt.Solver.Undecided r -> "undecided " ^ r
  in
  let fresh_state () =
    Smt.Solver.reset_theory_memo ();
    Smt.Solver.reset_learned ()
  in
  (* per-trace from-scratch: a cold solver for every single query *)
  let run_scratch () =
    List.map
      (fun (condition, h) ->
        fresh_state ();
        let pc = Symexec.Concolic.hit_pc_formula h in
        render (Smt.Solver.check_trace ~pc ~checker:condition))
      cases
  in
  (* incremental: one trie over all traces, one assumption context, the
     verdict cache on (cold) — the engine checker's configuration *)
  let run_incremental () =
    fresh_state ();
    Smt.Memo.reset ();
    let memo_was = Smt.Memo.enabled () in
    Smt.Memo.set_enabled true;
    Fun.protect ~finally:(fun () -> Smt.Memo.set_enabled memo_was)
    @@ fun () ->
    let trie = Smt.Pctrie.create () in
    List.iteri
      (fun i (condition, h) ->
        Smt.Pctrie.add trie
          ~pc:(Symexec.Concolic.hit_pc_snapshot h)
          (i, condition, h))
      cases;
    let results = Array.make (max 1 ntraces) "" in
    let ctx = Smt.Solver.create_context () in
    Smt.Pctrie.walk trie
      ~enter:(fun f -> Smt.Solver.push ctx f)
      ~leave:(fun _ -> Smt.Solver.pop ctx)
      ~leaf:(fun (i, condition, h) ->
        let pc = Symexec.Concolic.hit_pc_formula h in
        results.(i) <-
          render (Smt.Memo.check_trace_in ctx ~pc ~checker:condition));
    (trie, Array.to_list (Array.sub results 0 ntraces))
  in
  let now () = Unix.gettimeofday () in
  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  let repeats = 3 in
  let best f =
    let rec go best_r best_t k =
      if k = 0 then (best_r, best_t)
      else
        let r, t = time f in
        if t < best_t then go r t (k - 1) else go best_r best_t (k - 1)
    in
    let r, t = time f in
    go r t (repeats - 1)
  in
  (* the classic scratch-vs-incremental columns isolate the prefix
     sharing architecture on the full DPLL(T) path, so the pre-solver
     fast path is pinned off here; it gets its own off/on legs below *)
  let fp_was = Smt.Solver.fastpath_enabled () in
  Smt.Solver.set_fastpath_enabled false;
  let push0 = Smt.Solver.assume_push_count ()
  and prop0 = Smt.Solver.propagation_count ()
  and learn0 = Smt.Solver.learned_count () in
  let scratch_verdicts, t_scratch = best run_scratch in
  let (trie, inc_verdicts), t_inc = best run_incremental in
  let pushes = Smt.Solver.assume_push_count () - push0
  and props = Smt.Solver.propagation_count () - prop0
  and learned = Smt.Solver.learned_count () - learn0 in
  Smt.Solver.set_fastpath_enabled fp_was;
  fresh_state ();
  (* fast path off vs on: one counted incremental pass each way.  The
     reduction metric is full DPLL(T) searches actually run; verdicts
     must stay byte-identical (the fast path may only change cost). *)
  let count_full leg =
    let f0 = Smt.Solver.full_solve_count () in
    let r, t = time leg in
    (r, t, Smt.Solver.full_solve_count () - f0)
  in
  Smt.Solver.set_fastpath_enabled false;
  let (_, fp_off_verdicts), t_fp_off, full_off = count_full run_incremental in
  Smt.Solver.set_fastpath_enabled true;
  let saved0 = Smt.Solver.fastpath_saved_count () in
  let (_, fp_on_verdicts), t_fp_on, full_on = count_full run_incremental in
  let fp_saved = Smt.Solver.fastpath_saved_count () - saved0 in
  Smt.Solver.set_fastpath_enabled fp_was;
  fresh_state ();
  let fp_reduction =
    if full_off > 0 then 1. -. (float_of_int full_on /. float_of_int full_off)
    else 0.
  in
  Printf.printf
    "fastpath: %d full solve(s) off, %d on — %.0f%% fewer, %d retired by the \
     ladder\n"
    full_off full_on (100. *. fp_reduction) fp_saved;
  (* scaling: per-trace checking on a *persistent* pool at jobs=1 vs
     jobs=N, every domain sharing the sharded verdict cache, the
     sharded interner, and the batched learned-clause store.  The pool
     is created once per jobs level and reused across the repeat
     measurements — domain spawn cost (milliseconds, which used to
     drown this sub-millisecond workload and made jobs=8 look slower
     than jobs=1) is recorded separately, never folded into batch wall
     time.  Tiny workloads are amplified to >= 1024 checks per batch
     (slot k maps to case k mod n, so the leading slice is the original
     workload for the identity gate).  Verdicts must be byte-identical
     at every width; throughput is gated only on hardware that can show
     scaling, but the no-slowdown gate always runs. *)
  let cores = Domain.recommended_domain_count () in
  let jobs_levels = [ 1; 2; 4; 8 ] in
  let cases_arr = Array.of_list cases in
  let amp = max 1 ((1024 + ntraces - 1) / ntraces) in
  let work = Array.init (amp * ntraces) (fun k -> cases_arr.(k mod ntraces)) in
  let run_batch pool () =
    fresh_state ();
    Smt.Memo.reset ();
    let memo_was = Smt.Memo.enabled () in
    Smt.Memo.set_enabled true;
    Fun.protect ~finally:(fun () -> Smt.Memo.set_enabled memo_was)
    @@ fun () ->
    Engine.Pool.persistent_map pool
      (fun (condition, h) ->
        let pc = Symexec.Concolic.hit_pc_formula h in
        render (Smt.Memo.check_trace ~pc ~checker:condition))
      work
  in
  let par =
    List.map
      (fun j ->
        let pool =
          Engine.Pool.create_persistent ~init:Engine.Domain_ctx.enter
            ~finish:Engine.Domain_ctx.leave ~jobs:j ()
        in
        let r, t = best (run_batch pool) in
        let spawn = Engine.Pool.persistent_spawn_s pool in
        Engine.Pool.shutdown pool;
        (j, Array.to_list (Array.sub r 0 ntraces), t, spawn))
      jobs_levels
  in
  fresh_state ();
  let par_find j = List.find (fun (j', _, _, _) -> j' = j) par in
  let par_t j =
    let _, _, t, _ = par_find j in
    t
  in
  let par_spawn j =
    let _, _, _, s = par_find j in
    s
  in
  let par_identical =
    List.for_all (fun (_, r, _, _) -> r = scratch_verdicts) par
  in
  let par_scale8 =
    if par_t 8 > 0. then par_t 1 /. par_t 8 else infinity
  in
  let par_gate =
    if !smoke_flag then "skipped (smoke)"
    else if cores < 8 then Printf.sprintf "skipped (%d core(s) < 8)" cores
    else "enforced"
  in
  List.iter
    (fun (j, _, t, spawn) ->
      Printf.printf
        "scaling: jobs=%d %8.2f ms/batch (%d check(s); spawn %6.2f ms, \
         excluded)\n"
        j (1000. *. t) (amp * ntraces) (1000. *. spawn))
    par;
  Printf.printf "scaling: jobs=8 speedup %.2fx over jobs=1 (%d core(s), %s)\n"
    par_scale8 cores par_gate;
  let speedup = if t_inc > 0. then t_scratch /. t_inc else infinity in
  Printf.printf "from-scratch: %8.2f ms (%d trace(s), best of %d)\n"
    (1000. *. t_scratch) ntraces repeats;
  Printf.printf "incremental:  %8.2f ms — %.1fx\n" (1000. *. t_inc) speedup;
  Printf.printf
    "trie: %d node(s), %d shared, %d leave(s); %d push(es), %d \
     propagation(s), %d learned conflict(s)\n"
    (Smt.Pctrie.node_count trie)
    (Smt.Pctrie.shared_count trie)
    (Smt.Pctrie.leaf_count trie)
    pushes props learned;
  let oc = open_out "BENCH_solver.json" in
  Printf.fprintf oc
    {|{
  "experiment": "solver",
  "smoke": %b,
  "traces": %d,
  "repeats": %d,
  "trie": { "nodes": %d, "shared": %d, "leaves": %d },
  "incremental_counters": { "assume_pushes": %d, "propagations": %d,
                            "learned_conflicts": %d },
  "wall_s": { "from_scratch": %.6f, "incremental": %.6f },
  "speedup": %.2f,
  "verdicts_identical": %b,
  "fastpath": { "full_solves_off": %d, "full_solves_on": %d,
                "reduction": %.3f, "saved": %d,
                "wall_s_off": %.6f, "wall_s_on": %.6f,
                "verdicts_identical": %b },
  "scaling": { "cores": %d, "batch_checks": %d,
               "wall_s": { "jobs1": %.6f, "jobs2": %.6f,
                           "jobs4": %.6f, "jobs8": %.6f },
               "spawn_s": { "jobs1": %.6f, "jobs2": %.6f,
                            "jobs4": %.6f, "jobs8": %.6f },
               "speedup_jobs8": %.2f, "verdicts_identical": %b,
               "throughput_gate": "%s" }
}
|}
    !smoke_flag ntraces repeats
    (Smt.Pctrie.node_count trie)
    (Smt.Pctrie.shared_count trie)
    (Smt.Pctrie.leaf_count trie)
    pushes props learned t_scratch t_inc speedup
    (scratch_verdicts = inc_verdicts)
    full_off full_on fp_reduction fp_saved t_fp_off t_fp_on
    (fp_off_verdicts = fp_on_verdicts)
    cores (amp * ntraces) (par_t 1) (par_t 2) (par_t 4) (par_t 8)
    (par_spawn 1) (par_spawn 2) (par_spawn 4) (par_spawn 8) par_scale8
    par_identical par_gate;
  close_out oc;
  print_endline "wrote BENCH_solver.json";
  let check cond msg =
    if cond then Printf.printf "OK: %s\n" msg
    else begin
      Printf.printf "FAIL: %s\n" msg;
      exit 1
    end
  in
  check
    (scratch_verdicts = inc_verdicts)
    "verdicts and models byte-identical, incremental vs from-scratch";
  check (t_inc <= t_scratch)
    (Printf.sprintf "incremental never loses (%.2f ms <= %.2f ms)"
       (1000. *. t_inc) (1000. *. t_scratch));
  check par_identical
    "verdicts byte-identical at jobs=1/2/4/8 on the shared caches";
  check
    (fp_off_verdicts = fp_on_verdicts && fp_on_verdicts = inc_verdicts)
    "verdicts byte-identical with the fast path on vs off";
  check (fp_saved > 0)
    (Printf.sprintf "fast path retires queries (%d saved > 0)" fp_saved);
  check (fp_reduction >= 0.25)
    (Printf.sprintf "fast path cuts full solves by %.0f%% >= 25%% (%d -> %d)"
       (100. *. fp_reduction) full_off full_on);
  check
    (par_t 8 <= par_t 1 +. 0.005)
    (Printf.sprintf
       "persistent pool: jobs=8 batch %.2f ms within 5 ms of jobs=1 %.2f ms \
        (spawn cost excluded)"
       (1000. *. par_t 8) (1000. *. par_t 1));
  if not !smoke_flag then
    check (speedup >= 3.0)
      (Printf.sprintf "speedup %.1fx >= 3x on the full workload" speedup);
  if par_gate = "enforced" then
    check (par_scale8 >= 4.0)
      (Printf.sprintf "jobs=8 scaling %.1fx >= 4x over jobs=1" par_scale8)
  else Printf.printf "SKIP: jobs=8 throughput gate (%s)\n" par_gate

(* ------------------------------------------------------------------ *)
(* Serve-daemon benchmark                                              *)
(* ------------------------------------------------------------------ *)

(* The enforcement daemon under a mixed multi-tenant workload, three
   phases over the identical request list:

     cold    — fresh daemon, empty cache dir: every request runs the
               engine from scratch
     warm    — the same daemon again: in-memory response cache +
               Smt.Memo hits
     restart — a *new* daemon process-state warmed only from the disk
               snapshots the cold phase saved: the persistence path

   Gates: warm and restart verdicts byte-identical (verdict_signature)
   to cold, restart actually hits the persisted response cache, warm
   total time never exceeds cold, and a corrupted snapshot falls back
   to a clean cold start instead of crashing.  Writes BENCH_serve.json
   with sustained req/s and p50/p99 latency per phase. *)
let run_serve () =
  section "SERVE: daemon throughput, warm-cache persistence, byte-identity";
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ()) "lisa-bench-serve-cache"
  in
  if Sys.file_exists cache_dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat cache_dir f))
      (Sys.readdir cache_dir)
  else Unix.mkdir cache_dir 0o755;
  let registry = Corpus.Registry.builtin in
  let systems =
    if !smoke_flag then [ "zookeeper" ] else registry.Corpus.Registry.systems
  in
  let versions =
    if !smoke_flag then [ 1; 5 ] else registry.Corpus.Registry.scan_versions
  in
  let tenants = [| "alpha"; "beta"; "gamma" |] in
  let requests =
    List.concat_map
      (fun system ->
        List.mapi
          (fun i version ->
            Printf.sprintf
              "{\"id\":\"%s-v%d\",\"tenant\":\"%s\",\"op\":\"enforce\",\"system\":\"%s\",\"version\":%d}"
              system version
              tenants.(i mod Array.length tenants)
              system version)
          versions)
      systems
  in
  let n = List.length requests in
  Printf.printf "workload: %d request(s), %d system(s), %d tenant(s)%s\n" n
    (List.length systems) (Array.length tenants)
    (if !smoke_flag then " (smoke)" else "");
  let serve_config =
    { Serve.Daemon.default_config with Serve.Daemon.cache_dir = Some cache_dir }
  in
  (* drive the full JSONL path; returns (signature list, latencies ms) *)
  let drive d =
    let lat = Array.make n 0. in
    let sigs =
      List.mapi
        (fun i line ->
          let t0 = Unix.gettimeofday () in
          let resp = Serve.Daemon.handle_line d line in
          lat.(i) <- 1000. *. (Unix.gettimeofday () -. t0);
          Serve.Protocol.verdict_signature resp)
        requests
    in
    (sigs, lat)
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.
    else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let phase name d =
    let sigs, lat = drive d in
    let total = Array.fold_left ( +. ) 0. lat in
    let sorted = Array.copy lat in
    Array.sort compare sorted;
    let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
    let rps = if total > 0. then 1000. *. float_of_int n /. total else 0. in
    Printf.printf
      "%-8s total %8.1f ms   p50 %7.2f ms   p99 %7.2f ms   %8.1f req/s\n" name
      total p50 p99 rps;
    (sigs, total, p50, p99, rps)
  in
  let cold_d = Serve.Daemon.create ~config:serve_config () in
  let cold = phase "cold" cold_d in
  let warm = phase "warm" cold_d in
  let saved = Serve.Daemon.save cold_d in
  Printf.printf "snapshots: %d entrie(s) persisted to %s\n" saved cache_dir;
  let restart_d = Serve.Daemon.create ~config:serve_config () in
  let restart = phase "restart" restart_d in
  let restart_hits = List.assoc "cache_hits" (Serve.Daemon.counters restart_d) in
  (* corruption: stomp the response snapshot, daemon must start cold *)
  let resp_snap = Filename.concat cache_dir "responses.snap" in
  let oc = open_out_bin resp_snap in
  output_string oc "LISA-SNAP garbage not a real header\nrandom bytes";
  close_out oc;
  let corrupt_d = Serve.Daemon.create ~config:serve_config () in
  let corrupt_report = Serve.Daemon.warm_report corrupt_d in
  let corrupt_cold =
    match List.assoc_opt "responses" corrupt_report with
    | Some r -> String.length r >= 4 && String.sub r 0 4 = "cold"
    | None -> false
  in
  let corrupt_serves =
    match Serve.Daemon.handle_line corrupt_d (List.hd requests) with
    | Serve.Protocol.Ok_enforce _ -> true
    | _ -> false
  in
  List.iter
    (fun (k, v) -> Printf.printf "corrupt-snapshot start: %s -> %s\n" k v)
    corrupt_report;
  let sigs_of (s, _, _, _, _) = s in
  let total_of (_, t, _, _, _) = t in
  let warm_identical = sigs_of warm = sigs_of cold in
  let restart_identical = sigs_of restart = sigs_of cold in
  let speedup =
    if total_of warm > 0. then total_of cold /. total_of warm else 0.
  in
  let oc = open_out "BENCH_serve.json" in
  let phase_json (_, total, p50, p99, rps) =
    Printf.sprintf
      "{ \"total_ms\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"req_per_s\": %.1f }"
      total p50 p99 rps
  in
  Printf.fprintf oc
    {|{
  "experiment": "serve",
  "smoke": %b,
  "requests": %d,
  "tenants": %d,
  "cold": %s,
  "warm": %s,
  "restart": %s,
  "warm_speedup": %.1f,
  "restart_cache_hits": %d,
  "warm_verdicts_identical": %b,
  "restart_verdicts_identical": %b,
  "corrupt_snapshot_cold_fallback": %b
}
|}
    !smoke_flag n (Array.length tenants) (phase_json cold) (phase_json warm)
    (phase_json restart) speedup restart_hits warm_identical restart_identical
    (corrupt_cold && corrupt_serves);
  close_out oc;
  print_endline "wrote BENCH_serve.json";
  let check cond msg =
    if cond then Printf.printf "OK: %s\n" msg
    else begin
      Printf.printf "FAIL: %s\n" msg;
      exit 1
    end
  in
  check warm_identical "warm verdicts byte-identical to cold";
  check restart_identical
    "restart-from-snapshot verdicts byte-identical to cold";
  check (restart_hits > 0) "restart served from the persisted response cache";
  check
    (total_of warm <= total_of cold)
    (Printf.sprintf "warm never loses (%.1f ms <= %.1f ms, %.1fx)"
       (total_of warm) (total_of cold) speedup);
  check
    (corrupt_cold && corrupt_serves)
    "corrupted snapshot -> clean cold start, requests still served"

(* ------------------------------------------------------------------ *)
(* Witness-replay triage benchmark                                     *)
(* ------------------------------------------------------------------ *)

(* The E11 workload judged by witness-replay triage, twice:

     clean — the real oracle: every finding must keep a Witnessed or
             Consistent tier (zero-loss: triage never demotes a true
             positive)
     noisy — a fully hallucinating oracle (epsilon 1.0, cross-checking
             off so corrupted rules reach enforcement at all): findings
             of flipped rules are the injected false positives, and
             >= 70% of them must rank Likely-FP, while genuine findings
             in the same noisy run keep their tier

   Plus two structural gates: a disabled triage config leaves the scan
   output byte-identical to no triage at all, and tier assignment is
   deterministic — identical across repeated runs and jobs=1 vs jobs=4
   for a fixed noise seed.  Writes BENCH_triage.json. *)
let run_triage () =
  section "TRIAGE: witness-replay tiers vs a hallucinating oracle";
  let scan ?(noise = Oracle.Inference.no_noise) ?(cross_check = true)
      ?(jobs = 1) ?triage () =
    Lisa.Chaos.reset_shared_state ();
    let config =
      { Lisa.Pipeline.default_config with Lisa.Pipeline.noise; cross_check }
    in
    let engine_config =
      { Engine.Scheduler.default_config with Engine.Scheduler.jobs }
    in
    fst (Lisa.System_scan.run_engine ~config ~engine_config ?triage ())
  in
  (* flatten to (system, version, rule id, tier) rows *)
  let tier_rows results =
    List.concat_map
      (fun (r : Lisa.System_scan.system_result) ->
        List.concat_map
          (fun (vr : Lisa.System_scan.version_row) ->
            List.map
              (fun (id, t) ->
                ( r.Lisa.System_scan.sys_name,
                  vr.Lisa.System_scan.vr_version,
                  id,
                  t ))
              vr.Lisa.System_scan.vr_tiers)
          r.Lisa.System_scan.sys_rows)
      results
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (* the noise marker lands in the rule id before generalization, so a
     corrupted rule reads e.g. HBASE-22380.g29.flip.gen; weakened rules
     stay genuine (their violations are a subset of the baseline's) *)
  let injected id = contains id ".flip." || contains id ".ghost." in
  (* gate 1: disabled triage is invisible — scan output byte-identical *)
  let plain = Lisa.System_scan.print (scan ()) in
  let disabled =
    Lisa.System_scan.print
      (scan ~triage:{ Triage.default_config with Triage.enabled = false } ())
  in
  let disabled_identical = plain = disabled && not (contains plain "[triage:") in
  Printf.printf "disabled-identity: %b\n" disabled_identical;
  (* gate 2: zero-loss on the clean corpus *)
  let clean = tier_rows (scan ~triage:Triage.default_config ()) in
  let count t = List.length (List.filter (fun (_, _, _, t') -> t' = t) clean) in
  let clean_w = count "witnessed" and clean_c = count "consistent" in
  let clean_fp = count "likely-fp" in
  Printf.printf
    "clean corpus: %d finding(s) tiered — %d witnessed, %d consistent, %d \
     likely-fp\n"
    (List.length clean) clean_w clean_c clean_fp;
  (* gate 3: injected-FP demotion per seed under a fully noisy oracle *)
  let seeds = if !smoke_flag then [ 7 ] else [ 7; 11; 13 ] in
  let noisy seed ~jobs =
    tier_rows
      (scan
         ~noise:{ Oracle.Inference.epsilon = 1.0; seed }
         ~cross_check:false ~jobs ~triage:Triage.default_config ())
  in
  let per_seed =
    List.map
      (fun seed ->
        let rows = noisy seed ~jobs:1 in
        let inj = List.filter (fun (_, _, id, _) -> injected id) rows in
        let demoted =
          List.filter (fun (_, _, _, t) -> t = "likely-fp") inj
        in
        let genuine_demoted =
          List.filter
            (fun (_, _, id, t) -> (not (injected id)) && t = "likely-fp")
            rows
        in
        let rate =
          if inj = [] then 0.
          else float_of_int (List.length demoted) /. float_of_int (List.length inj)
        in
        Printf.printf
          "seed %2d: %2d finding(s), %2d injected FP(s), %2d demoted \
           (%.0f%%), %d genuine demoted\n"
          seed (List.length rows) (List.length inj) (List.length demoted)
          (100. *. rate)
          (List.length genuine_demoted);
        (seed, rows, List.length inj, List.length demoted, rate,
         List.length genuine_demoted))
      seeds
  in
  (* gate 4: determinism — repeated run and jobs=4 agree with jobs=1 *)
  let det_seed = List.hd seeds in
  let reference =
    match per_seed with (_, rows, _, _, _, _) :: _ -> rows | [] -> []
  in
  let repeat_same = noisy det_seed ~jobs:1 = reference in
  let jobs4_same = noisy det_seed ~jobs:4 = reference in
  Printf.printf "determinism (seed %d): repeat %b, jobs=4 %b\n" det_seed
    repeat_same jobs4_same;
  let oc = open_out "BENCH_triage.json" in
  Printf.fprintf oc
    {|{
  "experiment": "triage",
  "smoke": %b,
  "clean": { "findings": %d, "witnessed": %d, "consistent": %d, "likely_fp": %d },
  "noisy": [%s],
  "disabled_identical": %b,
  "deterministic": %b
}
|}
    !smoke_flag (List.length clean) clean_w clean_c clean_fp
    (String.concat ", "
       (List.map
          (fun (seed, rows, inj, dem, rate, gd) ->
            Printf.sprintf
              "{ \"seed\": %d, \"findings\": %d, \"injected\": %d, \
               \"demoted\": %d, \"rate\": %.3f, \"genuine_demoted\": %d }"
              seed (List.length rows) inj dem rate gd)
          per_seed))
    disabled_identical (repeat_same && jobs4_same);
  close_out oc;
  print_endline "wrote BENCH_triage.json";
  let check cond msg =
    if cond then Printf.printf "OK: %s\n" msg
    else begin
      Printf.printf "FAIL: %s\n" msg;
      exit 1
    end
  in
  check disabled_identical
    "triage disabled: scan output byte-identical, no tier markers";
  check (clean <> []) "clean corpus: findings were tiered";
  check (clean_fp = 0)
    "zero-loss: no clean-corpus finding demoted to Likely-FP";
  List.iter
    (fun (seed, _, inj, _, rate, gd) ->
      check (inj > 0)
        (Printf.sprintf "seed %d: noise injected false positives" seed);
      check (rate >= 0.7)
        (Printf.sprintf "seed %d: >= 70%% of injected FPs demoted (%.0f%%)"
           seed (100. *. rate));
      check (gd = 0)
        (Printf.sprintf "seed %d: no genuine finding demoted" seed))
    per_seed;
  check repeat_same "tiers identical across repeated runs (fixed seed)";
  check jobs4_same "tiers identical jobs=1 vs jobs=4"

(* ------------------------------------------------------------------ *)
(* Scaling benchmark: synthetic corpora                                *)
(* ------------------------------------------------------------------ *)

(* The seeded procedural generator (Corpus.Synth) at 1x/10x/100x the
   builtin corpus, pushed through the unchanged pipeline:

     generate — registry values from the same seed must be
                byte-identical, and every generated case must pass
                Case.validate
     scan     — whole-system enforcement over every synthetic system:
                zero-loss (each case's planted rule fires at v2 of its
                system and nowhere else; v1/v3 are completely clean),
                a jobs sweep (2/4/8) gated byte-identical to the jobs=1
                reference, and a pre-solver fast path off/on pair gated
                byte-identical with >= 25% fewer full DPLL(T) searches
                at scale 1x (reduction reported at larger scales)
     ci       — gated replay over (a cap of) the generated cases:
                every history blocks exactly its regression stage

   Writes BENCH_scale.json with per-scale throughput, engine cache-hit
   rates, peak heap size, per-width scan times and the fast-path
   full-solve columns.  `--smoke` runs scales 1x/2x with a small CI
   cap — the `make scale-smoke` / `make check` fast path. *)
let run_scale () =
  section "SCALE: seeded synthetic corpora at 1x/10x/100x";
  let seed = 42 in
  let scales = if !smoke_flag then [ 1; 2 ] else [ 1; 10; 100 ] in
  let ci_cap = if !smoke_flag then 8 else 160 in
  let check cond msg =
    if cond then Printf.printf "OK: %s\n" msg
    else begin
      Printf.printf "FAIL: %s\n" msg;
      exit 1
    end
  in
  let now () = Unix.gettimeofday () in
  (* one byte-stable rendering of everything the generator decides:
     assembled sources at every scan version plus the commit history *)
  let registry_signature (r : Corpus.Registry.t) =
    String.concat "\n"
      (List.concat_map
         (fun system ->
           List.map
             (fun v -> Corpus.Registry.source_of r system ~version:v)
             r.Corpus.Registry.scan_versions
           @ List.map
               (fun (v, msg) -> Printf.sprintf "%s@v%d %s" system v msg)
               (Corpus.Registry.history_of r system))
         r.Corpus.Registry.systems)
  in
  let scan ~jobs reg =
    Lisa.Chaos.reset_shared_state ();
    let engine_config =
      { Engine.Scheduler.default_config with Engine.Scheduler.jobs }
    in
    Lisa.System_scan.run_engine ~engine_config ~registry:reg ()
  in
  let rate hits misses =
    let total = hits + misses in
    if total = 0 then 0. else float_of_int hits /. float_of_int total
  in
  let starts_with ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let points =
    List.map
      (fun scale ->
        let t0 = now () in
        let reg = Corpus.Synth.registry ~seed ~scale () in
        let gen_s = now () -. t0 in
        let n_cases = Corpus.Registry.case_count reg in
        let n_systems = List.length reg.Corpus.Registry.systems in
        Printf.printf
          "\n-- scale %dx: %d system(s), %d case(s), generated in %.3f s\n"
          scale n_systems n_cases gen_s;
        (* gate: the generator is a pure function of (seed, scale) *)
        let identical =
          registry_signature reg
          = registry_signature (Corpus.Synth.registry ~seed ~scale ())
        in
        check identical
          (Printf.sprintf
             "scale %dx: same seed regenerates a byte-identical registry"
             scale);
        (* gate: every generated case passes the corpus validator *)
        let invalid =
          List.filter_map
            (fun (c : Corpus.Case.t) ->
              Option.map
                (fun m -> c.Corpus.Case.case_id ^ ": " ^ m)
                (Corpus.Synth.validate_failure c))
            reg.Corpus.Registry.cases
        in
        List.iter (fun m -> Printf.printf "INVALID %s\n" m) invalid;
        check (invalid = [])
          (Printf.sprintf "scale %dx: all %d case(s) pass Case.validate"
             scale n_cases);
        (* scan leg: whole-system enforcement over the synthetic corpus *)
        let t1 = now () in
        let results, stats = scan ~jobs:1 reg in
        let scan_s = now () -. t1 in
        let row system v =
          let sys =
            List.find
              (fun r -> r.Lisa.System_scan.sys_name = system)
              results
          in
          List.find
            (fun vr -> vr.Lisa.System_scan.vr_version = v)
            sys.Lisa.System_scan.sys_rows
        in
        (* zero-loss: every planted rule fires at v2 of its system; the
           clean releases v1/v3 have no findings at all *)
        let missed =
          List.filter_map
            (fun (c : Corpus.Case.t) ->
              let tid =
                (Corpus.Case.original_ticket c).Oracle.Ticket.ticket_id
              in
              if
                List.exists
                  (starts_with ~prefix:tid)
                  (row c.Corpus.Case.system 2).Lisa.System_scan
                    .vr_violating_rules
              then None
              else Some (c.Corpus.Case.case_id ^ ": " ^ tid))
            reg.Corpus.Registry.cases
        in
        List.iter (fun m -> Printf.printf "MISSED at v2: %s\n" m) missed;
        check (missed = [])
          (Printf.sprintf
             "scale %dx: all %d planted bug(s) caught at v2 (zero-loss)"
             scale n_cases);
        let clean_noise =
          List.concat_map
            (fun system ->
              List.concat_map
                (fun v ->
                  List.map
                    (fun id -> Printf.sprintf "%s v%d %s" system v id)
                    (row system v).Lisa.System_scan.vr_violating_rules)
                [ 1; 3 ])
            reg.Corpus.Registry.systems
        in
        List.iter (fun m -> Printf.printf "FALSE POSITIVE: %s\n" m)
          clean_noise;
        check (clean_noise = [])
          (Printf.sprintf
             "scale %dx: clean releases v1/v3 have zero findings" scale);
        (* jobs sweep: pool width must be invisible in the scan output
           at every level; the jobs=1 reference is the main scan above
           (scales 1x and 10x only — the 100x point would multiply the
           most expensive leg).  Per-width wall time is a reported
           column, not a gate: this box may have a single core. *)
        let jobs_sweep =
          if scale <= 10 then
            List.map
              (fun jobs ->
                let t0 = now () in
                let results_j, _ = scan ~jobs reg in
                let t = now () -. t0 in
                check
                  (Lisa.System_scan.print results
                  = Lisa.System_scan.print results_j)
                  (Printf.sprintf
                     "scale %dx: scan output byte-identical jobs=1 vs \
                      jobs=%d"
                     scale jobs);
                (jobs, t))
              [ 2; 4; 8 ]
          else []
        in
        List.iter
          (fun (j, t) ->
            Printf.printf "jobs=%d scan %8.2f s (jobs=1 %8.2f s)\n" j t
              scan_s)
          jobs_sweep;
        (* fast path off vs on at jobs=1: full DPLL(T) searches actually
           run, on byte-identical scan output.  Every shared solver
           cache is reset before each leg so both start cold — the
           verdict memo alone would otherwise hand the second leg a
           free ride. *)
        let fp_point =
          if scale <= 10 then begin
            let fp_leg enabled =
              Smt.Solver.reset_theory_memo ();
              Smt.Solver.reset_learned ();
              Smt.Absdom.reset_memo ();
              let was = Smt.Solver.fastpath_enabled () in
              Smt.Solver.set_fastpath_enabled enabled;
              Fun.protect
                ~finally:(fun () -> Smt.Solver.set_fastpath_enabled was)
              @@ fun () ->
              let f0 = Smt.Solver.full_solve_count ()
              and s0 = Smt.Solver.fastpath_saved_count () in
              let t0 = now () in
              let results_fp, _ = scan ~jobs:1 reg in
              let t = now () -. t0 in
              ( Lisa.System_scan.print results_fp,
                Smt.Solver.full_solve_count () - f0,
                Smt.Solver.fastpath_saved_count () - s0,
                t )
            in
            let out_off, full_off, _, t_off = fp_leg false in
            let out_on, full_on, fp_saved, t_on = fp_leg true in
            check (out_off = out_on)
              (Printf.sprintf
                 "scale %dx: scan output byte-identical, fast path on vs \
                  off"
                 scale);
            let reduction =
              if full_off > 0 then
                1. -. (float_of_int full_on /. float_of_int full_off)
              else 0.
            in
            Printf.printf
              "fastpath: %d full solve(s) off, %d on — %.0f%% fewer, %d \
               retired by the ladder\n"
              full_off full_on (100. *. reduction) fp_saved;
            if scale = 1 then
              check (reduction >= 0.25)
                (Printf.sprintf
                   "scale 1x: fast path cuts full solves by %.0f%% >= \
                    25%% (%d -> %d)"
                   (100. *. reduction) full_off full_on);
            Some (full_off, full_on, reduction, fp_saved, t_off, t_on)
          end
          else None
        in
        (* ci leg: gated replay over (a cap of) the generated histories *)
        let ci_cases =
          List.filteri (fun i _ -> i < ci_cap) reg.Corpus.Registry.cases
        in
        if List.length ci_cases < n_cases then
          Printf.printf "ci: capped at %d of %d case(s)\n"
            (List.length ci_cases) n_cases;
        Lisa.Chaos.reset_shared_state ();
        let t2 = now () in
        let runs = List.map Lisa.Ci.replay ci_cases in
        let ci_s = now () -. t2 in
        let misgated =
          List.filter
            (fun r -> Lisa.Ci.blocked_stages r <> [ 2 ])
            runs
        in
        List.iter
          (fun (r : Lisa.Ci.run) ->
            Printf.printf "MISGATED %s: blocked %s\n" r.Lisa.Ci.case_id
              (String.concat ","
                 (List.map string_of_int (Lisa.Ci.blocked_stages r))))
          misgated;
        check (misgated = [])
          (Printf.sprintf
             "scale %dx: every gated history blocks exactly its \
              regression stage"
             scale);
        let peak_mb =
          float_of_int
            ((Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8))
          /. 1048576.
        in
        let scan_cps =
          if scan_s > 0. then float_of_int n_cases /. scan_s else 0.
        in
        let memo_rate =
          rate stats.Engine.Stats.smt_hits stats.Engine.Stats.smt_misses
        in
        let intern_rate =
          rate stats.Engine.Stats.intern_hits
            stats.Engine.Stats.intern_misses
        in
        Printf.printf
          "gen %8.3f s   scan %8.2f s (%6.1f case/s)   ci %8.2f s (%d \
           case(s))\n"
          gen_s scan_s scan_cps ci_s (List.length ci_cases);
        Printf.printf
          "memo hit rate %.2f   intern hit rate %.2f   peak heap %.1f MB\n"
          memo_rate intern_rate peak_mb;
        let jobs_json =
          match jobs_sweep with
          | [] -> ""
          | sweep ->
              Printf.sprintf ", \"jobs_scaling\": { \"jobs1_scan_s\": %.3f, %s }"
                scan_s
                (String.concat ", "
                   (List.map
                      (fun (j, t) ->
                        Printf.sprintf "\"jobs%d_scan_s\": %.3f" j t)
                      sweep))
        in
        let fp_json =
          match fp_point with
          | None -> ""
          | Some (full_off, full_on, reduction, fp_saved, t_off, t_on) ->
              Printf.sprintf
                ", \"fastpath\": { \"full_solves_off\": %d, \
                 \"full_solves_on\": %d, \"reduction\": %.3f, \"saved\": \
                 %d, \"scan_s_off\": %.3f, \"scan_s_on\": %.3f, \
                 \"output_identical\": true }"
                full_off full_on reduction fp_saved t_off t_on
        in
        Printf.sprintf
          "{ \"scale\": %d, \"systems\": %d, \"cases\": %d, \"gen_s\": \
           %.4f, \"scan_s\": %.3f, \"scan_cases_per_s\": %.1f, \"ci_s\": \
           %.3f, \"ci_cases\": %d, \"memo_hit_rate\": %.3f, \
           \"intern_hit_rate\": %.3f, \"peak_heap_mb\": %.1f%s%s }"
          scale n_systems n_cases gen_s scan_s scan_cps ci_s
          (List.length ci_cases) memo_rate intern_rate peak_mb jobs_json
          fp_json)
      scales
  in
  (* cross-scale gate: case k is scale-independent — the 1x corpus is a
     prefix of every larger one *)
  let reg1 = Corpus.Synth.registry ~seed ~scale:1 () in
  let reg_last =
    Corpus.Synth.registry ~seed ~scale:(List.hd (List.rev scales)) ()
  in
  let prefix_ok =
    List.for_all2
      (fun (a : Corpus.Case.t) (b : Corpus.Case.t) ->
        a.Corpus.Case.case_id = b.Corpus.Case.case_id
        && List.init a.Corpus.Case.n_stages a.Corpus.Case.source
           = List.init b.Corpus.Case.n_stages b.Corpus.Case.source)
      reg1.Corpus.Registry.cases
      (List.filteri
         (fun i _ -> i < Corpus.Registry.case_count reg1)
         reg_last.Corpus.Registry.cases)
  in
  check prefix_ok
    "case k is scale-independent: the 1x corpus is a byte-identical \
     prefix of the largest";
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc
    {|{
  "experiment": "scale",
  "smoke": %b,
  "seed": %d,
  "points": [%s],
  "gates": { "deterministic_registry": true, "all_cases_valid": true,
             "zero_loss_v2": true, "clean_v1_v3": true,
             "jobs_invariant": true, "fastpath_identical": true,
             "ci_gates_regression_stage": true,
             "scale_independent_cases": true }
}
|}
    !smoke_flag seed
    (String.concat ", " points);
  close_out oc;
  print_endline "wrote BENCH_scale.json"

let all_experiments : (string * (unit -> unit)) list =
  [
    ("study", run_study);
    ("zk-ephemeral", run_zk);
    ("comparison", run_comparison);
    ("workflow", run_workflow);
    ("generalize", run_generalize);
    ("unknown-bugs", run_unknown);
    ("ablations", run_ablations);
    ("noise", run_noise);
    ("system-scan", run_system_scan);
    ("composition", run_composition);
    ("ci", run_ci);
    ("engine", run_engine_bench);
    ("chaos", run_chaos);
    ("micro", run_micro);
    ("formula", run_formula);
    ("solver", run_solver);
    ("serve", run_serve);
    ("triage", run_triage);
    ("scale", run_scale);
  ]

let () =
  let rec strip = function
    | [] -> []
    | "--smoke" :: rest ->
        smoke_flag := true;
        strip rest
    | "--trace" :: path :: rest ->
        trace_path := Some path;
        strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip (Array.to_list Sys.argv) in
  if !trace_path <> None then Telemetry.Trace.set_enabled true;
  (match args with
  | _ :: "--experiment" :: name :: _ -> (
      match List.assoc_opt name all_experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst all_experiments));
          exit 1)
  | _ :: "--list" :: _ -> List.iter (fun (n, _) -> print_endline n) all_experiments
  | _ -> List.iter (fun (_, f) -> f ()) all_experiments);
  match !trace_path with
  | None -> ()
  | Some path ->
      Telemetry.Trace.export_to_file path;
      Printf.printf "\ntrace: %d event(s) written to %s\n\n%s"
        (Telemetry.Trace.event_count ())
        path
        (Telemetry.Trace.summary ())
