lib/smt/solver.ml: Formula List Option String Theory
