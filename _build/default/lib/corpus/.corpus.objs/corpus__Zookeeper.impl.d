lib/corpus/zookeeper.ml: Case String
