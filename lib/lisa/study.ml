(** The §2.1 regression study (experiment E1, Figure 1).

    Reproduces the study's headline numbers over the corpus: 16 regression
    cases / 34 bugs across four systems; the share of bugs violating
    semantics older than the first stable release; recurrence intervals;
    and the ephemeral-node feature history (46 bugs over 14 years). *)

type system_row = {
  sr_system : string;
  sr_cases : int;
  sr_bugs : int;
  sr_guard_cases : int;
  sr_lock_cases : int;
  sr_tests : int;  (** test functions in the latest assembled release *)
}

type t = {
  rows : system_row list;
  total_cases : int;
  total_bugs : int;
  old_semantics_bugs : int;
  old_semantics_share : float;
  mean_recurrence_years : float;
  ephemeral_histogram : (int * int) list;
  ephemeral_total : int;
  avg_test_files_paper : int;
}

let run ?(registry = Corpus.Registry.builtin) () : t =
  let rows =
    List.map
      (fun system ->
        let cases = Corpus.Registry.cases_of registry system in
        let latest =
          Corpus.Registry.program_of registry system
            ~version:registry.Corpus.Registry.max_version
        in
        {
          sr_system = system;
          sr_cases = List.length cases;
          sr_bugs = List.fold_left (fun n c -> n + Corpus.Case.n_bugs c) 0 cases;
          sr_guard_cases =
            List.length
              (List.filter (fun (c : Corpus.Case.t) -> c.Corpus.Case.kind = Corpus.Case.Guard) cases);
          sr_lock_cases =
            List.length
              (List.filter (fun (c : Corpus.Case.t) -> c.Corpus.Case.kind = Corpus.Case.Lock) cases);
          sr_tests = List.length (Minilang.Interp.test_names latest);
        })
      registry.Corpus.Registry.systems
  in
  let recurrences =
    List.map
      (fun (c : Corpus.Case.t) ->
        float_of_int (c.Corpus.Case.last_year - c.Corpus.Case.first_year))
      registry.Corpus.Registry.cases
  in
  {
    rows;
    total_cases = Corpus.Registry.case_count registry;
    total_bugs = Corpus.Registry.bug_count registry;
    old_semantics_bugs = Corpus.Registry.old_semantics_count registry;
    old_semantics_share = Corpus.Registry.old_share registry;
    mean_recurrence_years =
      List.fold_left ( +. ) 0.0 recurrences /. float_of_int (List.length recurrences);
    ephemeral_histogram = registry.Corpus.Registry.meta.Corpus.Registry.m_ephemeral_bug_histogram;
    ephemeral_total = Corpus.Registry.ephemeral_total registry;
    avg_test_files_paper = registry.Corpus.Registry.meta.Corpus.Registry.m_avg_test_files;
  }

let print (t : t) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  pf "E1 / Figure 1 — regression study over the incident corpus";
  pf "---------------------------------------------------------";
  pf "%-12s %6s %6s %12s %11s %7s" "system" "cases" "bugs" "guard-cases" "lock-cases"
    "tests";
  List.iter
    (fun r ->
      pf "%-12s %6d %6d %12d %11d %7d" r.sr_system r.sr_cases r.sr_bugs
        r.sr_guard_cases r.sr_lock_cases r.sr_tests)
    t.rows;
  pf "total: %d cases, %d bugs" t.total_cases t.total_bugs;
  pf "bugs violating old semantics: %d/%d = %.0f%% (paper reports 68%%)"
    t.old_semantics_bugs t.total_bugs (100. *. t.old_semantics_share);
  pf "mean recurrence interval: %.1f years" t.mean_recurrence_years;
  pf "";
  pf "ephemeral-node feature history (%d bugs over %d years; paper: 46 over 14):"
    t.ephemeral_total
    (List.length t.ephemeral_histogram);
  List.iter
    (fun (year, n) -> pf "  %d %s" year (String.make n '#'))
    t.ephemeral_histogram;
  pf "";
  pf "test-suite resource (paper: avg %d test files per studied system)"
    t.avg_test_files_paper;
  Buffer.contents buf
