lib/oracle/test_select.mli: Analysis Minilang Semantics Tfidf
