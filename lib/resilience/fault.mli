(** Fault taxonomy: injection points (the unreliable components) and
    fault kinds (how they fail). *)

type point = Solver | Concolic | Oracle | Cache_lookup

type kind = Crash | Budget | Transient

(** Raised by an injection point on [Crash] / [Transient] faults.
    [Budget] never raises: each component degrades it to its own
    "budget exhausted" answer. *)
exception Injected of point * kind

val all_points : point list

val all_kinds : kind list

(** Dense index of a point, for per-point counters. *)
val point_index : point -> int

val n_points : int

val point_to_string : point -> string

val kind_to_string : kind -> string
