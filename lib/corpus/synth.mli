(** Seeded procedural corpus generator: composes the paper's bug-pattern
    families (missing state guard, TTL/expiry check, blocking I/O in
    lock scope, observer staleness) into synthetic MiniJava systems with
    staged histories, matching tickets, diffs, regression tests, and
    green baselines.

    Determinism contract: every artifact is a pure function of
    [(seed, k)] where [k] is the global case index — case [k] is
    byte-identical in every registry containing it, regardless of
    [scale], so [lisa corpus synth --seed N --case K] reproduces any
    generated case exactly.  Same seed ⇒ byte-identical registries. *)

type family = State_guard | Ttl_expiry | Lock_io | Observer_stale

val families : family list

val family_name : family -> string

(** Cases per generated system (one per family). *)
val cases_per_system : int

(** Generated systems per unit of [scale]; a [scale]-x registry holds
    [systems_per_scale * scale] systems, matching the builtin corpus
    case count at scale 1. *)
val systems_per_scale : int

(** {1 Size/shape knobs} — the minimizer's shrink axes *)

type knobs = {
  k_aux_tests : int;  (** 0-2 extra benign tests *)
  k_fixture_extra : int;  (** 0-2 extra healthy fixture entries *)
  k_helper : bool;  (** decorative read-only helper method *)
}

val min_knobs : knobs

(** The knobs case [k] is generated with by default. *)
val knobs_at : seed:int -> int -> knobs

(** {1 Generation} *)

val system_name : seed:int -> int -> string

(** System [i]: [cases_per_system] cases, one per family, with every
    identifier tagged so concatenated whole-system assembly never
    collides. *)
val system : seed:int -> int -> Registry.provider

(** Case [k] (lives in system [k / cases_per_system]); independent of
    any registry scale. *)
val case_at : seed:int -> int -> Case.t

(** A [scale]-x registry ([systems_per_scale * scale] systems,
    [4 * systems_per_scale * scale] cases).  Emits the [corpus.synth]
    telemetry span and the [corpus.synth.cases] counter. *)
val registry : ?seed:int -> scale:int -> unit -> Registry.t

(** {1 Fuzzing} *)

(** [Some reason] when the case fails {!Case.validate} (or validation
    crashes) — the base failure predicate for {!minimize}. *)
val validate_failure : Case.t -> string option

type repro = {
  rp_seed : int;
  rp_case : int;
  rp_knobs : knobs;  (** smallest knob setting that still fails *)
  rp_failure : string;
}

(** Shrink a failing case by greedy knob descent.  [fails] is the
    failure predicate (default {!validate_failure}; pass a
    pipeline-backed one to minimize mis-verdicts).  [None] when case
    [k] passes. *)
val minimize : ?fails:(Case.t -> string option) -> seed:int -> int -> repro option

(** The [lisa corpus synth --seed N --case K] repro line. *)
val repro_command : repro -> string
