(* The paper's running example (Figures 2 and 3), end to end:

   - ZK-1208: an ephemeral node is created on a closing session; Kafka
     consumers keep resolving a dead address ("zombie cluster");
   - the fix adds a guard, and LISA turns the fix into an executable
     contract;
   - one year later a new request path (the learner processor) reaches the
     same creation logic without the guard — the contract flags it before
     it ships.

   Run with: dune exec examples/zookeeper_ephemeral.exe *)

let banner title =
  Fmt.pr "@.=== %s ===@." title

let () =
  let case =
    match Corpus.Registry.find_case "zk-ephemeral" with
    | Some c -> c
    | None -> failwith "corpus case missing"
  in

  banner "1. the incident (ZK-1208)";
  let ticket = Corpus.Case.original_ticket case in
  Fmt.pr "%s@.%s@." (Oracle.Ticket.summary ticket) ticket.Oracle.Ticket.description;

  banner "2. the fix, as a diff";
  print_string (Oracle.Ticket.diff ticket);

  banner "3. inference: the fix becomes a low-level semantic";
  let outcome = Lisa.Pipeline.learn ticket in
  List.iter
    (fun (l : Lisa.Pipeline.stage_log) ->
      Fmt.pr "[%-11s] %s@." l.Lisa.Pipeline.stage l.Lisa.Pipeline.detail)
    outcome.Lisa.Pipeline.log;
  let book =
    Semantics.Rulebook.of_rules ~system:"zookeeper" outcome.Lisa.Pipeline.accepted
  in
  print_endline (Semantics.Rulebook.to_string book);

  banner "4. a year later: the learner path lands (ZK-1496's bug)";
  let regressed = Corpus.Case.program_at case 2 in
  Fmt.pr "the old regression tests still pass:@.";
  List.iter
    (fun t ->
      let ok =
        match Minilang.Interp.run_test regressed t with
        | Minilang.Interp.Passed -> "PASS"
        | Minilang.Interp.Failed _ | Minilang.Interp.Errored _ -> "FAIL"
      in
      Fmt.pr "  %s %s@." ok t)
    ticket.Oracle.Ticket.regression_tests;

  banner "5. but the contract does not";
  let reports = Lisa.Pipeline.enforce regressed book in
  List.iter
    (fun (r : Lisa.Checker.rule_report) ->
      Fmt.pr "%s@." (Lisa.Checker.report_summary r);
      List.iter
        (fun (t : Lisa.Checker.trace_verdict) ->
          match t.Lisa.Checker.tv_result with
          | Smt.Solver.Violation m ->
              Fmt.pr "  VIOLATION in %s@.    trace condition: %s@.    admits: %s@."
                t.Lisa.Checker.tv_method
                (Smt.Formula.to_string t.Lisa.Checker.tv_pc)
                (Smt.Solver.model_to_string m)
          | Smt.Solver.Verified | Smt.Solver.Undecided _ -> ())
        r.Lisa.Checker.rep_violations)
    reports;

  banner "6. what production would have seen (Figure 2)";
  print_endline (Lisa.Experiments.Zk_ephemeral.zombie_scenario ())
