(* Cross-cutting integration tests: multi-ticket learning, the persistent
   interpreter API, pretty-printer statement forms, and checker behaviour
   on the enriched whole-system programs. *)

open Minilang

let zk = List.hd Corpus.Zookeeper.cases

(* ------------------------------------------------------------------ *)
(* Multi-ticket learning                                               *)
(* ------------------------------------------------------------------ *)

let test_learning_accumulates () =
  let book, outcomes =
    Lisa.Pipeline.learn_all ~system:"zookeeper" (Corpus.Case.tickets zk)
  in
  Alcotest.(check int) "two outcomes" 2 (List.length outcomes);
  Alcotest.(check int) "two rules in the book" 2 (Semantics.Rulebook.size book);
  (* the accumulated book is clean on the final stage and flags stage 2 *)
  let flag stage =
    Lisa.Pipeline.findings (Lisa.Pipeline.enforce (Corpus.Case.program_at zk stage) book)
  in
  Alcotest.(check bool) "stage 2 flagged" true (flag 2 <> []);
  Alcotest.(check (list string)) "stage 3 clean" []
    (List.map
       (fun (r : Lisa.Checker.rule_report) -> r.Lisa.Checker.rep_rule.Semantics.Rule.rule_id)
       (flag 3))

let test_second_rule_duplicates_first_semantics () =
  (* both tickets of the ephemeral case teach the same semantic, so the
     second rule's condition is equivalent to the first's *)
  let rules_of t =
    (Lisa.Pipeline.learn t).Lisa.Pipeline.accepted
    |> List.filter_map Semantics.Rule.condition
  in
  match
    (rules_of (Corpus.Case.original_ticket zk), List.map rules_of (Corpus.Case.tickets zk))
  with
  | [ c1 ], [ _; [ c2 ] ] ->
      Alcotest.(check bool) "conditions equivalent" true (Smt.Solver.equivalent c1 c2)
  | _ -> Alcotest.fail "unexpected rule shapes"

(* ------------------------------------------------------------------ *)
(* Persistent interpreter API                                          *)
(* ------------------------------------------------------------------ *)

let test_interp_call_persists_heap () =
  let p =
    Parser.program
      {|
class Counter {
  field n: int = 0;
}
method fresh(): Counter {
  return new Counter();
}
method bump(c: Counter) {
  c.n = c.n + 1;
}
method read(c: Counter): int {
  return c.n;
}
|}
  in
  let st = Interp.create p in
  let c = Interp.call st "fresh" [] in
  ignore (Interp.call st "bump" [ c ]);
  ignore (Interp.call st "bump" [ c ]);
  match Interp.call st "read" [ c ] with
  | Value.V_int 2 -> ()
  | v -> Alcotest.fail ("expected 2, got " ^ Value.to_string v)

let test_interp_call_unknown_function () =
  let p = Parser.program "method f() { }" in
  let st = Interp.create p in
  match Interp.call st "nope" [] with
  | _ -> Alcotest.fail "expected error"
  | exception Interp.Runtime_error (m, _) ->
      Alcotest.(check bool) "names the function" true (Astring_contains.contains m "nope")

(* ------------------------------------------------------------------ *)
(* Pretty-printer statement forms                                      *)
(* ------------------------------------------------------------------ *)

let head_of src =
  let p = Parser.program (Fmt.str "method f(x: int, l: list) { %s }" src) in
  match p.Ast.p_funcs with
  | [ { m_body = st :: _; _ } ] -> Pretty.stmt_head_to_string st
  | _ -> Alcotest.fail "no statement"

let test_stmt_heads () =
  Alcotest.(check string) "decl" "var y: int = x + 1;" (head_of "var y: int = x + 1;");
  Alcotest.(check string) "if head" "if (x > 0) { ... }" (head_of "if (x > 0) { return; }");
  Alcotest.(check string) "if-else head" "if (x > 0) { ... } else { ... }"
    (head_of "if (x > 0) { return; } else { return; }");
  Alcotest.(check string) "while head" "while (x > 0) { ... }"
    (head_of "while (x > 0) { x = x - 1; }");
  Alcotest.(check string) "sync head" "synchronized (l) { ... }"
    (head_of "synchronized (l) { x = 1; }");
  Alcotest.(check string) "throw" {|throw "boom";|} (head_of {|throw "boom";|});
  Alcotest.(check string) "assert" {|assert (x > 0, "positive");|}
    (head_of {|assert (x > 0, "positive");|})

(* head text is what target matching uses, so it must be stable under a
   print/parse cycle *)
let test_stmt_head_stable () =
  let c = zk in
  let p = Corpus.Case.program_at c 3 in
  let reprinted = Parser.program (Pretty.program_to_string p) in
  let heads prog =
    List.concat_map
      (fun (_, m) -> List.map Pretty.stmt_head_to_string (Ast.stmts_of_method m))
      (Ast.methods_of_program prog)
  in
  Alcotest.(check (list string)) "heads stable" (heads p) (heads reprinted)

(* ------------------------------------------------------------------ *)
(* Whole-system checking details                                       *)
(* ------------------------------------------------------------------ *)

let test_uncovered_paths_on_whole_system () =
  (* rules checked against the whole system report uncovered static paths
     when a feature's tests do not reach a cross-feature target; with the
     corpus conventions every target is covered *)
  let book = Lisa.System_scan.learn_system_book "zookeeper" in
  let p = Corpus.Registry.system_program "zookeeper" ~version:3 in
  let reports = Lisa.Pipeline.enforce p book in
  List.iter
    (fun (r : Lisa.Checker.rule_report) ->
      if Semantics.Rule.is_state_guard r.Lisa.Checker.rep_rule then begin
        Alcotest.(check bool)
          (r.Lisa.Checker.rep_rule.Semantics.Rule.rule_id ^ " has targets")
          true
          (r.Lisa.Checker.rep_targets > 0);
        Alcotest.(check bool)
          (r.Lisa.Checker.rep_rule.Semantics.Rule.rule_id ^ " sanity")
          true r.Lisa.Checker.rep_sanity_ok
      end)
    reports

let test_report_on_whole_system_renders () =
  let book = Lisa.System_scan.learn_system_book "hdfs" in
  let p = Corpus.Registry.system_program "hdfs" ~version:2 in
  let md = Lisa.Report.render (Lisa.Pipeline.enforce p book) in
  Alcotest.(check bool) "block verdict" true (Astring_contains.contains md "**BLOCK**");
  Alcotest.(check bool) "multiple rule sections" true
    (Astring_contains.contains md "## Rule HDFS-13924"
    && Astring_contains.contains md "## Rule HDFS-14273")

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "learning accumulates" `Quick test_learning_accumulates;
        Alcotest.test_case "second ticket teaches same semantics" `Quick
          test_second_rule_duplicates_first_semantics;
        Alcotest.test_case "interp call persists heap" `Quick test_interp_call_persists_heap;
        Alcotest.test_case "interp call unknown function" `Quick
          test_interp_call_unknown_function;
        Alcotest.test_case "statement heads" `Quick test_stmt_heads;
        Alcotest.test_case "statement heads stable" `Quick test_stmt_head_stable;
        Alcotest.test_case "whole-system coverage" `Slow test_uncovered_paths_on_whole_system;
        Alcotest.test_case "whole-system report renders" `Slow
          test_report_on_whole_system_renders;
      ] );
  ]
