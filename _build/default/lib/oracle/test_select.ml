(** RAG-style test selection (paper §3.2).

    "Instead of doing execution with random inputs, our tool utilizes
    existing tests to act as our input … our system automatically selects
    relevant tests for each path using LLM-based similarity search over
    test embeddings."

    The deterministic analog: every test function of the subject system is
    embedded with TF-IDF ({!Tfidf}); the *query* for an execution path is
    assembled from the path's call chain, the guard conditions along it,
    and the rule's description — the same signals the paper's LLM is asked
    to summarize ("identify the features involved by this execution path
    and the condition for the feature to take this execution path"). *)

open Minilang

type selection = {
  sel_path : Analysis.Paths.exec_path;
  sel_tests : (string * float) list;  (** test name, similarity score *)
}

(** Build the searchable index over a program's test functions. *)
let index_of_tests (p : Ast.program) : Tfidf.index =
  let docs =
    List.filter_map
      (fun (f : Ast.method_decl) ->
        if
          String.length f.Ast.m_name >= 5
          && String.sub f.Ast.m_name 0 5 = "test_"
        then
          Some
            {
              Tfidf.doc_id = f.Ast.m_name;
              text = f.Ast.m_name ^ "\n" ^ Pretty.method_to_string f;
            }
        else None)
      p.Ast.p_funcs
  in
  Tfidf.build docs

(** The query text describing one execution path. *)
let query_of_path (rule : Semantics.Rule.t) (ep : Analysis.Paths.exec_path) : string
    =
  let chain = String.concat " " ep.Analysis.Paths.ep_chain in
  let decisions =
    ep.Analysis.Paths.ep_decisions
    |> List.map (fun (d : Analysis.Paths.decision) ->
           Pretty.expr_to_string d.Analysis.Paths.d_cond)
    |> String.concat " "
  in
  String.concat " " [ chain; decisions; rule.Semantics.Rule.description ]

(** Select the [k] most relevant tests for each path of an execution tree.
    Returns one selection per path (the concolic engine then uses the union
    of the selected tests as its concrete inputs). *)
let select (p : Ast.program) (rule : Semantics.Rule.t)
    (tree : Analysis.Paths.exec_tree) ~(k : int) : selection list =
  let ix = index_of_tests p in
  List.map
    (fun ep ->
      { sel_path = ep; sel_tests = Tfidf.top_k ix ~query:(query_of_path rule ep) ~k })
    tree.Analysis.Paths.et_paths

(** Union of selected test names across paths, deduplicated, score-sorted. *)
let selected_tests (sels : selection list) : string list =
  let all = List.concat_map (fun s -> s.sel_tests) sels in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
  let rec dedup seen = function
    | [] -> []
    | (name, _) :: rest ->
        if List.mem name seen then dedup seen rest else name :: dedup (name :: seen) rest
  in
  dedup [] sorted

(** Baseline for the E8 ablation: pick [k] tests in declaration order with
    a seeded rotation — "random" but reproducible. *)
let select_random (p : Ast.program) ~(seed : int) ~(k : int) : string list =
  let tests = Interp.test_names p in
  let n = List.length tests in
  if n = 0 then []
  else
    List.init (min k n) (fun i -> List.nth tests ((seed + (i * 7)) mod n))
    |> List.sort_uniq compare
