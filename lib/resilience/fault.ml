(** Fault taxonomy for the injection harness.

    An injection {e point} names a component the enforcement pipeline
    leans on and cannot fully trust: the SMT solver, the concolic
    runner, the LLM oracle, and cache lookups.  A fault {e kind} names
    the way such a component fails in practice: an outright crash, a
    budget that runs out (solver nodes, concolic fuel, oracle tokens),
    or a transient error that a retry may clear.

    The single {!Injected} exception carries both, so callers can
    distinguish retryable faults without a per-component exception
    zoo. *)

type point = Solver | Concolic | Oracle | Cache_lookup

type kind = Crash | Budget | Transient

(** Raised by an injection point when the active plan selects [Crash]
    or [Transient] there ([Budget] never raises: each component maps it
    to its own degraded answer). *)
exception Injected of point * kind

let all_points = [ Solver; Concolic; Oracle; Cache_lookup ]

let all_kinds = [ Crash; Budget; Transient ]

let point_index = function
  | Solver -> 0
  | Concolic -> 1
  | Oracle -> 2
  | Cache_lookup -> 3

let n_points = List.length all_points

let point_to_string = function
  | Solver -> "solver"
  | Concolic -> "concolic"
  | Oracle -> "oracle"
  | Cache_lookup -> "cache"

let kind_to_string = function
  | Crash -> "crash"
  | Budget -> "budget-exhaustion"
  | Transient -> "transient"

let () =
  Printexc.register_printer (function
    | Injected (p, k) ->
        Some (Fmt.str "Resilience.Fault.Injected(%s, %s)" (point_to_string p) (kind_to_string k))
    | _ -> None)
