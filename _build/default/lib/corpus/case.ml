(** Regression-case model for the incident corpus.

    A *case* is one clustered regression from the §2.1 study: an original
    bug, its fix, and at least one later regression that re-violated the
    same low-level semantic on a different path.  Each case carries the
    full source of its feature module at every stage of its history:

    - stage 0: the original buggy version;
    - stage 1: after the first fix (patch + regression test added);
    - stage 2: the system evolved — a new path regressed the semantic;
    - stage 3: after the regression fix;
    - stages 4/5 (three-bug cases only): a further regression and its fix —
      stage 4 is the "latest release" in which LISA finds the
      previously-unknown bug (§4 of the paper).

    Tickets are derived from adjacent stages, so their diffs are real
    diffs of the actual sources. *)

type kind = Guard | Lock

type t = {
  case_id : string;
  system : string;  (** "zookeeper" | "hbase" | "hdfs" | "cassandra" *)
  feature : string;  (** human name of the feature, e.g. "ephemeral nodes" *)
  kind : kind;
  bug_ids : string list;  (** ordered: original bug first *)
  n_stages : int;
  source : int -> string;  (** feature-module source at a stage *)
  ticket_meta : (int * string * string * string) list;
      (** (fix stage, ticket id, title, discussion): the patch that
          produced [stage] from [stage-1] *)
  regression_stages : int list;  (** stages that contain an unfixed regression *)
  latest_stage : int;
  latest_has_unknown_bug : bool;  (** the E6/E7 "new bug in latest release" cases *)
  violating_old_semantics : int;  (** bugs of this case violating old semantics *)
  first_year : int;
  last_year : int;
}

let program_at (c : t) (stage : int) : Minilang.Ast.program =
  Minilang.Parser.program ~file:(Fmt.str "%s@stage%d.mj" c.case_id stage) (c.source stage)

(** Names of regression tests added by the fix landing at [stage]: the
    [test_] functions present at [stage] but not at [stage - 1]. *)
let tests_added_at (c : t) (stage : int) : string list =
  let tests s = Minilang.Interp.test_names (program_at c s) in
  if stage = 0 then tests 0
  else
    let before = tests (stage - 1) in
    List.filter (fun t -> not (List.mem t before)) (tests stage)

(** Ticket for the fix that landed at [stage] (diff of stage-1 → stage). *)
let ticket_at (c : t) (stage : int) : Oracle.Ticket.t option =
  match
    List.find_opt (fun (s, _, _, _) -> s = stage) c.ticket_meta
  with
  | None -> None
  | Some (_, ticket_id, title, discussion) ->
      Some
        (Oracle.Ticket.make ~ticket_id ~system:c.system ~title
           ~description:title
           ~discussion
           ~buggy_source:(c.source (stage - 1))
           ~patched_source:(c.source stage)
           ~regression_tests:(tests_added_at c stage))

(** All tickets of a case, oldest first. *)
let tickets (c : t) : Oracle.Ticket.t list =
  List.filter_map (fun (s, _, _, _) -> ticket_at c s) c.ticket_meta
  |> fun l -> l

(** The ticket for the original incident — what LISA learns from. *)
let original_ticket (c : t) : Oracle.Ticket.t =
  match tickets c with
  | t :: _ -> t
  | [] -> invalid_arg (Fmt.str "case %s has no tickets" c.case_id)

let n_bugs (c : t) : int = List.length c.bug_ids

(** Sanity-check a case definition: all stages parse and typecheck, and
    every stage's test suite is green (bugs in the corpus are latent, like
    the real ones — they escaped the suite). *)
let validate (c : t) : (unit, string) result =
  let rec go stage =
    if stage >= c.n_stages then Ok ()
    else
      match program_at c stage with
      | exception Minilang.Parser.Error (m, loc) ->
          Error (Fmt.str "%s stage %d: parse error %s at %s" c.case_id stage m
                   (Minilang.Loc.to_string loc))
      | p -> (
          match Minilang.Typecheck.check_program p with
          | [] ->
              let failures =
                List.filter_map
                  (fun name ->
                    match Minilang.Interp.run_test p name with
                    | Minilang.Interp.Passed -> None
                    | Minilang.Interp.Failed m -> Some (name ^ ": " ^ m)
                    | Minilang.Interp.Errored m -> Some (name ^ ": " ^ m))
                  (Minilang.Interp.test_names p)
              in
              if failures = [] then go (stage + 1)
              else
                Error
                  (Fmt.str "%s stage %d: failing tests: %s" c.case_id stage
                     (String.concat "; " failures))
          | errs ->
              Error
                (Fmt.str "%s stage %d: type errors: %s" c.case_id stage
                   (Minilang.Typecheck.errors_to_string errs)))
  in
  go 0
