lib/corpus/registry.ml: Case Cassandra Fmt Hbase Hdfs List Minilang String Zookeeper
