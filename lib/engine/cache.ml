(** Generic mutex-protected memo cache with hit/miss counters.

    The engine's report cache is an instance ([string] keys →
    {!Checker.rule_report}); the SMT verdict cache lives one layer down
    in {!Smt.Memo} so that the checker can reach it without depending on
    the engine.  Eviction is by epoch: when the table exceeds its
    capacity it is cleared wholesale — crude, but bounded, allocation-
    free on the hot path, and irrelevant to correctness (a miss merely
    recomputes). *)

type ('k, 'v) t = {
  name : string;
  capacity : int;
  lock : Mutex.t;
  table : ('k, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 1 lsl 16) ~(name : string) () : ('k, 'v) t =
  {
    name;
    capacity;
    lock = Mutex.create ();
    table = Hashtbl.create 256;
    hits = 0;
    misses = 0;
  }

let name t = t.name

(** Counted lookup: bumps the hit or miss counter.  An injection point:
    a cache fault of any kind degrades the lookup to a miss — the engine
    recomputes, it never crashes on a lost cache. *)
let find (t : ('k, 'v) t) (k : 'k) : 'v option =
  match Resilience.Injector.draw Resilience.Fault.Cache_lookup with
  | Some _ ->
      Mutex.lock t.lock;
      t.misses <- t.misses + 1;
      Mutex.unlock t.lock;
      None
  | None ->
      Mutex.lock t.lock;
      let r = Hashtbl.find_opt t.table k in
      (match r with
      | Some _ -> t.hits <- t.hits + 1
      | None -> t.misses <- t.misses + 1);
      Mutex.unlock t.lock;
      r

(** Uncounted lookup (for peeking without skewing statistics). *)
let peek (t : ('k, 'v) t) (k : 'k) : 'v option =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.table k in
  Mutex.unlock t.lock;
  r

let add (t : ('k, 'v) t) (k : 'k) (v : 'v) : unit =
  Mutex.lock t.lock;
  if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
  Hashtbl.replace t.table k v;
  Mutex.unlock t.lock

(** [find_or_add t k compute]: counted lookup, computing and storing on a
    miss.  [compute] runs outside the lock (it may be expensive); a
    concurrent duplicate computation is benign because [compute] is
    deterministic per key. *)
let find_or_add (t : ('k, 'v) t) (k : 'k) (compute : unit -> 'v) : 'v =
  match find t k with
  | Some v -> v
  | None ->
      let v = compute () in
      add t k v;
      v

let with_lock t f =
  Mutex.lock t.lock;
  let r = f () in
  Mutex.unlock t.lock;
  r

let hits t = with_lock t (fun () -> t.hits)

let misses t = with_lock t (fun () -> t.misses)

let size t = with_lock t (fun () -> Hashtbl.length t.table)

let reset t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
