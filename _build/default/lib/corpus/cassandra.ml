(** Mini-Cassandra: three regression families — hinted-handoff TTL,
    gossip generation checks, and index writes under the compaction lock. *)

(* ================================================================== *)
(* Case 14: hinted handoff TTL (synthetic cluster)                     *)
(* ================================================================== *)

module Hint_ttl = struct
  let source stage =
    let guard1 = stage >= 1 in
    let batch = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// Cassandra: hinted handoff
class Hint {
  field target: str;
  field mutation: int;
  field expiryTs: int;
  method init(target: str, mutation: int, expiryTs: int) {
    this.target = target;
    this.mutation = mutation;
    this.expiryTs = expiryTs;
  }
}

class HintService {
  field hints: list;
  field delivered: int = 0;
  field dropped: int = 0;
  method store(h: Hint) {
    listAdd(this.hints, h);
  }
  // common application of a hinted mutation on the target replica
  method applyHint(h: Hint) {
    this.delivered = this.delivered + 1;
  }
  method pendingCount(): int {
    return listSize(this.hints);
  }
  method pendingForTarget(target: str): int {
    var n: int = 0;
    var i: int = 0;
    while (i < listSize(this.hints)) {
      var h: Hint = listGet(this.hints, i);
      if (h.target == target) {
        n = n + 1;
      }
      i = i + 1;
    }
    return n;
  }
  method deliverHint(h: Hint, nowTs: int) {
|};
       ]
      @ (if guard1 then
           [
             {|    if (nowTs > h.expiryTs) {
      // expired hint: applying it would resurrect deleted data
      this.dropped = this.dropped + 1;
      return;
    }|};
           ]
         else [])
      @ [ {|    this.applyHint(h);
  }
|} ]
      @ (if batch then
           [
             (if guard2 then
                {|  method deliverAll(nowTs: int) {
    var i: int = 0;
    while (i < listSize(this.hints)) {
      var h: Hint = listGet(this.hints, i);
      if (nowTs > h.expiryTs) {
        this.dropped = this.dropped + 1;
        i = i + 1;
        continue;
      }
      this.applyHint(h);
      i = i + 1;
    }
  }|}
              else
                {|  method deliverAll(nowTs: int) {
    var i: int = 0;
    while (i < listSize(this.hints)) {
      var h: Hint = listGet(this.hints, i);
      this.applyHint(h);
      i = i + 1;
    }
  }|});
           ]
         else [])
      @ [
          {|}

method makeHints(): HintService {
  var hs: HintService = new HintService();
  hs.store(new Hint("node-b", 10, 1000));
  hs.store(new Hint("node-c", 20, 2000));
  return hs;
}

method test_cas_deliver_fresh_hint() {
  var hs: HintService = makeHints();
  var h: Hint = listGet(hs.hints, 0);
  hs.deliverHint(h, 500);
  assert (hs.delivered == 1, "fresh hint delivered");
}

method test_cas_pending_counts() {
  var hs: HintService = makeHints();
  assert (hs.pendingCount() == 2, "two hints stored");
  assert (hs.pendingForTarget("node-b") == 1, "one hint for node-b");
  assert (hs.pendingForTarget("node-x") == 0, "none for unknown node");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the CASSANDRA-13817 fix
method test_cassandra13817_expired_hint_dropped() {
  var hs: HintService = makeHints();
  var h: Hint = listGet(hs.hints, 0);
  hs.deliverHint(h, 5000);
  assert (hs.delivered == 0, "expired hint not applied");
  assert (hs.dropped == 1, "expired hint dropped");
}
|};
           ]
         else [])
      @ (if batch then
           [
             {|method test_cas_deliver_all_fresh() {
  var hs: HintService = makeHints();
  hs.deliverAll(500);
  assert (hs.delivered == 2, "all fresh hints delivered");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the CASSANDRA-16355 fix
method test_cassandra16355_batch_skips_expired() {
  var hs: HintService = makeHints();
  hs.deliverAll(1500);
  assert (hs.delivered == 1, "only the fresh hint applied");
  assert (hs.dropped == 1, "expired hint dropped in batch");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "cassandra-hint-ttl";
      system = "cassandra";
      feature = "hinted handoff TTL";
      kind = Case.Guard;
      bug_ids = [ "CASSANDRA-13817"; "CASSANDRA-16355" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "CASSANDRA-13817",
            "Expired hints resurrect deleted data",
            "No hint may be applied after its expiry timestamp has passed. Hints \
             older than gc_grace were replayed to recovering replicas and \
             resurrected tombstoned rows. The fix drops hints whose expiry \
             timestamp is in the past." );
          ( 3,
            "CASSANDRA-16355",
            "Bulk hint delivery replays expired hints",
            "No hint may be applied after its expiry timestamp has passed. The \
             bulk delivery path added for node restarts skipped the expiry check \
             performed by single delivery, resurrecting deleted data again. The \
             fix drops expired hints in the batch loop as well." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 2;
      first_year = 2017;
      last_year = 2020;
    }
end

(* ================================================================== *)
(* Case 15: gossip generation checks (synthetic cluster)               *)
(* ================================================================== *)

module Gossip = struct
  let source stage =
    let guard1 = stage >= 1 in
    let ack = stage >= 2 in
    let guard2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// Cassandra: gossip state
class EndpointState {
  field host: str;
  field generation: int;
  field version: int;
  field status: str = "NORMAL";
  method init(host: str, generation: int, version: int) {
    this.host = host;
    this.generation = generation;
    this.version = version;
  }
}

class GossipMessage {
  field host: str;
  field generation: int;
  field version: int;
  field status: str;
  method init(host: str, generation: int, version: int, status: str) {
    this.host = host;
    this.generation = generation;
    this.version = version;
    this.status = status;
  }
}

class Gossiper {
  field endpoints: map;
  field updates: int = 0;
  method addEndpoint(e: EndpointState) {
    mapPut(this.endpoints, e.host, e);
  }
  // common state application
  method applyState(e: EndpointState, m: GossipMessage) {
    e.generation = m.generation;
    e.version = m.version;
    e.status = m.status;
    this.updates = this.updates + 1;
  }
  method statusOf(host: str): str {
    var e: EndpointState = mapGet(this.endpoints, host);
    if (e == null) {
      return "UNKNOWN";
    }
    return e.status;
  }
  method liveCount(): int {
    var hosts: list = mapKeys(this.endpoints);
    var n: int = 0;
    var i: int = 0;
    while (i < listSize(hosts)) {
      var e: EndpointState = mapGet(this.endpoints, listGet(hosts, i));
      if (e.status == "NORMAL") {
        n = n + 1;
      }
      i = i + 1;
    }
    return n;
  }
  method handleSyn(m: GossipMessage) {
    var e: EndpointState = mapGet(this.endpoints, m.host);
    if (e == null) {
      return;
    }
|};
       ]
      @ (if guard1 then
           [
             {|    if (m.generation < e.generation) {
      // restart detection: older generation is stale
      return;
    }|};
           ]
         else [])
      @ [ {|    this.applyState(e, m);
  }
|} ]
      @ (if ack then
           [
             (if guard2 then
                {|  method handleAck(m: GossipMessage) {
    var e: EndpointState = mapGet(this.endpoints, m.host);
    if (e == null) {
      return;
    }
    if (m.generation < e.generation) {
      return;
    }
    this.applyState(e, m);
  }|}
              else
                {|  method handleAck(m: GossipMessage) {
    var e: EndpointState = mapGet(this.endpoints, m.host);
    if (e == null) {
      return;
    }
    this.applyState(e, m);
  }|});
           ]
         else [])
      @ [
          {|}

method makeGossiper(): Gossiper {
  var g: Gossiper = new Gossiper();
  g.addEndpoint(new EndpointState("10.0.0.1", 5, 10));
  return g;
}

method test_cas_gossip_current_generation() {
  var g: Gossiper = makeGossiper();
  g.handleSyn(new GossipMessage("10.0.0.1", 6, 1, "NORMAL"));
  assert (g.updates == 1, "state applied");
  var e: EndpointState = mapGet(g.endpoints, "10.0.0.1");
  assert (e.generation == 6, "generation bumped");
}

method test_cas_gossip_status_queries() {
  var g: Gossiper = makeGossiper();
  assert (g.statusOf("10.0.0.1") == "NORMAL", "initial status");
  assert (g.statusOf("10.9.9.9") == "UNKNOWN", "unknown host");
  assert (g.liveCount() == 1, "one live endpoint");
  g.handleSyn(new GossipMessage("10.0.0.1", 8, 1, "shutdown"));
  assert (g.liveCount() == 0, "shutdown endpoint not live");
}
|};
        ]
      @ (if guard1 then
           [
             {|// regression test added with the CASSANDRA-12653 fix
method test_cassandra12653_stale_generation_ignored() {
  var g: Gossiper = makeGossiper();
  g.handleSyn(new GossipMessage("10.0.0.1", 2, 99, "shutdown"));
  assert (g.updates == 0, "stale syn ignored");
  var e: EndpointState = mapGet(g.endpoints, "10.0.0.1");
  assert (e.status == "NORMAL", "status unchanged");
}
|};
           ]
         else [])
      @ (if ack then
           [
             {|method test_cas_gossip_ack_current() {
  var g: Gossiper = makeGossiper();
  g.handleAck(new GossipMessage("10.0.0.1", 7, 2, "NORMAL"));
  assert (g.updates == 1, "ack applied");
}
|};
           ]
         else [])
      @
      if guard2 then
        [
          {|// regression test added with the CASSANDRA-17121 fix
method test_cassandra17121_stale_ack_ignored() {
  var g: Gossiper = makeGossiper();
  g.handleAck(new GossipMessage("10.0.0.1", 1, 99, "shutdown"));
  assert (g.updates == 0, "stale ack ignored");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "cassandra-gossip-generation";
      system = "cassandra";
      feature = "gossip generation ordering";
      kind = Case.Guard;
      bug_ids = [ "CASSANDRA-12653"; "CASSANDRA-17121" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "CASSANDRA-12653",
            "Stale gossip marks restarted nodes as shutdown",
            "No gossip state from an older generation than the recorded one may be \
             applied. Delayed syn messages from before a node's restart overwrote \
             its fresh state and the cluster marked a healthy node down. The fix \
             ignores messages with an older generation." );
          ( 3,
            "CASSANDRA-17121",
            "Ack path applies stale gossip state",
            "No gossip state from an older generation than the recorded one may be \
             applied. The ack handler added with the gossip rewrite skipped the \
             generation check performed by the syn handler. The fix adds the same \
             check." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2016;
      last_year = 2022;
    }
end

(* ================================================================== *)
(* Case 16: index writes under the compaction lock (synthetic cluster) *)
(* ================================================================== *)

module Compaction_lock = struct
  let source stage =
    let fixed1 = stage >= 1 in
    let anti = stage >= 2 in
    let fixed2 = stage >= 3 in
    String.concat "\n"
      ([
         {|// Cassandra: compaction and secondary-index rebuilds
class CompactionManager {
  field compactions: int = 0;
  field anticompactions: int = 0;
  field generation: int = 1;
  method currentGeneration(): int {
    var g: int = 0;
    synchronized (this) {
      g = this.generation;
    }
    return g;
  }
  method totalOperations(): int {
    return this.compactions + this.anticompactions;
  }
|};
       ]
      @ (if fixed1 then
           [
             {|  method compact() {
    var snapshot: int = 0;
    synchronized (this) {
      snapshot = this.generation;
      this.generation = this.generation + 1;
      this.compactions = this.compactions + 1;
    }
    // index rebuild I/O happens outside the compaction lock (fix)
    writeRecord(snapshot);
    fsync(snapshot);
  }|};
           ]
         else
           [
             {|  method compact() {
    synchronized (this) {
      // rebuilding the index inside the compaction lock stalls reads
      writeRecord(this.generation);
      fsync(this.generation);
      this.generation = this.generation + 1;
      this.compactions = this.compactions + 1;
    }
  }|};
           ])
      @ (if anti then
           [
             (if fixed2 then
                {|  method anticompact(rangeStart: int) {
    var snapshot: int = 0;
    synchronized (this) {
      snapshot = this.generation;
      this.generation = this.generation + 1;
      this.anticompactions = this.anticompactions + 1;
    }
    writeRecord(snapshot);
  }|}
              else
                {|  method anticompact(rangeStart: int) {
    synchronized (this) {
      writeRecord(this.generation);
      this.generation = this.generation + 1;
      this.anticompactions = this.anticompactions + 1;
    }
  }|});
           ]
         else [])
      @ [
          {|}

method test_cas_compact_advances_generation() {
  var cm: CompactionManager = new CompactionManager();
  cm.compact();
  assert (cm.currentGeneration() == 2, "generation advanced");
  assert (cm.compactions == 1, "compaction counted");
}

method test_cas_operation_totals() {
  var cm: CompactionManager = new CompactionManager();
  cm.compact();
  cm.compact();
  assert (cm.totalOperations() == 2, "operations totalled");
}
|};
        ]
      @ (if fixed1 then
           [
             {|// regression test added with the CASSANDRA-14935 fix
method test_cassandra14935_compact_completes() {
  var cm: CompactionManager = new CompactionManager();
  cm.compact();
  cm.compact();
  assert (cm.compactions == 2, "compactions complete");
}
|};
           ]
         else [])
      @ (if anti then
           [
             {|method test_cas_anticompact() {
  var cm: CompactionManager = new CompactionManager();
  cm.anticompact(0);
  assert (cm.anticompactions == 1, "anticompaction performed");
}
|};
           ]
         else [])
      @
      if fixed2 then
        [
          {|// regression test added with the CASSANDRA-18110 fix
method test_cassandra18110_anticompact_completes() {
  var cm: CompactionManager = new CompactionManager();
  cm.anticompact(5);
  assert (cm.anticompactions == 1, "anticompaction completed");
}
|};
        ]
      else [])

  let case : Case.t =
    {
      Case.case_id = "cassandra-compaction-lock";
      system = "cassandra";
      feature = "compaction lock discipline";
      kind = Case.Lock;
      bug_ids = [ "CASSANDRA-14935"; "CASSANDRA-18110" ];
      n_stages = 4;
      source;
      ticket_meta =
        [
          ( 1,
            "CASSANDRA-14935",
            "Index rebuild inside the compaction lock stalls reads",
            "No blocking I/O may be performed while holding the compaction lock. \
             compact rebuilt the secondary index inside the compaction monitor, so \
             reads stalled for the duration of the rebuild on slow disks. The fix \
             snapshots the generation under the lock and performs the I/O outside." );
          ( 3,
            "CASSANDRA-18110",
            "Anticompaction writes under the compaction lock",
            "No blocking I/O may be performed while holding the compaction lock. \
             The anticompaction path added for incremental repair wrote sstables \
             inside the same monitor, recreating the stall. The fix moves the \
             writes outside the lock." );
        ];
      regression_stages = [ 2 ];
      latest_stage = 3;
      latest_has_unknown_bug = false;
      violating_old_semantics = 1;
      first_year = 2018;
      last_year = 2023;
    }
end

let cases : Case.t list = [ Hint_ttl.case; Gossip.case; Compaction_lock.case ]
