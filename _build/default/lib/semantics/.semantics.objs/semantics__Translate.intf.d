lib/semantics/translate.mli: Minilang Smt
