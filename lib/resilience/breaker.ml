(** Per-component circuit breakers.

    A component that keeps tripping is skipped instead of retried
    forever: after [threshold] {e consecutive} failures the breaker
    opens, the next [cooldown] guarded calls are skipped outright (the
    component answers with its degraded value — [Unknown] for the
    solver, a skipped run for concolic, an empty inference for the
    oracle), then one probe call is let through (half-open); a success
    closes the breaker, a failure re-opens it.

    The cooldown is counted in {e calls}, not wall time, so breaker
    behaviour is deterministic for a fixed fault plan.  State is
    per-point, global, and mutex-protected (worker domains share it). *)

type state = Closed | Open_remaining of int  (** calls still to skip *)

type cell = {
  mutable st : state;
  mutable consecutive : int;  (** consecutive failures while closed *)
  mutable trips : int;  (** total times this breaker opened *)
}

let threshold = Atomic.make 5

let cooldown = Atomic.make 20

let configure ?threshold:t ?cooldown:c () =
  Option.iter (fun v -> Atomic.set threshold (max 1 v)) t;
  Option.iter (fun v -> Atomic.set cooldown (max 1 v)) c

let lock = Mutex.create ()

let cells : cell array =
  Array.init Fault.n_points (fun _ -> { st = Closed; consecutive = 0; trips = 0 })

let cell p = cells.(Fault.point_index p)

let with_lock f =
  Mutex.lock lock;
  let r = f () in
  Mutex.unlock lock;
  r

(** [proceed p]: may the component at [p] run?  [false] means the
    breaker is open and the caller must answer degraded.  Decrements the
    open cooldown; the call after the cooldown expires is the half-open
    probe and is allowed through. *)
let proceed (p : Fault.point) : bool =
  with_lock (fun () ->
      let c = cell p in
      match c.st with
      | Closed -> true
      | Open_remaining n when n > 0 ->
          c.st <- Open_remaining (n - 1);
          false
      | Open_remaining _ -> true (* half-open probe *))

let success (p : Fault.point) : unit =
  let closed =
    with_lock (fun () ->
        let c = cell p in
        let was_open = c.st <> Closed in
        c.st <- Closed;
        c.consecutive <- 0;
        was_open)
  in
  if closed then Events.emit (Events.Breaker_closed { point = p })

let failure (p : Fault.point) : unit =
  let opened =
    with_lock (fun () ->
        let c = cell p in
        c.consecutive <- c.consecutive + 1;
        match c.st with
        | Open_remaining _ ->
            (* failed half-open probe: re-open for a full cooldown *)
            c.st <- Open_remaining (Atomic.get cooldown);
            c.trips <- c.trips + 1;
            Some c.consecutive
        | Closed when c.consecutive >= Atomic.get threshold ->
            c.st <- Open_remaining (Atomic.get cooldown);
            c.trips <- c.trips + 1;
            Some c.consecutive
        | Closed -> None)
  in
  match opened with
  | Some consecutive -> Events.emit (Events.Breaker_opened { point = p; consecutive })
  | None -> ()

let is_open (p : Fault.point) : bool =
  with_lock (fun () ->
      match (cell p).st with Closed -> false | Open_remaining _ -> true)

let trips (p : Fault.point) : int = with_lock (fun () -> (cell p).trips)

let total_trips () =
  with_lock (fun () -> Array.fold_left (fun n c -> n + c.trips) 0 cells)

let reset_all () =
  with_lock (fun () ->
      Array.iter
        (fun c ->
          c.st <- Closed;
          c.consecutive <- 0;
          c.trips <- 0)
        cells)
