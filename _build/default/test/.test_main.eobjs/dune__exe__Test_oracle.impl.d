test/test_oracle.ml: Alcotest Analysis Astring_contains Corpus List Minilang Option Oracle QCheck QCheck_alcotest Semantics Smt String
