lib/corpus/registry.mli: Case Minilang
