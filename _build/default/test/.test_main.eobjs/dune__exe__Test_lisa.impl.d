test/test_lisa.ml: Alcotest Astring_contains Corpus Fmt Lisa List Mc Minilang Oracle Semantics Smt String
