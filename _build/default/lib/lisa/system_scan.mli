(** Experiment E11 — whole-system enforcement: one rulebook per system
    (learned from every original incident), enforced on the assembled
    releases v1/v2/v3/v5. *)

type version_row = {
  vr_version : int;
  vr_rules : int;
  vr_violating_rules : string list;  (** rule ids with findings *)
  vr_traces : int;
  vr_branches_total : int;
  vr_branches_recorded : int;
}

type system_result = { sys_name : string; sys_rows : version_row list }

val learn_system_book : ?config:Pipeline.config -> string -> Semantics.Rulebook.t

val scan_version :
  ?config:Pipeline.config -> string -> Semantics.Rulebook.t -> int -> version_row

val run : ?config:Pipeline.config -> unit -> system_result list

val print : system_result list -> string
