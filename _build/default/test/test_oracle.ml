(* Tests for the inference backend (the LLM substitute), the TF-IDF
   embedding model, RAG test selection, prompts and the noise model. *)

let zk_case = List.hd Corpus.Zookeeper.cases

let zk_ticket () = Corpus.Case.original_ticket zk_case

(* ------------------------------------------------------------------ *)
(* Tickets and prompts                                                 *)
(* ------------------------------------------------------------------ *)

let test_ticket_diff_is_real () =
  let t = zk_ticket () in
  let d = Oracle.Ticket.diff t in
  (* the ZK-1208 patch extends the null guard with the closing check *)
  Alcotest.(check bool) "diff removes old guard" true
    (Astring_contains.contains d "-    if (s == null) {");
  Alcotest.(check bool) "diff adds new guard" true
    (Astring_contains.contains d "+    if (s == null || s.isClosing()) {")

let test_ticket_regression_tests_listed () =
  let t = zk_ticket () in
  Alcotest.(check (list string))
    "regression test recorded"
    [ "test_zk1208_create_on_closing_session_rejected" ]
    t.Oracle.Ticket.regression_tests

let test_prompt_structure () =
  let p = Oracle.Prompt.build (zk_ticket ()) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("prompt contains " ^ frag) true
        (Astring_contains.contains p frag))
    [
      "extracts violated low-level semantics";
      "INPUT 1: failure description";
      "INPUT 2: code patch";
      "INPUT 3: source code after the patch";
      "high_level_semantics";
      "condition_statement";
    ];
  Alcotest.(check bool) "token estimate positive" true (Oracle.Prompt.token_estimate p > 100)

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

let test_inference_recovers_paper_rule () =
  let inf = Oracle.Inference.infer (zk_ticket ()) in
  Alcotest.(check int) "one rule" 1 (List.length inf.Oracle.Inference.inf_rules);
  let r = List.hd inf.Oracle.Inference.inf_rules in
  (* the recovered rule is the paper's:
     <session.isClosing == false> createEphemeralNode <> (plus non-null) *)
  (match r.Semantics.Rule.body with
  | Semantics.Rule.State_guard { target; condition } ->
      (match target with
      | Semantics.Rule.Call_to { callee; in_method = Some m } ->
          Alcotest.(check string) "callee" "createEphemeralNode" callee;
          Alcotest.(check string) "method" "PrepRequestProcessor.pRequest2TxnCreate" m
      | _ -> Alcotest.fail "expected a method-scoped call target");
      let c = Smt.Formula.to_string condition in
      Alcotest.(check bool) ("condition has null check: " ^ c) true
        (Astring_contains.contains c "Session != null");
      Alcotest.(check bool) ("condition has closing check: " ^ c) true
        (Astring_contains.contains c "Session.closing != true")
  | Semantics.Rule.Lock_discipline _ -> Alcotest.fail "expected a state guard");
  (* high-level semantics comes from the discussion's first sentence *)
  Alcotest.(check bool) "high-level mentions CLOSING" true
    (Astring_contains.contains inf.Oracle.Inference.inf_high_level "CLOSING")

let test_inference_deterministic () =
  let a = Oracle.Inference.infer (zk_ticket ()) in
  let b = Oracle.Inference.infer (zk_ticket ()) in
  Alcotest.(check (list string)) "same rules"
    (List.map Semantics.Rule.to_string a.Oracle.Inference.inf_rules)
    (List.map Semantics.Rule.to_string b.Oracle.Inference.inf_rules)

let test_inference_lock_case () =
  let t = Corpus.Case.original_ticket (List.nth Corpus.Zookeeper.cases 1) in
  let inf = Oracle.Inference.infer t in
  let locks = List.filter Semantics.Rule.is_lock_rule inf.Oracle.Inference.inf_rules in
  Alcotest.(check bool) "at least one lock rule" true (locks <> []);
  match (List.hd locks).Semantics.Rule.body with
  | Semantics.Rule.Lock_discipline { scope = Semantics.Rule.Lock_specific m } ->
      Alcotest.(check string) "scoped to serializeNode" "SyncRequestProcessor.serializeNode" m
  | _ -> Alcotest.fail "expected a method-specific lock rule"

let test_inference_json_shape () =
  let inf = Oracle.Inference.infer (zk_ticket ()) in
  let json = Oracle.Inference.to_json inf in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("json has " ^ frag) true (Astring_contains.contains json frag))
    [ {|"high_level_semantics"|}; {|"low_level_semantics"|}; {|"target_statement"|};
      {|"condition_statement"|}; {|"reasoning"|} ]

let test_inference_reasoning_anchored () =
  (* the prompt-tuning finding: reasoning links the guard to the intent *)
  let inf = Oracle.Inference.infer (zk_ticket ()) in
  Alcotest.(check bool) "reasoning nonempty" true (inf.Oracle.Inference.inf_reasoning <> []);
  Alcotest.(check bool) "reasoning mentions the added guard" true
    (List.exists
       (fun r -> Astring_contains.contains r "the patch added guard")
       inf.Oracle.Inference.inf_reasoning)

(* ------------------------------------------------------------------ *)
(* Noise model                                                         *)
(* ------------------------------------------------------------------ *)

let test_noise_deterministic () =
  let noise = { Oracle.Inference.epsilon = 0.9; seed = 11 } in
  let a = Oracle.Inference.infer ~noise (zk_ticket ()) in
  let b = Oracle.Inference.infer ~noise (zk_ticket ()) in
  Alcotest.(check (list string)) "seeded noise is reproducible"
    (List.map Semantics.Rule.to_string a.Oracle.Inference.inf_rules)
    (List.map Semantics.Rule.to_string b.Oracle.Inference.inf_rules)

let test_noise_zero_is_identity () =
  let noise = { Oracle.Inference.epsilon = 0.0; seed = 99 } in
  let a = Oracle.Inference.infer ~noise (zk_ticket ()) in
  let b = Oracle.Inference.infer (zk_ticket ()) in
  Alcotest.(check (list string)) "epsilon 0 = clean inference"
    (List.map Semantics.Rule.to_string a.Oracle.Inference.inf_rules)
    (List.map Semantics.Rule.to_string b.Oracle.Inference.inf_rules)

let test_noise_high_epsilon_corrupts () =
  (* with epsilon 1.0 every rule is corrupted for some seed *)
  let corrupted_somewhere =
    List.exists
      (fun seed ->
        let noise = { Oracle.Inference.epsilon = 1.0; seed } in
        let inf = Oracle.Inference.infer ~noise (zk_ticket ()) in
        List.exists
          (fun (r : Semantics.Rule.t) ->
            let id = r.Semantics.Rule.rule_id in
            Astring_contains.contains id ".weak"
            || Astring_contains.contains id ".flip"
            || Astring_contains.contains id ".ghost")
          inf.Oracle.Inference.inf_rules)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "corruption visible at epsilon 1" true corrupted_somewhere

(* ------------------------------------------------------------------ *)
(* TF-IDF and test selection                                           *)
(* ------------------------------------------------------------------ *)

let docs =
  [
    { Oracle.Tfidf.doc_id = "t1"; text = "create ephemeral node closing session" };
    { Oracle.Tfidf.doc_id = "t2"; text = "serialize snapshot under lock writeRecord" };
    { Oracle.Tfidf.doc_id = "t3"; text = "quota exceeded write rejected" };
  ]

let test_tfidf_selects_related () =
  let ix = Oracle.Tfidf.build docs in
  match Oracle.Tfidf.top_k ix ~query:"ephemeral session create" ~k:1 with
  | [ (id, score) ] ->
      Alcotest.(check string) "best doc" "t1" id;
      Alcotest.(check bool) "positive score" true (score > 0.0)
  | _ -> Alcotest.fail "expected one result"

let test_tfidf_cosine_bounds () =
  let ix = Oracle.Tfidf.build docs in
  List.iter
    (fun (_, score) ->
      Alcotest.(check bool) "cosine within [0,1+eps]" true (score >= 0.0 && score <= 1.0001))
    (Oracle.Tfidf.top_k ix ~query:"snapshot lock serialize" ~k:3)

let test_tfidf_self_similarity () =
  let ix = Oracle.Tfidf.build docs in
  match Oracle.Tfidf.top_k ix ~query:(List.hd docs).Oracle.Tfidf.text ~k:3 with
  | (best, score) :: _ ->
      Alcotest.(check string) "self is best" "t1" best;
      Alcotest.(check bool) "self similarity high" true (score > 0.9)
  | [] -> Alcotest.fail "no results"

let test_tfidf_oov_query () =
  let ix = Oracle.Tfidf.build docs in
  List.iter
    (fun (_, score) -> Alcotest.(check (float 0.0001)) "OOV query scores 0" 0.0 score)
    (Oracle.Tfidf.top_k ix ~query:"zzz qqq www" ~k:3)

let prop_tfidf_cosine_symmetric =
  QCheck.Test.make ~count:100 ~name:"cosine is symmetric"
    (QCheck.pair (QCheck.small_list QCheck.printable_string) (QCheck.small_list QCheck.printable_string))
    (fun (ws1, ws2) ->
      let ix = Oracle.Tfidf.build docs in
      let a = Oracle.Tfidf.embed ix (String.concat " " ws1) in
      let b = Oracle.Tfidf.embed ix (String.concat " " ws2) in
      abs_float (Oracle.Tfidf.cosine a b -. Oracle.Tfidf.cosine b a) < 1e-9)

let test_rag_selection_on_corpus () =
  (* the RAG selection for the ephemeral rule must prefer the ephemeral
     tests over the serializer tests when both are present *)
  let c = zk_case in
  let p =
    Minilang.Parser.program
      (c.Corpus.Case.source 2 ^ "\n" ^ (List.nth Corpus.Zookeeper.cases 1).Corpus.Case.source 1)
  in
  let inf = Oracle.Inference.infer (zk_ticket ()) in
  let rule = List.hd inf.Oracle.Inference.inf_rules in
  let g = Analysis.Callgraph.build p in
  let targets = Semantics.Rulebook.resolve_targets p (Option.get (Semantics.Rule.target (Semantics.Rule.generalize rule))) in
  let tree = Analysis.Paths.exec_tree p g (snd (List.hd targets)).Minilang.Ast.sid in
  let sels = Oracle.Test_select.select p rule tree ~k:3 in
  let names = Oracle.Test_select.selected_tests sels in
  Alcotest.(check bool) "selected some tests" true (names <> []);
  Alcotest.(check bool)
    ("top selections are ephemeral tests: " ^ String.concat "," names)
    true
    (List.for_all
       (fun n -> Astring_contains.contains n "eph" || Astring_contains.contains n "zk1208")
       (List.filteri (fun i _ -> i < 2) names))

let test_random_selection_seeded () =
  let p = Corpus.Case.program_at zk_case 2 in
  let a = Oracle.Test_select.select_random p ~seed:3 ~k:2 in
  let b = Oracle.Test_select.select_random p ~seed:3 ~k:2 in
  Alcotest.(check (list string)) "seeded random stable" a b;
  Alcotest.(check int) "k respected" 2 (List.length a)

let suite =
  [
    ( "oracle.ticket",
      [
        Alcotest.test_case "diff is real" `Quick test_ticket_diff_is_real;
        Alcotest.test_case "regression tests listed" `Quick test_ticket_regression_tests_listed;
        Alcotest.test_case "prompt structure" `Quick test_prompt_structure;
      ] );
    ( "oracle.inference",
      [
        Alcotest.test_case "recovers the paper rule" `Quick test_inference_recovers_paper_rule;
        Alcotest.test_case "deterministic" `Quick test_inference_deterministic;
        Alcotest.test_case "lock case" `Quick test_inference_lock_case;
        Alcotest.test_case "json shape" `Quick test_inference_json_shape;
        Alcotest.test_case "reasoning anchored" `Quick test_inference_reasoning_anchored;
      ] );
    ( "oracle.noise",
      [
        Alcotest.test_case "deterministic" `Quick test_noise_deterministic;
        Alcotest.test_case "zero epsilon" `Quick test_noise_zero_is_identity;
        Alcotest.test_case "high epsilon corrupts" `Quick test_noise_high_epsilon_corrupts;
      ] );
    ( "oracle.tfidf",
      [
        Alcotest.test_case "selects related" `Quick test_tfidf_selects_related;
        Alcotest.test_case "cosine bounds" `Quick test_tfidf_cosine_bounds;
        Alcotest.test_case "self similarity" `Quick test_tfidf_self_similarity;
        Alcotest.test_case "out-of-vocabulary query" `Quick test_tfidf_oov_query;
        QCheck_alcotest.to_alcotest prop_tfidf_cosine_symmetric;
        Alcotest.test_case "RAG prefers related tests" `Quick test_rag_selection_on_corpus;
        Alcotest.test_case "seeded random selection" `Quick test_random_selection_seeded;
      ] );
  ]
