lib/lisa/log.ml: Format Logs
