(** Deterministic fingerprints for programs, methods, and enforcement
    jobs.

    All digests are over *canonical printed text* ({!Minilang.Pretty}),
    never over statement ids: sids are assigned by global parse order, so
    an edit in one feature module renumbers every other module — printed
    text is the identity that survives unrelated churn (the same property
    [lib/diffing] relies on).

    The central notion is a rule's {e region}: the set of methods whose
    text can influence the rule's enforcement verdict on a version.

    - For a state-guard rule it is the caller-closure of every method
      holding a resolved target statement (anything that can drive
      execution {e into} the target), closed under reachability (anything
      such a driver can execute on the way), unioned with everything
      reachable from the selected test entries (the concolic inputs).
    - For a lock-discipline rule it is the whole program: the lock-scope
      analysis and the blocking-event sweep both scan every method.

    A job's cache key digests the rule, the checker knobs, the selected
    tests, and the region's method texts — so two versions whose
    difference lies entirely outside a rule's region produce the same key
    and share one enforcement report. *)

open Minilang

(** Whole-program fingerprint: digest of the canonical printed program. *)
let program (p : Ast.program) : string =
  Digest.to_hex (Digest.string (Pretty.program_to_string p))

(** [qname -> canonical text] for every method and top-level function. *)
let methods (p : Ast.program) : (string * string) list =
  List.map
    (fun (cls, m) -> (Ast.qualified_name cls m, Pretty.method_to_string m))
    (Ast.methods_of_program p)

(* caller-closure: every node from which any seed is reachable
   (inclusive), by BFS over the reversed edges *)
let ancestors (g : Analysis.Callgraph.t) (seeds : string list) : string list =
  let seen = Hashtbl.create 16 in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | n :: rest ->
        if Hashtbl.mem seen n then go rest
        else begin
          Hashtbl.add seen n ();
          go (Analysis.Callgraph.callers g n @ rest)
        end
  in
  go seeds;
  Hashtbl.fold (fun n () acc -> n :: acc) seen []

(** The methods whose text can influence a prepared rule's verdict,
    sorted.  See the module doc for the definition. *)
let region (g : Analysis.Callgraph.t) (pr : Checker.prepared) : string list =
  match pr.Checker.prep_kind with
  | Checker.Prep_lock _ -> List.sort_uniq compare g.Analysis.Callgraph.nodes
  | Checker.Prep_guard _ ->
      let target_methods = Checker.prepared_target_methods pr in
      let drivers = ancestors g target_methods in
      let reach seed = Analysis.Callgraph.reachable_from g seed in
      List.sort_uniq compare
        (List.concat_map reach drivers
        @ List.concat_map reach pr.Checker.prep_tests
        @ drivers)

(** Deterministic job id for one (program version, rule) pair. *)
let job_id ~(program_fp : string) ~(rule_id : string) : string =
  Digest.to_hex (Digest.string (program_fp ^ "#" ^ rule_id))

(* Rule-body component of the cache key.  Guard conditions are interned
   formulas, so the formula *id* stands in for the canonical rendering:
   ids are injective on structure within a process (hash-consing), and
   the report cache never outlives the process, so equal key strings
   still imply equal rule bodies — without re-rendering the condition on
   every key computation. *)
let rule_body_tag (r : Semantics.Rule.t) : string =
  match r.Semantics.Rule.body with
  | Semantics.Rule.State_guard { target; condition } ->
      Printf.sprintf "guard:%s#%d"
        (Semantics.Rule.target_spec_to_string target)
        (Smt.Formula.id condition)
  | Semantics.Rule.Lock_discipline { scope } ->
      "lock:" ^ Semantics.Rule.lock_scope_to_string scope

(** The report-cache key of a prepared rule.  Digests: rule identity and
    body (guard conditions by interned formula id — see
    {!rule_body_tag}), checker knobs, resolved target statements,
    selected tests, and the canonical text of every region method.
    Equal keys imply the dynamic phase's inputs are textually identical,
    so reusing the cached report is sound. *)
let job_key ~(config : Checker.config) ~(graph : Analysis.Callgraph.t)
    ~(methods : (string * string) list) (pr : Checker.prepared) : string =
  let buf = Buffer.create 1024 in
  let add s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\x00'
  in
  add (rule_body_tag pr.Checker.prep_rule);
  add pr.Checker.prep_rule.Semantics.Rule.rule_id;
  add (Checker.config_tag config);
  (match pr.Checker.prep_kind with
  | Checker.Prep_guard { pg_targets; _ } ->
      List.iter
        (fun (qname, st) -> add (qname ^ "@" ^ Pretty.stmt_head_to_string st))
        pg_targets
  | Checker.Prep_lock { pl_scope } ->
      add (Semantics.Rule.lock_scope_to_string pl_scope));
  List.iter add pr.Checker.prep_tests;
  List.iter
    (fun qname ->
      add qname;
      match List.assoc_opt qname methods with
      | Some text -> add text
      | None -> add "?")
    (region graph pr);
  Digest.to_hex (Digest.string (Buffer.contents buf))
