(** Deterministic inference backend — the LLM substitute.

    Interface-compatible with the paper's two-phase LLM inference
    (Listing 1): input is a {!Ticket.t} bundle, output is the JSON-shaped
    {!inferred} record with high-level semantics, low-level semantics
    (description + condition statement + target statement) and reasoning.

    Internally, instead of a language model, the backend runs the same
    analysis an experienced developer performs (and that the paper prompts
    the LLM to walk through):

    1. *root cause*: the structural diff of the fix
       ({!Diffing.Prog_diff.compare_programs}) — which guards the patch
       added and what they protect, and which blocking operations the
       patch moved out of lock scopes;
    2. *high-level semantics*: the first sentence of the developer
       discussion (tickets state the violated property up front);
    3. *low-level semantics*: for each added guard, the contract
       [<guard condition> protected statement <>], translated into a
       checker formula via {!Semantics.Translate} (observer inlining +
       class-canonical naming = the paper's normalization);
    4. *lock rules*: blocking-under-lock violations present in the buggy
       version and absent after the patch become lock-discipline rules.

    A configurable {!noise} model reintroduces the two LLM failure modes
    the paper's §5 worries about — non-determinism and hallucination — so
    the open-question experiment (E9) can quantify how the downstream
    cross-checking catches them. *)

open Minilang

type inferred = {
  inf_ticket : string;
  inf_high_level : string;
  inf_rules : Semantics.Rule.t list;
  inf_reasoning : string list;
}

(** LLM-style failure injection.  [epsilon] is the per-rule corruption
    probability; the generator is a deterministic LCG seeded from [seed]
    and the ticket id, so experiments are reproducible. *)
type noise = { epsilon : float; seed : int }

let no_noise = { epsilon = 0.0; seed = 0 }

(* deterministic LCG; numerical recipes constants *)
let lcg_next s = (s * 1664525) + 1013904223

let hash_string (s : string) : int =
  let h = ref 5381 in
  String.iter (fun c -> h := (!h * 33) + Char.code c) s;
  abs !h

(* draw a float in [0,1) and the next state *)
let draw (s : int) : float * int =
  let s' = lcg_next s in
  (float_of_int (abs s' mod 1_000_000) /. 1_000_000.0, s')

(* ------------------------------------------------------------------ *)
(* Rule extraction                                                     *)
(* ------------------------------------------------------------------ *)

let first_sentence (s : string) : string =
  match String.index_opt s '.' with
  | Some i -> String.sub s 0 (i + 1)
  | None -> s

let split_qname (qname : string) : string option * string =
  match String.index_opt qname '.' with
  | Some i ->
      (Some (String.sub qname 0 i), String.sub qname (i + 1) (String.length qname - 1 - i))
  | None -> (None, qname)

let find_method (p : Ast.program) (qname : string) :
    (Ast.class_decl option * Ast.method_decl) option =
  let cls_name, m_name = split_qname qname in
  match cls_name with
  | Some c -> (
      match Ast.find_class p c with
      | Some cls -> (
          match Ast.find_method_in_class cls m_name with
          | Some m -> Some (Some cls, m)
          | None -> None)
      | None -> None)
  | None -> (
      match Ast.find_func p m_name with Some m -> Some (None, m) | None -> None)

(* choose the target statement a guard protects *)
let target_of_guard (g : Diffing.Prog_diff.added_guard) : Semantics.Rule.target_spec option =
  let callees st =
    List.filter (fun c -> not (Builtins.is_builtin c)) (Ast.callees_of_stmt st)
  in
  let rec pick = function
    | [] -> None
    | st :: rest -> (
        match callees st with
        | callee :: _ ->
            Some
              (Semantics.Rule.Call_to
                 { callee; in_method = Some g.Diffing.Prog_diff.g_method })
        | [] -> (
            (* builtin call (mapPut, ...) is still a valid anchor *)
            match Ast.callees_of_stmt st with
            | callee :: _ ->
                Some
                  (Semantics.Rule.Call_to
                     { callee; in_method = Some g.Diffing.Prog_diff.g_method })
            | [] -> pick rest))
  in
  match pick g.Diffing.Prog_diff.g_protected with
  | Some t -> Some t
  | None -> (
      match g.Diffing.Prog_diff.g_protected with
      | st :: _ -> Some (Semantics.Rule.Stmt_text (Pretty.stmt_head_to_string st))
      | [] -> None)

let state_guard_rules (t : Ticket.t) (high_level : string) :
    Semantics.Rule.t list * string list =
  let buggy = Ticket.buggy_program t in
  let patched = Ticket.patched_program t in
  let d = Diffing.Prog_diff.compare_programs buggy patched in
  let guards = Diffing.Prog_diff.all_added_guards d in
  let reasoning = ref [] in
  let rules =
    List.filter_map
      (fun (g : Diffing.Prog_diff.added_guard) ->
        match find_method patched g.Diffing.Prog_diff.g_method with
        | None -> None
        | Some (cls, m) -> (
            let env = Semantics.Translate.env_of_method patched cls m in
            let early = g.Diffing.Prog_diff.g_kind = Diffing.Prog_diff.Early_exit in
            match
              Semantics.Translate.guard_condition env ~early_exit:early
                g.Diffing.Prog_diff.g_cond
            with
            | None -> None
            | Some condition -> (
                match target_of_guard g with
                | None -> None
                | Some target ->
                    let target_desc = Semantics.Rule.target_spec_to_string target in
                    reasoning :=
                      Fmt.str
                        "the patch added guard `if (%s)` (%s) in %s; the protected \
                         statement %s must only execute when %s holds"
                        (Pretty.expr_to_string g.Diffing.Prog_diff.g_cond)
                        (if early then "early-exit" else "wrapper")
                        g.Diffing.Prog_diff.g_method target_desc
                        (Smt.Formula.to_string condition)
                      :: !reasoning;
                    Some
                      (Semantics.Rule.make
                         ~rule_id:
                           (Fmt.str "%s.g%d" t.Ticket.ticket_id
                              g.Diffing.Prog_diff.g_sid)
                         ~description:
                           (Fmt.str "no execution may reach [%s] unless %s"
                              target_desc
                              (Smt.Formula.to_string condition))
                         ~high_level ~origin:t.Ticket.ticket_id
                         (Semantics.Rule.State_guard { target; condition })))))
      guards
  in
  (rules, List.rev !reasoning)

let lock_rules (t : Ticket.t) (high_level : string) :
    Semantics.Rule.t list * string list =
  let buggy = Ticket.buggy_program t in
  let patched = Ticket.patched_program t in
  let key (v : Analysis.Lockscope.violation) =
    (v.Analysis.Lockscope.v_method, v.Analysis.Lockscope.v_op)
  in
  let before = List.map key (Analysis.Lockscope.analyze buggy) in
  let after = List.map key (Analysis.Lockscope.analyze patched) in
  let fixed = List.filter (fun k -> not (List.mem k after)) before in
  let fixed = List.sort_uniq compare fixed in
  let rules =
    List.mapi
      (fun i (meth, op) ->
        Semantics.Rule.make
          ~rule_id:(Fmt.str "%s.l%d" t.Ticket.ticket_id i)
          ~description:
            (Fmt.str "method %s must not perform blocking operation %s while holding a lock"
               meth op)
          ~high_level ~origin:t.Ticket.ticket_id
          (Semantics.Rule.Lock_discipline { scope = Semantics.Rule.Lock_specific meth }))
      fixed
  in
  let reasoning =
    List.map
      (fun (meth, op) ->
        Fmt.str
          "the patch removed blocking operation %s from a synchronized region of %s; \
           the invariant is a lock discipline, not a state predicate"
          op meth)
      fixed
  in
  (rules, reasoning)

(* ------------------------------------------------------------------ *)
(* Noise injection                                                     *)
(* ------------------------------------------------------------------ *)

(* corrupt one rule the way a hallucinating LLM would *)
let corrupt_rule (kind : int) (r : Semantics.Rule.t) : Semantics.Rule.t =
  match r.Semantics.Rule.body with
  | Semantics.Rule.State_guard { target; condition } -> (
      match kind mod 3 with
      | 0 ->
          (* drop a conjunct: plausible-sounding but weaker rule *)
          let condition' =
            match Smt.Formula.view condition with
            | Smt.Formula.And (_ :: rest) when rest <> [] -> Smt.Formula.conj rest
            | _ -> condition
          in
          {
            r with
            Semantics.Rule.rule_id = r.Semantics.Rule.rule_id ^ ".weak";
            body = Semantics.Rule.State_guard { target; condition = condition' };
          }
      | 1 ->
          (* flip the polarity: confidently wrong *)
          {
            r with
            Semantics.Rule.rule_id = r.Semantics.Rule.rule_id ^ ".flip";
            body =
              Semantics.Rule.State_guard
                { target; condition = Smt.Formula.nnf (Smt.Formula.negate condition) };
          }
      | _ ->
          (* retarget to a nonexistent callee: the rule silently checks nothing *)
          {
            r with
            Semantics.Rule.rule_id = r.Semantics.Rule.rule_id ^ ".ghost";
            body =
              Semantics.Rule.State_guard
                {
                  target =
                    Semantics.Rule.Call_to
                      { callee = "hallucinatedMethod"; in_method = None };
                  condition;
                };
          })
  | Semantics.Rule.Lock_discipline _ -> r

let apply_noise (noise : noise) (ticket_id : string) (rules : Semantics.Rule.t list)
    : Semantics.Rule.t list =
  if noise.epsilon <= 0.0 then rules
  else
    let s = ref (lcg_next (noise.seed + hash_string ticket_id)) in
    List.map
      (fun r ->
        let p, s' = draw !s in
        s := s';
        if p < noise.epsilon then (
          let k, s'' = draw !s in
          s := s'';
          corrupt_rule (int_of_float (k *. 3.0)) r)
        else r)
      rules

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** The degraded answer an unavailable oracle gives: no rules, reason
    recorded.  Downstream cross-checking accepts nothing from it, so an
    oracle outage shrinks the rulebook instead of crashing learning. *)
let degraded_inference (t : Ticket.t) (reason : string) : inferred =
  Resilience.Events.emit
    (Resilience.Events.Component_degraded
       { component = "oracle:" ^ t.Ticket.ticket_id; reason });
  {
    inf_ticket = t.Ticket.ticket_id;
    inf_high_level = Fmt.str "(oracle degraded: %s)" reason;
    inf_rules = [];
    inf_reasoning = [ reason ];
  }

(** Run inference on one ticket.  Deterministic for a fixed [noise].

    The oracle is an injection point ({!Resilience.Fault.Oracle}):
    crash/transient faults raise {!Resilience.Fault.Injected} (the
    learning pipeline retries, then degrades); budget faults and an
    open breaker return a {!degraded_inference} with no rules. *)
let infer ?(noise = no_noise) (t : Ticket.t) : inferred =
  Telemetry.Trace.with_span ~cat:"oracle"
    ~args:[ ("ticket", t.Ticket.ticket_id) ]
    "oracle.infer"
  @@ fun () ->
  if not (Resilience.Breaker.proceed Resilience.Fault.Oracle) then
    degraded_inference t "oracle circuit open"
  else
    match Resilience.Injector.draw Resilience.Fault.Oracle with
    | Some (Resilience.Fault.Crash | Resilience.Fault.Transient) as k ->
        Resilience.Injector.raise_fault Resilience.Fault.Oracle (Option.get k)
    | Some Resilience.Fault.Budget ->
        Resilience.Breaker.failure Resilience.Fault.Oracle;
        degraded_inference t "injected budget exhaustion"
    | None ->
        let high_level = first_sentence t.Ticket.discussion in
        let guard_rules, guard_reasoning = state_guard_rules t high_level in
        let lock_rules, lock_reasoning = lock_rules t high_level in
        let rules = apply_noise noise t.Ticket.ticket_id (guard_rules @ lock_rules) in
        Resilience.Breaker.success Resilience.Fault.Oracle;
        {
          inf_ticket = t.Ticket.ticket_id;
          inf_high_level = high_level;
          inf_rules = rules;
          inf_reasoning = guard_reasoning @ lock_reasoning;
        }

(** Pluggable client type: a real LLM backend would map the prompt text to
    the same structured output. *)
type client = Ticket.t -> inferred

let default_client : client = fun t -> infer t

(* ------------------------------------------------------------------ *)
(* JSON rendering (the exact output format of Listing 1)               *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rule_to_json (r : Semantics.Rule.t) : string =
  let target, condition =
    match r.Semantics.Rule.body with
    | Semantics.Rule.State_guard { target; condition } ->
        (Semantics.Rule.target_spec_to_string target, Smt.Formula.to_string condition)
    | Semantics.Rule.Lock_discipline { scope } ->
        (Semantics.Rule.lock_scope_to_string scope, "no blocking call while holding a monitor")
  in
  Fmt.str
    {|{"description": "%s", "target_statement": "%s", "condition_statement": "%s"}|}
    (json_escape r.Semantics.Rule.description)
    (json_escape target) (json_escape condition)

let to_json (inf : inferred) : string =
  Fmt.str
    {|{"high_level_semantics": "%s",
 "low_level_semantics": [%s],
 "reasoning": "%s"}|}
    (json_escape inf.inf_high_level)
    (String.concat ",\n   " (List.map rule_to_json inf.inf_rules))
    (json_escape (String.concat " | " inf.inf_reasoning))
