(** Concrete interpreter for MiniJava — the "JVM" subject systems run on.

    Maintains a heap, a logical clock, the set of monitors held by
    enclosing [synchronized] blocks, and an event stream delivered through
    an optional hook.  Execution is deterministic and total given finite
    fuel. *)

type event =
  | Ev_stmt of int  (** statement [sid] about to execute *)
  | Ev_call of { qname : string; depth : int }
  | Ev_return of { qname : string; depth : int }
  | Ev_branch of { sid : int; taken : bool; cond_text : string }
  | Ev_lock of { sid : int; addr : int }
  | Ev_unlock of { sid : int; addr : int }
  | Ev_blocking of { sid : int; op : string; locks_held : int list }
  | Ev_throw of { sid : int; payload : string }
  | Ev_output of string

exception Mini_throw of Value.t
(** a MiniJava [throw] that escaped to the host *)

exception Runtime_error of string * Loc.t

exception Out_of_fuel

exception Assertion_failure of string * int
(** message, sid of the failing [assert] *)

type config = {
  fuel : int;  (** maximum number of statements to execute *)
  on_event : (event -> unit) option;
  max_call_depth : int;
}

val default_config : config

type state = {
  program : Ast.program;
  heap : Value.heap;
  mutable clock : int;
  mutable fuel_left : int;
  mutable locks : int list;  (** held monitors, innermost first *)
  mutable depth : int;
  console : Buffer.t;
  logbuf : Buffer.t;
  config : config;
}

val create : ?config:config -> Ast.program -> state

(** Call a top-level function against an existing state (heap and clock
    persist across calls); used by the bounded scenario model checker. *)
val call : state -> string -> Value.t list -> Value.t

(** Run a top-level function in a fresh state; returns the final state and
    the function's value. *)
val run_function :
  ?config:config -> Ast.program -> string -> Value.t list -> state * Value.t

(** {2 Bounded replay entry points}

    Structured-outcome wrappers used by witness-replay triage (and usable
    by any harness that must never hang): fuel or call-depth exhaustion is
    an explicit [Call_exhausted] outcome rather than a host exception. *)

type call_outcome =
  | Call_returned of Value.t
  | Call_threw of string  (** a MiniJava [throw] escaped the call *)
  | Call_error of string  (** runtime error or assertion failure *)
  | Call_exhausted  (** fuel or call-depth budget spent: inconclusive *)

val call_outcome_to_string : call_outcome -> string

(** Allocate a default-initialized object of a class without running its
    [init] method, so callers can populate fields explicitly. *)
val alloc_object : state -> string -> Value.t

(** Call a top-level function under a structured budget.  [?fuel] resets
    the state's remaining fuel before the call. *)
val call_bounded : ?fuel:int -> state -> string -> Value.t list -> call_outcome

(** Call [meth] on receiver [recv] (class resolved from the runtime
    object) under the same structured budget. *)
val method_call_bounded :
  ?fuel:int -> state -> recv:Value.t -> meth:string -> Value.t list ->
  call_outcome

type test_outcome =
  | Passed
  | Failed of string  (** assertion failure *)
  | Errored of string  (** uncaught throw, runtime error, or fuel *)

(** Run a [test_*] function and classify the outcome like a CI job. *)
val run_test : ?config:config -> Ast.program -> string -> test_outcome

(** Names of the program's [test_*] top-level functions. *)
val test_names : Ast.program -> string list
