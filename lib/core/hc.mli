(** Generic hash-cons tables, sharded for contention-free hot paths.

    A table maps *shallow nodes* (whose children, if any, are already
    interned) to unique *elements* carrying a per-node id and the node's
    precomputed structural hash.  Interning the same node twice returns
    the physically same element, so for hash-consed types physical
    equality coincides with structural equality and [equal]/[hash]/
    [compare] are O(1).

    Invariants:
    - ids are unique per table and never reused (allocated from one
      atomic per-table counter), so id equality implies structural
      equality for the table's whole lifetime;
    - entries are never evicted — eviction would allow two live,
      structurally equal elements with different ids, breaking the
      physical-equality invariant.  Tables grow monotonically, bounded
      by the number of distinct nodes built in the process;
    - ids depend on interning order and therefore on scheduling under
      the engine's domain pool.  Never let ids influence output
      ordering or anything compared across processes; the caller's
      [hkey] (structural, deterministic) is the cross-run-stable hash.

    Thread safety and scaling: the table is split into 16 shards
    selected by the low bits of [hkey], each with its own mutex, so
    interns from different domains only contend when they hash into
    the same shard.  The read path probes an immutable bucket snapshot
    (atomic loads, no lock); only a miss falls back to the shard-locked
    insert path, which re-probes before building.  Hit/miss counters
    are atomics, so [stats] never blocks an interning domain.  Under a
    serial schedule ([--jobs 1]) interning order — and therefore every
    assigned id — is identical to the historic single-mutex design. *)

type stats = { hits : int; misses : int; size : int }

type ('node, 'elt) t

(** [create ~name ~equal ~build ()] — [equal] is *shallow* equality
    between a candidate node and a stored element (children compared
    physically); [build ~id ~hkey node] constructs the element for a
    fresh node.  [name] keys the table in {!registry}. *)
val create :
  name:string ->
  equal:('node -> 'elt -> bool) ->
  build:(id:int -> hkey:int -> 'node -> 'elt) ->
  unit ->
  ('node, 'elt) t

(** [intern t ~hkey node] returns the unique element for [node], building
    it on first sight.  [hkey] must be a deterministic structural hash of
    [node] (computed from the children's stored hashes). *)
val intern : ('node, 'elt) t -> hkey:int -> 'node -> 'elt

val name : _ t -> string

val stats : _ t -> stats

(** Hit/miss/size of every table created so far, in creation order. *)
val registry : unit -> (string * stats) list

(** Shard-lock acquisitions that found the mutex already held, summed
    over every table in the process — the backpressure signal surfaced
    as the [core.shard.contention] telemetry counter.  0 under a serial
    schedule. *)
val contention_total : unit -> int
