lib/lisa/fix.mli: Minilang Semantics
