examples/rule_dsl.ml: Corpus Fmt Lisa List Semantics Smt
