(** Symbolic shadows for concolic execution.

    A shadow records a value's provenance as a canonical state path (or a
    constant); path conditions are written in terms of shadows.  Object
    roots are canonicalized to their class name, matching
    {!Semantics.Translate}'s normalization.

    A shadow {e is} an interned {!Smt.Formula.term} — no mirror type, no
    conversion: it flows straight into path-condition atoms, and shadow
    equality is physical because terms are hash-consed. *)

type t = Smt.Formula.term

(** Shadow for a canonical state path, e.g. ["Session.closing"]. *)
val var : string -> t

(** Shadow of a concrete scalar; [None] for references. *)
val of_value : Minilang.Value.t -> t option

(** The state path, when the shadow is a variable. *)
val as_var : t -> string option

val is_var : t -> bool

val to_string : t -> string

(** Root of a state path: ["Session.closing"] -> ["Session"]. *)
val root_of_path : string -> string

val mentions_root : string list -> t -> bool
