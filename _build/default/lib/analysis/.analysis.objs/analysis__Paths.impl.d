lib/analysis/paths.ml: Ast Callgraph Fmt List Minilang Pretty String
