(** Lexical tokens of MiniJava (deliberately Java-flavoured, so corpus
    code reads like the tickets it transliterates). *)

type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_CLASS
  | KW_FIELD
  | KW_METHOD
  | KW_VAR
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_THROW
  | KW_TRY
  | KW_CATCH
  | KW_SYNCHRONIZED
  | KW_ASSERT
  | KW_BREAK
  | KW_CONTINUE
  | KW_NEW
  | KW_THIS
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_INT
  | KW_BOOL
  | KW_STR
  | KW_MAP
  | KW_LIST
  | KW_VOID
  | KW_ANY
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

val keyword_table : (string * t) list

(** Classify an identifier: keyword token or [IDENT]. *)
val of_ident : string -> t

val to_string : t -> string

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
