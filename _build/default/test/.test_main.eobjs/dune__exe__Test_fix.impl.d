test/test_fix.ml: Alcotest Astring_contains Corpus Fmt Lisa List Minilang Option Semantics
