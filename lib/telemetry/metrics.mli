(** Process-global metric registry: integer counters, float
    accumulators, and fixed-bucket histograms keyed by dotted names.
    Mutex-protected (worker domains record too); passive until a caller
    takes a {!snapshot}. *)

(** Latency buckets in seconds: 1µs … 10s, one decade per bucket. *)
val default_buckets : float array

val incr : ?by:int -> string -> unit

val get : string -> int

val addf : string -> float -> unit

val getf : string -> float

(** Record one observation into the named histogram (buckets are fixed
    on first use). *)
val observe : ?buckets:float array -> string -> float -> unit

(** [(upper_bound, count)] per bucket (infinity = overflow), the
    observation sum, and the observation count. *)
val histogram : string -> ((float * int) list * float * int) option

(** Every counter and float accumulator, sorted by name. *)
val snapshot : unit -> (string * float) list

val reset : unit -> unit

(** Drop every metric whose name starts with [prefix]. *)
val reset_prefix : string -> unit
