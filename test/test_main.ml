let () =
  Alcotest.run "lisa"
    (Test_core.suite @ Test_minilang.suite @ Test_smt.suite @ Test_diffing.suite @ Test_analysis.suite
   @ Test_symexec.suite @ Test_semantics.suite @ Test_oracle.suite
   @ Test_corpus.suite @ Test_pipeline.suite @ Test_lisa.suite @ Test_edgecases.suite @ Test_report.suite @ Test_integration.suite @ Test_fix.suite @ Test_misc.suite @ Test_engine.suite @ Test_resilience.suite
   @ Test_telemetry.suite @ Test_serve.suite @ Test_triage.suite @ Test_synth.suite)
