(** Experiment E10 — §5 open question (iii): composing validated low-level
    semantics into (bounded) high-level guarantees.

    Each scenario states a case's high-level property as an executable
    MiniJava invariant over a harness, and bounded-model-checks it against
    every client operation sequence at stages 1–3 of the case's history,
    alongside the low-level rulebook verdicts. *)

type scenario_def = {
  sd_case : string;  (** corpus case id *)
  sd_high_level : string;  (** the property, in the inference's words *)
  sd_harness : string;  (** MiniJava appended to the feature source *)
  sd_ops : int -> string list;  (** ops available at a given stage *)
  sd_depth : int;  (** exploration bound *)
}

val scenarios : scenario_def list

(** The harness for a stage (some operations only exist once the system
    has evolved). *)
val stage_harness : scenario_def -> int -> string

type stage_result = {
  sr_stage : int;
  sr_rules_hold : bool;  (** low-level rulebook clean on this version *)
  sr_bounded : Mc.Explorer.outcome;  (** bounded high-level verdict *)
}

type result = {
  res_case : string;
  res_high_level : string;
  res_stages : stage_result list;
  res_composition_holds : bool;
      (** rules hold => bounded-safe at every stage, and the regression
          stage shows both a rule violation and a counterexample trace *)
}

val run_case : scenario_def -> result

val run : unit -> result list

val print : result list -> string
