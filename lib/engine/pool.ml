(** Domain-based worker pool (OCaml 5, no external dependencies).

    [map_results ~jobs f items] applies [f] to every item and returns a
    per-slot [('b, exn) result] array in input order — {e every} failed
    job keeps its own exception in its own slot, so a caller can report
    (and retry) each failure instead of losing all but the first.  With
    [jobs <= 1] it runs serially on the calling domain — bit-for-bit
    the serial semantics, which is what keeps tier-1 tests stable.
    With [jobs > 1] it spawns up to [jobs] domains that drain a shared
    atomic index; because results land in their input slot, the output
    is identical for every pool width as long as [f] is deterministic
    per item (the checker's dynamic phase is: it shares no mutable
    state apart from the mutex-protected caches, whose hits return the
    same verdicts the misses compute).

    Workers carry a domain-local cache lifecycle: [init] runs on each
    worker domain before it claims its first item (warming
    [Domain.DLS] state — the SMT memo front cache), and [finish] runs
    after its last item, before the domain is joined (draining state
    that must not be stranded — the solver's pending learned clauses).
    The serial path runs the same hooks on the calling domain, so
    [jobs <= 1] stays bit-for-bit identical while exercising the same
    lifecycle.

    A worker exception never kills the pool: the surviving workers
    finish the remaining items, and the failure stays in its slot.
    [map] is the historic raising wrapper (first error by input index,
    so deterministically the same one at any pool width). *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let noop () = ()

let map_results ?(init = noop) ?(finish = noop) ~(jobs : int) (f : 'a -> 'b)
    (items : 'a array) : ('b, exn) result array =
  let n = Array.length items in
  let apply x = match f x with v -> Ok v | exception e -> Error e in
  if jobs <= 1 || n <= 1 then begin
    init ();
    let results = Array.map apply items in
    finish ();
    results
  end
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      init ();
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (apply items.(i));
          loop ()
        end
      in
      loop ();
      finish ()
    in
    let domains =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index below [n] was claimed *))
      results
  end

(** Indexed failures of a [map_results] run, in slot order. *)
let failures (results : ('b, exn) result array) : (int * exn) list =
  let acc = ref [] in
  Array.iteri
    (fun i r -> match r with Error e -> acc := (i, e) :: !acc | Ok _ -> ())
    results;
  List.rev !acc

let map ?init ?finish ~(jobs : int) (f : 'a -> 'b) (items : 'a array) :
    'b array =
  let results = map_results ?init ?finish ~jobs f items in
  Array.map (function Ok v -> v | Error e -> raise e) results

(** [map] over a list. *)
let map_list ?init ?finish ~(jobs : int) (f : 'a -> 'b) (items : 'a list) :
    'b list =
  Array.to_list (map ?init ?finish ~jobs f (Array.of_list items))

(* ------------------------------------------------------------------ *)
(* Persistent pool                                                     *)
(* ------------------------------------------------------------------ *)

(* Long-lived workers for benchmark loops: spawning a domain costs
   ~milliseconds, which drowns sub-millisecond workloads when a fresh
   pool is built per measurement (the jobs8-slower-than-jobs1 anomaly
   in earlier BENCH_solver runs).  A [persistent] spawns its workers
   once — the spawn cost is recorded separately in {!persistent_spawn_s}
   — and each batch is handed over by a generation bump under a mutex;
   workers block on a condition variable between batches.  Batches keep
   [map]'s contract: a shared atomic index, results in input slots, the
   caller draining alongside the workers. *)

type persistent = {
  ps_jobs : int;
  ps_lock : Mutex.t;
  ps_cond : Condition.t;
  mutable ps_gen : int;  (* batch generation, bumped per batch *)
  mutable ps_work : (int -> unit) option;  (* current batch body *)
  mutable ps_total : int;  (* items in the current batch *)
  ps_next : int Atomic.t;  (* shared claim index *)
  mutable ps_done : int;  (* workers finished with the current batch *)
  mutable ps_shutdown : bool;
  mutable ps_domains : unit Domain.t list;
  mutable ps_spawn_s : float;  (* one-time domain spawn cost *)
  ps_finish : unit -> unit;  (* caller-side finish, run at shutdown *)
}

let persistent_spawn_s (t : persistent) = t.ps_spawn_s

let create_persistent ?(init = noop) ?(finish = noop) ~(jobs : int) () :
    persistent =
  let jobs = max 1 jobs in
  let t =
    {
      ps_jobs = jobs;
      ps_lock = Mutex.create ();
      ps_cond = Condition.create ();
      ps_gen = 0;
      ps_work = None;
      ps_total = 0;
      ps_next = Atomic.make 0;
      ps_done = 0;
      ps_shutdown = false;
      ps_domains = [];
      ps_spawn_s = 0.;
      ps_finish = finish;
    }
  in
  (* the caller counts as one worker: same lifecycle as the others *)
  init ();
  if jobs > 1 then begin
    let worker () =
      init ();
      let seen = ref 0 in
      let running = ref true in
      while !running do
        Mutex.lock t.ps_lock;
        while t.ps_gen = !seen && not t.ps_shutdown do
          Condition.wait t.ps_cond t.ps_lock
        done;
        if t.ps_shutdown then begin
          Mutex.unlock t.ps_lock;
          running := false
        end
        else begin
          seen := t.ps_gen;
          let work = Option.get t.ps_work and total = t.ps_total in
          Mutex.unlock t.ps_lock;
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add t.ps_next 1 in
            if i < total then work i else continue := false
          done;
          Mutex.lock t.ps_lock;
          t.ps_done <- t.ps_done + 1;
          if t.ps_done = t.ps_jobs - 1 then Condition.broadcast t.ps_cond;
          Mutex.unlock t.ps_lock
        end
      done;
      finish ()
    in
    let t0 = Unix.gettimeofday () in
    t.ps_domains <- List.init (jobs - 1) (fun _ -> Domain.spawn worker);
    t.ps_spawn_s <- Unix.gettimeofday () -. t0
  end;
  t

(** Apply [f] to every item through the persistent pool; results in
    input order, first failure (by input index) re-raised, exactly like
    {!map}.  Not reentrant: one batch at a time per pool. *)
let persistent_map (t : persistent) (f : 'a -> 'b) (items : 'a array) :
    'b array =
  let n = Array.length items in
  let results : ('b, exn) result option array = Array.make n None in
  let apply i =
    results.(i) <-
      Some (match f items.(i) with v -> Ok v | exception e -> Error e)
  in
  if t.ps_jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      apply i
    done
  else begin
    Mutex.lock t.ps_lock;
    t.ps_work <- Some apply;
    t.ps_total <- n;
    Atomic.set t.ps_next 0;
    t.ps_done <- 0;
    t.ps_gen <- t.ps_gen + 1;
    Condition.broadcast t.ps_cond;
    Mutex.unlock t.ps_lock;
    (* the caller drains the same index the workers do *)
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add t.ps_next 1 in
      if i < n then apply i else continue := false
    done;
    Mutex.lock t.ps_lock;
    while t.ps_done < t.ps_jobs - 1 do
      Condition.wait t.ps_cond t.ps_lock
    done;
    t.ps_work <- None;
    Mutex.unlock t.ps_lock
  end;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false (* every index below [n] was claimed *))
    results

(** Join the workers (running their [finish] hooks) and run the
    caller-side [finish].  The pool must not be used afterwards. *)
let shutdown (t : persistent) : unit =
  Mutex.lock t.ps_lock;
  t.ps_shutdown <- true;
  Condition.broadcast t.ps_cond;
  Mutex.unlock t.ps_lock;
  List.iter Domain.join t.ps_domains;
  t.ps_domains <- [];
  t.ps_finish ()
