test/test_minilang.ml: Alcotest Ast Astring_contains Fmt Gen Interp Lexer List Loc Minilang Parser Pretty Printf QCheck QCheck_alcotest String Token Typecheck Value
