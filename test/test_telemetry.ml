(* lib/telemetry: clock injection, metrics, tracing, lazy events — and
   the cross-layer property the layer exists for: a scheduler run under
   the mock clock has bit-for-bit deterministic per-job wall times,
   regardless of pool width. *)

module Clock = Telemetry.Clock
module Metrics = Telemetry.Metrics
module Trace = Telemetry.Trace
module Event = Telemetry.Event

(* every test leaves the tracer off and empty, whatever happens *)
let with_tracing f =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_mock_clock_ticks () =
  Clock.with_clock (Clock.mock ~step:0.5 ()) (fun () ->
      Alcotest.(check bool) "mock installed" true (Clock.is_mock ());
      let a = Clock.now () in
      let b = Clock.now () in
      Alcotest.(check (float 1e-9)) "first tick" 0.5 a;
      Alcotest.(check (float 1e-9)) "second tick" 1.0 b);
  Alcotest.(check bool) "real clock restored" false (Clock.is_mock ())

let test_mock_clock_per_domain () =
  Clock.with_clock (Clock.mock ~step:1.0 ()) (fun () ->
      ignore (Clock.now ());
      ignore (Clock.now ());
      (* a fresh domain starts its own tick counter at zero *)
      let d = Domain.spawn (fun () -> Clock.now ()) in
      Alcotest.(check (float 1e-9)) "spawned domain ticks from 0" 1.0
        (Domain.join d);
      Alcotest.(check (float 1e-9)) "main domain unaffected" 3.0 (Clock.now ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  Metrics.reset_prefix "t.";
  Metrics.incr "t.a";
  Metrics.incr ~by:4 "t.a";
  Metrics.addf "t.w" 0.25;
  Metrics.addf "t.w" 0.5;
  Alcotest.(check int) "int counter" 5 (Metrics.get "t.a");
  Alcotest.(check (float 1e-9)) "float accumulator" 0.75 (Metrics.getf "t.w");
  Alcotest.(check int) "unknown counter is 0" 0 (Metrics.get "t.none");
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "snapshot carries the counter" true
    (List.mem_assoc "t.a" snap);
  Metrics.reset_prefix "t.";
  Alcotest.(check int) "prefix reset dropped it" 0 (Metrics.get "t.a")

let test_metrics_histogram () =
  Metrics.reset_prefix "t.";
  Metrics.observe ~buckets:[| 0.001; 0.1 |] "t.h" 0.0005;
  Metrics.observe ~buckets:[| 0.001; 0.1 |] "t.h" 0.05;
  Metrics.observe ~buckets:[| 0.001; 0.1 |] "t.h" 99.0;
  (match Metrics.histogram "t.h" with
  | None -> Alcotest.fail "histogram missing"
  | Some (rows, sum, n) ->
      Alcotest.(check int) "observation count" 3 n;
      Alcotest.(check (float 1e-9)) "observation sum" 99.0505 sum;
      Alcotest.(check (list int)) "bucket counts" [ 1; 1; 1 ]
        (List.map snd rows);
      Alcotest.(check bool) "overflow bound is infinite" true
        (List.exists (fun (ub, _) -> ub = infinity) rows));
  Metrics.reset_prefix "t.";
  Alcotest.(check bool) "prefix reset dropped the histogram" true
    (Metrics.histogram "t.h" = None)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_disabled_span_is_passthrough () =
  Trace.reset ();
  Alcotest.(check bool) "tracing off by default" false (Trace.enabled ());
  let r = Trace.with_span "off.span" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Trace.event_count ())

let test_span_nesting () =
  with_tracing (fun () ->
      let v =
        Trace.with_span "outer" (fun () ->
            Trace.with_span "inner" (fun () -> "ok"))
      in
      Alcotest.(check string) "result" "ok" v;
      match Trace.spans () with
      | [ inner; outer ] ->
          (* completion order: inner closes first *)
          Alcotest.(check string) "inner name" "inner" inner.Trace.sp_name;
          Alcotest.(check string) "outer name" "outer" outer.Trace.sp_name;
          Alcotest.(check int) "ids allocated in begin order" 1
            outer.Trace.sp_id;
          Alcotest.(check int) "inner id" 2 inner.Trace.sp_id;
          Alcotest.(check (option int)) "inner parented to outer" (Some 1)
            inner.Trace.sp_parent;
          Alcotest.(check (option int)) "outer is a root" None
            outer.Trace.sp_parent
      | spans ->
          Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_span_recorded_on_raise () =
  with_tracing (fun () ->
      (try Trace.with_span "raises" (fun () -> failwith "boom")
       with Failure _ -> ());
      match Trace.spans () with
      | [ s ] -> Alcotest.(check string) "span closed" "raises" s.Trace.sp_name
      | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans))

let test_export_json_valid () =
  with_tracing (fun () ->
      Clock.with_clock (Clock.mock ()) (fun () ->
          Trace.with_span ~args:[ ("rule", "r1") ] "outer" (fun () ->
              Trace.instant ~cat:"event" ~args:[ ("severity", "warn") ] "note";
              Trace.with_span "inner" ignore);
          Trace.counter "cache" [ ("hits", 3.); ("misses", 1.5) ]);
      let json = Trace.export_json () in
      (match Telemetry.Json_check.validate json with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid JSON: %s" e);
      let has s = Astring_contains.contains json s in
      Alcotest.(check bool) "complete spans" true (has "\"ph\":\"X\"");
      Alcotest.(check bool) "instant event" true (has "\"ph\":\"i\"");
      Alcotest.(check bool) "counter event" true (has "\"ph\":\"C\"");
      Alcotest.(check bool) "parent link exported" true (has "\"parent_id\":\"1\"");
      Alcotest.(check bool) "span arg exported" true (has "\"rule\":\"r1\"");
      Alcotest.(check bool) "numeric counter value" true (has "\"misses\":1.5"))

let test_export_json_escaping () =
  with_tracing (fun () ->
      Trace.instant ~args:[ ("message", "a \"quoted\"\nline\ttab\\") ] "esc";
      match Telemetry.Json_check.validate (Trace.export_json ()) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "escaping broke the JSON: %s" e)

let test_summary_aggregates () =
  with_tracing (fun () ->
      Clock.with_clock (Clock.mock ()) (fun () ->
          Trace.with_span "stage.a" ignore;
          Trace.with_span "stage.a" ignore;
          Trace.with_span "stage.b" ignore);
      let s = Trace.summary () in
      Alcotest.(check bool) "has stage.a row" true
        (Astring_contains.contains s "stage.a");
      Alcotest.(check bool) "has stage.b row" true
        (Astring_contains.contains s "stage.b"))

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let test_event_thunk_lazy () =
  let scope = Event.scope "telemetry-test" in
  let forced = ref 0 in
  let thunk () =
    incr forced;
    "message"
  in
  (* default Logs level is Warning: a Debug event goes nowhere *)
  Event.emit scope Event.Debug thunk;
  Alcotest.(check int) "suppressed event never formats" 0 !forced;
  (* an Error event is admitted by the default level *)
  Event.emit scope Event.Error thunk;
  Alcotest.(check int) "admitted event formats once" 1 !forced

let test_event_sink_captures () =
  let scope = Event.scope "telemetry-test" in
  let seen = ref [] in
  Event.set_sink (fun ev -> seen := ev :: !seen);
  Fun.protect ~finally:Event.reset_sink (fun () ->
      Event.emit scope Event.Debug (fun () -> "to the sink");
      match !seen with
      | [ ev ] ->
          Alcotest.(check string) "scope" "telemetry-test" ev.Event.ev_scope;
          Alcotest.(check string) "message" "to the sink" ev.Event.ev_message;
          Alcotest.(check bool) "severity" true (ev.Event.ev_severity = Event.Debug)
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let test_events_become_trace_instants () =
  with_tracing (fun () ->
      Resilience.Events.emit
        (Resilience.Events.Component_degraded
           { component = "solver"; reason = "test" });
      let json = Trace.export_json () in
      (* Lisa.Log reroutes resilience events through the "lisa" scope at
         module load, so assert on the rendered message, not the scope *)
      Alcotest.(check bool) "resilience event traced as an instant" true
        (Astring_contains.contains json "\"ph\":\"i\"");
      Alcotest.(check bool) "event message in the trace" true
        (Astring_contains.contains json "solver degraded: test"))

(* ------------------------------------------------------------------ *)
(* Stats recorder: ring + bounded selection                            *)
(* ------------------------------------------------------------------ *)

let jt id wall =
  { Engine.Stats.jt_job_id = id; jt_rule_id = id; jt_wall_s = wall }

let test_job_times_ring_cap () =
  let r = Engine.Stats.recorder ~job_times_cap:3 () in
  List.iter
    (fun i -> Engine.Stats.add_job_time r (jt (string_of_int i) (float_of_int i)))
    [ 1; 2; 3; 4; 5 ];
  let snap = Engine.Stats.snapshot r in
  Alcotest.(check (list string)) "newest three, newest first" [ "5"; "4"; "3" ]
    (List.map
       (fun t -> t.Engine.Stats.jt_job_id)
       snap.Engine.Stats.job_times);
  Engine.Stats.reset r;
  Alcotest.(check (list string)) "reset empties the ring" []
    (List.map
       (fun t -> t.Engine.Stats.jt_job_id)
       (Engine.Stats.snapshot r).Engine.Stats.job_times)

let test_slowest_jobs_matches_stable_sort () =
  let r = Engine.Stats.recorder () in
  (* insertion order; ties between a and c must keep newest-first order *)
  List.iter (Engine.Stats.add_job_time r)
    [ jt "a" 0.001; jt "b" 0.002; jt "c" 0.001; jt "d" 0.004 ];
  let snap = Engine.Stats.snapshot r in
  let reference n =
    snap.Engine.Stats.job_times
    |> List.sort (fun a b ->
           compare b.Engine.Stats.jt_wall_s a.Engine.Stats.jt_wall_s)
    |> List.filteri (fun i _ -> i < n)
    |> List.map (fun t ->
           Fmt.str "  %-24s %8.1f ms" t.Engine.Stats.jt_rule_id
             (1000. *. t.Engine.Stats.jt_wall_s))
    |> String.concat "\n"
  in
  List.iter
    (fun n ->
      Alcotest.(check string)
        (Printf.sprintf "bounded selection = stable sort, n=%d" n)
        (reference n)
        (Engine.Stats.slowest_jobs ~n snap))
    [ 1; 2; 3; 4; 10 ]

let test_recorder_counters_via_metrics () =
  let r = Engine.Stats.recorder () in
  Engine.Stats.bump r Engine.Stats.Jobs_run;
  Engine.Stats.bump ~by:2 r Engine.Stats.Smt_hits;
  Engine.Stats.add_wall r 0.5;
  let snap = Engine.Stats.snapshot r in
  Alcotest.(check int) "jobs_run" 1 snap.Engine.Stats.jobs_run;
  Alcotest.(check int) "smt_hits" 2 snap.Engine.Stats.smt_hits;
  Alcotest.(check (float 1e-9)) "wall" 0.5 snap.Engine.Stats.wall_s;
  (* the counts are visible in the shared metric registry too *)
  Alcotest.(check int) "namespaced metric" 1
    (Metrics.get (Engine.Stats.namespace r ^ ".jobs_run"));
  Engine.Stats.reset r;
  Alcotest.(check int) "reset zeroes" 0
    (Engine.Stats.snapshot r).Engine.Stats.jobs_run

(* ------------------------------------------------------------------ *)
(* Mock-clock scheduler determinism                                    *)
(* ------------------------------------------------------------------ *)

let zk_book = lazy (Lisa.System_scan.learn_system_book "zookeeper")

(* The zookeeper slice of E11 under the mock clock, tracing on: every
   job's wall time is step x (clock reads made by that job's work), so
   the (rule, wall) list must be bit-for-bit reproducible — and equal
   across pool widths, because workers count their own reads. *)
let scan_job_times ~jobs () =
  Smt.Memo.reset ();
  let config = { Engine.Scheduler.cold_config with Engine.Scheduler.jobs } in
  let engine = Engine.Scheduler.create ~config () in
  let book = Lazy.force zk_book in
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      Clock.with_clock (Clock.mock ()) (fun () ->
          List.iter
            (fun v ->
              let p = Corpus.Registry.system_program "zookeeper" ~version:v in
              ignore (Engine.Scheduler.enforce engine p book))
            [ 1; 2 ]));
  Smt.Memo.reset ();
  let stats = Engine.Scheduler.stats engine in
  List.map
    (fun t -> (t.Engine.Stats.jt_rule_id, t.Engine.Stats.jt_wall_s))
    stats.Engine.Stats.job_times

let pair_list = Alcotest.(list (pair string (float 0.)))

let test_mock_clock_scheduler_deterministic () =
  let first = scan_job_times ~jobs:1 () in
  let second = scan_job_times ~jobs:1 () in
  Alcotest.(check bool) "jobs ran" true (first <> []);
  Alcotest.check pair_list "bit-for-bit across two runs" first second

let test_mock_clock_jobs1_equals_jobs4 () =
  let serial = scan_job_times ~jobs:1 () in
  let parallel = scan_job_times ~jobs:4 () in
  Alcotest.check pair_list "bit-for-bit, jobs=1 vs jobs=4" serial parallel

let suite =
  [
    ( "telemetry.clock",
      [
        Alcotest.test_case "mock ticks deterministically" `Quick
          test_mock_clock_ticks;
        Alcotest.test_case "per-domain tick counters" `Quick
          test_mock_clock_per_domain;
      ] );
    ( "telemetry.metrics",
      [
        Alcotest.test_case "counters and accumulators" `Quick
          test_metrics_counters;
        Alcotest.test_case "histograms" `Quick test_metrics_histogram;
      ] );
    ( "telemetry.trace",
      [
        Alcotest.test_case "disabled span is passthrough" `Quick
          test_disabled_span_is_passthrough;
        Alcotest.test_case "span nesting and ids" `Quick test_span_nesting;
        Alcotest.test_case "span recorded on raise" `Quick
          test_span_recorded_on_raise;
        Alcotest.test_case "export is valid chrome-trace JSON" `Quick
          test_export_json_valid;
        Alcotest.test_case "export escapes strings" `Quick
          test_export_json_escaping;
        Alcotest.test_case "summary aggregates by name" `Quick
          test_summary_aggregates;
      ] );
    ( "telemetry.event",
      [
        Alcotest.test_case "suppressed events never format" `Quick
          test_event_thunk_lazy;
        Alcotest.test_case "sink captures structured events" `Quick
          test_event_sink_captures;
        Alcotest.test_case "resilience events become trace instants" `Quick
          test_events_become_trace_instants;
      ] );
    ( "telemetry.stats",
      [
        Alcotest.test_case "job-time ring caps history" `Quick
          test_job_times_ring_cap;
        Alcotest.test_case "bounded slowest_jobs = stable sort" `Quick
          test_slowest_jobs_matches_stable_sort;
        Alcotest.test_case "recorder counts through metrics" `Quick
          test_recorder_counters_via_metrics;
      ] );
    ( "telemetry.determinism",
      [
        Alcotest.test_case "mock-clock scan reproducible" `Quick
          test_mock_clock_scheduler_deterministic;
        Alcotest.test_case "mock-clock scan jobs=1 = jobs=4" `Quick
          test_mock_clock_jobs1_equals_jobs4;
      ] );
  ]
