(** Minimal JSON well-formedness check (no document built, no external
    dependency).  Used by the trace export smoke tests and
    [tools/trace_check]. *)

(** [validate s] is [Ok ()] iff [s] is one well-formed JSON value with
    nothing but whitespace after it. *)
val validate : string -> (unit, string) result
