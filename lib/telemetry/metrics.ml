(** Process-global metric registry: integer counters, float
    accumulators, and fixed-bucket histograms, keyed by dotted names
    (see DESIGN.md for the naming conventions).

    One mutex guards all three tables — metrics are updated from the
    engine's worker domains as well as the main domain.  The registry is
    passive: nothing is exported unless a caller asks for a
    {!snapshot}, so recording is cheap enough for per-job (though not
    per-solver-node) frequencies. *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64

let fcounters : (string, float ref) Hashtbl.t = Hashtbl.create 16

type hist = {
  h_buckets : float array;  (** upper bounds, ascending; +inf implied *)
  h_counts : int array;  (** length = buckets + 1 (overflow bucket) *)
  mutable h_sum : float;
  mutable h_n : int;
}

let hists : (string, hist) Hashtbl.t = Hashtbl.create 16

(** Latency buckets in seconds: 1µs … 10s, one decade per bucket. *)
let default_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

let incr ?(by = 1) name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace counters name (ref by))

let get name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

let addf name v =
  locked (fun () ->
      match Hashtbl.find_opt fcounters name with
      | Some r -> r := !r +. v
      | None -> Hashtbl.replace fcounters name (ref v))

let getf name =
  locked (fun () ->
      match Hashtbl.find_opt fcounters name with Some r -> !r | None -> 0.)

let observe ?(buckets = default_buckets) name v =
  locked (fun () ->
      let h =
        match Hashtbl.find_opt hists name with
        | Some h -> h
        | None ->
            let h =
              {
                h_buckets = buckets;
                h_counts = Array.make (Array.length buckets + 1) 0;
                h_sum = 0.;
                h_n = 0;
              }
            in
            Hashtbl.replace hists name h;
            h
      in
      let rec slot i =
        if i >= Array.length h.h_buckets then i
        else if v <= h.h_buckets.(i) then i
        else slot (i + 1)
      in
      let i = slot 0 in
      h.h_counts.(i) <- h.h_counts.(i) + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_n <- h.h_n + 1)

(** [(upper_bound, count)] pairs (infinity for the overflow bucket),
    plus the observation sum and count; [None] if never observed. *)
let histogram name : ((float * int) list * float * int) option =
  locked (fun () ->
      Hashtbl.find_opt hists name
      |> Option.map (fun h ->
             let rows =
               Array.to_list
                 (Array.mapi
                    (fun i c ->
                      ( (if i < Array.length h.h_buckets then h.h_buckets.(i)
                         else infinity),
                        c ))
                    h.h_counts)
             in
             (rows, h.h_sum, h.h_n)))

(** Every counter and float accumulator as [(name, value)], sorted by
    name (histograms are reported via {!histogram}). *)
let snapshot () : (string * float) list =
  locked (fun () ->
      let ints =
        Hashtbl.fold (fun k r acc -> (k, float_of_int !r) :: acc) counters []
      in
      let floats = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) fcounters [] in
      List.sort compare (ints @ floats))

let reset () =
  locked (fun () ->
      Hashtbl.reset counters;
      Hashtbl.reset fcounters;
      Hashtbl.reset hists)

(** Drop every metric whose name starts with [prefix] (a recorder
    resetting its own namespace without touching anyone else's). *)
let reset_prefix prefix =
  let starts k = String.length k >= String.length prefix
                 && String.sub k 0 (String.length prefix) = prefix in
  locked (fun () ->
      let victims tbl =
        Hashtbl.fold (fun k _ acc -> if starts k then k :: acc else acc) tbl []
      in
      List.iter (Hashtbl.remove counters) (victims counters);
      List.iter (Hashtbl.remove fcounters) (victims fcounters);
      List.iter (Hashtbl.remove hists) (victims hists))
