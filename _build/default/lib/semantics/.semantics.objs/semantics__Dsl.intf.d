lib/semantics/dsl.mli: Rule Smt
