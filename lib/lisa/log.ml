(** Logging source for the LISA pipeline.

    Consumers (the CLI's [-v], tests, or a host application) install a
    {!Logs} reporter and set the level; the library only emits.

    Loading this module also reroutes the resilience event bus
    ({!Resilience.Events}) into this source, so retry, quarantine, and
    circuit-breaker events land in the same stream as the pipeline's own
    logs: warnings for recoverable faults, errors for quarantine and
    opened breakers. *)

let src = Logs.Src.create "lisa" ~doc:"LISA pipeline events"

module L = (val Logs.src_log src : Logs.LOG)

let info fmt = Format.kasprintf (fun s -> L.info (fun m -> m "%s" s)) fmt

let debug fmt = Format.kasprintf (fun s -> L.debug (fun m -> m "%s" s)) fmt

let warn fmt = Format.kasprintf (fun s -> L.warn (fun m -> m "%s" s)) fmt

let err fmt = Format.kasprintf (fun s -> L.err (fun m -> m "%s" s)) fmt

(* The engine layers cannot depend on lisa, so they publish resilience
   events through a swappable sink; we claim it here. *)
let install_resilience_sink () =
  Resilience.Events.set_sink (fun ev ->
      let line = Resilience.Events.to_string ev in
      match Resilience.Events.severity ev with
      | Resilience.Events.Error -> err "%s" line
      | Resilience.Events.Warn -> warn "%s" line)

let () = install_resilience_sink ()
