lib/lisa/checker.ml: Analysis Ast Fmt Interp List Minilang Oracle Semantics Smt Symexec
