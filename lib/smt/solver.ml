(** Satisfiability and validity for checker formulas.

    A small DPLL(T): the boolean structure is decided by backtracking over
    the formula's canonical atoms with three-valued early evaluation, and
    every partial assignment is checked against the theory
    ({!Theory.consistent}) so that theory-inconsistent branches are pruned
    immediately.  Complete for the supported fragment; formulas in this
    project have at most a few dozen atoms.

    The module also implements the paper's *complement check* (§3.2): a
    trace with path condition [pc] **violates** a semantic with checker
    formula [c] iff [pc /\ !c] is satisfiable — under-constrained
    variables (the "missing checks") leave room for the complement, which
    is exactly the behaviour the paper motivates with the missing
    [s.ttl > 0] example. *)

type verdict = Sat of (Formula.atom * bool) list | Unsat | Unknown of string

let verdict_is_sat = function Sat _ -> true | Unsat | Unknown _ -> false

(* Calls to [solve] since the last reset.  Atomic so the engine's worker
   domains can share the counter; the enforcement engine reads it to
   report how many solver invocations a cached run saved. *)
let solve_calls = Atomic.make 0

let solve_count () = Atomic.get solve_calls

let reset_solve_count () = Atomic.set solve_calls 0

(* three-valued evaluation of a formula under a partial atom assignment *)
let rec eval3 (assign : (Formula.atom * bool) list) (f : Formula.t) : bool option =
  match Formula.view f with
  | Formula.True -> Some true
  | Formula.False -> Some false
  | Formula.Atom a -> List.assoc_opt (Formula.canon_atom a) assign
  | Formula.Not g -> Option.map not (eval3 assign g)
  | Formula.And fs ->
      let rec go unknown = function
        | [] -> if unknown then None else Some true
        | g :: rest -> (
            match eval3 assign g with
            | Some false -> Some false
            | Some true -> go unknown rest
            | None -> go true rest)
      in
      go false fs
  | Formula.Or fs ->
      let rec go unknown = function
        | [] -> if unknown then None else Some false
        | g :: rest -> (
            match eval3 assign g with
            | Some true -> Some true
            | Some false -> go unknown rest
            | None -> go true rest)
      in
      go false fs

let lits_of_assign (assign : (Formula.atom * bool) list) : Theory.lit list =
  List.map (fun (a, sign) -> Theory.lit sign a) assign

(* ------------------------------------------------------------------ *)
(* Theory-consistency memo                                             *)
(* ------------------------------------------------------------------ *)

(* [Theory.consistent] is called on every node of the DPLL search tree,
   and under engine traffic the same partial assignments recur across
   thousands of structurally similar path conditions.  Memoize verdicts
   globally, keyed by the order-insensitive set of literal ids — a sorted
   list of (sign, rel, lhs id, rhs id) quadruples over the canonical
   atoms' interned terms, so building a key allocates no strings.
   Mutex-protected (worker domains share the table); bounded by epoch
   clearing so it cannot grow without bound. *)
type lit_id = int * int * int * int

let theory_memo : (lit_id list, bool) Hashtbl.t = Hashtbl.create 4096

let theory_memo_lock = Mutex.create ()

let theory_memo_max = ref (1 lsl 16)

let set_theory_memo_max n =
  Mutex.lock theory_memo_lock;
  theory_memo_max := max 2 n;
  Mutex.unlock theory_memo_lock

let theory_memo_size () =
  Mutex.lock theory_memo_lock;
  let n = Hashtbl.length theory_memo in
  Mutex.unlock theory_memo_lock;
  n

(* Epoch halving: drop every other entry instead of resetting the whole
   table, so a full memo sheds weight without cold-starting every
   in-flight domain at once.  Caller holds [theory_memo_lock]. *)
let halve_theory_memo () =
  let keep = ref false in
  let victims =
    Hashtbl.fold
      (fun k _ acc ->
        keep := not !keep;
        if !keep then k :: acc else acc)
      theory_memo []
  in
  List.iter (Hashtbl.remove theory_memo) victims

let rel_code = function
  | Formula.Req -> 0
  | Formula.Rneq -> 1
  | Formula.Rlt -> 2
  | Formula.Rle -> 3
  | Formula.Rgt -> 4
  | Formula.Rge -> 5

let lit_key (a, sign) : lit_id =
  let c = Formula.canon_atom a in
  ( (if sign then 1 else 0),
    rel_code c.Formula.rel,
    Formula.term_id c.Formula.lhs,
    Formula.term_id c.Formula.rhs )

let consistent_memo (assign : (Formula.atom * bool) list) : bool =
  match assign with
  | [] -> true
  | _ -> (
      let key = List.sort compare (List.map lit_key assign) in
      let cached =
        Mutex.lock theory_memo_lock;
        let r = Hashtbl.find_opt theory_memo key in
        Mutex.unlock theory_memo_lock;
        r
      in
      match cached with
      | Some b -> b
      | None ->
          let b = Theory.consistent (lits_of_assign assign) in
          Mutex.lock theory_memo_lock;
          if Hashtbl.length theory_memo >= !theory_memo_max then halve_theory_memo ();
          Hashtbl.replace theory_memo key b;
          Mutex.unlock theory_memo_lock;
          b)

(* ------------------------------------------------------------------ *)
(* Branch ordering                                                     *)
(* ------------------------------------------------------------------ *)

(* Decision order for the backtracking search: most-occurring atoms first
   (the classic DLIS-style static heuristic) — assigning an atom that
   appears in many clauses lets the three-valued evaluation collapse the
   formula earliest.  Ties keep first-occurrence order, so the search is
   deterministic. *)
let order_atoms (f : Formula.t) (atoms : Formula.atom list) : Formula.atom list =
  let count = Hashtbl.create 16 in
  let rec tally g =
    match Formula.view g with
    | Formula.True | Formula.False -> ()
    | Formula.Atom a ->
        let c = Formula.canon_atom a in
        Hashtbl.replace count c (1 + Option.value ~default:0 (Hashtbl.find_opt count c))
    | Formula.Not h -> tally h
    | Formula.And fs | Formula.Or fs -> List.iter tally fs
  in
  tally f;
  let occ a = Option.value ~default:0 (Hashtbl.find_opt count a) in
  List.stable_sort (fun a b -> compare (occ b) (occ a)) atoms

(* ------------------------------------------------------------------ *)
(* Node budget                                                         *)
(* ------------------------------------------------------------------ *)

(* DPLL search-node budget: an adversarial formula (many independent
   atoms the theory cannot prune) can force an exponential search, so
   every [solve] is bounded and answers [Unknown] instead of diverging.
   The default is far above anything the checker-formula fragment
   produces (a few dozen atoms, heavily theory-pruned), so no-fault
   behaviour is unchanged. *)
let default_node_budget_cell = Atomic.make 200_000

let default_node_budget () = Atomic.get default_node_budget_cell

let set_default_node_budget n = Atomic.set default_node_budget_cell (max 1 n)

exception Budget_hit

(** Decide satisfiability.  On success the model is a sign assignment to
    the formula's canonical atoms that satisfies both the boolean
    structure and the theory.  The backtracking search is bounded by
    [node_budget] visited nodes and answers [Unknown] past it; a faulted
    or circuit-broken solver also answers [Unknown] rather than crash
    the caller. *)
let solve_untraced ?node_budget (f : Formula.t) : verdict =
  Atomic.incr solve_calls;
  if not (Resilience.Breaker.proceed Resilience.Fault.Solver) then
    Unknown "solver circuit open"
  else
    match Resilience.Injector.draw Resilience.Fault.Solver with
    | Some Resilience.Fault.Budget ->
        Resilience.Breaker.failure Resilience.Fault.Solver;
        Unknown "injected budget exhaustion"
    | Some (Resilience.Fault.Crash | Resilience.Fault.Transient) as k ->
        Resilience.Injector.raise_fault Resilience.Fault.Solver (Option.get k)
    | None -> (
        let budget =
          match node_budget with Some b -> max 1 b | None -> default_node_budget ()
        in
        let f = Formula.simplify f in
        match Formula.view f with
        | Formula.True ->
            Resilience.Breaker.success Resilience.Fault.Solver;
            Sat []
        | Formula.False ->
            Resilience.Breaker.success Resilience.Fault.Solver;
            Unsat
        | _ -> (
            let atoms = order_atoms f (Formula.atoms f) in
            let nodes = ref 0 in
            let rec search assign remaining =
              incr nodes;
              if !nodes > budget then raise Budget_hit;
              if not (consistent_memo assign) then None
              else
                match eval3 assign f with
                | Some false -> None
                | Some true -> Some assign
                | None -> (
                    match remaining with
                    | [] -> None (* unreachable: all atoms assigned means no None *)
                    | a :: rest -> (
                        match search ((a, true) :: assign) rest with
                        | Some model -> Some model
                        | None -> search ((a, false) :: assign) rest))
            in
            match search [] atoms with
            | Some model ->
                Resilience.Breaker.success Resilience.Fault.Solver;
                Sat model
            | None ->
                Resilience.Breaker.success Resilience.Fault.Solver;
                Unsat
            | exception Budget_hit ->
                Resilience.Breaker.failure Resilience.Fault.Solver;
                Unknown (Fmt.str "node budget %d exhausted" budget)))

(* The traced wrapper only pays for the span and the latency histogram
   while tracing is on; the healthy fast path is one atomic load. *)
let solve ?node_budget (f : Formula.t) : verdict =
  if not (Telemetry.Trace.enabled ()) then solve_untraced ?node_budget f
  else
    Telemetry.Trace.with_span ~cat:"smt" "smt.solve" @@ fun () ->
    let t0 = Telemetry.Clock.now () in
    let v = solve_untraced ?node_budget f in
    Telemetry.Metrics.observe "smt.solve_s" (Telemetry.Clock.now () -. t0);
    v

let is_sat f = verdict_is_sat (solve f)

(** [Unknown] is conservatively {e not} unsat: an undecided formula
    neither proves nor refutes anything downstream. *)
let is_unsat f = match solve f with Unsat -> true | Sat _ | Unknown _ -> false

(** [is_valid f] iff [!f] has no model. *)
let is_valid f = is_unsat (Formula.negate f)

(** [entails pc c]: every state satisfying [pc] satisfies [c]. *)
let entails pc c = is_unsat (Formula.conj [ pc; Formula.negate c ])

(** [equivalent a b] iff they have the same models. *)
let equivalent a b = entails a b && entails b a

(* ------------------------------------------------------------------ *)
(* The paper's trace checks                                            *)
(* ------------------------------------------------------------------ *)

type trace_check =
  | Verified  (** the path condition implies the checker formula *)
  | Violation of (Formula.atom * bool) list
      (** satisfiable overlap with the complement; the model is the
          counterexample the developer sees in the report *)
  | Undecided of string
      (** the solver could not decide (budget, fault, open breaker);
          the reason is recorded and the rule's report degrades to an
          [unknown] verdict instead of killing the run *)

(** Complement check (the paper's method): the trace's [pc] violates
    checker formula [c] iff [pc /\ !c] is satisfiable.  Missing conditions
    in [pc] are unconstrained atoms, which is precisely what lets the
    complement be satisfied ("missing checks treated as true"). *)
let check_trace ~(pc : Formula.t) ~(checker : Formula.t) : trace_check =
  match solve (Formula.conj [ pc; Formula.negate checker ]) with
  | Unsat -> Verified
  | Sat model -> Violation model
  | Unknown reason -> Undecided reason

(** The naive *direct* check used as an ablation (experiment E8): flag a
    trace only if its path condition outright contradicts the checker
    formula.  Traces that merely *miss* a required check satisfy
    [sat (pc /\ c)] and slip through — the false-negative mode the paper
    argues against. *)
let check_trace_direct ~(pc : Formula.t) ~(checker : Formula.t) : trace_check =
  match solve (Formula.conj [ pc; checker ]) with
  | Unsat -> Violation []
  | Sat _ -> Verified
  | Unknown reason -> Undecided reason

let model_to_string (model : (Formula.atom * bool) list) : string =
  model
  |> List.map (fun (a, sign) ->
         if sign then Formula.atom_to_string a
         else Formula.atom_to_string { a with Formula.rel = Formula.negate_rel a.Formula.rel })
  |> String.concat " && "
  |> function
  | "" -> "(trivial)"
  | s -> s
