(** Quantifier-free checker formulas over implementation-local predicates.

    This is the condition language of low-level semantics (paper §3.1):
    conjunctions/disjunctions of state relations ([v = c]), null-ness
    ([s != null]), boolean observers ([s.closing == false]) and integer
    bounds ([s.ttl > 0]).  Variables are dotted state paths such as
    ["Session.closing"].

    Terms and formulas are {e hash-consed}: construction goes through the
    smart constructors below, which return maximally shared nodes with a
    per-node unique id and a precomputed structural hash.  Consequently
    physical equality coincides with structural equality, and
    {!equal}/{!hash}/{!compare} are O(1).  The node views stay
    pattern-matchable ([private] records expose [f_node]/[t_node]), so
    consumers deconstruct exactly as before but cannot bypass interning. *)

(** Binary relations between terms. *)
type rel = Req | Rneq | Rlt | Rle | Rgt | Rge

(** Interned term: match on {!term_view} (or the [t_node] field).
    [t_id] is unique per structure for the process lifetime; [t_hash] is
    the precomputed structural hash (schedule-independent). *)
type term = private { t_node : term_node; t_id : int; t_hash : int }

(** Terms: flat — a state variable or a constant. *)
and term_node =
  | T_var of string  (** a state variable, e.g. ["s.ttl"] *)
  | T_int of int
  | T_bool of bool
  | T_str of string
  | T_null

(** Atoms are plain records over interned terms (cheap to rebuild with
    [{ a with rel = ... }]); atom equality is O(1) because the terms are
    shared. *)
type atom = { rel : rel; lhs : term; rhs : term }

(** Interned formula: match on {!view} (or the [f_node] field). *)
type t = private { f_node : f_node; f_id : int; f_hash : int }

and f_node =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t list  (** always >= 2 conjuncts; built by {!conj} *)
  | Or of t list  (** always >= 2 disjuncts; built by {!disj} *)

(** {1 Constructors} *)

val tvar : string -> term

val tint : int -> term

val tbool : bool -> term

val tstr : string -> term

val tnull : term

(** The interned [True] / [False] nodes. *)
val tru : t

val fls : t

val atom : rel -> term -> term -> t

val eq : term -> term -> t

val neq : term -> term -> t

val lt : term -> term -> t

val le : term -> term -> t

val gt : term -> term -> t

val ge : term -> term -> t

(** Boolean state variable asserted true: [bvar x] is [x == true]. *)
val bvar : string -> t

(** N-ary conjunction; [conj []] is {!tru}, singletons are unwrapped. *)
val conj : t list -> t

(** N-ary disjunction; [disj []] is {!fls}. *)
val disj : t list -> t

val negate : t -> t

(** {1 Identity}

    Sound because of maximal sharing: equal structure ⇔ same node. *)

val view : t -> f_node

val term_view : term -> term_node

(** Unique per structure within this process; never reused.  Ids depend
    on interning order (and hence scheduling under [--jobs N]) — key
    in-process tables with them, never order output by them. *)
val id : t -> int

val term_id : term -> int

(** O(1): physical equality. *)
val equal : t -> t -> bool

(** O(1): the precomputed structural hash (schedule-independent). *)
val hash : t -> int

(** O(1): id order.  In-process use only (see {!id}). *)
val compare : t -> t -> int

(** {1 Structure} *)

(** Structural order (constructor rank, then payload) — deliberately not
    id order, so {!canon_atom}'s operand sorting is schedule-independent. *)
val term_compare : term -> term -> int

(** O(1): physical equality. *)
val term_equal : term -> term -> bool

(** The relation with swapped operands ([<] becomes [>], ...). *)
val flip_rel : rel -> rel

(** The relation satisfied exactly when the argument is not. *)
val negate_rel : rel -> rel

(** Canonical form: [>]/[>=] rewritten to [<]/[<=] by swapping; symmetric
    relations get sorted operands.  Canonical atoms are the identity used
    by the DPLL abstraction. *)
val canon_atom : atom -> atom

val atom_equal : atom -> atom -> bool

(** All distinct canonical atoms, in first-occurrence order.  Memoized on
    the interned node; the order is structural and schedule-independent. *)
val atoms : t -> atom list

(** Free state variables, in first-occurrence order. *)
val variables : t -> string list

val size : t -> int

(** {1 Ground evaluation} (used to cross-check the solver in tests) *)

type value = V_int of int | V_bool of bool | V_str of string | V_null

val value_of_term : (string * value) list -> term -> value option

val eval_atom : (string * value) list -> atom -> bool option

(** [None] when a variable is unbound or an order atom compares
    non-integers. *)
val eval : (string * value) list -> t -> bool option

(** {1 Printing} *)

val term_to_string : term -> string

val rel_to_string : rel -> string

val atom_to_string : atom -> string

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Normal forms} *)

(** Negation normal form; the result contains no [Not] (negations are
    folded into atom relations).  Memoized on the formula id. *)
val nnf : t -> t

(** Semantics-preserving simplification: constant folding, flattening,
    duplicate removal, complementary-literal detection.  Memoized on the
    formula id. *)
val simplify : t -> t

(** {1 Intern-table statistics} *)

type intern_stats = {
  term_stats : Core.Hc.stats;
  formula_stats : Core.Hc.stats;
  string_stats : Core.Hc.stats;
}

val intern_stats : unit -> intern_stats

(** Aggregate hit/miss/size over the term, formula, and string tables. *)
val intern_hits : unit -> int

val intern_misses : unit -> int

val intern_size : unit -> int
