test/test_pipeline.ml: Alcotest Corpus Fmt Fun Lisa List Minilang Oracle Semantics String
