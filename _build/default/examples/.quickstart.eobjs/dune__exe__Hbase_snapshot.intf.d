examples/hbase_snapshot.mli:
