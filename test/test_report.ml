(* Tests for the Markdown report renderer and solver algebraic properties
   used by the complement check. *)

let zk = List.hd Corpus.Zookeeper.cases

let reports_at stage =
  let outcome = Lisa.Pipeline.learn (Corpus.Case.original_ticket zk) in
  let book =
    Semantics.Rulebook.of_rules ~system:"zookeeper" outcome.Lisa.Pipeline.accepted
  in
  Lisa.Pipeline.enforce (Corpus.Case.program_at zk stage) book

let test_report_block_verdict () =
  let md = Lisa.Report.render (reports_at 2) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("report has " ^ frag) true
        (Astring_contains.contains md frag))
    [
      "**BLOCK**";
      "## Rule ZK-1208";
      "**VIOLATION**";
      "VERIFIED";
      "`LearnerRequestProcessor.forwardCreate`";
      "sanity ok";
    ]

let test_report_pass_verdict () =
  let md = Lisa.Report.render (reports_at 3) in
  Alcotest.(check bool) "pass verdict" true (Astring_contains.contains md "**PASS**");
  Alcotest.(check bool) "no violations" false (Astring_contains.contains md "**VIOLATION**")

let test_report_uncovered_section () =
  (* a program with a target but no tests produces the developer-verdict
     section *)
  let p = Minilang.Parser.program "class C { method f() { work(); } } method work() { }" in
  let rule =
    Semantics.Rule.make ~rule_id:"r" ~description:"d" ~high_level:"h" ~origin:"o"
      (Semantics.Rule.State_guard
         {
           target = Semantics.Rule.Call_to { callee = "work"; in_method = None };
           condition = Smt.Formula.bvar "C.flag";
         })
  in
  let md = Lisa.Report.render [ Lisa.Checker.check_rule p rule ] in
  Alcotest.(check bool) "uncovered section" true
    (Astring_contains.contains md "developer verdict needed")

(* algebraic properties of the complement check, over random formulas *)
let gen_formula : Smt.Formula.t QCheck.arbitrary =
  let open QCheck in
  let v = Smt.Formula.tvar in
  let atoms =
    [
      Smt.Formula.eq (v "x") (Smt.Formula.tint 1);
      Smt.Formula.lt (v "x") (Smt.Formula.tint 4);
      Smt.Formula.neq (v "s") Smt.Formula.tnull;
      Smt.Formula.bvar "s.closing";
      Smt.Formula.gt (v "ttl") (Smt.Formula.tint 0);
    ]
  in
  let leaf = Gen.oneofl (Smt.Formula.tru :: Smt.Formula.fls :: atoms) in
  let rec go n =
    if n <= 0 then leaf
    else
      Gen.oneof
        [
          leaf;
          Gen.map (fun f -> Smt.Formula.negate f) (go (n - 1));
          Gen.map2 (fun a b -> Smt.Formula.conj [ a; b ]) (go (n / 2)) (go (n / 2));
          Gen.map2 (fun a b -> Smt.Formula.disj [ a; b ]) (go (n / 2)) (go (n / 2));
        ]
  in
  make ~print:Smt.Formula.to_string (Gen.sized (fun n -> go (min n 5)))

let prop_self_check_verifies =
  QCheck.Test.make ~count:200 ~name:"pc = checker always verifies" gen_formula
    (fun f ->
      match Smt.Solver.check_trace ~pc:f ~checker:f with
      | Smt.Solver.Verified -> true
      | Smt.Solver.Violation _ | Smt.Solver.Undecided _ -> false)

let prop_true_pc_flags_nonvalid =
  QCheck.Test.make ~count:200 ~name:"empty pc verifies iff checker valid" gen_formula
    (fun f ->
      let verified =
        match Smt.Solver.check_trace ~pc:Smt.Formula.tru ~checker:f with
        | Smt.Solver.Verified -> true
        | Smt.Solver.Violation _ | Smt.Solver.Undecided _ -> false
      in
      verified = Smt.Solver.is_valid f)

let prop_stronger_pc_stays_verified =
  QCheck.Test.make ~count:200 ~name:"strengthening a verified pc keeps it verified"
    (QCheck.pair gen_formula gen_formula) (fun (pc_extra, checker) ->
      let pc = Smt.Formula.conj [ checker; pc_extra ] in
      match Smt.Solver.check_trace ~pc ~checker with
      | Smt.Solver.Verified -> true
      | Smt.Solver.Violation _ | Smt.Solver.Undecided _ -> false)

let prop_verified_means_entails =
  QCheck.Test.make ~count:200 ~name:"Verified iff pc entails checker"
    (QCheck.pair gen_formula gen_formula) (fun (pc, checker) ->
      let verified =
        match Smt.Solver.check_trace ~pc ~checker with
        | Smt.Solver.Verified -> true
        | Smt.Solver.Violation _ | Smt.Solver.Undecided _ -> false
      in
      verified = Smt.Solver.entails pc checker)

let suite =
  [
    ( "lisa.report",
      [
        Alcotest.test_case "block verdict" `Quick test_report_block_verdict;
        Alcotest.test_case "pass verdict" `Quick test_report_pass_verdict;
        Alcotest.test_case "uncovered section" `Quick test_report_uncovered_section;
      ] );
    ( "smt.complement_algebra",
      [
        QCheck_alcotest.to_alcotest prop_self_check_verifies;
        QCheck_alcotest.to_alcotest prop_true_pc_flags_nonvalid;
        QCheck_alcotest.to_alcotest prop_stronger_pc_stays_verified;
        QCheck_alcotest.to_alcotest prop_verified_means_entails;
      ] );
  ]
