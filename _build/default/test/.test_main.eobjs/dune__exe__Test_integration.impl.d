test/test_integration.ml: Alcotest Ast Astring_contains Corpus Fmt Interp Lisa List Minilang Parser Pretty Semantics Smt Value
